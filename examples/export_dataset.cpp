// export_dataset: write the campaign's analysis products as CSV — the
// open-data counterpart of the paper's artifact release (its NLNOG-DNS-1
// dataset is published; ours is regenerable from the seed, and this tool
// materializes it for people who want to analyze it with other tooling).
//
// Usage: export_dataset [output_dir]     (default: ./rootsim-dataset)
//
// Files written:
//   colocation.csv   per VP: region, reduced redundancy v4/v6, max cluster
//   stability.csv    per (VP, root, family): change count over the campaign
//   coverage.csv     per site: root, type, region, observed
//   rtt.csv          per (VP, root, family): selected site, km, RTT
//   zone_audit.csv   per audited transfer: verdicts
//   slo.jsonl        streaming SLO monitor: evaluated sliding windows
//   incidents.jsonl  detected incidents with attributed causes
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/colocation.h"
#include "analysis/coverage.h"
#include "analysis/stability.h"
#include "measure/campaign.h"
#include "scenario/apply.h"
#include "util/strings.h"

using namespace rootsim;

int main(int argc, char** argv) {
  std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "rootsim-dataset";
  std::filesystem::create_directories(out_dir);

  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 60;
  measure::Campaign campaign(config);
  std::printf("exporting seed-%llu campaign to %s/\n",
              static_cast<unsigned long long>(config.seed),
              out_dir.string().c_str());

  {
    auto report = analysis::compute_colocation(campaign);
    std::ofstream f(out_dir / "colocation.csv");
    f << "vp_id,region,reduced_redundancy_v4,reduced_redundancy_v6,max_cluster\n";
    for (const auto& row : report.per_vp)
      f << row.vp_id << ',' << util::region_short_name(row.region) << ','
        << row.reduced_redundancy_v4 << ',' << row.reduced_redundancy_v6 << ','
        << row.max_cluster << '\n';
    std::printf("  colocation.csv   %zu rows\n", report.per_vp.size());
  }
  {
    analysis::StabilityOptions options;
    options.round_stride = 4;
    auto report = analysis::compute_stability(campaign, options);
    std::ofstream f(out_dir / "stability.csv");
    f << "root,family,vp_index,estimated_changes\n";
    size_t rows = 0;
    for (const auto& root : report.per_root) {
      for (size_t i = 0; i < root.changes_v4.size(); ++i, ++rows)
        f << root.letter << ",v4," << i << ',' << root.changes_v4[i] << '\n';
      for (size_t i = 0; i < root.changes_v6.size(); ++i, ++rows)
        f << root.letter << ",v6," << i << ',' << root.changes_v6[i] << '\n';
    }
    std::printf("  stability.csv    %zu rows\n", rows);
  }
  {
    auto report = analysis::compute_coverage(campaign);
    std::ofstream f(out_dir / "coverage.csv");
    f << "site_id,root,type,region,identity,observed\n";
    for (const auto& site : campaign.topology().sites)
      f << site.id << ',' << static_cast<char>('a' + site.root_index) << ','
        << (site.type == netsim::SiteType::Global ? "global" : "local") << ','
        << util::region_short_name(site.region) << ',' << site.identity << ','
        << (report.observed_sites.count(site.id) ? 1 : 0) << '\n';
    std::printf("  coverage.csv     %zu rows\n", campaign.topology().sites.size());
  }
  {
    std::ofstream f(out_dir / "rtt.csv");
    f << "vp_id,region,root,family,site_id,distance_km,rtt_ms,via_detour\n";
    size_t rows = 0;
    for (const auto& vp : campaign.vantage_points()) {
      for (uint32_t root = 0; root < rss::kRootCount; ++root) {
        for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
          auto route = campaign.router().route(vp.view, root, family);
          f << vp.view.vp_id << ',' << util::region_short_name(vp.view.region)
            << ',' << static_cast<char>('a' + root) << ','
            << (family == util::IpFamily::V4 ? "v4" : "v6") << ','
            << route.site_id << ','
            << util::format("%.1f", campaign.router().distance_km(
                                        vp.view, route.site_id))
            << ',' << util::format("%.2f", route.rtt_ms) << ','
            << (route.via_detour ? 1 : 0) << '\n';
          ++rows;
        }
      }
    }
    std::printf("  rtt.csv          %zu rows\n", rows);
  }
  {
    // Second arg 0: fan out over ROOTSIM_WORKERS threads when set (the CSV
    // is identical for every worker count).
    auto observations = campaign.run_zone_audit(100, 0);
    std::ofstream f(out_dir / "zone_audit.csv");
    f << "when,vp_id,table2_vp,root,family,old_b,soa_serial,verdict,zonemd\n";
    for (const auto& obs : observations)
      f << util::format_datetime(obs.when) << ',' << obs.vp_id << ','
        << obs.table2_vp_id << ','
        << (obs.root_index >= 0 ? std::string(1, 'a' + obs.root_index) : "?")
        << ',' << (obs.family == util::IpFamily::V4 ? "v4" : "v6") << ','
        << (obs.old_b_address ? 1 : 0) << ',' << obs.soa_serial << ','
        << to_string(obs.verdict) << ',' << to_string(obs.zonemd) << '\n';
    std::printf("  zone_audit.csv   %zu rows\n", observations.size());
  }
  {
    // The streaming SLO monitor's exports (JSONL, not CSV — they are the
    // operator-facing artifacts; render with tools/slo_report.py).
    auto slo = campaign.run_slo_timeline();
    std::ofstream(out_dir / "slo.jsonl") << slo.slo_jsonl;
    std::ofstream(out_dir / "incidents.jsonl") << slo.incidents_jsonl;
    std::printf("  slo.jsonl        %zu windows\n", slo.windows.size());
    std::printf("  incidents.jsonl  %zu incidents\n", slo.incidents.size());
  }
  std::printf("done. All files regenerate bit-identically from seed %llu.\n",
              static_cast<unsigned long long>(config.seed));
  return 0;
}
