// rootdig: a dig-like command-line client for the simulated root system.
//
//   rootdig [@server] [qname] [qtype] [+options]
//
//   @server   a root service address (default 193.0.14.129 = k.root)
//   qname     query name (default ".")
//   qtype     A AAAA NS SOA TXT DNSKEY DS NSEC ZONEMD or AXFR (default NS)
//   +dnssec   set the DO bit (attach RRSIGs)
//   +norec    clear RD (default for authoritatives anyway)
//   +vp=N     use vantage point N (default 0) — changes anycast catchment
//   +time=YYYY-MM-DD  query at a specific campaign date (default 2023-12-10)
//   +flight   dump the transport flight recorder (always dumped on failure)
//
// Examples:
//   rootdig @199.9.14.201 . SOA            # old b.root address
//   rootdig . ZONEMD +dnssec
//   rootdig @2001:7fd::1 hostname.bind TXT # CHAOS identity
//   rootdig . AXFR | head
#include <cstdio>
#include <cstring>
#include <string>

#include "measure/campaign.h"
#include "netsim/flight_recorder.h"
#include "obs/obs.h"
#include "scenario/apply.h"
#include "util/strings.h"

using namespace rootsim;

namespace {

// Scans the probe's trace for query-level failures (timeouts, REFUSED,
// refused transfers) and surfaces them dig-style. Without this, a probe
// whose inner queries all timed out printed empty sections and nothing else.
// Returns the number of failures found so the caller can trigger the flight
// recorder post-mortem.
int print_probe_warnings(const obs::Recorder& recorder) {
  int failures = 0;
  for (const auto& event : recorder.tracer().events()) {
    if (event.kind != obs::TraceEvent::Kind::Event) continue;
    std::string qname, status;
    for (const auto& attr : event.attrs) {
      if (attr.key == "qname") qname = attr.value;
      if (attr.key == "status") status = attr.value;
    }
    if (event.name == "query" && !status.empty() && status != "NOERROR") {
      std::printf(";; WARNING: query for %s failed: %s\n", qname.c_str(),
                  status.c_str());
      ++failures;
    } else if (event.name == "axfr" && status == "refused") {
      std::printf(";; WARNING: zone transfer refused\n");
      ++failures;
    } else if (event.name == "probe.error") {
      std::printf(";; WARNING: probe error\n");
      ++failures;
    }
  }
  return failures;
}

// The post-mortem: what the transport actually did, exchange by exchange
// (attempts, drops, cause codes), from the flight recorder ring.
void print_flight_records(const netsim::FlightRecorder& flight) {
  if (flight.size() == 0) return;
  std::printf(";; FLIGHT RECORDER: last %zu of %llu exchange(s)\n",
              flight.size(),
              static_cast<unsigned long long>(flight.recorded()));
  for (const auto& line : util::split(flight.to_jsonl(), '\n'))
    if (!line.empty()) std::printf(";;   %s\n", line.c_str());
}

// The service-level view next to the packet-level one: what the streaming
// SLO monitor says about the queried letter at the query time — the window
// covering the query (availability, p95 RTT, breaches) and any incident on
// the letter that was open then. One failed rootdig thus shows both "what
// did my packets do" and "was the letter actually in trouble".
void print_slo_state(const measure::Campaign& campaign, int root_index,
                     util::IpFamily family, util::UnixTime when) {
  if (root_index < 0) return;
  measure::SloTimelineOptions options;
  options.probes_per_bucket = 4;  // a coarse pass: state, not an experiment
  options.publication_samples = 2;
  auto slo = campaign.run_slo_timeline(options);
  const bool v6 = family == util::IpFamily::V6;
  const obs::SloWindow* current = nullptr;
  for (const auto& window : slo.windows) {
    if (window.root != root_index || window.v6 != v6) continue;
    if (window.end <= when || (window.start <= when && when < window.end))
      current = &window;  // ends as the window covering `when`
    if (window.start > when) break;
  }
  std::printf(";; SLO STATE: %c.root %s at %s\n",
              static_cast<char>('a' + root_index), v6 ? "v6" : "v4",
              util::format_datetime(when).c_str());
  if (!current) {
    std::printf(";;   no evaluated window covers the query time\n");
    return;
  }
  std::printf(";;   window %s..%s: availability %.4f%% (%llu/%llu probes)%s\n",
              util::format_datetime(current->start).c_str(),
              util::format_datetime(current->end).c_str(),
              100.0 * current->availability,
              static_cast<unsigned long long>(current->answered),
              static_cast<unsigned long long>(current->probes),
              current->evaluated ? "" : " [starved: not evaluated]");
  if (current->latency_count)
    std::printf(";;   rtt p50 %.1f ms, p95 %.1f ms\n", current->rtt_p50_ms,
                current->rtt_p95_ms);
  for (size_t m = 0; m < obs::kSloMetricCount; ++m) {
    const auto metric = static_cast<obs::SloMetric>(m);
    if (current->breached(metric))
      std::printf(";;   BREACH: %.*s\n",
                  static_cast<int>(obs::to_string(metric).size()),
                  obs::to_string(metric).data());
  }
  bool any_incident = false;
  for (const auto& incident : slo.incidents) {
    if (incident.root != root_index) continue;
    const bool active =
        incident.opened <= when && (incident.open() || when < incident.closed);
    if (!active) continue;
    any_incident = true;
    const std::string until =
        incident.open() ? "still open"
                        : "closed " + util::format_datetime(incident.closed);
    std::printf(";;   INCIDENT #%u %s %s: opened %s, %s, cause: %s\n",
                incident.id, incident.v6 ? "v6" : "v4",
                std::string(obs::to_string(incident.metric)).c_str(),
                util::format_datetime(incident.opened).c_str(), until.c_str(),
                incident.cause.c_str());
  }
  if (!any_incident)
    std::printf(";;   no incident open on the letter at query time\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "193.0.14.129";
  std::string qname = ".";
  std::string qtype_text = "NS";
  bool dnssec = false;
  bool show_flight = false;
  size_t vp_index = 0;
  double loss = 0.0;
  std::string date = "2023-12-10";

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '@') {
      server = arg.substr(1);
    } else if (arg == "+dnssec") {
      dnssec = true;
    } else if (arg == "+flight") {
      show_flight = true;
    } else if (arg == "+norec") {
      // authoritative queries never recurse; accepted for dig compatibility
    } else if (util::starts_with(arg, "+vp=")) {
      vp_index = static_cast<size_t>(std::atoll(arg.c_str() + 4));
    } else if (util::starts_with(arg, "+loss=")) {
      loss = std::atof(arg.c_str() + 6);
    } else if (util::starts_with(arg, "+time=")) {
      date = arg.substr(6);
    } else if (arg == "-h" || arg == "--help") {
      std::printf("usage: rootdig [@server] [qname] [qtype] [+dnssec] [+vp=N] "
                  "[+time=YYYY-MM-DD] [+flight] [+loss=P]\n");
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() >= 1) qname = positional[0];
  if (positional.size() >= 2) qtype_text = positional[1];

  auto address = util::IpAddress::parse(server);
  if (!address) {
    std::fprintf(stderr, "rootdig: bad server address '%s'\n", server.c_str());
    return 1;
  }
  auto parsed_name = dns::Name::parse(qname);
  if (!parsed_name) {
    std::fprintf(stderr, "rootdig: bad qname '%s'\n", qname.c_str());
    return 1;
  }
  auto fields = util::split(date, '-');
  if (fields.size() != 3) {
    std::fprintf(stderr, "rootdig: bad +time (want YYYY-MM-DD)\n");
    return 1;
  }
  util::UnixTime when =
      util::make_time(std::atoi(fields[0].c_str()), std::atoi(fields[1].c_str()),
                      std::atoi(fields[2].c_str()), 12, 0);

  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 60;
  // Every transport exchange of the probe lands in this bounded ring; on a
  // failed query the dump below is the post-mortem.
  netsim::FlightRecorder flight(64);
  config.transport.flight_recorder = &flight;
  // +loss=P degrades every path so the failure diagnostics (flight-recorder
  // dump + SLO state of the queried letter) are demonstrable on demand.
  config.transport.defaults.loss = loss;
  obs::Recorder recorder;
  measure::Campaign campaign(config, recorder.obs());
  if (campaign.catalog().index_of_address(*address) < 0) {
    std::fprintf(stderr, "rootdig: '%s' is not a root service address\n",
                 server.c_str());
    return 1;
  }
  if (vp_index >= campaign.vantage_points().size()) {
    std::fprintf(stderr, "rootdig: vp index out of range (max %zu)\n",
                 campaign.vantage_points().size() - 1);
    return 1;
  }
  const auto& vp = campaign.vantage_points()[vp_index];
  uint64_t round = campaign.schedule().round_at(when);

  measure::ProbeRecord probe =
      campaign.prober().probe(vp, *address, when, round);

  dns::RRType qtype = dns::rrtype_from_string(qtype_text);
  if (qtype == dns::RRType::AXFR) {
    if (!probe.axfr || probe.axfr->refused) {
      print_probe_warnings(recorder);
      print_flight_records(flight);
      print_slo_state(campaign, probe.root_index, probe.family, when);
      std::printf("; transfer failed\n");
      return 1;
    }
    for (const auto& rr : probe.axfr->records)
      std::printf("%s\n", dns::record_to_string(rr).c_str());
    std::printf("; transfer size: %zu records, serial %u\n",
                probe.axfr->records.size(), probe.axfr->soa_serial);
    if (show_flight) print_flight_records(flight);
    return 0;
  }

  // Issue the one query directly against the instance this VP reaches.
  const auto& site = campaign.topology().sites[probe.site_id];
  rss::RootServerInstance instance(
      campaign.authority(), campaign.catalog(),
      static_cast<uint32_t>(probe.root_index), site.identity, {},
      recorder.obs());
  bool chaos = util::ends_with(util::to_lower(qname), ".bind.") ||
               util::ends_with(util::to_lower(qname), ".bind") ||
               util::starts_with(util::to_lower(qname), "id.server") ||
               util::starts_with(util::to_lower(qname), "hostname.bind") ||
               util::starts_with(util::to_lower(qname), "version.");
  dns::Message query = dns::make_query(
      static_cast<uint16_t>(when & 0xFFFF), *parsed_name, qtype,
      chaos ? dns::RRClass::CH : dns::RRClass::IN, dnssec);
  dns::Message response = instance.handle_udp_query(query, when);
  bool via_tcp = false;
  if (response.tc) {
    response = instance.handle_query(query, when);
    via_tcp = true;
  }

  std::printf("; <<>> rootsim rootdig <<>> @%s %s %s%s\n", server.c_str(),
              qname.c_str(), qtype_text.c_str(), dnssec ? " +dnssec" : "");
  const int failures = print_probe_warnings(recorder);
  if (show_flight || failures > 0) print_flight_records(flight);
  if (failures > 0)
    print_slo_state(campaign, probe.root_index, probe.family, when);
  std::printf(";; ->>HEADER<<- opcode: QUERY, status: %s, id: %u\n",
              rcode_to_string(response.rcode).c_str(), response.id);
  std::printf(";; flags: qr%s%s; QUERY: %zu, ANSWER: %zu, AUTHORITY: %zu, "
              "ADDITIONAL: %zu\n",
              response.aa ? " aa" : "", response.tc ? " tc" : "",
              response.questions.size(), response.answers.size(),
              response.authority.size(), response.additional.size());
  auto dump = [](const char* section, const std::vector<dns::ResourceRecord>& rrs) {
    if (rrs.empty()) return;
    std::printf("\n;; %s SECTION:\n", section);
    for (const auto& rr : rrs)
      std::printf("%s\n", dns::record_to_string(rr).c_str());
  };
  dump("ANSWER", response.answers);
  dump("AUTHORITY", response.authority);
  std::printf("\n;; Query time: %.0f msec%s\n", probe.rtt_ms,
              via_tcp ? " (retried over TCP)" : "");
  std::printf(";; SERVER: %s (%s, instance %s)\n", server.c_str(),
              probe.family == util::IpFamily::V4 ? "UDP+TCP" : "UDP+TCP",
              site.identity.c_str());
  std::printf(";; WHEN: %s\n", util::format_datetime(when).c_str());
  return 0;
}
