// scenario_lab: run, inspect, and lint the scenario library.
//
//   scenario_lab --list                      names + one-line descriptions
//   scenario_lab --dump <name>               canonical .scn text of a spec
//   scenario_lab --check <file.scn> [...]    parse + round-trip every file
//   scenario_lab run <name|file.scn> [--smoke] [--workers N] [--tld N]
//                [--out DIR]                 full SLO pipeline on a scenario
//
// `run` applies the spec to a campaign, executes the streaming SLO monitor,
// writes slo.jsonl / incidents.jsonl into DIR (default "<name>-run"), and
// prints every detected incident with its attributed cause. The exports are
// byte-identical for any --workers value and either ROOTSIM_SCHED mode.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "measure/campaign.h"
#include "scenario/apply.h"
#include "scenario/library.h"
#include "scenario/parser.h"

using namespace rootsim;

namespace {

int list_scenarios() {
  for (const auto& spec : scenario::library())
    std::printf("%-18s %s\n", spec.name.c_str(), spec.description.c_str());
  return 0;
}

int dump_scenario(const std::string& name) {
  scenario::ScenarioSpec spec;
  if (!scenario::find_scenario(name, &spec)) {
    std::fprintf(stderr, "scenario_lab: unknown scenario '%s' (try --list)\n",
                 name.c_str());
    return 1;
  }
  std::fputs(scenario::serialize_scenario(spec).c_str(), stdout);
  return 0;
}

int check_files(int argc, char** argv, int first) {
  int failures = 0;
  for (int i = first; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read\n", argv[i]);
      ++failures;
      continue;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    scenario::ScenarioSpec spec;
    std::string error;
    if (!scenario::parse_scenario(buffer.str(), &spec, &error)) {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      ++failures;
      continue;
    }
    // The canonical form must survive a round trip — guarantees --dump and
    // the committed files cannot drift apart silently.
    scenario::ScenarioSpec again;
    if (!scenario::parse_scenario(scenario::serialize_scenario(spec), &again,
                                  &error) ||
        !(again == spec)) {
      std::fprintf(stderr, "%s: round-trip mismatch (%s)\n", argv[i],
                   error.c_str());
      ++failures;
      continue;
    }
    std::printf("%-40s ok  (%s, %zu events, %zu faults)\n", argv[i],
                spec.name.c_str(), spec.events.size(), spec.faults.size());
  }
  return failures == 0 ? 0 : 1;
}

int run_scenario(int argc, char** argv) {
  std::string target;
  std::string out_dir;
  bool smoke = false;
  size_t workers = 0;
  int tld_count = 60;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      workers = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--tld") && i + 1 < argc) {
      tld_count = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (target.empty()) {
      target = argv[i];
    } else {
      std::fprintf(stderr, "scenario_lab: unexpected argument '%s'\n", argv[i]);
      return 1;
    }
  }
  if (target.empty()) {
    std::fprintf(stderr, "scenario_lab: run needs a scenario name or file\n");
    return 1;
  }

  scenario::ScenarioSpec spec;
  if (!scenario::find_scenario(target, &spec)) {
    std::ifstream in(target);
    std::stringstream buffer;
    std::string error;
    if (!in) {
      std::fprintf(stderr,
                   "scenario_lab: '%s' is neither a library scenario nor a "
                   "readable file\n",
                   target.c_str());
      return 1;
    }
    buffer << in.rdbuf();
    if (!scenario::parse_scenario(buffer.str(), &spec, &error)) {
      std::fprintf(stderr, "%s: %s\n", target.c_str(), error.c_str());
      return 1;
    }
  }
  if (smoke) spec = scenario::smoke_variant(spec);
  if (out_dir.empty()) out_dir = spec.name + "-run";

  scenario::Applied applied = scenario::apply(spec);
  applied.campaign.zone.tld_count = tld_count;
  applied.slo.workers = workers;
  std::printf("scenario %s: %s..%s, %zu events, %zu faults\n",
              spec.name.c_str(),
              util::format_date(spec.horizon.start).c_str(),
              util::format_date(spec.horizon.end).c_str(), spec.events.size(),
              spec.faults.size());

  measure::Campaign campaign(applied.campaign);
  measure::SloTimelineResult result =
      campaign.run_slo_timeline(spec, applied.slo);

  std::filesystem::create_directories(out_dir);
  std::ofstream(std::filesystem::path(out_dir) / "slo.jsonl")
      << result.slo_jsonl;
  std::ofstream(std::filesystem::path(out_dir) / "incidents.jsonl")
      << result.incidents_jsonl;
  std::printf("%llu probes, %zu SLO windows, %zu cause hints -> %s/\n",
              static_cast<unsigned long long>(result.probes),
              result.windows.size(), result.hints.size(), out_dir.c_str());

  if (result.incidents.empty()) {
    std::printf("no incidents detected\n");
  } else {
    std::printf("%zu incidents:\n", result.incidents.size());
    for (const auto& incident : result.incidents)
      std::printf("  #%u %c.root %s %-12s %s .. %-20s cause=%s\n", incident.id,
                  'a' + incident.root, incident.v6 ? "v6" : "v4",
                  std::string(to_string(incident.metric)).c_str(),
                  util::format_datetime(incident.opened).c_str(),
                  incident.open()
                      ? "(open)"
                      : util::format_datetime(incident.closed).c_str(),
                  incident.cause.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && !std::strcmp(argv[1], "--list")) return list_scenarios();
  if (argc >= 3 && !std::strcmp(argv[1], "--dump")) return dump_scenario(argv[2]);
  if (argc >= 3 && !std::strcmp(argv[1], "--check"))
    return check_files(argc, argv, 2);
  if (argc >= 3 && !std::strcmp(argv[1], "run")) return run_scenario(argc, argv);
  std::fprintf(stderr,
               "usage: scenario_lab --list\n"
               "       scenario_lab --dump <name>\n"
               "       scenario_lab --check <file.scn> [...]\n"
               "       scenario_lab run <name|file.scn> [--smoke] "
               "[--workers N] [--tld N] [--out DIR]\n");
  return 2;
}
