// broot_renumbering: replay the 2023-11-27 b.root address change end to end.
//
// Shows (1) the zone flipping its A/AAAA records at the change serial,
// (2) what resolvers of different behaviours (priming / delayed / reluctant)
// do afterwards, and (3) the aggregate adoption curves an ISP and two IXP
// regions observe — the paper's §6 passive perspective.
#include <cstdio>

#include "analysis/traffic_report.h"
#include "measure/campaign.h"
#include "scenario/apply.h"
#include "resolver/priming.h"
#include "traffic/collectors.h"

using namespace rootsim;

int main() {
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 40;
  measure::Campaign campaign(config);
  util::UnixTime change = campaign.catalog().renumbering().zone_change_time;

  std::printf("== 1. the zone itself ==\n");
  dns::Name b = *dns::Name::parse("b.root-servers.net.");
  for (util::UnixTime t : {change - util::kSecondsPerDay, change + 3600}) {
    const dns::Zone& zone = campaign.authority().zone_at(t);
    const auto& a = std::get<dns::AData>(zone.find(b, dns::RRType::A)->rdatas[0]);
    const auto& aaaa =
        std::get<dns::AaaaData>(zone.find(b, dns::RRType::AAAA)->rdatas[0]);
    std::printf("%s  serial=%u  b.root A=%s AAAA=%s\n",
                util::format_date(t).c_str(), zone.serial(),
                a.address.to_string().c_str(), aaaa.address.to_string().c_str());
  }

  std::printf("\n== 2. three resolver behaviours ==\n");
  traffic::Client priming;
  priming.primes = true;
  priming.flows_per_day = 1000;
  traffic::Client delayed;
  delayed.primes = false;
  delayed.eventually_adopts = true;
  delayed.adoption_delay_days = 12;
  delayed.flows_per_day = 1000;
  traffic::Client reluctant;
  reluctant.primes = false;
  reluctant.eventually_adopts = false;
  reluctant.flows_per_day = 1000;
  std::printf("%-12s", "day");
  for (const char* name : {"priming", "delayed(12d)", "reluctant"})
    std::printf("  %-14s", name);
  std::printf("\n");
  for (int day : {-1, 0, 1, 3, 13, 30, 150}) {
    util::UnixTime t = change + day * util::kSecondsPerDay + 3600;
    std::printf("change%+4dd ", day);
    for (const traffic::Client* client : {&priming, &delayed, &reluctant})
      std::printf("  new=%3.0f%% old/d=%-5.0f",
                  100 * client->new_address_share(t, change),
                  client->old_address_flows_per_day(t, change));
    std::printf("\n");
  }
  std::printf("(the priming resolver's single daily touch on the old address\n"
              " is the Fig. 8 signal; Wessels et al. saw old j.root traffic\n"
              " 13 years on — our 'reluctant' class)\n");

  std::printf("\n== 2b. the protocol behind it: RFC 8109 priming ==\n");
  {
    resolver::PrimingConfig primes_config;
    resolver::PrimingResolver priming_resolver(
        campaign, campaign.vantage_points()[7],
        resolver::builtin_hints(campaign.catalog(),
                                change - 4 * 365 * util::kSecondsPerDay),
        primes_config);
    resolver::PrimingConfig never_config;
    never_config.primes = false;
    resolver::PrimingResolver reluctant_resolver(
        campaign, campaign.vantage_points()[8],
        resolver::builtin_hints(campaign.catalog(),
                                change - 4 * 365 * util::kSecondsPerDay),
        never_config);
    util::UnixTime week_after = change + 7 * util::kSecondsPerDay;
    priming_resolver.ensure_primed(week_after);
    reluctant_resolver.ensure_primed(week_after);
    std::printf("  2019 hints file; one week after the change:\n");
    std::printf("  priming resolver   -> b.root v4 = %s (learned from '. NS')\n",
                priming_resolver.address_of('b', util::IpFamily::V4)
                    ->to_string().c_str());
    std::printf("  reluctant resolver -> b.root v4 = %s (hints, forever)\n",
                reluctant_resolver.address_of('b', util::IpFamily::V4)
                    ->to_string().c_str());
  }

  std::printf("\n== 3. aggregate adoption at the collectors ==\n");
  struct View {
    const char* label;
    traffic::PopulationConfig population;
    traffic::CollectorConfig collector;
  };
  View views[] = {
      {"European ISP", traffic::isp_population_config(),
       traffic::isp_collector_config()},
      {"IXPs Europe", traffic::ixp_population_config_eu(),
       traffic::ixp_collector_config_eu()},
      {"IXPs N.America", traffic::ixp_population_config_na(),
       traffic::ixp_collector_config_na()},
  };
  for (View& view : views) {
    view.population.clients = 8000;
    traffic::PassiveCollector collector(
        traffic::generate_population(view.population), view.collector, change);
    auto days = collector.collect(change - 7 * util::kSecondsPerDay,
                                  change + 28 * util::kSecondsPerDay);
    auto ratio = analysis::shift_ratio(
        collector.collect(change + 11 * util::kSecondsPerDay,
                          change + 28 * util::kSecondsPerDay));
    std::printf("--- %s (day -7 .. +28) ---\n%s", view.label,
                analysis::render_share_series(analysis::broot_shares(days)).c_str());
    std::printf("settled in-family shift: v4=%.1f%% v6=%.1f%%\n\n", 100 * ratio.v4,
                100 * ratio.v6);
  }
  std::printf("[paper: ISP 87.1%%/96.3%%; IXP v6 shift EU 60.8%% vs NA 16.5%%]\n");
  return 0;
}
