// local_root_service: run an RFC 7706/8806-style local root with
// ZONEMD-verified refresh — the consumer the paper's §7 argues ZONEMD
// enables ("parties ingesting ZONEMD signed zone files will be able to
// implement appropriate fallback mechanisms such as rescheduling a zone
// transfer from a different root server").
//
// The demo refreshes against a healthy system, then against a system where
// the two preferred servers hand out corrupted/stale copies, and shows the
// fallback keeping the service correct throughout.
#include <cstdio>

#include "localroot/local_root.h"
#include "scenario/apply.h"
#include "util/strings.h"

using namespace rootsim;

static void show(const localroot::RefreshResult& result) {
  for (const auto& attempt : result.attempts)
    std::printf("  try %c.root (%s): %s\n", 'a' + attempt.root_index,
                attempt.family == util::IpFamily::V4 ? "v4" : "v6",
                attempt.detail.c_str());
  std::printf("  => %s\n\n",
              result.success
                  ? util::format("serving serial %u", result.serial).c_str()
                  : "DEGRADED (falling back to upstream resolution)");
}

int main() {
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 60;
  measure::Campaign campaign(config);
  localroot::LocalRootConfig service_config;
  service_config.server_order = {1, 3, 10, 5, 0};  // b, d, k, f, a
  localroot::LocalRootService service(campaign, campaign.vantage_points()[42],
                                      service_config);

  // Nine days before the campaign closes, early morning.
  util::UnixTime now = config.schedule.end - 9 * util::kSecondsPerDay + 8 * 3600;
  std::printf("== refresh against a healthy root system ==\n");
  show(service.refresh(now));

  std::printf("== b.root transfer bitflipped, d.root stale: fallback ==\n");
  std::vector<localroot::LocalRootService::ServerFault> faults(2);
  faults[0].root_index = 1;
  faults[0].knobs.inject_bitflip = true;
  faults[0].knobs.bitflip_seed = 17;
  faults[0].knobs.bitflip_prefer_signed = true;
  faults[1].root_index = 3;
  faults[1].knobs.server_frozen_at = now - 20 * util::kSecondsPerDay - 8 * 3600;
  show(service.refresh(now + 3600, faults));

  std::printf("== serving root-zone queries locally ==\n");
  struct Q {
    const char* qname;
    dns::RRType qtype;
  };
  for (const Q& q : {Q{".", dns::RRType::NS}, Q{"de.", dns::RRType::NS},
                     Q{"www.example.invalid-tld.", dns::RRType::A}}) {
    auto response = service.resolve(
        dns::make_query(1, *dns::Name::parse(q.qname), q.qtype), now + 7200);
    if (!response) {
      std::printf("  %s %s -> (degraded, would forward upstream)\n", q.qname,
                  rrtype_to_string(q.qtype).c_str());
      continue;
    }
    std::printf("  %s %s -> %s, %zu answers, %zu authority\n", q.qname,
                rrtype_to_string(q.qtype).c_str(),
                rcode_to_string(response->rcode).c_str(),
                response->answers.size(), response->authority.size());
  }

  std::printf("\n== expiry semantics: no stale answers, ever ==\n");
  auto soa = service.zone()->soa();
  util::UnixTime past_expire = service.loaded_at() + soa->expire + 3600;
  std::printf("  %.1f days without refresh -> can_serve=%s\n",
              soa->expire / 86400.0,
              service.can_serve(past_expire) ? "true" : "false (degraded)");
  return 0;
}
