// anycast_atlas: traceroute all 13 roots from chosen vantage points and show
// the catchment view a RING node operator would see — selected instance,
// distance vs the geographically closest replica, RTT per family, and which
// roots share last-hop infrastructure (the paper's RQ1 perspective).
//
// Usage: anycast_atlas [vp_index ...]   (defaults to one VP per region)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "measure/campaign.h"
#include "scenario/apply.h"
#include "util/table.h"

using namespace rootsim;

static void atlas_for(const measure::Campaign& campaign,
                      const measure::VantagePoint& vp) {
  std::printf("=== %s — %s, AS%u ===\n", vp.node_name.c_str(),
              std::string(util::region_name(vp.view.region)).c_str(),
              vp.view.asn);
  util::TextTable table({"Root", "Instance", "Type", "km (v4)", "opt km",
                         "RTT v4", "RTT v6", "2nd-to-last hop"});
  std::map<netsim::RouterId, std::vector<char>> sharing;
  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    netsim::RouteResult v4 = campaign.router().route(vp.view, root,
                                                     util::IpFamily::V4);
    netsim::RouteResult v6 = campaign.router().route(vp.view, root,
                                                     util::IpFamily::V6);
    const netsim::AnycastSite& site = campaign.topology().sites[v4.site_id];
    const netsim::AnycastSite& closest =
        campaign.router().closest_global_site(vp.view, root);
    char hop_text[32];
    if (v4.second_to_last_hop == 0)
      std::snprintf(hop_text, sizeof hop_text, "* (no answer)");
    else
      std::snprintf(hop_text, sizeof hop_text, "%016llx",
                    static_cast<unsigned long long>(v4.second_to_last_hop));
    table.add_row(
        {std::string(1, 'a' + root) + ".root", site.identity,
         site.type == netsim::SiteType::Global ? "global" : "local",
         util::TextTable::num(campaign.router().distance_km(vp.view, v4.site_id), 0),
         util::TextTable::num(
             util::haversine_km(vp.view.location, closest.location), 0),
         util::TextTable::num(v4.rtt_ms, 1), util::TextTable::num(v6.rtt_ms, 1),
         hop_text});
    if (v4.second_to_last_hop != 0)
      sharing[v4.second_to_last_hop].push_back(static_cast<char>('a' + root));
  }
  std::printf("%s", table.render().c_str());
  bool any = false;
  for (const auto& [hop, roots] : sharing) {
    if (roots.size() < 2) continue;
    any = true;
    std::printf("co-located behind %016llx:",
                static_cast<unsigned long long>(hop));
    for (char c : roots) std::printf(" %c.root", c);
    std::printf("  (reduced redundancy +%zu)\n", roots.size() - 1);
  }
  if (!any) std::printf("no co-location observed from this VP (IPv4)\n");
  std::printf("\n");
}

int main(int argc, char** argv) {
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 40;
  measure::Campaign campaign(config);
  const auto& vps = campaign.vantage_points();

  std::vector<size_t> indices;
  for (int i = 1; i < argc; ++i) {
    size_t index = static_cast<size_t>(std::atoll(argv[i]));
    if (index < vps.size()) indices.push_back(index);
  }
  if (indices.empty()) {
    // Default: the first VP of each region.
    std::set<util::Region> seen;
    for (size_t i = 0; i < vps.size(); ++i)
      if (seen.insert(vps[i].view.region).second) indices.push_back(i);
  }
  for (size_t index : indices) atlas_for(campaign, vps[index]);
  return 0;
}
