// Quickstart: bring up the simulated root server system, send real DNS
// queries to it from a vantage point, and validate the zone you transfer.
//
// This walks the library's three layers in ~80 lines:
//   1. rss::       — the 13 root deployments + the signed root zone,
//   2. netsim::    — anycast routing from your vantage point,
//   3. dns/dnssec:: — wire-format messages and full DNSSEC+ZONEMD validation.
#include <cstdio>

#include "dnssec/validator.h"
#include "measure/campaign.h"
#include "scenario/apply.h"

using namespace rootsim;

int main() {
  // One Campaign wires everything together, deterministically (seed 42),
  // on the built-in paper-2023 scenario's timeline.
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 60;  // a small synthetic root zone
  measure::Campaign campaign(config);

  std::printf("simulated root server system is up:\n");
  std::printf("  %zu anycast sites across %zu facilities, %zu vantage points\n\n",
              campaign.topology().sites.size(),
              campaign.topology().facilities.size(),
              campaign.vantage_points().size());

  // Pick a vantage point and a moment in time.
  const measure::VantagePoint& vp = campaign.vantage_points()[100];
  // Two weeks before the campaign closes, at the day's 12:00 zone edit.
  util::UnixTime now = config.schedule.end - 14 * util::kSecondsPerDay + 12 * 3600;
  std::printf("vantage point: %s (%s)\n", vp.node_name.c_str(),
              std::string(util::region_name(vp.view.region)).c_str());

  // Query ". NS" at k.root — a real wire-format DNS exchange.
  const rss::RootServer& k = campaign.catalog().by_letter('k');
  measure::ProbeRecord probe = campaign.prober().probe(
      vp, k.ipv4, now, campaign.schedule().round_at(now));
  std::printf("queried %s (%s): answered by instance '%s', rtt %.1f ms\n",
              k.name.c_str(), k.ipv4.to_string().c_str(),
              probe.instance_identity.c_str(), probe.rtt_ms);

  // Show the ". NS" answer from the probe's query results.
  for (const auto& query : probe.queries) {
    if (!(query.question.qname.is_root() &&
          query.question.qtype == dns::RRType::NS))
      continue;
    std::printf("'. NS' -> %s, %zu records:\n",
                rcode_to_string(query.rcode).c_str(), query.answers.size());
    for (size_t i = 0; i < query.answers.size() && i < 3; ++i)
      std::printf("  %s\n", dns::record_to_string(query.answers[i]).c_str());
    std::printf("  ... (%zu more)\n", query.answers.size() - 3);
    break;
  }

  // The probe also transferred the zone (AXFR). Validate it end to end:
  // every RRSIG against the trust anchors, plus the RFC 8976 ZONEMD digest.
  auto zone = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
  if (!zone) {
    std::printf("AXFR framing broken?!\n");
    return 1;
  }
  std::printf("\ntransferred zone: serial %u, %zu records\n", zone->serial(),
              zone->record_count());
  auto result = dnssec::validate_zone(*zone, campaign.authority().trust_anchors(),
                                      vp.local_clock(now));
  std::printf("DNSSEC validation: %zu RRsets, %zu signatures checked, %s\n",
              result.rrsets_checked, result.signatures_checked,
              result.fully_valid() ? "all valid" : "FAILURES");
  std::printf("ZONEMD: %s\n", to_string(result.zonemd).c_str());

  // Where does this VP's traffic actually go, per family?
  std::printf("\nyour catchments for b.root and f.root:\n");
  for (char letter : {'b', 'f'}) {
    uint32_t root = static_cast<uint32_t>(letter - 'a');
    for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
      netsim::RouteResult route = campaign.router().route(vp.view, root, family);
      const netsim::AnycastSite& site = campaign.topology().sites[route.site_id];
      std::printf("  %c.root %s -> %-28s %6.0f km  %5.1f ms%s\n", letter,
                  family == util::IpFamily::V4 ? "v4" : "v6",
                  site.identity.c_str(),
                  campaign.router().distance_km(vp.view, route.site_id),
                  route.rtt_ms, route.via_detour ? "  (via detour AS)" : "");
    }
  }
  return 0;
}
