// zone_integrity_audit: transfer the root zone from all 13 deployments (the
// paper's RQ3 workflow), fully validate each copy (RRSIGs + ZONEMD), then
// demonstrate what each fault class looks like to a consumer — a bitflip, a
// stale server, and a skewed local clock — and how ZONEMD flags them.
#include <cstdio>

#include "dnssec/validator.h"
#include "measure/campaign.h"
#include "scenario/apply.h"
#include "obs/obs.h"

using namespace rootsim;

static void report(const char* label, const dnssec::ZoneValidationResult& result) {
  std::printf("%-34s dnssec=%-18s zonemd=%s\n", label,
              to_string(result.dominant_failure()).c_str(),
              to_string(result.zonemd).c_str());
  for (const auto& finding : result.signature_failures) {
    std::printf("    !! %s: %s\n", to_string(finding.status).c_str(),
                finding.detail.c_str());
    break;  // one sample per failure is enough for the demo
  }
}

int main() {
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 60;
  // Record per-instance RSSAC002 telemetry for every exchange the audit
  // makes; dumped as rssac002.jsonl at the end.
  obs::Recorder recorder;
  measure::Campaign campaign(config, recorder.obs());
  const measure::VantagePoint& vp = campaign.vantage_points()[0];
  dnssec::TrustAnchors anchors = campaign.authority().trust_anchors();
  // Nine days before the campaign closes, mid-morning.
  util::UnixTime now = config.schedule.end - 9 * util::kSecondsPerDay + 9 * 3600;
  uint64_t round = campaign.schedule().round_at(now);

  std::printf("== AXFR from all 13 roots, full validation ==\n");
  for (size_t root = 0; root < rss::kRootCount; ++root) {
    const auto& server = campaign.catalog().server(root);
    measure::ProbeRecord probe =
        campaign.prober().probe(vp, server.ipv6, now, round);
    auto zone = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
    if (!zone) {
      std::printf("%s: framing broken\n", server.name.c_str());
      continue;
    }
    auto result = dnssec::validate_zone(*zone, anchors, vp.local_clock(now));
    std::printf("%-22s serial=%u  %s, %s\n", server.name.c_str(), zone->serial(),
                result.fully_valid() ? "valid" : "INVALID",
                to_string(result.zonemd).c_str());
  }

  std::printf("\n== what the Table 2 fault classes look like ==\n");
  const auto& d = campaign.catalog().server(3);

  // 1. Bitflip in transit / in VP memory.
  measure::Prober::FaultKnobs flip;
  flip.inject_bitflip = true;
  flip.bitflip_seed = 11;
  auto corrupted = campaign.prober().probe(vp, d.ipv6, now, round, flip);
  if (auto zone = dns::Zone::from_axfr(corrupted.axfr->records, dns::Name()))
    report("bitflipped transfer:", dnssec::validate_zone(*zone, anchors, now));
  else
    std::printf("bitflipped transfer: broke AXFR framing (also detected)\n");
  std::printf("    (%s)\n", corrupted.axfr->bitflip_note.c_str());

  // 2. Stale server (frozen zone copy, like d.root Tokyo/Leeds).
  measure::Prober::FaultKnobs stale;
  stale.server_frozen_at = now - 25 * util::kSecondsPerDay - 9 * 3600;
  auto stale_probe = campaign.prober().probe(vp, d.ipv4, now, round, stale);
  if (auto zone = dns::Zone::from_axfr(stale_probe.axfr->records, dns::Name()))
    report("stale server (frozen 11-20):",
           dnssec::validate_zone(*zone, anchors, now));

  // 3. Skewed VP clock (validation happens at the VP's local time).
  measure::VantagePoint slow_vp = vp;
  slow_vp.clock_offset_s = -10 * util::kSecondsPerDay;
  auto skewed = campaign.prober().probe(slow_vp, d.ipv4, now, round);
  if (auto zone = dns::Zone::from_axfr(skewed.axfr->records, dns::Name()))
    report("VP clock 10 days slow:",
           dnssec::validate_zone(*zone, anchors, slow_vp.local_clock(now)));

  // 4. Corrupted glue: invisible to DNSSEC, caught only by ZONEMD.
  {
    auto probe = campaign.prober().probe(vp, d.ipv4, now, round);
    auto records = probe.axfr->records;
    for (auto& rr : records) {
      if (rr.type != dns::RRType::A || rr.name.label_count() != 2) continue;
      auto& a = std::get<dns::AData>(rr.rdata);
      auto bytes = a.address.bytes();
      a.address = util::IpAddress::v4(bytes[0], bytes[1], bytes[2],
                                      static_cast<uint8_t>(bytes[3] ^ 1));
      break;
    }
    if (auto zone = dns::Zone::from_axfr(records, dns::Name()))
      report("glue A corrupted (unsigned!):",
             dnssec::validate_zone(*zone, anchors, now));
  }
  std::printf("\nZONEMD catches all four — including the glue case DNSSEC\n"
              "cannot see. That is the paper's §7 argument in running code.\n");

  if (recorder.rssac002().write_jsonl("rssac002.jsonl", config.scenario_name))
    std::printf("\nwrote rssac002.jsonl (%zu instance-day records) — render "
                "with tools/obs_report.py\n",
                recorder.rssac002().record_count());
  return 0;
}
