// AXFR stream reassembly: 2-byte framing, multi-message sequences, SOA
// delimiters. A stream that parses into a zone must survive the full
// differential loop: zone → fresh AXFR wire → reassembled records → equal
// zone. This is the path where PR 3's fault injector plants bitflips, so
// "parse failure is a result, not an error" — but a *successful* parse must
// be exact.
#include "dns/axfr.h"
#include "dns/zone.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(axfr_stream) {
  auto parsed = dns::decode_axfr_stream({data, size});
  if (!parsed.ok()) return 0;
  // Structural guarantees of a successful parse.
  ROOTSIM_FUZZ_EXPECT(axfr_stream, parsed.records.size() >= 2);
  ROOTSIM_FUZZ_EXPECT(axfr_stream,
                      parsed.records.front().type == dns::RRType::SOA);
  ROOTSIM_FUZZ_EXPECT(axfr_stream,
                      parsed.records.back().type == dns::RRType::SOA);
  auto zone = dns::Zone::from_axfr(parsed.records,
                                   parsed.records.front().name);
  if (!zone) return 0;  // e.g. first/last SOA mismatch — a valid rejection
  // Differential loop: re-serialize the zone and reassemble.
  dns::Question question{zone->origin(), dns::RRType::AXFR, dns::RRClass::IN};
  auto wire = dns::encode_axfr_stream(zone->axfr_records(), question);
  // A hostile stream can carry a near-64 KiB RDATA that, re-encoded with its
  // full owner name, no longer fits one frame; the encoder then refuses
  // (empty stream) rather than desynchronize. That refusal is correct.
  if (wire.empty()) return 0;
  auto reparsed = dns::decode_axfr_stream(wire);
  ROOTSIM_FUZZ_EXPECT(axfr_stream, reparsed.ok());
  auto rezone = dns::Zone::from_axfr(reparsed.records, zone->origin());
  ROOTSIM_FUZZ_EXPECT(axfr_stream, rezone.has_value());
  ROOTSIM_FUZZ_EXPECT(axfr_stream, *rezone == *zone);
  return 0;
}

}  // namespace rootsim::fuzz
