// Full-zone DNSSEC validation over attacker-controlled transfers: the input
// bytes are an AXFR stream (libFuzzer seeds with the signed fixture's real
// transfer and mutates from there). Whatever arrives, validate_zone must
// classify it without crashing; the untouched fixture stream must still
// validate fully — if a "mutation" that equals the original stops verifying,
// the canonical-form machinery has diverged.
#include "dns/axfr.h"
#include "dnssec/validator.h"
#include "fuzz/generators.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(validation) {
  const SignedZoneFixture& fixture = shared_signed_zone();
  auto parsed = dns::decode_axfr_stream({data, size});
  if (!parsed.ok()) return 0;
  auto zone = dns::Zone::from_axfr(parsed.records, fixture.zone.origin());
  if (!zone) return 0;
  auto result = dnssec::validate_zone(*zone, fixture.anchors,
                                      fixture.validation_time);
  // Statuses must be internally consistent regardless of input.
  if (result.fully_valid())
    ROOTSIM_FUZZ_EXPECT(validation, result.signature_failures.empty());
  // The genuine transfer still validates — byte-identical input must never
  // drift to bogus.
  if (size == fixture.axfr_stream.size() &&
      std::equal(data, data + size, fixture.axfr_stream.begin())) {
    ROOTSIM_FUZZ_EXPECT(validation, result.fully_valid());
    ROOTSIM_FUZZ_EXPECT(validation,
                        result.zonemd == dnssec::ZonemdStatus::Verified);
  }
  return 0;
}

}  // namespace rootsim::fuzz
