// NXDOMAIN denial-of-existence validation on hostile responses: the input is
// a DNS message; verify_nxdomain_proof must classify its NSEC evidence
// without crashing, and a verdict of Proven requires that the response
// actually carried an NSEC record — the proof can never materialize out of
// nothing.
#include <algorithm>

#include "dns/message.h"
#include "dnssec/validator.h"
#include "fuzz/generators.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(denial) {
  const SignedZoneFixture& fixture = shared_signed_zone();
  auto message = dns::Message::decode({data, size});
  if (!message) return 0;
  dns::Name qname = *dns::Name::parse("nonexistent-tld.");
  auto status = dnssec::verify_nxdomain_proof(*message, qname, fixture.anchors,
                                              fixture.validation_time);
  bool has_nsec = std::any_of(
      message->authority.begin(), message->authority.end(),
      [](const dns::ResourceRecord& rr) { return rr.type == dns::RRType::NSEC; });
  if (status == dnssec::DenialStatus::Proven)
    ROOTSIM_FUZZ_EXPECT(denial, has_nsec);
  if (!has_nsec)
    ROOTSIM_FUZZ_EXPECT(denial, status == dnssec::DenialStatus::NoProof);
  return 0;
}

}  // namespace rootsim::fuzz
