// Per-type RDATA decoding from detached blobs (the first two input bytes
// select the RRType, the rest is the RDATA). Asserts the re-encode fixpoint
// in both message form and DNSSEC canonical form; canonical encoding must
// additionally be idempotent, since RRSIG and ZONEMD digests are computed
// over it — two canonicalizations disagreeing means signatures that verify
// on one host and not another.
#include "dns/codec.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(rdata_decode) {
  if (size < 2) return 0;
  auto type = static_cast<dns::RRType>(data[0] << 8 | data[1]);
  auto first = dns::decode_rdata(type, {data + 2, size - 2});
  if (!first) return 0;
  // Message-form fixpoint.
  auto wire1 = dns::encode_rdata(*first, /*canonical=*/false);
  auto second = dns::decode_rdata(type, wire1);
  ROOTSIM_FUZZ_EXPECT(rdata_decode, second.has_value());
  auto wire2 = dns::encode_rdata(*second, /*canonical=*/false);
  ROOTSIM_FUZZ_EXPECT(rdata_decode, wire1 == wire2);
  // Canonical-form idempotence: canonicalizing the canonical decode changes
  // nothing further.
  auto canon1 = dns::encode_rdata(*first, /*canonical=*/true);
  auto canon_decoded = dns::decode_rdata(type, canon1);
  ROOTSIM_FUZZ_EXPECT(rdata_decode, canon_decoded.has_value());
  auto canon2 = dns::encode_rdata(*canon_decoded, /*canonical=*/true);
  ROOTSIM_FUZZ_EXPECT(rdata_decode, canon1 == canon2);
  return 0;
}

}  // namespace rootsim::fuzz
