// Zone diffing driven by fuzz bytes as an edit script: derive two related
// zones, then assert the algebra — apply(diff(a,b)) turns a into b, applying
// the inverse turns it back, and a zone diffed against itself is empty. The
// paper's Fig. 10 intact-vs-received comparison rides on these being exact.
#include <algorithm>

#include "dns/zone_diff.h"
#include "fuzz/generators.h"
#include "fuzz/target.h"
#include "util/rng.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(zone_diff) {
  // Hash the input into an edit script: seed, zone size, and a sequence of
  // add/remove/mutate operations.
  uint64_t seed = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i)
    seed = (seed ^ data[i]) * 0x100000001b3ULL;
  util::Rng rng(seed);
  dns::Zone before = random_zone(rng, 1 + rng.uniform(4));
  dns::Zone after = before;
  size_t edits = std::min<size_t>(size, 24);
  for (size_t i = 0; i < edits; ++i) {
    uint8_t op = data[i];
    auto sets = after.rrsets();
    if (op % 3 == 0 && !sets.empty()) {
      // Remove one record of a random RRset.
      const dns::RRset* victim = sets[op % sets.size()];
      after.remove(victim->to_records().front());
    } else if (op % 3 == 1) {
      dns::Name owner = *dns::Name::parse("edit" + std::to_string(i) + ".");
      after.add({owner, dns::RRType::A, dns::RRClass::IN, 3600,
                 dns::AData{util::IpAddress::v4(10, 0, 0, op)}});
    } else if (!sets.empty()) {
      // Replace a whole RRset's TTL+rdata (remove then re-add changed).
      const dns::RRset* victim = sets[(op / 3) % sets.size()];
      dns::ResourceRecord rr = victim->to_records().front();
      after.remove_rrset(rr.name, rr.type);
      rr.ttl += 60;
      after.add(rr);
    }
  }

  ROOTSIM_FUZZ_EXPECT(zone_diff, diff_zones(before, before).empty());
  dns::ZoneDiff diff = diff_zones(before, after);
  dns::Zone forward = before;
  ROOTSIM_FUZZ_EXPECT(zone_diff, apply_diff(forward, diff));
  ROOTSIM_FUZZ_EXPECT(zone_diff, forward == after);
  ROOTSIM_FUZZ_EXPECT(zone_diff, apply_diff(forward, diff.inverse()));
  ROOTSIM_FUZZ_EXPECT(zone_diff, forward == before);
  // The rendering must mention every changed record (bounded output).
  ROOTSIM_FUZZ_EXPECT(zone_diff,
                      diff.empty() || !diff.to_string().empty());
  return 0;
}

}  // namespace rootsim::fuzz
