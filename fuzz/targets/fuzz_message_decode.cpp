// Message::decode on hostile bytes, plus the decode→encode→decode fixpoint:
// whatever a message decodes to, re-encoding and re-decoding must stabilize
// after one round (the codec is a retraction onto its image). Divergence here
// means two parsers fed the same capture disagree — the root cause of the
// measurement-undermining parser splits the DNS reachability literature
// documents.
#include "dns/message.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(message_decode) {
  auto first = dns::Message::decode({data, size});
  if (!first) return 0;
  auto wire1 = first->encode();
  auto second = dns::Message::decode(wire1);
  ROOTSIM_FUZZ_EXPECT(message_decode, second.has_value());
  auto wire2 = second->encode();
  ROOTSIM_FUZZ_EXPECT(message_decode, wire1 == wire2);
  return 0;
}

}  // namespace rootsim::fuzz
