// Master-file parsing on hostile text. A zone that parses must render back
// to a master file that (a) parses again and (b) yields the identical zone —
// the same round-trip the measurement pipeline relies on when it archives
// received zones as text and re-loads them for diffing.
#include <string>

#include "dns/zone.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(zone_parse) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  auto zone = dns::Zone::parse_master_file(text, &error);
  if (!zone) {
    // Failures must carry a diagnostic — silent nullopt loses the line info
    // operators need to triage corrupt archives.
    ROOTSIM_FUZZ_EXPECT(zone_parse, !error.empty());
    return 0;
  }
  std::string rendered = zone->to_master_file();
  auto reparsed = dns::Zone::parse_master_file(rendered, &error);
  ROOTSIM_FUZZ_EXPECT(zone_parse, reparsed.has_value());
  ROOTSIM_FUZZ_EXPECT(zone_parse, *reparsed == *zone);
  ROOTSIM_FUZZ_EXPECT(zone_parse, reparsed->to_master_file() == rendered);
  return 0;
}

}  // namespace rootsim::fuzz
