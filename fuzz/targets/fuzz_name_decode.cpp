// Name parsing with compression-pointer chasing — the single most abused
// spot in DNS wire format (loops, forward pointers, pointers past the end,
// over-long accumulated names). A name that decodes must satisfy the RFC
// 1035 limits and survive an uncompressed re-encode round-trip.
#include <algorithm>
#include <span>

#include "dns/wire.h"
#include "fuzz/target.h"

namespace rootsim::fuzz {

ROOTSIM_FUZZ_TARGET(name_decode) {
  // First two bytes position the read inside the remaining buffer, so inputs
  // can lay down pointer-target material *before* the name being parsed —
  // compression pointers only point backwards, so a name at offset 0 could
  // never chase a chain.
  if (size < 2) return 0;
  std::span<const uint8_t> buffer(data + 2, size - 2);
  size_t start = static_cast<size_t>(data[0] << 8 | data[1]) % (size - 1);
  dns::WireReader reader(buffer);
  reader.seek(std::min(start, buffer.size()));
  dns::Name name = reader.get_name();
  if (!reader.ok()) return 0;
  ROOTSIM_FUZZ_EXPECT(name_decode, name.wire_length() <= 255);
  ROOTSIM_FUZZ_EXPECT(name_decode, name.label_count() <= 127);
  ROOTSIM_FUZZ_EXPECT(name_decode, reader.offset() <= buffer.size());
  // Uncompressed round-trip: encode the parsed labels and parse them back.
  dns::WireWriter writer;
  writer.put_name(name, /*compress=*/false);
  ROOTSIM_FUZZ_EXPECT(name_decode, writer.size() == name.wire_length());
  dns::WireReader second(writer.data());
  dns::Name again = second.get_name();
  ROOTSIM_FUZZ_EXPECT(name_decode, second.ok());
  ROOTSIM_FUZZ_EXPECT(name_decode, again == name);
  // Case-insensitive equality and canonical ordering agree on reflexivity.
  ROOTSIM_FUZZ_EXPECT(name_decode, name.canonical_compare(again) == 0);
  ROOTSIM_FUZZ_EXPECT(name_decode, again.to_lower() == name);
  return 0;
}

}  // namespace rootsim::fuzz
