// Fuzz-target plumbing shared by the three ways a target runs:
//
//   1. libFuzzer binary (`cmake --preset fuzz`): one executable per target,
//      clang's -fsanitize=fuzzer provides main() and calls
//      LLVMFuzzerTestOneInput in a coverage-guided loop.
//   2. Replay gtest (`fuzz_replay_test`, plain ctest): every target runs its
//      committed regression corpus plus bounded seeded random/mutation
//      iterations — the exact same target code, no fuzzer runtime needed, so
//      it works under gcc ASan/UBSan and in CI.
//   3. Corpus generation (`fuzz_gen_corpus`): seeds are produced by the same
//      generators the replay harness mutates, keeping the corpus reproducible
//      from a clean checkout.
//
// A target is a pure function of the input bytes: parse, and if parsing
// succeeded, assert the codec's differential properties (re-encode fixpoint,
// canonical idempotence, ...). Returning nonzero or tripping an ASSERT aborts
// under libFuzzer and fails the gtest — both surface the offending input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rootsim::fuzz {

using TargetFn = int (*)(const uint8_t* data, size_t size);

struct Target {
  const char* name;
  TargetFn run;
};

/// All targets linked into this binary, in registration order.
const std::vector<Target>& targets();

/// Registers a target; used via ROOTSIM_FUZZ_TARGET below. Returns true so it
/// can initialize a namespace-scope dummy.
bool register_target(const char* name, TargetFn fn);

/// Aborts (prints `message` first) — the fuzz-mode analogue of ASSERT. Used
/// for property violations so libFuzzer minimizes on them exactly like on a
/// sanitizer fault.
[[noreturn]] void property_failure(const char* target, const char* message);

}  // namespace rootsim::fuzz

/// Defines the target function `fuzz_<name>` and registers it. When compiled
/// standalone for libFuzzer (ROOTSIM_FUZZ_STANDALONE), also emits the
/// LLVMFuzzerTestOneInput entry point; exactly one target per binary then.
#define ROOTSIM_FUZZ_TARGET(name)                                         \
  static int fuzz_##name(const uint8_t* data, size_t size);               \
  static const bool registered_##name =                                   \
      ::rootsim::fuzz::register_target(#name, &fuzz_##name);              \
  ROOTSIM_FUZZ_STANDALONE_ENTRY(name)                                     \
  static int fuzz_##name(const uint8_t* data, size_t size)

#ifdef ROOTSIM_FUZZ_STANDALONE
#define ROOTSIM_FUZZ_STANDALONE_ENTRY(name)                               \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) { \
    return fuzz_##name(data, size);                                       \
  }
#else
#define ROOTSIM_FUZZ_STANDALONE_ENTRY(name)
#endif

/// Asserts a differential property inside a target.
#define ROOTSIM_FUZZ_EXPECT(target_name, condition)                       \
  do {                                                                    \
    if (!(condition))                                                     \
      ::rootsim::fuzz::property_failure(#target_name, #condition);        \
  } while (0)
