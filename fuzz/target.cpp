#include "fuzz/target.h"

#include <cstdio>
#include <cstdlib>

namespace rootsim::fuzz {

namespace {

std::vector<Target>& mutable_targets() {
  static std::vector<Target> registry;
  return registry;
}

}  // namespace

const std::vector<Target>& targets() { return mutable_targets(); }

bool register_target(const char* name, TargetFn fn) {
  mutable_targets().push_back(Target{name, fn});
  return true;
}

void property_failure(const char* target, const char* message) {
  std::fprintf(stderr, "fuzz target %s: property violated: %s\n", target,
               message);
  std::abort();
}

}  // namespace rootsim::fuzz
