// Input generators for the wire-stack fuzz harness.
//
// Pure-random bytes almost never get past the header of a DNS parser: the
// counts say "12 records" and the first name is garbage, so deep states
// (compression chasing, per-type RDATA decoding, NSEC bitmaps, AXFR
// reassembly) go unvisited. These generators start from structurally valid
// artifacts — the same shapes the measurement pipeline produces — and mutate
// them, which is what drives coverage into the interesting branches. They
// are deterministic functions of the Rng so replay-mode failures reproduce
// from (seed, iteration) alone.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "dnssec/signer.h"
#include "dnssec/validator.h"
#include "util/rng.h"

namespace rootsim::fuzz {

/// A random valid query in the shapes the prober sends (./NS +dnssec, TLD
/// referral lookups, CHAOS identity queries).
dns::Message random_query(util::Rng& rng);

/// A random valid response exercising every modeled RDATA type (SOA, NS, A,
/// AAAA, TXT, MX, DS, DNSKEY, RRSIG, NSEC, ZONEMD, OPT, RFC 3597 generic),
/// name compression across sections, and flag combinations.
dns::Message random_response(util::Rng& rng);

/// A root-like unsigned zone with `tld_count` delegations (NS + DS + glue).
dns::Zone random_zone(util::Rng& rng, size_t tld_count);

/// A deterministically signed small root zone plus its trust anchors and the
/// validation wall-clock that makes its signatures current. Built once per
/// process (RSA keygen is the expensive part) and shared by the validation
/// targets; treat as immutable.
struct SignedZoneFixture {
  dns::Zone zone;
  dnssec::SigningKey ksk;
  dnssec::SigningKey zsk;
  dnssec::TrustAnchors anchors;
  util::UnixTime validation_time;
  std::vector<uint8_t> axfr_stream;  // the zone's framed wire transfer
};
const SignedZoneFixture& shared_signed_zone();

/// Wire bytes of a name preceded by `prefix_names` compressible names, i.e. a
/// buffer whose final name chases a chain of backward compression pointers.
/// The returned offset is where that final name starts.
struct PointerChainInput {
  std::vector<uint8_t> bytes;
  size_t final_name_offset = 0;
};
PointerChainInput pointer_chain_name(util::Rng& rng, size_t chain_length);

/// Structure-aware mutation: applies 1..`max_edits` random edits drawn from
/// {bit flip, byte overwrite, u16 boundary overwrite, truncation, span
/// duplication, span deletion, random insertion, compression-pointer
/// injection}. Never returns the input unchanged unless it was empty.
std::vector<uint8_t> mutate(const std::vector<uint8_t>& input, util::Rng& rng,
                            size_t max_edits = 4);

/// Pure-random bytes (the weakest generator; kept for smoke coverage).
std::vector<uint8_t> random_bytes(util::Rng& rng, size_t max_length);

}  // namespace rootsim::fuzz
