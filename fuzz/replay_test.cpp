// Deterministic replay harness: runs every registered fuzz target over
//
//   1. its committed regression corpus (fuzz/corpus/<target>/*), and
//   2. >= 10k seeded iterations of generator output — structure-aware
//      mutations of valid messages, zones, transfers and pointer chains,
//      plus a slice of pure-random bytes,
//
// in plain gtest, so the exact code the libFuzzer binaries run is exercised
// by ctest on every build and under ASan/UBSan in CI without clang's fuzzer
// runtime. A failure prints (target, corpus file | seed/iteration) — that
// tuple is the whole reproducer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dns/axfr.h"
#include "fuzz/generators.h"
#include "fuzz/target.h"
#include "util/rng.h"

#ifndef ROOTSIM_FUZZ_CORPUS_DIR
#define ROOTSIM_FUZZ_CORPUS_DIR "fuzz/corpus"
#endif

namespace rootsim::fuzz {
namespace {

constexpr size_t kIterationsPerTarget = 10500;

const Target* find_target(const std::string& name) {
  for (const auto& target : targets())
    if (target.name == name) return &target;
  return nullptr;
}

std::vector<std::filesystem::path> corpus_files(const std::string& target) {
  std::vector<std::filesystem::path> files;
  std::filesystem::path dir =
      std::filesystem::path(ROOTSIM_FUZZ_CORPUS_DIR) / target;
  if (std::filesystem::is_directory(dir))
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.is_regular_file()) files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// Fresh structurally-valid seed artifacts for a target; the harness mutates
// these. Rotating over several shapes per target keeps the mutation
// neighborhoods diverse.
std::vector<uint8_t> seed_input(const std::string& target, util::Rng& rng,
                                size_t iteration) {
  if (target == "message_decode")
    return (iteration % 2 ? random_response(rng) : random_query(rng)).encode();
  if (target == "name_decode") {
    auto chain = pointer_chain_name(rng, 1 + rng.uniform(70));
    std::vector<uint8_t> input;
    input.push_back(static_cast<uint8_t>(chain.final_name_offset >> 8));
    input.push_back(static_cast<uint8_t>(chain.final_name_offset));
    input.insert(input.end(), chain.bytes.begin(), chain.bytes.end());
    return input;
  }
  if (target == "rdata_decode") {
    auto msg = random_response(rng);
    if (msg.answers.empty()) return {0x00, 0x01};
    const auto& rr = msg.answers[rng.uniform(msg.answers.size())];
    auto rdata = dns::encode_rdata(rr.rdata, /*canonical=*/false);
    std::vector<uint8_t> input;
    input.push_back(static_cast<uint8_t>(static_cast<uint16_t>(rr.type) >> 8));
    input.push_back(static_cast<uint8_t>(static_cast<uint16_t>(rr.type)));
    input.insert(input.end(), rdata.begin(), rdata.end());
    return input;
  }
  if (target == "zone_parse") {
    auto text = random_zone(rng, 1 + rng.uniform(5)).to_master_file();
    return std::vector<uint8_t>(text.begin(), text.end());
  }
  if (target == "axfr_stream") {
    auto zone = random_zone(rng, 1 + rng.uniform(4));
    dns::Question question{zone.origin(), dns::RRType::AXFR, dns::RRClass::IN};
    dns::AxfrStreamOptions options;
    // Small budgets force multi-message streams, the reassembly-heavy shape.
    options.max_message_bytes = 256 + rng.uniform(1024);
    return dns::encode_axfr_stream(zone.axfr_records(), question, options);
  }
  if (target == "validation") return shared_signed_zone().axfr_stream;
  if (target == "denial") {
    const SignedZoneFixture& fixture = shared_signed_zone();
    dns::Message response;
    response.id = static_cast<uint16_t>(rng.next());
    response.qr = true;
    response.aa = true;
    response.rcode = dns::Rcode::NxDomain;
    response.questions.push_back({*dns::Name::parse("nonexistent-tld."),
                                  dns::RRType::A, dns::RRClass::IN});
    // All NSEC rrsets plus their covering RRSIGs form the denial evidence.
    for (const dns::RRset* set : fixture.zone.rrsets()) {
      if (set->type == dns::RRType::NSEC) {
        for (const auto& rr : set->to_records())
          response.authority.push_back(rr);
        const dns::RRset* sigs =
            fixture.zone.find(set->name, dns::RRType::RRSIG);
        if (sigs)
          for (const auto& rr : sigs->to_records())
            if (const auto* sig = std::get_if<dns::RrsigData>(&rr.rdata);
                sig && sig->type_covered == dns::RRType::NSEC)
              response.authority.push_back(rr);
      }
    }
    return response.encode();
  }
  // zone_diff and anything new: the input is an opaque edit script.
  return random_bytes(rng, 64);
}

class Replay : public ::testing::TestWithParam<const char*> {};

TEST_P(Replay, CommittedCorpusRunsClean) {
  const Target* target = find_target(GetParam());
  ASSERT_NE(target, nullptr);
  auto files = corpus_files(target->name);
  // Every target ships seeds; an empty directory means the corpus was not
  // generated/committed and regressions would go unreplayed.
  EXPECT_FALSE(files.empty())
      << "no corpus for " << target->name << " under " << ROOTSIM_FUZZ_CORPUS_DIR;
  for (const auto& file : files) {
    SCOPED_TRACE(file.string());
    auto bytes = read_file(file);
    EXPECT_EQ(target->run(bytes.data(), bytes.size()), 0);
  }
}

TEST_P(Replay, SeededIterationsRunClean) {
  const Target* target = find_target(GetParam());
  ASSERT_NE(target, nullptr);
  util::Rng rng(util::fnv1a(target->name));
  for (size_t iteration = 0; iteration < kIterationsPerTarget; ++iteration) {
    SCOPED_TRACE(std::string(target->name) + " iteration " +
                 std::to_string(iteration));
    std::vector<uint8_t> input;
    if (iteration % 16 == 15) {
      // A slice of pure-random bytes keeps the shallow rejection paths hot.
      input = random_bytes(rng, 512);
    } else {
      input = seed_input(target->name, rng, iteration);
      // Mutate most of the time, but feed some seeds through untouched so
      // the valid-input invariants (fixpoints, full validation) stay pinned.
      if (iteration % 8 != 0) input = mutate(input, rng);
    }
    ASSERT_EQ(target->run(input.data(), input.size()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, Replay,
                         ::testing::Values("message_decode", "name_decode",
                                           "rdata_decode", "zone_parse",
                                           "axfr_stream", "zone_diff",
                                           "validation", "denial"),
                         [](const auto& info) { return std::string(info.param); });

// The registry and the instantiation above must agree; a target added
// without replay coverage is exactly the gap this harness exists to close.
TEST(Registry, EveryTargetHasReplayCoverage) {
  EXPECT_EQ(targets().size(), 8u);
  for (const auto& target : targets())
    EXPECT_NE(find_target(target.name), nullptr);
}

}  // namespace
}  // namespace rootsim::fuzz
