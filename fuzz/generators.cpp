#include "fuzz/generators.h"

#include <algorithm>
#include <array>
#include <string>

#include "dns/axfr.h"
#include "util/timeutil.h"

namespace rootsim::fuzz {

using dns::Name;
using dns::RRClass;
using dns::RRType;

namespace {

Name random_name(util::Rng& rng) {
  static const char* const kNames[] = {
      ".",
      "com.",
      "net.",
      "org.",
      "example.com.",
      "a.root-servers.net.",
      "b.root-servers.net.",
      "m.root-servers.net.",
      "ns1.example.com.",
      "very.deep.label.chain.example.org.",
      "hostname.bind.",
      "xn--nxasmq6b.example.",
  };
  return *Name::parse(kNames[rng.uniform(std::size(kNames))]);
}

dns::Rdata random_rdata(util::Rng& rng) {
  switch (rng.uniform(13)) {
    case 0: {
      dns::SoaData soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<uint32_t>(rng.next());
      soa.refresh = 1800;
      soa.retry = 900;
      soa.expire = 604800;
      soa.minimum = 86400;
      return soa;
    }
    case 1:
      return dns::NsData{random_name(rng)};
    case 2:
      return dns::CnameData{random_name(rng)};
    case 3:
      return dns::AData{util::IpAddress::v4(
          static_cast<uint8_t>(rng.next()), static_cast<uint8_t>(rng.next()),
          static_cast<uint8_t>(rng.next()), static_cast<uint8_t>(rng.next()))};
    case 4: {
      std::array<uint8_t, 16> b;
      for (auto& octet : b) octet = static_cast<uint8_t>(rng.next());
      return dns::AaaaData{util::IpAddress::v6(b)};
    }
    case 5: {
      dns::TxtData txt;
      size_t strings = 1 + rng.uniform(3);
      for (size_t i = 0; i < strings; ++i)
        txt.strings.push_back(std::string(rng.uniform(40), 'x'));
      return txt;
    }
    case 6:
      return dns::MxData{static_cast<uint16_t>(rng.next()), random_name(rng)};
    case 7: {
      dns::DsData ds;
      ds.key_tag = static_cast<uint16_t>(rng.next());
      ds.algorithm = 8;
      ds.digest_type = 2;
      ds.digest.assign(32, static_cast<uint8_t>(rng.next()));
      return ds;
    }
    case 8: {
      dns::DnskeyData key;
      key.flags = rng.chance(0.5) ? 256 : 257;
      key.algorithm = 8;
      key.public_key.assign(4 + rng.uniform(68), static_cast<uint8_t>(rng.next()));
      return key;
    }
    case 9: {
      dns::RrsigData sig;
      sig.type_covered = RRType::NS;
      sig.algorithm = 8;
      sig.labels = static_cast<uint8_t>(rng.uniform(4));
      sig.original_ttl = 518400;
      sig.expiration = 0x65a00000;
      sig.inception = 0x65700000;
      sig.key_tag = static_cast<uint16_t>(rng.next());
      sig.signer = Name();
      sig.signature.assign(64, static_cast<uint8_t>(rng.next()));
      return sig;
    }
    case 10: {
      dns::NsecData nsec;
      nsec.next = random_name(rng);
      size_t types = 1 + rng.uniform(5);
      for (size_t i = 0; i < types; ++i)
        nsec.types.push_back(static_cast<RRType>(1 + rng.uniform(300)));
      return nsec;
    }
    case 11: {
      dns::ZonemdData z;
      z.serial = static_cast<uint32_t>(rng.next());
      z.scheme = dns::ZonemdData::kSchemeSimple;
      z.hash_algorithm = rng.chance(0.8) ? dns::ZonemdData::kHashSha384
                                         : dns::ZonemdData::kPrivateHashAlgorithm;
      z.digest.assign(48, static_cast<uint8_t>(rng.next()));
      return z;
    }
    default: {
      dns::GenericData g;
      // Unassigned type codes, exercising the RFC 3597 fallback.
      g.type_code = static_cast<uint16_t>(200 + rng.uniform(50));
      g.bytes.assign(rng.uniform(24), static_cast<uint8_t>(rng.next()));
      return g;
    }
  }
}

dns::ResourceRecord random_record(util::Rng& rng) {
  dns::ResourceRecord rr;
  rr.rdata = random_rdata(rng);
  rr.type = dns::rdata_type(rr.rdata);
  rr.name = random_name(rng);
  rr.rclass = RRClass::IN;
  rr.ttl = static_cast<uint32_t>(rng.uniform(1u << 20));
  return rr;
}

}  // namespace

dns::Message random_query(util::Rng& rng) {
  static const RRType kTypes[] = {RRType::NS,   RRType::SOA,  RRType::A,
                                  RRType::AAAA, RRType::DNSKEY, RRType::TXT};
  dns::Message msg;
  if (rng.chance(0.15)) {
    // CHAOS-class identity query (hostname.bind TXT CH).
    msg = dns::make_query(static_cast<uint16_t>(rng.next()),
                          *Name::parse("hostname.bind."), RRType::TXT,
                          RRClass::CH);
  } else {
    msg = dns::make_query(static_cast<uint16_t>(rng.next()), random_name(rng),
                          kTypes[rng.uniform(std::size(kTypes))], RRClass::IN,
                          rng.chance(0.5));
  }
  return msg;
}

dns::Message random_response(util::Rng& rng) {
  dns::Message msg = random_query(rng);
  msg.qr = true;
  msg.aa = rng.chance(0.8);
  msg.tc = rng.chance(0.05);
  msg.ra = rng.chance(0.2);
  msg.ad = rng.chance(0.2);
  msg.rcode = rng.chance(0.9) ? dns::Rcode::NoError : dns::Rcode::NxDomain;
  size_t answers = rng.uniform(6);
  size_t authority = rng.uniform(3);
  size_t additional = rng.uniform(3);
  for (size_t i = 0; i < answers; ++i)
    msg.answers.push_back(random_record(rng));
  for (size_t i = 0; i < authority; ++i)
    msg.authority.push_back(random_record(rng));
  for (size_t i = 0; i < additional; ++i)
    msg.additional.push_back(random_record(rng));
  return msg;
}

dns::Zone random_zone(util::Rng& rng, size_t tld_count) {
  dns::Zone zone{Name()};
  dns::SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 2023120600 + static_cast<uint32_t>(rng.uniform(1000));
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  zone.add({Name(), RRType::SOA, RRClass::IN, 86400, soa});
  for (char c = 'a'; c <= 'm'; ++c)
    zone.add({Name(), RRType::NS, RRClass::IN, 518400,
              dns::NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")}});
  for (size_t i = 0; i < tld_count; ++i) {
    std::string tld = "tld" + std::to_string(i);
    Name owner = *Name::parse(tld + ".");
    Name ns = *Name::parse("ns1." + tld + ".");
    zone.add({owner, RRType::NS, RRClass::IN, 172800, dns::NsData{ns}});
    zone.add({owner, RRType::DS, RRClass::IN, 86400,
              dns::DsData{static_cast<uint16_t>(rng.next()), 8, 2,
                          std::vector<uint8_t>(32, static_cast<uint8_t>(i))}});
    zone.add({ns, RRType::A, RRClass::IN, 172800,
              dns::AData{util::IpAddress::v4(192, 0, 2, static_cast<uint8_t>(i))}});
  }
  return zone;
}

const SignedZoneFixture& shared_signed_zone() {
  static const SignedZoneFixture fixture = [] {
    SignedZoneFixture f;
    util::Rng rng(20231206);
    f.zone = random_zone(rng, 3);
    f.ksk = dnssec::make_ksk(rng, 512);  // small keys: verify speed matters,
    f.zsk = dnssec::make_zsk(rng, 512);  // not cryptographic strength
    dnssec::SigningPolicy policy;
    policy.inception = util::make_time(2023, 12, 1);
    policy.expiration = util::make_time(2023, 12, 15);
    policy.zonemd = dnssec::SigningPolicy::ZonemdMode::Sha384;
    dnssec::sign_zone(f.zone, f.ksk, f.zsk, policy);
    f.anchors = dnssec::TrustAnchors::from_zone_apex(f.zone);
    f.validation_time = util::make_time(2023, 12, 7);
    dns::Question question{Name(), RRType::AXFR, RRClass::IN};
    f.axfr_stream = dns::encode_axfr_stream(f.zone.axfr_records(), question);
    return f;
  }();
  return fixture;
}

PointerChainInput pointer_chain_name(util::Rng& rng, size_t chain_length) {
  PointerChainInput out;
  // Lay down a base name, then `chain_length` names that each point at the
  // previous one after contributing one label — the deepest legitimate
  // compression shape. The final name is just a pointer to the top of the
  // chain.
  dns::WireWriter writer;
  writer.put_u8(4);
  for (char c : {'r', 'o', 'o', 't'}) writer.put_u8(static_cast<uint8_t>(c));
  writer.put_u8(0);
  size_t previous = 0;
  for (size_t i = 0; i < chain_length; ++i) {
    size_t start = writer.size();
    if (start >= 0x3FFF) break;  // pointer offsets are 14-bit
    std::string label = "l" + std::to_string(rng.uniform(100));
    writer.put_u8(static_cast<uint8_t>(label.size()));
    for (char c : label) writer.put_u8(static_cast<uint8_t>(c));
    writer.put_u16(static_cast<uint16_t>(0xC000 | previous));
    previous = start;
  }
  out.final_name_offset = writer.size();
  writer.put_u16(static_cast<uint16_t>(0xC000 | previous));
  out.bytes = writer.take();
  return out;
}

std::vector<uint8_t> mutate(const std::vector<uint8_t>& input, util::Rng& rng,
                            size_t max_edits) {
  std::vector<uint8_t> bytes = input;
  if (bytes.empty()) return bytes;
  size_t edits = 1 + rng.uniform(max_edits);
  for (size_t e = 0; e < edits && !bytes.empty(); ++e) {
    size_t at = rng.uniform(bytes.size());
    switch (rng.uniform(8)) {
      case 0:  // bit flip
        bytes[at] ^= static_cast<uint8_t>(1u << rng.uniform(8));
        break;
      case 1:  // byte overwrite
        bytes[at] = static_cast<uint8_t>(rng.next());
        break;
      case 2: {  // u16 boundary overwrite: counts/lengths love these values
        if (at + 1 >= bytes.size()) break;
        static const uint16_t kBoundaries[] = {0, 1, 0x00FF, 0x0100,
                                               0x7FFF, 0xFFFF};
        uint16_t v = kBoundaries[rng.uniform(std::size(kBoundaries))];
        bytes[at] = static_cast<uint8_t>(v >> 8);
        bytes[at + 1] = static_cast<uint8_t>(v);
        break;
      }
      case 3:  // truncate
        bytes.resize(at);
        break;
      case 4: {  // duplicate a span
        size_t span = 1 + rng.uniform(std::min<size_t>(bytes.size() - at, 32));
        std::vector<uint8_t> copy(bytes.begin() + static_cast<long>(at),
                                  bytes.begin() + static_cast<long>(at + span));
        bytes.insert(bytes.begin() + static_cast<long>(at), copy.begin(),
                     copy.end());
        break;
      }
      case 5: {  // delete a span
        size_t span = 1 + rng.uniform(std::min<size_t>(bytes.size() - at, 32));
        bytes.erase(bytes.begin() + static_cast<long>(at),
                    bytes.begin() + static_cast<long>(at + span));
        break;
      }
      case 6: {  // insert random bytes
        size_t span = 1 + rng.uniform(8);
        std::vector<uint8_t> junk(span);
        for (auto& b : junk) b = static_cast<uint8_t>(rng.next());
        bytes.insert(bytes.begin() + static_cast<long>(at), junk.begin(),
                     junk.end());
        break;
      }
      default: {  // compression-pointer injection
        if (at + 1 >= bytes.size()) break;
        uint16_t target = static_cast<uint16_t>(rng.uniform(bytes.size() + 4));
        bytes[at] = static_cast<uint8_t>(0xC0 | (target >> 8));
        bytes[at + 1] = static_cast<uint8_t>(target);
        break;
      }
    }
  }
  return bytes;
}

std::vector<uint8_t> random_bytes(util::Rng& rng, size_t max_length) {
  std::vector<uint8_t> bytes(rng.uniform(max_length + 1));
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
  return bytes;
}

}  // namespace rootsim::fuzz
