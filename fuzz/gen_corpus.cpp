// Writes the seed corpora under fuzz/corpus/<target>/ — structurally valid
// messages, transfers, zones and pointer chains produced by the same
// generators the replay harness mutates, so the whole corpus reproduces from
// a clean checkout:
//
//   ./fuzz_gen_corpus [corpus_dir]      (default: fuzz/corpus)
//
// Seeds are deterministic (fixed Rng seeds); re-running overwrites files
// byte-identically, so `git status` staying clean doubles as a regression
// check on the generators.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dns/axfr.h"
#include "fuzz/generators.h"
#include "util/rng.h"

namespace fs = std::filesystem;
using namespace rootsim;

namespace {

void write_seed(const fs::path& dir, const std::string& name,
                const std::vector<uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s/%s (%zu bytes)\n", dir.string().c_str(), name.c_str(),
              bytes.size());
}

std::vector<uint8_t> to_bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  util::Rng rng(7);

  // message_decode: prober-shaped queries and responses, plus an RFC 8109
  // priming-style referral (root NS + glue in additional).
  for (int i = 0; i < 4; ++i)
    write_seed(root / "message_decode", "query-" + std::to_string(i) + ".bin",
               fuzz::random_query(rng).encode());
  for (int i = 0; i < 6; ++i)
    write_seed(root / "message_decode", "response-" + std::to_string(i) + ".bin",
               fuzz::random_response(rng).encode());
  {
    dns::Message priming = dns::make_query(0x2024, dns::Name(),
                                           dns::RRType::NS, dns::RRClass::IN,
                                           /*dnssec_ok=*/true);
    priming.qr = true;
    priming.aa = true;
    for (char c = 'a'; c <= 'm'; ++c) {
      std::string host = std::string(1, c) + ".root-servers.net.";
      priming.answers.push_back({dns::Name(), dns::RRType::NS,
                                 dns::RRClass::IN, 518400,
                                 dns::NsData{*dns::Name::parse(host)}});
      priming.additional.push_back(
          {*dns::Name::parse(host), dns::RRType::A, dns::RRClass::IN, 518400,
           dns::AData{util::IpAddress::v4(198, 41, 0, static_cast<uint8_t>(c))}});
    }
    write_seed(root / "message_decode", "priming-response.bin",
               priming.encode());
  }

  // name_decode: [u16 offset][buffer], deep-but-legal pointer chains plus one
  // over-budget chain (a valid *rejection* seed).
  for (size_t hops : {1u, 8u, 40u, 63u, 70u}) {
    auto chain = fuzz::pointer_chain_name(rng, hops);
    std::vector<uint8_t> input;
    input.push_back(static_cast<uint8_t>(chain.final_name_offset >> 8));
    input.push_back(static_cast<uint8_t>(chain.final_name_offset));
    input.insert(input.end(), chain.bytes.begin(), chain.bytes.end());
    write_seed(root / "name_decode", "chain-" + std::to_string(hops) + ".bin",
               input);
  }

  // rdata_decode: one seed per modeled RDATA type, [u16 type][rdata bytes].
  {
    size_t written = 0;
    util::Rng rdata_rng(11);
    // Draw until every distinct wire type has one seed file.
    std::vector<uint16_t> seen;
    for (int attempt = 0; attempt < 4000 && written < 13; ++attempt) {
      auto msg = fuzz::random_response(rdata_rng);
      for (const auto& rr : msg.answers) {
        uint16_t code = static_cast<uint16_t>(rr.type);
        if (std::find(seen.begin(), seen.end(), code) != seen.end()) continue;
        seen.push_back(code);
        auto rdata = dns::encode_rdata(rr.rdata, /*canonical=*/false);
        std::vector<uint8_t> input{static_cast<uint8_t>(code >> 8),
                                   static_cast<uint8_t>(code)};
        input.insert(input.end(), rdata.begin(), rdata.end());
        write_seed(root / "rdata_decode",
                   "type-" + std::to_string(code) + ".bin", input);
        ++written;
      }
    }
  }

  // zone_parse: rendered zones plus a handcrafted file covering escapes,
  // quoting, $directives, relative names and both TTL/class orders.
  for (int i = 0; i < 3; ++i)
    write_seed(root / "zone_parse", "zone-" + std::to_string(i) + ".txt",
               to_bytes(fuzz::random_zone(rng, 2 + i).to_master_file()));
  write_seed(root / "zone_parse", "handcrafted.txt", to_bytes(
      "$ORIGIN example.\n"
      "$TTL 3600\n"
      "@ IN SOA ns1 hostmaster 2024010100 1800 900 604800 86400\n"
      "  IN NS ns1\n"
      "ns1 172800 IN A 192.0.2.1\n"
      "ns1 IN 172800 AAAA 2001:db8::1\n"
      "txt IN TXT \"hello world\" \"with \\\"quotes\\\"\" unquoted\n"
      "esc\\046aped IN A 192.0.2.2 ; comment\n"
      "mx IN MX 10 ns1\n"));

  // axfr_stream: single- and multi-message transfers of unsigned zones.
  for (size_t budget : {0u, 300u, 700u}) {
    auto zone = fuzz::random_zone(rng, 4);
    dns::Question question{zone.origin(), dns::RRType::AXFR, dns::RRClass::IN};
    dns::AxfrStreamOptions options;
    if (budget) options.max_message_bytes = budget;
    write_seed(root / "axfr_stream",
               budget ? "multi-" + std::to_string(budget) + ".bin"
                      : "single.bin",
               dns::encode_axfr_stream(zone.axfr_records(), question, options));
  }

  // zone_diff: opaque edit scripts of varied length.
  for (size_t length : {0u, 3u, 16u, 48u}) {
    util::Rng script_rng(length);
    std::vector<uint8_t> script(length);
    for (auto& b : script) b = static_cast<uint8_t>(script_rng.next());
    write_seed(root / "zone_diff", "script-" + std::to_string(length) + ".bin",
               script);
  }

  // validation: the signed fixture transfer intact, with one mid-stream
  // bitflip (a Table-2 "bogus signature" shape), and with its ZONEMD digest
  // region flipped.
  {
    const auto& fixture = fuzz::shared_signed_zone();
    write_seed(root / "validation", "signed-intact.bin", fixture.axfr_stream);
    auto flipped = fixture.axfr_stream;
    flipped[flipped.size() / 2] ^= 0x01;
    write_seed(root / "validation", "signed-bitflip.bin", flipped);
    auto tail_flipped = fixture.axfr_stream;
    tail_flipped[tail_flipped.size() - 20] ^= 0x80;
    write_seed(root / "validation", "signed-tailflip.bin", tail_flipped);
  }

  // denial: a genuine NXDOMAIN proof (NSEC + RRSIGs from the signed zone), a
  // proof with the signature stripped, and a bare NXDOMAIN.
  {
    const auto& fixture = fuzz::shared_signed_zone();
    dns::Message response;
    response.id = 0x4444;
    response.qr = true;
    response.aa = true;
    response.rcode = dns::Rcode::NxDomain;
    response.questions.push_back({*dns::Name::parse("nonexistent-tld."),
                                  dns::RRType::A, dns::RRClass::IN});
    dns::Message bare = response;
    for (const dns::RRset* set : fixture.zone.rrsets()) {
      if (set->type != dns::RRType::NSEC) continue;
      for (const auto& rr : set->to_records()) response.authority.push_back(rr);
      if (const dns::RRset* sigs =
              fixture.zone.find(set->name, dns::RRType::RRSIG))
        for (const auto& rr : sigs->to_records())
          if (const auto* sig = std::get_if<dns::RrsigData>(&rr.rdata);
              sig && sig->type_covered == dns::RRType::NSEC)
            response.authority.push_back(rr);
    }
    write_seed(root / "denial", "nxdomain-proven.bin", response.encode());
    dns::Message stripped = response;
    std::erase_if(stripped.authority, [](const dns::ResourceRecord& rr) {
      return rr.type == dns::RRType::RRSIG;
    });
    write_seed(root / "denial", "nxdomain-unsigned.bin", stripped.encode());
    write_seed(root / "denial", "nxdomain-bare.bin", bare.encode());
  }

  std::printf("corpus written under %s\n", root.string().c_str());
  return 0;
}
