#!/usr/bin/env python3
"""Render rssac002.jsonl (per-instance daily telemetry) into tables.

The simulation's root server instances export RSSAC002-style records — one
JSON object per (instance, day) with query/response volume split by
transport and address family, the rcode mix, truncation counts, size
distributions and unique-source estimates (see src/obs/rssac002.h). This
tool renders that JSONL into the tables an operator would read:

    tools/obs_report.py rssac002.jsonl              # all tables
    tools/obs_report.py --table traffic r.jsonl     # one table
    tools/obs_report.py --instance k1-lon r.jsonl   # one instance

Tables:
    traffic   queries/responses by transport and family, truncation, AXFR
    rcodes    response-code mix per instance
    sizes     query/response size distributions (p50/p90/p99, max)
    sources   unique-source estimates per family

Pure stdlib; no dependencies.
"""

import argparse
import json
import sys


def load(path):
    """Returns (records, scenario). Exports stamped by a scenario carry one
    {"scenario": "<name>"} header line before the data records."""
    records = []
    scenario = None
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {err}")
            if set(record) == {"scenario"}:
                scenario = record["scenario"]
                continue
            records.append(record)
    return records, scenario


def fmt_table(headers, rows):
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))).rstrip())
    return "\n".join(lines)


def key(record):
    return (record.get("instance", "?"), record.get("day", "?"))


def table_traffic(records):
    rows = []
    for r in records:
        udp = r.get("dns-udp-queries-received-ipv4", 0) + r.get(
            "dns-udp-queries-received-ipv6", 0)
        tcp = r.get("dns-tcp-queries-received-ipv4", 0) + r.get(
            "dns-tcp-queries-received-ipv6", 0)
        v4 = r.get("dns-udp-queries-received-ipv4", 0) + r.get(
            "dns-tcp-queries-received-ipv4", 0)
        v6 = r.get("dns-udp-queries-received-ipv6", 0) + r.get(
            "dns-tcp-queries-received-ipv6", 0)
        responses = sum(
            r.get(f"dns-{p}-responses-sent-{f}", 0)
            for p in ("udp", "tcp") for f in ("ipv4", "ipv6"))
        total = udp + tcp
        tc = r.get("dns-responses-truncated", 0)
        rows.append([
            *key(r), total, udp, tcp, v4, v6, responses, tc,
            f"{100.0 * tc / total:.2f}%" if total else "-",
            r.get("axfr-served", 0),
        ])
    headers = ["instance", "day", "queries", "udp", "tcp", "ipv4", "ipv6",
               "responses", "tc", "tc-rate", "axfr"]
    return fmt_table(headers, rows)


def table_rcodes(records):
    names = {"0": "NOERROR", "1": "FORMERR", "2": "SERVFAIL", "3": "NXDOMAIN",
             "4": "NOTIMP", "5": "REFUSED"}
    codes = []
    for r in records:
        for code in r.get("rcode-volume", {}):
            if code not in codes:
                codes.append(code)
    codes.sort(key=lambda c: (c == "other", int(c) if c.isdigit() else 0))
    headers = ["instance", "day"] + [names.get(c, f"rcode{c}") for c in codes]
    rows = [[*key(r)] + [r.get("rcode-volume", {}).get(c, 0) for c in codes]
            for r in records]
    return fmt_table(headers, rows)


def table_sizes(records):
    rows = []
    for r in records:
        row = [*key(r)]
        for field in ("query-size", "udp-response-size", "tcp-response-size"):
            h = r.get(field, {})
            if h.get("count"):
                row.append(f"{h['p50']:.0f}/{h['p90']:.0f}/{h['p99']:.0f}"
                           f" (max {h['max']})")
            else:
                row.append("-")
        rows.append(row)
    headers = ["instance", "day", "query p50/p90/p99", "udp-resp p50/p90/p99",
               "tcp-resp p50/p90/p99"]
    return fmt_table(headers, rows)


def table_sources(records):
    rows = [[*key(r), r.get("num-sources-ipv4", 0), r.get("num-sources-ipv6", 0)]
            for r in records]
    return fmt_table(["instance", "day", "sources-ipv4", "sources-ipv6"], rows)


TABLES = {
    "traffic": table_traffic,
    "rcodes": table_rcodes,
    "sizes": table_sizes,
    "sources": table_sources,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="rssac002.jsonl file to render")
    parser.add_argument("--table", choices=sorted(TABLES), action="append",
                        help="render only this table (repeatable)")
    parser.add_argument("--instance", help="filter to one instance identity")
    parser.add_argument("--day", help="filter to one day (YYYY-MM-DD)")
    args = parser.parse_args()

    records, scenario = load(args.jsonl)
    if args.instance:
        records = [r for r in records if r.get("instance") == args.instance]
    if args.day:
        records = [r for r in records if r.get("day") == args.day]
    if not records:
        print("no records matched", file=sys.stderr)
        return 1
    records.sort(key=key)

    selected = args.table or sorted(TABLES)
    out = []
    if scenario:
        out.append(f"scenario: {scenario}")
        out.append("")
    for name in selected:
        out.append(f"== {name} ==")
        out.append(TABLES[name](records))
        out.append("")
    print("\n".join(out).rstrip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
