#!/usr/bin/env python3
"""Render slo.jsonl / incidents.jsonl (streaming SLO monitor) into tables.

The streaming RSSAC047 monitor (src/obs/slo.h, src/obs/incident.h) exports
one JSON object per evaluated sliding window (slo.jsonl) and one per
detected incident (incidents.jsonl). This tool renders them the way an
on-call operator would read them:

    tools/slo_report.py slo.jsonl                        # health + margins
    tools/slo_report.py slo.jsonl --incidents incidents.jsonl
    tools/slo_report.py slo.jsonl --table health --letter b

Tables:
    health     per-letter timeline: one row per (letter, family) stream with
               window count, breached-window count and a compact breach
               sparkline ('.' healthy, '!' breached, ' ' unevaluated)
    margins    per-letter worst-case distance to each threshold across all
               evaluated windows (how close each stream came to paging)
    incidents  the incident log: open/close times, worst value, attributed
               cause (requires --incidents)

Pure stdlib; no dependencies.
"""

import argparse
import json
import sys


def load(path):
    """Returns (records, scenario). Exports stamped by a scenario carry one
    {"scenario": "<name>"} header line before the data records."""
    records = []
    scenario = None
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {err}")
            if set(record) == {"scenario"}:
                scenario = record["scenario"]
                continue
            records.append(record)
    return records, scenario


def fmt_table(headers, rows):
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))).rstrip())
    return "\n".join(lines)


def stream_key(record):
    return (record.get("letter", "?"), record.get("family", "?"))


def by_stream(windows):
    streams = {}
    for w in windows:
        streams.setdefault(stream_key(w), []).append(w)
    for rows in streams.values():
        rows.sort(key=lambda w: w.get("start", ""))
    return streams


def sparkline(rows, width=60):
    """One char per window: '.' healthy, '!' breached, ' ' unevaluated.

    Long timelines are downsampled; a chunk is '!' if any window in it
    breached — an operator wants breaches to survive the squint.
    """
    marks = ["!" if w.get("breaches") else "." if w.get("evaluated") else " "
             for w in rows]
    if len(marks) <= width:
        return "".join(marks)
    out = []
    for i in range(width):
        chunk = marks[i * len(marks) // width:(i + 1) * len(marks) // width]
        out.append("!" if "!" in chunk else "." if "." in chunk else " ")
    return "".join(out)


def table_health(windows):
    rows = []
    for (letter, family), stream in sorted(by_stream(windows).items()):
        evaluated = [w for w in stream if w.get("evaluated")]
        breached = [w for w in evaluated if w.get("breaches")]
        rows.append([letter, family, len(stream), len(evaluated),
                     len(breached), sparkline(stream)])
    return fmt_table(["letter", "family", "windows", "evaluated", "breached",
                      "timeline"], rows)


def table_margins(windows):
    """Worst observed value per metric per stream, vs. what breached.

    Margins answer the question incidents don't: how close did the healthy
    streams come to paging?
    """
    rows = []
    for (letter, family), stream in sorted(by_stream(windows).items()):
        evaluated = [w for w in stream if w.get("evaluated")]
        if not evaluated:
            rows.append([letter, family, "-", "-", "-", "-", "-"])
            continue
        worst_avail = min(w.get("availability", 1.0) for w in evaluated)
        worst_rtt = max(w.get("rtt_p95_ms", 0.0) for w in evaluated)
        pubs = [w["publication_p95_s"] for w in evaluated
                if w.get("publication_count")]
        stale = max(w.get("staleness_max_s", 0.0) for w in evaluated)
        checks = sum(w.get("integrity_checks", 0) for w in evaluated)
        ok = sum(w.get("integrity_ok", 0) for w in evaluated)
        rows.append([
            letter, family, f"{100 * worst_avail:.4f}%",
            f"{worst_rtt:.1f}", f"{max(pubs):.0f}" if pubs else "-",
            f"{stale:.0f}",
            f"{100 * ok / checks:.2f}%" if checks else "-",
        ])
    return fmt_table(["letter", "family", "worst-avail", "worst-p95-ms",
                      "worst-pub-p95-s", "worst-stale-s", "integrity-ok"],
                     rows)


def table_incidents(incidents):
    if not incidents:
        return "(no incidents)"
    rows = []
    for inc in incidents:
        rows.append([
            inc.get("id", "?"), inc.get("letter", "?"),
            inc.get("family", "?"), inc.get("metric", "?"),
            inc.get("opened", "?"), inc.get("closed") or "OPEN",
            inc.get("breach_windows", 0), f"{inc.get('worst', 0):.6g}",
            inc.get("cause", "unknown"),
        ])
    return fmt_table(["id", "letter", "family", "metric", "opened", "closed",
                      "windows", "worst", "cause"], rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="slo.jsonl file to render")
    parser.add_argument("--incidents", help="incidents.jsonl to render too")
    parser.add_argument("--table", choices=["health", "margins", "incidents"],
                        action="append", help="render only this table")
    parser.add_argument("--letter", help="filter to one root letter")
    parser.add_argument("--family", choices=["v4", "v6"],
                        help="filter to one address family")
    args = parser.parse_args()

    windows, scenario = load(args.jsonl)
    incidents, _ = load(args.incidents) if args.incidents else ([], None)
    if args.letter:
        windows = [w for w in windows if w.get("letter") == args.letter]
        incidents = [i for i in incidents if i.get("letter") == args.letter]
    if args.family:
        windows = [w for w in windows if w.get("family") == args.family]
        incidents = [i for i in incidents if i.get("family") == args.family]
    if not windows:
        print("no windows matched", file=sys.stderr)
        return 1

    selected = args.table or (["health", "margins"] +
                              (["incidents"] if args.incidents else []))
    out = []
    if scenario:
        out.append(f"scenario: {scenario}")
        out.append("")
    for name in selected:
        out.append(f"== {name} ==")
        if name == "incidents":
            if not args.incidents:
                parser.error("--table incidents requires --incidents FILE")
            out.append(table_incidents(incidents))
        elif name == "health":
            out.append(table_health(windows))
        else:
            out.append(table_margins(windows))
        out.append("")
    print("\n".join(out).rstrip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
