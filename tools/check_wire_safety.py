#!/usr/bin/env python3
"""Lint the WireReader safety contract.

WireReader's get_* accessors return zeros/empties once a bounds check fails;
the *caller* is responsible for consulting ok() before trusting anything it
read. That contract is easy to uphold inside the codec layer and easy to
violate everywhere else, so this lint enforces two rules:

  1. Layering: only the codec layer (src/dns/wire.*, codec.*, message.*,
     axfr.*) and fuzz targets may use WireReader at all. Everything above it
     consumes decoded Message/ResourceRecord values and never touches raw
     wire bytes. A new WireReader user outside the allowlist is almost
     always a parser being grown in the wrong place.

  2. Checked reads: within the files that may use WireReader, every function
     body that calls reader.get_*()/skip()/seek() must also consult ok()
     (or set the failure itself via fail()). A body that reads and never
     checks is exactly the silent-garbage pattern the hardening work
     removed.

Heuristics are intentionally line/brace based — no compiler needed — and the
codebase is expected to stay lint-clean: run from the repo root with no
arguments, exit 0 means clean.
"""

import re
import sys
from pathlib import Path

# Files allowed to use WireReader (rule 1). Globs are relative to repo root.
ALLOWED_WIRE_USERS = [
    "src/dns/wire.h",
    "src/dns/wire.cpp",
    "src/dns/codec.h",
    "src/dns/codec.cpp",
    "src/dns/message.h",
    "src/dns/message.cpp",
    "src/dns/axfr.h",
    "src/dns/axfr.cpp",
    "fuzz/targets/*.cpp",
    "tests/dns_wire_test.cpp",
    "tests/dns_codec_test.cpp",
    "tests/dns_fuzz_test.cpp",
    "tests/dns_roundtrip_property_test.cpp",
]

# Reader method calls that consume wire data (rule 2).
READ_CALL = re.compile(r"\b(\w+)\s*[.\-]>?\s*(get_u8|get_u16|get_u32|get_bytes|get_name|skip|seek)\s*\(")
# Anything that counts as consulting the reader's validity.
OK_CHECK = re.compile(r"[.\-]>?\s*(ok|fail)\s*\(\s*\)")
# A body that hands the reader on transfers the checking obligation.
HANDOFF = re.compile(r"\(\s*&?\s*(reader|r|second|[a-z_]*reader)\b[^)]*\)")

DECL = re.compile(r"\bWireReader\b")


def match_any(path, patterns):
    return any(path.match(glob) for glob in patterns)


def function_bodies(text):
    """Yields (start_line, body_text) for each top-level brace block.

    Coarse but effective for this codebase's formatting: tracks brace depth
    and groups everything between a depth-0 '{' and its matching '}'.
    """
    depth = 0
    start = None
    lines = text.splitlines()
    body = []
    for number, line in enumerate(lines, 1):
        stripped = re.sub(r'"(\\.|[^"\\])*"', '""', line)  # ignore strings
        stripped = re.sub(r"//.*", "", stripped)
        opens = stripped.count("{")
        closes = stripped.count("}")
        if depth == 0 and opens > 0:
            start = number
            body = [line]
        elif depth > 0:
            body.append(line)
        depth += opens - closes
        if depth == 0 and start is not None:
            yield start, "\n".join(body)
            start = None
            body = []


def lint_file(path, rel):
    problems = []
    text = path.read_text(encoding="utf-8", errors="replace")

    if DECL.search(text) and not match_any(rel, ALLOWED_WIRE_USERS):
        first = next(
            i for i, line in enumerate(text.splitlines(), 1) if DECL.search(line)
        )
        problems.append(
            (first,
             "WireReader used outside the codec layer; parse through "
             "Message::decode/decode_record instead, or extend "
             "ALLOWED_WIRE_USERS with a justification")
        )
        return problems

    if not match_any(rel, ALLOWED_WIRE_USERS):
        return problems

    for start, body in function_bodies(text):
        reads = READ_CALL.findall(body)
        if not reads:
            continue
        # Writers also have 'seek'-free helpers; only readers matter. The
        # receiver must look like a reader (heuristic: not 'writer'/'w').
        receivers = {name for name, _ in reads
                     if not name.startswith("writer") and name not in {"w", "out"}}
        if not receivers:
            continue
        if OK_CHECK.search(body) or HANDOFF.search(body):
            continue
        problems.append(
            (start,
             f"function reads from WireReader ({', '.join(sorted(receivers))}) "
             "but never consults ok()")
        )
    return problems


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    failures = 0
    for directory in ("src", "fuzz", "tests", "examples", "bench"):
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cpp", ".h"}:
                continue
            rel = path.relative_to(root)
            for line, message in lint_file(path, rel):
                print(f"{rel}:{line}: {message}")
                failures += 1
    if failures:
        print(f"\ncheck_wire_safety: {failures} problem(s)", file=sys.stderr)
        return 1
    print("check_wire_safety: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
