#!/usr/bin/env python3
"""Diff fresh BENCH_*.json results against the committed baselines.

The figure/table benches emit flat JSON objects (see bench/bench_common.h):
deterministic work counters (probes, signatures, threads) that must match
the committed baseline exactly — they are pure functions of (seed, config)
— and wall-clock fields (wall_ms, *_per_s) that vary by machine and only
need to stay inside a tolerance band.

    tools/bench_compare.py --baseline-dir . --fresh-dir build/bench
    tools/bench_compare.py BENCH_transport.json fresh/BENCH_transport.json

Wall-time policy: a fresh run may be up to --max-slowdown times slower than
the baseline (default 10x — CI machines are slow and noisy); any speedup is
fine. Wall-time fields are only compared when both results report the same
`hardware_concurrency`: a wall-ms diff between an 8-core baseline and a
1-core CI runner measures the hosts, not the code, so cross-host pairs skip
the timing check with a note instead of flagging a phantom regression (the
deterministic work counters are still compared exactly). Exit 0 when every
compared pair passes, 1 otherwise. Baselines with no fresh counterpart are
skipped with a note (not an error), so one bench can be compared without
running the whole suite; likewise a fresh result with no committed baseline
(a brand-new bench) is a note — its first committed run establishes the
baseline.

Pure stdlib; no dependencies.
"""

import argparse
import glob
import json
import os
import sys

# Pure functions of (seed, config): must be byte-equal across machines.
# "deterministic" is a nested object some benches emit (e.g.
# BENCH_rssac047.json's probe/window/incident counters); dict equality
# compares every counter in it exactly.
EXACT_FIELDS = ("bench", "probes", "signatures", "threads", "deterministic")
# Wall-clock dependent: tolerance band only.
TIMING_FIELDS = ("wall_ms",)


def load(path):
    with open(path) as handle:
        return json.load(handle)


def same_host(baseline, fresh):
    """Whether wall-time fields are comparable at all.

    Results record the host parallelism they ran with; a differing (or
    missing) hardware_concurrency means a different machine class and any
    wall-time ratio is meaningless.
    """
    base_hw = baseline.get("hardware_concurrency")
    fresh_hw = fresh.get("hardware_concurrency")
    return base_hw is not None and base_hw == fresh_hw


def compare(name, baseline, fresh, max_slowdown):
    failures = []
    for field in EXACT_FIELDS:
        if field not in baseline:
            continue
        if fresh.get(field) != baseline[field]:
            failures.append(
                f"{name}: {field} changed: baseline={baseline[field]!r} "
                f"fresh={fresh.get(field)!r} (deterministic field; a diff "
                f"means behaviour changed, not the machine)")
    if not same_host(baseline, fresh):
        print(f"note: {name}: baseline hardware_concurrency="
              f"{baseline.get('hardware_concurrency')!r} != fresh="
              f"{fresh.get('hardware_concurrency')!r}; wall-time comparison "
              f"refused (cross-host timings measure the machines, not the "
              f"code)")
        return failures
    for field in TIMING_FIELDS:
        base = baseline.get(field)
        new = fresh.get(field)
        if not base or new is None:
            continue
        slowdown = new / base
        if slowdown > max_slowdown:
            failures.append(
                f"{name}: {field} {new:.1f} is {slowdown:.1f}x the baseline "
                f"{base:.1f} (allowed {max_slowdown:.1f}x)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("pair", nargs="*",
                        help="explicit BASELINE FRESH file pair")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--fresh-dir",
                        help="directory holding freshly produced BENCH_*.json")
    parser.add_argument("--max-slowdown", type=float, default=10.0,
                        help="allowed wall-time ratio fresh/baseline")
    args = parser.parse_args()

    pairs = []
    if args.pair:
        if len(args.pair) != 2:
            parser.error("explicit mode takes exactly: BASELINE FRESH")
        if not os.path.exists(args.pair[0]):
            # A brand-new bench has no committed baseline yet; its first run
            # establishes one. Same policy as --fresh-dir: note, don't fail.
            print(f"note: no baseline {args.pair[0]}; nothing to compare "
                  f"(commit the fresh result to establish one)")
            return 0
        pairs.append((args.pair[0], args.pair[1]))
    elif args.fresh_dir:
        for fresh in sorted(glob.glob(os.path.join(args.fresh_dir,
                                                   "BENCH_*.json"))):
            baseline = os.path.join(args.baseline_dir,
                                    os.path.basename(fresh))
            if os.path.exists(baseline):
                pairs.append((baseline, fresh))
            else:
                print(f"note: no baseline for {os.path.basename(fresh)}; "
                      f"skipped")
    else:
        parser.error("pass BASELINE FRESH or --fresh-dir")

    if not pairs:
        print("error: nothing to compare", file=sys.stderr)
        return 1

    failures = []
    for baseline_path, fresh_path in pairs:
        name = os.path.basename(fresh_path)
        try:
            baseline, fresh = load(baseline_path), load(fresh_path)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{name}: unreadable: {err}")
            continue
        found = compare(name, baseline, fresh, args.max_slowdown)
        failures.extend(found)
        status = "FAIL" if found else "ok"
        ratio = ""
        if baseline.get("wall_ms") and fresh.get("wall_ms"):
            ratio = f"  wall {fresh['wall_ms'] / baseline['wall_ms']:.2f}x"
        print(f"{status:4} {name}{ratio}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
