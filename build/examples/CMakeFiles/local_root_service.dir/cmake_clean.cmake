file(REMOVE_RECURSE
  "CMakeFiles/local_root_service.dir/local_root_service.cpp.o"
  "CMakeFiles/local_root_service.dir/local_root_service.cpp.o.d"
  "local_root_service"
  "local_root_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_root_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
