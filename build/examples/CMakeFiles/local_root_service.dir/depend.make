# Empty dependencies file for local_root_service.
# This may be replaced when dependencies are built.
