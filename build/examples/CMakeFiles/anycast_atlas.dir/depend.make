# Empty dependencies file for anycast_atlas.
# This may be replaced when dependencies are built.
