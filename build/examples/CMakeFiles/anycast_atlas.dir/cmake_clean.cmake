file(REMOVE_RECURSE
  "CMakeFiles/anycast_atlas.dir/anycast_atlas.cpp.o"
  "CMakeFiles/anycast_atlas.dir/anycast_atlas.cpp.o.d"
  "anycast_atlas"
  "anycast_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
