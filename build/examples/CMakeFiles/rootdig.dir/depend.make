# Empty dependencies file for rootdig.
# This may be replaced when dependencies are built.
