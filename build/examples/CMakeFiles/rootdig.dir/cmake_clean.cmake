file(REMOVE_RECURSE
  "CMakeFiles/rootdig.dir/rootdig.cpp.o"
  "CMakeFiles/rootdig.dir/rootdig.cpp.o.d"
  "rootdig"
  "rootdig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootdig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
