file(REMOVE_RECURSE
  "CMakeFiles/zone_integrity_audit.dir/zone_integrity_audit.cpp.o"
  "CMakeFiles/zone_integrity_audit.dir/zone_integrity_audit.cpp.o.d"
  "zone_integrity_audit"
  "zone_integrity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_integrity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
