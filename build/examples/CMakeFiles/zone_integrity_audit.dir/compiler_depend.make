# Empty compiler generated dependencies file for zone_integrity_audit.
# This may be replaced when dependencies are built.
