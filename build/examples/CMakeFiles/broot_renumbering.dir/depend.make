# Empty dependencies file for broot_renumbering.
# This may be replaced when dependencies are built.
