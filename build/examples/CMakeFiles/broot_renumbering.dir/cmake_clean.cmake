file(REMOVE_RECURSE
  "CMakeFiles/broot_renumbering.dir/broot_renumbering.cpp.o"
  "CMakeFiles/broot_renumbering.dir/broot_renumbering.cpp.o.d"
  "broot_renumbering"
  "broot_renumbering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broot_renumbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
