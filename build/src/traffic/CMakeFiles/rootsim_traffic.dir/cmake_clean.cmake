file(REMOVE_RECURSE
  "CMakeFiles/rootsim_traffic.dir/clients.cpp.o"
  "CMakeFiles/rootsim_traffic.dir/clients.cpp.o.d"
  "CMakeFiles/rootsim_traffic.dir/collectors.cpp.o"
  "CMakeFiles/rootsim_traffic.dir/collectors.cpp.o.d"
  "CMakeFiles/rootsim_traffic.dir/ixp_set.cpp.o"
  "CMakeFiles/rootsim_traffic.dir/ixp_set.cpp.o.d"
  "CMakeFiles/rootsim_traffic.dir/querymix.cpp.o"
  "CMakeFiles/rootsim_traffic.dir/querymix.cpp.o.d"
  "librootsim_traffic.a"
  "librootsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
