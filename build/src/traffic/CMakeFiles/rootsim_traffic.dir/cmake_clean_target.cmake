file(REMOVE_RECURSE
  "librootsim_traffic.a"
)
