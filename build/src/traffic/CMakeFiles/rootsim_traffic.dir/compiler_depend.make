# Empty compiler generated dependencies file for rootsim_traffic.
# This may be replaced when dependencies are built.
