file(REMOVE_RECURSE
  "CMakeFiles/rootsim_dns.dir/axfr.cpp.o"
  "CMakeFiles/rootsim_dns.dir/axfr.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/codec.cpp.o"
  "CMakeFiles/rootsim_dns.dir/codec.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/message.cpp.o"
  "CMakeFiles/rootsim_dns.dir/message.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/name.cpp.o"
  "CMakeFiles/rootsim_dns.dir/name.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/rdata.cpp.o"
  "CMakeFiles/rootsim_dns.dir/rdata.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/wire.cpp.o"
  "CMakeFiles/rootsim_dns.dir/wire.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/zone.cpp.o"
  "CMakeFiles/rootsim_dns.dir/zone.cpp.o.d"
  "CMakeFiles/rootsim_dns.dir/zone_diff.cpp.o"
  "CMakeFiles/rootsim_dns.dir/zone_diff.cpp.o.d"
  "librootsim_dns.a"
  "librootsim_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
