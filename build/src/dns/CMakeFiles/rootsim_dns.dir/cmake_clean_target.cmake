file(REMOVE_RECURSE
  "librootsim_dns.a"
)
