
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/axfr.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/axfr.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/axfr.cpp.o.d"
  "/root/repo/src/dns/codec.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/codec.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/codec.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/rdata.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/rdata.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/rdata.cpp.o.d"
  "/root/repo/src/dns/wire.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/wire.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/wire.cpp.o.d"
  "/root/repo/src/dns/zone.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/zone.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/zone.cpp.o.d"
  "/root/repo/src/dns/zone_diff.cpp" "src/dns/CMakeFiles/rootsim_dns.dir/zone_diff.cpp.o" "gcc" "src/dns/CMakeFiles/rootsim_dns.dir/zone_diff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rootsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rootsim_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
