# Empty compiler generated dependencies file for rootsim_dns.
# This may be replaced when dependencies are built.
