file(REMOVE_RECURSE
  "CMakeFiles/rootsim_measure.dir/campaign.cpp.o"
  "CMakeFiles/rootsim_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/rootsim_measure.dir/faults.cpp.o"
  "CMakeFiles/rootsim_measure.dir/faults.cpp.o.d"
  "CMakeFiles/rootsim_measure.dir/prober.cpp.o"
  "CMakeFiles/rootsim_measure.dir/prober.cpp.o.d"
  "CMakeFiles/rootsim_measure.dir/schedule.cpp.o"
  "CMakeFiles/rootsim_measure.dir/schedule.cpp.o.d"
  "CMakeFiles/rootsim_measure.dir/vantage.cpp.o"
  "CMakeFiles/rootsim_measure.dir/vantage.cpp.o.d"
  "librootsim_measure.a"
  "librootsim_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
