file(REMOVE_RECURSE
  "librootsim_measure.a"
)
