# Empty compiler generated dependencies file for rootsim_measure.
# This may be replaced when dependencies are built.
