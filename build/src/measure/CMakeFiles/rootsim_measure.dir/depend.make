# Empty dependencies file for rootsim_measure.
# This may be replaced when dependencies are built.
