file(REMOVE_RECURSE
  "librootsim_crypto.a"
)
