# Empty dependencies file for rootsim_crypto.
# This may be replaced when dependencies are built.
