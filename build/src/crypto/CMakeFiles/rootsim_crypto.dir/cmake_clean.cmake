file(REMOVE_RECURSE
  "CMakeFiles/rootsim_crypto.dir/bignum.cpp.o"
  "CMakeFiles/rootsim_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/rootsim_crypto.dir/encoding.cpp.o"
  "CMakeFiles/rootsim_crypto.dir/encoding.cpp.o.d"
  "CMakeFiles/rootsim_crypto.dir/rsa.cpp.o"
  "CMakeFiles/rootsim_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/rootsim_crypto.dir/sha2.cpp.o"
  "CMakeFiles/rootsim_crypto.dir/sha2.cpp.o.d"
  "librootsim_crypto.a"
  "librootsim_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
