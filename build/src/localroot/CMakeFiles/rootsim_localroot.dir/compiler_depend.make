# Empty compiler generated dependencies file for rootsim_localroot.
# This may be replaced when dependencies are built.
