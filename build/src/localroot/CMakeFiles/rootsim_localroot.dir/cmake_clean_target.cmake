file(REMOVE_RECURSE
  "librootsim_localroot.a"
)
