file(REMOVE_RECURSE
  "CMakeFiles/rootsim_localroot.dir/local_root.cpp.o"
  "CMakeFiles/rootsim_localroot.dir/local_root.cpp.o.d"
  "librootsim_localroot.a"
  "librootsim_localroot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_localroot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
