file(REMOVE_RECURSE
  "CMakeFiles/rootsim_rss.dir/catalog.cpp.o"
  "CMakeFiles/rootsim_rss.dir/catalog.cpp.o.d"
  "CMakeFiles/rootsim_rss.dir/distribution.cpp.o"
  "CMakeFiles/rootsim_rss.dir/distribution.cpp.o.d"
  "CMakeFiles/rootsim_rss.dir/outages.cpp.o"
  "CMakeFiles/rootsim_rss.dir/outages.cpp.o.d"
  "CMakeFiles/rootsim_rss.dir/server.cpp.o"
  "CMakeFiles/rootsim_rss.dir/server.cpp.o.d"
  "CMakeFiles/rootsim_rss.dir/zone_authority.cpp.o"
  "CMakeFiles/rootsim_rss.dir/zone_authority.cpp.o.d"
  "librootsim_rss.a"
  "librootsim_rss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_rss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
