# Empty compiler generated dependencies file for rootsim_rss.
# This may be replaced when dependencies are built.
