file(REMOVE_RECURSE
  "librootsim_rss.a"
)
