
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rss/catalog.cpp" "src/rss/CMakeFiles/rootsim_rss.dir/catalog.cpp.o" "gcc" "src/rss/CMakeFiles/rootsim_rss.dir/catalog.cpp.o.d"
  "/root/repo/src/rss/distribution.cpp" "src/rss/CMakeFiles/rootsim_rss.dir/distribution.cpp.o" "gcc" "src/rss/CMakeFiles/rootsim_rss.dir/distribution.cpp.o.d"
  "/root/repo/src/rss/outages.cpp" "src/rss/CMakeFiles/rootsim_rss.dir/outages.cpp.o" "gcc" "src/rss/CMakeFiles/rootsim_rss.dir/outages.cpp.o.d"
  "/root/repo/src/rss/server.cpp" "src/rss/CMakeFiles/rootsim_rss.dir/server.cpp.o" "gcc" "src/rss/CMakeFiles/rootsim_rss.dir/server.cpp.o.d"
  "/root/repo/src/rss/zone_authority.cpp" "src/rss/CMakeFiles/rootsim_rss.dir/zone_authority.cpp.o" "gcc" "src/rss/CMakeFiles/rootsim_rss.dir/zone_authority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/rootsim_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssec/CMakeFiles/rootsim_dnssec.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rootsim_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rootsim_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rootsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
