file(REMOVE_RECURSE
  "CMakeFiles/rootsim_dnssec.dir/canonical.cpp.o"
  "CMakeFiles/rootsim_dnssec.dir/canonical.cpp.o.d"
  "CMakeFiles/rootsim_dnssec.dir/signer.cpp.o"
  "CMakeFiles/rootsim_dnssec.dir/signer.cpp.o.d"
  "CMakeFiles/rootsim_dnssec.dir/validator.cpp.o"
  "CMakeFiles/rootsim_dnssec.dir/validator.cpp.o.d"
  "librootsim_dnssec.a"
  "librootsim_dnssec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_dnssec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
