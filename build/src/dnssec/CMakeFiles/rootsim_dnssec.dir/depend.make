# Empty dependencies file for rootsim_dnssec.
# This may be replaced when dependencies are built.
