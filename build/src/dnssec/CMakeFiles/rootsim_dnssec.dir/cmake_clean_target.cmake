file(REMOVE_RECURSE
  "librootsim_dnssec.a"
)
