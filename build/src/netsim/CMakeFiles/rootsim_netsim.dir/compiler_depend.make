# Empty compiler generated dependencies file for rootsim_netsim.
# This may be replaced when dependencies are built.
