file(REMOVE_RECURSE
  "CMakeFiles/rootsim_netsim.dir/routing.cpp.o"
  "CMakeFiles/rootsim_netsim.dir/routing.cpp.o.d"
  "CMakeFiles/rootsim_netsim.dir/topology.cpp.o"
  "CMakeFiles/rootsim_netsim.dir/topology.cpp.o.d"
  "librootsim_netsim.a"
  "librootsim_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
