file(REMOVE_RECURSE
  "librootsim_netsim.a"
)
