
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/colocation.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/colocation.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/colocation.cpp.o.d"
  "/root/repo/src/analysis/coverage.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/coverage.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/coverage.cpp.o.d"
  "/root/repo/src/analysis/distance.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/distance.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/distance.cpp.o.d"
  "/root/repo/src/analysis/propagation.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/propagation.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/propagation.cpp.o.d"
  "/root/repo/src/analysis/rssac_metrics.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/rssac_metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/rssac_metrics.cpp.o.d"
  "/root/repo/src/analysis/rtt.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/rtt.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/rtt.cpp.o.d"
  "/root/repo/src/analysis/stability.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/stability.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/stability.cpp.o.d"
  "/root/repo/src/analysis/traffic_report.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/traffic_report.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/traffic_report.cpp.o.d"
  "/root/repo/src/analysis/zonemd_report.cpp" "src/analysis/CMakeFiles/rootsim_analysis.dir/zonemd_report.cpp.o" "gcc" "src/analysis/CMakeFiles/rootsim_analysis.dir/zonemd_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/rootsim_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/rootsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/rss/CMakeFiles/rootsim_rss.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rootsim_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssec/CMakeFiles/rootsim_dnssec.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/rootsim_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rootsim_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rootsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
