file(REMOVE_RECURSE
  "librootsim_analysis.a"
)
