# Empty compiler generated dependencies file for rootsim_analysis.
# This may be replaced when dependencies are built.
