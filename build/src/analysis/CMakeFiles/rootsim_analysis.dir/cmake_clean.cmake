file(REMOVE_RECURSE
  "CMakeFiles/rootsim_analysis.dir/colocation.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/colocation.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/coverage.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/distance.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/distance.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/propagation.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/propagation.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/rssac_metrics.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/rssac_metrics.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/rtt.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/rtt.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/stability.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/stability.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/traffic_report.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/traffic_report.cpp.o.d"
  "CMakeFiles/rootsim_analysis.dir/zonemd_report.cpp.o"
  "CMakeFiles/rootsim_analysis.dir/zonemd_report.cpp.o.d"
  "librootsim_analysis.a"
  "librootsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
