file(REMOVE_RECURSE
  "CMakeFiles/rootsim_resolver.dir/priming.cpp.o"
  "CMakeFiles/rootsim_resolver.dir/priming.cpp.o.d"
  "librootsim_resolver.a"
  "librootsim_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
