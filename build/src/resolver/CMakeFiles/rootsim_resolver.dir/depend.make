# Empty dependencies file for rootsim_resolver.
# This may be replaced when dependencies are built.
