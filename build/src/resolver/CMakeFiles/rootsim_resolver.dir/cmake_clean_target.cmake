file(REMOVE_RECURSE
  "librootsim_resolver.a"
)
