file(REMOVE_RECURSE
  "librootsim_util.a"
)
