# Empty dependencies file for rootsim_util.
# This may be replaced when dependencies are built.
