file(REMOVE_RECURSE
  "CMakeFiles/rootsim_util.dir/geo.cpp.o"
  "CMakeFiles/rootsim_util.dir/geo.cpp.o.d"
  "CMakeFiles/rootsim_util.dir/ip.cpp.o"
  "CMakeFiles/rootsim_util.dir/ip.cpp.o.d"
  "CMakeFiles/rootsim_util.dir/stats.cpp.o"
  "CMakeFiles/rootsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/rootsim_util.dir/strings.cpp.o"
  "CMakeFiles/rootsim_util.dir/strings.cpp.o.d"
  "CMakeFiles/rootsim_util.dir/table.cpp.o"
  "CMakeFiles/rootsim_util.dir/table.cpp.o.d"
  "CMakeFiles/rootsim_util.dir/timeutil.cpp.o"
  "CMakeFiles/rootsim_util.dir/timeutil.cpp.o.d"
  "librootsim_util.a"
  "librootsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
