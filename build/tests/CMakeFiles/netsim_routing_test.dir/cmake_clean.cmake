file(REMOVE_RECURSE
  "CMakeFiles/netsim_routing_test.dir/netsim_routing_test.cpp.o"
  "CMakeFiles/netsim_routing_test.dir/netsim_routing_test.cpp.o.d"
  "netsim_routing_test"
  "netsim_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
