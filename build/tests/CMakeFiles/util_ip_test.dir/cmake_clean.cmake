file(REMOVE_RECURSE
  "CMakeFiles/util_ip_test.dir/util_ip_test.cpp.o"
  "CMakeFiles/util_ip_test.dir/util_ip_test.cpp.o.d"
  "util_ip_test"
  "util_ip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
