# Empty dependencies file for util_geo_test.
# This may be replaced when dependencies are built.
