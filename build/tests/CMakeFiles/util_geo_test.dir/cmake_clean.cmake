file(REMOVE_RECURSE
  "CMakeFiles/util_geo_test.dir/util_geo_test.cpp.o"
  "CMakeFiles/util_geo_test.dir/util_geo_test.cpp.o.d"
  "util_geo_test"
  "util_geo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
