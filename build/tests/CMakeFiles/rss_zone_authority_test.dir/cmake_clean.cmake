file(REMOVE_RECURSE
  "CMakeFiles/rss_zone_authority_test.dir/rss_zone_authority_test.cpp.o"
  "CMakeFiles/rss_zone_authority_test.dir/rss_zone_authority_test.cpp.o.d"
  "rss_zone_authority_test"
  "rss_zone_authority_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_zone_authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
