# Empty compiler generated dependencies file for rss_zone_authority_test.
# This may be replaced when dependencies are built.
