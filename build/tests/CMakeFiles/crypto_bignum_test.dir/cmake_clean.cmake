file(REMOVE_RECURSE
  "CMakeFiles/crypto_bignum_test.dir/crypto_bignum_test.cpp.o"
  "CMakeFiles/crypto_bignum_test.dir/crypto_bignum_test.cpp.o.d"
  "crypto_bignum_test"
  "crypto_bignum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bignum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
