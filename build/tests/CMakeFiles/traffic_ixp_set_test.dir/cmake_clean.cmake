file(REMOVE_RECURSE
  "CMakeFiles/traffic_ixp_set_test.dir/traffic_ixp_set_test.cpp.o"
  "CMakeFiles/traffic_ixp_set_test.dir/traffic_ixp_set_test.cpp.o.d"
  "traffic_ixp_set_test"
  "traffic_ixp_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_ixp_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
