# Empty compiler generated dependencies file for traffic_ixp_set_test.
# This may be replaced when dependencies are built.
