# Empty dependencies file for crypto_sha2_test.
# This may be replaced when dependencies are built.
