# Empty compiler generated dependencies file for rss_catalog_test.
# This may be replaced when dependencies are built.
