file(REMOVE_RECURSE
  "CMakeFiles/rss_catalog_test.dir/rss_catalog_test.cpp.o"
  "CMakeFiles/rss_catalog_test.dir/rss_catalog_test.cpp.o.d"
  "rss_catalog_test"
  "rss_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
