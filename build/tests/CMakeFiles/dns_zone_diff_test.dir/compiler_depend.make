# Empty compiler generated dependencies file for dns_zone_diff_test.
# This may be replaced when dependencies are built.
