file(REMOVE_RECURSE
  "CMakeFiles/dns_zone_diff_test.dir/dns_zone_diff_test.cpp.o"
  "CMakeFiles/dns_zone_diff_test.dir/dns_zone_diff_test.cpp.o.d"
  "dns_zone_diff_test"
  "dns_zone_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_zone_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
