# Empty dependencies file for dnssec_ds_test.
# This may be replaced when dependencies are built.
