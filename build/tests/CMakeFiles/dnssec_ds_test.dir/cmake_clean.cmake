file(REMOVE_RECURSE
  "CMakeFiles/dnssec_ds_test.dir/dnssec_ds_test.cpp.o"
  "CMakeFiles/dnssec_ds_test.dir/dnssec_ds_test.cpp.o.d"
  "dnssec_ds_test"
  "dnssec_ds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_ds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
