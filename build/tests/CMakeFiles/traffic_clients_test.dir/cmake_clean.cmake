file(REMOVE_RECURSE
  "CMakeFiles/traffic_clients_test.dir/traffic_clients_test.cpp.o"
  "CMakeFiles/traffic_clients_test.dir/traffic_clients_test.cpp.o.d"
  "traffic_clients_test"
  "traffic_clients_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
