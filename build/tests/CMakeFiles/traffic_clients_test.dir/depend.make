# Empty dependencies file for traffic_clients_test.
# This may be replaced when dependencies are built.
