file(REMOVE_RECURSE
  "CMakeFiles/crypto_encoding_test.dir/crypto_encoding_test.cpp.o"
  "CMakeFiles/crypto_encoding_test.dir/crypto_encoding_test.cpp.o.d"
  "crypto_encoding_test"
  "crypto_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
