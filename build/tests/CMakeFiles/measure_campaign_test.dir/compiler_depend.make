# Empty compiler generated dependencies file for measure_campaign_test.
# This may be replaced when dependencies are built.
