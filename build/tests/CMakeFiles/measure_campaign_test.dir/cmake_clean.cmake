file(REMOVE_RECURSE
  "CMakeFiles/measure_campaign_test.dir/measure_campaign_test.cpp.o"
  "CMakeFiles/measure_campaign_test.dir/measure_campaign_test.cpp.o.d"
  "measure_campaign_test"
  "measure_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
