file(REMOVE_RECURSE
  "CMakeFiles/dns_axfr_test.dir/dns_axfr_test.cpp.o"
  "CMakeFiles/dns_axfr_test.dir/dns_axfr_test.cpp.o.d"
  "dns_axfr_test"
  "dns_axfr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_axfr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
