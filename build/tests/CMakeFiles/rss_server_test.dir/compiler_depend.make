# Empty compiler generated dependencies file for rss_server_test.
# This may be replaced when dependencies are built.
