file(REMOVE_RECURSE
  "CMakeFiles/dnssec_denial_test.dir/dnssec_denial_test.cpp.o"
  "CMakeFiles/dnssec_denial_test.dir/dnssec_denial_test.cpp.o.d"
  "dnssec_denial_test"
  "dnssec_denial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_denial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
