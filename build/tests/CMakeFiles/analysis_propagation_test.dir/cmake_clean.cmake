file(REMOVE_RECURSE
  "CMakeFiles/analysis_propagation_test.dir/analysis_propagation_test.cpp.o"
  "CMakeFiles/analysis_propagation_test.dir/analysis_propagation_test.cpp.o.d"
  "analysis_propagation_test"
  "analysis_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
