# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rss_server_protocol_test.
