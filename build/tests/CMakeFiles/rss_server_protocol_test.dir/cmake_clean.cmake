file(REMOVE_RECURSE
  "CMakeFiles/rss_server_protocol_test.dir/rss_server_protocol_test.cpp.o"
  "CMakeFiles/rss_server_protocol_test.dir/rss_server_protocol_test.cpp.o.d"
  "rss_server_protocol_test"
  "rss_server_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_server_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
