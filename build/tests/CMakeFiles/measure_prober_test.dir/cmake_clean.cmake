file(REMOVE_RECURSE
  "CMakeFiles/measure_prober_test.dir/measure_prober_test.cpp.o"
  "CMakeFiles/measure_prober_test.dir/measure_prober_test.cpp.o.d"
  "measure_prober_test"
  "measure_prober_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_prober_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
