# Empty compiler generated dependencies file for measure_prober_test.
# This may be replaced when dependencies are built.
