file(REMOVE_RECURSE
  "CMakeFiles/dns_fuzz_test.dir/dns_fuzz_test.cpp.o"
  "CMakeFiles/dns_fuzz_test.dir/dns_fuzz_test.cpp.o.d"
  "dns_fuzz_test"
  "dns_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
