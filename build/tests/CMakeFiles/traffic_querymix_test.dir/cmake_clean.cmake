file(REMOVE_RECURSE
  "CMakeFiles/traffic_querymix_test.dir/traffic_querymix_test.cpp.o"
  "CMakeFiles/traffic_querymix_test.dir/traffic_querymix_test.cpp.o.d"
  "traffic_querymix_test"
  "traffic_querymix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_querymix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
