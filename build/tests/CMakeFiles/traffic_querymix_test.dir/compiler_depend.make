# Empty compiler generated dependencies file for traffic_querymix_test.
# This may be replaced when dependencies are built.
