# Empty dependencies file for localroot_test.
# This may be replaced when dependencies are built.
