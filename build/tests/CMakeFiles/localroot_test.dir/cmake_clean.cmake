file(REMOVE_RECURSE
  "CMakeFiles/localroot_test.dir/localroot_test.cpp.o"
  "CMakeFiles/localroot_test.dir/localroot_test.cpp.o.d"
  "localroot_test"
  "localroot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localroot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
