file(REMOVE_RECURSE
  "CMakeFiles/analysis_rssac_test.dir/analysis_rssac_test.cpp.o"
  "CMakeFiles/analysis_rssac_test.dir/analysis_rssac_test.cpp.o.d"
  "analysis_rssac_test"
  "analysis_rssac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_rssac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
