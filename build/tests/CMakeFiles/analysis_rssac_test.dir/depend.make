# Empty dependencies file for analysis_rssac_test.
# This may be replaced when dependencies are built.
