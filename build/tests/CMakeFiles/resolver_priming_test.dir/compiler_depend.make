# Empty compiler generated dependencies file for resolver_priming_test.
# This may be replaced when dependencies are built.
