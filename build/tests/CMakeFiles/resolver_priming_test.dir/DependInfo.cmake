
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/resolver_priming_test.cpp" "tests/CMakeFiles/resolver_priming_test.dir/resolver_priming_test.cpp.o" "gcc" "tests/CMakeFiles/resolver_priming_test.dir/resolver_priming_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/rootsim_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/rootsim_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/rss/CMakeFiles/rootsim_rss.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssec/CMakeFiles/rootsim_dnssec.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/rootsim_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rootsim_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rootsim_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rootsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
