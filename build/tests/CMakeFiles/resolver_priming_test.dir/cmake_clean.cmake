file(REMOVE_RECURSE
  "CMakeFiles/resolver_priming_test.dir/resolver_priming_test.cpp.o"
  "CMakeFiles/resolver_priming_test.dir/resolver_priming_test.cpp.o.d"
  "resolver_priming_test"
  "resolver_priming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_priming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
