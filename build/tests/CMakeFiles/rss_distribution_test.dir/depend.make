# Empty dependencies file for rss_distribution_test.
# This may be replaced when dependencies are built.
