file(REMOVE_RECURSE
  "CMakeFiles/rss_distribution_test.dir/rss_distribution_test.cpp.o"
  "CMakeFiles/rss_distribution_test.dir/rss_distribution_test.cpp.o.d"
  "rss_distribution_test"
  "rss_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
