# Empty compiler generated dependencies file for dnssec_sign_test.
# This may be replaced when dependencies are built.
