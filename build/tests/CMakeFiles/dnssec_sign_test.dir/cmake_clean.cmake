file(REMOVE_RECURSE
  "CMakeFiles/dnssec_sign_test.dir/dnssec_sign_test.cpp.o"
  "CMakeFiles/dnssec_sign_test.dir/dnssec_sign_test.cpp.o.d"
  "dnssec_sign_test"
  "dnssec_sign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_sign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
