file(REMOVE_RECURSE
  "CMakeFiles/measure_vantage_test.dir/measure_vantage_test.cpp.o"
  "CMakeFiles/measure_vantage_test.dir/measure_vantage_test.cpp.o.d"
  "measure_vantage_test"
  "measure_vantage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_vantage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
