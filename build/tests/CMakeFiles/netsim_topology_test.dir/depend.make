# Empty dependencies file for netsim_topology_test.
# This may be replaced when dependencies are built.
