file(REMOVE_RECURSE
  "CMakeFiles/netsim_topology_test.dir/netsim_topology_test.cpp.o"
  "CMakeFiles/netsim_topology_test.dir/netsim_topology_test.cpp.o.d"
  "netsim_topology_test"
  "netsim_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
