file(REMOVE_RECURSE
  "CMakeFiles/measure_schedule_test.dir/measure_schedule_test.cpp.o"
  "CMakeFiles/measure_schedule_test.dir/measure_schedule_test.cpp.o.d"
  "measure_schedule_test"
  "measure_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
