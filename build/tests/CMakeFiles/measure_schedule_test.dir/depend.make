# Empty dependencies file for measure_schedule_test.
# This may be replaced when dependencies are built.
