# Empty dependencies file for traffic_collectors_test.
# This may be replaced when dependencies are built.
