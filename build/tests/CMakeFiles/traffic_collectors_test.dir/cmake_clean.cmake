file(REMOVE_RECURSE
  "CMakeFiles/traffic_collectors_test.dir/traffic_collectors_test.cpp.o"
  "CMakeFiles/traffic_collectors_test.dir/traffic_collectors_test.cpp.o.d"
  "traffic_collectors_test"
  "traffic_collectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_collectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
