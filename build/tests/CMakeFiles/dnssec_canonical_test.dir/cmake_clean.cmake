file(REMOVE_RECURSE
  "CMakeFiles/dnssec_canonical_test.dir/dnssec_canonical_test.cpp.o"
  "CMakeFiles/dnssec_canonical_test.dir/dnssec_canonical_test.cpp.o.d"
  "dnssec_canonical_test"
  "dnssec_canonical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_canonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
