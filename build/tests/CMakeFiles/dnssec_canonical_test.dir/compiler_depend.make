# Empty compiler generated dependencies file for dnssec_canonical_test.
# This may be replaced when dependencies are built.
