file(REMOVE_RECURSE
  "CMakeFiles/analysis_traffic_report_test.dir/analysis_traffic_report_test.cpp.o"
  "CMakeFiles/analysis_traffic_report_test.dir/analysis_traffic_report_test.cpp.o.d"
  "analysis_traffic_report_test"
  "analysis_traffic_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_traffic_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
