# Empty dependencies file for analysis_traffic_report_test.
# This may be replaced when dependencies are built.
