# Empty dependencies file for bench_fig8_client_flows.
# This may be replaced when dependencies are built.
