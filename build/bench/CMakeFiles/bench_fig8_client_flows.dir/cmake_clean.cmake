file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_client_flows.dir/bench_fig8_client_flows.cpp.o"
  "CMakeFiles/bench_fig8_client_flows.dir/bench_fig8_client_flows.cpp.o.d"
  "bench_fig8_client_flows"
  "bench_fig8_client_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_client_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
