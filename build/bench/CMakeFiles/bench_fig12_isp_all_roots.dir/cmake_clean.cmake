file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_isp_all_roots.dir/bench_fig12_isp_all_roots.cpp.o"
  "CMakeFiles/bench_fig12_isp_all_roots.dir/bench_fig12_isp_all_roots.cpp.o.d"
  "bench_fig12_isp_all_roots"
  "bench_fig12_isp_all_roots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_isp_all_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
