# Empty dependencies file for bench_fig12_isp_all_roots.
# This may be replaced when dependencies are built.
