# Empty dependencies file for bench_ext_seed_sweep.
# This may be replaced when dependencies are built.
