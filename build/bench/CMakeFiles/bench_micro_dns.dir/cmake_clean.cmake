file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dns.dir/bench_micro_dns.cpp.o"
  "CMakeFiles/bench_micro_dns.dir/bench_micro_dns.cpp.o.d"
  "bench_micro_dns"
  "bench_micro_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
