# Empty dependencies file for bench_micro_dns.
# This may be replaced when dependencies are built.
