# Empty compiler generated dependencies file for bench_ext_soa_propagation.
# This may be replaced when dependencies are built.
