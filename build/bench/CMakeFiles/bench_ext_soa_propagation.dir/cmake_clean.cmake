file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_soa_propagation.dir/bench_ext_soa_propagation.cpp.o"
  "CMakeFiles/bench_ext_soa_propagation.dir/bench_ext_soa_propagation.cpp.o.d"
  "bench_ext_soa_propagation"
  "bench_ext_soa_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_soa_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
