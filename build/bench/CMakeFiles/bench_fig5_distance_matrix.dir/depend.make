# Empty dependencies file for bench_fig5_distance_matrix.
# This may be replaced when dependencies are built.
