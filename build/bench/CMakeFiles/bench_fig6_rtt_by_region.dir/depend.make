# Empty dependencies file for bench_fig6_rtt_by_region.
# This may be replaced when dependencies are built.
