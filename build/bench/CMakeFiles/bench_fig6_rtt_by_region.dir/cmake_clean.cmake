file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rtt_by_region.dir/bench_fig6_rtt_by_region.cpp.o"
  "CMakeFiles/bench_fig6_rtt_by_region.dir/bench_fig6_rtt_by_region.cpp.o.d"
  "bench_fig6_rtt_by_region"
  "bench_fig6_rtt_by_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rtt_by_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
