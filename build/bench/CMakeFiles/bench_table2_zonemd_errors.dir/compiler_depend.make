# Empty compiler generated dependencies file for bench_table2_zonemd_errors.
# This may be replaced when dependencies are built.
