# Empty dependencies file for bench_table3_vantage_points.
# This may be replaced when dependencies are built.
