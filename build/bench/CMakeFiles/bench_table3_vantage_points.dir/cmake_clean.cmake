file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_vantage_points.dir/bench_table3_vantage_points.cpp.o"
  "CMakeFiles/bench_table3_vantage_points.dir/bench_table3_vantage_points.cpp.o.d"
  "bench_table3_vantage_points"
  "bench_table3_vantage_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_vantage_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
