# Empty dependencies file for bench_ext_querymix.
# This may be replaced when dependencies are built.
