file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_querymix.dir/bench_ext_querymix.cpp.o"
  "CMakeFiles/bench_ext_querymix.dir/bench_ext_querymix.cpp.o.d"
  "bench_ext_querymix"
  "bench_ext_querymix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_querymix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
