# Empty compiler generated dependencies file for bench_fig9_ixp_broot_v6.
# This may be replaced when dependencies are built.
