file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ixp_broot_v6.dir/bench_fig9_ixp_broot_v6.cpp.o"
  "CMakeFiles/bench_fig9_ixp_broot_v6.dir/bench_fig9_ixp_broot_v6.cpp.o.d"
  "bench_fig9_ixp_broot_v6"
  "bench_fig9_ixp_broot_v6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ixp_broot_v6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
