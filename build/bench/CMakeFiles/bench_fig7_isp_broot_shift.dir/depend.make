# Empty dependencies file for bench_fig7_isp_broot_shift.
# This may be replaced when dependencies are built.
