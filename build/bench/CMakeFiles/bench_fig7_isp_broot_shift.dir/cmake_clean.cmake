file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_isp_broot_shift.dir/bench_fig7_isp_broot_shift.cpp.o"
  "CMakeFiles/bench_fig7_isp_broot_shift.dir/bench_fig7_isp_broot_shift.cpp.o.d"
  "bench_fig7_isp_broot_shift"
  "bench_fig7_isp_broot_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_isp_broot_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
