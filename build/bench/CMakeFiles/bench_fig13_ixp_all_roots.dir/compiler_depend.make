# Empty compiler generated dependencies file for bench_fig13_ixp_all_roots.
# This may be replaced when dependencies are built.
