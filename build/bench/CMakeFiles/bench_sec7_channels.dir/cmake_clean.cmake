file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_channels.dir/bench_sec7_channels.cpp.o"
  "CMakeFiles/bench_sec7_channels.dir/bench_sec7_channels.cpp.o.d"
  "bench_sec7_channels"
  "bench_sec7_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
