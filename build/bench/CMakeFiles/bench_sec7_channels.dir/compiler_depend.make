# Empty compiler generated dependencies file for bench_sec7_channels.
# This may be replaced when dependencies are built.
