# Empty dependencies file for bench_table4_coverage_regions.
# This may be replaced when dependencies are built.
