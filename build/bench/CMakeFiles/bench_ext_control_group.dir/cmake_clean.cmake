file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_control_group.dir/bench_ext_control_group.cpp.o"
  "CMakeFiles/bench_ext_control_group.dir/bench_ext_control_group.cpp.o.d"
  "bench_ext_control_group"
  "bench_ext_control_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_control_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
