# Empty compiler generated dependencies file for bench_ext_control_group.
# This may be replaced when dependencies are built.
