# Empty compiler generated dependencies file for bench_fig10_bitflip_demo.
# This may be replaced when dependencies are built.
