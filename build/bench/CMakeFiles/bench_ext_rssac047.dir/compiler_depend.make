# Empty compiler generated dependencies file for bench_ext_rssac047.
# This may be replaced when dependencies are built.
