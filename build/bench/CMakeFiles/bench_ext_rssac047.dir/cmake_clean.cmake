file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rssac047.dir/bench_ext_rssac047.cpp.o"
  "CMakeFiles/bench_ext_rssac047.dir/bench_ext_rssac047.cpp.o.d"
  "bench_ext_rssac047"
  "bench_ext_rssac047.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rssac047.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
