file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_coverage_map.dir/bench_fig11_coverage_map.cpp.o"
  "CMakeFiles/bench_fig11_coverage_map.dir/bench_fig11_coverage_map.cpp.o.d"
  "bench_fig11_coverage_map"
  "bench_fig11_coverage_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_coverage_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
