# Empty dependencies file for bench_fig11_coverage_map.
# This may be replaced when dependencies are built.
