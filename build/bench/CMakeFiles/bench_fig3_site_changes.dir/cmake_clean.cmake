file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_site_changes.dir/bench_fig3_site_changes.cpp.o"
  "CMakeFiles/bench_fig3_site_changes.dir/bench_fig3_site_changes.cpp.o.d"
  "bench_fig3_site_changes"
  "bench_fig3_site_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_site_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
