# Empty compiler generated dependencies file for bench_fig3_site_changes.
# This may be replaced when dependencies are built.
