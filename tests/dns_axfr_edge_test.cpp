// AXFR and zone-diff edge cases: the boundaries where framing, serial
// arithmetic, and record packing are most likely to go wrong — empty zones,
// serial wraparound, a malformed message in the middle of an otherwise valid
// stream, and RDATA pressing against the 64 KiB frame ceiling.
#include <gtest/gtest.h>

#include "dns/axfr.h"
#include "dns/codec.h"
#include "dns/zone.h"
#include "dns/zone_diff.h"
#include "fuzz/generators.h"
#include "util/rng.h"

namespace rootsim::dns {
namespace {

Zone make_zone(uint32_t serial, size_t tlds) {
  util::Rng rng(4242);
  Zone zone = fuzz::random_zone(rng, tlds);
  // Pin the serial: remove and re-add the SOA rrset.
  auto soa = zone.soa();
  zone.remove_rrset(zone.origin(), RRType::SOA);
  soa->serial = serial;
  zone.add({zone.origin(), RRType::SOA, RRClass::IN, 86400, *soa});
  return zone;
}

TEST(AxfrEdge, EmptyZoneHasNoTransfer) {
  Zone zone{*Name::parse("empty.example.")};
  // No SOA — axfr_records() must refuse to fabricate a transfer, and the
  // empty record stream must not encode into a parseable stream.
  EXPECT_TRUE(zone.axfr_records().empty());
  Question question{zone.origin(), RRType::AXFR, RRClass::IN};
  auto wire = encode_axfr_stream(zone.axfr_records(), question);
  auto parsed = decode_axfr_stream(wire);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.records.empty());
}

TEST(AxfrEdge, SoaOnlyZoneRoundTrips) {
  Zone zone{Name()};
  SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 1;
  zone.add({Name(), RRType::SOA, RRClass::IN, 86400, soa});
  auto records = zone.axfr_records();
  // Degenerate but legal: SOA ... SOA with nothing in between.
  ASSERT_EQ(records.size(), 2u);
  Question question{zone.origin(), RRType::AXFR, RRClass::IN};
  auto parsed = decode_axfr_stream(encode_axfr_stream(records, question));
  ASSERT_TRUE(parsed.ok()) << *parsed.error;
  auto rebuilt = Zone::from_axfr(parsed.records, zone.origin());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(*rebuilt == zone);
}

TEST(AxfrEdge, SerialWraparoundDiff) {
  // RFC 1982 serial arithmetic wraps: 0xFFFFFFFF -> 0 is a forward step. The
  // diff must treat the two SOAs as an ordinary remove+add pair and stay
  // exactly invertible across the wrap.
  Zone old_zone = make_zone(0xFFFFFFFFu, 2);
  Zone new_zone = make_zone(0x00000000u, 2);
  ZoneDiff diff = diff_zones(old_zone, new_zone);
  ASSERT_FALSE(diff.empty());
  // Only the SOA changed between the two builds.
  ASSERT_EQ(diff.removed.size(), 1u);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed[0].type, RRType::SOA);
  EXPECT_EQ(diff.added[0].type, RRType::SOA);
  Zone forward = old_zone;
  EXPECT_TRUE(apply_diff(forward, diff));
  EXPECT_TRUE(forward == new_zone);
  EXPECT_EQ(forward.serial(), 0u);
  EXPECT_TRUE(apply_diff(forward, diff.inverse()));
  EXPECT_TRUE(forward == old_zone);
  EXPECT_EQ(forward.serial(), 0xFFFFFFFFu);
}

TEST(AxfrEdge, MidStreamMalformedMessageIsAnError) {
  util::Rng rng(7);
  Zone zone = fuzz::random_zone(rng, 6);
  Question question{zone.origin(), RRType::AXFR, RRClass::IN};
  AxfrStreamOptions options;
  options.max_message_bytes = 256;  // force several messages
  auto wire = encode_axfr_stream(zone.axfr_records(), question, options);
  auto intact = decode_axfr_stream(wire);
  ASSERT_TRUE(intact.ok());
  ASSERT_GT(intact.message_count, 2u);
  // Corrupt the QDCOUNT of the second message: frame length is intact, the
  // message inside is not. Frame 1 starts at offset 0; its length prefix
  // tells us where frame 2 begins.
  size_t second_frame = 2 + (static_cast<size_t>(wire[0]) << 8 | wire[1]);
  ASSERT_LT(second_frame + 6, wire.size());
  auto corrupted = wire;
  corrupted[second_frame + 2 + 4] = 0xFF;  // qdcount high byte
  corrupted[second_frame + 2 + 5] = 0xFF;  // qdcount low byte
  auto parsed = decode_axfr_stream(corrupted);
  EXPECT_FALSE(parsed.ok());
  // Records salvaged before the bad frame are still reported.
  EXPECT_FALSE(parsed.records.empty());
  EXPECT_LT(parsed.records.size(), intact.records.size());
}

TEST(AxfrEdge, TruncatedFinalFrameIsAnError) {
  util::Rng rng(8);
  Zone zone = fuzz::random_zone(rng, 3);
  Question question{zone.origin(), RRType::AXFR, RRClass::IN};
  auto wire = encode_axfr_stream(zone.axfr_records(), question);
  ASSERT_GT(wire.size(), 4u);
  for (size_t cut : {wire.size() - 1, wire.size() - 3, size_t{1}}) {
    auto truncated = wire;
    truncated.resize(cut);
    EXPECT_FALSE(decode_axfr_stream(truncated).ok()) << "cut at " << cut;
  }
}

// Builds a TXT record whose encoded RDATA is close to `target` bytes.
ResourceRecord big_txt(const Name& owner, size_t target) {
  TxtData txt;
  while (target >= 256) {
    txt.strings.push_back(std::string(255, 'x'));
    target -= 256;  // 1 length octet + 255 payload octets
  }
  if (target > 0)
    txt.strings.push_back(std::string(target - 1, 'y'));
  return {owner, RRType::TXT, RRClass::IN, 3600, txt};
}

TEST(AxfrEdge, OversizedRdataAtMessageBoundary) {
  Zone zone{Name()};
  SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 99;
  zone.add({Name(), RRType::SOA, RRClass::IN, 86400, soa});
  // ~60 KiB of TXT RDATA: legal (fits a 64 KiB message alone), but cannot
  // share its message with anything else.
  zone.add(big_txt(*Name::parse("big.example."), 60 * 1024));
  Question question{zone.origin(), RRType::AXFR, RRClass::IN};

  AxfrStreamOptions options;
  options.max_message_bytes = 1 << 20;  // clamped to 65535 internally
  auto wire = encode_axfr_stream(zone.axfr_records(), question, options);
  ASSERT_FALSE(wire.empty());
  auto parsed = decode_axfr_stream(wire);
  ASSERT_TRUE(parsed.ok()) << *parsed.error;
  // Every frame must respect the 2-octet length ceiling.
  size_t offset = 0;
  while (offset + 2 <= wire.size()) {
    size_t frame = static_cast<size_t>(wire[offset]) << 8 | wire[offset + 1];
    EXPECT_LE(frame, 0xFFFFu);
    offset += 2 + frame;
  }
  EXPECT_EQ(offset, wire.size());
  auto rebuilt = Zone::from_axfr(parsed.records, zone.origin());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(*rebuilt == zone);

  // A record that cannot fit any frame at all (RDATA alone > 64 KiB) makes
  // the whole stream unencodable — empty result, which never parses.
  Zone impossible = zone;
  impossible.add(big_txt(*Name::parse("toobig.example."), 70 * 1024));
  auto bad = encode_axfr_stream(impossible.axfr_records(), question, options);
  EXPECT_TRUE(bad.empty());
  EXPECT_FALSE(decode_axfr_stream(bad).ok());
}

}  // namespace
}  // namespace rootsim::dns
