#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"

namespace rootsim::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.hits");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name + labels resolves to the same series.
  EXPECT_EQ(&registry.counter("test.hits"), &c);
  EXPECT_EQ(registry.counter_total("test.hits"), 42u);
}

TEST(Counter, LabelOrderIsNormalized) {
  MetricsRegistry registry;
  Counter& a = registry.counter("q", {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.counter("q", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b) << "label order must not create a second series";
  a.inc(3);
  EXPECT_EQ(registry.counter_value("q", {{"b", "2"}, {"a", "1"}}), 3u);
}

TEST(Counter, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry registry;
  registry.counter("q", {{"rcode", "NOERROR"}}).inc(5);
  registry.counter("q", {{"rcode", "REFUSED"}}).inc(2);
  EXPECT_EQ(registry.counter_total("q"), 7u);
  EXPECT_EQ(registry.counter_value("q", {{"rcode", "REFUSED"}}), 2u);
  EXPECT_EQ(registry.counter_value("q", {{"rcode", "SERVFAIL"}}), 0u);
}

TEST(Gauge, SetAddAndSetMax) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("zone.serial");
  g.set(2023121200);
  g.set_max(2023111200);  // lower: ignored
  EXPECT_EQ(g.value(), 2023121200);
  g.set_max(2023121201);
  EXPECT_EQ(g.value(), 2023121201);
  Gauge& h = registry.gauge("wall");
  h.add(1.5);
  h.add(2.5);
  EXPECT_DOUBLE_EQ(h.value(), 4.0);
}

TEST(Histogram, BucketsObservationsAtBoundaries) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("rtt", {}, {10, 20, 50});
  // A bound is an *upper* bound: observe(10) lands in the le10 bucket.
  h.observe(3);
  h.observe(10);
  h.observe(10.001);
  h.observe(50);
  h.observe(51);
  auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(buckets[0], 2u);      // 3, 10
  EXPECT_EQ(buckets[1], 1u);      // 10.001
  EXPECT_EQ(buckets[2], 1u);      // 50
  EXPECT_EQ(buckets[3], 1u);      // 51 -> +inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 3 + 10 + 10.001 + 50 + 51, 1e-9);
}

TEST(Histogram, DefaultBoundsAreUsedWhenNoneGiven) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency");
  EXPECT_EQ(h.bounds(), default_latency_bounds_ms());
}

TEST(Registry, SnapshotIsDeterministicallyOrdered) {
  // Registration order must not leak into iteration order.
  MetricsRegistry first, second;
  first.counter("b.metric").inc(1);
  first.counter("a.metric", {{"k", "2"}}).inc(2);
  first.counter("a.metric", {{"k", "1"}}).inc(3);
  second.counter("a.metric", {{"k", "1"}}).inc(3);
  second.counter("b.metric").inc(1);
  second.counter("a.metric", {{"k", "2"}}).inc(2);
  EXPECT_EQ(first.to_text(), second.to_text());
  EXPECT_EQ(first.to_jsonl(), second.to_jsonl());
  auto samples = first.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.metric");
  EXPECT_EQ(samples[0].labels, LabelSet({{"k", "1"}}));
  EXPECT_EQ(samples[2].name, "b.metric");
}

TEST(Registry, TextExportFormat) {
  MetricsRegistry registry;
  registry.counter("prober.queries", {{"rcode", "NOERROR"}}).inc(12);
  registry.histogram("rtt_ms", {}, {10, 20}).observe(15);
  std::string text = registry.to_text();
  EXPECT_NE(text.find("prober.queries{rcode=NOERROR} 12\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rtt_ms count=1 sum=15.000 le10=0 le20=1 inf=0"),
            std::string::npos)
      << text;
}

TEST(Registry, JsonlExportFormat) {
  MetricsRegistry registry;
  registry.counter("c", {{"k", "v"}}).inc(7);
  EXPECT_EQ(registry.to_jsonl(),
            "{\"metric\":\"c\",\"labels\":{\"k\":\"v\"},\"type\":\"counter\","
            "\"value\":7}\n");
}

TEST(Registry, VolatileMetricsExcludedByDefault) {
  MetricsRegistry registry;
  registry.gauge("campaign.phase_wall_ms", {{"phase", "audit"}},
                 /*volatile_metric=*/true)
      .set(123.4);
  registry.counter("stable").inc(1);
  EXPECT_EQ(registry.snapshot().size(), 1u);
  EXPECT_EQ(registry.to_text().find("phase_wall"), std::string::npos);
  EXPECT_EQ(registry.snapshot(/*include_volatile=*/true).size(), 2u);
}

TEST(Registry, ConcurrentIncrementsDoNotLose) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hot");
  Histogram& h = registry.histogram("hist", {}, {100});
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 1.0);
}

TEST(HistogramQuantile, InterpolatesWithinTheBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("rtt", {}, {10, 20, 50, 100});
  // 100 uniform values in (10, 20]: the median must sit near 15, inside the
  // bucket, not snapped to the 20 upper bound.
  for (int i = 0; i < 100; ++i) h.observe(10.0 + (i + 0.5) * 0.1);
  double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 20.0);
  EXPECT_NEAR(p50, 15.0, 1.0);
  // Everything below the first bound interpolates from a floor of 0.
  Histogram& low = registry.histogram("low", {}, {8.0});
  for (int i = 0; i < 10; ++i) low.observe(4.0);
  EXPECT_GT(low.quantile(0.5), 0.0);
  EXPECT_LE(low.quantile(0.5), 8.0);
  // The +inf bucket cannot be interpolated: it reports the top finite bound.
  Histogram& top = registry.histogram("top", {}, {10, 20});
  top.observe(500);
  EXPECT_DOUBLE_EQ(top.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(registry.histogram("empty", {}, {1.0}).quantile(0.5), 0.0);
}

// Satellite property: because merge_from adds buckets element-wise,
// merge(a, b) quantiles are *exactly* the single-pass quantiles — not
// approximately, byte for byte on the double.
TEST(HistogramQuantile, MergeEqualsSinglePass) {
  const std::vector<double> bounds = {1, 2, 5, 10, 20, 50, 100, 200};
  MetricsRegistry single_reg, a_reg, b_reg;
  Histogram& single = single_reg.histogram("h", {}, bounds);
  Histogram& a = a_reg.histogram("h", {}, bounds);
  Histogram& b = b_reg.histogram("h", {}, bounds);
  uint64_t state = 7;
  for (int i = 0; i < 4000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double value = static_cast<double>((state >> 33) % 2500) / 10.0;
    single.observe(value);
    (i % 3 ? a : b).observe(value);
  }
  a.merge_from(b);
  ASSERT_EQ(a.count(), single.count());
  for (double q : {0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), single.quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(
        histogram_quantile(a.bounds(), a.bucket_counts(), q),
        histogram_quantile(single.bounds(), single.bucket_counts(), q))
        << "q=" << q;
  }
}

TEST(HistogramQuantile, SampleQuantileMatchesLiveHistogram) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("rtt", {}, {10, 20, 50});
  for (int i = 0; i < 50; ++i) h.observe(12.0 + 0.1 * i);
  auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(sample_quantile(samples[0], 0.5), h.quantile(0.5));
  // Non-histogram samples have no quantile.
  MetricSample counter_sample;
  counter_sample.kind = MetricSample::Kind::Counter;
  EXPECT_DOUBLE_EQ(sample_quantile(counter_sample, 0.5), 0.0);
}

TEST(NullSink, HelpersAreNoOps) {
  Obs null_sink;
  EXPECT_FALSE(null_sink.enabled());
  null_sink.count("anything");                      // must not crash
  null_sink.observe("h", {{"a", "b"}}, 1.0);        // must not crash
  EXPECT_EQ(null_sink.counter_handle("x"), nullptr);
  EXPECT_EQ(null_sink.histogram_handle("x"), nullptr);
  inc(nullptr);
  observe(nullptr, 3.0);
  RunReport report = RunReport::capture(null_sink);
  EXPECT_TRUE(report.metrics.empty());
  EXPECT_EQ(report.one_line(), "obs: (no samples recorded)");
}

TEST(RunReport, OneLineAndCounterLookups) {
  Recorder recorder;
  Obs obs = recorder.obs();
  obs.count("prober.probes", 2);
  obs.count("prober.queries", {{"rcode", "NOERROR"}}, 90);
  obs.count("prober.queries", {{"rcode", "TIMEOUT"}}, 4);
  RunReport report = RunReport::capture(recorder);
  EXPECT_EQ(report.counter_total("prober.queries"), 94u);
  EXPECT_EQ(report.counter_value("prober.queries", {{"rcode", "TIMEOUT"}}), 4u);
  std::string line = report.one_line();
  EXPECT_NE(line.find("probes=2"), std::string::npos) << line;
  EXPECT_NE(line.find("queries=94"), std::string::npos) << line;
}

}  // namespace
}  // namespace rootsim::obs
