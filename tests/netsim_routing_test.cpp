#include "netsim/routing.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rss/catalog.h"
#include "util/stats.h"

namespace rootsim::netsim {
namespace {

struct Fixture {
  rss::RootCatalog catalog;
  Topology topology;
  RouterConfig config;
  std::unique_ptr<AnycastRouter> router;

  Fixture() {
    TopologyConfig topo_config;
    topology = build_topology(topo_config, catalog.all_deployment_specs(),
                              rss::paper_detour_rules());
    config.churn = default_churn_specs();
    config.campaign_rounds = 10000;
    router = std::make_unique<AnycastRouter>(topology, config);
  }

  VantageView vp_at(uint32_t id, util::Region region, double lat, double lon) {
    VantageView vp;
    vp.vp_id = id;
    vp.region = region;
    vp.location = {lat, lon};
    vp.asn = 64500 + id;
    vp.churn_multiplier = 1.0;
    return vp;
  }
};

TEST(Routing, RouteIsDeterministic) {
  Fixture f;
  VantageView vp = f.vp_at(1, util::Region::Europe, 50.1, 8.7);
  RouteResult a = f.router->route(vp, 0, util::IpFamily::V4);
  RouteResult b = f.router->route(vp, 0, util::IpFamily::V4);
  EXPECT_EQ(a.site_id, b.site_id);
  EXPECT_DOUBLE_EQ(a.rtt_ms, b.rtt_ms);
  EXPECT_EQ(a.second_to_last_hop, b.second_to_last_hop);
}

TEST(Routing, SelectedSiteBelongsToRequestedRoot) {
  Fixture f;
  VantageView vp = f.vp_at(2, util::Region::NorthAmerica, 40.7, -74.0);
  for (uint32_t root = 0; root < 13; ++root) {
    for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
      RouteResult route = f.router->route(vp, root, family);
      EXPECT_EQ(f.topology.sites[route.site_id].root_index, root);
      EXPECT_GT(route.rtt_ms, 0);
    }
  }
}

TEST(Routing, EuropeanVpPrefersNearbyReplicaForLargeDeployments) {
  // With 46 f.root global sites in Europe, a Frankfurt VP should reach one
  // within a few thousand km, never a 15,000 km one.
  Fixture f;
  VantageView vp = f.vp_at(3, util::Region::Europe, 50.1, 8.7);
  RouteResult route = f.router->route(vp, 5, util::IpFamily::V4);  // f.root
  double km = f.router->distance_km(vp, route.site_id);
  EXPECT_LT(km, 5000);
}

TEST(Routing, ClosestGlobalSiteIsGlobalAndClosest) {
  Fixture f;
  VantageView vp = f.vp_at(4, util::Region::Asia, 35.6, 139.7);
  for (uint32_t root = 0; root < 13; ++root) {
    const AnycastSite& closest = f.router->closest_global_site(vp, root);
    EXPECT_EQ(closest.type, SiteType::Global);
    double closest_km = util::haversine_km(vp.location, closest.location);
    for (uint32_t site_id : f.topology.sites_by_root[root]) {
      const AnycastSite& site = f.topology.sites[site_id];
      if (site.type != SiteType::Global) continue;
      EXPECT_LE(closest_km, util::haversine_km(vp.location, site.location) + 1e-6);
    }
  }
}

TEST(Routing, AsLocalSitesInvisibleToOutsiders) {
  // Route many VPs to f.root (70% AS-local locals): AS-local sites must
  // almost never be selected.
  Fixture f;
  int as_local_selections = 0, total = 0;
  for (uint32_t id = 0; id < 200; ++id) {
    VantageView vp = f.vp_at(1000 + id, util::Region::Europe,
                             45 + (id % 10), 5 + (id % 20));
    RouteResult route = f.router->route(vp, 5, util::IpFamily::V4);
    const AnycastSite& site = f.topology.sites[route.site_id];
    if (site.type == SiteType::Local && site.local_scope == LocalScope::AsLocal)
      ++as_local_selections;
    ++total;
  }
  EXPECT_LT(as_local_selections, total / 10);
}

TEST(Routing, ChurnProducesCalibratedMedianChanges) {
  // Count changes over the campaign for b.root (target median 8) and g.root
  // (targets 36 v4 / 64 v6) over a population of unit-multiplier VPs.
  Fixture f;
  auto median_changes = [&](uint32_t root, util::IpFamily family) {
    std::vector<double> counts;
    for (uint32_t id = 0; id < 60; ++id) {
      VantageView vp = f.vp_at(id, util::Region::Europe, 48 + id % 10, id % 20);
      auto selection = f.router->prepare_selection(vp, root, family);
      uint64_t changes = 0;
      uint32_t previous = AnycastRouter::site_at_round(selection, 0);
      for (uint64_t round = 1; round < f.config.campaign_rounds; ++round) {
        uint32_t current = AnycastRouter::site_at_round(selection, round);
        if (current != previous) ++changes;
        previous = current;
      }
      counts.push_back(static_cast<double>(changes));
    }
    return util::percentile(counts, 0.5);
  };
  double b_v4 = median_changes(1, util::IpFamily::V4);
  double g_v4 = median_changes(6, util::IpFamily::V4);
  double g_v6 = median_changes(6, util::IpFamily::V6);
  EXPECT_NEAR(b_v4, 8, 5);
  EXPECT_NEAR(g_v4, 36, 14);
  EXPECT_NEAR(g_v6, 64, 20);
  EXPECT_GT(g_v6, g_v4);  // the paper's headline ordering
  EXPECT_GT(g_v4, b_v4);
}

TEST(Routing, ChurnFlipsBetweenPreparedCandidates) {
  Fixture f;
  VantageView vp = f.vp_at(5, util::Region::Europe, 52.5, 13.4);
  vp.churn_multiplier = 50;  // heavy-churn VP
  auto selection = f.router->prepare_selection(vp, 6, util::IpFamily::V6);
  std::set<uint32_t> seen;
  for (uint64_t round = 0; round < 2000; ++round)
    seen.insert(AnycastRouter::site_at_round(selection, round));
  EXPECT_GE(seen.size(), 2u);
  for (uint32_t site : seen)
    EXPECT_TRUE(site == selection.primary_site || site == selection.secondary_site);
}

TEST(Routing, RouteAtAgreesWithPreparedSelection) {
  Fixture f;
  VantageView vp = f.vp_at(6, util::Region::Asia, 1.3, 103.8);
  vp.churn_multiplier = 20;
  auto selection = f.router->prepare_selection(vp, 6, util::IpFamily::V4);
  for (uint64_t round = 0; round < 500; ++round) {
    RouteResult route = f.router->route_at(vp, 6, util::IpFamily::V4, round);
    EXPECT_EQ(route.site_id, AnycastRouter::site_at_round(selection, round));
  }
}

TEST(Routing, DetourRulesChangeRttDistribution) {
  // i.root North America IPv6: many VPs go via the fast AS6939 path
  // (mean 23.4ms), making mean v6 RTT lower than v4 (paper: 46.2 vs 62.6).
  Fixture f;
  std::vector<double> v4, v6;
  int via_detour_v6 = 0;
  for (uint32_t id = 0; id < 300; ++id) {
    VantageView vp = f.vp_at(2000 + id, util::Region::NorthAmerica,
                             30 + id % 20, -120 + id % 45);
    RouteResult route_v4 = f.router->route(vp, 8, util::IpFamily::V4);
    RouteResult route_v6 = f.router->route(vp, 8, util::IpFamily::V6);
    v4.push_back(route_v4.rtt_ms);
    v6.push_back(route_v6.rtt_ms);
    if (route_v6.via_detour) {
      ++via_detour_v6;
      EXPECT_EQ(route_v6.detour_as, 6939u);
    }
  }
  EXPECT_GT(via_detour_v6, 100);  // ~55% of VPs
  EXPECT_LT(util::mean(v6), util::mean(v4));
}

TEST(Routing, SecondToLastHopSharedAcrossCoLocatedRoots) {
  // At least some VP observes two roots behind the same second-to-last hop.
  Fixture f;
  bool found_sharing = false;
  for (uint32_t id = 0; id < 100 && !found_sharing; ++id) {
    VantageView vp = f.vp_at(3000 + id, util::Region::Europe, 48 + id % 12,
                             -5 + id % 30);
    std::map<RouterId, int> hops;
    for (uint32_t root = 0; root < 13; ++root) {
      RouteResult route = f.router->route(vp, root, util::IpFamily::V4);
      if (route.second_to_last_hop != 0) ++hops[route.second_to_last_hop];
    }
    for (const auto& [hop, count] : hops)
      if (count >= 2) found_sharing = true;
  }
  EXPECT_TRUE(found_sharing);
}

TEST(Routing, HopLossProducesZeroMarker) {
  Fixture f;
  int lost = 0, total = 0;
  for (uint32_t id = 0; id < 200; ++id) {
    VantageView vp = f.vp_at(4000 + id, util::Region::NorthAmerica,
                             25 + id % 25, -120 + id % 50);
    for (uint32_t root = 0; root < 13; ++root) {
      RouteResult route = f.router->route(vp, root, util::IpFamily::V4);
      if (route.second_to_last_hop == 0) ++lost;
      ++total;
    }
  }
  double loss_rate = static_cast<double>(lost) / total;
  EXPECT_NEAR(loss_rate, f.config.hop_loss_probability, 0.02);
}

TEST(Routing, AnnouncedRoutesMatchDataPlane) {
  Fixture f;
  size_t agree = 0, total = 0;
  for (uint32_t id = 0; id < 50; ++id) {
    VantageView vp = f.vp_at(5000 + id, util::Region::Europe, 45 + id % 15,
                             id % 25);
    for (uint32_t root : {1u, 5u, 10u}) {
      auto routes = f.router->announced_routes(vp, root, util::IpFamily::V4);
      ASSERT_FALSE(routes.empty());
      // Costs are sorted ascending.
      for (size_t i = 1; i < routes.size(); ++i)
        EXPECT_GE(routes[i].path_cost, routes[i - 1].path_cost);
      // AS paths start at the VP's AS and end at the operator's origin.
      for (const auto& route : routes) {
        ASSERT_GE(route.as_path.size(), 2u);
        EXPECT_EQ(route.as_path.front(), vp.asn);
        EXPECT_EQ(route.as_path.back(), 64496 + root);
      }
      RouteResult selected = f.router->route(vp, root, util::IpFamily::V4);
      ++total;
      if (routes[0].site_id == selected.site_id) ++agree;
    }
  }
  // Absent detours (none for these roots in Europe), the control-plane best
  // path must be the data-plane selection.
  EXPECT_EQ(agree, total);
}

TEST(Routing, AnnouncedRoutesRespectMaxAndVisibility) {
  Fixture f;
  VantageView vp = f.vp_at(6001, util::Region::NorthAmerica, 40.7, -74.0);
  auto routes = f.router->announced_routes(vp, 5, util::IpFamily::V4, 4);
  EXPECT_LE(routes.size(), 4u);
  // b.root has only 6 sites worldwide.
  auto b_routes = f.router->announced_routes(vp, 1, util::IpFamily::V4, 100);
  EXPECT_LE(b_routes.size(), 6u);
  for (const auto& route : b_routes)
    EXPECT_EQ(f.topology.sites[route.site_id].root_index, 1u);
}

TEST(Routing, TracerouteHopsEndAtSite) {
  Fixture f;
  VantageView vp = f.vp_at(7, util::Region::Oceania, -33.9, 151.2);
  RouteResult route = f.router->route(vp, 10, util::IpFamily::V6);
  ASSERT_GE(route.hops.size(), 4u);
  // Second-to-last entry in the hop list is the recorded hop.
  EXPECT_EQ(route.hops[route.hops.size() - 2], route.second_to_last_hop);
}

}  // namespace
}  // namespace rootsim::netsim
