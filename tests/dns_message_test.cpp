#include "dns/message.h"

#include <gtest/gtest.h>

namespace rootsim::dns {
namespace {

TEST(Message, QueryRoundTrip) {
  Message query = make_query(0x1234, Name(), RRType::NS);
  auto wire = query.encode();
  auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_FALSE(decoded->qr);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_TRUE(decoded->questions[0].qname.is_root());
  EXPECT_EQ(decoded->questions[0].qtype, RRType::NS);
  EXPECT_EQ(decoded->questions[0].qclass, RRClass::IN);
}

TEST(Message, ChaosQueryForHostnameBind) {
  // The measurement script's `dig CH TXT hostname.bind`.
  Message query =
      make_query(7, *Name::parse("hostname.bind."), RRType::TXT, RRClass::CH);
  auto decoded = Message::decode(query.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->questions[0].qclass, RRClass::CH);
  EXPECT_EQ(decoded->questions[0].qname.to_string(), "hostname.bind.");
}

TEST(Message, FlagsRoundTrip) {
  Message msg;
  msg.id = 9;
  msg.qr = true;
  msg.aa = true;
  msg.tc = true;
  msg.rd = true;
  msg.ra = true;
  msg.ad = true;
  msg.cd = true;
  msg.rcode = Rcode::NxDomain;
  msg.opcode = Opcode::Notify;
  auto decoded = Message::decode(msg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->qr);
  EXPECT_TRUE(decoded->aa);
  EXPECT_TRUE(decoded->tc);
  EXPECT_TRUE(decoded->rd);
  EXPECT_TRUE(decoded->ra);
  EXPECT_TRUE(decoded->ad);
  EXPECT_TRUE(decoded->cd);
  EXPECT_EQ(decoded->rcode, Rcode::NxDomain);
  EXPECT_EQ(decoded->opcode, Opcode::Notify);
}

TEST(Message, ResponseWithAllSections) {
  Message msg;
  msg.id = 1;
  msg.qr = true;
  msg.aa = true;
  msg.questions.push_back({Name(), RRType::NS, RRClass::IN});
  for (char c = 'a'; c <= 'm'; ++c) {
    ResourceRecord rr;
    rr.name = Name();
    rr.type = RRType::NS;
    rr.ttl = 518400;
    rr.rdata = NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")};
    msg.answers.push_back(rr);
  }
  ResourceRecord glue;
  glue.name = *Name::parse("a.root-servers.net.");
  glue.type = RRType::A;
  glue.ttl = 518400;
  glue.rdata = AData{*util::IpAddress::parse("198.41.0.4")};
  msg.additional.push_back(glue);
  ResourceRecord ns_auth;
  ns_auth.name = *Name::parse("net.");
  ns_auth.type = RRType::NS;
  ns_auth.ttl = 172800;
  ns_auth.rdata = NsData{*Name::parse("x.gtld-servers.net.")};
  msg.authority.push_back(ns_auth);

  auto wire = msg.encode();
  auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers.size(), 13u);
  EXPECT_EQ(decoded->authority.size(), 1u);
  EXPECT_EQ(decoded->additional.size(), 1u);
  EXPECT_EQ(decoded->answers[0],  msg.answers[0]);
  EXPECT_EQ(decoded->additional[0], glue);
}

TEST(Message, CompressionShrinksRootNsResponse) {
  // 13 NS records all ending in ".root-servers.net." must compress well.
  Message msg;
  msg.qr = true;
  msg.questions.push_back({Name(), RRType::NS, RRClass::IN});
  for (char c = 'a'; c <= 'm'; ++c) {
    ResourceRecord rr;
    rr.name = Name();
    rr.type = RRType::NS;
    rr.ttl = 518400;
    rr.rdata = NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")};
    msg.answers.push_back(rr);
  }
  size_t compressed_size = msg.encode().size();
  // Uncompressed each NS name is 20 octets; compressed all but the first are
  // 4 octets. The whole response must stay well under 512 (it does in
  // reality: priming responses fit in UDP).
  EXPECT_LT(compressed_size, 300u);
}

TEST(Message, EdnsOptRoundTrip) {
  Message query = make_query(5, Name(), RRType::DNSKEY, RRClass::IN,
                             /*dnssec_ok=*/true);
  EXPECT_TRUE(query.dnssec_ok());
  auto decoded = Message::decode(query.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->dnssec_ok());
  ASSERT_EQ(decoded->additional.size(), 1u);
  const auto* opt = std::get_if<OptData>(&decoded->additional[0].rdata);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->udp_payload_size, 1232);
}

TEST(Message, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage = {0xde, 0xad};
  EXPECT_FALSE(Message::decode(garbage).has_value());
  std::vector<uint8_t> truncated_counts = {0, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(Message::decode(truncated_counts).has_value());
}

TEST(Message, DecodeEmptyMessage) {
  Message empty;
  auto decoded = Message::decode(empty.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->questions.empty());
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(Message, RcodeStrings) {
  EXPECT_EQ(rcode_to_string(Rcode::NoError), "NOERROR");
  EXPECT_EQ(rcode_to_string(Rcode::NxDomain), "NXDOMAIN");
  EXPECT_EQ(rcode_to_string(Rcode::Refused), "REFUSED");
}

}  // namespace
}  // namespace rootsim::dns
