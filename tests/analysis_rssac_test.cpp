#include "analysis/rssac_metrics.h"

#include <gtest/gtest.h>

#include "scenario/apply.h"

namespace rootsim::analysis {
namespace {

// Paper-timeline campaign (RSSAC047 bounds assume the paper's schedule).
const measure::Campaign& test_campaign() {
  static const measure::Campaign* campaign = [] {
    measure::CampaignConfig config = scenario::paper_campaign_config();
    config.zone.tld_count = 25;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.1;
    return new measure::Campaign(config);
  }();
  return *campaign;
}

TEST(Outages, ScheduleIsDeterministicAndBounded) {
  util::UnixTime start = util::make_time(2023, 7, 3);
  util::UnixTime end = util::make_time(2023, 12, 24);
  auto a = rss::site_outages(17, start, end);
  auto b = rss::site_outages(17, start, end);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_GE(a[i].start, start);
    EXPECT_LE(a[i].end, end);
    EXPECT_LE(a[i].end - a[i].start, 6 * 3600);
  }
}

TEST(Outages, AvailabilityConsistentWithSchedule) {
  util::UnixTime start = util::make_time(2023, 7, 3);
  util::UnixTime end = util::make_time(2023, 12, 24);
  for (uint32_t site = 0; site < 50; ++site) {
    for (const auto& window : rss::site_outages(site, start, end)) {
      if (window.end <= window.start) continue;
      EXPECT_FALSE(rss::site_available(site, window.start, start, end));
      EXPECT_TRUE(rss::site_available(site, window.end, start, end));
    }
  }
}

TEST(Outages, RareOverall) {
  // Expected downtime per site: ~1.5 outages x ~median 20 min over 174 days
  // => availability well above 99%.
  util::UnixTime start = util::make_time(2023, 7, 3);
  util::UnixTime end = util::make_time(2023, 12, 24);
  int64_t down = 0, total = 0;
  for (uint32_t site = 0; site < 200; ++site) {
    for (const auto& window : rss::site_outages(site, start, end))
      down += window.end - window.start;
    total += end - start;
  }
  EXPECT_LT(static_cast<double>(down) / total, 0.01);
}

TEST(Rssac, MetricsWithinSaneBounds) {
  RssacOptions options;
  options.sampled_rounds = 10;
  options.propagation_instances = 4;
  auto report = compute_rssac_metrics(test_campaign(), options);
  for (const auto& metrics : report.per_root) {
    EXPECT_GT(metrics.availability_v4, 0.98) << metrics.letter;
    EXPECT_LE(metrics.availability_v4, 1.0);
    EXPECT_GT(metrics.availability_v6, 0.98);
    EXPECT_GT(metrics.median_rtt_v4, 0);
    EXPECT_LE(metrics.median_rtt_v4, metrics.p95_rtt_v4 + 1e-9);
    EXPECT_GE(metrics.median_publication_latency_s, 0);
  }
  EXPECT_GT(report.worst_availability, 0.98);
}

// The replay-equivalence acceptance criterion: the batch RSSAC047 report
// must equal what the streaming collector reads out of its end-of-campaign
// totals — including when the replayed samples are sharded across
// collectors and folded through merge_from, the exact path the parallel
// campaign uses. If the batch path ever grew its own aggregation again,
// this is the test that catches the drift.
TEST(Rssac, BatchReportMatchesStreamingCollectorReplay) {
  RssacOptions options;
  options.sampled_rounds = 10;
  options.propagation_instances = 4;
  auto batch = compute_rssac_metrics(test_campaign(), options);

  // Same sampling plan recorded into one collector directly, and replayed
  // twice into a merged collector (two shards folded together): ratios and
  // quantiles are invariant under doubling the sample set, so the merged
  // report must match — the merge path cannot skew the rates.
  obs::SloCollector direct, shard_a, shard_b, merged;
  replay_rssac_samples(test_campaign(), options, direct);
  replay_rssac_samples(test_campaign(), options, shard_a);
  replay_rssac_samples(test_campaign(), options, shard_b);
  merged.merge_from(shard_b);
  merged.merge_from(shard_a);

  auto streaming = rssac_report_from_collector(direct);
  auto doubled = rssac_report_from_collector(merged);
  for (size_t root = 0; root < streaming.per_root.size(); ++root) {
    const auto& b = batch.per_root[root];
    const auto& s = streaming.per_root[root];
    EXPECT_EQ(b.letter, s.letter);
    EXPECT_DOUBLE_EQ(b.availability_v4, s.availability_v4) << b.letter;
    EXPECT_DOUBLE_EQ(b.availability_v6, s.availability_v6) << b.letter;
    EXPECT_DOUBLE_EQ(b.median_rtt_v4, s.median_rtt_v4) << b.letter;
    EXPECT_DOUBLE_EQ(b.median_rtt_v6, s.median_rtt_v6) << b.letter;
    EXPECT_DOUBLE_EQ(b.p95_rtt_v4, s.p95_rtt_v4) << b.letter;
    EXPECT_DOUBLE_EQ(b.p95_rtt_v6, s.p95_rtt_v6) << b.letter;
    EXPECT_DOUBLE_EQ(b.median_publication_latency_s,
                     s.median_publication_latency_s) << b.letter;
    // Ratios and quantiles are invariant under doubling the sample set.
    EXPECT_DOUBLE_EQ(doubled.per_root[root].availability_v4,
                     s.availability_v4) << b.letter;
    EXPECT_DOUBLE_EQ(doubled.per_root[root].median_rtt_v4, s.median_rtt_v4)
        << b.letter;
  }
  EXPECT_DOUBLE_EQ(batch.worst_availability, streaming.worst_availability);
}

TEST(Rssac, ClusterFailureMovesSomeSelections) {
  auto impact = simulate_cluster_failure(test_campaign());
  EXPECT_GE(impact.roots_hosted, 5u);  // a genuinely clustered facility
  EXPECT_GT(impact.selections_total, 0u);
  EXPECT_GT(impact.selections_moved, 0u);
  EXPECT_LT(impact.selections_moved, impact.selections_total / 2)
      << "one facility must not carry most of the world's selections";
  // Failover can only increase distance-derived RTT (next-best site).
  EXPECT_GE(impact.rtt_delta_ms.median, 0);
}

}  // namespace
}  // namespace rootsim::analysis
