#include "rss/catalog.h"

#include <gtest/gtest.h>
#include <set>

namespace rootsim::rss {
namespace {

TEST(Catalog, ThirteenServersWithCorrectAddresses) {
  RootCatalog catalog;
  EXPECT_EQ(catalog.servers().size(), 13u);
  // Spot-check service addresses against the measurement script's list.
  EXPECT_EQ(catalog.by_letter('a').ipv4.to_string(), "198.41.0.4");
  EXPECT_EQ(catalog.by_letter('b').ipv4.to_string(), "170.247.170.2");
  EXPECT_EQ(catalog.by_letter('b').ipv6.to_string(), "2801:1b8:10::b");
  EXPECT_EQ(catalog.by_letter('k').ipv4.to_string(), "193.0.14.129");
  EXPECT_EQ(catalog.by_letter('k').ipv6.to_string(), "2001:7fd::1");
  EXPECT_EQ(catalog.by_letter('m').ipv4.to_string(), "202.12.27.33");
  EXPECT_EQ(catalog.by_letter('m').ipv6.to_string(), "2001:dc3::35");
}

TEST(Catalog, RenumberingAddresses) {
  RootCatalog catalog;
  const auto& renumbering = catalog.renumbering();
  EXPECT_EQ(renumbering.old_ipv4.to_string(), "199.9.14.201");
  EXPECT_EQ(renumbering.old_ipv6.to_string(), "2001:500:200::b");
  EXPECT_EQ(renumbering.new_ipv4, catalog.by_letter('b').ipv4);
  EXPECT_EQ(renumbering.new_ipv6, catalog.by_letter('b').ipv6);
  // The instant is scenario data: unset by default, injected by the
  // campaign from its zone config (the paper's date comes from paper-2023).
  EXPECT_EQ(renumbering.zone_change_time, 0);
  catalog.set_renumbering_time(util::make_time(2023, 11, 27));
  EXPECT_EQ(util::format_date(catalog.renumbering().zone_change_time),
            "2023-11-27");
}

TEST(Catalog, IndexOfAddressCoversOldAndNew) {
  RootCatalog catalog;
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("198.41.0.4")), 0);
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("199.9.14.201")), 1);
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("2001:500:200::b")), 1);
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("170.247.170.2")), 1);
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("2001:dc3::35")), 12);
  EXPECT_EQ(catalog.index_of_address(*util::IpAddress::parse("192.0.2.1")), -1);
}

TEST(Catalog, ServiceAddressListHas28Entries) {
  RootCatalog catalog;
  // 12 roots x 2 families + b.root's 4 addresses = 28.
  auto addresses = catalog.service_addresses(util::make_time(2023, 12, 1));
  EXPECT_EQ(addresses.size(), 28u);
  // All addresses resolve back to a root.
  for (const auto& address : addresses)
    EXPECT_GE(catalog.index_of_address(address), 0);
}

TEST(Catalog, LocalSiteOperatorsMatchPaper) {
  RootCatalog catalog;
  // Paper §2: b, c, g, h, i, l use no local sites at all.
  for (char letter : {'b', 'c', 'g', 'h', 'i', 'l'})
    EXPECT_FALSE(catalog.by_letter(letter).has_local_sites()) << letter;
  for (char letter : {'a', 'd', 'e', 'f', 'j', 'k', 'm'})
    EXPECT_TRUE(catalog.by_letter(letter).has_local_sites()) << letter;
}

TEST(Catalog, DetourRulesReferenceKnownAses) {
  auto rules = paper_detour_rules();
  EXPECT_GE(rules.size(), 6u);
  for (const auto& rule : rules) {
    EXPECT_TRUE(rule.via_as == 6939 || rule.via_as == 12956);
    EXPECT_GT(rule.vp_fraction, 0);
    EXPECT_LE(rule.vp_fraction, 1);
    EXPECT_GT(rule.mean_rtt_ms, 0);
    EXPECT_LT(rule.root_index, 13u);
  }
}

}  // namespace
}  // namespace rootsim::rss
