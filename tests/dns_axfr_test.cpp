#include "dns/axfr.h"

#include <gtest/gtest.h>

#include "rss/zone_authority.h"

namespace rootsim::dns {
namespace {

std::vector<ResourceRecord> sample_transfer() {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  config.tld_count = 40;
  config.rsa_modulus_bits = 512;
  static rss::ZoneAuthority authority(catalog, config);
  return authority.zone_at(util::make_time(2023, 12, 10)).axfr_records();
}

Question axfr_question() { return {Name(), RRType::AXFR, RRClass::IN}; }

TEST(Axfr, StreamRoundTrip) {
  auto records = sample_transfer();
  auto stream = encode_axfr_stream(records, axfr_question());
  auto parsed = decode_axfr_stream(stream);
  ASSERT_TRUE(parsed.ok()) << *parsed.error;
  EXPECT_EQ(parsed.records, records);
  EXPECT_GE(parsed.message_count, 1u);
}

TEST(Axfr, ChunksRespectSizeBudget) {
  auto records = sample_transfer();
  AxfrStreamOptions options;
  options.max_message_bytes = 2048;
  auto stream = encode_axfr_stream(records, axfr_question(), options);
  auto parsed = decode_axfr_stream(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.message_count, 3u) << "small budget must force chunking";
  EXPECT_EQ(parsed.records, records);
  // Verify each frame honors the budget.
  size_t offset = 0;
  while (offset < stream.size()) {
    size_t length = static_cast<size_t>(stream[offset]) << 8 | stream[offset + 1];
    EXPECT_LE(length, options.max_message_bytes + 512)
        << "frame grossly exceeds budget";
    offset += 2 + length;
  }
}

TEST(Axfr, SmallerBudgetMoreMessages) {
  auto records = sample_transfer();
  AxfrStreamOptions big, small;
  big.max_message_bytes = 32 * 1024;
  small.max_message_bytes = 1024;
  auto big_parsed = decode_axfr_stream(encode_axfr_stream(records, axfr_question(), big));
  auto small_parsed =
      decode_axfr_stream(encode_axfr_stream(records, axfr_question(), small));
  ASSERT_TRUE(big_parsed.ok());
  ASSERT_TRUE(small_parsed.ok());
  EXPECT_GT(small_parsed.message_count, big_parsed.message_count);
  EXPECT_EQ(small_parsed.records, big_parsed.records);
}

TEST(Axfr, RejectsTruncatedStream) {
  auto records = sample_transfer();
  auto stream = encode_axfr_stream(records, axfr_question());
  for (size_t cut : {stream.size() - 1, stream.size() / 2, size_t{1}}) {
    std::vector<uint8_t> truncated(stream.begin(),
                                   stream.begin() + static_cast<long>(cut));
    auto parsed = decode_axfr_stream(truncated);
    EXPECT_FALSE(parsed.ok()) << "cut at " << cut;
  }
}

TEST(Axfr, RejectsGarbageFrame) {
  std::vector<uint8_t> garbage = {0x00, 0x04, 0xde, 0xad, 0xbe, 0xef};
  auto parsed = decode_axfr_stream(garbage);
  EXPECT_FALSE(parsed.ok());
}

TEST(Axfr, RejectsMissingTerminalSoa) {
  auto records = sample_transfer();
  records.pop_back();  // drop the trailing SOA
  auto stream = encode_axfr_stream(records, axfr_question());
  auto parsed = decode_axfr_stream(stream);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(*parsed.error, "stream not SOA-delimited");
}

TEST(Axfr, RejectsErrorRcode) {
  Message refusal;
  refusal.qr = true;
  refusal.rcode = Rcode::Refused;
  refusal.questions.push_back(axfr_question());
  auto wire = refusal.encode();
  std::vector<uint8_t> stream;
  stream.push_back(static_cast<uint8_t>(wire.size() >> 8));
  stream.push_back(static_cast<uint8_t>(wire.size()));
  stream.insert(stream.end(), wire.begin(), wire.end());
  auto parsed = decode_axfr_stream(stream);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error->find("REFUSED"), std::string::npos);
}

TEST(Axfr, EmptyStreamIsError) {
  auto parsed = decode_axfr_stream({});
  EXPECT_FALSE(parsed.ok());
}

TEST(Axfr, SingleByteCorruptionNeverCrashes) {
  // Property: a flipped byte anywhere in the stream either still parses (the
  // flip landed in RR payload) or yields a clean error — never UB/crash.
  auto records = sample_transfer();
  AxfrStreamOptions options;
  options.max_message_bytes = 4096;
  auto stream = encode_axfr_stream(records, axfr_question(), options);
  size_t parse_fail = 0, parse_ok = 0;
  for (size_t i = 0; i < stream.size(); i += 97) {
    auto corrupted = stream;
    corrupted[i] ^= 0x40;
    auto parsed = decode_axfr_stream(corrupted);
    parsed.ok() ? ++parse_ok : ++parse_fail;
  }
  EXPECT_GT(parse_fail + parse_ok, 10u);
  // Both outcomes occur in practice: framing/structure flips fail, payload
  // flips survive parsing (and are later caught by DNSSEC/ZONEMD).
  EXPECT_GT(parse_fail, 0u);
  EXPECT_GT(parse_ok, 0u);
}

TEST(Axfr, QuestionOnlyInFirstMessage) {
  auto records = sample_transfer();
  AxfrStreamOptions options;
  options.max_message_bytes = 1024;
  auto stream = encode_axfr_stream(records, axfr_question(), options);
  size_t offset = 0;
  size_t message_index = 0;
  while (offset + 2 <= stream.size()) {
    size_t length = static_cast<size_t>(stream[offset]) << 8 | stream[offset + 1];
    offset += 2;
    auto message = Message::decode(
        std::span<const uint8_t>(stream.data() + offset, length));
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->questions.size(), message_index == 0 ? 1u : 0u);
    offset += length;
    ++message_index;
  }
}

}  // namespace
}  // namespace rootsim::dns
