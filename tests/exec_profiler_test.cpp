// Exec-pool profiler: the ROOTSIM_PROFILE knob, the per-worker rollup math
// (busy time, critical path, imbalance), and the profiled parallel_for
// overload. The profiler's *wall* numbers are non-deterministic by nature;
// these tests only assert structural facts (counts, attribution, report
// shape), never timing values.
#include "exec/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/engine.h"

namespace rootsim::exec {
namespace {

struct ProfileEnvGuard {
  ~ProfileEnvGuard() { unsetenv("ROOTSIM_PROFILE"); }
};

TEST(Profiler, EnvKnobOffByDefaultAndForZero) {
  ProfileEnvGuard guard;
  unsetenv("ROOTSIM_PROFILE");
  EXPECT_FALSE(Profiler::enabled_by_env());
  setenv("ROOTSIM_PROFILE", "", 1);
  EXPECT_FALSE(Profiler::enabled_by_env());
  setenv("ROOTSIM_PROFILE", "0", 1);
  EXPECT_FALSE(Profiler::enabled_by_env());
}

TEST(Profiler, EnvKnobOnSelectsOutputPath) {
  ProfileEnvGuard guard;
  setenv("ROOTSIM_PROFILE", "1", 1);
  EXPECT_TRUE(Profiler::enabled_by_env());
  EXPECT_EQ(Profiler::env_output_path(), "PROF_exec_audit.json");
  setenv("ROOTSIM_PROFILE", "custom_profile.json", 1);
  EXPECT_TRUE(Profiler::enabled_by_env());
  EXPECT_EQ(Profiler::env_output_path(), "custom_profile.json");
}

TEST(Profiler, WorkerRollupAggregatesUnitSpans) {
  Profiler profiler;
  profiler.begin_region(/*unit_count=*/3, /*workers=*/2);
  // Synthetic spans: worker 0 runs units 0 and 1 back to back, worker 1 runs
  // unit 2. Times are caller-supplied, so the rollup math is exact.
  profiler.unit_done(0, 0, 10.0, 30.0);
  profiler.unit_done(1, 0, 30.0, 40.0);
  profiler.unit_done(2, 1, 10.0, 20.0);
  profiler.add_unit_sim_ms(0, 100.0);
  profiler.add_unit_sim_ms(2, 7.5);
  profiler.end_region();

  EXPECT_EQ(profiler.unit_count(), 3u);
  EXPECT_EQ(profiler.workers(), 2u);
  auto reports = profiler.worker_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].units, 2u);
  EXPECT_DOUBLE_EQ(reports[0].busy_ms, 30.0);
  EXPECT_DOUBLE_EQ(reports[0].first_begin_ms, 10.0);
  EXPECT_DOUBLE_EQ(reports[0].last_end_ms, 40.0);
  EXPECT_DOUBLE_EQ(reports[0].sim_ms, 100.0);
  EXPECT_EQ(reports[1].units, 1u);
  EXPECT_DOUBLE_EQ(reports[1].busy_ms, 10.0);
  EXPECT_DOUBLE_EQ(reports[1].sim_ms, 7.5);

  std::string json = profiler.to_json();
  for (const char* field :
       {"\"schema\":\"rootsim-exec-profile/2\"", "\"summary\":", "\"workers\":2",
        "\"units\":", "\"critical_path_ms\":", "\"parallel_efficiency\":",
        "\"imbalance\":", "\"tail_ms\":", "\"sched\":",
        "\"hardware_concurrency\":", "\"per_worker\":", "\"idle_ms\":",
        "\"steal_count\":"})
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
}

TEST(Profiler, BeginRegionResetsThePreviousRegion) {
  Profiler profiler;
  profiler.begin_region(5, 4);
  profiler.unit_done(4, 3, 0.0, 1.0);
  profiler.end_region();
  profiler.begin_region(2, 1);
  profiler.unit_done(0, 0, 0.0, 1.0);
  profiler.unit_done(1, 0, 1.0, 2.0);
  profiler.end_region();
  EXPECT_EQ(profiler.unit_count(), 2u);
  auto reports = profiler.worker_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].units, 2u);
}

TEST(Profiler, WriteEmitsParseableArtifact) {
  Profiler profiler;
  profiler.begin_region(1, 1);
  profiler.unit_done(0, 0, 0.0, 2.0);
  profiler.end_region();
  const std::string path = "PROF_profiler_test.json";
  ASSERT_TRUE(profiler.write(path));
  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  std::string contents(1 << 12, '\0');
  size_t n = std::fread(contents.data(), 1, contents.size(), in);
  std::fclose(in);
  std::remove(path.c_str());
  contents.resize(n);
  EXPECT_EQ(contents, profiler.to_json());
  EXPECT_FALSE(contents.empty());
}

TEST(ParallelFor, ProfiledOverloadRecordsEveryUnitOnItsShard) {
  constexpr size_t kUnits = 23;
  Profiler profiler;
  std::vector<std::atomic<int>> hits(kUnits);
  parallel_for(kUnits, 4, &profiler, [&](size_t unit, size_t) {
    hits[unit].fetch_add(1);
  });
  for (size_t unit = 0; unit < kUnits; ++unit)
    ASSERT_EQ(hits[unit].load(), 1) << unit;
  EXPECT_EQ(profiler.unit_count(), kUnits);
  size_t attributed = 0;
  for (const auto& report : profiler.worker_reports()) {
    attributed += report.units;
    EXPECT_GE(report.last_end_ms, report.first_begin_ms);
  }
  EXPECT_EQ(attributed, kUnits);
  EXPECT_GE(profiler.wall_ms(), 0.0);
}

TEST(ParallelFor, NullProfilerTakesThePlainPath) {
  std::vector<std::atomic<int>> hits(7);
  parallel_for(7, 2, nullptr, [&](size_t unit, size_t) { hits[unit]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace rootsim::exec
