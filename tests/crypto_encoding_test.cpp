#include "crypto/encoding.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rootsim::crypto {
namespace {

TEST(Hex, RoundTrip) {
  std::vector<uint8_t> data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  auto back = from_hex("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  // Upper case accepted on input.
  EXPECT_EQ(*from_hex("0001ABFF"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // bad digit
  EXPECT_TRUE(from_hex("").has_value());       // empty is valid
}

TEST(Base64, Rfc4648Vectors) {
  auto enc = [](const std::string& s) {
    return to_base64({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeIgnoresWhitespace) {
  auto out = from_base64("Zm9v\nYmFy");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::string(out->begin(), out->end()), "foobar");
}

TEST(Base64, RejectsMalformed) {
  EXPECT_FALSE(from_base64("Zg==Zg").has_value());  // data after padding
  EXPECT_FALSE(from_base64("Z*9v").has_value());    // invalid character
}

TEST(Base32Hex, Rfc4648Vectors) {
  auto enc = [](const std::string& s) {
    return to_base32hex({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  };
  // RFC 4648 §10 base32hex vectors (without '=' padding, per NSEC3 use).
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "CO");
  EXPECT_EQ(enc("fo"), "CPNG");
  EXPECT_EQ(enc("foo"), "CPNMU");
  EXPECT_EQ(enc("foob"), "CPNMUOG");
  EXPECT_EQ(enc("fooba"), "CPNMUOJ1");
  EXPECT_EQ(enc("foobar"), "CPNMUOJ1E8");
}

class EncodingRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(EncodingRoundTrip, AllEncodingsRoundTripRandomData) {
  util::Rng rng(GetParam());
  std::vector<uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  auto hex_back = from_hex(to_hex(data));
  ASSERT_TRUE(hex_back.has_value());
  EXPECT_EQ(*hex_back, data);
  auto b64_back = from_base64(to_base64(data));
  ASSERT_TRUE(b64_back.has_value());
  EXPECT_EQ(*b64_back, data);
  auto b32_back = from_base32hex(to_base32hex(data));
  ASSERT_TRUE(b32_back.has_value());
  EXPECT_EQ(*b32_back, data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EncodingRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 31, 32, 33, 47, 48,
                                           64, 100, 255, 256, 1000));

}  // namespace
}  // namespace rootsim::crypto
