#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rootsim::crypto {
namespace {

BigNum random_bignum(util::Rng& rng, size_t max_limbs) {
  size_t nbytes = (rng.uniform(max_limbs * 8)) + 1;
  std::vector<uint8_t> bytes(nbytes);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
  return BigNum::from_bytes(bytes);
}

TEST(BigNum, BasicConstruction) {
  EXPECT_TRUE(BigNum().is_zero());
  EXPECT_TRUE(BigNum(0).is_zero());
  EXPECT_FALSE(BigNum(1).is_zero());
  EXPECT_EQ(BigNum(0xdeadbeef).low_u64(), 0xdeadbeefu);
  EXPECT_TRUE(BigNum(3).is_odd());
  EXPECT_FALSE(BigNum(4).is_odd());
}

TEST(BigNum, BytesRoundTrip) {
  std::vector<uint8_t> bytes = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                0x08, 0x09, 0x0a, 0x0b};
  BigNum n = BigNum::from_bytes(bytes);
  EXPECT_EQ(n.to_bytes(), bytes);
  // Leading zeros stripped on import.
  std::vector<uint8_t> padded = {0x00, 0x00, 0x01, 0x02};
  EXPECT_EQ(BigNum::from_bytes(padded).to_bytes(),
            (std::vector<uint8_t>{0x01, 0x02}));
}

TEST(BigNum, PaddedExport) {
  BigNum n(0x1234);
  auto padded = n.to_bytes_padded(4);
  EXPECT_EQ(padded, (std::vector<uint8_t>{0x00, 0x00, 0x12, 0x34}));
  EXPECT_TRUE(n.to_bytes_padded(1).empty());  // does not fit
  EXPECT_EQ(BigNum().to_bytes_padded(2), (std::vector<uint8_t>{0, 0}));
}

TEST(BigNum, HexRoundTrip) {
  EXPECT_EQ(BigNum::from_hex("deadbeefcafebabe1234567890abcdef").to_hex(),
            "deadbeefcafebabe1234567890abcdef");
  EXPECT_EQ(BigNum().to_hex(), "0");
  EXPECT_EQ(BigNum::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigNum::from_hex("00ff").to_hex(), "ff");
}

TEST(BigNum, BitLength) {
  EXPECT_EQ(BigNum().bit_length(), 0u);
  EXPECT_EQ(BigNum(1).bit_length(), 1u);
  EXPECT_EQ(BigNum(255).bit_length(), 8u);
  EXPECT_EQ(BigNum(256).bit_length(), 9u);
  EXPECT_EQ((BigNum(1) << 100).bit_length(), 101u);
}

TEST(BigNum, AddSubInverse) {
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    BigNum a = random_bignum(rng, 6);
    BigNum b = random_bignum(rng, 6);
    BigNum sum = a + b;
    EXPECT_EQ(sum - b, a);
    EXPECT_EQ(sum - a, b);
    EXPECT_TRUE(sum >= a);
  }
}

TEST(BigNum, MulDistributes) {
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    BigNum a = random_bignum(rng, 4);
    BigNum b = random_bignum(rng, 4);
    BigNum c = random_bignum(rng, 4);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(BigNum, ShiftsAreMulDivByPowersOfTwo) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    BigNum a = random_bignum(rng, 4);
    size_t s = rng.uniform(130);
    EXPECT_EQ(a << s, a * (BigNum(1) << s));
    EXPECT_EQ((a << s) >> s, a);
  }
}

TEST(BigNum, DivModIdentity) {
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    BigNum a = random_bignum(rng, 8);
    BigNum b = random_bignum(rng, 1 + rng.uniform(7));
    if (b.is_zero()) continue;
    auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
  }
}

TEST(BigNum, DivModEdgeCases) {
  BigNum a = BigNum::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(a / BigNum(1), a);
  EXPECT_TRUE((a % a).is_zero());
  EXPECT_EQ(a / a, BigNum(1));
  EXPECT_EQ(BigNum(5) / BigNum(10), BigNum());
  EXPECT_EQ(BigNum(5) % BigNum(10), BigNum(5));
  // Divisor with top limb requiring full normalization shift.
  BigNum d = BigNum::from_hex("10000000000000001");
  auto [q, r] = a.divmod(d);
  EXPECT_EQ(q * d + r, a);
}

TEST(BigNum, KnuthDAddBackCase) {
  // Crafted so the qhat estimate overshoots and the D6 add-back path runs:
  // classic trigger is dividend limbs near b-1 with divisor slightly above b/2.
  BigNum u = BigNum::from_hex("7fffffffffffffff8000000000000000"
                              "00000000000000000000000000000000");
  BigNum v = BigNum::from_hex("80000000000000000000000000000001");
  auto [q, r] = u.divmod(v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_TRUE(r < v);
}

TEST(BigNum, ModPowSmallKnownValues) {
  EXPECT_EQ(BigNum(4).mod_pow(BigNum(13), BigNum(497)), BigNum(445));
  EXPECT_EQ(BigNum(2).mod_pow(BigNum(10), BigNum(1000)), BigNum(24));
  EXPECT_EQ(BigNum(7).mod_pow(BigNum(0), BigNum(13)), BigNum(1));
  EXPECT_TRUE(BigNum(7).mod_pow(BigNum(5), BigNum(1)).is_zero());
}

TEST(BigNum, ModPowFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
  BigNum p = BigNum::from_hex("ffffffffffffffc5");  // large 64-bit prime
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    BigNum a = random_bignum(rng, 2) % p;
    if (a.is_zero()) continue;
    EXPECT_EQ(a.mod_pow(p - BigNum(1), p), BigNum(1));
  }
}

TEST(BigNum, MontgomeryMatchesBasicModPow) {
  // Property test: the Montgomery CIOS kernel must agree with the
  // square-and-multiply oracle on random (base, exponent, odd modulus)
  // triples across the limb sizes RSA uses.
  util::Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    size_t mod_limbs = 1 + rng.uniform(17);  // up to 1088 bits
    BigNum modulus = random_bignum(rng, mod_limbs);
    if (!modulus.is_odd()) modulus = modulus + BigNum(1);
    if (modulus <= BigNum(1)) continue;
    BigNum base = random_bignum(rng, mod_limbs + 2);  // may exceed modulus
    BigNum exponent = random_bignum(rng, 1 + rng.uniform(4));
    EXPECT_EQ(base.mod_pow(exponent, modulus),
              base.mod_pow_basic(exponent, modulus))
        << "modulus=" << modulus.to_hex() << " base=" << base.to_hex()
        << " exp=" << exponent.to_hex();
  }
}

TEST(BigNum, MontgomeryEdgeCases) {
  MontgomeryContext ctx(BigNum(497));
  ASSERT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.exp(BigNum(4), BigNum(13)), BigNum(445));
  EXPECT_EQ(ctx.exp(BigNum(0), BigNum(5)), BigNum(0));
  EXPECT_EQ(ctx.exp(BigNum(7), BigNum(0)), BigNum(1));
  EXPECT_EQ(ctx.exp(BigNum(497 * 3 + 2), BigNum(1)), BigNum(2));
  // Even / trivial moduli are rejected and handled by the basic path.
  EXPECT_FALSE(MontgomeryContext(BigNum(496)).valid());
  EXPECT_FALSE(MontgomeryContext(BigNum(1)).valid());
  EXPECT_FALSE(MontgomeryContext(BigNum(0)).valid());
  // mod_pow on an even modulus still works via the fallback.
  EXPECT_EQ(BigNum(2).mod_pow(BigNum(10), BigNum(1000)), BigNum(24));
}

TEST(BigNum, ModInverse) {
  util::Rng rng(6);
  BigNum m = BigNum::from_hex("ffffffffffffffc5");  // prime modulus
  for (int i = 0; i < 50; ++i) {
    BigNum a = random_bignum(rng, 2) % m;
    if (a.is_zero()) continue;
    BigNum inv = a.mod_inverse(m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_EQ((a * inv) % m, BigNum(1));
  }
  // Non-invertible: gcd(6, 12) != 1.
  EXPECT_TRUE(BigNum(6).mod_inverse(BigNum(12)).is_zero());
}

TEST(BigNum, Gcd) {
  EXPECT_EQ(BigNum::gcd(BigNum(48), BigNum(36)), BigNum(12));
  EXPECT_EQ(BigNum::gcd(BigNum(17), BigNum(13)), BigNum(1));
  EXPECT_EQ(BigNum::gcd(BigNum(0), BigNum(5)), BigNum(5));
  EXPECT_EQ(BigNum::gcd(BigNum(5), BigNum(0)), BigNum(5));
}

TEST(BigNum, CompareTotalOrder) {
  BigNum small(1), mid = BigNum(1) << 64, large = BigNum(1) << 128;
  EXPECT_LT(small.compare(mid), 0);
  EXPECT_LT(mid.compare(large), 0);
  EXPECT_EQ(mid.compare(BigNum(1) << 64), 0);
  EXPECT_GT(large.compare(small), 0);
}

}  // namespace
}  // namespace rootsim::crypto
