#include "dns/zone_diff.h"

#include <gtest/gtest.h>

#include "measure/prober.h"
#include "rss/zone_authority.h"

namespace rootsim::dns {
namespace {

using util::make_time;

struct Fixture {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  std::unique_ptr<rss::ZoneAuthority> authority;

  Fixture() {
    config.tld_count = 30;
    config.rsa_modulus_bits = 512;
    // Paper-timeline fixture: this file diffs zones across the b.root
    // renumbering edit, so the instant is set explicitly (scenario data).
    config.zonemd_private_start = make_time(2023, 9, 13);
    config.zonemd_sha384_start = make_time(2023, 12, 6, 20, 30);
    config.broot_change = make_time(2023, 11, 27);
    catalog.set_renumbering_time(config.broot_change);
    authority = std::make_unique<rss::ZoneAuthority>(catalog, config);
  }
};

TEST(ZoneDiff, IdenticalZonesAreEmpty) {
  Fixture f;
  const Zone& zone = f.authority->zone_at(make_time(2023, 10, 1));
  ZoneDiff diff = diff_zones(zone, zone);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.size(), 0u);
  EXPECT_EQ(diff.to_string(), "");
}

TEST(ZoneDiff, RenumberingChangesExactlyTheBrootRecords) {
  Fixture f;
  util::UnixTime change = f.catalog.renumbering().zone_change_time;
  // Same serial-half comparison across the edit requires adjacent serials:
  // compare the zone just before and just after the change (different
  // serials, so SOA/NSEC/RRSIG/ZONEMD churn too — but the *address* deltas
  // must be exactly the b.root A and AAAA pairs).
  const Zone& before = f.authority->zone_at(change - 3600);
  const Zone& after = f.authority->zone_at(change + 3600);
  ZoneDiff diff = diff_zones(before, after);
  Name b = *Name::parse("b.root-servers.net.");
  std::vector<std::string> removed_addresses, added_addresses;
  for (const auto& rr : diff.removed)
    if (rr.name == b && (rr.type == RRType::A || rr.type == RRType::AAAA))
      removed_addresses.push_back(rdata_to_string(rr.rdata));
  for (const auto& rr : diff.added)
    if (rr.name == b && (rr.type == RRType::A || rr.type == RRType::AAAA))
      added_addresses.push_back(rdata_to_string(rr.rdata));
  std::sort(removed_addresses.begin(), removed_addresses.end());
  std::sort(added_addresses.begin(), added_addresses.end());
  EXPECT_EQ(removed_addresses,
            (std::vector<std::string>{"199.9.14.201", "2001:500:200::b"}));
  EXPECT_EQ(added_addresses,
            (std::vector<std::string>{"170.247.170.2", "2801:1b8:10::b"}));
  // No other root's addresses changed.
  for (const auto& rr : diff.added) {
    if (rr.type != RRType::A && rr.type != RRType::AAAA) continue;
    if (rr.name.is_subdomain_of(*Name::parse("root-servers.net.")))
      EXPECT_EQ(rr.name, b) << record_to_string(rr);
  }
}

TEST(ZoneDiff, BitflipShowsAsOneRemovedOneAdded) {
  Fixture f;
  auto records = f.authority->zone_at(make_time(2023, 12, 10)).axfr_records();
  auto corrupted = records;
  std::string note = measure::inject_bitflip(corrupted, 7, /*prefer_signed=*/true);
  EXPECT_NE(note, "no flippable record");
  ZoneDiff diff = diff_records(records, corrupted);
  // AXFR framing duplicates the SOA; the flip hits exactly one record.
  EXPECT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed[0].name, diff.added[0].name);
  EXPECT_EQ(diff.removed[0].type, RRType::RRSIG);
  std::string rendered = diff.to_string();
  EXPECT_NE(rendered.find("- "), std::string::npos);
  EXPECT_NE(rendered.find("+ "), std::string::npos);
}

TEST(ZoneDiff, MaxLinesTruncates) {
  Fixture f;
  const Zone& a = f.authority->zone_at(make_time(2023, 10, 1));
  const Zone& b = f.authority->zone_at(make_time(2023, 10, 2));
  ZoneDiff diff = diff_zones(a, b);  // serial + all RRSIGs differ
  ASSERT_GT(diff.size(), 6u);
  std::string rendered = diff.to_string(5);
  EXPECT_NE(rendered.find("more)"), std::string::npos);
}

TEST(ZoneDiff, DisjointZones) {
  Zone a{Name{}};
  a.add({Name(), RRType::SOA, RRClass::IN, 60,
         SoaData{*Name::parse("m1."), *Name::parse("r1."), 1, 2, 3, 4, 5}});
  Zone b{Name{}};
  b.add({Name(), RRType::SOA, RRClass::IN, 60,
         SoaData{*Name::parse("m2."), *Name::parse("r2."), 9, 2, 3, 4, 5}});
  ZoneDiff diff = diff_zones(a, b);
  EXPECT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.added.size(), 1u);
}

}  // namespace
}  // namespace rootsim::dns
