#include "util/timeutil.h"

#include <gtest/gtest.h>

namespace rootsim::util {
namespace {

TEST(Time, EpochIsZero) {
  EXPECT_EQ(make_time(1970, 1, 1), 0);
  EXPECT_EQ(format_datetime(0), "1970-01-01T00:00:00Z");
}

TEST(Time, PaperTimelineDates) {
  // Key events from Figure 2.
  UnixTime start = make_time(2023, 7, 3);
  UnixTime zonemd_added = make_time(2023, 9, 13);
  UnixTime zonemd_validates = make_time(2023, 12, 6);
  UnixTime broot_change = make_time(2023, 11, 27);
  UnixTime end = make_time(2023, 12, 24);
  EXPECT_EQ(format_date(start), "2023-07-03");
  EXPECT_EQ(format_date(zonemd_added), "2023-09-13");
  EXPECT_EQ(format_date(zonemd_validates), "2023-12-06");
  EXPECT_EQ(format_date(broot_change), "2023-11-27");
  // The measurement spans 174 days.
  EXPECT_EQ(days_between(start, end), 174);
  EXPECT_LT(start, zonemd_added);
  EXPECT_LT(zonemd_added, broot_change);
  EXPECT_LT(broot_change, zonemd_validates);
}

TEST(Time, CivilRoundTrip) {
  UnixTime t = make_time(2023, 12, 21, 10, 35, 17);
  CivilTime c = civil_from_unix(t);
  EXPECT_EQ(c.year, 2023);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 21);
  EXPECT_EQ(c.hour, 10);
  EXPECT_EQ(c.minute, 35);
  EXPECT_EQ(c.second, 17);
  EXPECT_EQ(format_datetime(t), "2023-12-21T10:35:17Z");
}

TEST(Time, LeapYearFebruary) {
  // 2024 is a leap year; the ISP-DNS-1 window 2024-02-05..2024-03-04 crosses
  // Feb 29.
  EXPECT_EQ(days_between(make_time(2024, 2, 5), make_time(2024, 3, 4)), 28);
  EXPECT_EQ(format_date(make_time(2024, 2, 29)), "2024-02-29");
  EXPECT_EQ(days_between(make_time(2024, 2, 28), make_time(2024, 3, 1)), 2);
}

TEST(Time, DayStartTruncates) {
  UnixTime t = make_time(2023, 10, 8, 23, 59, 59);
  EXPECT_EQ(day_start(t), make_time(2023, 10, 8));
  EXPECT_EQ(day_start(make_time(2023, 10, 8)), make_time(2023, 10, 8));
}

TEST(Time, RoundTripSweep) {
  // Property: make_time(civil_from_unix(t)) == t over a broad sweep.
  for (UnixTime t = make_time(2023, 1, 1); t < make_time(2025, 1, 1);
       t += 86400 * 7 + 3601) {
    CivilTime c = civil_from_unix(t);
    EXPECT_EQ(make_time(c.year, c.month, c.day, c.hour, c.minute, c.second), t);
  }
}

}  // namespace
}  // namespace rootsim::util
