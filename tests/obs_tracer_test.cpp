#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace rootsim::obs {
namespace {

TEST(Tracer, SpanNestingAndIds) {
  Tracer tracer;
  uint64_t probe = tracer.begin_span("probe", 100, {{"vp", "7"}});
  uint64_t axfr = tracer.begin_span("axfr", 101, {}, probe);
  tracer.event(axfr, "record", 101);
  tracer.end_span(axfr, 102);
  tracer.event(probe, "query", 103, {{"qtype", "NS"}});
  tracer.end_span(probe, 104);

  auto events = tracer.events();
  ASSERT_EQ(events.size(), 6u);
  // Ids are a strictly increasing sequence starting at 1.
  for (size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].id, i + 1);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::SpanBegin);
  EXPECT_EQ(events[0].span_id, 0u);  // top level
  EXPECT_EQ(events[1].span_id, probe);
  EXPECT_EQ(events[2].span_id, axfr);
  EXPECT_EQ(events[3].kind, TraceEvent::Kind::SpanEnd);
  EXPECT_EQ(events[3].span_id, axfr);
  EXPECT_EQ(events[4].span_id, probe);
  EXPECT_EQ(events[5].span_id, probe);
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingBufferDropsOldestAtCapacity) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.event(0, util::format("e%d", i), i);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "e6");  // oldest surviving
  EXPECT_EQ(events.back().name, "e9");
}

TEST(Tracer, JsonlRoundTrip) {
  Tracer tracer;
  uint64_t span = tracer.begin_span(
      "probe", 1694593200,
      {{"addr", "193.0.14.129"}, {"note", "quote\" and \\slash\nnewline"}});
  tracer.event(span, "query", 1694593201, {{"qname", "."}, {"qtype", "ZONEMD"}});
  tracer.end_span(span, 1694593202);

  std::string jsonl = tracer.to_jsonl();
  auto lines = util::split(jsonl, '\n');
  ASSERT_EQ(lines.back(), "");  // trailing newline
  lines.pop_back();
  ASSERT_EQ(lines.size(), 3u);

  auto original = tracer.events();
  for (size_t i = 0; i < lines.size(); ++i) {
    TraceEvent parsed;
    ASSERT_TRUE(parse_trace_line(lines[i], parsed)) << lines[i];
    EXPECT_EQ(parsed.id, original[i].id);
    EXPECT_EQ(parsed.span_id, original[i].span_id);
    EXPECT_EQ(parsed.kind, original[i].kind);
    EXPECT_EQ(parsed.name, original[i].name);
    EXPECT_EQ(parsed.sim_time, original[i].sim_time);
    ASSERT_EQ(parsed.attrs.size(), original[i].attrs.size());
    for (size_t a = 0; a < parsed.attrs.size(); ++a) {
      EXPECT_EQ(parsed.attrs[a].key, original[i].attrs[a].key);
      EXPECT_EQ(parsed.attrs[a].value, original[i].attrs[a].value);
    }
  }
}

TEST(Tracer, ParseRejectsMalformedLines) {
  TraceEvent event;
  EXPECT_FALSE(parse_trace_line("", event));
  EXPECT_FALSE(parse_trace_line("{", event));
  EXPECT_FALSE(parse_trace_line("{\"id\":}", event));
  EXPECT_FALSE(parse_trace_line("{\"kind\":\"sideways\"}", event));
  EXPECT_FALSE(parse_trace_line("{\"unknown\":\"field\"}", event));
  EXPECT_TRUE(parse_trace_line("{\"id\":3,\"span\":0,\"kind\":\"event\","
                               "\"name\":\"x\",\"t\":9}",
                               event));
  EXPECT_EQ(event.id, 3u);
  EXPECT_EQ(event.sim_time, 9);
}

TEST(Tracer, IdenticalOperationSequencesDumpIdenticalJsonl) {
  // The determinism contract: a tracer fed the same (simulated-time) events
  // produces byte-identical output — no wall clock anywhere.
  auto run = [] {
    Tracer tracer;
    for (int round = 0; round < 3; ++round) {
      uint64_t span = tracer.begin_span("probe", 1000 + round,
                                        {{"round", util::format("%d", round)}});
      tracer.event(span, "query", 1000 + round, {{"rcode", "NOERROR"}});
      tracer.end_span(span, 1001 + round);
    }
    return tracer.to_jsonl();
  };
  EXPECT_EQ(run(), run());
}

TEST(Tracer, DroppedSpansCounterMirrorsRingEvictions) {
  Recorder recorder(/*trace_capacity=*/4);
  // The series is registered eagerly: it appears (as zero) in exports even
  // when nothing ever overflows, so serial and sharded runs export the same
  // series set.
  EXPECT_EQ(recorder.metrics().counter_total("tracer.dropped_spans"), 0u);
  EXPECT_NE(recorder.metrics().to_jsonl().find("tracer.dropped_spans"),
            std::string::npos);
  for (int i = 0; i < 10; ++i) recorder.tracer().event(0, "e", i);
  EXPECT_EQ(recorder.tracer().dropped(), 6u);
  EXPECT_EQ(recorder.metrics().counter_total("tracer.dropped_spans"), 6u);
}

TEST(Tracer, AbsorbPlusMetricsMergeCountsEachDropExactlyOnce) {
  // Serial reference: one ring sees all 15 events.
  Recorder serial(/*trace_capacity=*/4);
  for (int i = 0; i < 15; ++i) serial.tracer().event(0, "e", i);

  // Sharded: the shard's push-time drops are already in the shard's counter
  // (folded by the metrics merge); absorb() must only count the evictions it
  // newly causes in the main ring, or the total would double-count.
  Recorder main(/*trace_capacity=*/4);
  Recorder shard(/*trace_capacity=*/4);
  for (int i = 0; i < 5; ++i) main.tracer().event(0, "e", i);
  for (int i = 5; i < 15; ++i) shard.tracer().event(0, "e", i);
  main.tracer().absorb(std::move(shard.tracer()));
  main.metrics().merge_from(shard.metrics());

  EXPECT_EQ(main.tracer().dropped(), serial.tracer().dropped());
  EXPECT_EQ(main.metrics().counter_total("tracer.dropped_spans"),
            serial.metrics().counter_total("tracer.dropped_spans"));
  EXPECT_EQ(main.metrics().counter_total("tracer.dropped_spans"),
            main.tracer().dropped());
}

TEST(Tracer, ClearKeepsIdStreamUnique) {
  Tracer tracer;
  tracer.event(0, "a", 1);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  tracer.event(0, "b", 2);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 2u) << "ids must stay unique across clear()";
}

}  // namespace
}  // namespace rootsim::obs
