#include "measure/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "netsim/flight_recorder.h"
#include "scenario/apply.h"

namespace rootsim::measure {
namespace {

CampaignConfig fast_config() {
  CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 25;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  return config;
}

TEST(Campaign, AssemblesAllComponents) {
  Campaign campaign(fast_config());
  EXPECT_EQ(campaign.schedule().round_count(), 10272u);
  EXPECT_GT(campaign.vantage_points().size(), 10u);
  EXPECT_GT(campaign.topology().sites.size(), 1000u);
  EXPECT_FALSE(campaign.fault_plan().empty());
  // Router calibrated to the schedule length.
  EXPECT_EQ(campaign.router().config().campaign_rounds,
            campaign.schedule().round_count());
}

TEST(Campaign, VpScaleShrinksProportionally) {
  Campaign small(fast_config());
  // Full Table 3 is 675; 5% ~ 35 (at least 1 per region).
  EXPECT_LT(small.vantage_points().size(), 60u);
  EXPECT_GE(small.vantage_points().size(), 6u);
  std::set<util::Region> regions;
  for (const auto& vp : small.vantage_points()) regions.insert(vp.view.region);
  EXPECT_EQ(regions.size(), util::kRegionCount);  // every region survives
}

TEST(Campaign, ZoneAuditFindsAllFaultClasses) {
  Campaign campaign(fast_config());
  auto observations = campaign.run_zone_audit(/*clean_samples=*/40);
  ASSERT_FALSE(observations.empty());
  size_t not_incepted = 0, expired = 0, bogus = 0, valid = 0;
  for (const auto& obs : observations) {
    switch (obs.verdict) {
      case dnssec::ValidationStatus::SignatureNotIncepted: ++not_incepted; break;
      case dnssec::ValidationStatus::SignatureExpired: ++expired; break;
      case dnssec::ValidationStatus::BogusSignature: ++bogus; break;
      case dnssec::ValidationStatus::Valid: ++valid; break;
      default: break;
    }
  }
  EXPECT_GT(not_incepted, 0u) << "clock-skew VPs must yield inception errors";
  EXPECT_GT(expired, 0u) << "stale d.root sites must yield expired signatures";
  EXPECT_GT(bogus, 0u) << "bitflips must yield bogus signatures";
  EXPECT_GT(valid, 30u) << "clean samples must validate";
}

TEST(Campaign, ZoneAuditCleanSamplesAllValid) {
  Campaign campaign(fast_config());
  auto observations = campaign.run_zone_audit(/*clean_samples=*/60);
  for (const auto& obs : observations) {
    if (obs.table2_vp_id != 0) continue;  // planned fault
    EXPECT_EQ(obs.verdict, dnssec::ValidationStatus::Valid)
        << "clean transfer failed at " << util::format_datetime(obs.when)
        << " note=" << obs.note;
  }
}

TEST(Campaign, ZoneAuditBitflipsDetectedByZonemdWhenVerifiable) {
  Campaign campaign(fast_config());
  auto observations = campaign.run_zone_audit(0);
  for (const auto& obs : observations) {
    if (obs.verdict != dnssec::ValidationStatus::BogusSignature) continue;
    // After 2023-12-06, ZONEMD is verifiable and must flag the corruption;
    // before that, the record is absent or unsupported.
    if (obs.when >= util::make_time(2023, 12, 6, 20, 30))
      EXPECT_EQ(obs.zonemd, dnssec::ZonemdStatus::Mismatch);
  }
}

TEST(Campaign, ZoneAuditObservationsSortedByTime) {
  Campaign campaign(fast_config());
  auto observations = campaign.run_zone_audit(20);
  for (size_t i = 1; i < observations.size(); ++i)
    EXPECT_LE(observations[i - 1].when, observations[i].when);
}

TEST(Campaign, DeterministicAudit) {
  Campaign a(fast_config());
  Campaign b(fast_config());
  auto obs_a = a.run_zone_audit(10);
  auto obs_b = b.run_zone_audit(10);
  ASSERT_EQ(obs_a.size(), obs_b.size());
  for (size_t i = 0; i < obs_a.size(); ++i) {
    EXPECT_EQ(obs_a[i].verdict, obs_b[i].verdict);
    EXPECT_EQ(obs_a[i].soa_serial, obs_b[i].soa_serial);
  }
}

TEST(Campaign, VpFallbackStandInsAreUniquePerPlannedVp) {
  // vp_scale = 0.05 keeps ~35 of 675 VPs, so most planned fault VP ids are
  // missing and get stand-ins. Distinct planned ids must never collapse onto
  // the same stand-in (the modulo-aliasing bug this assignment replaced).
  Campaign campaign(fast_config());
  auto observations = campaign.run_zone_audit(0);

  std::map<uint32_t, uint32_t> planned_to_stand_in;
  std::set<uint32_t> scaled_ids;
  for (const auto& vp : campaign.vantage_points())
    scaled_ids.insert(vp.view.vp_id);

  const std::string marker = "vp-fallback: planned vp ";
  for (const auto& obs : observations) {
    size_t at = obs.note.find(marker);
    if (at == std::string::npos) continue;
    unsigned planned = 0, stand_in = 0;
    ASSERT_EQ(std::sscanf(obs.note.c_str() + at,
                          "vp-fallback: planned vp %u not in scaled set "
                          "(stand-in vp %u)",
                          &planned, &stand_in),
              2)
        << obs.note;
    // The observation keeps the plan's VP identity, not the stand-in's.
    EXPECT_EQ(obs.vp_id, planned);
    EXPECT_FALSE(scaled_ids.count(planned)) << planned;
    EXPECT_TRUE(scaled_ids.count(stand_in)) << stand_in;
    auto [it, inserted] = planned_to_stand_in.emplace(planned, stand_in);
    // Stable: every event of the same planned VP uses the same stand-in.
    EXPECT_EQ(it->second, stand_in) << planned;
  }
  ASSERT_GT(planned_to_stand_in.size(), 1u) << "fixture no longer scales down";

  // Injectivity: no two planned VPs share a stand-in.
  std::set<uint32_t> distinct_stand_ins;
  for (const auto& [planned, stand_in] : planned_to_stand_in)
    distinct_stand_ins.insert(stand_in);
  EXPECT_EQ(distinct_stand_ins.size(), planned_to_stand_in.size());
}

TEST(Campaign, LossyAuditIsIdenticalAcrossWorkerCounts) {
  // The transport RNG is keyed by path coordinates, never by worker or
  // execution order: a lossy campaign must produce byte-identical
  // observation vectors at any worker count.
  CampaignConfig config = fast_config();
  config.transport.defaults.loss = 0.3;
  Campaign campaign(config);
  auto serial = campaign.run_zone_audit(16, 1);
  ASSERT_FALSE(serial.empty());
  size_t timeouts = 0;
  for (const auto& obs : serial)
    if (obs.note.find("axfr-timeout") != std::string::npos) ++timeouts;
  EXPECT_GT(timeouts, 0u) << "30% loss should kill some transfers";
  for (size_t workers : {2u, 8u}) {
    auto parallel = campaign.run_zone_audit(16, workers);
    ASSERT_EQ(parallel.size(), serial.size()) << workers;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].vp_id, serial[i].vp_id) << workers << ":" << i;
      EXPECT_EQ(parallel[i].root_index, serial[i].root_index)
          << workers << ":" << i;
      EXPECT_EQ(parallel[i].when, serial[i].when) << workers << ":" << i;
      EXPECT_EQ(parallel[i].soa_serial, serial[i].soa_serial)
          << workers << ":" << i;
      EXPECT_EQ(parallel[i].verdict, serial[i].verdict) << workers << ":" << i;
      EXPECT_EQ(parallel[i].zonemd, serial[i].zonemd) << workers << ":" << i;
      EXPECT_EQ(parallel[i].note, serial[i].note) << workers << ":" << i;
    }
  }
}

// The tentpole acceptance property for the SLO plane: run the monitor over
// the paper timeline and both headline events must come out the other side
// as *detected, attributed* incidents — the b.root renumbering as an
// availability breach on letter b blamed on the scripted event, and the
// ZONEMD private-algorithm rollout phase as integrity breaches blamed on
// the zone-pipeline hint.
TEST(Campaign, SloTimelineDetectsAndAttributesPaperEvents) {
  // Full paper schedule (the ZONEMD rollout spans Sep-Dec); scaled VP set
  // keeps the run to a few seconds.
  Campaign campaign(fast_config());
  netsim::FlightRecorder flight(256);
  SloTimelineOptions options;
  options.flight_recorder = &flight;
  options.workers = 4;
  SloTimelineResult result = campaign.run_slo_timeline(options);

  ASSERT_FALSE(result.windows.empty());
  ASSERT_FALSE(result.incidents.empty());
  EXPECT_GT(result.probes, 0u);
  EXPECT_GT(result.failed_probes, 0u);  // outage model + scripted event
  EXPECT_GT(result.integrity_failures, 0u);  // private-algorithm phase

  bool broot_availability = false;
  bool zonemd_integrity = false;
  for (const obs::Incident& incident : result.incidents) {
    if (incident.root == 1 &&
        incident.metric == obs::SloMetric::Availability &&
        incident.cause == "b.root-renumbering") {
      broot_availability = true;
      EXPECT_FALSE(incident.open()) << "renumbering window ended; must heal";
      // Opened within the paper's event neighbourhood (hysteresis can pull
      // the open back to the first breached window before the event peak).
      EXPECT_GE(incident.opened, util::make_time(2023, 11, 20));
      EXPECT_LE(incident.opened, util::make_time(2023, 11, 28));
      EXPECT_LT(incident.worst_value, 0.99);
    }
    if (incident.metric == obs::SloMetric::Integrity &&
        incident.cause == "zonemd-private-algorithm") {
      zonemd_integrity = true;
      EXPECT_FALSE(incident.open()) << "sha384 switch must close it";
    }
  }
  EXPECT_TRUE(broot_availability)
      << "b.root renumbering not detected/attributed:\n"
      << result.incidents_jsonl;
  EXPECT_TRUE(zonemd_integrity)
      << "ZONEMD rollout not detected/attributed:\n"
      << result.incidents_jsonl;
}

TEST(FaultPlan, MatchesTable2Structure) {
  auto plan = scenario::paper_campaign_config().fault_plan;
  size_t clock_events = 0, bitflips = 0, stale = 0;
  for (const auto& event : plan) {
    switch (event.kind) {
      case FaultEvent::Kind::ClockSkew: ++clock_events; break;
      case FaultEvent::Kind::Bitflip: ++bitflips; break;
      case FaultEvent::Kind::StaleServer: ++stale; break;
    }
  }
  EXPECT_EQ(clock_events, 6u);  // paper: six time-related validation errors
  EXPECT_EQ(bitflips, 8u);      // paper: eight transfers with bitflips
  EXPECT_EQ(stale, 12u + 40u);  // Tokyo 12 + Leeds 40 observations
  // The bitflips affect five distinct servers: d, g, b(old), c, g(v4).
  std::set<std::pair<int, bool>> flip_targets;
  for (const auto& event : plan)
    if (event.kind == FaultEvent::Kind::Bitflip)
      flip_targets.insert({event.root_index, event.family == util::IpFamily::V4});
  EXPECT_EQ(flip_targets.size(), 5u);
}

}  // namespace
}  // namespace rootsim::measure
