#include "dns/zone.h"

#include <gtest/gtest.h>

namespace rootsim::dns {
namespace {

Zone make_mini_root() {
  Zone zone(Name{});
  SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 2023100800;
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  zone.add({Name(), RRType::SOA, RRClass::IN, 86400, soa});
  for (char c = 'a'; c <= 'm'; ++c)
    zone.add({Name(), RRType::NS, RRClass::IN, 518400,
              NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")}});
  zone.add({*Name::parse("com."), RRType::NS, RRClass::IN, 172800,
            NsData{*Name::parse("a.gtld-servers.net.")}});
  zone.add({*Name::parse("org."), RRType::NS, RRClass::IN, 172800,
            NsData{*Name::parse("a0.org.afilias-nst.info.")}});
  zone.add({*Name::parse("a.gtld-servers.net."), RRType::A, RRClass::IN, 172800,
            AData{*util::IpAddress::parse("192.5.6.30")}});
  return zone;
}

TEST(Zone, AddMergesRrsetsAndDropsDuplicates) {
  Zone zone = make_mini_root();
  const RRset* ns = zone.find(Name(), RRType::NS);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->rdatas.size(), 13u);
  // Re-adding an identical record is a no-op.
  zone.add({Name(), RRType::NS, RRClass::IN, 518400,
            NsData{*Name::parse("a.root-servers.net.")}});
  EXPECT_EQ(zone.find(Name(), RRType::NS)->rdatas.size(), 13u);
}

TEST(Zone, SoaAndSerial) {
  Zone zone = make_mini_root();
  auto soa = zone.soa();
  ASSERT_TRUE(soa.has_value());
  EXPECT_EQ(soa->serial, 2023100800u);
  EXPECT_EQ(zone.serial(), 2023100800u);
  EXPECT_FALSE(Zone(Name()).soa().has_value());
  EXPECT_EQ(Zone(Name()).serial(), 0u);
}

TEST(Zone, FindAndRemove) {
  Zone zone = make_mini_root();
  EXPECT_NE(zone.find(*Name::parse("com."), RRType::NS), nullptr);
  EXPECT_EQ(zone.find(*Name::parse("com."), RRType::A), nullptr);
  EXPECT_TRUE(zone.remove_rrset(*Name::parse("com."), RRType::NS));
  EXPECT_FALSE(zone.remove_rrset(*Name::parse("com."), RRType::NS));
  EXPECT_EQ(zone.find(*Name::parse("com."), RRType::NS), nullptr);
}

TEST(Zone, CanonicalIterationOrder) {
  Zone zone = make_mini_root();
  auto sets = zone.rrsets();
  // Root apex sorts first; com. before org. before the glue under net.
  ASSERT_GE(sets.size(), 4u);
  EXPECT_TRUE(sets[0]->name.is_root());
  for (size_t i = 0; i + 1 < sets.size(); ++i)
    EXPECT_LE(sets[i]->name.canonical_compare(sets[i + 1]->name), 0);
}

TEST(Zone, CountsAndNames) {
  Zone zone = make_mini_root();
  EXPECT_EQ(zone.record_count(), 1 + 13 + 1 + 1 + 1u);
  EXPECT_TRUE(zone.contains_name(*Name::parse("org.")));
  EXPECT_FALSE(zone.contains_name(*Name::parse("xyz.")));
  auto names = zone.authoritative_names();
  ASSERT_EQ(names.size(), 4u);  // ., com., a.gtld-servers.net., org.
  EXPECT_TRUE(names[0].is_root());
}

TEST(Zone, AxfrFraming) {
  Zone zone = make_mini_root();
  auto records = zone.axfr_records();
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records.front().type, RRType::SOA);
  EXPECT_EQ(records.back().type, RRType::SOA);
  EXPECT_EQ(records.front(), records.back());
  EXPECT_EQ(records.size(), zone.record_count() + 1);
  // Round trip through AXFR framing.
  auto rebuilt = Zone::from_axfr(records, Name());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, zone);
}

TEST(Zone, FromAxfrRejectsBrokenFraming) {
  Zone zone = make_mini_root();
  auto records = zone.axfr_records();
  // Missing trailing SOA.
  auto truncated = records;
  truncated.pop_back();
  EXPECT_FALSE(Zone::from_axfr(truncated, Name()).has_value());
  // Mismatched SOA serial at the end.
  auto mismatched = records;
  std::get<SoaData>(mismatched.back().rdata).serial += 1;
  EXPECT_FALSE(Zone::from_axfr(mismatched, Name()).has_value());
  EXPECT_FALSE(Zone::from_axfr({}, Name()).has_value());
}

TEST(Zone, MasterFileRoundTrip) {
  Zone zone = make_mini_root();
  std::string text = zone.to_master_file();
  std::string error;
  auto parsed = Zone::parse_master_file(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, zone);
}

TEST(Zone, ParseMasterFileRelativeNamesAndDirectives) {
  std::string text =
      "$ORIGIN example.\n"
      "$TTL 3600\n"
      "@ IN SOA ns1 hostmaster 42 1800 900 604800 86400\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.1\n"
      "www 300 IN CNAME ns1\n";
  std::string error;
  auto zone = Zone::parse_master_file(text, &error);
  ASSERT_TRUE(zone.has_value()) << error;
  EXPECT_EQ(zone->origin(), *Name::parse("example."));
  EXPECT_EQ(zone->serial(), 42u);
  const RRset* a = zone->find(*Name::parse("ns1.example."), RRType::A);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ttl, 3600u);  // $TTL default applied
  const RRset* cname = zone->find(*Name::parse("www.example."), RRType::CNAME);
  ASSERT_NE(cname, nullptr);
  EXPECT_EQ(cname->ttl, 300u);  // explicit TTL wins
  EXPECT_EQ(std::get<CnameData>(cname->rdatas[0]).target,
            *Name::parse("ns1.example."));
}

TEST(Zone, ParseMasterFileCommentsAndBlankLines) {
  std::string text =
      "; a zone file\n"
      "\n"
      ". IN SOA a. b. 1 2 3 4 5 ; inline comment\n"
      ". IN TXT \"hello world\" \"second ; not a comment\"\n";
  auto zone = Zone::parse_master_file(text);
  ASSERT_TRUE(zone.has_value());
  const RRset* txt = zone->find(Name(), RRType::TXT);
  ASSERT_NE(txt, nullptr);
  const auto& strings = std::get<TxtData>(txt->rdatas[0]).strings;
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "hello world");
  EXPECT_EQ(strings[1], "second ; not a comment");
}

TEST(Zone, ParseMasterFileErrors) {
  std::string error;
  EXPECT_FALSE(Zone::parse_master_file("nonsense", &error).has_value());
  EXPECT_FALSE(Zone::parse_master_file(". IN A 999.1.1.1\n. IN SOA a. b. 1 2 3 4 5",
                                       &error)
                   .has_value());
  EXPECT_FALSE(Zone::parse_master_file(". IN NS\n", &error).has_value());
  // No SOA at all.
  EXPECT_FALSE(Zone::parse_master_file(". IN NS a.example.\n", &error).has_value());
  EXPECT_EQ(error, "zone has no SOA");
}

}  // namespace
}  // namespace rootsim::dns
