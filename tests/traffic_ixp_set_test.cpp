#include "traffic/ixp_set.h"

#include <gtest/gtest.h>

#include "analysis/traffic_report.h"
#include "util/stats.h"

namespace rootsim::traffic {
namespace {

using util::make_time;

const util::UnixTime kChange = make_time(2023, 11, 27);

IxpSetConfig small_config() {
  IxpSetConfig config;
  config.clients_per_peer = 8;  // keep tests fast
  return config;
}

TEST(IxpSet, FourteenIxpsAsInThePaper) {
  auto ixps = build_ixp_set(kChange, small_config());
  EXPECT_EQ(ixps.size(), 14u);
  size_t eu = 0, na = 0;
  std::set<std::string> names;
  for (const auto& ixp : ixps) {
    if (ixp.region == util::Region::Europe) ++eu;
    if (ixp.region == util::Region::NorthAmerica) ++na;
    EXPECT_TRUE(names.insert(ixp.name).second);
    ASSERT_NE(ixp.collector, nullptr);
  }
  EXPECT_EQ(eu, 9u);
  EXPECT_EQ(na, 5u);
}

TEST(IxpSet, SizesAreHeavyTailed) {
  auto ixps = build_ixp_set(kChange, small_config());
  size_t largest = 0, smallest = SIZE_MAX;
  for (const auto& ixp : ixps) {
    largest = std::max(largest, ixp.peer_count);
    smallest = std::min(smallest, ixp.peer_count);
  }
  EXPECT_GT(largest, smallest * 4);
}

TEST(IxpSet, PerIxpEagernessVariesAroundRegionalMean) {
  auto ixps = build_ixp_set(kChange, small_config());
  std::vector<double> eu_shifts, na_shifts;
  for (const auto& ixp : ixps) {
    auto days = ixp.collector->collect(make_time(2023, 12, 10),
                                       make_time(2023, 12, 22));
    double shift = analysis::shift_ratio(days).v6;
    (ixp.region == util::Region::Europe ? eu_shifts : na_shifts).push_back(shift);
  }
  // Per-IXP spread exists...
  auto spread = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) -
           *std::min_element(v.begin(), v.end());
  };
  EXPECT_GT(spread(eu_shifts), 0.03);
  // ...and the regional means stay well separated (the paper reports only
  // the regional aggregates; individual IXPs may straggle).
  EXPECT_GT(util::mean(eu_shifts), util::mean(na_shifts) + 0.2);
}

TEST(IxpSet, AggregationMatchesPaperRegionalNumbers) {
  IxpSetConfig config;
  config.clients_per_peer = 20;
  auto ixps = build_ixp_set(kChange, config);
  auto eu_days = aggregate_ixps(ixps, util::Region::Europe,
                                make_time(2023, 12, 8), make_time(2023, 12, 28));
  auto na_days = aggregate_ixps(ixps, util::Region::NorthAmerica,
                                make_time(2023, 12, 8), make_time(2023, 12, 28));
  double eu_shift = analysis::shift_ratio(eu_days).v6;
  double na_shift = analysis::shift_ratio(na_days).v6;
  EXPECT_NEAR(eu_shift, 0.608, 0.15);
  EXPECT_NEAR(na_shift, 0.165, 0.12);
}

TEST(IxpSet, AggregateSumsFlows) {
  auto ixps = build_ixp_set(kChange, small_config());
  auto all_eu = aggregate_ixps(ixps, util::Region::Europe,
                               make_time(2023, 11, 1), make_time(2023, 11, 3));
  ASSERT_EQ(all_eu.size(), 2u);
  double aggregate_total = all_eu[0].total_flows();
  double sum_of_parts = 0;
  for (const auto& ixp : ixps) {
    if (ixp.region != util::Region::Europe) continue;
    sum_of_parts += ixp.collector
                        ->collect(make_time(2023, 11, 1), make_time(2023, 11, 2))
                        .at(0)
                        .total_flows();
  }
  EXPECT_NEAR(aggregate_total, sum_of_parts, 1e-6);
}

}  // namespace
}  // namespace rootsim::traffic
