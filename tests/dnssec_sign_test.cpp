#include <gtest/gtest.h>

#include "dnssec/canonical.h"
#include "dnssec/signer.h"
#include "dnssec/validator.h"
#include "util/timeutil.h"

namespace rootsim::dnssec {
namespace {

using dns::Name;
using dns::RRType;
using util::make_time;

dns::Zone make_unsigned_root() {
  dns::Zone zone{Name{}};
  dns::SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 2023120600;
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  zone.add({Name(), RRType::SOA, dns::RRClass::IN, 86400, soa});
  for (char c = 'a'; c <= 'm'; ++c)
    zone.add({Name(), RRType::NS, dns::RRClass::IN, 518400,
              dns::NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")}});
  // A few delegations with DS and glue.
  for (const char* tld : {"com", "net", "org", "de", "jp", "br"}) {
    Name owner = *Name::parse(std::string(tld) + ".");
    zone.add({owner, RRType::NS, dns::RRClass::IN, 172800,
              dns::NsData{*Name::parse("ns1." + std::string(tld) + ".")}});
    zone.add({owner, RRType::DS, dns::RRClass::IN, 86400,
              dns::DsData{1234, 8, 2, std::vector<uint8_t>(32, 0x11)}});
    zone.add({*Name::parse("ns1." + std::string(tld) + "."), RRType::A,
              dns::RRClass::IN, 172800,
              dns::AData{util::IpAddress::v4(192, 0, 2, static_cast<uint8_t>(tld[0]))}});
  }
  return zone;
}

struct SignedFixture {
  dns::Zone zone;
  SigningKey ksk;
  SigningKey zsk;
  SigningPolicy policy;
};

SignedFixture make_signed_root(
    SigningPolicy::ZonemdMode mode = SigningPolicy::ZonemdMode::Sha384) {
  SignedFixture f{make_unsigned_root(), {}, {}, {}};
  util::Rng rng(42);
  f.ksk = make_ksk(rng, 512);  // small keys keep the test fast
  f.zsk = make_zsk(rng, 512);
  f.policy.inception = make_time(2023, 12, 1);
  f.policy.expiration = make_time(2023, 12, 15);
  f.policy.zonemd = mode;
  sign_zone(f.zone, f.ksk, f.zsk, f.policy);
  return f;
}

TEST(Canonical, RdataSortingIsByteOrder) {
  std::vector<dns::Rdata> rdatas = {
      dns::AData{util::IpAddress::v4(10, 0, 0, 2)},
      dns::AData{util::IpAddress::v4(10, 0, 0, 1)},
      dns::AData{util::IpAddress::v4(9, 255, 255, 255)},
  };
  auto sorted = sort_rdatas_canonically(rdatas);
  EXPECT_EQ(std::get<dns::AData>(sorted[0]).address.to_string(), "9.255.255.255");
  EXPECT_EQ(std::get<dns::AData>(sorted[1]).address.to_string(), "10.0.0.1");
  EXPECT_EQ(std::get<dns::AData>(sorted[2]).address.to_string(), "10.0.0.2");
}

TEST(Canonical, LowercasesEmbeddedNames) {
  auto bytes = canonical_rdata(dns::NsData{*Name::parse("A.ROOT-SERVERS.NET.")});
  // First label: length 1, 'a' (lowercased).
  ASSERT_GE(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 'a');
}

TEST(Signer, ZoneGainsDnssecRecords) {
  auto f = make_signed_root();
  EXPECT_NE(f.zone.find(Name(), RRType::DNSKEY), nullptr);
  EXPECT_NE(f.zone.find(Name(), RRType::NSEC), nullptr);
  EXPECT_NE(f.zone.find(Name(), RRType::ZONEMD), nullptr);
  EXPECT_NE(f.zone.find(Name(), RRType::RRSIG), nullptr);
  // DS under a delegation is signed; delegation NS is not.
  EXPECT_NE(f.zone.find(*Name::parse("com."), RRType::RRSIG), nullptr);
  const dns::RRset* com_sigs = f.zone.find(*Name::parse("com."), RRType::RRSIG);
  bool covers_ns = false, covers_ds = false;
  for (const auto& rdata : com_sigs->rdatas) {
    auto sig = std::get<dns::RrsigData>(rdata);
    covers_ns |= sig.type_covered == RRType::NS;
    covers_ds |= sig.type_covered == RRType::DS;
  }
  EXPECT_FALSE(covers_ns) << "delegation NS must not be signed";
  EXPECT_TRUE(covers_ds);
}

TEST(Signer, NsecChainIsClosedCycle) {
  auto f = make_signed_root();
  auto names = f.zone.authoritative_names();
  // Follow the chain from the apex; it must visit every name once and return.
  Name cursor;
  size_t steps = 0;
  do {
    const dns::RRset* nsec = f.zone.find(cursor, RRType::NSEC);
    ASSERT_NE(nsec, nullptr) << "missing NSEC at " << cursor.to_string();
    cursor = std::get<dns::NsecData>(nsec->rdatas[0]).next;
    ++steps;
    ASSERT_LE(steps, names.size());
  } while (!cursor.is_root());
  EXPECT_EQ(steps, names.size());
}

TEST(Signer, ZonemdDigestVerifies) {
  auto f = make_signed_root();
  const dns::RRset* zonemd_set = f.zone.find(Name(), RRType::ZONEMD);
  ASSERT_NE(zonemd_set, nullptr);
  const auto& zonemd = std::get<dns::ZonemdData>(zonemd_set->rdatas[0]);
  EXPECT_EQ(zonemd.serial, f.zone.serial());
  EXPECT_EQ(zonemd.hash_algorithm, dns::ZonemdData::kHashSha384);
  EXPECT_EQ(zonemd.digest.size(), 48u);
  auto recomputed = compute_zonemd_digest(f.zone, dns::ZonemdData::kHashSha384);
  EXPECT_EQ(recomputed, zonemd.digest);
}

TEST(Signer, PrivateAlgorithmStageIsNotVerifiable) {
  auto f = make_signed_root(SigningPolicy::ZonemdMode::PrivateAlgorithm);
  const dns::RRset* zonemd_set = f.zone.find(Name(), RRType::ZONEMD);
  ASSERT_NE(zonemd_set, nullptr);
  const auto& zonemd = std::get<dns::ZonemdData>(zonemd_set->rdatas[0]);
  EXPECT_GE(zonemd.hash_algorithm, 240);  // private-use range
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_EQ(result.zonemd, ZonemdStatus::UnsupportedScheme);
  EXPECT_TRUE(result.fully_valid());  // unsupported is not a failure
}

TEST(Signer, NoZonemdStage) {
  auto f = make_signed_root(SigningPolicy::ZonemdMode::None);
  EXPECT_EQ(f.zone.find(Name(), RRType::ZONEMD), nullptr);
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_EQ(result.zonemd, ZonemdStatus::NoZonemd);
  EXPECT_TRUE(result.fully_valid());
}

TEST(Validator, FullyValidZone) {
  auto f = make_signed_root();
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  ASSERT_EQ(anchors.keys.size(), 2u);  // KSK + ZSK
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_TRUE(result.fully_valid());
  EXPECT_EQ(result.zonemd, ZonemdStatus::Verified);
  EXPECT_TRUE(result.signature_failures.empty());
  EXPECT_GT(result.rrsets_checked, 5u);
  EXPECT_EQ(result.dominant_failure(), ValidationStatus::Valid);
}

TEST(Validator, ClockSkewBeforeInception) {
  // A VP whose clock is wrong (paper: six cases over two VPs) validates a
  // fresh zone "before" the signatures were incepted.
  auto f = make_signed_root();
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 11, 20));
  EXPECT_FALSE(result.fully_valid());
  EXPECT_EQ(result.dominant_failure(), ValidationStatus::SignatureNotIncepted);
}

TEST(Validator, StaleZoneSignatureExpired) {
  // A stale zone file served weeks later (paper: two d.root sites).
  auto f = make_signed_root();
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2024, 1, 15));
  EXPECT_FALSE(result.fully_valid());
  EXPECT_EQ(result.dominant_failure(), ValidationStatus::SignatureExpired);
}

TEST(Validator, BitflipIsBogusAndZonemdMismatch) {
  auto f = make_signed_root();
  // Flip one bit in one RRSIG signature (the paper's Fig. 10 scenario).
  const dns::RRset* sigs = f.zone.find(Name(), RRType::RRSIG);
  ASSERT_NE(sigs, nullptr);
  auto rdatas = sigs->rdatas;
  auto& sig = std::get<dns::RrsigData>(rdatas[0]);
  sig.signature[10] ^= 0x20;
  f.zone.remove_rrset(Name(), RRType::RRSIG);
  for (const auto& rdata : rdatas)
    f.zone.add({Name(), RRType::RRSIG, dns::RRClass::IN, 86400, rdata});
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_EQ(result.dominant_failure(), ValidationStatus::BogusSignature);
  // ZONEMD covers RRSIGs, so the digest no longer matches either.
  EXPECT_EQ(result.zonemd, ZonemdStatus::Mismatch);
}

TEST(Validator, BitflipInUnsignedGlueCaughtOnlyByZonemd) {
  // The key argument of the paper's §7: glue is not covered by DNSSEC, so a
  // corrupted glue A record produces NO signature failure — only ZONEMD
  // notices.
  auto f = make_signed_root();
  Name glue = *Name::parse("ns1.com.");
  const dns::RRset* a_set = f.zone.find(glue, RRType::A);
  ASSERT_NE(a_set, nullptr);
  auto addr = std::get<dns::AData>(a_set->rdatas[0]).address;
  f.zone.remove_rrset(glue, RRType::A);
  auto bytes = addr.bytes();
  f.zone.add({glue, RRType::A, dns::RRClass::IN, 172800,
              dns::AData{util::IpAddress::v4(bytes[0], bytes[1], bytes[2],
                                             static_cast<uint8_t>(bytes[3] ^ 0x01))}});
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_TRUE(result.signature_failures.empty())
      << "glue is unsigned; DNSSEC alone cannot catch this";
  EXPECT_EQ(result.zonemd, ZonemdStatus::Mismatch)
      << "ZONEMD must catch glue corruption";
}

TEST(Validator, ZonemdSerialMismatchDetected) {
  auto f = make_signed_root();
  const dns::RRset* zonemd_set = f.zone.find(Name(), RRType::ZONEMD);
  auto zonemd = std::get<dns::ZonemdData>(zonemd_set->rdatas[0]);
  zonemd.serial -= 1;
  f.zone.remove_rrset(Name(), RRType::ZONEMD);
  f.zone.add({Name(), RRType::ZONEMD, dns::RRClass::IN, 86400, zonemd});
  auto anchors = TrustAnchors::from_zone_apex(f.zone);
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_EQ(result.zonemd, ZonemdStatus::SerialMismatch);
}

TEST(Validator, UnknownKeyTag) {
  auto f = make_signed_root();
  // Validate against anchors from a different key set.
  util::Rng rng(777);
  SigningKey other_ksk = make_ksk(rng, 512);
  SigningKey other_zsk = make_zsk(rng, 512);
  TrustAnchors anchors;
  anchors.keys = {other_ksk.to_dnskey(), other_zsk.to_dnskey()};
  auto result = validate_zone(f.zone, anchors, make_time(2023, 12, 7));
  EXPECT_EQ(result.dominant_failure(), ValidationStatus::UnknownKey);
}

TEST(Validator, RoundTripThroughAxfrAndMasterFile) {
  // Sign, serialize through both transports the paper uses (AXFR and zone
  // file download), re-validate — everything must still verify.
  auto f = make_signed_root();
  auto anchors = TrustAnchors::from_zone_apex(f.zone);

  auto via_axfr = dns::Zone::from_axfr(f.zone.axfr_records(), Name());
  ASSERT_TRUE(via_axfr.has_value());
  EXPECT_TRUE(validate_zone(*via_axfr, anchors, make_time(2023, 12, 7)).fully_valid());
  EXPECT_EQ(validate_zone(*via_axfr, anchors, make_time(2023, 12, 7)).zonemd,
            ZonemdStatus::Verified);

  std::string error;
  auto via_file = dns::Zone::parse_master_file(f.zone.to_master_file(), &error);
  ASSERT_TRUE(via_file.has_value()) << error;
  auto result = validate_zone(*via_file, anchors, make_time(2023, 12, 7));
  EXPECT_TRUE(result.fully_valid());
  EXPECT_EQ(result.zonemd, ZonemdStatus::Verified);
}

TEST(Validator, StatusStrings) {
  EXPECT_EQ(to_string(ValidationStatus::BogusSignature), "bogus-signature");
  EXPECT_EQ(to_string(ZonemdStatus::Verified), "zonemd-verified");
}

// ---------------------------------------------------------------------------
// Signature memo: warm signatures must be the exact bytes a cold sign
// produces, and anything that changes what a signature covers — the RRset,
// the serial, the key — must miss instead of serving stale bytes.

TEST(SignatureCache, WarmSignZoneIsByteIdenticalToColdSign) {
  util::Rng rng(42);
  SigningKey ksk = make_ksk(rng, 512);
  SigningKey zsk = make_zsk(rng, 512);
  SigningPolicy policy;
  policy.inception = make_time(2023, 12, 1);
  policy.expiration = make_time(2023, 12, 15);
  policy.zonemd = SigningPolicy::ZonemdMode::Sha384;

  dns::Zone cold = make_unsigned_root();
  sign_zone(cold, ksk, zsk, policy);

  SignatureCache cache;
  dns::Zone first = make_unsigned_root();
  sign_zone(first, ksk, zsk, policy, &cache);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), cache.misses());
  EXPECT_EQ(first.to_master_file(), cold.to_master_file());

  // Identical zone again: every signature must come out of the memo, and the
  // bytes must still be the cold-sign bytes (RSASSA-PKCS1 is deterministic,
  // so any divergence is a cache bug, not an RNG artifact).
  const uint64_t misses_after_cold = cache.misses();
  dns::Zone second = make_unsigned_root();
  sign_zone(second, ksk, zsk, policy, &cache);
  EXPECT_EQ(cache.misses(), misses_after_cold);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(second.to_master_file(), cold.to_master_file());

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SignatureCache, SerialBumpInvalidatesChangedRRsetsOnly) {
  util::Rng rng(42);
  SigningKey ksk = make_ksk(rng, 512);
  SigningKey zsk = make_zsk(rng, 512);
  SigningPolicy policy;
  policy.inception = make_time(2023, 12, 1);
  policy.expiration = make_time(2023, 12, 15);
  policy.zonemd = SigningPolicy::ZonemdMode::Sha384;

  SignatureCache cache;
  dns::Zone first = make_unsigned_root();
  sign_zone(first, ksk, zsk, policy, &cache);
  const uint64_t misses_first = cache.misses();
  const uint64_t hits_first = cache.hits();

  // Bump the serial: the SOA RRset (and the serial-bearing ZONEMD) now cover
  // different content, so their cached signatures are unusable by
  // construction — the payload *is* the cache key.
  auto bumped_unsigned = [] {
    dns::Zone zone = make_unsigned_root();
    dns::Zone bumped{Name{}};
    for (const dns::RRset* rrset : zone.rrsets())
      for (dns::ResourceRecord record : rrset->to_records()) {
        if (record.type == RRType::SOA)
          std::get<dns::SoaData>(record.rdata).serial += 1;
        bumped.add(record);
      }
    return bumped;
  };
  dns::Zone bumped = bumped_unsigned();
  sign_zone(bumped, ksk, zsk, policy, &cache);
  EXPECT_GT(cache.misses(), misses_first) << "serial bump must re-sign";
  EXPECT_GT(cache.hits(), hits_first) << "unchanged RRsets must still hit";

  // And the mixed hit/miss output is exactly what a cold signer produces.
  dns::Zone cold = bumped_unsigned();
  sign_zone(cold, ksk, zsk, policy);
  EXPECT_EQ(bumped.to_master_file(), cold.to_master_file());
}

TEST(SignatureCache, KeyRollNeverServesOldKeysBytes) {
  util::Rng rng(42);
  SigningKey ksk = make_ksk(rng, 512);
  SigningKey zsk = make_zsk(rng, 512);
  util::Rng roll_rng(43);
  SigningKey rolled_zsk = make_zsk(roll_rng, 512);
  ASSERT_NE(zsk.key_tag(), rolled_zsk.key_tag());
  SigningPolicy policy;
  policy.inception = make_time(2023, 12, 1);
  policy.expiration = make_time(2023, 12, 15);
  policy.zonemd = SigningPolicy::ZonemdMode::Sha384;

  SignatureCache cache;
  dns::Zone first = make_unsigned_root();
  sign_zone(first, ksk, zsk, policy, &cache);
  const uint64_t hits_before_roll = cache.hits();

  // Same zone content, new ZSK: every ZSK signature carries a new key
  // identity and the DNSKEY RRset itself changed, so nothing may hit.
  dns::Zone rolled = make_unsigned_root();
  sign_zone(rolled, ksk, rolled_zsk, policy, &cache);
  EXPECT_EQ(cache.hits(), hits_before_roll);

  dns::Zone cold = make_unsigned_root();
  sign_zone(cold, ksk, rolled_zsk, policy);
  EXPECT_EQ(rolled.to_master_file(), cold.to_master_file());

  // The rolled zone validates only against the rolled anchors.
  TrustAnchors rolled_anchors;
  rolled_anchors.keys = {ksk.to_dnskey(), rolled_zsk.to_dnskey()};
  EXPECT_TRUE(
      validate_zone(rolled, rolled_anchors, make_time(2023, 12, 7)).fully_valid());
  TrustAnchors old_anchors;
  old_anchors.keys = {ksk.to_dnskey(), zsk.to_dnskey()};
  EXPECT_FALSE(
      validate_zone(rolled, old_anchors, make_time(2023, 12, 7)).fully_valid());
}

TEST(SignatureCache, BoundedAndDirectSignMatchesContext) {
  util::Rng rng(7);
  SigningKey zsk = make_zsk(rng, 512);
  crypto::RsaSignContext ctx(zsk.rsa);
  const std::vector<uint8_t> key_id = {1, 2, 3};
  const std::vector<uint8_t> payload_a = {10, 20, 30};
  const std::vector<uint8_t> payload_b = {10, 20, 31};

  SignatureCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  auto direct = crypto::rsa_sign(zsk.rsa, crypto::RsaHash::Sha256, payload_a);
  ASSERT_FALSE(direct.empty());
  auto miss = cache.sign(ctx, key_id, crypto::RsaHash::Sha256, payload_a);
  EXPECT_EQ(miss, direct);
  auto hit = cache.sign(ctx, key_id, crypto::RsaHash::Sha256, payload_a);
  EXPECT_EQ(hit, direct);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Distinct payloads get distinct entries; a distinct key identity misses
  // even on an identical payload.
  cache.sign(ctx, key_id, crypto::RsaHash::Sha256, payload_b);
  const std::vector<uint8_t> other_key_id = {9, 9, 9};
  cache.sign(ctx, other_key_id, crypto::RsaHash::Sha256, payload_a);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_LE(cache.size(), cache.max_entries());
}

}  // namespace
}  // namespace rootsim::dnssec
