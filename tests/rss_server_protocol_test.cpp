// Protocol-depth behaviours of the server: UDP truncation + TCP retry
// (RFC 1035 §4.2.1 / RFC 6891) and NSEC negative proofs (RFC 4035 §3.1.3).
#include <gtest/gtest.h>

#include "measure/campaign.h"
#include "analysis/coverage.h"
#include "rss/server.h"

namespace rootsim::rss {
namespace {

using util::make_time;

struct Fixture {
  RootCatalog catalog;
  ZoneAuthorityConfig config;
  std::unique_ptr<ZoneAuthority> authority;
  std::unique_ptr<RootServerInstance> instance;

  Fixture() {
    config.tld_count = 80;
    // 1536-bit keys: the DNSKEY+RRSIG answer then clearly exceeds the
    // classic 512-octet UDP limit, like the real root's 2048-bit keys do.
    config.rsa_modulus_bits = 1536;
    authority = std::make_unique<ZoneAuthority>(catalog, config);
    instance = std::make_unique<RootServerInstance>(*authority, catalog, 10,
                                                    "eu01.k.root-servers.org");
  }
};

// Key generation at 1536 bits is slow enough to share across tests.
Fixture& shared_fixture() {
  static Fixture fixture;
  return fixture;
}

TEST(Truncation, SmallBufferGetsTcBit) {
  Fixture& f = shared_fixture();
  // DNSKEY + RRSIG with DO is large; a 512-byte (no-EDNS-style) client must
  // receive TC=1 and no answer records.
  dns::Message query =
      dns::make_query(1, dns::Name(), dns::RRType::DNSKEY, dns::RRClass::IN,
                      /*dnssec_ok=*/true);
  // Shrink the advertised buffer to classic 512.
  for (auto& rr : query.additional)
    if (auto* opt = std::get_if<dns::OptData>(&rr.rdata))
      opt->udp_payload_size = 512;
  dns::Message response = f.instance->handle_udp_query(query, make_time(2023, 10, 1));
  EXPECT_TRUE(response.tc);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_LE(response.encode().size(), 512u);
  // Question preserved so the client can match and retry.
  ASSERT_EQ(response.questions.size(), 1u);
  EXPECT_EQ(response.questions[0].qtype, dns::RRType::DNSKEY);
}

TEST(Truncation, LargeBufferAvoidsTruncation) {
  Fixture& f = shared_fixture();
  dns::Message query =
      dns::make_query(2, dns::Name(), dns::RRType::DNSKEY, dns::RRClass::IN,
                      /*dnssec_ok=*/true);
  dns::Message response =
      f.instance->handle_udp_query(query, make_time(2023, 10, 1));
  EXPECT_FALSE(response.tc);  // default EDNS buffer is 1232
  EXPECT_FALSE(response.answers.empty());
}

TEST(Truncation, TcpPathNeverTruncates) {
  Fixture& f = shared_fixture();
  dns::Message query =
      dns::make_query(3, dns::Name(), dns::RRType::DNSKEY, dns::RRClass::IN, true);
  dns::Message response = f.instance->handle_query(query, make_time(2023, 10, 1));
  EXPECT_FALSE(response.tc);
}

TEST(Truncation, ApplyUdpTruncationIsIdempotentOnSmall) {
  dns::Message tiny;
  tiny.qr = true;
  tiny.questions.push_back({dns::Name(), dns::RRType::SOA, dns::RRClass::IN});
  dns::Message result = apply_udp_truncation(tiny, 512);
  EXPECT_FALSE(result.tc);
  EXPECT_EQ(result.encode(), tiny.encode());
}

TEST(Truncation, AdvertisedPayloadComesFromTheQueryOpt) {
  // Built by hand: make_query auto-attaches the modern 1232 OPT for IN.
  auto bare_query = [](uint16_t id) {
    dns::Message query;
    query.id = id;
    query.questions.push_back({dns::Name(), dns::RRType::SOA, dns::RRClass::IN});
    return query;
  };
  EXPECT_EQ(advertised_udp_payload(bare_query(7)), 512u);  // RFC 6891 §6.2.3

  dns::Message with_edns = bare_query(8);
  with_edns.add_edns(4096, false);
  EXPECT_EQ(advertised_udp_payload(with_edns), 4096u);

  // Sub-512 advertisements are nonsense the RFC floors at 512.
  dns::Message tiny_buffer = bare_query(9);
  tiny_buffer.add_edns(128, false);
  EXPECT_EQ(advertised_udp_payload(tiny_buffer), 512u);

  // Only the first OPT counts (a second one is a FORMERR on the real wire).
  dns::Message two_opts = bare_query(10);
  two_opts.add_edns(1232, false);
  two_opts.add_edns(4096, false);
  EXPECT_EQ(advertised_udp_payload(two_opts), 1232u);

  // make_query's own EDNS attachment is what the prober rides on.
  EXPECT_EQ(advertised_udp_payload(
                dns::make_query(12, dns::Name(), dns::RRType::SOA)),
            1232u);
}

TEST(Truncation, QueryAwareTruncationRespectsAdvertisedBufferAndClamp) {
  Fixture& f = shared_fixture();
  dns::Message query =
      dns::make_query(11, dns::Name(), dns::RRType::DNSKEY, dns::RRClass::IN,
                      /*dnssec_ok=*/true);  // advertises the 1232 default
  dns::Message full = f.instance->handle_query(query, make_time(2023, 10, 1));
  ASSERT_FALSE(full.answers.empty());
  ASSERT_GT(full.encode().size(), 512u);

  // The advertised buffer is honoured when no clamp applies...
  dns::Message untouched = apply_udp_truncation(full, query);
  EXPECT_FALSE(untouched.tc);
  // ...a path MTU below it truncates...
  dns::Message clamped = apply_udp_truncation(full, query, 512);
  EXPECT_TRUE(clamped.tc);
  EXPECT_TRUE(clamped.answers.empty());
  EXPECT_LE(clamped.encode().size(), 512u);
  // ...a clamp above the advertised buffer changes nothing...
  dns::Message wide_clamp = apply_udp_truncation(full, query, 65535);
  EXPECT_FALSE(wide_clamp.tc);
  // ...and a sub-512 clamp is floored at the classic limit.
  dns::Message floor_clamp = apply_udp_truncation(full, query, 100);
  EXPECT_TRUE(floor_clamp.tc);
  EXPECT_LE(floor_clamp.encode().size(), 512u);
}

TEST(Truncation, ProberRetriesOverTcp) {
  measure::CampaignConfig config;
  config.zone.tld_count = 80;
  config.zone.rsa_modulus_bits = 1024;
  config.vp_scale = 0.05;
  measure::Campaign campaign(config);
  util::UnixTime now = make_time(2023, 10, 1, 12, 0);
  auto probe = campaign.prober().probe(campaign.vantage_points()[0],
                                       campaign.catalog().server(0).ipv4, now,
                                       campaign.schedule().round_at(now));
  // With DO set and a big signed zone, at least one of the 46 queries (e.g.
  // ". NS" with all RRSIGs, or AXFR-adjacent large sets) needs TCP... but
  // all must ultimately succeed.
  for (const auto& query : probe.queries) {
    EXPECT_FALSE(query.timed_out);
    EXPECT_EQ(query.rcode, dns::Rcode::NoError);
  }
}

TEST(NsecProof, NxdomainCarriesCoveringNsec) {
  Fixture& f = shared_fixture();
  util::UnixTime now = make_time(2023, 12, 10);
  dns::Message query = dns::make_query(
      4, *dns::Name::parse("nonexistent-tld-zz."), dns::RRType::A,
      dns::RRClass::IN, /*dnssec_ok=*/true);
  dns::Message response = f.instance->handle_query(query, now);
  EXPECT_EQ(response.rcode, dns::Rcode::NxDomain);
  const dns::NsecData* proof = nullptr;
  dns::Name proof_owner;
  for (const auto& rr : response.authority)
    if (const auto* nsec = std::get_if<dns::NsecData>(&rr.rdata)) {
      proof = nsec;
      proof_owner = rr.name;
    }
  ASSERT_NE(proof, nullptr) << "DO-bit NXDOMAIN must carry an NSEC proof";
  // The proof actually covers the queried name.
  dns::Name qname = *dns::Name::parse("nonexistent-tld-zz.");
  EXPECT_LT(proof_owner.canonical_compare(qname), 0);
  if (!proof->next.is_root())
    EXPECT_LT(qname.canonical_compare(proof->next), 0);
  // And it is signed.
  bool signed_proof = false;
  for (const auto& rr : response.authority)
    if (const auto* sig = std::get_if<dns::RrsigData>(&rr.rdata))
      if (sig->type_covered == dns::RRType::NSEC) signed_proof = true;
  EXPECT_TRUE(signed_proof);
}

TEST(NsecProof, NoProofWithoutDoBit) {
  Fixture& f = shared_fixture();
  dns::Message query = dns::make_query(
      5, *dns::Name::parse("nonexistent-tld-zz."), dns::RRType::A);
  dns::Message response = f.instance->handle_query(query, make_time(2023, 12, 10));
  for (const auto& rr : response.authority)
    EXPECT_NE(rr.type, dns::RRType::NSEC);
}

TEST(IdentityMapping, MatchesPaperStructure) {
  measure::CampaignConfig config;
  config.zone.tld_count = 25;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.25;
  measure::Campaign campaign(config);
  auto coverage = analysis::compute_coverage(campaign);
  auto mapping = analysis::compute_identity_mapping(campaign, coverage);
  EXPECT_EQ(mapping.mapped + mapping.unmapped, mapping.observed_identifiers);
  EXPECT_GT(mapping.mapped, mapping.unmapped * 5)
      << "the vast majority of identifiers map (paper: 1469/1604)";
  // j.root dominates the unmapped set (paper: 75 of 135).
  size_t j_unmapped = mapping.unmapped_per_root[9];
  EXPECT_GT(j_unmapped, 0u);
  EXPECT_GE(j_unmapped * 2, mapping.unmapped);
  // Metro ambiguity exists for the IATA-code roots.
  EXPECT_GT(mapping.metro_ambiguous, 0u);
}

}  // namespace
}  // namespace rootsim::rss
