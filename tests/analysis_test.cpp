#include <gtest/gtest.h>

#include "analysis/colocation.h"
#include "analysis/coverage.h"
#include "analysis/distance.h"
#include "analysis/rtt.h"
#include "analysis/stability.h"
#include "analysis/zonemd_report.h"
#include "scenario/apply.h"

namespace rootsim::analysis {
namespace {

// One shared scaled-down campaign for all analysis tests (built once).
// The paper timeline: these tests assert figures from the paper's campaign.
const measure::Campaign& test_campaign() {
  static const measure::Campaign* campaign = [] {
    measure::CampaignConfig config = scenario::paper_campaign_config();
    config.zone.tld_count = 25;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.25;
    return new measure::Campaign(config);
  }();
  return *campaign;
}

TEST(Colocation, HeadlineFractionInPaperBand) {
  auto report = compute_colocation(test_campaign());
  // Paper: ~70% of VPs observe co-location of >= 2 roots.
  EXPECT_GT(report.fraction_vps_with_colocation, 0.5);
  EXPECT_LT(report.fraction_vps_with_colocation, 0.95);
  EXPECT_GE(report.max_colocated_roots, 3);
}

TEST(Colocation, ReducedRedundancyBounded) {
  auto report = compute_colocation(test_campaign());
  for (const auto& row : report.per_vp) {
    EXPECT_GE(row.reduced_redundancy_v4, 0);
    EXPECT_LE(row.reduced_redundancy_v4, 12);
    EXPECT_GE(row.reduced_redundancy_v6, 0);
    EXPECT_LE(row.reduced_redundancy_v6, 12);
  }
}

TEST(Colocation, HistogramsCoverAllVps) {
  auto report = compute_colocation(test_campaign());
  uint64_t v4_total = 0;
  for (auto region : util::all_regions())
    v4_total += report.histogram_v4[static_cast<size_t>(region)].total();
  EXPECT_EQ(v4_total, report.per_vp.size());
}

TEST(Colocation, AblationMissedHopsLowerBound) {
  // Treating missed hops as unique (the paper's rule) must never *increase*
  // reduced redundancy relative to dropping them.
  ColocationOptions strict;
  strict.missed_hops_are_unique = true;
  ColocationOptions drop;
  drop.missed_hops_are_unique = false;
  auto strict_report = compute_colocation(test_campaign(), strict);
  auto drop_report = compute_colocation(test_campaign(), drop);
  ASSERT_EQ(strict_report.per_vp.size(), drop_report.per_vp.size());
  for (size_t i = 0; i < strict_report.per_vp.size(); ++i)
    EXPECT_LE(strict_report.per_vp[i].reduced_redundancy_v4,
              drop_report.per_vp[i].reduced_redundancy_v4 + 12);
  // And in aggregate the strict rule reports no more co-location.
  EXPECT_LE(strict_report.fraction_vps_with_colocation,
            drop_report.fraction_vps_with_colocation + 0.05);
}

TEST(Stability, BStableGChurny) {
  StabilityOptions options;
  options.round_stride = 8;  // keep test fast; counts are rescaled
  auto report = compute_stability(test_campaign(), options);
  const auto& b = report.per_root[1];
  const auto& g = report.per_root[6];
  EXPECT_LT(b.median_v4, 20);
  EXPECT_GT(g.median_v4, b.median_v4);
  EXPECT_GT(g.median_v6, g.median_v4);  // the paper's g.root v6 effect
}

TEST(Stability, CecdfMonotoneDecreasing) {
  StabilityOptions options;
  options.round_stride = 16;
  auto report = compute_stability(test_campaign(), options);
  auto points = report.cecdf(6, {0, 1, 10, 100, 1000});
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].fraction_v4, points[i - 1].fraction_v4 + 1e-12);
    EXPECT_LE(points[i].fraction_v6, points[i - 1].fraction_v6 + 1e-12);
  }
  // Most VPs see at least one change for g.root (subsampled at stride 16, so
  // low-churn VPs can be missed; the full-resolution bench shows ~95%).
  EXPECT_GT(points[0].fraction_v4, 0.45);
}

TEST(Distance, PaperFractionsForBroot) {
  auto report = compute_distance(test_campaign(), 1, util::IpFamily::V4);
  // Paper: 78.2% of b.root v4 requests optimal; 79.5% of clients < 1,000 km.
  EXPECT_NEAR(report.fraction_optimal(), 0.782, 0.12);
  EXPECT_NEAR(report.fraction_clients_below(1000), 0.795, 0.12);
}

TEST(Distance, InflationNonNegativeUnlessLocal) {
  auto report = compute_distance(test_campaign(), 5, util::IpFamily::V4);
  for (const auto& sample : report.samples) {
    if (!sample.via_local_site) {
      EXPECT_GE(sample.actual_km + 1e-9, 0);
    }
    EXPECT_GE(sample.closest_global_km, 0);
  }
  // Some requests land below the diagonal only via local sites.
  for (const auto& sample : report.samples)
    if (sample.actual_km < sample.closest_global_km - 1.0)
      EXPECT_TRUE(sample.via_local_site);
}

TEST(Distance, HeatmapRenders) {
  auto report = compute_distance(test_campaign(), 12, util::IpFamily::V6);
  std::string map = report.render_heatmap();
  EXPECT_NE(map.find("closest global site"), std::string::npos);
  EXPECT_GT(map.size(), 500u);
}

TEST(Rtt, RegionalEffectsFromPaper) {
  auto report = compute_rtt(test_campaign());
  // i.root North America: mean v6 < mean v4 (paper: 46.2 vs 62.6 ms).
  const RttCell& i_na = report.cell(util::Region::NorthAmerica, 9);
  EXPECT_LT(i_na.summary_v6.mean, i_na.summary_v4.mean);
  // i.root South America: v6 much worse than v4 (paper: 50.9 vs 23.8 ms).
  const RttCell& i_sa = report.cell(util::Region::SouthAmerica, 9);
  EXPECT_GT(i_sa.summary_v6.mean, i_sa.summary_v4.mean * 1.3);
  // l.root South America: v6 below v4 (paper: 39% lower).
  const RttCell& l_sa = report.cell(util::Region::SouthAmerica, 12);
  EXPECT_LT(l_sa.summary_v6.mean, l_sa.summary_v4.mean);
  // a.root South America: v4 above v6 (paper: 168.3 vs 140.0 ms).
  const RttCell& a_sa = report.cell(util::Region::SouthAmerica, 0);
  EXPECT_GT(a_sa.summary_v4.mean, a_sa.summary_v6.mean);
}

TEST(Rtt, EuropeFastForLargeDeployments) {
  auto report = compute_rtt(test_campaign());
  // f/k/l root medians in Europe are small (dense deployments).
  for (size_t column : {6u, 11u, 12u}) {
    const RttCell& cell = report.cell(util::Region::Europe, column);
    EXPECT_LT(cell.summary_v4.median, 60) << rtt_column_label(column);
  }
}

TEST(Rtt, ColumnsLabeled) {
  EXPECT_EQ(rtt_column_label(0), "a.root");
  EXPECT_EQ(rtt_column_label(1), "b.root (new)");
  EXPECT_EQ(rtt_column_label(2), "b.root (old)");
  EXPECT_EQ(rtt_column_label(3), "c.root");
  EXPECT_EQ(rtt_column_label(13), "m.root");
}

TEST(Rtt, RenderRegionProducesRows) {
  auto report = compute_rtt(test_campaign());
  std::string text = report.render_region(util::Region::Europe);
  EXPECT_NE(text.find("b.root (new)"), std::string::npos);
  EXPECT_NE(text.find("m.root"), std::string::npos);
}

TEST(Coverage, GlobalBetterThanLocal) {
  auto report = compute_coverage(test_campaign());
  int global_sites = 0, global_covered = 0, local_sites = 0, local_covered = 0;
  for (const auto& root : report.worldwide) {
    global_sites += root.global.sites;
    global_covered += root.global.covered;
    local_sites += root.local.sites;
    local_covered += root.local.covered;
  }
  double global_rate = static_cast<double>(global_covered) / global_sites;
  double local_rate = static_cast<double>(local_covered) / local_sites;
  EXPECT_GT(global_rate, local_rate) << "the paper's central coverage asymmetry";
  EXPECT_GT(global_rate, 0.6);
  EXPECT_LT(local_rate, 0.7);
}

TEST(Coverage, SmallDeploymentsFullyCovered) {
  auto report = compute_coverage(test_campaign());
  // b, c, g, h (6-12 global sites) are fully covered in the paper. At 25%
  // VP scale a single remote site can be missed; allow one.
  for (size_t root : {1u, 2u, 6u, 7u}) {
    EXPECT_GE(report.worldwide[root].global.covered,
              report.worldwide[root].global.sites - 1)
        << static_cast<char>('a' + root);
  }
}

TEST(Coverage, TotalsMatchTable1SiteCounts) {
  auto report = compute_coverage(test_campaign());
  EXPECT_EQ(report.worldwide[0].total().sites, 56);   // a
  EXPECT_EQ(report.worldwide[3].total().sites, 209);  // d
  EXPECT_EQ(report.worldwide[5].total().sites, 345);  // f
  EXPECT_EQ(report.worldwide[12].total().sites, 16);  // m
}

TEST(Coverage, MapRenders) {
  auto report = compute_coverage(test_campaign());
  std::string map = render_coverage_map(test_campaign(), report, 5);
  EXPECT_GT(map.size(), 100u);
  // f.root has both covered and (many) sites; expect at least one 'G'.
  EXPECT_NE(map.find('G'), std::string::npos);
}

TEST(ZonemdReport, Table2Buckets) {
  auto observations = test_campaign().run_zone_audit(50);
  auto report = summarize_zone_audit(observations);
  EXPECT_GT(report.rows.size(), 2u);
  bool has_not_incepted = false, has_expired = false, has_bogus = false;
  for (const auto& row : report.rows) {
    if (row.reason == "Sig. not incepted") has_not_incepted = true;
    if (row.reason == "Signature expired") has_expired = true;
    if (row.reason == "Bogus Signature") has_bogus = true;
    EXPECT_GT(row.observations, 0u);
    EXPECT_GE(row.last_observed, row.first_observed);
    EXPECT_FALSE(row.vp_ids.empty());
  }
  EXPECT_TRUE(has_not_incepted);
  EXPECT_TRUE(has_expired);
  EXPECT_TRUE(has_bogus);
  EXPECT_GT(report.clean_observations, 40u);
  EXPECT_GT(report.failing_observations, 20u);
}

TEST(ZonemdReport, BitflipExampleShowsDifferingRecords) {
  std::string example = render_bitflip_example(test_campaign());
  EXPECT_NE(example.find("as served (intact):"), std::string::npos);
  EXPECT_NE(example.find("as received (bitflipped):"), std::string::npos);
}

}  // namespace
}  // namespace rootsim::analysis
