#include "rss/distribution.h"

#include <gtest/gtest.h>

#include "dnssec/validator.h"

namespace rootsim::rss {
namespace {

using util::make_time;

struct Fixture {
  RootCatalog catalog;
  ZoneAuthorityConfig config;
  std::unique_ptr<ZoneAuthority> authority;

  Fixture() {
    config.tld_count = 30;
    config.rsa_modulus_bits = 512;
    // The paper's Fig. 2 phase instants, explicit because this fixture
    // asserts the literal dates (campaigns get them from the paper-2023
    // spec via scenario::apply).
    config.zonemd_private_start = make_time(2023, 9, 13);
    config.zonemd_sha384_start = make_time(2023, 12, 6, 20, 30);
    config.broot_change = make_time(2023, 11, 27);
    authority = std::make_unique<ZoneAuthority>(catalog, config);
  }

  dnssec::ZoneValidationResult validate_file(const PublishedZoneFile& file,
                                             util::UnixTime at) {
    std::string error;
    auto zone = dns::Zone::parse_master_file(file.master_file, &error);
    EXPECT_TRUE(zone.has_value()) << error;
    return dnssec::validate_zone(*zone, authority->trust_anchors(), at);
  }
};

TEST(Distribution, CzdsPublishesDaily) {
  Fixture f;
  DistributionChannel czds(*f.authority, DistributionSource::Czds);
  auto files = czds.fetch_window(make_time(2024, 1, 1), make_time(2024, 1, 8));
  EXPECT_EQ(files.size(), 7u);
  for (size_t i = 1; i < files.size(); ++i)
    EXPECT_GT(files[i].serial, files[i - 1].serial);
}

TEST(Distribution, IanaPublishesEvery15Minutes) {
  Fixture f;
  DistributionChannel iana(*f.authority, DistributionSource::IanaWebsite);
  auto a = iana.fetch(make_time(2023, 9, 21, 13, 30));
  auto b = iana.fetch(make_time(2023, 9, 21, 13, 44));
  auto c = iana.fetch(make_time(2023, 9, 21, 13, 45));
  EXPECT_EQ(a.published_at, b.published_at);
  EXPECT_EQ(c.published_at - a.published_at, 900);
}

TEST(Distribution, IanaTimelineMatchesPaper) {
  // Paper §7: first ZONEMD on 2023-09-21T13:30 (we model the zone-level
  // introduction at 09-13), zones validate from 2023-12-06T20:30 on.
  Fixture f;
  DistributionChannel iana(*f.authority, DistributionSource::IanaWebsite);
  // Before the roll-out: no ZONEMD, fully valid.
  {
    util::UnixTime t = make_time(2023, 8, 1, 12, 0);
    auto result = f.validate_file(iana.fetch(t), t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::NoZonemd);
  }
  // Private-algorithm phase: present, not verifiable.
  {
    util::UnixTime t = make_time(2023, 10, 15, 12, 0);
    auto result = f.validate_file(iana.fetch(t), t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::UnsupportedScheme);
  }
  // Verifiable phase: validates.
  {
    util::UnixTime t = make_time(2023, 12, 10, 12, 0);
    auto result = f.validate_file(iana.fetch(t), t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::Verified);
  }
}

TEST(Distribution, CzdsTransitionWindowDoesNotValidate) {
  // Paper §7: CZDS files from 2023-09-21 to 2023-12-07 show ZONEMD records
  // but do not validate; all later files validate. In our staging this is
  // the private-use hash algorithm phase (no consumer can verify it) plus
  // the channel's export lag.
  Fixture f;
  DistributionChannel czds(*f.authority, DistributionSource::Czds);
  {
    util::UnixTime t = make_time(2023, 10, 15, 12, 0);
    auto result = f.validate_file(czds.fetch(t), t);
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::UnsupportedScheme)
        << "transition-window CZDS files carry non-verifiable ZONEMD";
    EXPECT_TRUE(result.signature_failures.empty())
        << "DNSSEC itself stays valid throughout";
  }
  {
    util::UnixTime t = make_time(2023, 12, 20, 12, 0);
    auto result = f.validate_file(czds.fetch(t), t);
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::Verified);
  }
  {
    // Before the window: no ZONEMD at all.
    util::UnixTime t = make_time(2023, 9, 1, 12, 0);
    auto result = f.validate_file(czds.fetch(t), t);
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::NoZonemd);
  }
  {
    // The export-lag boundary: on 12-06 evening CZDS still serves the
    // morning export (pre-switch zone); on 12-07 it validates.
    util::UnixTime on_switch_day = make_time(2023, 12, 6, 23, 0);
    auto result = f.validate_file(czds.fetch(on_switch_day), on_switch_day);
    EXPECT_NE(result.zonemd, dnssec::ZonemdStatus::Verified);
    util::UnixTime next_day = make_time(2023, 12, 7, 12, 0);
    auto later = f.validate_file(czds.fetch(next_day), next_day);
    EXPECT_EQ(later.zonemd, dnssec::ZonemdStatus::Verified);
  }
}

TEST(Distribution, FetchBeforeDailyExportServesYesterday) {
  Fixture f;
  DistributionChannel czds(*f.authority, DistributionSource::Czds);
  auto early = czds.fetch(make_time(2024, 1, 5, 1, 0));   // before 03:00 export
  auto later = czds.fetch(make_time(2024, 1, 5, 12, 0));  // after export
  EXPECT_EQ(util::format_date(early.published_at), "2024-01-04");
  EXPECT_EQ(util::format_date(later.published_at), "2024-01-05");
  EXPECT_LT(early.serial, later.serial);
}

TEST(Distribution, MasterFilesRoundTripAndMatchAuthority) {
  Fixture f;
  DistributionChannel iana(*f.authority, DistributionSource::IanaWebsite);
  util::UnixTime t = make_time(2024, 1, 10, 9, 17);
  auto file = iana.fetch(t);
  auto zone = dns::Zone::parse_master_file(file.master_file);
  ASSERT_TRUE(zone.has_value());
  EXPECT_EQ(*zone, f.authority->zone_at(t));
  EXPECT_EQ(file.serial, f.authority->serial_at(t));
}

TEST(Distribution, SourceNames) {
  EXPECT_EQ(to_string(DistributionSource::Czds), "ICANN CZDS");
  EXPECT_EQ(to_string(DistributionSource::IanaWebsite), "IANA website");
}

}  // namespace
}  // namespace rootsim::rss
