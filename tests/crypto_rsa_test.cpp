#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "crypto/sha2.h"
#include "util/rng.h"

namespace rootsim::crypto {
namespace {

std::span<const uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(MillerRabin, KnownPrimesAndComposites) {
  util::Rng rng(1);
  EXPECT_TRUE(is_probable_prime(BigNum(2), rng));
  EXPECT_TRUE(is_probable_prime(BigNum(3), rng));
  EXPECT_TRUE(is_probable_prime(BigNum(65537), rng));
  EXPECT_TRUE(is_probable_prime(BigNum::from_hex("ffffffffffffffc5"), rng));
  EXPECT_FALSE(is_probable_prime(BigNum(1), rng));
  EXPECT_FALSE(is_probable_prime(BigNum(0), rng));
  EXPECT_FALSE(is_probable_prime(BigNum(4), rng));
  EXPECT_FALSE(is_probable_prime(BigNum(65536), rng));
  // Carmichael number 561 = 3*11*17 fools Fermat but not Miller–Rabin.
  EXPECT_FALSE(is_probable_prime(BigNum(561), rng));
  EXPECT_FALSE(is_probable_prime(BigNum(41041), rng));
}

class RsaKeySizes : public ::testing::TestWithParam<size_t> {};

TEST_P(RsaKeySizes, SignVerifyRoundTrip) {
  util::Rng rng(42);
  RsaPrivateKey key = generate_rsa_key(rng, GetParam());
  EXPECT_EQ(key.public_key.n.bit_length(), GetParam());
  std::string msg = "the root zone, serial 2023120600";
  auto sig = rsa_sign(key, RsaHash::Sha256, bytes_of(msg));
  EXPECT_EQ(sig.size(), key.public_key.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(msg), sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaKeySizes, ::testing::Values(512, 768, 1024));

TEST(Rsa, VerifyRejectsTamperedMessage) {
  util::Rng rng(7);
  RsaPrivateKey key = generate_rsa_key(rng, 512);
  std::string msg = "world. 86400 IN RRSIG NSEC 8 1 ...";
  auto sig = rsa_sign(key, RsaHash::Sha256, bytes_of(msg));
  std::string flipped = msg;
  flipped[3] ^= 0x20;  // single-bit flip, as in the paper's Fig. 10
  EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(flipped), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  util::Rng rng(8);
  RsaPrivateKey key = generate_rsa_key(rng, 512);
  std::string msg = "message";
  auto sig = rsa_sign(key, RsaHash::Sha256, bytes_of(msg));
  for (size_t i = 0; i < sig.size(); i += 13) {
    auto bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(msg), bad));
  }
}

TEST(Rsa, VerifyRejectsWrongKey) {
  util::Rng rng(9);
  RsaPrivateKey key1 = generate_rsa_key(rng, 512);
  RsaPrivateKey key2 = generate_rsa_key(rng, 512);
  std::string msg = "message";
  auto sig = rsa_sign(key1, RsaHash::Sha256, bytes_of(msg));
  EXPECT_FALSE(rsa_verify(key2.public_key, RsaHash::Sha256, bytes_of(msg), sig));
}

TEST(Rsa, VerifyRejectsWrongHashAlgorithm) {
  util::Rng rng(10);
  RsaPrivateKey key = generate_rsa_key(rng, 768);
  std::string msg = "message";
  auto sig = rsa_sign(key, RsaHash::Sha256, bytes_of(msg));
  EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha512, bytes_of(msg), sig));
}

TEST(Rsa, VerifyRejectsWrongLengthSignature) {
  util::Rng rng(11);
  RsaPrivateKey key = generate_rsa_key(rng, 512);
  std::string msg = "message";
  auto sig = rsa_sign(key, RsaHash::Sha256, bytes_of(msg));
  auto short_sig = sig;
  short_sig.pop_back();
  EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(msg), short_sig));
  auto long_sig = sig;
  long_sig.push_back(0);
  EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(msg), long_sig));
}

TEST(Rsa, Sha512SignatureScheme) {
  util::Rng rng(12);
  RsaPrivateKey key = generate_rsa_key(rng, 1024);
  std::string msg = "RSASHA512 is DNSSEC algorithm 10";
  auto sig = rsa_sign(key, RsaHash::Sha512, bytes_of(msg));
  EXPECT_TRUE(rsa_verify(key.public_key, RsaHash::Sha512, bytes_of(msg), sig));
  EXPECT_FALSE(rsa_verify(key.public_key, RsaHash::Sha256, bytes_of(msg), sig));
}

TEST(Rsa, DnskeyWireRoundTrip) {
  util::Rng rng(13);
  RsaPrivateKey key = generate_rsa_key(rng, 512);
  auto wire = key.public_key.to_dnskey_wire();
  RsaPublicKey parsed = RsaPublicKey::from_dnskey_wire(wire);
  EXPECT_EQ(parsed.n, key.public_key.n);
  EXPECT_EQ(parsed.e, key.public_key.e);
  // RFC 3110 layout: exponent length 3 (65537 = 0x010001).
  ASSERT_GE(wire.size(), 4u);
  EXPECT_EQ(wire[0], 3);
  EXPECT_EQ(wire[1], 0x01);
  EXPECT_EQ(wire[2], 0x00);
  EXPECT_EQ(wire[3], 0x01);
}

TEST(Rsa, DeterministicKeygen) {
  util::Rng rng1(42), rng2(42);
  RsaPrivateKey a = generate_rsa_key(rng1, 512);
  RsaPrivateKey b = generate_rsa_key(rng2, 512);
  EXPECT_EQ(a.public_key.n, b.public_key.n);
  EXPECT_EQ(a.d, b.d);
}

TEST(Rsa, SignatureDeterministicPkcs1) {
  // PKCS#1 v1.5 is deterministic: same key + message -> same signature.
  util::Rng rng(14);
  RsaPrivateKey key = generate_rsa_key(rng, 512);
  std::string msg = "deterministic";
  EXPECT_EQ(rsa_sign(key, RsaHash::Sha256, bytes_of(msg)),
            rsa_sign(key, RsaHash::Sha256, bytes_of(msg)));
}

}  // namespace
}  // namespace rootsim::crypto
