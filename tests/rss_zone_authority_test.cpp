#include "rss/zone_authority.h"

#include <gtest/gtest.h>

#include "dnssec/validator.h"

namespace rootsim::rss {
namespace {

using util::make_time;

ZoneAuthorityConfig fast_config() {
  ZoneAuthorityConfig config;
  config.tld_count = 30;
  config.rsa_modulus_bits = 512;
  // The paper's Fig. 2 phase instants, written out because this fixture
  // asserts the literal dates (campaigns get them from the paper-2023 spec).
  config.zonemd_private_start = make_time(2023, 9, 13);
  config.zonemd_sha384_start = make_time(2023, 12, 6, 20, 30);
  config.broot_change = make_time(2023, 11, 27);
  return config;
}

TEST(ZoneAuthority, SerialsFollowRootConvention) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  EXPECT_EQ(authority.serial_at(make_time(2023, 10, 8, 3, 0)), 2023100800u);
  EXPECT_EQ(authority.serial_at(make_time(2023, 10, 8, 13, 0)), 2023100801u);
  EXPECT_EQ(authority.serial_at(make_time(2023, 12, 6, 20, 30)), 2023120601u);
  // Serials are monotone over the campaign.
  uint32_t previous = 0;
  for (util::UnixTime t = make_time(2023, 7, 3); t < make_time(2023, 12, 24);
       t += 6 * 3600) {
    uint32_t serial = authority.serial_at(t);
    EXPECT_GE(serial, previous);
    previous = serial;
  }
}

TEST(ZoneAuthority, ZonemdTimelineMatchesFig2) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  using Mode = dnssec::SigningPolicy::ZonemdMode;
  EXPECT_EQ(authority.zonemd_mode_at(make_time(2023, 8, 1)), Mode::None);
  EXPECT_EQ(authority.zonemd_mode_at(make_time(2023, 9, 12)), Mode::None);
  EXPECT_EQ(authority.zonemd_mode_at(make_time(2023, 9, 14)),
            Mode::PrivateAlgorithm);
  EXPECT_EQ(authority.zonemd_mode_at(make_time(2023, 12, 6, 10, 0)),
            Mode::PrivateAlgorithm);
  EXPECT_EQ(authority.zonemd_mode_at(make_time(2023, 12, 7)), Mode::Sha384);
}

TEST(ZoneAuthority, ZoneStructure) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  const dns::Zone& zone = authority.zone_at(make_time(2023, 12, 10));
  // Apex: SOA, 13 NS, DNSKEY, NSEC, ZONEMD, RRSIGs.
  EXPECT_TRUE(zone.soa().has_value());
  const dns::RRset* ns = zone.find(dns::Name(), dns::RRType::NS);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->rdatas.size(), 13u);
  EXPECT_NE(zone.find(dns::Name(), dns::RRType::DNSKEY), nullptr);
  EXPECT_NE(zone.find(dns::Name(), dns::RRType::ZONEMD), nullptr);
  // Every root server name has A and AAAA glue.
  for (char c = 'a'; c <= 'm'; ++c) {
    dns::Name name = *dns::Name::parse(std::string(1, c) + ".root-servers.net.");
    EXPECT_NE(zone.find(name, dns::RRType::A), nullptr) << c;
    EXPECT_NE(zone.find(name, dns::RRType::AAAA), nullptr) << c;
  }
  // TLD delegations with DS records, including the .ruhr of Fig. 10.
  EXPECT_NE(zone.find(*dns::Name::parse("ruhr."), dns::RRType::NS), nullptr);
  EXPECT_NE(zone.find(*dns::Name::parse("ruhr."), dns::RRType::DS), nullptr);
  EXPECT_NE(zone.find(*dns::Name::parse("com."), dns::RRType::NS), nullptr);
}

TEST(ZoneAuthority, BRootAddressesSwitchOn1127) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  dns::Name b = *dns::Name::parse("b.root-servers.net.");
  const dns::Zone& before = authority.zone_at(make_time(2023, 11, 26));
  const dns::Zone& after = authority.zone_at(make_time(2023, 11, 28));
  auto a_of = [&](const dns::Zone& zone) {
    const dns::RRset* set = zone.find(b, dns::RRType::A);
    return std::get<dns::AData>(set->rdatas[0]).address.to_string();
  };
  auto aaaa_of = [&](const dns::Zone& zone) {
    const dns::RRset* set = zone.find(b, dns::RRType::AAAA);
    return std::get<dns::AaaaData>(set->rdatas[0]).address.to_string();
  };
  EXPECT_EQ(a_of(before), "199.9.14.201");
  EXPECT_EQ(aaaa_of(before), "2001:500:200::b");
  EXPECT_EQ(a_of(after), "170.247.170.2");
  EXPECT_EQ(aaaa_of(after), "2801:1b8:10::b");
}

TEST(ZoneAuthority, EveryStageValidatesAppropriately) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  dnssec::TrustAnchors anchors = authority.trust_anchors();
  // Pre-ZONEMD: DNSSEC valid, no ZONEMD.
  {
    util::UnixTime t = make_time(2023, 8, 1, 6, 0);
    auto result = dnssec::validate_zone(authority.zone_at(t), anchors, t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::NoZonemd);
  }
  // Private-algorithm stage: present but not verifiable (like CZDS files
  // between 2023-09-21 and 2023-12-07).
  {
    util::UnixTime t = make_time(2023, 10, 15, 6, 0);
    auto result = dnssec::validate_zone(authority.zone_at(t), anchors, t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::UnsupportedScheme);
  }
  // SHA-384 stage: fully verifiable.
  {
    util::UnixTime t = make_time(2023, 12, 10, 6, 0);
    auto result = dnssec::validate_zone(authority.zone_at(t), anchors, t);
    EXPECT_TRUE(result.fully_valid());
    EXPECT_EQ(result.zonemd, dnssec::ZonemdStatus::Verified);
  }
}

TEST(ZoneAuthority, ZoneCacheReturnsSameObject) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  const dns::Zone& a = authority.zone_at(make_time(2023, 9, 1, 1, 0));
  const dns::Zone& b = authority.zone_at(make_time(2023, 9, 1, 2, 0));
  EXPECT_EQ(&a, &b);  // same serial -> same cached zone
  const dns::Zone& c = authority.zone_at(make_time(2023, 9, 1, 13, 0));
  EXPECT_NE(&a, &c);  // second daily edit
}

TEST(ZoneAuthority, StableTldSetAcrossSerials) {
  RootCatalog catalog;
  ZoneAuthority authority(catalog, fast_config());
  const auto& tlds = authority.tlds();
  EXPECT_EQ(tlds.size(), 30u);
  EXPECT_TRUE(std::is_sorted(tlds.begin(), tlds.end()));
  const dns::Zone& early = authority.zone_at(make_time(2023, 7, 10));
  const dns::Zone& late = authority.zone_at(make_time(2023, 12, 20));
  for (const auto& tld : tlds) {
    dns::Name owner = *dns::Name::parse(tld + ".");
    EXPECT_NE(early.find(owner, dns::RRType::NS), nullptr);
    EXPECT_NE(late.find(owner, dns::RRType::NS), nullptr);
  }
}

}  // namespace
}  // namespace rootsim::rss
