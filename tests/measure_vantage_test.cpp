#include "measure/vantage.h"

#include <gtest/gtest.h>
#include <set>

#include "rss/catalog.h"
#include "util/stats.h"

namespace rootsim::measure {
namespace {

struct Fixture {
  rss::RootCatalog catalog;
  netsim::Topology topology;
  std::vector<VantagePoint> vps;

  Fixture() {
    netsim::TopologyConfig config;
    topology = netsim::build_topology(config, catalog.all_deployment_specs(),
                                      rss::paper_detour_rules());
    vps = generate_vantage_points(topology);
  }
};

TEST(Vantage, Table3QuotasReproducedExactly) {
  Fixture f;
  EXPECT_EQ(f.vps.size(), 675u);
  auto summary = summarize_regions(f.vps);
  for (const RegionQuota& quota : table3_quotas()) {
    const RegionSummary& s = summary[static_cast<size_t>(quota.region)];
    EXPECT_EQ(s.vantage_points, quota.vantage_points)
        << util::region_name(quota.region);
    EXPECT_EQ(s.unique_countries, quota.unique_countries)
        << util::region_name(quota.region);
    EXPECT_EQ(s.unique_networks, quota.unique_networks)
        << util::region_name(quota.region);
  }
}

TEST(Vantage, TotalNetworksAndCountries) {
  // Paper abstract: 675 VPs in 523 networks and 62 countries.
  Fixture f;
  std::set<uint32_t> networks, countries;
  for (const auto& vp : f.vps) {
    networks.insert(vp.view.asn);
    countries.insert(vp.country_code);
  }
  EXPECT_EQ(networks.size(), 9u + 31 + 386 + 94 + 12 + 22);  // 554 pools
  EXPECT_EQ(countries.size(), 4u + 19 + 29 + 3 + 3 + 4);     // 62 countries
}

TEST(Vantage, LocationsInsideRegionBoxes) {
  Fixture f;
  for (const auto& vp : f.vps) {
    const util::RegionBox& box = util::region_box(vp.view.region);
    // Facility-clustered VPs can scatter slightly outside the box.
    EXPECT_GE(vp.view.location.lat_deg, box.lat_min - 4);
    EXPECT_LE(vp.view.location.lat_deg, box.lat_max + 4);
  }
}

TEST(Vantage, ConnectivityFacilitiesAreRegional) {
  Fixture f;
  for (const auto& vp : f.vps) {
    EXPECT_GE(vp.view.connectivity.size(), 1u);
    EXPECT_LE(vp.view.connectivity.size(), 3u);
    for (auto facility_id : vp.view.connectivity)
      EXPECT_EQ(f.topology.facilities[facility_id].region, vp.view.region);
  }
}

TEST(Vantage, ChurnMultipliersHeavyTailed) {
  Fixture f;
  std::vector<double> multipliers;
  for (const auto& vp : f.vps) multipliers.push_back(vp.view.churn_multiplier);
  double median = util::percentile(multipliers, 0.5);
  double p99 = util::percentile(multipliers, 0.99);
  EXPECT_NEAR(median, 1.0, 0.4);  // lognormal median ~1
  EXPECT_GT(p99, 5.0);            // the Fig. 3 long tail exists
}

TEST(Vantage, CleanByDefault) {
  Fixture f;
  for (const auto& vp : f.vps) {
    EXPECT_EQ(vp.clock_offset_s, 0);
    EXPECT_EQ(vp.bitflip_probability, 0);
  }
}

TEST(Vantage, DeterministicGeneration) {
  Fixture a, b;
  ASSERT_EQ(a.vps.size(), b.vps.size());
  for (size_t i = 0; i < a.vps.size(); ++i) {
    EXPECT_EQ(a.vps[i].view.asn, b.vps[i].view.asn);
    EXPECT_DOUBLE_EQ(a.vps[i].view.location.lat_deg,
                     b.vps[i].view.location.lat_deg);
  }
}

TEST(Vantage, NodeNamesUnique) {
  Fixture f;
  std::set<std::string> names;
  for (const auto& vp : f.vps) EXPECT_TRUE(names.insert(vp.node_name).second);
}

TEST(Vantage, LocalClockAppliesOffset) {
  VantagePoint vp;
  vp.clock_offset_s = -259200;  // 3 days slow
  EXPECT_EQ(vp.local_clock(util::make_time(2023, 12, 21)),
            util::make_time(2023, 12, 18));
}

}  // namespace
}  // namespace rootsim::measure
