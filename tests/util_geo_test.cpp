#include "util/geo.h"

#include <gtest/gtest.h>

namespace rootsim::util {
namespace {

TEST(Geo, HaversineKnownDistances) {
  // Frankfurt <-> Ashburn (the paper's EU/NA IXP perspective) ~ 6,550 km.
  GeoPoint fra{50.11, 8.68};
  GeoPoint iad{39.04, -77.49};
  double d = haversine_km(fra, iad);
  EXPECT_NEAR(d, 6550, 150);
  // Symmetry and identity.
  EXPECT_DOUBLE_EQ(haversine_km(fra, iad), haversine_km(iad, fra));
  EXPECT_DOUBLE_EQ(haversine_km(fra, fra), 0.0);
}

TEST(Geo, HaversineAntipodal) {
  GeoPoint a{0, 0}, b{0, 180};
  EXPECT_NEAR(haversine_km(a, b), 6371 * 3.14159265, 1.0);
}

TEST(Geo, FiberRttRuleOfThumb) {
  // Paper §6: every 1,000 km induces ~10 ms of delay.
  EXPECT_DOUBLE_EQ(fiber_rtt_ms(1000), 10.0);
  EXPECT_DOUBLE_EQ(fiber_rtt_ms(0), 0.0);
  EXPECT_DOUBLE_EQ(fiber_rtt_ms(15000), 150.0);
}

TEST(Geo, SixRegions) {
  EXPECT_EQ(all_regions().size(), kRegionCount);
  EXPECT_EQ(region_name(Region::SouthAmerica), "South America");
  EXPECT_EQ(region_short_name(Region::Europe), "EU");
}

class RegionBoxes : public ::testing::TestWithParam<Region> {};

TEST_P(RegionBoxes, BoxIsWellFormedAndContainsCentroid) {
  Region r = GetParam();
  const RegionBox& box = region_box(r);
  EXPECT_EQ(box.region, r);
  EXPECT_LT(box.lat_min, box.lat_max);
  EXPECT_LT(box.lon_min, box.lon_max);
  GeoPoint c = region_centroid(r);
  EXPECT_GE(c.lat_deg, box.lat_min);
  EXPECT_LE(c.lat_deg, box.lat_max);
  EXPECT_GE(c.lon_deg, box.lon_min);
  EXPECT_LE(c.lon_deg, box.lon_max);
}

INSTANTIATE_TEST_SUITE_P(AllRegions, RegionBoxes,
                         ::testing::ValuesIn(all_regions()));

TEST(Geo, RegionsAreGeographicallyDistinct) {
  // Centroid pairwise distances should all be > 2,000 km: regions must not
  // overlap or the per-region RTT analysis would be meaningless.
  const auto& regions = all_regions();
  for (size_t i = 0; i < regions.size(); ++i)
    for (size_t j = i + 1; j < regions.size(); ++j)
      EXPECT_GT(haversine_km(region_centroid(regions[i]),
                             region_centroid(regions[j])),
                2000)
          << region_name(regions[i]) << " vs " << region_name(regions[j]);
}

}  // namespace
}  // namespace rootsim::util
