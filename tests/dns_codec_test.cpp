#include "dns/codec.h"

#include <gtest/gtest.h>

#include "crypto/encoding.h"

namespace rootsim::dns {
namespace {

ResourceRecord roundtrip(const ResourceRecord& rr) {
  WireWriter w;
  encode_record(w, rr);
  WireReader r(w.data());
  auto decoded = decode_record(r);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  return decoded.value_or(ResourceRecord{});
}

TEST(Codec, SoaRoundTrip) {
  ResourceRecord rr;
  rr.name = Name();
  rr.type = RRType::SOA;
  rr.ttl = 86400;
  SoaData soa;
  soa.mname = *Name::parse("a.root-servers.net.");
  soa.rname = *Name::parse("nstld.verisign-grs.com.");
  soa.serial = 2023120600;
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  rr.rdata = soa;
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, NsRoundTrip) {
  ResourceRecord rr;
  rr.name = Name();
  rr.type = RRType::NS;
  rr.ttl = 518400;
  rr.rdata = NsData{*Name::parse("m.root-servers.net.")};
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, ARoundTrip) {
  ResourceRecord rr;
  rr.name = *Name::parse("b.root-servers.net.");
  rr.type = RRType::A;
  rr.ttl = 518400;
  rr.rdata = AData{*util::IpAddress::parse("170.247.170.2")};  // new b.root
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, AaaaRoundTrip) {
  ResourceRecord rr;
  rr.name = *Name::parse("b.root-servers.net.");
  rr.type = RRType::AAAA;
  rr.ttl = 518400;
  rr.rdata = AaaaData{*util::IpAddress::parse("2801:1b8:10::b")};
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, TxtRoundTripMultiString) {
  ResourceRecord rr;
  rr.name = *Name::parse("hostname.bind.");
  rr.type = RRType::TXT;
  rr.rclass = RRClass::CH;
  rr.ttl = 0;
  rr.rdata = TxtData{{"fra3.b.root", "second string", ""}};
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, DsRoundTrip) {
  ResourceRecord rr;
  rr.name = *Name::parse("example.");
  rr.type = RRType::DS;
  rr.ttl = 86400;
  rr.rdata = DsData{20326, 8, 2, *crypto::from_hex("e06d44b80b8f1d39a95c0b0d7c65d084"
                                                   "58e880409bbc683457104237c7f8ec8d")};
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, DnskeyRoundTripAndKeyTag) {
  DnskeyData key;
  key.flags = 257;
  key.protocol = 3;
  key.algorithm = 8;
  key.public_key = {3, 1, 0, 1, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4};
  ResourceRecord rr;
  rr.name = Name();
  rr.type = RRType::DNSKEY;
  rr.ttl = 172800;
  rr.rdata = key;
  auto decoded = roundtrip(rr);
  EXPECT_EQ(decoded, rr);
  EXPECT_TRUE(key.is_ksk());
  // Key tag is a pure function of RDATA.
  auto* decoded_key = std::get_if<DnskeyData>(&decoded.rdata);
  ASSERT_NE(decoded_key, nullptr);
  EXPECT_EQ(decoded_key->key_tag(), key.key_tag());
  DnskeyData zsk = key;
  zsk.flags = 256;
  EXPECT_FALSE(zsk.is_ksk());
  EXPECT_NE(zsk.key_tag(), key.key_tag());
}

TEST(Codec, RrsigRoundTrip) {
  RrsigData sig;
  sig.type_covered = RRType::NSEC;
  sig.algorithm = 8;
  sig.labels = 1;
  sig.original_ttl = 86400;
  sig.expiration = 1701406800;  // 20231201050000
  sig.inception = 1700280000;   // 20231118040000
  sig.key_tag = 46780;          // the key tag from the paper's Fig. 10
  sig.signer = Name();
  sig.signature = {0xaa, 0xbb, 0xcc, 0xdd, 0xee};
  ResourceRecord rr;
  rr.name = *Name::parse("world.");
  rr.type = RRType::RRSIG;
  rr.ttl = 86400;
  rr.rdata = sig;
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, NsecRoundTripBitmapWindows) {
  NsecData nsec;
  nsec.next = *Name::parse("aaa.");
  nsec.types = {RRType::NS, RRType::SOA, RRType::RRSIG, RRType::NSEC,
                RRType::DNSKEY, RRType::ZONEMD};
  ResourceRecord rr;
  rr.name = Name();
  rr.type = RRType::NSEC;
  rr.ttl = 86400;
  rr.rdata = nsec;
  auto decoded = roundtrip(rr);
  auto* decoded_nsec = std::get_if<NsecData>(&decoded.rdata);
  ASSERT_NE(decoded_nsec, nullptr);
  std::vector<RRType> expected = nsec.types;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(decoded_nsec->types, expected);
}

TEST(Codec, NsecBitmapHighWindow) {
  // Type 1234 lives in window 4 — exercises multi-window bitmaps.
  NsecData nsec;
  nsec.next = *Name::parse("b.");
  nsec.types = {RRType::A, static_cast<RRType>(1234)};
  ResourceRecord rr;
  rr.name = *Name::parse("a.");
  rr.type = RRType::NSEC;
  rr.ttl = 60;
  rr.rdata = nsec;
  auto decoded = roundtrip(rr);
  auto* decoded_nsec = std::get_if<NsecData>(&decoded.rdata);
  ASSERT_NE(decoded_nsec, nullptr);
  ASSERT_EQ(decoded_nsec->types.size(), 2u);
  EXPECT_EQ(decoded_nsec->types[1], static_cast<RRType>(1234));
}

TEST(Codec, ZonemdRoundTrip) {
  ZonemdData z;
  z.serial = 2023120600;
  z.scheme = ZonemdData::kSchemeSimple;
  z.hash_algorithm = ZonemdData::kHashSha384;
  z.digest.assign(48, 0x5a);
  ResourceRecord rr;
  rr.name = Name();
  rr.type = RRType::ZONEMD;
  rr.ttl = 86400;
  rr.rdata = z;
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, MxRoundTrip) {
  ResourceRecord rr;
  rr.name = *Name::parse("example.");
  rr.type = RRType::MX;
  rr.ttl = 3600;
  rr.rdata = MxData{10, *Name::parse("mail.example.")};
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, GenericRdataRfc3597) {
  GenericData g;
  g.type_code = 99;  // SPF, which we do not model
  g.bytes = {1, 2, 3, 4, 5};
  ResourceRecord rr;
  rr.name = *Name::parse("example.");
  rr.type = static_cast<RRType>(99);
  rr.ttl = 60;
  rr.rdata = g;
  EXPECT_EQ(roundtrip(rr), rr);
}

TEST(Codec, CanonicalEncodingLowercasesNames) {
  ResourceRecord rr;
  rr.name = *Name::parse("WORLD.");
  rr.type = RRType::NS;
  rr.ttl = 86400;
  rr.rdata = NsData{*Name::parse("NS.Example.")};
  WireWriter w;
  encode_record_canonical(w, rr);
  WireReader r(w.data());
  auto decoded = decode_record(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->name.to_string(), "world.");
  EXPECT_EQ(std::get<NsData>(decoded->rdata).nsdname.to_string(), "ns.example.");
}

TEST(Codec, DecodeRejectsTruncatedRdata) {
  ResourceRecord rr;
  rr.name = *Name::parse("x.");
  rr.type = RRType::A;
  rr.ttl = 60;
  rr.rdata = AData{util::IpAddress::v4(1, 2, 3, 4)};
  WireWriter w;
  encode_record(w, rr);
  auto data = w.data();
  data.pop_back();  // truncate the address
  WireReader r(data);
  EXPECT_FALSE(decode_record(r).has_value());
}

TEST(Codec, DecodeRejectsRdlengthMismatch) {
  // A record with RDLENGTH=5 for an A record (must be 4).
  WireWriter w;
  w.put_name(*Name::parse("x."));
  w.put_u16(static_cast<uint16_t>(RRType::A));
  w.put_u16(static_cast<uint16_t>(RRClass::IN));
  w.put_u32(60);
  w.put_u16(5);
  w.put_bytes(std::vector<uint8_t>{1, 2, 3, 4, 5});
  WireReader r(w.data());
  EXPECT_FALSE(decode_record(r).has_value());
}

TEST(Codec, DetachedRdataDecode) {
  AData a{util::IpAddress::v4(193, 0, 14, 129)};  // k.root
  auto bytes = encode_rdata(Rdata(a), false);
  auto decoded = decode_rdata(RRType::A, bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<AData>(*decoded), a);
  EXPECT_FALSE(decode_rdata(RRType::A, std::vector<uint8_t>{1, 2}).has_value());
}

}  // namespace
}  // namespace rootsim::dns
