#include "dns/wire.h"

#include <gtest/gtest.h>

#include <limits>

namespace rootsim::dns {
namespace {

TEST(WireWriter, Integers) {
  WireWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  const auto& data = w.data();
  ASSERT_EQ(data.size(), 7u);
  EXPECT_EQ(data[0], 0xAB);
  EXPECT_EQ(data[1], 0x12);
  EXPECT_EQ(data[2], 0x34);
  EXPECT_EQ(data[3], 0xDE);
  EXPECT_EQ(data[4], 0xAD);
  EXPECT_EQ(data[5], 0xBE);
  EXPECT_EQ(data[6], 0xEF);
}

TEST(WireReader, IntegersRoundTrip) {
  WireWriter w;
  w.put_u8(7);
  w.put_u16(65535);
  w.put_u32(1u << 31);
  WireReader r(w.data());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u16(), 65535);
  EXPECT_EQ(r.get_u32(), 1u << 31);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, OverrunSetsNotOk) {
  std::vector<uint8_t> data = {0x01};
  WireReader r(data);
  r.get_u16();
  EXPECT_FALSE(r.ok());
  // Subsequent reads keep returning zero without UB.
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireName, UncompressedRoundTrip) {
  Name name = *Name::parse("f.root-servers.net.");
  WireWriter w;
  w.put_name(name, /*compress=*/false);
  EXPECT_EQ(w.size(), name.wire_length());
  WireReader r(w.data());
  EXPECT_EQ(r.get_name(), name);
  EXPECT_TRUE(r.ok());
}

TEST(WireName, RootEncodesAsSingleZero) {
  WireWriter w;
  w.put_name(Name());
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.data()[0], 0);
}

TEST(WireName, CompressionSharesSuffix) {
  Name a = *Name::parse("a.root-servers.net.");
  Name b = *Name::parse("b.root-servers.net.");
  WireWriter w;
  w.put_name(a);
  size_t after_first = w.size();
  w.put_name(b);
  // Second name: 1+1 label octets + 2-octet pointer = 4 octets.
  EXPECT_EQ(w.size() - after_first, 4u);
  WireReader r(w.data());
  EXPECT_EQ(r.get_name(), a);
  EXPECT_EQ(r.get_name(), b);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireName, FullPointerForRepeatedName) {
  Name name = *Name::parse("k.root-servers.net.");
  WireWriter w;
  w.put_name(name);
  size_t after_first = w.size();
  w.put_name(name);
  EXPECT_EQ(w.size() - after_first, 2u);  // single compression pointer
  WireReader r(w.data());
  EXPECT_EQ(r.get_name(), name);
  EXPECT_EQ(r.get_name(), name);
  EXPECT_TRUE(r.ok());
}

TEST(WireName, CompressionIsCaseInsensitive) {
  WireWriter w;
  w.put_name(*Name::parse("NET."));
  size_t after_first = w.size();
  w.put_name(*Name::parse("net."));
  EXPECT_EQ(w.size() - after_first, 2u);
}

TEST(WireName, CanonicalNeverCompresses) {
  Name name = *Name::parse("M.Root-Servers.NET.");
  WireWriter w;
  w.put_name(name);
  w.put_name_canonical(name);
  WireReader r(w.data());
  EXPECT_EQ(r.get_name(), name);
  Name canonical = r.get_name();
  EXPECT_EQ(canonical.to_string(), "m.root-servers.net.");
}

TEST(WireName, RejectsPointerLoop) {
  // A pointer pointing at itself.
  std::vector<uint8_t> data = {0xC0, 0x00};
  WireReader r(data);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsForwardPointer) {
  std::vector<uint8_t> data = {0xC0, 0x04, 0x00, 0x00, 0x00};
  WireReader r(data);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsTruncatedLabel) {
  std::vector<uint8_t> data = {0x05, 'a', 'b'};  // label claims 5 octets
  WireReader r(data);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsReservedLabelType) {
  std::vector<uint8_t> data = {0x80, 0x00};  // 10-prefix label type
  WireReader r(data);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, PointerChainAcrossMessage) {
  // name1 at 0, name2 compressed against it, name3 against name2.
  WireWriter w;
  w.put_name(*Name::parse("root-servers.net."));
  w.put_name(*Name::parse("a.root-servers.net."));
  w.put_name(*Name::parse("b.a.root-servers.net."));
  WireReader r(w.data());
  EXPECT_EQ(r.get_name(), *Name::parse("root-servers.net."));
  EXPECT_EQ(r.get_name(), *Name::parse("a.root-servers.net."));
  EXPECT_EQ(r.get_name(), *Name::parse("b.a.root-servers.net."));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireWriter, PatchU16) {
  WireWriter w;
  w.put_u16(0);
  w.put_u32(42);
  w.patch_u16(0, 0xBEEF);
  WireReader r(w.data());
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 42u);
}

TEST(WireName, HopBudgetAcceptsDeepLegalChain) {
  // Chain of back-pointing single-label names: name k points at name k-1.
  // Parsing the last name takes exactly kMaxPointerHops pointer hops, the
  // most the reader allows.
  std::vector<uint8_t> data = {1, 'a', 0};  // name 0 at offset 0
  std::vector<size_t> offsets = {0};
  for (size_t k = 1; k <= WireReader::kMaxPointerHops; ++k) {
    offsets.push_back(data.size());
    data.push_back(1);
    data.push_back(static_cast<uint8_t>('a' + k % 26));
    size_t target = offsets[k - 1];
    data.push_back(static_cast<uint8_t>(0xC0 | (target >> 8)));
    data.push_back(static_cast<uint8_t>(target));
  }
  WireReader r(data);
  r.seek(offsets.back());
  Name name = r.get_name();
  // 64 labels of "x." + root = 129 octets, within every name limit.
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(name.label_count(), WireReader::kMaxPointerHops + 1);
}

TEST(WireName, HopBudgetRejectsOneHopTooMany) {
  std::vector<uint8_t> data = {1, 'a', 0};
  std::vector<size_t> offsets = {0};
  for (size_t k = 1; k <= WireReader::kMaxPointerHops + 1; ++k) {
    offsets.push_back(data.size());
    data.push_back(1);
    data.push_back(static_cast<uint8_t>('a' + k % 26));
    size_t target = offsets[k - 1];
    data.push_back(static_cast<uint8_t>(0xC0 | (target >> 8)));
    data.push_back(static_cast<uint8_t>(target));
  }
  WireReader r(data);
  r.seek(offsets.back());
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsSelfPointer) {
  // A pointer that targets its own first octet: 1 hop, then a forward-or-
  // equal jump, caught without burning the whole hop budget.
  std::vector<uint8_t> data = {0x00, 0x00, 0xC0, 0x02};
  WireReader r(data);
  r.seek(2);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsMutualPointerLoop) {
  // Two names pointing at each other. Backward-only pointers make a true
  // cycle impossible to sustain: the second hop (2 -> 4) is forward and gets
  // rejected there, before the hop budget is ever needed.
  std::vector<uint8_t> data = {1, 'a', 0xC0, 0x04, 1, 'b', 0xC0, 0x00};
  WireReader r(data);
  r.seek(4);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsPointerPastEnd) {
  // Pointer target beyond the buffer: 0xC0FF points at offset 255 of a
  // 4-byte buffer. (Past-the-end is necessarily also forward, so either
  // guard rejects it; what matters is that no read is attempted there.)
  std::vector<uint8_t> data = {0x00, 0x00, 0xC0, 0xFF};
  WireReader r(data);
  r.seek(2);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsTruncatedPointer) {
  // First pointer octet present, second missing.
  std::vector<uint8_t> data = {0x00, 0xC0};
  WireReader r(data);
  r.seek(1);
  r.get_name();
  EXPECT_FALSE(r.ok());
}

TEST(WireName, RejectsOverlongNameBuiltFromPointers) {
  // Each stage adds a 63-octet label and points back at the previous stage;
  // four stages exceed the 255-octet name ceiling while staying far under
  // the hop budget. The reader must reject on accumulated length.
  std::vector<uint8_t> data;
  std::vector<size_t> offsets;
  for (int stage = 0; stage < 4; ++stage) {
    offsets.push_back(data.size());
    data.push_back(63);
    data.insert(data.end(), 63, static_cast<uint8_t>('a' + stage));
    if (stage == 0) {
      data.push_back(0);
    } else {
      size_t target = offsets[stage - 1];
      data.push_back(static_cast<uint8_t>(0xC0 | (target >> 8)));
      data.push_back(static_cast<uint8_t>(target));
    }
  }
  // Three stages: 3*64 + 1 = 193 octets — legal.
  WireReader ok_reader(data);
  ok_reader.seek(offsets[2]);
  Name legal = ok_reader.get_name();
  EXPECT_TRUE(ok_reader.ok());
  EXPECT_EQ(legal.wire_length(), 193u);
  // Four stages: 4*64 + 1 = 257 octets — must fail, not truncate silently.
  WireReader bad_reader(data);
  bad_reader.seek(offsets[3]);
  bad_reader.get_name();
  EXPECT_FALSE(bad_reader.ok());
}

TEST(WireReader, GetBytesNearMaxOffsetDoesNotWrap) {
  // Regression: `offset + count` can wrap size_t; the bounds check must not.
  std::vector<uint8_t> data = {1, 2, 3, 4};
  WireReader r(data);
  r.seek(2);
  r.get_bytes(std::numeric_limits<size_t>::max() - 1);
  EXPECT_FALSE(r.ok());
  WireReader s(data);
  s.seek(2);
  s.skip(std::numeric_limits<size_t>::max() - 1);
  EXPECT_FALSE(s.ok());
}

TEST(WireReader, FailPoisonsSubsequentReads) {
  std::vector<uint8_t> data = {1, 2, 3, 4};
  WireReader r(data);
  EXPECT_EQ(r.get_u8(), 1);
  r.fail();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_u16(), 0);  // failed readers return zeros
}

TEST(WireReader, SeekAndSkip) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  WireReader r(data);
  r.skip(2);
  EXPECT_EQ(r.get_u8(), 3);
  r.seek(0);
  EXPECT_EQ(r.get_u8(), 1);
  r.seek(10);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rootsim::dns
