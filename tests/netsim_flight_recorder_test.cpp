// Transport flight recorder: the bounded ring itself plus the transport
// integration — every exchange()/axfr() completion lands one record with the
// path coordinates and a cause code, so failed probes can be post-mortemed.
#include "netsim/flight_recorder.h"

#include <gtest/gtest.h>

#include "netsim/transport.h"
#include "obs/obs.h"
#include "rss/catalog.h"
#include "rss/server.h"

namespace rootsim::netsim {
namespace {

TEST(FlightRecorder, RingEvictsOldestAndCountsDrops) {
  FlightRecorder recorder(2);
  EXPECT_EQ(recorder.capacity(), 2u);
  for (uint32_t i = 0; i < 5; ++i) {
    FlightRecord record;
    record.vp_id = i;
    recorder.record(record);
  }
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.dropped(), 3u);
  auto records = recorder.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].vp_id, 3u);  // oldest surviving
  EXPECT_EQ(records[1].vp_id, 4u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(FlightRecorder, CauseNames) {
  EXPECT_EQ(to_string(FlightRecord::Cause::Ok), "ok");
  EXPECT_EQ(to_string(FlightRecord::Cause::Timeout), "timeout");
  EXPECT_EQ(to_string(FlightRecord::Cause::TcpRefused), "tcp-refused");
  EXPECT_EQ(to_string(FlightRecord::Cause::Refused), "refused");
}

TEST(FlightRecorder, JsonlCarriesTheCoordinatesAndCause) {
  FlightRecorder recorder(8);
  FlightRecord record;
  record.vp_id = 12;
  record.root_index = 1;
  record.family = util::IpFamily::V4;
  record.round = 9980;
  record.site_id = 33;
  record.cause = FlightRecord::Cause::Timeout;
  record.udp_attempts = 3;
  record.drops = 3;
  record.qname = ".";
  record.qtype = 6;  // SOA
  record.time_ms = 10500.0;
  recorder.record(record);
  std::string jsonl = recorder.to_jsonl();
  for (const char* field :
       {"\"op\":\"query\"", "\"cause\":\"timeout\"", "\"vp\":12", "\"root\":1",
        "\"family\":\"v4\"", "\"round\":9980", "\"site\":33", "\"qname\":\".\"",
        "\"qtype\":\"SOA\"", "\"udp_attempts\":3", "\"drops\":3"})
    EXPECT_NE(jsonl.find(field), std::string::npos) << field << "\n" << jsonl;
  EXPECT_EQ(jsonl.back(), '\n');
}

// --- transport integration -------------------------------------------------

struct Fixture {
  rss::RootCatalog catalog;
  Topology topology;
  RouterConfig router_config;
  std::unique_ptr<AnycastRouter> router;

  Fixture() {
    topology = build_topology(TopologyConfig{}, catalog.all_deployment_specs(),
                              rss::paper_detour_rules());
    router_config.churn = default_churn_specs();
    router_config.campaign_rounds = 10000;
    router = std::make_unique<AnycastRouter>(topology, router_config);
  }

  VantageView vp() const {
    VantageView view;
    view.vp_id = 7;
    view.region = util::Region::Europe;
    view.location = {50.1, 8.7};
    view.asn = 64507;
    view.churn_multiplier = 1.0;
    return view;
  }
};

struct FakeEndpoint final : Transport::Endpoint {
  size_t txt_strings = 1;
  std::vector<uint8_t> axfr;

  dns::Message answer(const dns::Message& query) const {
    dns::Message response;
    response.id = query.id;
    response.qr = true;
    response.aa = true;
    response.questions = query.questions;
    dns::ResourceRecord rr;
    rr.name = query.questions.front().qname;
    rr.type = dns::RRType::TXT;
    rr.rclass = dns::RRClass::IN;
    rr.ttl = 60;
    dns::TxtData txt;
    for (size_t i = 0; i < txt_strings; ++i)
      txt.strings.push_back(std::string(200, 'x'));
    rr.rdata = std::move(txt);
    response.answers.push_back(std::move(rr));
    return response;
  }

  dns::Message udp_response(const dns::Message& query, util::UnixTime,
                            size_t path_mtu_clamp) const override {
    return rss::apply_udp_truncation(answer(query), query, path_mtu_clamp);
  }
  dns::Message tcp_response(const dns::Message& query,
                            util::UnixTime) const override {
    return answer(query);
  }
  std::span<const uint8_t> axfr_stream(util::UnixTime) const override {
    return axfr;
  }
};

dns::Message small_query(uint16_t id = 1) {
  return dns::make_query(id, *dns::Name::parse("example."), dns::RRType::TXT);
}

TEST(FlightRecorder, CleanExchangeRecordsOkWithPathCoordinates) {
  Fixture f;
  FlightRecorder flight(16);
  TransportConfig config;
  config.flight_recorder = &flight;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 4, util::IpFamily::V6, 11);
  ASSERT_TRUE(transport.exchange(path, endpoint, small_query(), 1000).delivered);
  auto records = flight.records();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& record = records[0];
  EXPECT_EQ(record.op, FlightRecord::Op::Query);
  EXPECT_EQ(record.cause, FlightRecord::Cause::Ok);
  EXPECT_EQ(record.vp_id, 7u);
  EXPECT_EQ(record.root_index, 4);
  EXPECT_EQ(record.family, util::IpFamily::V6);
  EXPECT_EQ(record.round, 11u);
  EXPECT_EQ(record.site_id, path.site_id());
  EXPECT_EQ(record.qname, "example.");
  EXPECT_EQ(record.qtype, static_cast<uint16_t>(dns::RRType::TXT));
  EXPECT_EQ(record.when, 1000);
  EXPECT_EQ(record.udp_attempts, 1u);
  EXPECT_EQ(record.drops, 0u);
  EXPECT_FALSE(record.truncated_retry);
  EXPECT_GT(record.bytes_sent, 0u);
  EXPECT_GT(record.bytes_received, 0u);
  EXPECT_GT(record.time_ms, 0.0);
}

TEST(FlightRecorder, TimeoutExchangeRecordsTheRetryTrail) {
  Fixture f;
  FlightRecorder flight(16);
  TransportConfig config;
  config.flight_recorder = &flight;
  config.defaults.loss = 1.0;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 0);
  EXPECT_FALSE(transport.exchange(path, endpoint, small_query(), 0).delivered);
  auto records = flight.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cause, FlightRecord::Cause::Timeout);
  EXPECT_EQ(records[0].udp_attempts, 3u);
  EXPECT_EQ(records[0].drops, 3u);
  EXPECT_EQ(records[0].bytes_received, 0u);
}

TEST(FlightRecorder, TcpRefusedTruncationRecordsBothFacts) {
  Fixture f;
  FlightRecorder flight(16);
  TransportConfig config;
  config.flight_recorder = &flight;
  config.defaults.tcp_refused = true;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  endpoint.txt_strings = 8;  // forces TC=1 at the default 1232 buffer
  dns::Message query = small_query();
  query.add_edns(1232, false);
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 1);
  transport.exchange(path, endpoint, query, 0);
  auto records = flight.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].cause, FlightRecord::Cause::TcpRefused);
  EXPECT_TRUE(records[0].truncated_retry);
}

TEST(FlightRecorder, AxfrOutcomesMapToCauses) {
  Fixture f;
  FlightRecorder flight(16);
  TransportConfig config;
  config.flight_recorder = &flight;
  Transport transport(*f.router, config);

  FakeEndpoint refusing;  // empty stream = server-side refusal
  Transport::Path path = transport.open_path(f.vp(), 8, util::IpFamily::V4, 0);
  EXPECT_FALSE(transport.axfr(path, refusing, 0).delivered);

  FakeEndpoint serving;
  serving.axfr.assign(4096, 0xAB);
  EXPECT_TRUE(transport.axfr(path, serving, 0).delivered);

  auto records = flight.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].op, FlightRecord::Op::Axfr);
  EXPECT_EQ(records[0].cause, FlightRecord::Cause::Refused);
  EXPECT_TRUE(records[0].qname.empty());
  EXPECT_EQ(records[1].cause, FlightRecord::Cause::Ok);
  EXPECT_EQ(records[1].bytes_received, serving.axfr.size());

  FlightRecorder no_tcp_flight(16);
  TransportConfig no_tcp;
  no_tcp.flight_recorder = &no_tcp_flight;
  no_tcp.defaults.tcp_refused = true;
  Transport refused_transport(*f.router, no_tcp);
  path = refused_transport.open_path(f.vp(), 8, util::IpFamily::V4, 0);
  EXPECT_FALSE(refused_transport.axfr(path, serving, 0).delivered);
  ASSERT_EQ(no_tcp_flight.records().size(), 1u);
  EXPECT_EQ(no_tcp_flight.records()[0].cause, FlightRecord::Cause::TcpRefused);
}

// The recorder is a diagnostic surface: attaching it must not change any
// deterministic output (the exchange outcomes and obs exports).
TEST(FlightRecorder, AttachingTheRecorderDoesNotPerturbOutcomes) {
  Fixture f;
  TransportConfig plain_config;
  plain_config.defaults.loss = 0.35;
  obs::Recorder plain_obs;
  Transport plain(*f.router, plain_config, plain_obs.obs());

  FlightRecorder flight(16);
  TransportConfig recorded_config = plain_config;
  recorded_config.flight_recorder = &flight;
  obs::Recorder recorded_obs;
  Transport recorded(*f.router, recorded_config, recorded_obs.obs());

  FakeEndpoint endpoint;
  for (uint64_t round = 0; round < 12; ++round) {
    Transport::Path a = plain.open_path(f.vp(), 2, util::IpFamily::V4, round);
    Transport::Path b = recorded.open_path(f.vp(), 2, util::IpFamily::V4, round);
    ExchangeOutcome oa = plain.exchange(a, endpoint, small_query(), 0);
    ExchangeOutcome ob = recorded.exchange(b, endpoint, small_query(), 0);
    EXPECT_EQ(oa.delivered, ob.delivered) << round;
    EXPECT_EQ(oa.stats.udp_attempts, ob.stats.udp_attempts) << round;
    EXPECT_DOUBLE_EQ(oa.stats.time_ms, ob.stats.time_ms) << round;
  }
  EXPECT_EQ(plain_obs.metrics().to_jsonl(), recorded_obs.metrics().to_jsonl());
  EXPECT_EQ(flight.recorded(), 12u);
}

}  // namespace
}  // namespace rootsim::netsim
