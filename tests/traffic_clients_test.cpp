#include "traffic/clients.h"

#include "util/stats.h"
#include <gtest/gtest.h>

namespace rootsim::traffic {
namespace {

util::UnixTime change = util::make_time(2023, 11, 27);

TEST(Clients, PopulationSizeAndDeterminism) {
  PopulationConfig config;
  config.clients = 5000;
  auto a = generate_population(config);
  auto b = generate_population(config);
  EXPECT_EQ(a.size(), 5000u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].prefix, b[i].prefix);
    EXPECT_EQ(a[i].primes, b[i].primes);
  }
}

TEST(Clients, PrefixesArePrivacyAggregated) {
  PopulationConfig config;
  config.clients = 2000;
  for (const auto& client : generate_population(config)) {
    if (client.family == util::IpFamily::V4)
      EXPECT_EQ(client.prefix.length(), 24);
    else
      EXPECT_EQ(client.prefix.length(), 48);
  }
}

TEST(Clients, Ipv6ShareApproximatelyConfigured) {
  PopulationConfig config;
  config.clients = 10000;
  config.ipv6_share = 0.35;
  auto clients = generate_population(config);
  size_t v6 = 0;
  for (const auto& c : clients)
    if (c.family == util::IpFamily::V6) ++v6;
  EXPECT_NEAR(static_cast<double>(v6) / clients.size(), 0.35, 0.02);
}

TEST(Clients, PrimingMoreCommonOnV6) {
  PopulationConfig config;
  config.clients = 10000;
  auto clients = generate_population(config);
  size_t v4_total = 0, v4_priming = 0, v6_total = 0, v6_priming = 0;
  for (const auto& c : clients) {
    if (c.family == util::IpFamily::V4) {
      ++v4_total;
      if (c.primes) ++v4_priming;
    } else {
      ++v6_total;
      if (c.primes) ++v6_priming;
    }
  }
  double v4_rate = static_cast<double>(v4_priming) / v4_total;
  double v6_rate = static_cast<double>(v6_priming) / v6_total;
  EXPECT_GT(v6_rate, v4_rate);  // the paper's conjecture, baked in
  EXPECT_NEAR(v4_rate, config.priming_prob_v4, 0.03);
  EXPECT_NEAR(v6_rate, config.priming_prob_v6, 0.03);
}

TEST(Clients, NewShareZeroBeforeChange) {
  PopulationConfig config;
  config.clients = 500;
  for (const auto& client : generate_population(config)) {
    EXPECT_DOUBLE_EQ(
        client.new_address_share(change - util::kSecondsPerDay, change), 0.0);
  }
}

TEST(Clients, PrimingClientsSwitchWithinADay) {
  Client client;
  client.primes = true;
  EXPECT_DOUBLE_EQ(client.new_address_share(change + util::kSecondsPerDay, change),
                   1.0);
  // ... but keep touching the old address ~once a day.
  EXPECT_DOUBLE_EQ(
      client.old_address_flows_per_day(change + 2 * util::kSecondsPerDay, change),
      1.0);
}

TEST(Clients, ReluctantClientNeverSwitches) {
  Client client;
  client.primes = false;
  client.eventually_adopts = false;
  client.flows_per_day = 100;
  util::UnixTime much_later = change + 150 * util::kSecondsPerDay;
  EXPECT_DOUBLE_EQ(client.new_address_share(much_later, change), 0.0);
  EXPECT_DOUBLE_EQ(client.old_address_flows_per_day(much_later, change), 100.0);
}

TEST(Clients, DelayedAdopterSwitchesAfterDelay) {
  Client client;
  client.primes = false;
  client.eventually_adopts = true;
  client.adoption_delay_days = 10;
  EXPECT_DOUBLE_EQ(
      client.new_address_share(change + 5 * util::kSecondsPerDay, change), 0.0);
  EXPECT_DOUBLE_EQ(
      client.new_address_share(change + 11 * util::kSecondsPerDay, change), 1.0);
}

TEST(Clients, PresetsDifferInEagerness) {
  auto eu = ixp_population_config_eu();
  auto na = ixp_population_config_na();
  EXPECT_GT(eu.priming_prob_v6, na.priming_prob_v6);
  EXPECT_LT(eu.never_adopts_prob_v6, na.never_adopts_prob_v6);
  auto isp = isp_population_config();
  EXPECT_LT(isp.never_adopts_prob_v6, isp.never_adopts_prob_v4);
}

TEST(Clients, FlowVolumesHeavyTailed) {
  PopulationConfig config;
  config.clients = 20000;
  auto clients = generate_population(config);
  std::vector<double> flows;
  for (const auto& c : clients) flows.push_back(c.flows_per_day);
  double median = util::percentile(flows, 0.5);
  double p999 = util::percentile(flows, 0.999);
  EXPECT_LT(median, 100);
  EXPECT_GT(p999, 5000);  // Fig. 8's x-axis reaches 100,000 flows/client
}

}  // namespace
}  // namespace rootsim::traffic
