#include "localroot/local_root.h"

#include <gtest/gtest.h>

namespace rootsim::localroot {
namespace {

using util::make_time;

const measure::Campaign& test_campaign() {
  static const measure::Campaign* campaign = [] {
    measure::CampaignConfig config;
    config.zone.tld_count = 25;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.05;
    return new measure::Campaign(config);
  }();
  return *campaign;
}

LocalRootService make_service(LocalRootConfig config = {}) {
  return LocalRootService(test_campaign(), test_campaign().vantage_points()[0],
                          std::move(config));
}

TEST(LocalRoot, HealthyRefreshSucceedsFirstTry) {
  auto service = make_service();
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  auto result = service.refresh(now);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_TRUE(result.attempts[0].accepted);
  EXPECT_EQ(result.serial, test_campaign().authority().serial_at(now));
  EXPECT_TRUE(service.can_serve(now));
}

TEST(LocalRoot, BitflippedTransferTriggersFallback) {
  LocalRootConfig config;
  config.server_order = {1, 10, 5};  // b first
  auto service = make_service(config);
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  LocalRootService::ServerFault fault;
  fault.root_index = 1;
  fault.knobs.inject_bitflip = true;
  fault.knobs.bitflip_seed = 3;
  fault.knobs.bitflip_prefer_signed = true;
  auto result = service.refresh(now, {fault});
  ASSERT_TRUE(result.success);
  ASSERT_GE(result.attempts.size(), 2u);
  EXPECT_FALSE(result.attempts[0].accepted);
  EXPECT_EQ(result.attempts[0].dnssec_verdict,
            dnssec::ValidationStatus::BogusSignature);
  EXPECT_TRUE(result.attempts[1].accepted);
  EXPECT_EQ(result.attempts[1].root_index, 10);  // fell back to k.root
}

TEST(LocalRoot, StaleServerTriggersFallback) {
  LocalRootConfig config;
  config.server_order = {3, 0};  // d (stale) first
  auto service = make_service(config);
  util::UnixTime now = make_time(2023, 10, 6, 10, 0);
  LocalRootService::ServerFault fault;
  fault.root_index = 3;
  fault.knobs.server_frozen_at = make_time(2023, 9, 10);
  auto result = service.refresh(now, {fault});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.attempts[0].dnssec_verdict,
            dnssec::ValidationStatus::SignatureExpired);
  EXPECT_TRUE(result.attempts[1].accepted);
  // The accepted copy is current, not the stale one.
  EXPECT_EQ(result.serial, test_campaign().authority().serial_at(now));
}

TEST(LocalRoot, AllServersBadMeansNoCopy) {
  LocalRootConfig config;
  config.server_order = {1, 2};
  config.max_attempts = 2;
  auto service = make_service(config);
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  std::vector<LocalRootService::ServerFault> faults(2);
  faults[0].root_index = 1;
  faults[0].knobs.inject_bitflip = true;
  faults[0].knobs.bitflip_seed = 5;
  faults[0].knobs.bitflip_prefer_signed = true;
  faults[1].root_index = 2;
  faults[1].knobs.inject_bitflip = true;
  faults[1].knobs.bitflip_seed = 6;
  faults[1].knobs.bitflip_prefer_signed = true;
  auto result = service.refresh(now, faults);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.attempts.size(), 2u);
  EXPECT_FALSE(service.can_serve(now));
  EXPECT_FALSE(service.resolve(dns::make_query(1, dns::Name(), dns::RRType::NS),
                               now)
                   .has_value());
}

TEST(LocalRoot, ServesQueriesFromValidatedCopy) {
  auto service = make_service();
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  ASSERT_TRUE(service.refresh(now).success);
  auto response =
      service.resolve(dns::make_query(7, dns::Name(), dns::RRType::NS), now);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->answers.size(), 13u);
  EXPECT_TRUE(response->ra);
  // NXDOMAIN for unknown TLDs, from the local copy.
  auto nx = service.resolve(
      dns::make_query(8, *dns::Name::parse("no-such-tld-xq."), dns::RRType::A),
      now);
  ASSERT_TRUE(nx.has_value());
  EXPECT_EQ(nx->rcode, dns::Rcode::NxDomain);
}

TEST(LocalRoot, CopyExpiresAfterSoaExpire) {
  auto service = make_service();
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  ASSERT_TRUE(service.refresh(now).success);
  auto soa = service.zone()->soa();
  ASSERT_TRUE(soa.has_value());
  util::UnixTime just_before = now + soa->expire - 1;
  util::UnixTime just_after = now + soa->expire + 1;
  EXPECT_TRUE(service.can_serve(just_before));
  EXPECT_FALSE(service.can_serve(just_after));
  EXPECT_FALSE(service
                   .resolve(dns::make_query(9, dns::Name(), dns::RRType::SOA),
                            just_after)
                   .has_value())
      << "degraded service must defer to upstream, not serve stale data";
}

TEST(LocalRoot, PreZonemdEraAcceptsDnssecOnly) {
  // Before 2023-09-13 there is no ZONEMD; the service must still work.
  auto service = make_service();
  util::UnixTime now = make_time(2023, 8, 1, 9, 0);
  auto result = service.refresh(now);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.attempts[0].zonemd_verdict, dnssec::ZonemdStatus::NoZonemd);
}

TEST(LocalRoot, DsAnchoredBootstrapWorks) {
  // The realistic trust path: configure only the published DS of the KSK.
  const auto& authority = test_campaign().authority();
  util::UnixTime now = make_time(2023, 12, 10, 9, 0);
  const dns::RRset* keys =
      authority.zone_at(now).find(dns::Name(), dns::RRType::DNSKEY);
  const dns::DnskeyData* ksk = nullptr;
  for (const auto& rdata : keys->rdatas) {
    const auto* key = std::get_if<dns::DnskeyData>(&rdata);
    if (key && key->is_ksk()) ksk = key;
  }
  ASSERT_NE(ksk, nullptr);
  LocalRootConfig config;
  config.ds_anchor = dnssec::make_ds(dns::Name(), *ksk, 2);
  auto service = make_service(config);
  auto result = service.refresh(now);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(service.can_serve(now));
}

TEST(LocalRoot, WrongDsAnchorRejectsEverything) {
  LocalRootConfig config;
  config.server_order = {1, 10};
  config.max_attempts = 2;
  dns::DsData bogus;
  bogus.key_tag = 1;
  bogus.algorithm = 8;
  bogus.digest_type = 2;
  bogus.digest.assign(32, 0xAB);
  config.ds_anchor = bogus;
  auto service = make_service(config);
  auto result = service.refresh(make_time(2023, 12, 10, 9, 0));
  EXPECT_FALSE(result.success);
  for (const auto& attempt : result.attempts)
    EXPECT_EQ(attempt.dnssec_verdict, dnssec::ValidationStatus::UnknownKey);
}

TEST(LocalRoot, RefreshUpdatesSerialAcrossZoneEdits) {
  auto service = make_service();
  util::UnixTime morning = make_time(2023, 12, 10, 9, 0);
  util::UnixTime evening = make_time(2023, 12, 10, 21, 0);
  ASSERT_TRUE(service.refresh(morning).success);
  uint32_t first = service.serial();
  ASSERT_TRUE(service.refresh(evening).success);
  EXPECT_GT(service.serial(), first);
}

}  // namespace
}  // namespace rootsim::localroot
