// The simulated transport substrate: loss determinism, timeout budgets,
// TC=1 -> TCP fallback, path-MTU clamping, and wire-byte accounting.
#include "netsim/transport.h"

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/report.h"
#include "rss/catalog.h"
#include "rss/server.h"

namespace rootsim::netsim {
namespace {

struct Fixture {
  rss::RootCatalog catalog;
  Topology topology;
  RouterConfig router_config;
  std::unique_ptr<AnycastRouter> router;

  Fixture() {
    topology = build_topology(TopologyConfig{}, catalog.all_deployment_specs(),
                              rss::paper_detour_rules());
    router_config.churn = default_churn_specs();
    router_config.campaign_rounds = 10000;
    router = std::make_unique<AnycastRouter>(topology, router_config);
  }

  VantageView vp() const {
    VantageView view;
    view.vp_id = 7;
    view.region = util::Region::Europe;
    view.location = {50.1, 8.7};
    view.asn = 64507;
    view.churn_multiplier = 1.0;
    return view;
  }
};

// Answers every query with a TXT RRset of configurable size, applying the
// real UDP truncation path (OPT-aware + MTU clamp) on the UDP side. The
// AXFR stream is a configurable blob.
struct FakeEndpoint final : Transport::Endpoint {
  size_t txt_strings = 1;      // each 200 octets; 7+ exceeds a 1232 buffer
  std::vector<uint8_t> axfr;   // empty = transfer refused
  mutable int udp_calls = 0;
  mutable int tcp_calls = 0;

  dns::Message answer(const dns::Message& query) const {
    dns::Message response;
    response.id = query.id;
    response.qr = true;
    response.aa = true;
    response.questions = query.questions;
    dns::ResourceRecord rr;
    rr.name = query.questions.front().qname;
    rr.type = dns::RRType::TXT;
    rr.rclass = dns::RRClass::IN;
    rr.ttl = 60;
    dns::TxtData txt;
    for (size_t i = 0; i < txt_strings; ++i)
      txt.strings.push_back(std::string(200, 'x'));
    rr.rdata = std::move(txt);
    response.answers.push_back(std::move(rr));
    return response;
  }

  dns::Message udp_response(const dns::Message& query, util::UnixTime,
                            size_t path_mtu_clamp) const override {
    ++udp_calls;
    return rss::apply_udp_truncation(answer(query), query, path_mtu_clamp);
  }
  dns::Message tcp_response(const dns::Message& query,
                            util::UnixTime) const override {
    ++tcp_calls;
    return answer(query);
  }
  std::span<const uint8_t> axfr_stream(util::UnixTime) const override {
    return axfr;
  }
};

dns::Message small_query(uint16_t id = 1) {
  return dns::make_query(id, *dns::Name::parse("example."), dns::RRType::TXT);
}

TEST(Transport, CleanPathDeliversOverUdpInOneRoundTrip) {
  Fixture f;
  Transport transport(*f.router);
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 5);
  ExchangeOutcome outcome = transport.exchange(path, endpoint, small_query(), 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_FALSE(outcome.timed_out);
  EXPECT_FALSE(outcome.retried_over_tcp);
  EXPECT_EQ(outcome.transport, TransportProto::Udp);
  EXPECT_EQ(outcome.stats.udp_attempts, 1u);
  EXPECT_EQ(outcome.stats.tcp_attempts, 0u);
  EXPECT_EQ(outcome.stats.drops, 0u);
  // Exactly one path round trip, no jitter, no penalties.
  EXPECT_DOUBLE_EQ(outcome.stats.time_ms, path.route().rtt_ms);
  EXPECT_GT(outcome.stats.bytes_sent, 0u);
  EXPECT_GT(outcome.stats.bytes_received, outcome.stats.bytes_sent);
  ASSERT_EQ(outcome.response.answers.size(), 1u);
  EXPECT_EQ(endpoint.udp_calls, 1);
  EXPECT_EQ(endpoint.tcp_calls, 0);
}

TEST(Transport, PathOpensExactlyOneRouteSelection) {
  Fixture f;
  obs::Recorder recorder;
  AnycastRouter router(f.topology, f.router_config, recorder.obs());
  Transport transport(router, {}, recorder.obs());
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 3, util::IpFamily::V6, 9);
  for (int i = 0; i < 5; ++i)
    transport.exchange(path, endpoint, small_query(), 0);
  auto report = obs::RunReport::capture(recorder);
  EXPECT_EQ(report.counter_total("netsim.route_selections"), 1u);
  EXPECT_EQ(report.counter_value("transport.exchanges", {{"proto", "udp"}}),
            5u);
}

TEST(Transport, TotalLossExhaustsRetriesAndChargesBackoffBudget) {
  Fixture f;
  TransportConfig config;
  config.defaults.loss = 1.0;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 0);
  ExchangeOutcome outcome = transport.exchange(path, endpoint, small_query(), 0);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_EQ(outcome.stats.udp_attempts, 3u);  // dig-like: 1 try + 2 retries
  EXPECT_EQ(outcome.stats.drops, 3u);
  EXPECT_EQ(outcome.stats.timeouts, 1u);
  // 1500 + 3000 + 6000: per-attempt budget doubling per retry.
  EXPECT_DOUBLE_EQ(outcome.stats.time_ms, 1500.0 + 3000.0 + 6000.0);
  // Query datagrams went out each attempt; nothing came back.
  EXPECT_GT(outcome.stats.bytes_sent, 0u);
  EXPECT_EQ(outcome.stats.bytes_received, 0u);
  EXPECT_EQ(endpoint.udp_calls, 0);  // every datagram died before the server
}

TEST(Transport, LossDrawsAreAPureFunctionOfPathCoordinates) {
  Fixture f;
  TransportConfig config;
  config.defaults.loss = 0.35;
  Transport first(*f.router, config);
  Transport second(*f.router, config);
  FakeEndpoint endpoint;
  // Same (vp, root, family, round) coordinates -> identical outcome
  // sequences, regardless of transport instance or prior traffic.
  Transport::Path warm = first.open_path(f.vp(), 2, util::IpFamily::V4, 1);
  for (int i = 0; i < 7; ++i) first.exchange(warm, endpoint, small_query(), 0);

  Transport::Path a = first.open_path(f.vp(), 4, util::IpFamily::V6, 11);
  Transport::Path b = second.open_path(f.vp(), 4, util::IpFamily::V6, 11);
  for (int i = 0; i < 24; ++i) {
    ExchangeOutcome oa = first.exchange(a, endpoint, small_query(), 0);
    ExchangeOutcome ob = second.exchange(b, endpoint, small_query(), 0);
    EXPECT_EQ(oa.delivered, ob.delivered) << i;
    EXPECT_EQ(oa.stats.udp_attempts, ob.stats.udp_attempts) << i;
    EXPECT_EQ(oa.stats.drops, ob.stats.drops) << i;
    EXPECT_DOUBLE_EQ(oa.stats.time_ms, ob.stats.time_ms) << i;
  }
  // Different round -> a different, independent stream.
  Transport::Path c = second.open_path(f.vp(), 4, util::IpFamily::V6, 12);
  bool any_difference = false;
  Transport::Path a2 = first.open_path(f.vp(), 4, util::IpFamily::V6, 11);
  for (int i = 0; i < 24 && !any_difference; ++i) {
    ExchangeOutcome oa = first.exchange(a2, endpoint, small_query(), 0);
    ExchangeOutcome oc = second.exchange(c, endpoint, small_query(), 0);
    any_difference = oa.stats.udp_attempts != oc.stats.udp_attempts;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Transport, TruncationFallsBackToTcpAndChargesHandshake) {
  Fixture f;
  Transport transport(*f.router);
  FakeEndpoint endpoint;
  endpoint.txt_strings = 8;  // ~1650 bytes: above the default 1232 buffer
  dns::Message query = small_query();
  query.add_edns(1232, false);
  Transport::Path path = transport.open_path(f.vp(), 1, util::IpFamily::V4, 3);
  ExchangeOutcome outcome = transport.exchange(path, endpoint, query, 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.retried_over_tcp);
  EXPECT_FALSE(outcome.tcp_refused);
  EXPECT_EQ(outcome.transport, TransportProto::Tcp);
  EXPECT_EQ(outcome.stats.udp_attempts, 1u);
  EXPECT_EQ(outcome.stats.tcp_attempts, 1u);
  EXPECT_EQ(outcome.stats.tcp_fallbacks, 1u);
  // UDP round trip + SYN handshake + TCP round trip.
  EXPECT_DOUBLE_EQ(outcome.stats.time_ms, 3.0 * path.route().rtt_ms);
  // The full answer arrived despite the truncated UDP response.
  ASSERT_EQ(outcome.response.answers.size(), 1u);
  EXPECT_EQ(endpoint.udp_calls, 1);
  EXPECT_EQ(endpoint.tcp_calls, 1);
}

TEST(Transport, PathMtuClampTruncatesBelowTheAdvertisedBuffer) {
  Fixture f;
  FakeEndpoint endpoint;
  endpoint.txt_strings = 4;  // ~850 bytes: fits 1232, exceeds a 700 MTU
  dns::Message query = small_query();
  query.add_edns(1232, false);

  Transport clean(*f.router);
  Transport::Path clean_path = clean.open_path(f.vp(), 6, util::IpFamily::V4, 2);
  ExchangeOutcome direct = clean.exchange(clean_path, endpoint, query, 0);
  ASSERT_TRUE(direct.delivered);
  EXPECT_FALSE(direct.retried_over_tcp);  // advertised buffer is enough

  TransportConfig config;
  config.defaults.path_mtu = 700;
  Transport clamped(*f.router, config);
  Transport::Path path = clamped.open_path(f.vp(), 6, util::IpFamily::V4, 2);
  ExchangeOutcome outcome = clamped.exchange(path, endpoint, query, 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.retried_over_tcp);  // the clamp forced TC=1
  ASSERT_EQ(outcome.response.answers.size(), 1u);
}

TEST(Transport, TcpRefusedPathKeepsTheTruncatedAnswer) {
  Fixture f;
  TransportConfig config;
  config.defaults.tcp_refused = true;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  endpoint.txt_strings = 8;
  dns::Message query = small_query();
  query.add_edns(1232, false);
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 1);
  ExchangeOutcome outcome = transport.exchange(path, endpoint, query, 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_TRUE(outcome.tcp_refused);
  EXPECT_FALSE(outcome.retried_over_tcp);
  EXPECT_TRUE(outcome.response.tc);
  EXPECT_TRUE(outcome.response.answers.empty());
  EXPECT_EQ(outcome.stats.tcp_attempts, 0u);
}

TEST(Transport, AxfrPacesTheStreamOneRttPerWindow) {
  Fixture f;
  TransportConfig config;
  config.tcp_window_bytes = 1024;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  endpoint.axfr.assign(10 * 1024 + 1, 0xAB);  // 11 windows
  Transport::Path path = transport.open_path(f.vp(), 5, util::IpFamily::V6, 0);
  AxfrOutcome outcome = transport.axfr(path, endpoint, 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.stream.size(), endpoint.axfr.size());
  EXPECT_EQ(outcome.stats.bytes_received, endpoint.axfr.size());
  EXPECT_EQ(outcome.stats.tcp_attempts, 1u);
  // Handshake + 11 windowed round trips.
  EXPECT_DOUBLE_EQ(outcome.stats.time_ms, 12.0 * path.route().rtt_ms);
}

TEST(Transport, AxfrFailsClosedOnRefusalTimeoutAndNoTcp) {
  Fixture f;
  FakeEndpoint endpoint;  // empty stream = server-side refusal

  Transport clean(*f.router);
  Transport::Path path = clean.open_path(f.vp(), 8, util::IpFamily::V4, 0);
  AxfrOutcome refused = clean.axfr(path, endpoint, 0);
  EXPECT_FALSE(refused.delivered);
  EXPECT_FALSE(refused.timed_out);
  EXPECT_FALSE(refused.tcp_refused);

  TransportConfig no_tcp;
  no_tcp.defaults.tcp_refused = true;
  Transport refusing(*f.router, no_tcp);
  path = refusing.open_path(f.vp(), 8, util::IpFamily::V4, 0);
  AxfrOutcome blocked = refusing.axfr(path, endpoint, 0);
  EXPECT_FALSE(blocked.delivered);
  EXPECT_TRUE(blocked.tcp_refused);

  TransportConfig lossy;
  lossy.defaults.loss = 1.0;
  Transport dead(*f.router, lossy);
  path = dead.open_path(f.vp(), 8, util::IpFamily::V4, 0);
  AxfrOutcome timed_out = dead.axfr(path, endpoint, 0);
  EXPECT_FALSE(timed_out.delivered);
  EXPECT_TRUE(timed_out.timed_out);
  EXPECT_EQ(timed_out.stats.tcp_attempts, 2u);  // every SYN lost
  // Connect budget: 3000 + 6000 with the default backoff.
  EXPECT_DOUBLE_EQ(timed_out.stats.time_ms, 3000.0 + 6000.0);
}

TEST(Transport, SiteConditionsOverrideDefaultsAndFeedTheAnalysesHelpers) {
  Fixture f;
  Transport probe_route(*f.router);
  Transport::Path path = probe_route.open_path(f.vp(), 9, util::IpFamily::V4, 4);
  uint32_t site = path.site_id();

  TransportConfig config;
  config.site_conditions[site].loss = 1.0;
  config.site_conditions[site].extra_rtt_ms = 40.0;
  Transport transport(*f.router, config);
  EXPECT_TRUE(transport.site_unreachable(site));
  EXPECT_FALSE(transport.site_unreachable(site + 1));
  EXPECT_DOUBLE_EQ(transport.effective_rtt_ms(path.route()),
                   path.route().rtt_ms + 40.0);
  // Other sites keep the (clean) defaults.
  EXPECT_DOUBLE_EQ(transport.conditions_for_site(site + 1).loss, 0.0);
}

TEST(Transport, JitterAddsBoundedDelayOnlyWhenConfigured) {
  Fixture f;
  TransportConfig config;
  config.defaults.jitter_ms = 25.0;
  Transport transport(*f.router, config);
  FakeEndpoint endpoint;
  Transport::Path path = transport.open_path(f.vp(), 0, util::IpFamily::V4, 8);
  double base = path.route().rtt_ms;
  ExchangeOutcome outcome = transport.exchange(path, endpoint, small_query(), 0);
  ASSERT_TRUE(outcome.delivered);
  EXPECT_GE(outcome.stats.time_ms, base);
  EXPECT_LT(outcome.stats.time_ms, base + 25.0);
}

TEST(Transport, ObsCountersTrackDropsFallbacksAndBytes) {
  Fixture f;
  obs::Recorder recorder;
  TransportConfig config;
  config.defaults.loss = 0.4;
  Transport transport(*f.router, config, recorder.obs());
  FakeEndpoint endpoint;
  endpoint.txt_strings = 8;  // every delivered answer truncates -> TCP
  dns::Message query = small_query();
  query.add_edns(1232, false);
  uint64_t delivered = 0, dropped = 0;
  for (uint64_t round = 0; round < 30; ++round) {
    Transport::Path path =
        transport.open_path(f.vp(), 0, util::IpFamily::V4, round);
    ExchangeOutcome outcome = transport.exchange(path, endpoint, query, 0);
    delivered += outcome.delivered ? 1 : 0;
    dropped += outcome.stats.drops;
  }
  auto report = obs::RunReport::capture(recorder);
  EXPECT_EQ(report.counter_total("transport.drops"), dropped);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(report.counter_total("transport.bytes"), 0u);
  EXPECT_EQ(report.counter_value("transport.exchanges", {{"proto", "tcp"}}),
            report.counter_total("transport.tcp_fallbacks"));
}

}  // namespace
}  // namespace rootsim::netsim
