// Robustness properties of the wire-facing parsers: arbitrary bytes and
// mutated valid messages must never crash, hang, or read out of bounds —
// the measurement pipeline parses whatever the (possibly corrupted) network
// delivers. Run under ASan/UBSan for full effect; the assertions here pin
// down graceful-failure behaviour.
#include <gtest/gtest.h>

#include "dns/axfr.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "util/rng.h"

namespace rootsim::dns {
namespace {

class RandomBytes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomBytes, MessageDecodeNeverCrashes) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    size_t length = rng.uniform(600);
    std::vector<uint8_t> bytes(length);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    auto message = Message::decode(bytes);
    if (message) {
      // If random bytes parsed, re-encoding must also be safe.
      auto reencoded = message->encode();
      EXPECT_LE(reencoded.size(), 65536u);
    }
  }
}

TEST_P(RandomBytes, NameDecodeNeverCrashes) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 500; ++iteration) {
    size_t length = rng.uniform(300);
    std::vector<uint8_t> bytes(length);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    WireReader reader(bytes);
    Name name = reader.get_name();
    if (reader.ok()) EXPECT_LE(name.wire_length(), 255u);
  }
}

TEST_P(RandomBytes, AxfrStreamDecodeNeverCrashes) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 100; ++iteration) {
    size_t length = rng.uniform(2000);
    std::vector<uint8_t> bytes(length);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    auto parsed = decode_axfr_stream(bytes);
    // Random bytes essentially never form a valid SOA-delimited stream.
    EXPECT_FALSE(parsed.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

Message sample_message() {
  Message msg;
  msg.id = 4242;
  msg.qr = true;
  msg.aa = true;
  msg.questions.push_back({*Name::parse("example."), RRType::NS, RRClass::IN});
  for (char c = 'a'; c <= 'm'; ++c) {
    ResourceRecord rr;
    rr.name = Name();
    rr.type = RRType::NS;
    rr.ttl = 518400;
    rr.rdata = NsData{*Name::parse(std::string(1, c) + ".root-servers.net.")};
    msg.answers.push_back(rr);
  }
  ResourceRecord sig;
  sig.name = Name();
  sig.type = RRType::RRSIG;
  sig.ttl = 518400;
  RrsigData rrsig;
  rrsig.type_covered = RRType::NS;
  rrsig.algorithm = 8;
  rrsig.signer = Name();
  rrsig.signature.assign(64, 0x5a);
  sig.rdata = rrsig;
  msg.answers.push_back(sig);
  msg.add_edns(1232, true);
  return msg;
}

TEST(Mutation, EveryByteFlipHandledGracefully) {
  auto wire = sample_message().encode();
  size_t parsed_ok = 0, parsed_fail = 0;
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (uint8_t bit : {0x01, 0x80}) {
      auto mutated = wire;
      mutated[byte] ^= bit;
      auto message = Message::decode(mutated);
      if (message) {
        ++parsed_ok;
        (void)message->encode();  // must not crash either
      } else {
        ++parsed_fail;
      }
    }
  }
  // Both outcomes must occur: flips in counts/pointers break parsing, flips
  // in rdata payloads survive.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(parsed_fail, 0u);
}

TEST(Mutation, TruncationAtEveryLengthHandled) {
  auto wire = sample_message().encode();
  size_t ok = 0;
  for (size_t length = 0; length < wire.size(); ++length) {
    std::span<const uint8_t> prefix(wire.data(), length);
    if (Message::decode(prefix)) ++ok;
  }
  // Only very specific truncations (cutting whole trailing records AND
  // fixing counts) could parse; with intact counts, none should.
  EXPECT_EQ(ok, 0u);
  // The full message of course parses.
  EXPECT_TRUE(Message::decode(wire).has_value());
}

TEST(Mutation, ZoneFileLineNoiseHandled) {
  std::string base =
      ". IN SOA a.root-servers.net. nstld.verisign-grs.com. 1 2 3 4 5\n"
      ". IN NS a.root-servers.net.\n"
      "com. IN DS 1234 8 2 "
      "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff\n";
  util::Rng rng(99);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string mutated = base;
    size_t position = rng.uniform(mutated.size());
    mutated[position] = static_cast<char>(rng.uniform(256));
    // Must not crash; may or may not parse.
    std::string error;
    auto zone = Zone::parse_master_file(mutated, &error);
    if (!zone) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(Mutation, RoundTripStabilityUnderBenignMutation) {
  // Property: if a mutated message parses, encode(decode(x)) must parse to
  // the same message (the codec is a retraction).
  auto wire = sample_message().encode();
  util::Rng rng(7);
  for (int iteration = 0; iteration < 500; ++iteration) {
    auto mutated = wire;
    mutated[rng.uniform(mutated.size())] ^= static_cast<uint8_t>(1u << rng.uniform(8));
    auto first = Message::decode(mutated);
    if (!first) continue;
    auto second = Message::decode(first->encode());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->id, first->id);
    EXPECT_EQ(second->answers.size(), first->answers.size());
    EXPECT_EQ(second->answers, first->answers);
  }
}

}  // namespace
}  // namespace rootsim::dns
