// Robustness properties of the wire-facing parsers, driven by the fuzz/
// generators: structure-aware mutations of valid messages and handcrafted
// compression-pointer abuse, not just random bytes. The heavy lifting
// (committed corpora + 10k seeded iterations per target) lives in
// fuzz_replay_test; these tests keep the same generators exercised in the
// ordinary dns test suite and pin behaviours with precise assertions.
#include <gtest/gtest.h>

#include "dns/axfr.h"
#include "dns/message.h"
#include "dns/zone.h"
#include "fuzz/generators.h"
#include "util/rng.h"

namespace rootsim::dns {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, RandomBytesNeverCrashDecoders) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    auto bytes = fuzz::random_bytes(rng, 600);
    if (auto message = Message::decode(bytes)) {
      (void)message->encode();
    }
    WireReader reader(bytes);
    Name name = reader.get_name();
    if (reader.ok()) EXPECT_LE(name.wire_length(), 255u);
    (void)decode_axfr_stream(bytes);
  }
}

TEST_P(FuzzSeeds, MutatedValidMessagesNeverCrashDecoder) {
  util::Rng rng(GetParam());
  size_t parsed_ok = 0, parsed_fail = 0;
  for (int iteration = 0; iteration < 400; ++iteration) {
    Message original =
        iteration % 2 ? fuzz::random_response(rng) : fuzz::random_query(rng);
    auto mutated = fuzz::mutate(original.encode(), rng);
    auto message = Message::decode(mutated);
    if (!message) {
      ++parsed_fail;
      continue;
    }
    ++parsed_ok;
    // Retraction property: one more decode/encode trip is a fixpoint.
    auto e1 = message->encode();
    auto reparsed = Message::decode(e1);
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->encode(), e1);
  }
  // Structure-aware mutation must land on both sides of validity; all-pass
  // would mean the mutator is too timid, all-fail too destructive.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(parsed_fail, 0u);
}

TEST_P(FuzzSeeds, MutatedPointerChainsNeverCrashNameDecoder) {
  util::Rng rng(GetParam());
  size_t parsed_ok = 0;
  for (int iteration = 0; iteration < 600; ++iteration) {
    auto chain = fuzz::pointer_chain_name(rng, 1 + rng.uniform(70));
    auto bytes = iteration % 4 == 0 ? chain.bytes
                                    : fuzz::mutate(chain.bytes, rng);
    WireReader reader(bytes);
    reader.seek(std::min(chain.final_name_offset, bytes.size()));
    Name name = reader.get_name();
    if (!reader.ok()) continue;
    ++parsed_ok;
    EXPECT_LE(name.wire_length(), 255u);
    EXPECT_LE(name.label_count(), 127u);
    EXPECT_LE(reader.offset(), bytes.size());
  }
  EXPECT_GT(parsed_ok, 0u);
}

TEST_P(FuzzSeeds, MutatedAxfrStreamsNeverCrashDecoder) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 100; ++iteration) {
    auto zone = fuzz::random_zone(rng, 1 + rng.uniform(3));
    Question question{zone.origin(), RRType::AXFR, RRClass::IN};
    AxfrStreamOptions options;
    options.max_message_bytes = 256 + rng.uniform(1024);
    auto wire = encode_axfr_stream(zone.axfr_records(), question, options);
    auto mutated = fuzz::mutate(wire, rng);
    auto parsed = decode_axfr_stream(mutated);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error->empty());
    }
  }
}

TEST_P(FuzzSeeds, MutatedZoneFilesNeverCrashParser) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 100; ++iteration) {
    auto text = fuzz::random_zone(rng, 1 + rng.uniform(3)).to_master_file();
    std::vector<uint8_t> bytes(text.begin(), text.end());
    bytes = fuzz::mutate(bytes, rng);
    std::string mutated(bytes.begin(), bytes.end());
    std::string error;
    auto zone = Zone::parse_master_file(mutated, &error);
    if (!zone) {
      EXPECT_FALSE(error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Mutation, EveryByteFlipHandledGracefully) {
  util::Rng rng(20240101);
  auto wire = fuzz::random_response(rng).encode();
  size_t parsed_ok = 0, parsed_fail = 0;
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (uint8_t bit : {0x01, 0x80}) {
      auto mutated = wire;
      mutated[byte] ^= bit;
      if (auto message = Message::decode(mutated)) {
        ++parsed_ok;
        (void)message->encode();  // must not crash either
      } else {
        ++parsed_fail;
      }
    }
  }
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(parsed_fail, 0u);
}

TEST(Mutation, TruncationAtEveryLengthHandled) {
  util::Rng rng(20240102);
  auto wire = fuzz::random_response(rng).encode();
  for (size_t length = 0; length < wire.size(); ++length) {
    std::span<const uint8_t> prefix(wire.data(), length);
    // With intact section counts, no strict prefix can parse.
    EXPECT_FALSE(Message::decode(prefix).has_value()) << "length " << length;
  }
  EXPECT_TRUE(Message::decode(wire).has_value());
}

}  // namespace
}  // namespace rootsim::dns
