#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "measure/campaign.h"
#include "scenario/apply.h"
#include "scenario/library.h"
#include "scenario/parser.h"
#include "util/timeutil.h"

// Where the committed .scn files live; injected by tests/CMakeLists.txt so
// the binary finds them regardless of ctest's working directory.
#ifndef ROOTSIM_SCENARIO_DIR
#define ROOTSIM_SCENARIO_DIR "../../examples/scenarios"
#endif

namespace rootsim::scenario {
namespace {

using util::make_time;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ScenarioParser, LibrarySpecsSurviveARoundTrip) {
  for (const ScenarioSpec& spec : library()) {
    ScenarioSpec again;
    std::string error;
    ASSERT_TRUE(parse_scenario(serialize_scenario(spec), &again, &error))
        << spec.name << ": " << error;
    EXPECT_TRUE(again == spec) << spec.name << ": round trip changed the spec";
  }
}

TEST(ScenarioParser, CommittedFilesMatchTheLibrary) {
  // The .scn files in examples/scenarios/ are generated with
  // `scenario_lab --dump`; this pins them to the library so neither can
  // drift without the other.
  for (const ScenarioSpec& spec : library()) {
    std::string text =
        read_file(std::string(ROOTSIM_SCENARIO_DIR) + "/" + spec.name + ".scn");
    ASSERT_FALSE(text.empty()) << spec.name;
    ScenarioSpec parsed;
    std::string error;
    ASSERT_TRUE(parse_scenario(text, &parsed, &error))
        << spec.name << ": " << error;
    EXPECT_TRUE(parsed == spec)
        << spec.name << ".scn is stale — regenerate with scenario_lab --dump";
  }
}

TEST(ScenarioParser, RejectsUnknownDirectiveWithLineNumber) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(parse_scenario("scenario x\nnot-a-directive 1\n", &spec, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ScenarioParser, RejectsMalformedTime) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(parse_scenario(
      "scenario x\nhorizon yesterday 2023-12-24T00:00:00Z\n", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioLibrary, FindScenarioByName) {
  ScenarioSpec spec;
  EXPECT_TRUE(find_scenario("paper-2023", &spec));
  EXPECT_EQ(spec.name, "paper-2023");
  EXPECT_FALSE(find_scenario("no-such-scenario", &spec));
}

TEST(ScenarioLibrary, PaperSpecCarriesTheTimeline) {
  ScenarioSpec spec = paper_2023();
  EXPECT_EQ(spec.horizon.start, make_time(2023, 7, 3));
  EXPECT_EQ(spec.horizon.end, make_time(2023, 12, 24));
  EXPECT_EQ(renumbering_time(spec), make_time(2023, 11, 27));
  EXPECT_EQ(spec.zone.zonemd_private_start, make_time(2023, 9, 13));
  EXPECT_EQ(spec.faults.size(), 66u);  // Table 2 plan
}

TEST(ScenarioLibrary, SmokeVariantIsDeterministicAndShort) {
  for (const ScenarioSpec& spec : library()) {
    ScenarioSpec smoke = smoke_variant(spec);
    EXPECT_TRUE(smoke == smoke_variant(spec)) << spec.name;
    EXPECT_EQ(smoke.name, spec.name + "-smoke");
    EXPECT_GE(smoke.horizon.start, spec.horizon.start) << spec.name;
    EXPECT_LE(smoke.horizon.end, spec.horizon.end) << spec.name;
    EXPECT_LE(smoke.horizon.end - smoke.horizon.start,
              17 * util::kSecondsPerDay)
        << spec.name;
  }
}

// Runs a smoke variant's SLO timeline at a reduced zone scale and returns
// the result (exports + incidents).
measure::SloTimelineResult run_smoke(const ScenarioSpec& smoke, size_t workers,
                                     const char* sched) {
  ::setenv("ROOTSIM_SCHED", sched, 1);
  Applied applied = apply(smoke);
  applied.campaign.zone.tld_count = 25;
  applied.campaign.zone.rsa_modulus_bits = 512;
  applied.slo.workers = workers;
  measure::Campaign campaign(applied.campaign);
  measure::SloTimelineResult result =
      campaign.run_slo_timeline(smoke, applied.slo);
  ::unsetenv("ROOTSIM_SCHED");
  return result;
}

TEST(ScenarioRun, ExportsCarryTheScenarioHeader) {
  ScenarioSpec smoke = smoke_variant(ddos_c_globals());
  measure::SloTimelineResult result = run_smoke(smoke, 1, "static");
  const std::string header = "{\"scenario\":\"ddos-c-globals-smoke\"}\n";
  EXPECT_EQ(result.slo_jsonl.substr(0, header.size()), header);
  EXPECT_EQ(result.incidents_jsonl.substr(0, header.size()), header);
}

TEST(ScenarioRun, DdosIncidentClosesAndIsAttributedAtAnyWorkerCount) {
  ScenarioSpec smoke = smoke_variant(ddos_c_globals());
  // Full worker x scheduler matrix: byte-identical exports, and the scripted
  // DDoS on c.root must open, attribute, and close at every combination.
  measure::SloTimelineResult reference = run_smoke(smoke, 1, "static");
  for (size_t workers : {1u, 2u, 8u}) {
    for (const char* sched : {"static", "worksteal"}) {
      measure::SloTimelineResult result = run_smoke(smoke, workers, sched);
      EXPECT_EQ(result.slo_jsonl, reference.slo_jsonl)
          << workers << " workers, " << sched;
      EXPECT_EQ(result.incidents_jsonl, reference.incidents_jsonl)
          << workers << " workers, " << sched;
      bool attributed = false;
      for (const obs::Incident& incident : result.incidents) {
        if (incident.cause != "ddos-c-globals") continue;
        attributed = true;
        EXPECT_EQ(incident.root, 2u);  // c.root
        EXPECT_EQ(incident.metric, obs::SloMetric::Availability);
        EXPECT_GT(incident.closed, incident.opened);  // closed, not open
      }
      EXPECT_TRUE(attributed) << workers << " workers, " << sched
                              << ": no incident attributed to the DDoS";
    }
  }
}

TEST(ScenarioRun, EveryLibraryScenarioIsWorkerAndScheduleInvariant) {
  // One cross-combination per scenario keeps this cheap; the CI smoke job
  // runs the full matrix through scenario_lab.
  for (const ScenarioSpec& spec : library()) {
    ScenarioSpec smoke = smoke_variant(spec);
    measure::SloTimelineResult serial = run_smoke(smoke, 1, "static");
    measure::SloTimelineResult parallel = run_smoke(smoke, 3, "worksteal");
    EXPECT_EQ(serial.slo_jsonl, parallel.slo_jsonl) << spec.name;
    EXPECT_EQ(serial.incidents_jsonl, parallel.incidents_jsonl) << spec.name;
    EXPECT_GT(serial.windows.size(), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace rootsim::scenario
