#include "traffic/collectors.h"

#include <gtest/gtest.h>

#include "analysis/traffic_report.h"

namespace rootsim::traffic {
namespace {

using util::make_time;

const util::UnixTime kChange = make_time(2023, 11, 27);

PassiveCollector make_isp_collector(size_t clients = 6000) {
  PopulationConfig population = isp_population_config();
  population.clients = clients;
  return PassiveCollector(generate_population(population),
                          isp_collector_config(), kChange);
}

TEST(Collectors, DailyBucketsCoverWindow) {
  auto collector = make_isp_collector(1500);
  auto days = collector.collect(make_time(2024, 2, 5), make_time(2024, 2, 12));
  EXPECT_EQ(days.size(), 7u);
  for (const auto& day : days) {
    EXPECT_GT(day.total_flows(), 0);
    EXPECT_EQ(day.day, util::day_start(day.day));
  }
}

TEST(Collectors, SharesSumToOne) {
  auto collector = make_isp_collector(1500);
  auto days = collector.collect(make_time(2024, 2, 5), make_time(2024, 2, 8));
  for (const auto& day : days) {
    double sum = 0;
    for (const auto& [key, flows] : day.flows) sum += day.share(key);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Collectors, BeforeChangeOldSubnetDominatesBroot) {
  auto collector = make_isp_collector();
  auto days = collector.collect(make_time(2023, 10, 8), make_time(2023, 10, 9));
  auto shares = analysis::broot_shares(days);
  ASSERT_EQ(shares.size(), 1u);
  // Paper 2023-10-08: old subnets carry 76.1-88.9% (v4) + 10-21% (v6);
  // new subnets only ~0.8%.
  EXPECT_GT(shares[0].v4_old, 0.6);
  EXPECT_GT(shares[0].v6_old, 0.05);
  EXPECT_LT(shares[0].v4_new + shares[0].v6_new, 0.03);
}

TEST(Collectors, AfterChangeNewV4Dominates) {
  auto collector = make_isp_collector();
  auto days = collector.collect(make_time(2024, 2, 5), make_time(2024, 3, 4));
  auto shares = analysis::broot_shares(days);
  double v4_new = 0, v4_old = 0, v6_new = 0, v6_old = 0;
  for (const auto& s : shares) {
    v4_new += s.v4_new;
    v4_old += s.v4_old;
    v6_new += s.v6_new;
    v6_old += s.v6_old;
  }
  v4_new /= shares.size();
  v4_old /= shares.size();
  v6_new /= shares.size();
  v6_old /= shares.size();
  // Paper: new v4 76.2%, old v4 11.3%, new v6 12.0% (old v6 small).
  EXPECT_GT(v4_new, 0.55);
  EXPECT_LT(v4_old, 0.25);
  EXPECT_GT(v4_old, 0.02);
  EXPECT_GT(v6_new, 0.04);
  EXPECT_LT(v6_old, v6_new);
}

TEST(Collectors, IspShiftRatiosMatchPaper) {
  auto collector = make_isp_collector(20000);
  auto days = collector.collect(make_time(2024, 2, 5), make_time(2024, 3, 4));
  auto ratio = analysis::shift_ratio(days);
  // Paper §6: 87.1% of IPv4 and 96.3% of IPv6 traffic shifted.
  EXPECT_NEAR(ratio.v4, 0.871, 0.05);
  EXPECT_NEAR(ratio.v6, 0.963, 0.03);
  EXPECT_GT(ratio.v6, ratio.v4);
}

TEST(Collectors, IxpRegionalEagernessSplit) {
  PopulationConfig eu_pop = ixp_population_config_eu();
  eu_pop.clients = 12000;
  PopulationConfig na_pop = ixp_population_config_na();
  na_pop.clients = 12000;
  PassiveCollector eu(generate_population(eu_pop), ixp_collector_config_eu(),
                      kChange);
  PassiveCollector na(generate_population(na_pop), ixp_collector_config_na(),
                      kChange);
  auto eu_days = eu.collect(make_time(2023, 12, 8), make_time(2023, 12, 22));
  auto na_days = na.collect(make_time(2023, 12, 8), make_time(2023, 12, 22));
  auto eu_ratio = analysis::shift_ratio(eu_days);
  auto na_ratio = analysis::shift_ratio(na_days);
  // Paper: Europe 60.8% vs North America 16.5% of IPv6 traffic shifted.
  EXPECT_NEAR(eu_ratio.v6, 0.608, 0.10);
  EXPECT_NEAR(na_ratio.v6, 0.165, 0.08);
  EXPECT_GT(eu_ratio.v6, na_ratio.v6 + 0.2);
}

TEST(Collectors, IxpMixDominatedByKandD) {
  PopulationConfig pop = ixp_population_config_eu();
  pop.clients = 5000;
  PassiveCollector ixp(generate_population(pop), ixp_collector_config_eu(),
                       kChange);
  auto days = ixp.collect(make_time(2023, 11, 1), make_time(2023, 11, 8));
  auto shares = analysis::root_shares(days);
  // k.root and d.root together carry the plurality (paper Fig. 13).
  double k_share = shares.share[10], d_share = shares.share[3];
  EXPECT_GT(k_share + d_share, 0.35);
  for (size_t root = 0; root < 13; ++root)
    if (root != 10 && root != 3) EXPECT_LT(shares.share[root], k_share);
}

TEST(Collectors, BrootTotalShareStableAcrossChange) {
  // Paper Fig. 12: b.root 4.90% before vs 4.46% after — the address change
  // does not change b.root's overall popularity.
  auto collector = make_isp_collector();
  auto before = analysis::root_shares(
      collector.collect(make_time(2023, 10, 7), make_time(2023, 10, 9)));
  auto after = analysis::root_shares(
      collector.collect(make_time(2024, 2, 9), make_time(2024, 2, 16)));
  EXPECT_NEAR(before.share[1], 0.049, 0.02);
  EXPECT_NEAR(after.share[1], before.share[1], 0.015);
}

TEST(Collectors, ClientFlowRecordsExposePrimingSignal) {
  auto collector = make_isp_collector(8000);
  auto records = collector.collect_client_flows(make_time(2024, 2, 5),
                                                make_time(2024, 2, 12));
  ASSERT_FALSE(records.empty());
  auto cdfs = analysis::client_flow_cdfs(records, 7);
  const analysis::ClientFlowCdf* old_v6 = nullptr;
  const analysis::ClientFlowCdf* new_v6 = nullptr;
  for (const auto& cdf : cdfs) {
    if (cdf.subnet.root_index != 1) continue;
    if (cdf.subnet.family != util::IpFamily::V6) continue;
    if (cdf.subnet.old_b_subnet) old_v6 = &cdf;
    else new_v6 = &cdf;
  }
  ASSERT_NE(old_v6, nullptr);
  ASSERT_NE(new_v6, nullptr);
  // Fig. 8: the old b.root v6 subnet sees far more single-contact clients
  // (priming touches) than the new subnet.
  EXPECT_GT(old_v6->single_contact_fraction,
            new_v6->single_contact_fraction + 0.2);
}

TEST(Collectors, DeterministicCollection) {
  auto collector_a = make_isp_collector(1000);
  auto collector_b = make_isp_collector(1000);
  auto days_a = collector_a.collect(make_time(2024, 2, 5), make_time(2024, 2, 7));
  auto days_b = collector_b.collect(make_time(2024, 2, 5), make_time(2024, 2, 7));
  ASSERT_EQ(days_a.size(), days_b.size());
  for (size_t i = 0; i < days_a.size(); ++i)
    EXPECT_EQ(days_a[i].flows, days_b[i].flows);
}

}  // namespace
}  // namespace rootsim::traffic
