#include "util/ip.h"

#include <gtest/gtest.h>

namespace rootsim::util {
namespace {

TEST(IpAddress, V4RoundTrip) {
  auto ip = IpAddress::v4(198, 41, 0, 4);  // a.root
  EXPECT_EQ(ip.to_string(), "198.41.0.4");
  EXPECT_TRUE(ip.is_v4());
  EXPECT_EQ(ip.byte_length(), 4u);
  EXPECT_EQ(ip.v4_value(), 0xC6290004u);
}

TEST(IpAddress, V4FromHostOrder) {
  auto ip = IpAddress::v4(0xC0000201u);
  EXPECT_EQ(ip.to_string(), "192.0.2.1");
}

TEST(IpAddress, ParseV4) {
  auto ip = IpAddress::parse("199.9.14.201");  // old b.root
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->to_string(), "199.9.14.201");
}

TEST(IpAddress, ParseV4Invalid) {
  EXPECT_FALSE(IpAddress::parse("256.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4 ").has_value());
}

struct V6Case {
  const char* input;
  const char* canonical;
};

class V6ParseFormat : public ::testing::TestWithParam<V6Case> {};

TEST_P(V6ParseFormat, RoundTrips) {
  const auto& c = GetParam();
  auto ip = IpAddress::parse(c.input);
  ASSERT_TRUE(ip.has_value()) << c.input;
  EXPECT_TRUE(ip->is_v6());
  EXPECT_EQ(ip->to_string(), c.canonical);
  // Canonical text parses back to the same address.
  auto again = IpAddress::parse(ip->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *ip);
}

INSTANTIATE_TEST_SUITE_P(
    RootServerAddresses, V6ParseFormat,
    ::testing::Values(
        V6Case{"2001:503:ba3e::2:30", "2001:503:ba3e::2:30"},    // a.root
        V6Case{"2001:500:200::b", "2001:500:200::b"},            // b.root old
        V6Case{"2801:1b8:10::b", "2801:1b8:10::b"},              // b.root new
        V6Case{"2001:500:2::c", "2001:500:2::c"},                // c.root
        V6Case{"2001:7fd::1", "2001:7fd::1"},                    // k.root
        V6Case{"2001:dc3::35", "2001:dc3::35"},                  // m.root
        V6Case{"2001:0503:BA3E:0000:0000:0000:0002:0030", "2001:503:ba3e::2:30"},
        V6Case{"::", "::"}, V6Case{"::1", "::1"}, V6Case{"1::", "1::"},
        V6Case{"0:0:0:0:0:0:0:1", "::1"},
        V6Case{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
        V6Case{"fe80:0:0:0:0:0:0:0", "fe80::"}));

TEST(IpAddress, ParseV6Invalid) {
  EXPECT_FALSE(IpAddress::parse(":::").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("2001::db8::1").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
  EXPECT_FALSE(IpAddress::parse("g::1").has_value());
  // "::" present but all 8 groups already specified.
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8::").has_value());
}

TEST(IpAddress, OrderingGroupsByFamily) {
  auto v4 = IpAddress::v4(255, 255, 255, 255);
  auto v6 = *IpAddress::parse("::1");
  EXPECT_LT(v4, v6);  // all v4 sort before all v6
}

TEST(Prefix, MasksHostBits) {
  auto ip = *IpAddress::parse("192.0.2.77");
  Prefix p(ip, 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_TRUE(p.contains(ip));
  EXPECT_TRUE(p.contains(*IpAddress::parse("192.0.2.255")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("192.0.3.0")));
}

TEST(Prefix, NonOctetAlignedLength) {
  auto ip = *IpAddress::parse("10.255.255.255");
  Prefix p(ip, 12);
  EXPECT_EQ(p.to_string(), "10.240.0.0/12");
  EXPECT_TRUE(p.contains(*IpAddress::parse("10.250.1.1")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("10.128.0.0")));
}

TEST(Prefix, PrivacyAggregation) {
  // The paper normalizes client IPs to /24 (v4) and /48 (v6).
  auto v4 = Prefix::privacy_prefix_of(*IpAddress::parse("203.0.113.99"));
  EXPECT_EQ(v4.to_string(), "203.0.113.0/24");
  auto v6 = Prefix::privacy_prefix_of(*IpAddress::parse("2001:db8:abcd:12:34::1"));
  EXPECT_EQ(v6.to_string(), "2001:db8:abcd::/48");
}

TEST(Prefix, ParseAndCrossFamilyContains) {
  auto p = Prefix::parse("2001:500:200::/48");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 48);
  EXPECT_TRUE(p->contains(*IpAddress::parse("2001:500:200::b")));
  EXPECT_FALSE(p->contains(*IpAddress::parse("199.9.14.201")));  // wrong family
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4").has_value());
  EXPECT_FALSE(Prefix::parse("::/129").has_value());
}

TEST(Prefix, V4LengthClamped) {
  Prefix p(IpAddress::v4(1, 2, 3, 4), 40);
  EXPECT_EQ(p.length(), 32);
}

}  // namespace
}  // namespace rootsim::util
