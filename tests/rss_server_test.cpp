#include "rss/server.h"

#include <gtest/gtest.h>

#include "dnssec/validator.h"

namespace rootsim::rss {
namespace {

using util::make_time;

struct Fixture {
  RootCatalog catalog;
  ZoneAuthorityConfig config;
  std::unique_ptr<ZoneAuthority> authority;
  std::unique_ptr<RootServerInstance> instance;

  Fixture() {
    config.tld_count = 25;
    config.rsa_modulus_bits = 512;
    authority = std::make_unique<ZoneAuthority>(catalog, config);
    instance = std::make_unique<RootServerInstance>(*authority, catalog, 5,
                                                    "eu01.f.root-servers.org");
  }
};

dns::Message query(const char* qname, dns::RRType qtype,
                   dns::RRClass qclass = dns::RRClass::IN, bool dnssec = false) {
  return dns::make_query(1234, *dns::Name::parse(qname), qtype, qclass, dnssec);
}

TEST(RootServer, AnswersRootNsAuthoritatively) {
  Fixture f;
  dns::Message response =
      f.instance->handle_query(query(".", dns::RRType::NS), make_time(2023, 10, 1));
  EXPECT_TRUE(response.qr);
  EXPECT_TRUE(response.aa);
  EXPECT_EQ(response.rcode, dns::Rcode::NoError);
  EXPECT_EQ(response.answers.size(), 13u);
}

TEST(RootServer, AnswersSoaWithCurrentSerial) {
  Fixture f;
  util::UnixTime now = make_time(2023, 10, 8, 14, 0);
  dns::Message response = f.instance->handle_query(query(".", dns::RRType::SOA), now);
  ASSERT_EQ(response.answers.size(), 1u);
  const auto& soa = std::get<dns::SoaData>(response.answers[0].rdata);
  EXPECT_EQ(soa.serial, f.authority->serial_at(now));
}

TEST(RootServer, HostnameBindReturnsIdentity) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("hostname.bind.", dns::RRType::TXT, dns::RRClass::CH),
      make_time(2023, 10, 1));
  ASSERT_EQ(response.answers.size(), 1u);
  const auto& txt = std::get<dns::TxtData>(response.answers[0].rdata);
  ASSERT_EQ(txt.strings.size(), 1u);
  EXPECT_EQ(txt.strings[0], "eu01.f.root-servers.org");
  EXPECT_EQ(response.answers[0].rclass, dns::RRClass::CH);
  // id.server gives the same answer.
  dns::Message id_response = f.instance->handle_query(
      query("id.server.", dns::RRType::TXT, dns::RRClass::CH),
      make_time(2023, 10, 1));
  EXPECT_EQ(std::get<dns::TxtData>(id_response.answers[0].rdata).strings[0],
            "eu01.f.root-servers.org");
}

TEST(RootServer, VersionBindReturnsBanner) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("version.bind.", dns::RRType::TXT, dns::RRClass::CH),
      make_time(2023, 10, 1));
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_FALSE(
      std::get<dns::TxtData>(response.answers[0].rdata).strings[0].empty());
}

TEST(RootServer, UnknownChaosQueryRefused) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("nonsense.bind.", dns::RRType::TXT, dns::RRClass::CH),
      make_time(2023, 10, 1));
  EXPECT_EQ(response.rcode, dns::Rcode::Refused);
}

TEST(RootServer, TldQueryGivesReferral) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("com.", dns::RRType::NS), make_time(2023, 10, 1));
  // Delegation data is non-authoritative.
  EXPECT_FALSE(response.aa);
  EXPECT_EQ(response.rcode, dns::Rcode::NoError);
  EXPECT_FALSE(response.answers.empty());
}

TEST(RootServer, BelowDelegationGivesReferralToTld) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("www.example.com.", dns::RRType::A), make_time(2023, 10, 1));
  EXPECT_FALSE(response.aa);
  EXPECT_EQ(response.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.answers.empty());
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].name, *dns::Name::parse("com."));
  EXPECT_EQ(response.authority[0].type, dns::RRType::NS);
}

TEST(RootServer, NxDomainForUnknownTld) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query("definitely-not-a-tld-xyzq.", dns::RRType::A), make_time(2023, 10, 1));
  EXPECT_EQ(response.rcode, dns::Rcode::NxDomain);
  EXPECT_TRUE(response.aa);
  // SOA in authority for negative caching.
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, dns::RRType::SOA);
}

TEST(RootServer, NodataForExistingNameWrongType) {
  Fixture f;
  dns::Message response = f.instance->handle_query(
      query(".", dns::RRType::MX), make_time(2023, 10, 1));
  EXPECT_EQ(response.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(response.answers.empty());
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, dns::RRType::SOA);
}

TEST(RootServer, DnssecOkAttachesRrsigs) {
  Fixture f;
  util::UnixTime now = make_time(2023, 10, 1);
  dns::Message plain = f.instance->handle_query(query(".", dns::RRType::NS), now);
  dns::Message with_do = f.instance->handle_query(
      query(".", dns::RRType::NS, dns::RRClass::IN, /*dnssec=*/true), now);
  auto count_rrsigs = [](const dns::Message& m) {
    size_t count = 0;
    for (const auto& rr : m.answers)
      if (rr.type == dns::RRType::RRSIG) ++count;
    return count;
  };
  EXPECT_EQ(count_rrsigs(plain), 0u);
  EXPECT_GE(count_rrsigs(with_do), 1u);
}

TEST(RootServer, EmptyQuestionIsFormErr) {
  Fixture f;
  dns::Message empty;
  dns::Message response = f.instance->handle_query(empty, make_time(2023, 10, 1));
  EXPECT_EQ(response.rcode, dns::Rcode::FormErr);
}

TEST(RootServer, AxfrServesFullZone) {
  Fixture f;
  util::UnixTime now = make_time(2023, 10, 1);
  auto records = f.instance->handle_axfr(now);
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records.front().type, dns::RRType::SOA);
  EXPECT_EQ(records.back().type, dns::RRType::SOA);
  auto zone = dns::Zone::from_axfr(records, dns::Name());
  ASSERT_TRUE(zone.has_value());
  EXPECT_EQ(zone->serial(), f.authority->serial_at(now));
}

TEST(RootServer, AxfrRefusalWhenDisabled) {
  Fixture f;
  InstanceBehavior behavior;
  behavior.allow_axfr = false;
  RootServerInstance strict(*f.authority, f.catalog, 6, "na01.g", behavior);
  EXPECT_TRUE(strict.handle_axfr(make_time(2023, 10, 1)).empty());
}

TEST(RootServer, FrozenInstanceServesStaleZone) {
  // The paper's stale d.root sites: expired signatures weeks later.
  Fixture f;
  InstanceBehavior behavior;
  behavior.frozen_at = make_time(2023, 7, 28);
  RootServerInstance stale(*f.authority, f.catalog, 3, "as01.d", behavior);
  util::UnixTime query_time = make_time(2023, 8, 16, 10, 0);
  auto records = stale.handle_axfr(query_time);
  auto zone = dns::Zone::from_axfr(records, dns::Name());
  ASSERT_TRUE(zone.has_value());
  EXPECT_EQ(zone->serial(), f.authority->serial_at(make_time(2023, 7, 28)));
  // Validating at the (later) query time: signatures have expired.
  auto result = dnssec::validate_zone(*zone, f.authority->trust_anchors(),
                                      query_time);
  EXPECT_EQ(result.dominant_failure(),
            dnssec::ValidationStatus::SignatureExpired);
}

}  // namespace
}  // namespace rootsim::rss
