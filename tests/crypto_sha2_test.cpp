#include "crypto/sha2.h"

#include <gtest/gtest.h>

#include "crypto/encoding.h"

namespace rootsim::crypto {
namespace {

// NIST FIPS 180-4 example vectors.
TEST(Sha256, NistVectors) {
  EXPECT_EQ(to_hex(sha256_str("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256_str("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(sha256_str("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha384, NistVectors) {
  EXPECT_EQ(to_hex(sha384_str("abc")),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
  EXPECT_EQ(to_hex(sha384_str("")),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da"
            "274edebfe76f65fbd51ad2f14898b95b");
}

TEST(Sha512, NistVectors) {
  EXPECT_EQ(to_hex(sha512_str("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(to_hex(sha512_str("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto digest = h.finish();
  EXPECT_EQ(to_hex({digest.data(), digest.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha2, IncrementalEqualsOneShot) {
  // Property: splitting the input at any point yields the same digest.
  std::string msg = "The quick brown fox jumps over the lazy dog. 0123456789"
                    "abcdefghijklmnopqrstuvwxyz. The roots go deep.";
  auto whole = sha384_str(msg);
  for (size_t cut = 0; cut <= msg.size(); cut += 7) {
    Sha384 h;
    h.update({reinterpret_cast<const uint8_t*>(msg.data()), cut});
    h.update({reinterpret_cast<const uint8_t*>(msg.data()) + cut, msg.size() - cut});
    auto digest = h.finish();
    EXPECT_EQ(std::vector<uint8_t>(digest.begin(), digest.end()), whole);
  }
}

class Sha256BoundaryLengths : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256BoundaryLengths, PaddingBoundariesConsistent) {
  // Lengths straddling the 55/56/64-byte padding boundaries must agree between
  // a one-shot hash and byte-at-a-time updates.
  size_t len = GetParam();
  std::vector<uint8_t> data(len);
  for (size_t i = 0; i < len; ++i) data[i] = static_cast<uint8_t>(i * 31 + 7);
  auto oneshot = sha256(data);
  Sha256 h;
  for (uint8_t b : data) h.update({&b, 1});
  auto digest = h.finish();
  EXPECT_EQ(std::vector<uint8_t>(digest.begin(), digest.end()), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256BoundaryLengths,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128, 129, 1000));

class Sha512BoundaryLengths : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha512BoundaryLengths, PaddingBoundariesConsistent) {
  size_t len = GetParam();
  std::vector<uint8_t> data(len);
  for (size_t i = 0; i < len; ++i) data[i] = static_cast<uint8_t>(i * 17 + 3);
  auto oneshot = sha512(data);
  Sha512 h;
  for (uint8_t b : data) h.update({&b, 1});
  auto digest = h.finish();
  EXPECT_EQ(std::vector<uint8_t>(digest.begin(), digest.end()), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha512BoundaryLengths,
                         ::testing::Values(0, 1, 110, 111, 112, 113, 127, 128,
                                           129, 255, 256, 257));

TEST(Sha2, DigestSizes) {
  EXPECT_EQ(sha256_str("x").size(), 32u);
  EXPECT_EQ(sha384_str("x").size(), 48u);
  EXPECT_EQ(sha512_str("x").size(), 64u);
}

TEST(Sha2, SingleBitChangeDiffuses) {
  // A one-bit flip (the paper's Fig. 10 bitflip) must change the digest --
  // this is exactly why ZONEMD catches in-transit corruption.
  std::vector<uint8_t> a(100, 0x42), b(100, 0x42);
  b[50] ^= 0x20;  // 'M' -> 'm' style flip, as in the observed RRSIG bitflip
  EXPECT_NE(sha384(a), sha384(b));
  auto da = sha384(a), db = sha384(b);
  int differing_bits = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    differing_bits += __builtin_popcount(static_cast<unsigned>(da[i] ^ db[i]));
  }
  // Avalanche: expect roughly half the 384 bits to differ.
  EXPECT_GT(differing_bits, 120);
  EXPECT_LT(differing_bits, 264);
}

}  // namespace
}  // namespace rootsim::crypto
