#include "resolver/priming.h"

#include <gtest/gtest.h>

#include "scenario/apply.h"

namespace rootsim::resolver {
namespace {

using util::make_time;

const measure::Campaign& test_campaign() {
  static const measure::Campaign* campaign = [] {
    // The paper timeline (this file asserts the b.root renumbering dates).
    measure::CampaignConfig config = scenario::paper_campaign_config();
    config.zone.tld_count = 25;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.05;
    return new measure::Campaign(config);
  }();
  return *campaign;
}

PrimingResolver make_resolver(PrimingConfig config = {},
                              util::UnixTime hints_as_of = make_time(2020, 1, 1)) {
  return PrimingResolver(
      test_campaign(), test_campaign().vantage_points()[0],
      builtin_hints(test_campaign().catalog(), hints_as_of), config);
}

TEST(Priming, HintsReflectTheirEra) {
  const auto& catalog = test_campaign().catalog();
  auto old_hints = builtin_hints(catalog, make_time(2020, 1, 1));
  auto new_hints = builtin_hints(catalog, make_time(2024, 3, 1));
  ASSERT_EQ(old_hints.size(), 13u);
  ASSERT_EQ(new_hints.size(), 13u);
  EXPECT_EQ(old_hints[1].ipv4->to_string(), "199.9.14.201");   // old b
  EXPECT_EQ(new_hints[1].ipv4->to_string(), "170.247.170.2");  // new b
  EXPECT_EQ(old_hints[0].ipv4->to_string(), "198.41.0.4");     // a unchanged
  EXPECT_EQ(new_hints[0].ipv4->to_string(), "198.41.0.4");
}

TEST(Priming, PrimingLearnsNewBrootAddress) {
  // A resolver with a 2020 hints file primes after the renumbering and must
  // learn b.root's new address from the zone.
  auto resolver = make_resolver();
  util::UnixTime after_change = make_time(2023, 12, 1, 12, 0);
  EXPECT_EQ(resolver.address_of('b', util::IpFamily::V4)->to_string(),
            "199.9.14.201");
  EXPECT_TRUE(resolver.ensure_primed(after_change));
  EXPECT_TRUE(resolver.ever_primed());
  EXPECT_EQ(resolver.address_of('b', util::IpFamily::V4)->to_string(),
            "170.247.170.2");
  EXPECT_EQ(resolver.address_of('b', util::IpFamily::V6)->to_string(),
            "2801:1b8:10::b");
}

TEST(Priming, PrimingBeforeChangeKeepsOldAddress) {
  auto resolver = make_resolver();
  util::UnixTime before_change = make_time(2023, 10, 1, 12, 0);
  EXPECT_TRUE(resolver.ensure_primed(before_change));
  EXPECT_EQ(resolver.address_of('b', util::IpFamily::V4)->to_string(),
            "199.9.14.201");
}

TEST(Priming, NonPrimingResolverKeepsHintsForever) {
  PrimingConfig config;
  config.primes = false;
  auto resolver = make_resolver(config);
  util::UnixTime long_after = make_time(2024, 4, 1);
  EXPECT_FALSE(resolver.ensure_primed(long_after));
  EXPECT_FALSE(resolver.ever_primed());
  // Thirteen-years-of-old-j-root behaviour: still the hints-file address.
  EXPECT_EQ(resolver.address_of('b', util::IpFamily::V4)->to_string(),
            "199.9.14.201");
  EXPECT_EQ(resolver.priming_queries_sent(), 0u);
}

TEST(Priming, RefreshIntervalRespected) {
  auto resolver = make_resolver();
  util::UnixTime t0 = make_time(2023, 12, 1, 0, 0);
  EXPECT_TRUE(resolver.ensure_primed(t0));
  // Within the NS TTL: no re-prime.
  EXPECT_FALSE(resolver.ensure_primed(t0 + 3600));
  EXPECT_FALSE(resolver.ensure_primed(t0 + 518400 - 1));
  // Past the TTL: re-prime.
  EXPECT_TRUE(resolver.ensure_primed(t0 + 518400 + 1));
  EXPECT_EQ(resolver.priming_queries_sent(), 2u);
}

TEST(Priming, AllThirteenRootsLearned) {
  auto resolver = make_resolver();
  ASSERT_TRUE(resolver.ensure_primed(make_time(2023, 12, 10)));
  const auto& catalog = test_campaign().catalog();
  for (char letter = 'a'; letter <= 'm'; ++letter) {
    auto v4 = resolver.address_of(letter, util::IpFamily::V4);
    auto v6 = resolver.address_of(letter, util::IpFamily::V6);
    ASSERT_TRUE(v4.has_value()) << letter;
    ASSERT_TRUE(v6.has_value()) << letter;
    EXPECT_EQ(*v4, catalog.by_letter(letter).ipv4) << letter;
    EXPECT_EQ(*v6, catalog.by_letter(letter).ipv6) << letter;
  }
}

TEST(Priming, NextTargetRoundRobinsAndPrimes) {
  PrimingConfig config;
  config.preferred_family = util::IpFamily::V6;
  auto resolver = make_resolver(config);
  util::UnixTime now = make_time(2023, 12, 10);
  std::set<std::string> seen;
  for (int i = 0; i < 13; ++i) {
    auto target = resolver.next_target(now);
    ASSERT_TRUE(target.has_value());
    EXPECT_TRUE(target->is_v6());
    seen.insert(target->to_string());
  }
  EXPECT_EQ(seen.size(), 13u);  // all roots hit once per cycle
  EXPECT_TRUE(resolver.ever_primed());
}

TEST(Priming, PrimedOldAddressTouchIsTheFig8Signal) {
  // After the change, a priming resolver's only contact with the old subnet
  // is the priming exchange itself (when hints still point there).
  auto resolver = make_resolver();  // 2020 hints: b -> old address
  util::UnixTime after = make_time(2023, 12, 1);
  size_t before_queries = resolver.priming_queries_sent();
  resolver.ensure_primed(after);
  EXPECT_EQ(resolver.priming_queries_sent(), before_queries + 1);
  // From now on, all traffic goes to learned (new) addresses.
  for (int i = 0; i < 13; ++i) {
    auto target = resolver.next_target(after + 60);
    ASSERT_TRUE(target.has_value());
    EXPECT_NE(target->to_string(), "199.9.14.201");
  }
}

}  // namespace
}  // namespace rootsim::resolver
