// Capstone integration test: one campaign, every analysis, and the
// cross-analysis consistency properties that must hold between them.
#include <gtest/gtest.h>

#include "analysis/colocation.h"
#include "analysis/coverage.h"
#include "analysis/distance.h"
#include "analysis/propagation.h"
#include "analysis/rtt.h"
#include "analysis/stability.h"
#include "analysis/zonemd_report.h"
#include "localroot/local_root.h"

namespace rootsim {
namespace {

const measure::Campaign& campaign() {
  static const measure::Campaign* instance = [] {
    measure::CampaignConfig config;
    config.zone.tld_count = 30;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.2;
    return new measure::Campaign(config);
  }();
  return *instance;
}

TEST(Pipeline, CoverageObservedSitesAreRealSites) {
  auto coverage = analysis::compute_coverage(campaign());
  for (uint32_t site_id : coverage.observed_sites)
    ASSERT_LT(site_id, campaign().topology().sites.size());
  // Every root has at least one observed site (all are queried every round).
  std::array<bool, rss::kRootCount> seen{};
  for (uint32_t site_id : coverage.observed_sites)
    seen[campaign().topology().sites[site_id].root_index] = true;
  for (size_t root = 0; root < rss::kRootCount; ++root)
    EXPECT_TRUE(seen[root]) << static_cast<char>('a' + root);
}

TEST(Pipeline, StabilityAndCoverageAgreeOnMultiSiteObservation) {
  // A VP whose (root, family) stream records >= 1 change necessarily
  // observed >= 2 sites of that root; coverage must therefore include the
  // secondary site of a churny selection.
  const auto& router = campaign().router();
  auto coverage = analysis::compute_coverage(campaign());
  size_t checked = 0;
  for (const auto& vp : campaign().vantage_points()) {
    auto selection = router.prepare_selection(vp.view, 6, util::IpFamily::V6);
    if (selection.primary_site == selection.secondary_site) continue;
    // Sample a few rounds; if the secondary ever appears, coverage must
    // have it too (coverage samples rounds the same way).
    for (size_t s = 0; s < 64; ++s) {
      uint64_t round = (s * 997) % campaign().schedule().round_count();
      uint32_t site = netsim::AnycastRouter::site_at_round(selection, round);
      if (site == selection.secondary_site) {
        EXPECT_TRUE(coverage.observed_sites.count(site))
            << "secondary site observed by stability but not coverage";
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Pipeline, DistanceAndRttAreCoherent) {
  // For every VP, the RTT of the selected site must be at least the fiber
  // RTT of the *closest* global site (physics lower bound), except detour
  // fast-paths which are calibrated distributions (still positive).
  auto distance_v4 = analysis::compute_distance(campaign(), 5, util::IpFamily::V4);
  const auto& router = campaign().router();
  size_t i = 0;
  for (const auto& vp : campaign().vantage_points()) {
    const auto& sample = distance_v4.samples[i++];
    EXPECT_EQ(sample.vp_id, vp.view.vp_id);
    netsim::RouteResult route = router.route(vp.view, 5, util::IpFamily::V4);
    if (!route.via_detour) {
      EXPECT_GE(route.rtt_ms + 1e-9, util::fiber_rtt_ms(sample.actual_km) *
                                         0.99);
    }
    EXPECT_GT(route.rtt_ms, 0);
  }
}

TEST(Pipeline, ColocationBoundedByDeploymentReality) {
  auto colocation = analysis::compute_colocation(campaign());
  // Max cluster cannot exceed the most roots hosted at any one facility.
  std::map<netsim::FacilityId, std::set<uint32_t>> roots_at;
  for (const auto& site : campaign().topology().sites)
    roots_at[site.facility].insert(site.root_index);
  size_t max_cohosted = 0;
  for (const auto& [facility, roots] : roots_at)
    max_cohosted = std::max(max_cohosted, roots.size());
  EXPECT_LE(static_cast<size_t>(colocation.max_colocated_roots), max_cohosted);
}

TEST(Pipeline, AuditVerdictsConsistentWithZonemdTimeline) {
  auto observations = campaign().run_zone_audit(60);
  auto zonemd_verifiable_from = util::make_time(2023, 12, 6, 20, 30);
  auto zonemd_present_from = util::make_time(2023, 9, 13);
  for (const auto& obs : observations) {
    if (obs.verdict != dnssec::ValidationStatus::Valid) continue;
    // Clean transfers' ZONEMD status must match the rollout stage at the
    // SERVED serial's time (stale servers can lag the probe time).
    util::UnixTime serial_era = obs.when;
    if (obs.zonemd == dnssec::ZonemdStatus::Verified)
      EXPECT_GE(serial_era, zonemd_verifiable_from)
          << util::format_datetime(obs.when);
    if (obs.zonemd == dnssec::ZonemdStatus::NoZonemd &&
        obs.table2_vp_id == 0)
      EXPECT_LT(serial_era, zonemd_present_from + util::kSecondsPerDay)
          << util::format_datetime(obs.when);
  }
}

TEST(Pipeline, LocalRootServesWhatTheProberTransfers) {
  // The local root's accepted copy equals the zone a direct probe returns.
  localroot::LocalRootService service(campaign(),
                                      campaign().vantage_points()[0]);
  util::UnixTime now = util::make_time(2023, 12, 10, 9, 0);
  ASSERT_TRUE(service.refresh(now).success);
  auto probe = campaign().prober().probe(
      campaign().vantage_points()[0], campaign().catalog().server(1).ipv6, now,
      campaign().schedule().round_at(now));
  auto direct = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*service.zone(), *direct);
}

TEST(Pipeline, PropagationDelaysWithinSearchWindow) {
  analysis::PropagationOptions options;
  options.max_instances_per_root = 4;
  auto report = analysis::measure_soa_propagation(
      campaign(), util::make_time(2023, 9, 20, 12, 0), options);
  for (const auto& row : report.per_root)
    for (double delay : row.delays_s) {
      EXPECT_GE(delay, 0);
      EXPECT_LE(delay, static_cast<double>(options.search_window_s));
    }
}

}  // namespace
}  // namespace rootsim
