// Capstone integration test: one campaign, every analysis, and the
// cross-analysis consistency properties that must hold between them.
#include <gtest/gtest.h>

#include "analysis/colocation.h"
#include "analysis/coverage.h"
#include "analysis/distance.h"
#include "analysis/propagation.h"
#include "analysis/rtt.h"
#include "analysis/stability.h"
#include "analysis/zonemd_report.h"
#include "localroot/local_root.h"
#include "obs/report.h"
#include "util/strings.h"

namespace rootsim {
namespace {

const measure::Campaign& campaign() {
  static const measure::Campaign* instance = [] {
    measure::CampaignConfig config;
    config.zone.tld_count = 30;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.2;
    return new measure::Campaign(config);
  }();
  return *instance;
}

TEST(Pipeline, CoverageObservedSitesAreRealSites) {
  auto coverage = analysis::compute_coverage(campaign());
  for (uint32_t site_id : coverage.observed_sites)
    ASSERT_LT(site_id, campaign().topology().sites.size());
  // Every root has at least one observed site (all are queried every round).
  std::array<bool, rss::kRootCount> seen{};
  for (uint32_t site_id : coverage.observed_sites)
    seen[campaign().topology().sites[site_id].root_index] = true;
  for (size_t root = 0; root < rss::kRootCount; ++root)
    EXPECT_TRUE(seen[root]) << static_cast<char>('a' + root);
}

TEST(Pipeline, StabilityAndCoverageAgreeOnMultiSiteObservation) {
  // A VP whose (root, family) stream records >= 1 change necessarily
  // observed >= 2 sites of that root; coverage must therefore include the
  // secondary site of a churny selection.
  const auto& router = campaign().router();
  auto coverage = analysis::compute_coverage(campaign());
  size_t checked = 0;
  for (const auto& vp : campaign().vantage_points()) {
    auto selection = router.prepare_selection(vp.view, 6, util::IpFamily::V6);
    if (selection.primary_site == selection.secondary_site) continue;
    // Sample a few rounds; if the secondary ever appears, coverage must
    // have it too (coverage samples rounds the same way).
    for (size_t s = 0; s < 64; ++s) {
      uint64_t round = (s * 997) % campaign().schedule().round_count();
      uint32_t site = netsim::AnycastRouter::site_at_round(selection, round);
      if (site == selection.secondary_site) {
        EXPECT_TRUE(coverage.observed_sites.count(site))
            << "secondary site observed by stability but not coverage";
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Pipeline, DistanceAndRttAreCoherent) {
  // For every VP, the RTT of the selected site must be at least the fiber
  // RTT of the *closest* global site (physics lower bound), except detour
  // fast-paths which are calibrated distributions (still positive).
  auto distance_v4 = analysis::compute_distance(campaign(), 5, util::IpFamily::V4);
  const auto& router = campaign().router();
  size_t i = 0;
  for (const auto& vp : campaign().vantage_points()) {
    const auto& sample = distance_v4.samples[i++];
    EXPECT_EQ(sample.vp_id, vp.view.vp_id);
    netsim::RouteResult route = router.route(vp.view, 5, util::IpFamily::V4);
    if (!route.via_detour) {
      EXPECT_GE(route.rtt_ms + 1e-9, util::fiber_rtt_ms(sample.actual_km) *
                                         0.99);
    }
    EXPECT_GT(route.rtt_ms, 0);
  }
}

TEST(Pipeline, ColocationBoundedByDeploymentReality) {
  auto colocation = analysis::compute_colocation(campaign());
  // Max cluster cannot exceed the most roots hosted at any one facility.
  std::map<netsim::FacilityId, std::set<uint32_t>> roots_at;
  for (const auto& site : campaign().topology().sites)
    roots_at[site.facility].insert(site.root_index);
  size_t max_cohosted = 0;
  for (const auto& [facility, roots] : roots_at)
    max_cohosted = std::max(max_cohosted, roots.size());
  EXPECT_LE(static_cast<size_t>(colocation.max_colocated_roots), max_cohosted);
}

TEST(Pipeline, AuditVerdictsConsistentWithZonemdTimeline) {
  auto observations = campaign().run_zone_audit(60);
  auto zonemd_verifiable_from = util::make_time(2023, 12, 6, 20, 30);
  auto zonemd_present_from = util::make_time(2023, 9, 13);
  for (const auto& obs : observations) {
    if (obs.verdict != dnssec::ValidationStatus::Valid) continue;
    // Clean transfers' ZONEMD status must match the rollout stage at the
    // SERVED serial's time (stale servers can lag the probe time).
    util::UnixTime serial_era = obs.when;
    if (obs.zonemd == dnssec::ZonemdStatus::Verified)
      EXPECT_GE(serial_era, zonemd_verifiable_from)
          << util::format_datetime(obs.when);
    if (obs.zonemd == dnssec::ZonemdStatus::NoZonemd &&
        obs.table2_vp_id == 0)
      EXPECT_LT(serial_era, zonemd_present_from + util::kSecondsPerDay)
          << util::format_datetime(obs.when);
  }
}

TEST(Pipeline, LocalRootServesWhatTheProberTransfers) {
  // The local root's accepted copy equals the zone a direct probe returns.
  localroot::LocalRootService service(campaign(),
                                      campaign().vantage_points()[0]);
  util::UnixTime now = util::make_time(2023, 12, 10, 9, 0);
  ASSERT_TRUE(service.refresh(now).success);
  auto probe = campaign().prober().probe(
      campaign().vantage_points()[0], campaign().catalog().server(1).ipv6, now,
      campaign().schedule().round_at(now));
  auto direct = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*service.zone(), *direct);
}

measure::CampaignConfig small_obs_config() {
  measure::CampaignConfig config;
  config.zone.tld_count = 20;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  return config;
}

TEST(Pipeline, RunReportCountersReconcileWithProbeRecords) {
  obs::Recorder recorder;
  measure::Campaign campaign(small_obs_config(), recorder.obs());

  util::UnixTime now = util::make_time(2023, 12, 10, 9, 0);
  uint64_t round = campaign.schedule().round_at(now);
  auto addresses =
      campaign.catalog().service_addresses(campaign.schedule().config().end);

  size_t probes = 0, queries = 0, timeouts = 0, tcp_retries = 0;
  size_t axfr_ok = 0, axfr_refused = 0;
  for (size_t v = 0; v < 3 && v < campaign.vantage_points().size(); ++v) {
    for (size_t a = 0; a < 6 && a < addresses.size(); ++a) {
      measure::ProbeRecord record = campaign.prober().probe(
          campaign.vantage_points()[v], addresses[a], now, round);
      ++probes;
      queries += record.queries.size();
      for (const auto& query : record.queries) {
        if (query.timed_out) ++timeouts;
        if (query.retried_over_tcp) ++tcp_retries;
      }
      if (record.axfr) {
        if (record.axfr->refused) ++axfr_refused;
        else ++axfr_ok;
      }
      EXPECT_NE(record.trace_span, 0u)
          << "probes must open a span when a tracer is attached";
    }
  }

  auto report = obs::RunReport::capture(recorder);
  // The registry totals must reconcile *exactly* with the ProbeRecords the
  // same probes returned — the instrumentation measures, it never invents.
  EXPECT_EQ(report.counter_total("prober.probes"), probes);
  EXPECT_EQ(report.counter_total("prober.queries"), queries);
  EXPECT_EQ(report.counter_total("prober.query_timeouts"), timeouts);
  EXPECT_EQ(report.counter_total("prober.tcp_retries"), tcp_retries);
  EXPECT_EQ(report.counter_value("prober.axfr", {{"result", "ok"}}), axfr_ok);
  EXPECT_EQ(report.counter_value("prober.axfr", {{"result", "refused"}}),
            axfr_refused);
  // Server-side accounting: one message answered per query that reached the
  // instance, plus one more for every truncation retried over TCP.
  EXPECT_EQ(report.counter_total("rss.queries_served"),
            queries - timeouts + tcp_retries);
  EXPECT_EQ(report.counter_total("rss.axfr"), axfr_ok + axfr_refused);
  // Every probe routed exactly once.
  EXPECT_EQ(report.counter_total("netsim.route_selections"), probes);
  // Per-query rcode series sum back to the query total.
  uint64_t by_rcode = 0;
  for (const auto& sample : report.metrics)
    if (sample.name == "prober.queries") by_rcode += sample.count;
  EXPECT_EQ(by_rcode, queries);
}

TEST(Pipeline, AuditValidationCountersReconcileWithObservations) {
  obs::Recorder recorder;
  measure::Campaign campaign(small_obs_config(), recorder.obs());
  auto observations = campaign.run_zone_audit(/*clean_samples=*/30);

  size_t validated = 0, valid_verdicts = 0;
  for (const auto& obs : observations) {
    bool skipped_validation =
        obs.note == "axfr-refused" || obs.note == "axfr-timeout" ||
        util::starts_with(obs.note, "axfr-framing-broken");
    if (skipped_validation) continue;
    ++validated;
    if (obs.verdict == dnssec::ValidationStatus::Valid) ++valid_verdicts;
  }
  auto report = obs::RunReport::capture(recorder);
  EXPECT_EQ(report.counter_total("dnssec.validations"), validated);
  EXPECT_EQ(report.counter_value("dnssec.validations", {{"status", "valid"}}),
            valid_verdicts);
  EXPECT_EQ(report.counter_total("campaign.clean_samples"), 30u);
  EXPECT_EQ(report.counter_total("campaign.fault_events"),
            campaign.fault_plan().size());
}

TEST(Pipeline, EqualSeedsEmitByteIdenticalTraceDumps) {
  auto run = [] {
    obs::Recorder recorder;
    measure::Campaign campaign(small_obs_config(), recorder.obs());
    campaign.run_zone_audit(/*clean_samples=*/10);
    return std::pair<std::string, std::string>(
        recorder.tracer().to_jsonl(), recorder.metrics().to_jsonl());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first) << "trace dumps must be byte-identical";
  EXPECT_EQ(first.second, second.second)
      << "metric exports must be byte-identical";
  EXPECT_FALSE(first.first.empty());
}

TEST(Pipeline, PropagationDelaysWithinSearchWindow) {
  analysis::PropagationOptions options;
  options.max_instances_per_root = 4;
  auto report = analysis::measure_soa_propagation(
      campaign(), util::make_time(2023, 9, 20, 12, 0), options);
  for (const auto& row : report.per_root)
    for (double delay : row.delays_s) {
      EXPECT_GE(delay, 0);
      EXPECT_LE(delay, static_cast<double>(options.search_window_s));
    }
}

}  // namespace
}  // namespace rootsim
