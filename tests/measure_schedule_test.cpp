#include "measure/schedule.h"

#include <gtest/gtest.h>

namespace rootsim::measure {
namespace {

using util::make_time;

TEST(Schedule, CampaignBounds) {
  Schedule schedule;
  ASSERT_GT(schedule.round_count(), 0u);
  EXPECT_EQ(schedule.round_time(0), make_time(2023, 7, 3));
  EXPECT_LT(schedule.rounds().back(), make_time(2023, 12, 24));
}

TEST(Schedule, RoundCountMatchesIntervalArithmetic) {
  // 174 days total; 40 days (Sep 8..Oct 2 = 24, Nov 20..Dec 6 = 16) at
  // 15-minute resolution, the rest at 30 minutes.
  Schedule schedule;
  size_t expected = (174 - 24 - 16) * 48 + (24 + 16) * 96;
  EXPECT_EQ(schedule.round_count(), expected);
}

TEST(Schedule, DenseWindowsAre15Min) {
  Schedule schedule;
  EXPECT_TRUE(schedule.in_dense_window(make_time(2023, 9, 15)));
  EXPECT_TRUE(schedule.in_dense_window(make_time(2023, 11, 27)));  // b.root day
  EXPECT_FALSE(schedule.in_dense_window(make_time(2023, 8, 1)));
  EXPECT_FALSE(schedule.in_dense_window(make_time(2023, 12, 10)));
  // Interval between consecutive rounds inside a dense window is 900s.
  size_t dense_round = schedule.round_at(make_time(2023, 9, 15, 12, 0));
  EXPECT_EQ(schedule.round_time(dense_round + 1) - schedule.round_time(dense_round),
            900);
  size_t sparse_round = schedule.round_at(make_time(2023, 8, 1, 12, 0));
  EXPECT_EQ(
      schedule.round_time(sparse_round + 1) - schedule.round_time(sparse_round),
      1800);
}

TEST(Schedule, RoundAtFindsEnclosingRound) {
  Schedule schedule;
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 0)), 0u);
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 29)), 0u);
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 30)), 1u);
  // Before the campaign clamps to 0.
  EXPECT_EQ(schedule.round_at(make_time(2023, 1, 1)), 0u);
  // After the campaign clamps to the last round.
  EXPECT_EQ(schedule.round_at(make_time(2024, 6, 1)),
            schedule.round_count() - 1);
}

TEST(Schedule, RoundsStrictlyIncreasing) {
  Schedule schedule;
  for (size_t i = 1; i < schedule.round_count(); ++i)
    ASSERT_LT(schedule.round_time(i - 1), schedule.round_time(i));
}

TEST(Schedule, CustomWindows) {
  ScheduleConfig config;
  config.start = make_time(2024, 1, 1);
  config.end = make_time(2024, 1, 3);
  config.dense_windows = {{make_time(2024, 1, 2), make_time(2024, 1, 3)}};
  Schedule schedule(config);
  EXPECT_EQ(schedule.round_count(), 48u + 96u);
}

}  // namespace
}  // namespace rootsim::measure
