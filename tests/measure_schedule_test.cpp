#include "measure/schedule.h"

#include <gtest/gtest.h>

#include "scenario/apply.h"

namespace rootsim::measure {
namespace {

using util::make_time;

// The paper's Fig. 2 schedule, as the scenario layer reconstructs it.
Schedule paper_schedule() {
  return Schedule(scenario::paper_campaign_config().schedule);
}

TEST(Schedule, CampaignBounds) {
  Schedule schedule = paper_schedule();
  ASSERT_GT(schedule.round_count(), 0u);
  EXPECT_EQ(schedule.round_time(0), make_time(2023, 7, 3));
  EXPECT_LT(schedule.rounds().back(), make_time(2023, 12, 24));
}

TEST(Schedule, RoundCountMatchesIntervalArithmetic) {
  // 174 days total; 40 days (Sep 8..Oct 2 = 24, Nov 20..Dec 6 = 16) at
  // 15-minute resolution, the rest at 30 minutes.
  Schedule schedule = paper_schedule();
  size_t expected = (174 - 24 - 16) * 48 + (24 + 16) * 96;
  EXPECT_EQ(schedule.round_count(), expected);
}

TEST(Schedule, DenseWindowsAre15Min) {
  Schedule schedule = paper_schedule();
  EXPECT_TRUE(schedule.in_dense_window(make_time(2023, 9, 15)));
  EXPECT_TRUE(schedule.in_dense_window(make_time(2023, 11, 27)));  // b.root day
  EXPECT_FALSE(schedule.in_dense_window(make_time(2023, 8, 1)));
  EXPECT_FALSE(schedule.in_dense_window(make_time(2023, 12, 10)));
  // Interval between consecutive rounds inside a dense window is 900s.
  size_t dense_round = schedule.round_at(make_time(2023, 9, 15, 12, 0));
  EXPECT_EQ(schedule.round_time(dense_round + 1) - schedule.round_time(dense_round),
            900);
  size_t sparse_round = schedule.round_at(make_time(2023, 8, 1, 12, 0));
  EXPECT_EQ(
      schedule.round_time(sparse_round + 1) - schedule.round_time(sparse_round),
      1800);
}

TEST(Schedule, RoundAtFindsEnclosingRound) {
  Schedule schedule = paper_schedule();
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 0)), 0u);
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 29)), 0u);
  EXPECT_EQ(schedule.round_at(make_time(2023, 7, 3, 0, 30)), 1u);
  // Before the campaign clamps to 0.
  EXPECT_EQ(schedule.round_at(make_time(2023, 1, 1)), 0u);
  // After the campaign clamps to the last round.
  EXPECT_EQ(schedule.round_at(make_time(2024, 6, 1)),
            schedule.round_count() - 1);
}

TEST(Schedule, RoundsStrictlyIncreasing) {
  Schedule schedule = paper_schedule();
  for (size_t i = 1; i < schedule.round_count(); ++i)
    ASSERT_LT(schedule.round_time(i - 1), schedule.round_time(i));
}

TEST(Schedule, CustomWindows) {
  ScheduleConfig config;
  config.start = make_time(2024, 1, 1);
  config.end = make_time(2024, 1, 3);
  config.dense_windows = {{make_time(2024, 1, 2), make_time(2024, 1, 3)}};
  Schedule schedule(config);
  EXPECT_EQ(schedule.round_count(), 48u + 96u);
}

TEST(Schedule, RoundAtBoundariesOfTheHorizon) {
  ScheduleConfig config;
  config.start = make_time(2024, 3, 1);
  config.end = make_time(2024, 3, 2);
  Schedule schedule(config);
  ASSERT_EQ(schedule.round_count(), 48u);
  // One second before the first round still lands on round 0.
  EXPECT_EQ(schedule.round_at(config.start - 1), 0u);
  EXPECT_EQ(schedule.round_at(config.start), 0u);
  // The horizon end is past the last round (rounds cover [start, end)).
  EXPECT_EQ(schedule.round_at(config.end), schedule.round_count() - 1);
  EXPECT_EQ(schedule.round_at(config.end - 1), schedule.round_count() - 1);
  EXPECT_LT(schedule.rounds().back(), config.end);
}

TEST(Schedule, DenseWindowEdgesAreHalfOpen) {
  ScheduleConfig config;
  config.start = make_time(2024, 3, 1);
  config.end = make_time(2024, 3, 4);
  const util::UnixTime dense_start = make_time(2024, 3, 2);
  const util::UnixTime dense_end = make_time(2024, 3, 3);
  config.dense_windows = {{dense_start, dense_end}};
  Schedule schedule(config);
  EXPECT_FALSE(schedule.in_dense_window(dense_start - 1));
  EXPECT_TRUE(schedule.in_dense_window(dense_start));
  EXPECT_TRUE(schedule.in_dense_window(dense_end - 1));
  EXPECT_FALSE(schedule.in_dense_window(dense_end));
  // A round scheduled exactly at the window start steps at the dense rate.
  size_t first_dense = schedule.round_at(dense_start);
  EXPECT_EQ(schedule.round_time(first_dense), dense_start);
  EXPECT_EQ(schedule.round_time(first_dense + 1) - dense_start, 900);
}

TEST(Schedule, NoDenseWindowsRunsAtBaseCadenceThroughout) {
  ScheduleConfig config;
  config.start = make_time(2024, 3, 1);
  config.end = make_time(2024, 3, 3);
  Schedule schedule(config);
  EXPECT_EQ(schedule.round_count(), 96u);
  for (size_t i = 1; i < schedule.round_count(); ++i)
    EXPECT_EQ(schedule.round_time(i) - schedule.round_time(i - 1), 1800);
}

TEST(Schedule, DegenerateHorizonStillHasOneRound) {
  // The default config is an empty horizon; round_time/round_at must stay
  // total so config-less consumers (unit fixtures) never index out of range.
  Schedule schedule;
  ASSERT_EQ(schedule.round_count(), 1u);
  EXPECT_EQ(schedule.round_time(0), 0);
  EXPECT_EQ(schedule.round_at(make_time(2024, 1, 1)), 0u);
  EXPECT_EQ(schedule.round_at(-1), 0u);
}

}  // namespace
}  // namespace rootsim::measure
