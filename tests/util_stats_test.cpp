#include "util/stats.h"

#include <gtest/gtest.h>

namespace rootsim::util {
namespace {

TEST(Stats, MeanAndStddev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0 / 3.0), 20);
}

TEST(Stats, SummaryOrdering) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(Ecdf, StepFunction) {
  Ecdf e({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2), 0.75);
  EXPECT_DOUBLE_EQ(e.at(3), 1.0);
  EXPECT_DOUBLE_EQ(e.at(99), 1.0);
  EXPECT_DOUBLE_EQ(e.complementary(2), 0.25);
}

TEST(Ecdf, QuantileMatchesSortedSamples) {
  Ecdf e({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5);
}

TEST(IntHistogram, CountsAndMean) {
  IntHistogram h;
  h.add(0, 3);
  h.add(2, 1);
  h.add(12);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.count(12), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), (0 * 3 + 2 + 12) / 5.0);
  EXPECT_EQ(h.min_value(), 0);
  EXPECT_EQ(h.max_value(), 12);
}

TEST(IntHistogram, RenderContainsEachBin) {
  IntHistogram h;
  h.add(1, 10);
  h.add(2, 5);
  std::string out = render_histogram(h, 10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bar
  EXPECT_NE(out.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace rootsim::util
