// Direct unit tests of the traffic-report arithmetic over hand-built
// DailyTraffic inputs (the collector tests cover the end-to-end path).
#include "analysis/traffic_report.h"

#include <gtest/gtest.h>

namespace rootsim::analysis {
namespace {

using traffic::DailyTraffic;
using traffic::SubnetKey;
using util::IpFamily;

DailyTraffic make_day(util::UnixTime day, double v4_old, double v4_new,
                      double v6_old, double v6_new, double other_roots = 0) {
  DailyTraffic out;
  out.day = day;
  if (v4_old > 0) out.flows[{1, IpFamily::V4, true}] = v4_old;
  if (v4_new > 0) out.flows[{1, IpFamily::V4, false}] = v4_new;
  if (v6_old > 0) out.flows[{1, IpFamily::V6, true}] = v6_old;
  if (v6_new > 0) out.flows[{1, IpFamily::V6, false}] = v6_new;
  if (other_roots > 0)
    for (int root : {0, 2, 10}) out.flows[{root, IpFamily::V4, false}] = other_roots;
  return out;
}

TEST(TrafficReport, BrootSharesNormalizePerDay) {
  std::vector<DailyTraffic> days = {
      make_day(util::make_time(2023, 11, 20), 80, 0, 20, 0),
      make_day(util::make_time(2023, 11, 28), 10, 60, 5, 25),
  };
  auto shares = broot_shares(days);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0].v4_old, 0.8);
  EXPECT_DOUBLE_EQ(shares[0].v6_old, 0.2);
  EXPECT_DOUBLE_EQ(shares[0].v4_new + shares[0].v6_new, 0.0);
  EXPECT_DOUBLE_EQ(shares[1].v4_new, 0.6);
  EXPECT_DOUBLE_EQ(shares[1].v6_new, 0.25);
  // Each day's four shares sum to 1.
  for (const auto& s : shares)
    EXPECT_NEAR(s.v4_old + s.v4_new + s.v6_old + s.v6_new, 1.0, 1e-12);
}

TEST(TrafficReport, BrootSharesIgnoreOtherRoots) {
  // Fig. 7 normalizes over b.root traffic only; k/a/c flows must not dilute.
  std::vector<DailyTraffic> days = {
      make_day(util::make_time(2023, 12, 1), 50, 50, 0, 0, /*other_roots=*/1000)};
  auto shares = broot_shares(days);
  EXPECT_DOUBLE_EQ(shares[0].v4_old, 0.5);
  EXPECT_DOUBLE_EQ(shares[0].v4_new, 0.5);
}

TEST(TrafficReport, ShiftRatioPerFamily) {
  std::vector<DailyTraffic> days = {
      make_day(util::make_time(2024, 2, 5), 13, 87, 4, 96)};
  auto ratio = shift_ratio(days);
  EXPECT_NEAR(ratio.v4, 0.87, 1e-12);
  EXPECT_NEAR(ratio.v6, 0.96, 1e-12);
}

TEST(TrafficReport, ShiftRatioEmptyIsZero) {
  auto ratio = shift_ratio({});
  EXPECT_DOUBLE_EQ(ratio.v4, 0);
  EXPECT_DOUBLE_EQ(ratio.v6, 0);
}

TEST(TrafficReport, RootSharesSumToOne) {
  std::vector<DailyTraffic> days = {
      make_day(util::make_time(2023, 12, 1), 10, 10, 5, 5, /*other_roots=*/30)};
  auto shares = root_shares(days);
  double total = 0;
  for (double share : shares.share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(shares.share[1], 30.0 / 120.0, 1e-12);  // b = all four subnets
  EXPECT_NEAR(shares.share[0], 30.0 / 120.0, 1e-12);
}

TEST(TrafficReport, ClientFlowCdfMonotone) {
  std::vector<traffic::ClientDayRecord> records;
  for (uint64_t client = 0; client < 100; ++client)
    records.push_back({{1, IpFamily::V6, true}, client,
                       static_cast<double>(1 + client * client)});
  auto cdfs = client_flow_cdfs(records, 1);
  ASSERT_EQ(cdfs.size(), 1u);
  const auto& cdf = cdfs[0];
  for (size_t i = 1; i < cdf.cumulative_fraction.size(); ++i)
    EXPECT_GE(cdf.cumulative_fraction[i], cdf.cumulative_fraction[i - 1]);
  EXPECT_NEAR(cdf.cumulative_fraction.back(), 1.0, 1e-12);
  // Only client 0 has ~1 flow/day.
  EXPECT_NEAR(cdf.single_contact_fraction, 0.01, 1e-9);
}

TEST(TrafficReport, RenderShareSeriesShape) {
  std::vector<BrootShare> shares;
  for (int day = 0; day < 10; ++day) {
    BrootShare s;
    s.day = util::make_time(2023, 11, 20) + day * util::kSecondsPerDay;
    s.v4_old = day < 5 ? 0.9 : 0.1;
    s.v4_new = day < 5 ? 0.1 : 0.9;
    shares.push_back(s);
  }
  std::string out = render_share_series(shares);
  EXPECT_NE(out.find("v4new"), std::string::npos);
  EXPECT_NE(out.find("2023-11-20"), std::string::npos);
  EXPECT_NE(out.find("10 buckets"), std::string::npos);
}

}  // namespace
}  // namespace rootsim::analysis
