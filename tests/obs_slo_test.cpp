// Unit suite for the streaming SLO plane: SloCollector window semantics
// (advancement, empty-bucket eviction, trailing aggregation, merge order
// independence) and the IncidentTracker hysteresis state machine (no
// flapping at the threshold boundary, open -> close lifecycle against a
// scripted outage, deterministic attribution).
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/incident.h"
#include "util/timeutil.h"

namespace rootsim::obs {
namespace {

constexpr int64_t kBucket = SloCollector::kBucketSeconds;

// Thresholds tuned so one probe decides a window: every test below controls
// breaches explicitly instead of fighting min_probes.
SloThresholds tiny_thresholds() {
  SloThresholds t;
  t.min_probes = 1;
  t.window_buckets = 2;
  t.open_after = 3;
  t.close_after = 2;
  return t;
}

SloSample probe(util::UnixTime when, bool ok, uint8_t root = 0,
                bool v6 = false) {
  SloSample sample;
  sample.root = root;
  sample.v6 = v6;
  sample.when = when;
  sample.kind = SloSample::Kind::Availability;
  sample.ok = ok;
  return sample;
}

TEST(SloCollector, BucketIndexIsFloorDivision) {
  EXPECT_EQ(SloCollector::bucket_index(0), 0);
  EXPECT_EQ(SloCollector::bucket_index(kBucket - 1), 0);
  EXPECT_EQ(SloCollector::bucket_index(kBucket), 1);
  EXPECT_EQ(SloCollector::bucket_index(-1), -1);
  EXPECT_EQ(SloCollector::bucket_start(SloCollector::bucket_index(12345)), 0);
}

TEST(SloCollector, WindowsAdvancePerBucketIncludingEmptyOnes) {
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  // Samples in bucket 0 and bucket 3; buckets 1-2 are silent.
  collector.record(probe(t0, true));
  collector.record(probe(t0 + 3 * kBucket, true));

  auto windows = collector.windows(tiny_thresholds());
  // One window per bucket in the stream's [first, last] range: the silent
  // buckets still advance the sweep instead of being skipped. Each window
  // spans the trailing window_buckets buckets and slides by one bucket.
  ASSERT_EQ(windows.size(), 4u);
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].end - windows[i].start, 2 * kBucket) << i;
    if (i) {
      EXPECT_EQ(windows[i].start, windows[i - 1].start + kBucket) << i;
    }
  }
  EXPECT_EQ(windows[0].end, t0 + kBucket);  // trailing: ends at its bucket
  // window_buckets = 2: bucket 1's window still sees bucket 0's probe,
  // bucket 2's window has aged it out (eviction), bucket 3 is fresh again.
  EXPECT_EQ(windows[0].probes, 1u);
  EXPECT_EQ(windows[1].probes, 1u);
  EXPECT_EQ(windows[2].probes, 0u);
  EXPECT_FALSE(windows[2].evaluated);
  EXPECT_EQ(windows[3].probes, 1u);
}

TEST(SloCollector, TrailingWindowAggregatesAndEvaluates) {
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  collector.record(probe(t0, false));
  collector.record(probe(t0 + kBucket, true));
  SloSample latency = probe(t0 + kBucket, true);
  latency.kind = SloSample::Kind::Latency;
  latency.value = 120.0;
  collector.record(latency);

  SloThresholds thresholds = tiny_thresholds();
  auto windows = collector.windows(thresholds);
  ASSERT_EQ(windows.size(), 2u);
  // Second window spans both buckets: 1 failure + 1 success.
  EXPECT_EQ(windows[1].probes, 2u);
  EXPECT_EQ(windows[1].answered, 1u);
  EXPECT_DOUBLE_EQ(windows[1].availability, 0.5);
  EXPECT_TRUE(windows[1].evaluated);
  EXPECT_TRUE(windows[1].breached(SloMetric::Availability));
  EXPECT_EQ(windows[1].latency_count, 1u);
  EXPECT_NEAR(windows[1].rtt_p95_ms, 120.0, 120.0 * 0.05);
}

TEST(SloCollector, StarvedWindowsAreNotEvaluated) {
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  collector.record(probe(t0, false));  // would breach if evaluated

  SloThresholds thresholds = tiny_thresholds();
  thresholds.min_probes = 16;
  auto windows = collector.windows(thresholds);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_FALSE(windows[0].evaluated);
  EXPECT_EQ(windows[0].breaches, 0u);
}

TEST(SloCollector, MergeOrderAndShardingInvisibleInExport) {
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  auto feed = [&](SloCollector& c, int salt) {
    for (int i = 0; i < 40; ++i) {
      const util::UnixTime when = t0 + (i % 5) * kBucket + i * 17;
      c.record(probe(when, (i + salt) % 7 != 0, i % 3 == 0 ? 1 : 0,
                     i % 2 == 1));
      SloSample latency = probe(when, true, i % 3 == 0 ? 1 : 0, i % 2 == 1);
      latency.kind = SloSample::Kind::Latency;
      latency.value = 10.0 + i;
      c.record(latency);
    }
  };
  SloCollector serial;
  feed(serial, 0);
  feed(serial, 1);

  // Same samples split across two shards, merged in both orders — and
  // recorded from two threads, so TSan sees the lock on the hot path.
  for (bool reversed : {false, true}) {
    SloCollector a, b, merged;
    std::thread ta([&] { feed(a, 0); });
    std::thread tb([&] { feed(b, 1); });
    ta.join();
    tb.join();
    merged.merge_from(reversed ? b : a);
    merged.merge_from(reversed ? a : b);
    EXPECT_EQ(merged.cell_count(), serial.cell_count());
    EXPECT_EQ(merged.to_jsonl(tiny_thresholds()),
              serial.to_jsonl(tiny_thresholds()));
  }
}

TEST(SloCollector, TotalsFoldEveryBucketOfOneStream) {
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  for (int i = 0; i < 10; ++i)
    collector.record(probe(t0 + i * kBucket, i != 4));
  collector.record(probe(t0, true, /*root=*/2));  // different stream

  SloCollector::Cell totals = collector.totals(0, false);
  EXPECT_EQ(totals.probes, 10u);
  EXPECT_EQ(totals.answered, 9u);
  EXPECT_EQ(collector.totals(2, false).probes, 1u);
  EXPECT_EQ(collector.totals(2, true).probes, 0u);
}

// One bad bucket smears across window_buckets sliding windows; open_after
// must out-wait the smear or a single blip pages. The default policy
// guarantees that structurally (open_after > window_buckets).
TEST(IncidentTracker, SingleBucketBlipDoesNotOpen) {
  SloThresholds thresholds;  // default policy: window 4, open_after 6
  thresholds.min_probes = 1;
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  for (int i = 0; i < 12; ++i)
    collector.record(probe(t0 + i * kBucket, i != 5));  // one dead bucket

  IncidentTracker tracker(thresholds);
  tracker.observe(collector.windows(thresholds));
  EXPECT_EQ(tracker.open_count(), 0u);
  EXPECT_TRUE(tracker.incidents().empty());
}

// A stream sitting exactly on the availability threshold is healthy — the
// breach comparison is strict — so boundary oscillation cannot flap.
TEST(IncidentTracker, NoFlappingAtTheThresholdBoundary) {
  SloThresholds thresholds = tiny_thresholds();
  thresholds.availability_min = 0.5;
  thresholds.window_buckets = 1;  // one bucket per window: direct control
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  for (int i = 0; i < 20; ++i) {
    // Every bucket: exactly 1 of 2 probes answered = availability 0.5,
    // exactly at the threshold.
    collector.record(probe(t0 + i * kBucket, true));
    collector.record(probe(t0 + i * kBucket + 1, false));
  }
  IncidentTracker tracker(thresholds);
  tracker.observe(collector.windows(thresholds));
  EXPECT_EQ(tracker.open_count(), 0u);
  EXPECT_TRUE(tracker.incidents().empty());
}

// The lifecycle property: a sustained scripted outage opens exactly one
// incident after `open_after` breached windows, records its breadth and
// worst value, and closes after `close_after` healthy windows.
TEST(IncidentTracker, OpensAndClosesAcrossAScriptedOutage) {
  SloThresholds thresholds = tiny_thresholds();
  thresholds.window_buckets = 1;
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 11, 27);
  // Buckets 0-4 healthy, 5-12 dark (the outage), 13-19 healthy again.
  for (int i = 0; i < 20; ++i) {
    const bool dark = i >= 5 && i <= 12;
    for (int p = 0; p < 4; ++p)
      collector.record(probe(t0 + i * kBucket + p, !dark));
  }
  IncidentTracker tracker(thresholds);
  tracker.observe(collector.windows(thresholds));
  auto incidents = tracker.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& incident = incidents[0];
  EXPECT_EQ(incident.id, 1u);
  EXPECT_EQ(incident.metric, SloMetric::Availability);
  // Opened retroactively at the *first* breached window, not the one that
  // crossed open_after.
  EXPECT_EQ(incident.opened, t0 + 5 * kBucket);
  EXPECT_EQ(incident.last_breach_end, t0 + 13 * kBucket);
  EXPECT_EQ(incident.breach_windows, 8u);
  EXPECT_DOUBLE_EQ(incident.worst_value, 0.0);
  // Closed at the end of the close_after-th healthy window.
  EXPECT_FALSE(incident.open());
  EXPECT_EQ(incident.closed, t0 + 15 * kBucket);
  EXPECT_EQ(tracker.open_count(), 0u);

  // Attribution: the scripted outage window wins; an unrelated hint with
  // no overlap cannot, and absent any overlap the cause stays "unknown".
  tracker.add_hint({t0 + 5 * kBucket, t0 + 13 * kBucket, -1, -1, -1,
                    "scripted-outage", 2.0});
  tracker.add_hint({t0 - 50 * kBucket, t0 - 40 * kBucket, -1, -1, -1,
                    "ancient-history", 9.0});
  auto attributed = tracker.incidents();
  ASSERT_EQ(attributed.size(), 1u);
  EXPECT_EQ(attributed[0].cause, "scripted-outage");
  EXPECT_DOUBLE_EQ(attributed[0].cause_score, 2.0 * 8 * kBucket);
}

TEST(IncidentTracker, HintFiltersRespectStreamAndMetric) {
  SloThresholds thresholds = tiny_thresholds();
  thresholds.window_buckets = 1;
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 9, 13);
  for (int i = 0; i < 10; ++i) {
    SloSample integrity = probe(t0 + i * kBucket, false, /*root=*/3);
    integrity.kind = SloSample::Kind::Integrity;
    collector.record(integrity);
    collector.record(probe(t0 + i * kBucket, true, /*root=*/3));
  }
  IncidentTracker tracker(thresholds);
  tracker.observe(collector.windows(thresholds));
  ASSERT_EQ(tracker.incidents().size(), 1u);

  // Wrong-root and wrong-metric hints never match; the metric-scoped hint
  // does even though a higher-weight availability hint overlaps fully.
  tracker.add_hint({t0, t0 + 10 * kBucket, /*root=*/5, -1, -1,
                    "wrong-letter", 10.0});
  tracker.add_hint({t0, t0 + 10 * kBucket, -1, -1,
                    static_cast<int>(SloMetric::Availability),
                    "wrong-metric", 10.0});
  tracker.add_hint({t0, t0 + 10 * kBucket, 3, -1,
                    static_cast<int>(SloMetric::Integrity),
                    "zonemd-private-algorithm", 1.0});
  auto incidents = tracker.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].metric, SloMetric::Integrity);
  EXPECT_EQ(incidents[0].cause, "zonemd-private-algorithm");
}

TEST(IncidentTracker, JsonlIsStableAndMarksOpenIncidents) {
  SloThresholds thresholds = tiny_thresholds();
  thresholds.window_buckets = 1;
  SloCollector collector;
  const util::UnixTime t0 = util::make_time(2023, 7, 3);
  // Breaches straight through the end of the timeline: never heals.
  for (int i = 0; i < 6; ++i)
    collector.record(probe(t0 + i * kBucket, false));
  IncidentTracker tracker(thresholds);
  tracker.observe(collector.windows(thresholds));
  ASSERT_EQ(tracker.open_count(), 1u);
  const std::string jsonl = tracker.to_jsonl();
  EXPECT_NE(jsonl.find("\"closed\":null"), std::string::npos);
  EXPECT_NE(jsonl.find("\"cause\":\"unknown\""), std::string::npos);
  EXPECT_EQ(jsonl, tracker.to_jsonl());  // pure function of state
}

}  // namespace
}  // namespace rootsim::obs
