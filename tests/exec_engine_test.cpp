// Determinism suite for the exec engine: parallel fan-out must be
// output-equivalent to serial execution — same observation vectors, same
// metric totals, byte-identical trace dumps — for every worker count.
#include "exec/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exec/profiler.h"
#include "measure/campaign.h"
#include "netsim/flight_recorder.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace rootsim {
namespace {

TEST(ParallelFor, WorkStealCoversEveryUnitExactlyOnce) {
  constexpr size_t kUnits = 103;  // deliberately not a multiple of workers
  constexpr size_t kWorkers = 4;
  std::vector<std::atomic<int>> hits(kUnits);
  exec::parallel_for(kUnits, kWorkers, exec::SchedulerMode::WorkSteal,
                     [&](size_t unit, size_t worker) {
                       hits[unit].fetch_add(1);
                       ASSERT_LT(worker, kWorkers);
                     });
  for (size_t unit = 0; unit < kUnits; ++unit)
    ASSERT_EQ(hits[unit].load(), 1) << unit;
}

TEST(ParallelFor, StaticModeKeepsContiguousShards) {
  constexpr size_t kUnits = 103;
  constexpr size_t kWorkers = 4;
  std::vector<std::atomic<int>> hits(kUnits);
  std::vector<std::atomic<int>> shard_of(kUnits);
  exec::parallel_for(kUnits, kWorkers, exec::SchedulerMode::Static,
                     [&](size_t unit, size_t shard) {
                       hits[unit].fetch_add(1);
                       shard_of[unit].store(static_cast<int>(shard));
                     });
  for (size_t unit = 0; unit < kUnits; ++unit)
    ASSERT_EQ(hits[unit].load(), 1) << unit;
  // Static contiguous blocks: shard indices are non-decreasing in unit order.
  for (size_t unit = 1; unit < kUnits; ++unit)
    ASSERT_GE(shard_of[unit].load(), shard_of[unit - 1].load()) << unit;
}

TEST(ParallelFor, ResolveSchedulerFromEnvironment) {
  unsetenv("ROOTSIM_SCHED");
  EXPECT_EQ(exec::resolve_scheduler(), exec::SchedulerMode::WorkSteal);
  setenv("ROOTSIM_SCHED", "static", 1);
  EXPECT_EQ(exec::resolve_scheduler(), exec::SchedulerMode::Static);
  setenv("ROOTSIM_SCHED", "steal", 1);
  EXPECT_EQ(exec::resolve_scheduler(), exec::SchedulerMode::WorkSteal);
  unsetenv("ROOTSIM_SCHED");
  EXPECT_EQ(to_string(exec::SchedulerMode::Static), "static");
  EXPECT_EQ(to_string(exec::SchedulerMode::WorkSteal), "steal");
}

// Many tiny units across every scheduler shape: a TSan-visible stress of the
// steal path (with units outnumbering workers 100:1, thieves and owners race
// on the same slots constantly). Correctness bar stays exactly-once.
TEST(ParallelFor, WorkStealStressManyTinyUnits) {
  constexpr size_t kUnits = 1600;
  for (size_t workers : {2, 3, 8, 16}) {
    std::vector<std::atomic<int>> hits(kUnits);
    std::atomic<uint64_t> sum{0};
    exec::parallel_for(kUnits, workers, exec::SchedulerMode::WorkSteal,
                       [&](size_t unit, size_t) {
                         hits[unit].fetch_add(1);
                         sum.fetch_add(unit);
                       });
    for (size_t unit = 0; unit < kUnits; ++unit)
      ASSERT_EQ(hits[unit].load(), 1) << unit << " @" << workers << " workers";
    EXPECT_EQ(sum.load(), uint64_t{kUnits} * (kUnits - 1) / 2);
  }
}

TEST(ParallelFor, MoreWorkersThanUnitsAndZeroUnits) {
  std::vector<std::atomic<int>> hits(3);
  exec::parallel_for(3, 16, [&](size_t unit, size_t) { hits[unit]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  bool ran = false;
  exec::parallel_for(0, 4, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ResolveWorkers, RequestedThenEnvThenOne) {
  EXPECT_EQ(exec::resolve_workers(3), 3u);
  setenv("ROOTSIM_WORKERS", "5", 1);
  EXPECT_EQ(exec::resolve_workers(0), 5u);
  setenv("ROOTSIM_WORKERS", "junk", 1);
  EXPECT_EQ(exec::resolve_workers(0), 1u);
  unsetenv("ROOTSIM_WORKERS");
  EXPECT_EQ(exec::resolve_workers(0), 1u);
}

TEST(TracerAbsorb, ReproducesSerialIdsAndSpanLinks) {
  // Serial reference: one tracer records both probes.
  obs::Tracer serial(64);
  uint64_t s1 = serial.begin_span("probe", 100, {{"unit", "0"}});
  serial.event(s1, "query", 101);
  serial.end_span(s1, 102);
  uint64_t s2 = serial.begin_span("probe", 200, {{"unit", "1"}});
  serial.event(s2, "query", 201);
  serial.end_span(s2, 202);

  // Sharded: each probe records into its own tracer, merged in unit order.
  obs::Tracer main(64);
  obs::Tracer shard0(64);
  obs::Tracer shard1(64);
  uint64_t a = shard0.begin_span("probe", 100, {{"unit", "0"}});
  shard0.event(a, "query", 101);
  shard0.end_span(a, 102);
  uint64_t b = shard1.begin_span("probe", 200, {{"unit", "1"}});
  shard1.event(b, "query", 201);
  shard1.end_span(b, 202);
  main.absorb(std::move(shard0));
  main.absorb(std::move(shard1));

  EXPECT_EQ(main.to_jsonl(), serial.to_jsonl());
  EXPECT_EQ(main.recorded(), serial.recorded());
  EXPECT_EQ(shard0.size(), 0u);
  EXPECT_EQ(shard0.recorded(), 0u);
}

TEST(TracerAbsorb, RingDropAccountingMatchesSerial) {
  constexpr size_t kCapacity = 8;
  auto record_unit = [](obs::Tracer& t, size_t unit) {
    uint64_t span =
        t.begin_span("u", static_cast<util::UnixTime>(unit), {});
    for (int e = 0; e < 5; ++e)
      t.event(span, "e", static_cast<util::UnixTime>(unit));
    t.end_span(span, static_cast<util::UnixTime>(unit));
  };
  obs::Tracer serial(kCapacity);
  for (size_t unit = 0; unit < 6; ++unit) record_unit(serial, unit);

  obs::Tracer main(kCapacity);
  obs::Tracer shard0(kCapacity);
  obs::Tracer shard1(kCapacity);
  for (size_t unit = 0; unit < 3; ++unit) record_unit(shard0, unit);
  for (size_t unit = 3; unit < 6; ++unit) record_unit(shard1, unit);
  main.absorb(std::move(shard0));
  main.absorb(std::move(shard1));

  EXPECT_EQ(main.to_jsonl(), serial.to_jsonl());
  EXPECT_EQ(main.dropped(), serial.dropped());
  EXPECT_EQ(main.recorded(), serial.recorded());
}

TEST(MetricsMerge, CountersGaugesHistogramsFold) {
  obs::MetricsRegistry main;
  obs::MetricsRegistry shard;
  main.counter("c", {{"k", "v"}}).inc(2);
  shard.counter("c", {{"k", "v"}}).inc(3);
  shard.counter("only_in_shard");  // zero-valued: series must still appear
  main.gauge("g").set(5);
  shard.gauge("g").set(3);  // gauges are monotone: merge takes the max
  main.histogram("h", {}, {1, 2}).observe(0.5);
  shard.histogram("h", {}, {1, 2}).observe(1.5);
  shard.histogram("h", {}, {1, 2}).observe(99);

  main.merge_from(shard);
  EXPECT_EQ(main.counter_value("c", {{"k", "v"}}), 5u);
  EXPECT_EQ(main.counter_value("only_in_shard", {}), 0u);
  EXPECT_NE(main.to_jsonl().find("only_in_shard"), std::string::npos);

  auto samples = main.snapshot();
  bool checked_gauge = false, checked_hist = false;
  for (const auto& sample : samples) {
    if (sample.name == "g") {
      EXPECT_DOUBLE_EQ(sample.value, 5.0);
      checked_gauge = true;
    }
    if (sample.name == "h") {
      EXPECT_EQ(sample.count, 3u);
      ASSERT_EQ(sample.buckets.size(), 3u);
      EXPECT_EQ(sample.buckets[0], 1u);  // 0.5 <= 1
      EXPECT_EQ(sample.buckets[1], 1u);  // 1.5 <= 2
      EXPECT_EQ(sample.buckets[2], 1u);  // 99 -> +inf
      EXPECT_DOUBLE_EQ(sample.value, 0.5 + 1.5 + 99);
      checked_hist = true;
    }
  }
  EXPECT_TRUE(checked_gauge);
  EXPECT_TRUE(checked_hist);
}

// Adversarially skewed unit durations: one unit costs ~100x the rest. Under
// static sharding that unit's whole block lags; work stealing drains the rest
// around it. Either way the *outputs* — metrics, trace, rssac002 — must be
// byte-identical to a serial run for every worker count and every position of
// the long pole, because obs shards are per unit and merge in unit order.
class SkewedUnits : public ::testing::TestWithParam<size_t> {};

std::string skewed_run(size_t workers, size_t units, size_t heavy_unit) {
  obs::Recorder main;
  exec::ObsShards shards(main.obs(), units);
  exec::parallel_for(
      units, workers, exec::SchedulerMode::WorkSteal,
      [&](size_t unit, size_t) {
        obs::Obs sink = shards.shard(unit);
        uint64_t span = sink.tracer->begin_span(
            "unit", static_cast<util::UnixTime>(unit),
            {{"unit", util::format("%zu", unit)}});
        sink.count("units.done");
        sink.count("units.kind", {{"heavy", unit == heavy_unit ? "1" : "0"}});
        obs::Rssac002Sample sample;
        sample.instance = "test-instance";
        sample.when = static_cast<util::UnixTime>(1694593200 + unit);
        sample.udp_queries = 1;
        sample.delivered = true;
        sample.query_bytes = 40 + unit % 7;
        sample.response_bytes = 500 + unit % 13;
        sample.source_id = unit % 5;
        sink.rssac002->record(sample);
        // The long pole: enough wall time that every other worker finishes
        // its own block and has to steal to stay busy.
        const auto cost = std::chrono::microseconds(unit == heavy_unit ? 20000 : 200);
        std::this_thread::sleep_for(cost);
        sink.tracer->end_span(span, static_cast<util::UnixTime>(unit));
      });
  shards.merge();
  return main.metrics().to_jsonl() + "\n--\n" + main.tracer().to_jsonl() +
         "\n--\n" + main.rssac002().to_jsonl();
}

TEST_P(SkewedUnits, ExportsByteIdenticalAtEveryWorkerCount) {
  constexpr size_t kUnits = 24;
  const size_t heavy_unit = GetParam();
  const std::string serial = skewed_run(1, kUnits, heavy_unit);
  ASSERT_FALSE(serial.empty());
  for (size_t workers : {2, 4, 8}) {
    EXPECT_EQ(skewed_run(workers, kUnits, heavy_unit), serial)
        << workers << " workers, heavy unit " << heavy_unit;
  }
}

// The long pole first, last, and at an arbitrary interior position (17 plays
// the "random" draw — fixed so failures reproduce).
INSTANTIATE_TEST_SUITE_P(HeavyUnitPositions, SkewedUnits,
                         ::testing::Values(0u, 23u, 17u));

// Work stealing must actually steal under skew: with the heavy unit first,
// worker 0 is pinned to it while the rest of its block gets stolen away.
TEST(WorkSteal, SkewTriggersSteals) {
  constexpr size_t kUnits = 32;
  exec::Profiler profiler;
  setenv("ROOTSIM_SCHED", "steal", 1);
  exec::parallel_for(kUnits, 4, &profiler, [&](size_t unit, size_t) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(unit == 0 ? 20000 : 200));
  });
  unsetenv("ROOTSIM_SCHED");
  uint64_t total_steals = 0;
  for (const auto& report : profiler.worker_reports())
    total_steals += report.steal_count;
  EXPECT_GT(total_steals, 0u);
  EXPECT_NE(profiler.to_json().find("\"sched\":\"steal\""), std::string::npos);
}

bool observations_equal(const measure::ZoneAuditObservation& a,
                        const measure::ZoneAuditObservation& b) {
  return a.vp_id == b.vp_id && a.table2_vp_id == b.table2_vp_id &&
         a.root_index == b.root_index && a.family == b.family &&
         a.old_b_address == b.old_b_address && a.when == b.when &&
         a.soa_serial == b.soa_serial && a.verdict == b.verdict &&
         a.zonemd == b.zonemd &&
         a.affects_all_servers == b.affects_all_servers && a.note == b.note;
}

struct AuditRun {
  std::vector<measure::ZoneAuditObservation> observations;
  std::string metrics_jsonl;
  std::string trace_jsonl;
  std::string rssac002_jsonl;
  uint64_t flight_recorded = 0;
};

AuditRun run_audit(size_t workers,
                   netsim::FlightRecorder* flight_recorder = nullptr) {
  measure::CampaignConfig config;
  config.zone.tld_count = 30;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  config.transport.flight_recorder = flight_recorder;
  obs::Recorder recorder;
  measure::Campaign campaign(config, recorder.obs());
  AuditRun run;
  run.observations = campaign.run_zone_audit(12, workers);
  run.metrics_jsonl = recorder.metrics().to_jsonl();
  run.trace_jsonl = recorder.tracer().to_jsonl();
  run.rssac002_jsonl = recorder.rssac002().to_jsonl();
  if (flight_recorder) run.flight_recorded = flight_recorder->recorded();
  return run;
}

// The tentpole acceptance property: worker count must not be observable in
// any output — observations, metric export, trace export.
TEST(ZoneAudit, WorkerCountInvisibleInEveryOutput) {
  AuditRun serial = run_audit(1);
  ASSERT_FALSE(serial.observations.empty());
  ASSERT_FALSE(serial.metrics_jsonl.empty());
  ASSERT_FALSE(serial.trace_jsonl.empty());
  ASSERT_FALSE(serial.rssac002_jsonl.empty());
  for (size_t workers : {2, 4, 8}) {
    AuditRun parallel = run_audit(workers);
    ASSERT_EQ(parallel.observations.size(), serial.observations.size())
        << workers << " workers";
    for (size_t i = 0; i < serial.observations.size(); ++i)
      ASSERT_TRUE(
          observations_equal(parallel.observations[i], serial.observations[i]))
          << workers << " workers, observation " << i;
    EXPECT_EQ(parallel.metrics_jsonl, serial.metrics_jsonl)
        << workers << " workers";
    EXPECT_EQ(parallel.trace_jsonl, serial.trace_jsonl)
        << workers << " workers";
    EXPECT_EQ(parallel.rssac002_jsonl, serial.rssac002_jsonl)
        << workers << " workers";
  }
}

// Same property with the *diagnostic* surfaces switched on: the exec-pool
// profiler (via ROOTSIM_PROFILE) and a shared flight recorder must not leak
// into any deterministic export for any worker count. The profiler's own
// artifact and the flight ring are wall-clock/scheduling-ordered and are
// deliberately not byte-compared — only their presence and totals are.
TEST(ZoneAudit, ByteIdenticalWithProfilerAndFlightRecorderEnabled) {
  const char* profile_path = "PROF_exec_engine_test.json";
  setenv("ROOTSIM_PROFILE", profile_path, 1);
  netsim::FlightRecorder serial_flight(64);
  AuditRun serial = run_audit(1, &serial_flight);
  ASSERT_FALSE(serial.rssac002_jsonl.empty());
  EXPECT_GT(serial.flight_recorded, 0u);
  std::FILE* artifact = std::fopen(profile_path, "r");
  EXPECT_NE(artifact, nullptr) << "profiler artifact was not written";
  if (artifact) std::fclose(artifact);
  for (size_t workers : {2, 4, 8}) {
    netsim::FlightRecorder flight(64);
    AuditRun parallel = run_audit(workers, &flight);
    ASSERT_EQ(parallel.observations.size(), serial.observations.size())
        << workers << " workers";
    for (size_t i = 0; i < serial.observations.size(); ++i)
      ASSERT_TRUE(
          observations_equal(parallel.observations[i], serial.observations[i]))
          << workers << " workers, observation " << i;
    EXPECT_EQ(parallel.metrics_jsonl, serial.metrics_jsonl)
        << workers << " workers";
    EXPECT_EQ(parallel.trace_jsonl, serial.trace_jsonl)
        << workers << " workers";
    EXPECT_EQ(parallel.rssac002_jsonl, serial.rssac002_jsonl)
        << workers << " workers";
    // The flight recorder sees the same *set* of exchanges in any schedule.
    EXPECT_EQ(parallel.flight_recorded, serial.flight_recorded)
        << workers << " workers";
  }
  unsetenv("ROOTSIM_PROFILE");
  std::remove(profile_path);
}

// The SLO plane rides the same shard/merge path, so its exports inherit the
// same acceptance bar: slo.jsonl and incidents.jsonl byte-identical at every
// worker count under BOTH scheduler modes (and across the modes — the steal
// schedule must be as invisible as the worker count). Shortened schedule
// covering the b.root renumbering window keeps the test fast.
TEST(SloTimeline, ExportsByteIdenticalAcrossWorkersAndSchedulers) {
  measure::CampaignConfig config;
  config.zone.tld_count = 25;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  config.schedule.start = util::make_time(2023, 11, 20);
  config.schedule.end = util::make_time(2023, 12, 10);
  const measure::Campaign campaign(config);

  auto run = [&](size_t workers) {
    netsim::FlightRecorder flight(64);
    measure::SloTimelineOptions options;
    options.flight_recorder = &flight;
    options.workers = workers;
    auto result = campaign.run_slo_timeline(options);
    return std::pair<std::string, std::string>(result.slo_jsonl,
                                               result.incidents_jsonl);
  };

  std::pair<std::string, std::string> reference;
  for (const char* sched : {"steal", "static"}) {
    setenv("ROOTSIM_SCHED", sched, 1);
    auto serial = run(1);
    ASSERT_FALSE(serial.first.empty()) << sched;
    ASSERT_FALSE(serial.second.empty()) << sched;
    if (reference.first.empty())
      reference = serial;
    else
      EXPECT_EQ(serial, reference) << "scheduler mode leaked into the export";
    for (size_t workers : {2u, 8u}) {
      auto parallel = run(workers);
      EXPECT_EQ(parallel.first, serial.first)
          << sched << " slo.jsonl @" << workers << " workers";
      EXPECT_EQ(parallel.second, serial.second)
          << sched << " incidents.jsonl @" << workers << " workers";
    }
  }
  unsetenv("ROOTSIM_SCHED");
}

}  // namespace
}  // namespace rootsim
