// DS digest computation and the DS-anchored trust bootstrap (RFC 4034 §5,
// RFC 4509) — the way real validators anchor the root KSK from IANA's
// published trust anchor.
#include <gtest/gtest.h>

#include "dnssec/validator.h"
#include "rss/zone_authority.h"

namespace rootsim::dnssec {
namespace {

using util::make_time;

struct Fixture {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  std::unique_ptr<rss::ZoneAuthority> authority;

  Fixture() {
    config.tld_count = 25;
    config.rsa_modulus_bits = 512;
    authority = std::make_unique<rss::ZoneAuthority>(catalog, config);
  }

  const dns::DnskeyData& ksk(util::UnixTime t) {
    const dns::RRset* set =
        authority->zone_at(t).find(dns::Name(), dns::RRType::DNSKEY);
    for (const auto& rdata : set->rdatas) {
      const auto* key = std::get_if<dns::DnskeyData>(&rdata);
      if (key && key->is_ksk()) return *key;
    }
    throw std::runtime_error("no KSK");
  }
};

TEST(Ds, MakeAndMatchSha256) {
  Fixture f;
  util::UnixTime now = make_time(2023, 10, 1);
  const auto& ksk = f.ksk(now);
  dns::DsData ds = make_ds(dns::Name(), ksk, 2);
  EXPECT_EQ(ds.digest.size(), 32u);
  EXPECT_EQ(ds.key_tag, ksk.key_tag());
  EXPECT_TRUE(ds_matches(dns::Name(), ds, ksk));
}

TEST(Ds, MakeAndMatchSha384) {
  Fixture f;
  const auto& ksk = f.ksk(make_time(2023, 10, 1));
  dns::DsData ds = make_ds(dns::Name(), ksk, 4);
  EXPECT_EQ(ds.digest.size(), 48u);
  EXPECT_TRUE(ds_matches(dns::Name(), ds, ksk));
}

TEST(Ds, MismatchDetected) {
  Fixture f;
  util::UnixTime now = make_time(2023, 10, 1);
  const auto& ksk = f.ksk(now);
  dns::DsData ds = make_ds(dns::Name(), ksk, 2);
  // Flipped digest byte.
  auto bad = ds;
  bad.digest[3] ^= 0x01;
  EXPECT_FALSE(ds_matches(dns::Name(), bad, ksk));
  // Wrong owner name.
  EXPECT_FALSE(ds_matches(*dns::Name::parse("example."), ds, ksk));
  // Unsupported digest type.
  auto sha1_style = ds;
  sha1_style.digest_type = 1;
  EXPECT_FALSE(ds_matches(dns::Name(), sha1_style, ksk));
  // Different key (the ZSK) never matches a KSK DS.
  const dns::RRset* set =
      f.authority->zone_at(now).find(dns::Name(), dns::RRType::DNSKEY);
  for (const auto& rdata : set->rdatas) {
    const auto* key = std::get_if<dns::DnskeyData>(&rdata);
    if (key && !key->is_ksk()) EXPECT_FALSE(ds_matches(dns::Name(), ds, *key));
  }
}

TEST(Ds, AnchoredBootstrapAcceptsGenuineZone) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::DsData anchor = make_ds(dns::Name(), f.ksk(now), 2);
  const dns::Zone& zone = f.authority->zone_at(now);
  TrustAnchors anchors = TrustAnchors::from_ds_anchor(anchor, zone, now);
  ASSERT_EQ(anchors.keys.size(), 2u);  // KSK + ZSK accepted
  // And the bootstrap anchors validate the whole zone.
  auto result = validate_zone(zone, anchors, now);
  EXPECT_TRUE(result.fully_valid());
}

TEST(Ds, AnchoredBootstrapRejectsWrongAnchor) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::DsData anchor = make_ds(dns::Name(), f.ksk(now), 2);
  anchor.digest[0] ^= 0xFF;  // operator configured a corrupted anchor
  TrustAnchors anchors =
      TrustAnchors::from_ds_anchor(anchor, f.authority->zone_at(now), now);
  EXPECT_TRUE(anchors.keys.empty());
}

TEST(Ds, AnchoredBootstrapRejectsTamperedDnskeySignature) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::DsData anchor = make_ds(dns::Name(), f.ksk(now), 2);
  dns::Zone tampered = f.authority->zone_at(now);
  // Corrupt the RRSIG covering DNSKEY.
  const dns::RRset* sigs = tampered.find(dns::Name(), dns::RRType::RRSIG);
  auto rdatas = sigs->rdatas;
  for (auto& rdata : rdatas) {
    auto* sig = std::get_if<dns::RrsigData>(&rdata);
    if (sig && sig->type_covered == dns::RRType::DNSKEY &&
        !sig->signature.empty())
      sig->signature[8] ^= 0x40;
  }
  tampered.remove_rrset(dns::Name(), dns::RRType::RRSIG);
  for (const auto& rdata : rdatas)
    tampered.add({dns::Name(), dns::RRType::RRSIG, dns::RRClass::IN, 86400,
                  rdata});
  TrustAnchors anchors = TrustAnchors::from_ds_anchor(anchor, tampered, now);
  EXPECT_TRUE(anchors.keys.empty())
      << "a KSK that cannot vouch for the key set must not bootstrap";
}

TEST(Ds, StableAcrossSerials) {
  // The KSK does not roll during the campaign: the same configured anchor
  // bootstraps every serial (the real root's anchor lasted 2010-2018/2024).
  Fixture f;
  dns::DsData anchor = make_ds(dns::Name(), f.ksk(make_time(2023, 7, 15)), 2);
  for (auto t : {make_time(2023, 7, 15), make_time(2023, 10, 1),
                 make_time(2023, 12, 20)}) {
    TrustAnchors anchors =
        TrustAnchors::from_ds_anchor(anchor, f.authority->zone_at(t), t);
    EXPECT_EQ(anchors.keys.size(), 2u) << util::format_date(t);
  }
}

}  // namespace
}  // namespace rootsim::dnssec
