// Differential round-trip properties over generator-produced inputs. Each
// codec must be a retraction: one decode/encode trip may normalize (NSEC
// bitmap order, compression layout), but a second trip must be a fixpoint.
// These are the properties the fuzz targets assert on arbitrary bytes,
// pinned here on thousands of *valid* inputs so a regression is attributable
// to the codec rather than to hostile-input handling.
#include <gtest/gtest.h>

#include "dns/axfr.h"
#include "dns/codec.h"
#include "dns/message.h"
#include "dns/zone_diff.h"
#include "dnssec/canonical.h"
#include "fuzz/generators.h"
#include "util/rng.h"

namespace rootsim::dns {
namespace {

constexpr int kRounds = 400;

TEST(RoundTrip, MessageEncodeDecodeFixpoint) {
  util::Rng rng(1001);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(round);
    Message original =
        round % 2 ? fuzz::random_response(rng) : fuzz::random_query(rng);
    auto e1 = original.encode();
    auto d1 = Message::decode(e1);
    ASSERT_TRUE(d1.has_value());
    auto e2 = d1->encode();
    EXPECT_EQ(e1, e2);
    // Counts and question survive exactly; rdata normalization (if any)
    // already happened in e1 because original came from our own encoder.
    EXPECT_EQ(d1->questions, original.questions);
    EXPECT_EQ(d1->answers.size(), original.answers.size());
  }
}

TEST(RoundTrip, NameEncodeDecodeFixpoint) {
  util::Rng rng(1002);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(round);
    auto chain = fuzz::pointer_chain_name(rng, 1 + rng.uniform(60));
    WireReader reader(chain.bytes);
    reader.seek(chain.final_name_offset);
    Name name = reader.get_name();
    ASSERT_TRUE(reader.ok());
    WireWriter writer;
    writer.put_name(name, /*compress=*/false);
    ASSERT_EQ(writer.size(), name.wire_length());
    WireReader second(writer.data());
    Name again = second.get_name();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(again, name);
  }
}

TEST(RoundTrip, CanonicalFormIdempotent) {
  util::Rng rng(1003);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(round);
    Message msg = fuzz::random_response(rng);
    for (const auto& rr : msg.answers) {
      if (rr.type == RRType::OPT) continue;
      auto c1 = dnssec::canonical_record(rr);
      WireReader reader(c1);
      auto reparsed = decode_record(reader);
      ASSERT_TRUE(reparsed.has_value());
      auto c2 = dnssec::canonical_record(*reparsed);
      EXPECT_EQ(c1, c2);
    }
  }
}

TEST(RoundTrip, CanonicalRdataSortIdempotent) {
  util::Rng rng(1004);
  for (int round = 0; round < kRounds; ++round) {
    Message msg = fuzz::random_response(rng);
    std::vector<Rdata> rdatas;
    for (const auto& rr : msg.answers)
      if (rr.type != RRType::OPT) rdatas.push_back(rr.rdata);
    auto once = dnssec::sort_rdatas_canonically(rdatas);
    auto twice = dnssec::sort_rdatas_canonically(once);
    EXPECT_EQ(once, twice);
  }
}

TEST(RoundTrip, ZoneThroughAxfrWireAndBack) {
  util::Rng rng(1005);
  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE(round);
    Zone zone = fuzz::random_zone(rng, 1 + rng.uniform(5));
    Question question{zone.origin(), RRType::AXFR, RRClass::IN};
    AxfrStreamOptions options;
    options.max_message_bytes = 512 + rng.uniform(4096);
    auto wire = encode_axfr_stream(zone.axfr_records(), question, options);
    ASSERT_FALSE(wire.empty());
    auto parsed = decode_axfr_stream(wire);
    ASSERT_TRUE(parsed.ok()) << *parsed.error;
    auto rebuilt = Zone::from_axfr(parsed.records, zone.origin());
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_TRUE(*rebuilt == zone);
  }
}

TEST(RoundTrip, ZoneThroughMasterFileAndBack) {
  util::Rng rng(1006);
  for (int round = 0; round < 60; ++round) {
    SCOPED_TRACE(round);
    Zone zone = fuzz::random_zone(rng, 1 + rng.uniform(5));
    std::string text = zone.to_master_file();
    std::string error;
    auto reparsed = Zone::parse_master_file(text, &error);
    ASSERT_TRUE(reparsed.has_value()) << error;
    EXPECT_TRUE(*reparsed == zone);
    EXPECT_EQ(reparsed->to_master_file(), text);
  }
}

TEST(RoundTrip, ZoneDiffApplyAndRevertAreInverses) {
  util::Rng rng(1007);
  for (int round = 0; round < 120; ++round) {
    SCOPED_TRACE(round);
    Zone before = fuzz::random_zone(rng, 1 + rng.uniform(4));
    Zone after = fuzz::random_zone(rng, 1 + rng.uniform(4));
    ZoneDiff diff = diff_zones(before, after);
    Zone forward = before;
    EXPECT_TRUE(apply_diff(forward, diff));
    EXPECT_TRUE(forward == after);
    EXPECT_TRUE(apply_diff(forward, diff.inverse()));
    EXPECT_TRUE(forward == before);
    EXPECT_TRUE(diff_zones(before, before).empty());
  }
}

}  // namespace
}  // namespace rootsim::dns
