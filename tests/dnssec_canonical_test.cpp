// Properties of the RFC 4034 §6 canonical form layer, which everything in
// DNSSEC and ZONEMD depends on.
#include "dnssec/canonical.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rootsim::dnssec {
namespace {

using dns::Name;

TEST(Canonical, RdataEncodingIsDeterministic) {
  dns::RrsigData sig;
  sig.type_covered = dns::RRType::SOA;
  sig.algorithm = 8;
  sig.signer = *Name::parse("Example.");
  sig.signature = {1, 2, 3};
  EXPECT_EQ(canonical_rdata(dns::Rdata(sig)), canonical_rdata(dns::Rdata(sig)));
}

TEST(Canonical, CaseVariantsEncodeIdentically) {
  auto lower = canonical_rdata(dns::NsData{*Name::parse("ns.example.")});
  auto upper = canonical_rdata(dns::NsData{*Name::parse("NS.EXAMPLE.")});
  EXPECT_EQ(lower, upper);
}

TEST(Canonical, SortIsStableAndIdempotent) {
  util::Rng rng(3);
  std::vector<dns::Rdata> rdatas;
  for (int i = 0; i < 30; ++i)
    rdatas.push_back(dns::AData{util::IpAddress::v4(
        static_cast<uint32_t>(rng.next()))});
  auto once = sort_rdatas_canonically(rdatas);
  auto twice = sort_rdatas_canonically(once);
  EXPECT_EQ(once, twice);
  // Sorted by canonical byte order.
  for (size_t i = 1; i < once.size(); ++i)
    EXPECT_LE(canonical_rdata(once[i - 1]), canonical_rdata(once[i]));
  // Permutation-invariant.
  auto shuffled = rdatas;
  rng.shuffle(shuffled);
  EXPECT_EQ(sort_rdatas_canonically(shuffled), once);
}

TEST(Canonical, SigningPayloadLayout) {
  // RFC 4034 §3.1.8.1: payload = RRSIG RDATA (sans signature) || RR(i)s.
  dns::RRset rrset;
  rrset.name = *Name::parse("EXAMPLE.");
  rrset.type = dns::RRType::A;
  rrset.rclass = dns::RRClass::IN;
  rrset.ttl = 3600;
  rrset.rdatas = {dns::AData{util::IpAddress::v4(192, 0, 2, 1)}};
  dns::RrsigData sig;
  sig.type_covered = dns::RRType::A;
  sig.algorithm = 8;
  sig.labels = 1;
  sig.original_ttl = 7200;  // differs from the RRset TTL on purpose
  sig.expiration = 2000;
  sig.inception = 1000;
  sig.key_tag = 0xBEEF;
  sig.signer = Name();
  auto payload = signing_payload(sig, rrset);
  // Fixed RRSIG prefix: type(2) alg(1) labels(1) ottl(4) exp(4) inc(4)
  // tag(2) = 18 octets, then the signer name (1 octet for the root).
  ASSERT_GT(payload.size(), 19u);
  EXPECT_EQ(payload[0], 0);
  EXPECT_EQ(payload[1], 1);      // type covered = A
  EXPECT_EQ(payload[2], 8);      // algorithm
  EXPECT_EQ(payload[3], 1);      // labels
  EXPECT_EQ(payload[16], 0xBE);  // key tag
  EXPECT_EQ(payload[17], 0xEF);
  EXPECT_EQ(payload[18], 0);     // root signer name
  // Owner name in the RR section is lower-cased: \7example\0.
  EXPECT_EQ(payload[19], 7);
  EXPECT_EQ(payload[20], 'e');
  // The RR's TTL field carries the ORIGINAL TTL (7200 = 0x1C20), not 3600.
  size_t ttl_offset = 19 + 9 + 2 + 2;  // owner(9) type(2) class(2)
  EXPECT_EQ(payload[ttl_offset + 2], 0x1C);
  EXPECT_EQ(payload[ttl_offset + 3], 0x20);
}

TEST(Canonical, PayloadChangesWithAnyField) {
  dns::RRset rrset;
  rrset.name = *Name::parse("x.");
  rrset.type = dns::RRType::TXT;
  rrset.ttl = 60;
  rrset.rdatas = {dns::TxtData{{"hello"}}};
  dns::RrsigData base;
  base.type_covered = dns::RRType::TXT;
  base.algorithm = 8;
  base.labels = 1;
  base.original_ttl = 60;
  base.expiration = 2000;
  base.inception = 1000;
  base.key_tag = 1;
  base.signer = Name();
  auto reference = signing_payload(base, rrset);

  auto variant = base;
  variant.expiration = 2001;
  EXPECT_NE(signing_payload(variant, rrset), reference);
  variant = base;
  variant.key_tag = 2;
  EXPECT_NE(signing_payload(variant, rrset), reference);
  dns::RRset other = rrset;
  std::get<dns::TxtData>(other.rdatas[0]).strings[0] = "Hello";
  EXPECT_NE(signing_payload(base, other), reference)
      << "TXT payload content is case-sensitive (not a name)";
}

TEST(Canonical, RecordEncodingMatchesWireLength) {
  dns::ResourceRecord rr;
  rr.name = *Name::parse("ruhr.");
  rr.type = dns::RRType::NS;
  rr.ttl = 172800;
  rr.rdata = dns::NsData{*Name::parse("ns1.ruhr.")};
  auto bytes = canonical_record(rr);
  // owner(6) + type(2) + class(2) + ttl(4) + rdlen(2) + rdata(10).
  EXPECT_EQ(bytes.size(), 6u + 2 + 2 + 4 + 2 + 10);
}

}  // namespace
}  // namespace rootsim::dnssec
