#include "util/table.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace rootsim::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"Root", "Sites", "%Cov"});
  table.add_row({"a", "56", "89.3"});
  table.add_row({"b", "6", "100.0"});
  std::string out = table.render();
  EXPECT_NE(out.find("Root"), std::string::npos);
  EXPECT_NE(out.find("89.3"), std::string::npos);
  // Three lines of content: header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsAlign) {
  TextTable table({"x", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-cell", "22"});
  auto lines = split(table.render(), '\n');
  ASSERT_GE(lines.size(), 4u);
  // All non-empty lines have equal rendered width.
  size_t width = lines[1].size();  // separator line defines total width
  for (const auto& line : lines) {
    if (line.empty()) continue;
    EXPECT_LE(line.size(), width + 2);
  }
  // Numeric column is right-aligned: "1" and "22" end at the same column.
  EXPECT_EQ(lines[2].find_last_not_of(' '), lines[3].find_last_not_of(' '));
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::string out = table.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, NumAndPctFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::pct(0.695, 1), "69.5%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, CustomAlignment) {
  TextTable table({"l", "r"});
  table.set_alignment({Align::Right, Align::Left});
  table.add_row({"x", "y"});
  table.add_row({"xx", "yy"});
  auto lines = split(table.render(), '\n');
  // First column right-aligned: "x" is indented relative to "xx".
  EXPECT_EQ(lines[2][0], ' ');
  EXPECT_EQ(lines[3][0], 'x');
}

}  // namespace
}  // namespace rootsim::util
