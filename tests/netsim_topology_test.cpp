#include "netsim/topology.h"

#include <gtest/gtest.h>

#include "rss/catalog.h"
#include "util/stats.h"

namespace rootsim::netsim {
namespace {

Topology make_topology(uint64_t seed = 42) {
  rss::RootCatalog catalog;
  TopologyConfig config;
  config.seed = seed;
  return build_topology(config, catalog.all_deployment_specs(),
                        rss::paper_detour_rules());
}

TEST(Topology, SiteCountsMatchCatalog) {
  rss::RootCatalog catalog;
  Topology topo = make_topology();
  for (size_t root = 0; root < rss::kRootCount; ++root) {
    const auto& spec = catalog.server(root).deployment;
    int expected = spec.total_global() + spec.total_local();
    EXPECT_EQ(topo.sites_by_root[root].size(), static_cast<size_t>(expected))
        << "root " << static_cast<char>('a' + root);
  }
  // Worldwide totals from the paper's Table 1.
  EXPECT_EQ(topo.sites_by_root[1].size(), 6u);    // b
  EXPECT_EQ(topo.sites_by_root[5].size(), 345u);  // f
  EXPECT_EQ(topo.sites_by_root[11].size(), 132u); // l
}

TEST(Topology, SitesSitAtFacilitiesOfTheirRegion) {
  Topology topo = make_topology();
  for (const AnycastSite& site : topo.sites) {
    ASSERT_LT(site.facility, topo.facilities.size());
    EXPECT_EQ(topo.facilities[site.facility].region, site.region);
    // Metro scatter keeps the instance within ~1 degree of the facility.
    EXPECT_NEAR(site.location.lat_deg,
                topo.facilities[site.facility].location.lat_deg, 1.5);
  }
}

TEST(Topology, DeterministicForSeed) {
  Topology a = make_topology(7);
  Topology b = make_topology(7);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].facility, b.sites[i].facility);
    EXPECT_EQ(a.sites[i].identity, b.sites[i].identity);
  }
}

TEST(Topology, DifferentSeedsDiffer) {
  Topology a = make_topology(1);
  Topology b = make_topology(2);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  size_t same_facility = 0;
  for (size_t i = 0; i < a.sites.size(); ++i)
    if (a.sites[i].facility == b.sites[i].facility) ++same_facility;
  EXPECT_LT(same_facility, a.sites.size());
}

TEST(Topology, CoLocationExistsByConstruction) {
  // Attractiveness-weighted placement must put multiple roots into the same
  // facility somewhere — the structural premise of RQ1.
  Topology topo = make_topology();
  std::map<FacilityId, std::set<uint32_t>> roots_at;
  for (const AnycastSite& site : topo.sites)
    roots_at[site.facility].insert(site.root_index);
  size_t max_roots = 0;
  for (const auto& [facility, roots] : roots_at)
    max_roots = std::max(max_roots, roots.size());
  EXPECT_GE(max_roots, 6u) << "big facilities should host many roots";
}

TEST(Topology, LocalSitesHaveScope) {
  Topology topo = make_topology();
  size_t as_local = 0, ixp_local = 0;
  for (const AnycastSite& site : topo.sites) {
    if (site.type != SiteType::Local) continue;
    if (site.local_scope == LocalScope::AsLocal) ++as_local;
    else ++ixp_local;
  }
  EXPECT_GT(as_local, 0u);
  EXPECT_GT(ixp_local, 0u);
}

TEST(Topology, IdentitiesAreUniquePerRoot) {
  Topology topo = make_topology();
  std::set<std::pair<uint32_t, std::string>> identities;
  for (const AnycastSite& site : topo.sites) {
    auto [it, inserted] = identities.insert({site.root_index, site.identity});
    EXPECT_TRUE(inserted) << "duplicate identity " << site.identity;
  }
}

TEST(DeploymentSpec, Totals) {
  rss::RootCatalog catalog;
  // Worldwide ground truth from Table 1.
  EXPECT_EQ(catalog.server(0).deployment.total_global(), 33);   // a
  EXPECT_EQ(catalog.server(0).deployment.total_local(), 23);
  EXPECT_EQ(catalog.server(3).deployment.total_local(), 186);   // d
  EXPECT_EQ(catalog.server(4).deployment.total_local(), 147);   // e
  EXPECT_EQ(catalog.server(5).deployment.total_global(), 129);  // f
  EXPECT_EQ(catalog.server(5).deployment.total_local(), 216);
  EXPECT_EQ(catalog.server(10).deployment.total_global(), 105); // k
  EXPECT_EQ(catalog.server(12).deployment.total_global(), 7);   // m
}

}  // namespace
}  // namespace rootsim::netsim
