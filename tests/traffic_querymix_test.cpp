#include "traffic/querymix.h"

#include <gtest/gtest.h>

#include "rss/zone_authority.h"

namespace rootsim::traffic {
namespace {

struct Fixture {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  std::unique_ptr<rss::ZoneAuthority> authority;
  std::unique_ptr<rss::RootServerInstance> instance;

  Fixture() {
    config.tld_count = 40;
    config.rsa_modulus_bits = 512;
    authority = std::make_unique<rss::ZoneAuthority>(catalog, config);
    instance = std::make_unique<rss::RootServerInstance>(*authority, catalog, 0,
                                                         "na00.a");
  }
};

TEST(QueryMix, GeneratedMixMatchesConfiguredFractions) {
  Fixture f;
  QueryMixConfig config;
  config.queries = 20000;
  auto workload = generate_query_workload(f.authority->tlds(), config);
  ASSERT_EQ(workload.size(), config.queries);
  std::array<size_t, 5> counts{};
  for (const auto& q : workload) ++counts[static_cast<size_t>(q.cls)];
  auto fraction = [&](QueryClass cls) {
    return static_cast<double>(counts[static_cast<size_t>(cls)]) /
           config.queries;
  };
  EXPECT_NEAR(fraction(QueryClass::NonexistentTld), 0.55, 0.02);
  EXPECT_NEAR(fraction(QueryClass::RepeatedQuery), 0.18, 0.02);
  EXPECT_NEAR(fraction(QueryClass::RootNs), 0.02, 0.01);
  EXPECT_NEAR(fraction(QueryClass::Junk), 0.05, 0.01);
  EXPECT_NEAR(fraction(QueryClass::ValidTld), 0.20, 0.02);
}

TEST(QueryMix, ReplayReproducesGaoFinding) {
  // Gao et al. (via the paper's §3): more than half of all queries to the
  // root fail due to non-existent TLDs.
  Fixture f;
  QueryMixConfig config;
  config.queries = 8000;
  auto workload = generate_query_workload(f.authority->tlds(), config);
  auto report = replay_workload(*f.instance, workload,
                                util::make_time(2023, 10, 1));
  EXPECT_EQ(report.total, config.queries);
  EXPECT_GT(report.nxdomain_fraction(), 0.5);
  // Valid-TLD queries get referrals, never NXDOMAIN.
  size_t valid = static_cast<size_t>(QueryClass::ValidTld);
  EXPECT_EQ(report.per_class_nxdomain[valid], 0u);
  EXPECT_GT(report.referrals, 0u);
  // Nonexistent-TLD queries are all NXDOMAIN.
  size_t nxd = static_cast<size_t>(QueryClass::NonexistentTld);
  EXPECT_EQ(report.per_class_nxdomain[nxd], report.per_class_count[nxd]);
}

TEST(QueryMix, RepeatedQueriesComeFromSmallPool) {
  Fixture f;
  QueryMixConfig config;
  config.queries = 5000;
  auto workload = generate_query_workload(f.authority->tlds(), config);
  std::set<std::string> repeated_names;
  size_t repeated_total = 0;
  for (const auto& q : workload) {
    if (q.cls != QueryClass::RepeatedQuery) continue;
    repeated_names.insert(q.qname.to_string());
    ++repeated_total;
  }
  EXPECT_GT(repeated_total, 500u);
  EXPECT_LE(repeated_names.size(), 5u) << "repeats concentrate on few names";
}

TEST(QueryMix, DeterministicForSeed) {
  Fixture f;
  QueryMixConfig config;
  config.queries = 500;
  auto a = generate_query_workload(f.authority->tlds(), config);
  auto b = generate_query_workload(f.authority->tlds(), config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].qname, b[i].qname);
  }
}

TEST(QueryMix, ClassNames) {
  EXPECT_EQ(to_string(QueryClass::NonexistentTld), "nonexistent-tld");
  EXPECT_EQ(to_string(QueryClass::Junk), "junk");
}

}  // namespace
}  // namespace rootsim::traffic
