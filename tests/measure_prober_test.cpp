#include "measure/prober.h"

#include <gtest/gtest.h>

#include "measure/campaign.h"

namespace rootsim::measure {
namespace {

using util::make_time;

CampaignConfig fast_config() {
  CampaignConfig config;
  config.zone.tld_count = 25;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  return config;
}

TEST(Prober, QueryListMatchesAppendixF) {
  auto questions = Prober::query_list();
  // 3 root/infrastructure queries + 4 CHAOS + 13*3 per-root-name queries.
  EXPECT_EQ(questions.size(), 46u);
  size_t chaos = 0, a = 0, aaaa = 0, txt_in = 0;
  for (const auto& q : questions) {
    if (q.qclass == dns::RRClass::CH) ++chaos;
    if (q.qtype == dns::RRType::A) ++a;
    if (q.qtype == dns::RRType::AAAA) ++aaaa;
    if (q.qtype == dns::RRType::TXT && q.qclass == dns::RRClass::IN) ++txt_in;
  }
  EXPECT_EQ(chaos, 4u);
  EXPECT_EQ(a, 13u);
  EXPECT_EQ(aaaa, 13u);
  EXPECT_EQ(txt_in, 13u);
  EXPECT_EQ(questions[0].qtype, dns::RRType::ZONEMD);
}

TEST(Prober, FullProbeProducesAllArtifacts) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = make_time(2023, 10, 1, 12, 0);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().server(10).ipv4, now,
      campaign.schedule().round_at(now));
  EXPECT_EQ(record.root_index, 10);
  EXPECT_EQ(record.family, util::IpFamily::V4);
  EXPECT_FALSE(record.old_b_address);
  EXPECT_EQ(record.queries.size(), 46u);
  EXPECT_FALSE(record.instance_identity.empty());
  EXPECT_GT(record.rtt_ms, 0);
  EXPECT_GE(record.traceroute_hops.size(), 4u);
  ASSERT_TRUE(record.axfr.has_value());
  EXPECT_FALSE(record.axfr->refused);
  EXPECT_EQ(record.axfr->soa_serial,
            campaign.authority().serial_at(now));
}

TEST(Prober, OldBAddressFlagged) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = make_time(2023, 10, 1);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().renumbering().old_ipv6, now,
      campaign.schedule().round_at(now));
  EXPECT_EQ(record.root_index, 1);
  EXPECT_TRUE(record.old_b_address);
  EXPECT_EQ(record.family, util::IpFamily::V6);
}

TEST(Prober, AllQueriesAnswered) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[1];
  util::UnixTime now = make_time(2023, 12, 10);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().server(0).ipv4, now,
      campaign.schedule().round_at(now));
  for (const auto& query : record.queries) {
    EXPECT_FALSE(query.timed_out);
    EXPECT_EQ(query.rcode, dns::Rcode::NoError)
        << query.question.qname.to_string();
  }
}

TEST(Prober, IdentityMatchesSelectedSite) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[2];
  util::UnixTime now = make_time(2023, 9, 1);
  uint64_t round = campaign.schedule().round_at(now);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().server(5).ipv6, now, round);
  const auto& site = campaign.topology().sites[record.site_id];
  EXPECT_EQ(record.instance_identity, site.identity);
}

TEST(Prober, BitflipInjectionCorruptsTransfer) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = make_time(2023, 11, 18, 7, 30);
  uint64_t round = campaign.schedule().round_at(now);
  const auto& address = campaign.catalog().server(6).ipv6;
  ProbeRecord clean = campaign.prober().probe(vp, address, now, round);
  Prober::FaultKnobs knobs;
  knobs.inject_bitflip = true;
  knobs.bitflip_seed = 99;
  ProbeRecord corrupt = campaign.prober().probe(vp, address, now, round, knobs);
  ASSERT_TRUE(clean.axfr.has_value());
  ASSERT_TRUE(corrupt.axfr.has_value());
  EXPECT_TRUE(corrupt.axfr->bitflip_injected);
  EXPECT_FALSE(corrupt.axfr->bitflip_note.empty());
  EXPECT_NE(clean.axfr->records, corrupt.axfr->records);
  // Exactly one record differs (a single bit flip).
  size_t differing = 0;
  ASSERT_EQ(clean.axfr->records.size(), corrupt.axfr->records.size());
  for (size_t i = 0; i < clean.axfr->records.size(); ++i)
    if (!(clean.axfr->records[i] == corrupt.axfr->records[i])) ++differing;
  EXPECT_EQ(differing, 1u);
}

TEST(Prober, StaleServerKnobServesOldSerial) {
  Campaign campaign(fast_config());
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = make_time(2023, 10, 6, 10, 0);
  Prober::FaultKnobs knobs;
  knobs.server_frozen_at = make_time(2023, 9, 18);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().server(3).ipv4, now,
      campaign.schedule().round_at(now), knobs);
  ASSERT_TRUE(record.axfr.has_value());
  EXPECT_EQ(record.axfr->soa_serial,
            campaign.authority().serial_at(make_time(2023, 9, 18)));
}

TEST(Prober, VpClockRecorded) {
  Campaign campaign(fast_config());
  VantagePoint vp = campaign.vantage_points()[0];
  vp.clock_offset_s = -86400;
  util::UnixTime now = make_time(2023, 12, 21, 10, 35);
  ProbeRecord record = campaign.prober().probe(
      vp, campaign.catalog().server(2).ipv4, now,
      campaign.schedule().round_at(now));
  EXPECT_EQ(record.true_time, now);
  EXPECT_EQ(record.vp_time, now - 86400);
}

TEST(Prober, InjectedLossRetriesAndTimesOutDeterministically) {
  CampaignConfig config = fast_config();
  config.transport.defaults.loss = 0.25;
  Campaign campaign(config);
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = make_time(2023, 10, 1, 12, 0);
  uint64_t round = campaign.schedule().round_at(now);
  const auto& address = campaign.catalog().server(4).ipv4;

  ProbeRecord first = campaign.prober().probe(vp, address, now, round);
  ProbeRecord second = campaign.prober().probe(vp, address, now, round);

  // The path RNG is a pure function of (seed, vp, root, family, round):
  // replaying the probe replays every loss draw, retry and timeout budget.
  ASSERT_EQ(first.queries.size(), second.queries.size());
  uint32_t retransmissions = 0, timeouts = 0;
  for (size_t i = 0; i < first.queries.size(); ++i) {
    const QueryResult& a = first.queries[i];
    const QueryResult& b = second.queries[i];
    EXPECT_EQ(a.udp_attempts, b.udp_attempts) << i;
    EXPECT_EQ(a.timed_out, b.timed_out) << i;
    EXPECT_DOUBLE_EQ(a.rtt_ms, b.rtt_ms) << i;
    if (a.udp_attempts > 1) ++retransmissions;
    if (a.timed_out) {
      ++timeouts;
      // A full timeout charges the whole dig-like budget: 1500+3000+6000.
      EXPECT_EQ(a.udp_attempts, 3u) << i;
      EXPECT_DOUBLE_EQ(a.rtt_ms, 10500.0) << i;
    }
  }
  EXPECT_GT(retransmissions, 0u);  // 25% loss over 46 queries must retry some
  EXPECT_EQ(first.transport.udp_attempts, second.transport.udp_attempts);
  EXPECT_EQ(first.transport.drops, second.transport.drops);
  EXPECT_DOUBLE_EQ(first.transport.time_ms, second.transport.time_ms);
  EXPECT_GT(first.transport.drops, 0u);
  EXPECT_EQ(first.transport.timeouts, timeouts + (first.axfr->timed_out ? 1 : 0));
}

TEST(Prober, ClampedMtuForcesTcpFallbackWithFullAnswers) {
  // 2048-bit keys push the ". NS" DO answer (13 NS + one 256-byte RRSIG
  // signature) past a 512-byte path even though the client advertises 1232.
  CampaignConfig clean_config = fast_config();
  clean_config.zone.rsa_modulus_bits = 2048;
  CampaignConfig clamped_config = clean_config;
  clamped_config.transport.defaults.path_mtu = 512;
  Campaign clamped(clamped_config);
  Campaign clean(clean_config);
  const auto& vp = clamped.vantage_points()[0];
  util::UnixTime now = make_time(2023, 10, 1, 12, 0);
  uint64_t round = clamped.schedule().round_at(now);
  const auto& address = clamped.catalog().server(0).ipv4;

  ProbeRecord record = clamped.prober().probe(vp, address, now, round);
  ProbeRecord reference = clean.prober().probe(vp, address, now, round);

  uint32_t fallbacks = 0;
  ASSERT_EQ(record.queries.size(), reference.queries.size());
  for (size_t i = 0; i < record.queries.size(); ++i) {
    const QueryResult& q = record.queries[i];
    EXPECT_FALSE(q.timed_out) << i;  // the clamp slows queries, loses none
    if (q.retried_over_tcp) {
      ++fallbacks;
      EXPECT_EQ(q.transport, netsim::TransportProto::Tcp) << i;
      EXPECT_EQ(q.tcp_attempts, 1u) << i;
      // UDP round + handshake + TCP round over the same path.
      EXPECT_DOUBLE_EQ(q.rtt_ms, 3.0 * record.rtt_ms) << i;
    } else {
      EXPECT_EQ(q.transport, netsim::TransportProto::Udp) << i;
    }
    // The answers match the clean campaign: TCP recovers what UDP truncated.
    EXPECT_EQ(q.answers, reference.queries[i].answers) << i;
  }
  EXPECT_GT(fallbacks, 0u);  // DNSSEC answers exceed a 512-byte path MTU
  EXPECT_EQ(record.transport.tcp_fallbacks, fallbacks);
}

TEST(InjectBitflip, FindsFlippableRecordDeterministically) {
  Campaign campaign(fast_config());
  auto records =
      campaign.authority().zone_at(make_time(2023, 12, 10)).axfr_records();
  auto copy_a = records;
  auto copy_b = records;
  std::string note_a = inject_bitflip(copy_a, 5);
  std::string note_b = inject_bitflip(copy_b, 5);
  EXPECT_EQ(note_a, note_b);
  EXPECT_EQ(copy_a, copy_b);
  EXPECT_NE(copy_a, records);
  EXPECT_NE(note_a, "no flippable record");
}

}  // namespace
}  // namespace rootsim::measure
