// Resolver-side NSEC denial validation (RFC 4035 §5.4) against the
// responses the simulated roots produce.
#include <gtest/gtest.h>

#include "dnssec/validator.h"
#include "rss/server.h"

namespace rootsim::dnssec {
namespace {

using util::make_time;

struct Fixture {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  std::unique_ptr<rss::ZoneAuthority> authority;
  std::unique_ptr<rss::RootServerInstance> instance;

  Fixture() {
    config.tld_count = 30;
    config.rsa_modulus_bits = 512;
    authority = std::make_unique<rss::ZoneAuthority>(catalog, config);
    instance = std::make_unique<rss::RootServerInstance>(*authority, catalog, 2,
                                                         "eu00.c");
  }
};

dns::Message nxdomain_response(Fixture& f, const char* qname, bool dnssec_ok,
                               util::UnixTime now) {
  dns::Message query = dns::make_query(9, *dns::Name::parse(qname),
                                       dns::RRType::A, dns::RRClass::IN,
                                       dnssec_ok);
  return f.instance->handle_query(query, now);
}

TEST(Denial, ProvenForSignedNxdomain) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::Message response = nxdomain_response(f, "no-such-tld-qq.", true, now);
  ASSERT_EQ(response.rcode, dns::Rcode::NxDomain);
  auto status = verify_nxdomain_proof(response, *dns::Name::parse("no-such-tld-qq."),
                                      TrustAnchors::from_zone_apex(
                                          f.authority->zone_at(now)),
                                      now);
  EXPECT_EQ(status, DenialStatus::Proven);
}

TEST(Denial, NoProofWithoutDoBit) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::Message response = nxdomain_response(f, "no-such-tld-qq.", false, now);
  auto status = verify_nxdomain_proof(response, *dns::Name::parse("no-such-tld-qq."),
                                      TrustAnchors::from_zone_apex(
                                          f.authority->zone_at(now)),
                                      now);
  EXPECT_EQ(status, DenialStatus::NoProof);
}

TEST(Denial, TamperedNsecSignatureDetected) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::Message response = nxdomain_response(f, "no-such-tld-qq.", true, now);
  // Flip a bit in the RRSIG covering the NSEC.
  for (auto& rr : response.authority) {
    auto* sig = std::get_if<dns::RrsigData>(&rr.rdata);
    if (sig && sig->type_covered == dns::RRType::NSEC && !sig->signature.empty())
      sig->signature[5] ^= 0x10;
  }
  auto status = verify_nxdomain_proof(response, *dns::Name::parse("no-such-tld-qq."),
                                      TrustAnchors::from_zone_apex(
                                          f.authority->zone_at(now)),
                                      now);
  EXPECT_EQ(status, DenialStatus::BadSignature);
}

TEST(Denial, SubstitutedNsecDoesNotCover) {
  // An attacker replaying an NSEC from elsewhere in the zone cannot deny a
  // different name: the span check fails.
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  // Get a genuine NXDOMAIN response for one name...
  dns::Message response = nxdomain_response(f, "zzz-very-late-name.", true, now);
  ASSERT_EQ(response.rcode, dns::Rcode::NxDomain);
  // ...then validate it against a *different* qname that the carried NSEC
  // span cannot cover (an early name; spans differ).
  auto status = verify_nxdomain_proof(
      response, *dns::Name::parse("aaa-very-early-name."),
      TrustAnchors::from_zone_apex(f.authority->zone_at(now)), now);
  EXPECT_NE(status, DenialStatus::Proven);
}

TEST(Denial, WrongTrustAnchorsRejected) {
  Fixture f;
  util::UnixTime now = make_time(2023, 12, 10);
  dns::Message response = nxdomain_response(f, "no-such-tld-qq.", true, now);
  util::Rng rng(123);
  TrustAnchors wrong;
  wrong.keys = {make_ksk(rng, 512).to_dnskey()};
  auto status = verify_nxdomain_proof(response, *dns::Name::parse("no-such-tld-qq."),
                                      wrong, now);
  EXPECT_EQ(status, DenialStatus::BadSignature);
}

TEST(Denial, StatusStrings) {
  EXPECT_EQ(to_string(DenialStatus::Proven), "denial-proven");
  EXPECT_EQ(to_string(DenialStatus::NoProof), "no-proof");
}

}  // namespace
}  // namespace rootsim::dnssec
