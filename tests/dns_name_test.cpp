#include "dns/name.h"

#include <gtest/gtest.h>

namespace rootsim::dns {
namespace {

TEST(Name, RootName) {
  Name root;
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
  EXPECT_EQ(root.label_count(), 0u);
  auto parsed = Name::parse(".");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_root());
}

TEST(Name, ParseRootServerNames) {
  auto name = Name::parse("b.root-servers.net.");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->labels()[0], "b");
  EXPECT_EQ(name->labels()[1], "root-servers");
  EXPECT_EQ(name->labels()[2], "net");
  EXPECT_EQ(name->to_string(), "b.root-servers.net.");
  // Trailing dot optional on parse.
  EXPECT_EQ(*Name::parse("b.root-servers.net"), *name);
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(*Name::parse("B.ROOT-SERVERS.NET."), *Name::parse("b.root-servers.net."));
  EXPECT_NE(*Name::parse("a.root-servers.net."), *Name::parse("b.root-servers.net."));
}

TEST(Name, ParseRejectsMalformed) {
  EXPECT_FALSE(Name::parse("").has_value());
  EXPECT_FALSE(Name::parse("a..b").has_value());
  // Label > 63 octets.
  std::string long_label(64, 'x');
  EXPECT_FALSE(Name::parse(long_label + ".com").has_value());
  EXPECT_TRUE(Name::parse(std::string(63, 'x') + ".com").has_value());
  // Name > 255 octets.
  std::string long_name;
  for (int i = 0; i < 5; ++i) long_name += std::string(60, 'a') + ".";
  EXPECT_FALSE(Name::parse(long_name).has_value());
}

TEST(Name, EscapeSequences) {
  auto name = Name::parse("ex\\.ample.com.");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->label_count(), 2u);
  EXPECT_EQ(name->labels()[0], "ex.ample");
  EXPECT_EQ(name->to_string(), "ex\\.ample.com.");
  // Decimal escape: \032 is space.
  auto spaced = Name::parse("a\\032b.com.");
  ASSERT_TRUE(spaced.has_value());
  EXPECT_EQ(spaced->labels()[0], "a b");
  EXPECT_FALSE(Name::parse("a\\").has_value());
  EXPECT_FALSE(Name::parse("a\\25").has_value());
  EXPECT_FALSE(Name::parse("a\\999b.").has_value());
}

TEST(Name, ParentAndChild) {
  Name name = *Name::parse("f.root-servers.net.");
  EXPECT_EQ(name.parent(), *Name::parse("root-servers.net."));
  EXPECT_EQ(name.parent().parent(), *Name::parse("net."));
  EXPECT_TRUE(name.parent().parent().parent().is_root());
  EXPECT_TRUE(Name().parent().is_root());
  auto child = Name::parse("root-servers.net.")->child("f");
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(*child, name);
}

TEST(Name, Subdomain) {
  Name root;
  Name net = *Name::parse("net.");
  Name rs = *Name::parse("root-servers.net.");
  Name b = *Name::parse("b.root-servers.net.");
  EXPECT_TRUE(b.is_subdomain_of(root));
  EXPECT_TRUE(b.is_subdomain_of(net));
  EXPECT_TRUE(b.is_subdomain_of(rs));
  EXPECT_TRUE(b.is_subdomain_of(b));
  EXPECT_FALSE(rs.is_subdomain_of(b));
  EXPECT_FALSE(net.is_subdomain_of(*Name::parse("com.")));
  // Case-insensitive.
  EXPECT_TRUE(Name::parse("X.NET.")->is_subdomain_of(net));
}

TEST(Name, CanonicalOrderingRfc4034Example) {
  // RFC 4034 §6.1 gives this canonical order example.
  std::vector<Name> expected = {
      *Name::parse("example."),          *Name::parse("a.example."),
      *Name::parse("yljkjljk.a.example."), *Name::parse("Z.a.example."),
      *Name::parse("zABC.a.EXAMPLE."),   *Name::parse("z.example."),
      *Name::parse("\\001.z.example."),  *Name::parse("*.z.example."),
      *Name::parse("\\200.z.example."),
  };
  for (size_t i = 0; i + 1 < expected.size(); ++i) {
    EXPECT_LT(expected[i].canonical_compare(expected[i + 1]), 0)
        << expected[i].to_string() << " should sort before "
        << expected[i + 1].to_string();
  }
  // Root sorts before everything.
  for (const auto& name : expected) EXPECT_LT(Name().canonical_compare(name), 0);
}

TEST(Name, CanonicalCompareReflexive) {
  Name a = *Name::parse("M.example.");
  Name b = *Name::parse("m.EXAMPLE.");
  EXPECT_EQ(a.canonical_compare(b), 0);
  EXPECT_EQ(b.canonical_compare(a), 0);
}

TEST(Name, ToLower) {
  EXPECT_EQ(Name::parse("WwW.ExAmPlE.CoM.")->to_lower().to_string(),
            "www.example.com.");
}

TEST(Name, HashConsistentWithEquality) {
  Name a = *Name::parse("K.ROOT-SERVERS.NET.");
  Name b = *Name::parse("k.root-servers.net.");
  EXPECT_EQ(a.hash(), b.hash());
  // Label-boundary sensitivity: {"ab","c"} != {"a","bc"}.
  EXPECT_NE(Name::parse("ab.c.")->hash(), Name::parse("a.bc.")->hash());
}

TEST(Name, WireLength) {
  // "b.root-servers.net." = 1+1 + 1+12 + 1+3 + 1 = 20.
  EXPECT_EQ(Name::parse("b.root-servers.net.")->wire_length(), 20u);
}

}  // namespace
}  // namespace rootsim::dns
