#include "analysis/propagation.h"

#include <gtest/gtest.h>

#include "rss/server.h"

namespace rootsim::analysis {
namespace {

const measure::Campaign& test_campaign() {
  static const measure::Campaign* campaign = [] {
    measure::CampaignConfig config;
    config.zone.tld_count = 25;
    config.zone.rsa_modulus_bits = 512;
    config.vp_scale = 0.05;
    return new measure::Campaign(config);
  }();
  return *campaign;
}

TEST(Propagation, LagModelShape) {
  std::vector<double> lags;
  for (uint32_t site = 0; site < 2000; ++site)
    lags.push_back(static_cast<double>(rss::site_propagation_lag_s(site)));
  auto s = util::summarize(lags);
  EXPECT_GT(s.median, 5);
  EXPECT_LT(s.median, 120);   // most instances sync fast
  EXPECT_GT(s.p99, 300);      // long tail exists
  EXPECT_LE(s.max, 3600);     // capped
  // Deterministic per site.
  EXPECT_EQ(rss::site_propagation_lag_s(7), rss::site_propagation_lag_s(7));
  EXPECT_NE(rss::site_propagation_lag_s(7), rss::site_propagation_lag_s(8));
}

TEST(Propagation, LaggedInstanceServesOldSerialBriefly) {
  const auto& campaign = test_campaign();
  util::UnixTime bump = util::make_time(2023, 10, 10, 12, 0);
  rss::InstanceBehavior behavior;
  behavior.propagation_lag_s = 300;
  rss::RootServerInstance instance(campaign.authority(), campaign.catalog(), 0,
                                   "test-instance", behavior);
  auto serial_of = [&](util::UnixTime t) {
    dns::Message response = instance.handle_query(
        dns::make_query(1, dns::Name(), dns::RRType::SOA), t);
    return std::get<dns::SoaData>(response.answers.at(0).rdata).serial;
  };
  uint32_t old_serial = campaign.authority().serial_at(bump - 1);
  uint32_t new_serial = campaign.authority().serial_at(bump);
  ASSERT_NE(old_serial, new_serial);
  EXPECT_EQ(serial_of(bump + 100), old_serial);   // still propagating
  EXPECT_EQ(serial_of(bump + 299), old_serial);
  EXPECT_EQ(serial_of(bump + 301), new_serial);   // synced
}

TEST(Propagation, ReportMatchesPerSiteLags) {
  const auto& campaign = test_campaign();
  util::UnixTime bump = util::make_time(2023, 10, 10, 12, 0);
  PropagationOptions options;
  options.max_instances_per_root = 8;
  auto report = measure_soa_propagation(campaign, bump, options);
  EXPECT_NE(report.old_serial, report.new_serial);
  EXPECT_GT(report.total_queries, 0u);
  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    const auto& row = report.per_root[root];
    ASSERT_FALSE(row.delays_s.empty());
    // Each measured delay equals the deterministic site lag (within the
    // one-second resolution of the poll).
    const auto& sites = campaign.topology().sites_by_root[root];
    size_t step = std::max<size_t>(1, sites.size() / options.max_instances_per_root);
    size_t index = 0;
    for (size_t i = 0; i < sites.size() && index < row.delays_s.size();
         i += step, ++index) {
      int64_t expected = rss::site_propagation_lag_s(sites[i]);
      EXPECT_NEAR(row.delays_s[index], static_cast<double>(expected), 1.0)
          << "root " << row.letter << " site " << sites[i];
    }
  }
}

TEST(Propagation, BisectionIsCheaperThanExhaustivePolling) {
  const auto& campaign = test_campaign();
  PropagationOptions options;
  options.max_instances_per_root = 4;
  auto report = measure_soa_propagation(
      campaign, util::make_time(2023, 10, 10, 12, 0), options);
  size_t instances = 0;
  for (const auto& row : report.per_root) instances += row.delays_s.size();
  // Bisection: <= ~14 queries per instance vs 3600 for naive polling.
  EXPECT_LE(report.total_queries, instances * 16);
}

}  // namespace
}  // namespace rootsim::analysis
