#include "util/strings.h"

#include <gtest/gtest.h>

namespace rootsim::util {
namespace {

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto parts = split_whitespace("  a\t b\n\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("B.ROOT-Servers.NET"), "b.root-servers.net");
  EXPECT_EQ(to_lower("abc123"), "abc123");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hostname.bind", "hostname"));
  EXPECT_FALSE(starts_with("bind", "hostname"));
  EXPECT_TRUE(ends_with("b.root-servers.net", ".net"));
  EXPECT_FALSE(ends_with("net", "b.root-servers.net"));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f%%", 69.95), "69.95%");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace rootsim::util
