// The RSSAC002 telemetry plane: log-linear histograms (layout, interpolated
// quantiles, exact merges), the unique-source sketch, and the per-instance
// daily collector. The load-bearing property throughout is merge
// associativity: sharded accumulation must reproduce a serial run's export
// byte for byte.
#include "obs/rssac002.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/loglin.h"
#include "util/timeutil.h"

namespace rootsim::obs {
namespace {

TEST(LogLinearHistogram, UnitBucketsAreExactBelowSixteen) {
  for (uint64_t v = 0; v < 16; ++v) {
    uint32_t index = LogLinearHistogram::bucket_index(v);
    EXPECT_EQ(LogLinearHistogram::bucket_lower(index), v);
    EXPECT_EQ(LogLinearHistogram::bucket_upper(index), v + 1);
  }
}

TEST(LogLinearHistogram, BucketsTileTheRangeMonotonically) {
  // Every value maps into a bucket whose [lower, upper) range contains it,
  // and bucket boundaries are non-overlapping and increasing.
  std::vector<uint64_t> probes = {0,   1,    15,   16,   17,    31,   32,
                                  100, 1023, 1024, 1536, 12345, 65535};
  for (uint64_t v : probes) {
    uint32_t index = LogLinearHistogram::bucket_index(v);
    EXPECT_GE(v, LogLinearHistogram::bucket_lower(index)) << v;
    EXPECT_LT(v, LogLinearHistogram::bucket_upper(index)) << v;
  }
  for (uint32_t i = 1; i < 4 * LogLinearHistogram::kSubBuckets; ++i) {
    EXPECT_EQ(LogLinearHistogram::bucket_lower(i),
              LogLinearHistogram::bucket_upper(i - 1))
        << "gap or overlap at bucket " << i;
  }
}

TEST(LogLinearHistogram, CountSumMax) {
  LogLinearHistogram h;
  h.observe(3);
  h.observe(700, 2);
  h.observe(65000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 3u + 700u * 2 + 65000u);
  EXPECT_EQ(h.max(), 65000u);
  EXPECT_DOUBLE_EQ(LogLinearHistogram().quantile(0.5), 0.0);
}

TEST(LogLinearHistogram, QuantilesInterpolateInsideTheBucket) {
  // 1024 uniform values across one octave: the median must land near the
  // middle of the octave, not snap to a sub-bucket's upper bound. Sub-bucket
  // width in [1024, 2048) is 64, so one bucket of slack is the error bound.
  LogLinearHistogram h;
  for (uint64_t v = 1024; v < 2048; ++v) h.observe(v);
  EXPECT_NEAR(h.quantile(0.5), 1536.0, 64.0);
  EXPECT_NEAR(h.quantile(0.25), 1280.0, 64.0);
  EXPECT_NEAR(h.quantile(0.9), 1946.0, 64.0);
  // Extremes are pinned to the data range, not to bucket edges beyond it.
  EXPECT_GE(h.quantile(0.0), 1024.0);
  EXPECT_LE(h.quantile(1.0), 2048.0);

  // A spike inside one unit bucket reads back exactly.
  LogLinearHistogram spike;
  spike.observe(7, 100);
  EXPECT_GE(spike.quantile(0.5), 7.0);
  EXPECT_LT(spike.quantile(0.5), 8.0);
}

// Satellite property: merge(a, b) quantiles equal single-pass quantiles —
// the fixed layout makes the merge an element-wise add, so the whole read
// side (count/sum/max/quantiles/json) must be bit-identical.
TEST(LogLinearHistogram, MergeEqualsSinglePass) {
  LogLinearHistogram single, a, b;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t value = (state >> 33) % 70000;  // spans unit buckets .. 2^16
    single.observe(value);
    (i % 2 ? a : b).observe(value);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), single.count());
  EXPECT_EQ(a.sum(), single.sum());
  EXPECT_EQ(a.max(), single.max());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(a.quantile(q), single.quantile(q)) << "q=" << q;
  EXPECT_EQ(a.to_json(), single.to_json());
}

TEST(LogLinearHistogram, JsonShape) {
  LogLinearHistogram h;
  h.observe(100, 3);
  std::string json = h.to_json();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":300"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos) << json;
}

TEST(UniqueSourceSketch, EstimatesDistinctInsertsAndIgnoresDuplicates) {
  UniqueSourceSketch sketch;
  EXPECT_EQ(sketch.estimate(), 0u);
  for (uint64_t id = 0; id < 1000; ++id) sketch.insert(id);
  uint64_t bits_after_first_pass = sketch.bits_set();
  for (uint64_t id = 0; id < 1000; ++id) sketch.insert(id);  // duplicates
  EXPECT_EQ(sketch.bits_set(), bits_after_first_pass);
  // Linear counting over 4096 bits: ~2% error at this cardinality; 5% is a
  // comfortable deterministic bound (the hash is fixed, so this cannot flake).
  EXPECT_NEAR(static_cast<double>(sketch.estimate()), 1000.0, 50.0);
}

TEST(UniqueSourceSketch, MergeIsExactlyTheUnionBitmap) {
  UniqueSourceSketch single, evens, odds;
  for (uint64_t id = 0; id < 2000; ++id) {
    single.insert(id);
    (id % 2 ? odds : evens).insert(id);
  }
  evens.merge_from(odds);
  EXPECT_EQ(evens.bits_set(), single.bits_set());
  EXPECT_EQ(evens.estimate(), single.estimate());
}

Rssac002Sample base_sample(std::string_view instance, util::UnixTime when) {
  Rssac002Sample sample;
  sample.instance = instance;
  sample.when = when;
  sample.udp_queries = 1;
  sample.delivered = true;
  sample.query_bytes = 40;
  sample.response_bytes = 500;
  sample.source_id = 7;
  return sample;
}

TEST(Rssac002Collector, BucketsByInstanceAndUtcDay) {
  Rssac002Collector collector;
  EXPECT_TRUE(collector.empty());
  util::UnixTime morning = util::make_time(2023, 12, 15, 9, 0);
  util::UnixTime evening = util::make_time(2023, 12, 15, 22, 0);
  util::UnixTime next_day = util::make_time(2023, 12, 16, 0, 30);
  collector.record(base_sample("k1-lon", morning));
  collector.record(base_sample("k1-lon", evening));  // same instance-day
  collector.record(base_sample("k1-lon", next_day));
  collector.record(base_sample("b1-lax", morning));
  EXPECT_EQ(collector.record_count(), 3u);

  auto snapshot = collector.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Ordered by instance name then day.
  EXPECT_EQ(snapshot[0].first.first, "b1-lax");
  EXPECT_EQ(snapshot[1].first.first, "k1-lon");
  EXPECT_LT(snapshot[1].first.second, snapshot[2].first.second);
  EXPECT_EQ(snapshot[1].second.total_queries(), 2u);
}

TEST(Rssac002Collector, AccumulatesByProtoFamilyAndRcode) {
  Rssac002Collector collector;
  util::UnixTime when = util::make_time(2023, 12, 15, 12, 0);

  Rssac002Sample udp4 = base_sample("a1-ams", when);
  udp4.udp_queries = 3;  // retransmissions all reached the server
  udp4.source_id = 1;
  collector.record(udp4);

  Rssac002Sample tcp6 = base_sample("a1-ams", when);
  tcp6.v6 = true;
  tcp6.udp_queries = 1;
  tcp6.tcp_queries = 1;
  tcp6.final_tcp = true;
  tcp6.truncated = true;  // the UDP answer was TC=1
  tcp6.source_id = 2;
  collector.record(tcp6);

  Rssac002Sample refused = base_sample("a1-ams", when);
  refused.rcode = 5;
  refused.source_id = 3;
  collector.record(refused);

  auto snapshot = collector.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const auto& day = snapshot[0].second;
  EXPECT_EQ(day.queries[0][0], 4u);  // udp/v4: 3 + 1
  EXPECT_EQ(day.queries[0][1], 1u);  // udp/v6
  EXPECT_EQ(day.queries[1][1], 1u);  // tcp/v6
  EXPECT_EQ(day.queries[1][0], 0u);
  EXPECT_EQ(day.total_queries(), 6u);
  EXPECT_EQ(day.rcodes[0], 2u);
  EXPECT_EQ(day.rcodes[5], 1u);
  EXPECT_EQ(day.truncated, 1u);
  EXPECT_EQ(day.axfr_served, 0u);
  EXPECT_EQ(day.query_size.count(), 3u);
  EXPECT_EQ(day.udp_response_size.count(), 2u);
  EXPECT_EQ(day.tcp_response_size.count(), 1u);
  EXPECT_NEAR(static_cast<double>(day.sources[0].estimate()), 2.0, 1.0);
  EXPECT_NEAR(static_cast<double>(day.sources[1].estimate()), 1.0, 1.0);
}

TEST(Rssac002Collector, RcodesAboveTheSlotCountFoldIntoOverflow) {
  Rssac002Collector collector;
  Rssac002Sample weird = base_sample("c1-fra", util::make_time(2023, 12, 1));
  weird.rcode = 4095;  // far outside the reported set
  collector.record(weird);
  auto snapshot = collector.snapshot();
  EXPECT_EQ(snapshot[0].second.rcodes[Rssac002Collector::Day::kRcodeSlots], 1u);
  EXPECT_NE(collector.to_jsonl().find("\"other\":1"), std::string::npos);
}

// The exec-engine contract: shards folded with merge_from reproduce the
// serial export byte for byte, independent of how samples were split.
TEST(Rssac002Collector, ShardedMergeMatchesSerialExportByteForByte) {
  Rssac002Collector serial, shard_a, shard_b;
  uint64_t state = 42;
  const char* instances[] = {"a1-ams", "b1-lax", "k1-lon"};
  for (int i = 0; i < 300; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t r = state >> 33;
    Rssac002Sample sample;
    sample.instance = instances[r % 3];
    sample.when = util::make_time(2023, 12, 1 + static_cast<int>(r % 5), 8, 0);
    sample.v6 = (r >> 3) & 1;
    sample.udp_queries = 1 + static_cast<uint32_t>((r >> 4) % 3);
    sample.tcp_queries = (r >> 6) & 1;
    sample.delivered = (r >> 7) % 8 != 0;
    sample.final_tcp = sample.tcp_queries != 0;
    sample.rcode = static_cast<uint16_t>((r >> 10) % 6);
    sample.truncated = sample.tcp_queries != 0;
    sample.query_bytes = 30 + (r >> 12) % 40;
    sample.response_bytes = 100 + (r >> 13) % 60000;
    sample.source_id = (r >> 20) % 500;
    serial.record(sample);
    (i % 2 ? shard_a : shard_b).record(sample);
  }
  shard_a.merge_from(shard_b);
  EXPECT_EQ(shard_a.record_count(), serial.record_count());
  EXPECT_EQ(shard_a.to_jsonl(), serial.to_jsonl());
}

TEST(Rssac002Collector, JsonlUsesRssac002FieldNames) {
  Rssac002Collector collector;
  Rssac002Sample sample = base_sample("k1-lon", util::make_time(2023, 12, 10));
  sample.axfr = true;
  sample.tcp_queries = 1;
  sample.final_tcp = true;
  collector.record(sample);
  std::string jsonl = collector.to_jsonl();
  for (const char* field :
       {"\"instance\":\"k1-lon\"", "\"day\":\"2023-12-10\"",
        "\"dns-udp-queries-received-ipv4\":", "\"dns-tcp-queries-received-ipv6\":",
        "\"rcode-volume\":", "\"dns-responses-truncated\":", "\"axfr-served\":1",
        "\"query-size\":", "\"udp-response-size\":", "\"tcp-response-size\":",
        "\"num-sources-ipv4\":", "\"num-sources-ipv6\":"})
    EXPECT_NE(jsonl.find(field), std::string::npos) << field << "\n" << jsonl;
  EXPECT_EQ(jsonl.back(), '\n');
}

TEST(Rssac002Collector, ClearEmptiesTheCollector) {
  Rssac002Collector collector;
  collector.record(base_sample("a1", util::make_time(2023, 12, 1)));
  EXPECT_FALSE(collector.empty());
  collector.clear();
  EXPECT_TRUE(collector.empty());
  EXPECT_EQ(collector.to_jsonl(), "");
}

}  // namespace
}  // namespace rootsim::obs
