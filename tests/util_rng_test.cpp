#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace rootsim::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng root(42);
  Rng f1 = root.fork("b.root/churn");
  Rng f2 = root.fork("g.root/churn");
  Rng f1_again = Rng(42).fork("b.root/churn");
  EXPECT_EQ(f1.next(), f1_again.next());
  EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.uniform(13);
    EXPECT_LT(v, 13u);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(10.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double m = sum / n;
  double var = sumsq / n - m * m;
  EXPECT_NEAR(m, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.15);
  // Large-lambda branch.
  sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
  EXPECT_EQ(rng.poisson(0), 0u);
}

TEST(Rng, GeometricMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  // Mean of failures-before-success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.12);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng rng(19);
  int pareto_big = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.pareto(1.0, 1.2) > 20) ++pareto_big;
  // P[X > 20] = 20^-1.2 ~ 2.7%; check it is clearly non-negligible.
  EXPECT_GT(pareto_big, n / 100);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1, 0, 9};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000, 0.9, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, Fnv1aStable) {
  // Hash values must never change across builds: substream seeds depend on
  // them, and EXPERIMENTS.md records seeded results.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

}  // namespace
}  // namespace rootsim::util
