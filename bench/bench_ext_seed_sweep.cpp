// Robustness sweep: the headline numbers across ten independent seeds.
//
// The reproduction's credibility rests on the headline metrics being
// properties of the modelled mechanisms, not of one lucky seed. This harness
// re-runs the co-location, stability and route-inflation analyses for seeds
// 1..10 and reports the spread next to the paper's values.
#include "analysis/colocation.h"
#include "analysis/distance.h"
#include "analysis/stability.h"
#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Extension — seed-robustness sweep of headline metrics",
                      "methodological validation (all headline claims)");
  std::vector<double> colocation_fraction, broot_optimal, g_median_ratio,
      sa_inversion;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    measure::CampaignConfig config = bench::paper_campaign_config();
    config.seed = seed;
    measure::Campaign campaign(config);

    auto colocation = analysis::compute_colocation(campaign);
    colocation_fraction.push_back(colocation.fraction_vps_with_colocation);
    sa_inversion.push_back(
        colocation.region_mean_v6(util::Region::SouthAmerica) -
        colocation.region_mean_v4(util::Region::SouthAmerica));

    auto distance = analysis::compute_distance(campaign, 1, util::IpFamily::V4);
    broot_optimal.push_back(distance.fraction_optimal());

    analysis::StabilityOptions stability_options;
    stability_options.round_stride = 8;
    auto stability = analysis::compute_stability(campaign, stability_options);
    double g_v6 = stability.per_root[6].median_v6;
    double g_v4 = std::max(1.0, stability.per_root[6].median_v4);
    g_median_ratio.push_back(g_v6 / g_v4);
    std::printf("seed %2llu: colocation>=2 %.1f%%  b-optimal %.1f%%  "
                "g v6/v4 churn ratio %.2f  SA v6-v4 RR delta %+.2f\n",
                static_cast<unsigned long long>(seed),
                100 * colocation_fraction.back(), 100 * broot_optimal.back(),
                g_median_ratio.back(), sa_inversion.back());
  }

  auto band = [](std::vector<double> v) {
    auto s = util::summarize(std::move(v));
    return util::format("%.3f .. %.3f (median %.3f)", s.min, s.max, s.median);
  };
  std::printf("\nacross seeds 1..10:\n");
  std::printf("  co-location fraction : %s   [paper ~0.70]\n",
              band(colocation_fraction).c_str());
  std::printf("  b.root v4 optimal    : %s   [paper 0.782]\n",
              band(broot_optimal).c_str());
  std::printf("  g.root v6/v4 churn   : %s   [paper 64/36 = 1.78]\n",
              band(g_median_ratio).c_str());
  std::printf("  SA v6-v4 RR delta    : %s   [paper +0.16]\n",
              band(sa_inversion).c_str());
  std::printf("\n[the first three metrics land on the paper's side of the\n"
              " claim for every seed — they are mechanism, not noise. The\n"
              " South America redundancy inversion flips sign across seeds:\n"
              " with only 13 SA vantage points it is high-variance, exactly\n"
              " the 'Low Number of VPs in Specific Regions' caveat the paper\n"
              " itself raises in Appendix E about this region.]\n");
  return 0;
}
