// Ablations of the design choices DESIGN.md calls out:
//  1. churn heterogeneity: per-root/per-family calibration vs uniform rates
//     (uniform kills the Fig. 3 b-vs-g contrast);
//  2. NO_EXPORT local sites: honored vs ignored (ignoring them inflates the
//     below-diagonal mass of Fig. 5 and breaks the local-coverage asymmetry);
//  3. traceroute hop loss: the missed-hops-are-unique lower-bound rule of §5
//     vs dropping missed hops;
//  4. priming: enabled vs disabled for IPv6 clients (removes the Fig. 8
//     single-contact signal).
#include "analysis/colocation.h"
#include "analysis/coverage.h"
#include "analysis/distance.h"
#include "analysis/stability.h"
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/collectors.h"
#include "util/table.h"

using namespace rootsim;

static void ablate_churn() {
  std::printf("--- Ablation 1: per-root churn calibration vs uniform ---\n");
  measure::CampaignConfig uniform_config = bench::paper_campaign_config();
  for (auto& spec : uniform_config.router.churn) spec = {20, 20};
  // router.churn default-detection: non-empty now, so it is used as-is.
  measure::Campaign uniform(uniform_config);
  analysis::StabilityOptions options;
  options.round_stride = 4;
  auto calibrated = analysis::compute_stability(bench::paper_campaign(), options);
  auto flat = analysis::compute_stability(uniform, options);
  util::TextTable table({"Root", "calibrated v4", "calibrated v6", "uniform v4",
                         "uniform v6"});
  for (int root : {1, 6}) {
    table.add_row({std::string(1, 'a' + root),
                   util::TextTable::num(calibrated.per_root[root].median_v4, 0),
                   util::TextTable::num(calibrated.per_root[root].median_v6, 0),
                   util::TextTable::num(flat.per_root[root].median_v4, 0),
                   util::TextTable::num(flat.per_root[root].median_v6, 0)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("=> uniform churn erases the b-stable/g-churny contrast that the\n"
              "   paper uses to warn against studying root subsets.\n\n");
}

static void ablate_local_sites() {
  std::printf("--- Ablation 2: NO_EXPORT local sites honored vs ignored ---\n");
  // "Ignored" here: rebuild a topology where every local site is announced
  // globally (modelled by a deployment spec with locals folded into globals).
  measure::CampaignConfig global_only = bench::paper_campaign_config();
  // Build default campaign, then a comparison topology via modified catalog
  // specs is not directly configurable; instead compare local-visible vs not
  // through the distance report's local share.
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report_v4 = analysis::compute_distance(campaign, 5, util::IpFamily::V4);
  size_t via_local = 0;
  for (const auto& sample : report_v4.samples)
    if (sample.via_local_site) ++via_local;
  std::printf("f.root v4: %zu/%zu requests served by a (visible) local site.\n",
              via_local, report_v4.samples.size());
  auto coverage = analysis::compute_coverage(campaign);
  std::printf("f.root local coverage with NO_EXPORT semantics: %d/%d (%.1f%%)\n",
              coverage.worldwide[5].local.covered,
              coverage.worldwide[5].local.sites,
              coverage.worldwide[5].local.percent());
  std::printf("=> were local sites globally visible, coverage would approach\n"
              "   the global-site rate (%.1f%%) and Fig. 5's below-diagonal\n"
              "   mass would triple — contradicting Table 4.\n\n",
              coverage.worldwide[5].global.percent());
  (void)global_only;
}

static void ablate_hop_loss() {
  std::printf("--- Ablation 3: missed traceroute hops unique vs dropped ---\n");
  analysis::ColocationOptions strict, drop;
  strict.missed_hops_are_unique = true;
  drop.missed_hops_are_unique = false;
  auto strict_report = analysis::compute_colocation(bench::paper_campaign(), strict);
  auto drop_report = analysis::compute_colocation(bench::paper_campaign(), drop);
  std::printf("VPs with co-location >=2: %.1f%% (lower-bound rule) vs %.1f%% "
              "(drop missed)\n",
              100 * strict_report.fraction_vps_with_colocation,
              100 * drop_report.fraction_vps_with_colocation);
  std::printf("=> the paper's rule is conservative: treating missed hops as\n"
              "   unique can only under-count sharing.\n\n");
}

static void ablate_priming() {
  std::printf("--- Ablation 4: priming enabled vs disabled (IPv6) ---\n");
  util::UnixTime change = bench::paper_change();
  traffic::PopulationConfig with = traffic::isp_population_config();
  with.clients = 12000;
  traffic::PopulationConfig without = with;
  without.priming_prob_v4 = 0;
  without.priming_prob_v6 = 0;
  for (const auto& [label, population] :
       {std::pair{"priming on ", with}, std::pair{"priming off", without}}) {
    traffic::PassiveCollector isp(traffic::generate_population(population),
                                  traffic::isp_collector_config(), change);
    auto ratio = analysis::shift_ratio(
        isp.collect(bench::change_day(70), bench::change_day(98)));
    auto records = isp.collect_client_flows(bench::change_day(70),
                                            bench::change_day(77));
    double single_old_v6 = 0;
    for (const auto& cdf : analysis::client_flow_cdfs(records, 7))
      if (cdf.subnet.root_index == 1 && cdf.subnet.old_b_subnet &&
          cdf.subnet.family == util::IpFamily::V6)
        single_old_v6 = cdf.single_contact_fraction;
    std::printf("%s: shift v4=%.1f%% v6=%.1f%%, old-v6 single-contact=%.2f\n",
                label, 100 * ratio.v4, 100 * ratio.v6, single_old_v6);
  }
  std::printf("=> without priming the v6 shift collapses toward the v4 level\n"
              "   and the Fig. 8 single-contact signal disappears.\n");
}

int main() {
  bench::print_header("Ablations — design choices behind the reproduction",
                      "DESIGN.md section 4");
  ablate_churn();
  ablate_local_sites();
  ablate_hop_loss();
  ablate_priming();
  return 0;
}
