// Shared setup for the experiment harnesses: the full-scale campaign (675
// VPs, complete Fig. 2 schedule, seed 42) that every bench reproduces its
// table or figure from. Numbers printed by the benches are recorded in
// EXPERIMENTS.md next to the paper's values.
#pragma once

#include <cstdio>
#include <string>

#include "measure/campaign.h"

namespace rootsim::bench {

inline measure::CampaignConfig paper_campaign_config() {
  measure::CampaignConfig config;
  config.seed = 42;
  // Full VP set and schedule; a moderate TLD count keeps AXFR-heavy benches
  // quick while preserving zone structure (delegations, DS, glue, DNSSEC).
  config.zone.tld_count = 120;
  config.zone.rsa_modulus_bits = 768;
  return config;
}

inline const measure::Campaign& paper_campaign() {
  static const measure::Campaign campaign(paper_campaign_config());
  return campaign;
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("seed=42, 675 VPs, %s..%s\n", "2023-07-03", "2023-12-24");
  std::printf("================================================================\n\n");
}

}  // namespace rootsim::bench
