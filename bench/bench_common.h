// Shared setup for the experiment harnesses: the full-scale campaign (675
// VPs, complete Fig. 2 schedule, seed 42) that every bench reproduces its
// table or figure from. Numbers printed by the benches are recorded in
// EXPERIMENTS.md next to the paper's values.
//
// Every bench records into a shared obs::Recorder; print_header() arms an
// exit hook that prints the bench's wall time and a one-line RunReport so
// each harness ends with the query/AXFR/validation totals behind its table.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "exec/engine.h"
#include "measure/campaign.h"
#include "obs/report.h"
#include "scenario/apply.h"
#include "scenario/library.h"

namespace rootsim::bench {

/// The spec behind the shared campaign; benches derive their observation
/// instants from it instead of re-hardcoding the 2023 timeline.
inline const scenario::ScenarioSpec& paper_spec() {
  static const scenario::ScenarioSpec spec = scenario::paper_2023();
  return spec;
}

/// The b.root renumbering instant (2023-11-27) — the pivot every Section 6
/// before/after figure keys on.
inline util::UnixTime paper_change() {
  return scenario::renumbering_time(paper_spec());
}

/// Whole-day offsets from the renumbering change (negative = before); the
/// paper dates its passive collections relative to this pivot.
inline util::UnixTime change_day(int days, int64_t seconds = 0) {
  return paper_change() + days * util::kSecondsPerDay + seconds;
}

/// A steady-state instant late in the campaign (two weeks before the
/// horizon closes, 2023-12-10) for microbenches that need "some zone".
inline util::UnixTime late_campaign(int64_t seconds = 0) {
  return paper_spec().horizon.end - 14 * util::kSecondsPerDay + seconds;
}

/// Mid-campaign instant snapped to a day boundary — a representative
/// quiet day for replay-style benches.
inline util::UnixTime mid_campaign() {
  const scenario::Horizon& horizon = paper_spec().horizon;
  util::UnixTime mid = horizon.start + (horizon.end - horizon.start) / 2;
  return mid - mid % util::kSecondsPerDay;
}

inline measure::CampaignConfig paper_campaign_config() {
  // The built-in paper-2023 scenario (full VP set, Fig. 2 schedule, seed
  // 42); a moderate TLD count keeps AXFR-heavy benches quick while
  // preserving zone structure (delegations, DS, glue, DNSSEC).
  measure::CampaignConfig config = scenario::paper_campaign_config();
  config.zone.tld_count = 120;
  config.zone.rsa_modulus_bits = 768;
  return config;
}

inline obs::Recorder& paper_recorder() {
  static obs::Recorder recorder;
  return recorder;
}

inline const measure::Campaign& paper_campaign() {
  static const measure::Campaign campaign(paper_campaign_config(),
                                          paper_recorder().obs());
  return campaign;
}

namespace detail {

inline std::chrono::steady_clock::time_point& bench_start() {
  static auto start = std::chrono::steady_clock::now();
  return start;
}

inline void print_run_report() {
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - bench_start())
                       .count();
  auto report = obs::RunReport::capture(paper_recorder());
  std::printf("\n----------------------------------------------------------------\n");
  std::printf("wall time: %.2f s\n", seconds);
  std::printf("%s\n", report.one_line().c_str());
}

}  // namespace detail

/// Machine-readable bench result: writes BENCH_<name>.json in the working
/// directory with wall time and the throughput counters the perf acceptance
/// criteria track (probe and signature-check rates from the shared recorder).
/// Committed copies of these files live in the repo root next to
/// EXPERIMENTS.md so perf changes leave an auditable trail. Host parallelism
/// (`hardware_concurrency`) and the scheduler mode are recorded so
/// tools/bench_compare.py can refuse wall-time comparisons across hosts
/// instead of calling a slower machine a regression.
/// `extra` (optional) is pre-rendered JSON appended as additional top-level
/// fields — e.g. a "deterministic" object of seed-pure counters that
/// tools/bench_compare.py diffs exactly. Pass without leading comma, e.g.
/// `"\"deterministic\": {\"probes\": 42}"`.
inline void write_bench_json(const std::string& name, size_t threads,
                             double wall_ms = -1,
                             const std::string& extra = "") {
  if (wall_ms < 0)
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - detail::bench_start())
                  .count();
  const auto& metrics = paper_recorder().metrics();
  uint64_t probes = metrics.counter_total("netsim.route_selections");
  uint64_t signatures = metrics.counter_total("dnssec.signatures_checked");
  double seconds = wall_ms / 1000.0;
  std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) return;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"probes\": %llu,\n"
               "  \"probes_per_s\": %.1f,\n"
               "  \"signatures\": %llu,\n"
               "  \"signatures_per_s\": %.1f,\n"
               "  \"threads\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"sched\": \"%.*s\"",
               name.c_str(), wall_ms,
               static_cast<unsigned long long>(probes),
               seconds > 0 ? static_cast<double>(probes) / seconds : 0.0,
               static_cast<unsigned long long>(signatures),
               seconds > 0 ? static_cast<double>(signatures) / seconds : 0.0,
               threads, std::thread::hardware_concurrency(),
               static_cast<int>(to_string(exec::resolve_scheduler()).size()),
               to_string(exec::resolve_scheduler()).data());
  if (!extra.empty()) std::fprintf(out, ",\n  %s", extra.c_str());
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

/// Writes the recorder's RSSAC002 per-instance daily telemetry to `path`
/// (one JSON object per instance-day; render with tools/obs_report.py).
/// No-op when the campaign recorded no telemetry.
inline void write_rssac002(const std::string& path = "rssac002.jsonl") {
  const auto& collector = paper_recorder().rssac002();
  if (collector.empty()) return;
  if (collector.write_jsonl(path, paper_campaign_config().scenario_name))
    std::printf("wrote %s (%zu instance-day records)\n", path.c_str(),
                collector.record_count());
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_reference) {
  // Construct the recorder *before* registering the atexit hook so it
  // outlives the hook, then pin the wall clock's t0.
  paper_recorder();
  detail::bench_start();
  static bool armed = [] {
    std::atexit(detail::print_run_report);
    return true;
  }();
  (void)armed;
  const measure::CampaignConfig config = paper_campaign_config();
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("seed=%llu, 675 VPs, %s..%s\n",
              static_cast<unsigned long long>(config.seed),
              util::format_date(config.schedule.start).c_str(),
              util::format_date(config.schedule.end).c_str());
  std::printf("================================================================\n\n");
}

}  // namespace rootsim::bench
