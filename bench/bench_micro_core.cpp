// Microbenchmarks of the core primitives (google-benchmark): DNS wire
// codec, SHA-384, ZONEMD digesting of the full root zone, RSA sign/verify,
// zone signing, anycast route lookup, and the full 47-query probe.
#include <benchmark/benchmark.h>

#include "analysis/colocation.h"
#include "bench_common.h"
#include "crypto/sha2.h"
#include "dns/message.h"
#include "dnssec/signer.h"
#include "dnssec/validator.h"

using namespace rootsim;

namespace {

dns::Message priming_response() {
  dns::Message msg;
  msg.qr = true;
  msg.aa = true;
  msg.questions.push_back({dns::Name(), dns::RRType::NS, dns::RRClass::IN});
  for (char c = 'a'; c <= 'm'; ++c) {
    dns::ResourceRecord rr;
    rr.name = dns::Name();
    rr.type = dns::RRType::NS;
    rr.ttl = 518400;
    rr.rdata = dns::NsData{
        *dns::Name::parse(std::string(1, c) + ".root-servers.net.")};
    msg.answers.push_back(rr);
  }
  return msg;
}

void BM_MessageEncode(benchmark::State& state) {
  dns::Message msg = priming_response();
  for (auto _ : state) benchmark::DoNotOptimize(msg.encode());
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  auto wire = priming_response().encode();
  for (auto _ : state) benchmark::DoNotOptimize(dns::Message::decode(wire));
}
BENCHMARK(BM_MessageDecode);

void BM_Sha384(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x42);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha384(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha384)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_ZonemdDigest(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  const dns::Zone& zone = campaign.authority().zone_at(bench::late_campaign());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dnssec::compute_zonemd_digest(zone, dns::ZonemdData::kHashSha384));
  state.counters["records"] = static_cast<double>(zone.record_count());
}
BENCHMARK(BM_ZonemdDigest);

void BM_ZoneValidate(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  const dns::Zone& zone = campaign.authority().zone_at(bench::late_campaign());
  auto anchors = campaign.authority().trust_anchors();
  util::UnixTime now = bench::late_campaign(6 * 3600);
  for (auto _ : state)
    benchmark::DoNotOptimize(dnssec::validate_zone(zone, anchors, now));
}
BENCHMARK(BM_ZoneValidate);

void BM_RsaSignVerify(benchmark::State& state) {
  util::Rng rng(42);
  auto key = crypto::generate_rsa_key(rng, static_cast<size_t>(state.range(0)));
  std::vector<uint8_t> msg(100, 7);
  for (auto _ : state) {
    auto sig = crypto::rsa_sign(key, crypto::RsaHash::Sha256, msg);
    benchmark::DoNotOptimize(
        crypto::rsa_verify(key.public_key, crypto::RsaHash::Sha256, msg, sig));
  }
}
BENCHMARK(BM_RsaSignVerify)->Arg(512)->Arg(1024);

void BM_SignZone(benchmark::State& state) {
  rss::RootCatalog catalog;
  rss::ZoneAuthorityConfig config;
  config.tld_count = 120;
  config.rsa_modulus_bits = 768;
  rss::ZoneAuthority authority(catalog, config);
  util::UnixTime t = bench::late_campaign();
  for (auto _ : state) {
    // zone_at caches per serial; force a rebuild by stepping days.
    t += util::kSecondsPerDay;
    benchmark::DoNotOptimize(&authority.zone_at(t));
  }
}
BENCHMARK(BM_SignZone)->Unit(benchmark::kMillisecond);

void BM_RouteLookup(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  const auto& vps = campaign.vantage_points();
  size_t i = 0;
  for (auto _ : state) {
    const auto& vp = vps[i++ % vps.size()];
    benchmark::DoNotOptimize(campaign.router().route(
        vp.view, static_cast<uint32_t>(i % 13), util::IpFamily::V6));
  }
}
BENCHMARK(BM_RouteLookup);

void BM_SiteAtRound(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  const auto& vp = campaign.vantage_points()[0];
  auto selection =
      campaign.router().prepare_selection(vp.view, 6, util::IpFamily::V6);
  uint64_t round = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        netsim::AnycastRouter::site_at_round(selection, round++));
}
BENCHMARK(BM_SiteAtRound);

void BM_FullProbe47Queries(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  const auto& vp = campaign.vantage_points()[0];
  util::UnixTime now = bench::late_campaign(12 * 3600);
  uint64_t round = campaign.schedule().round_at(now);
  for (auto _ : state)
    benchmark::DoNotOptimize(campaign.prober().probe(
        vp, campaign.catalog().server(10).ipv4, now, round));
  state.SetLabel("46 dig queries + AXFR + traceroute");
}
BENCHMARK(BM_FullProbe47Queries)->Unit(benchmark::kMillisecond);

void BM_ColocationAnalysis(benchmark::State& state) {
  const auto& campaign = bench::paper_campaign();
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::compute_colocation(campaign));
  state.SetLabel("675 VPs x 13 roots x 2 families");
}
BENCHMARK(BM_ColocationAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
