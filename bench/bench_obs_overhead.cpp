// Null-cost gate for the observability plane: with no recorder attached the
// probe path must cost the same as it did before obs existed — every probe
// pays exactly one null-pointer branch per instrumentation site. This
// harness times the identical probe workload through a null sink and through
// a fully-armed plane (metrics + tracer + rssac002 + flight recorder) and
// asserts the disabled path is not measurably slower than the enabled one;
// if it ever is, a supposedly-gated site started doing work unconditionally.
//
// Registered as a ctest test (exit 1 on violation). The tolerance is
// deliberately loose — this guards against "disabled obs does real work",
// not against single-digit-percent drift.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "measure/campaign.h"
#include "measure/prober.h"
#include "netsim/flight_recorder.h"
#include "obs/obs.h"

using namespace rootsim;

namespace {

double run_probes(const measure::Campaign& campaign, measure::Prober& prober,
                  size_t probes, uint64_t* checksum) {
  const auto& vps = campaign.vantage_points();
  util::UnixTime now = campaign.schedule().config().start + 86400;
  uint64_t round = campaign.schedule().round_at(now);
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < probes; ++i) {
    const auto& vp = vps[i % vps.size()];
    const auto& server = campaign.catalog().server(i % 13);
    measure::ProbeRecord record =
        prober.probe(vp, i % 2 ? server.ipv6 : server.ipv4, now, round);
    *checksum += record.queries.size() + record.transport.udp_attempts;
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  measure::CampaignConfig config;
  config.seed = 42;
  config.zone.tld_count = 30;
  config.zone.rsa_modulus_bits = 512;
  config.vp_scale = 0.05;
  measure::Campaign campaign(config);  // null sink: workload construction only

  netsim::TransportConfig off_config;
  off_config.seed = config.seed;
  measure::Prober off(campaign.authority(), campaign.catalog(),
                      campaign.router(), off_config, obs::Obs{});

  obs::Recorder recorder;
  netsim::FlightRecorder flight(256);
  netsim::TransportConfig on_config;
  on_config.seed = config.seed;
  on_config.flight_recorder = &flight;
  measure::Prober on(campaign.authority(), campaign.catalog(),
                     campaign.router(), on_config, recorder.obs());

  constexpr size_t kProbes = 40;
  constexpr int kReps = 3;
  uint64_t checksum = 0;

  // Warm both paths (page in code, size the zone caches) before timing.
  run_probes(campaign, off, 8, &checksum);
  run_probes(campaign, on, 8, &checksum);

  // Interleave reps so machine-wide drift hits both paths equally; keep the
  // best rep of each (the least-interfered-with measurement).
  double best_off = 1e300, best_on = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::min(best_off, run_probes(campaign, off, kProbes, &checksum));
    best_on = std::min(best_on, run_probes(campaign, on, kProbes, &checksum));
  }

  std::printf("obs overhead over %zu full probes (best of %d reps):\n", kProbes,
              kReps);
  std::printf("  obs disabled (null sink)          : %8.2f ms\n", best_off);
  std::printf("  obs enabled  (+flight recorder)   : %8.2f ms\n", best_on);
  std::printf("  enabled/disabled                  : %8.2fx\n",
              best_off > 0 ? best_on / best_off : 0.0);
  std::printf("  telemetry records collected       : %zu instance-days, "
              "%llu flight records\n",
              recorder.rssac002().record_count(),
              static_cast<unsigned long long>(flight.recorded()));
  std::printf("  (checksum %llu)\n",
              static_cast<unsigned long long>(checksum));

  // Sanity: the enabled plane actually recorded the workload — otherwise the
  // comparison above proves nothing.
  if (recorder.rssac002().record_count() == 0 || flight.recorded() == 0 ||
      recorder.metrics().counter_total("transport.exchanges") == 0) {
    std::fprintf(stderr,
                 "FAIL: enabled-obs run recorded nothing; harness is broken\n");
    return 1;
  }

  // The actual gate: disabled must not exceed enabled beyond noise. 1.5x
  // with a 100 ms absolute floor absorbs scheduler jitter on loaded CI
  // machines while still catching any real work on the disabled path (the
  // full recording plane costs far more than 1.5x of one branch per site).
  const double limit = std::max(best_on * 1.5, best_on + 100.0);
  if (best_off > limit) {
    std::fprintf(stderr,
                 "FAIL: disabled-obs path took %.2f ms, above the %.2f ms "
                 "noise bound derived from the enabled path (%.2f ms) — the "
                 "null sink is doing real work\n",
                 best_off, limit, best_on);
    return 1;
  }
  // And the plane itself must stay a small fraction of real probe work
  // (crypto + zone validation dominate); 3x is far beyond any acceptable
  // recording cost and still safely above CI jitter.
  if (best_on > best_off * 3.0 + 100.0) {
    std::fprintf(stderr,
                 "FAIL: enabled-obs path took %.2f ms vs %.2f ms disabled — "
                 "the recording plane is no longer cheap\n",
                 best_on, best_off);
    return 1;
  }
  std::printf("ok: disabled path within noise of the enabled path\n");
  return 0;
}
