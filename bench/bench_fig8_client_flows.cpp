// Fig. 8: ISP — mean number of unique client subnets per day vs flows per
// client, separating old/new b.root subnets (the priming signal).
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/collectors.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 8 — ISP: mean # of unique client subnets per day",
                      "The Roots Go Deep, Fig. 8 + Section 6");
  util::UnixTime change = bench::paper_change();
  traffic::PopulationConfig population = traffic::isp_population_config();
  population.clients = 20000;
  traffic::PassiveCollector isp(traffic::generate_population(population),
                                traffic::isp_collector_config(), change);
  // Post-change window (2024-02-05..12), as in the paper.
  auto records = isp.collect_client_flows(bench::change_day(70),
                                          bench::change_day(77));
  auto cdfs = analysis::client_flow_cdfs(records, 7);

  for (const auto& cdf : cdfs) {
    if (cdf.subnet.root_index > 4) continue;  // paper plots a..e
    std::string label = std::string(1, 'a' + cdf.subnet.root_index) + ".root";
    if (cdf.subnet.root_index == 1)
      label += cdf.subnet.old_b_subnet ? " (old)" : " (new)";
    label += cdf.subnet.family == util::IpFamily::V4 ? " v4" : " v6";
    std::printf("%-16s  P[flows<=x]:", label.c_str());
    for (size_t i = 0; i < cdf.thresholds.size(); i += 2)
      std::printf(" %6.0f:%.2f", cdf.thresholds[i], cdf.cumulative_fraction[i]);
    std::printf("   single-contact=%.2f\n", cdf.single_contact_fraction);
  }
  std::printf("\n[paper: the old b.root IPv6 subnet sees far more clients\n"
              " contacting it only once per day — consistent with priming:\n"
              " IPv6-enabled clients touch the old address once, then leave]\n");
  return 0;
}
