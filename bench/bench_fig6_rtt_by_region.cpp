// Figs. 6/14/15: RTT distributions of requests by continent, root deployment
// and address family (violin/box rendering + the §6 per-root comparisons).
#include "analysis/rtt.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header(
      "Figures 6/14/15 — RTTs of requests by continent, root and family",
      "The Roots Go Deep, Fig. 6 (+ Figs. 14/15, appendix G) + Section 6");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_rtt(campaign);

  for (util::Region region : util::all_regions())
    std::printf("%s\n", report.render_region(region).c_str());

  // The paper's named effects.
  util::TextTable table({"Effect (paper)", "ours v4 mean", "ours v6 mean",
                         "paper v4", "paper v6"});
  auto add = [&](const char* label, util::Region region, size_t column,
                 const char* paper_v4, const char* paper_v6) {
    const auto& cell = report.cell(region, column);
    table.add_row({label, util::TextTable::num(cell.summary_v4.mean, 1),
                   util::TextTable::num(cell.summary_v6.mean, 1), paper_v4,
                   paper_v6});
  };
  add("a.root South America", util::Region::SouthAmerica, 0, "168.3", "140.0");
  add("h.root South America", util::Region::SouthAmerica, 8, "43.7", "53.7");
  add("i.root South America", util::Region::SouthAmerica, 9, "23.8", "50.9");
  add("i.root North America", util::Region::NorthAmerica, 9, "62.6", "46.2");
  add("l.root Africa", util::Region::Africa, 12, "(local)", "62.5");
  std::printf("%s\n", table.render().c_str());
  std::printf("[expected orderings: a-SA v4>v6; h-SA and i-SA v6>v4 (i by\n"
              " >100%%); i-NA v6<v4 (~26%% lower); l-SA v6 ~39%% below v4]\n");
  return 0;
}
