// Fig. 7: ISP traffic to b.root before/after the address change — the three
// observation windows and the in-family shift ratios of Section 6.
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/collectors.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 7 — ISP: traffic to b.root before/after change",
                      "The Roots Go Deep, Fig. 7 + Section 6 (ISP-DNS-1)");
  util::UnixTime change = bench::paper_change();
  traffic::PopulationConfig population = traffic::isp_population_config();
  population.clients = 20000;
  traffic::PassiveCollector isp(traffic::generate_population(population),
                                traffic::isp_collector_config(), change);

  struct Window {
    const char* label;
    util::UnixTime start, end;
    int64_t bucket_s;
  };
  Window windows[] = {
      // The paper's first panel is hourly across one pre-change day.
      {"2023-10-07 hourly (before)", bench::change_day(-51),
       bench::change_day(-50), 3600},
      {"2024-02-05..03-04 (after)", bench::change_day(70),
       bench::change_day(98), util::kSecondsPerDay},
      {"2024-04-22..29 (long after)", bench::change_day(147),
       bench::change_day(154), util::kSecondsPerDay},
  };
  for (const Window& window : windows) {
    auto days = isp.collect_buckets(window.start, window.end, window.bucket_s);
    auto shares = analysis::broot_shares(days);
    std::printf("--- %s ---\n%s", window.label,
                analysis::render_share_series(shares).c_str());
    double v4_old = 0, v4_new = 0, v6_old = 0, v6_new = 0;
    for (const auto& share : shares) {
      v4_old += share.v4_old;
      v4_new += share.v4_new;
      v6_old += share.v6_old;
      v6_new += share.v6_new;
    }
    double n = static_cast<double>(shares.size());
    std::printf("mean shares: v4old=%.1f%% v4new=%.1f%% v6old=%.1f%% v6new=%.1f%%\n",
                100 * v4_old / n, 100 * v4_new / n, 100 * v6_old / n,
                100 * v6_new / n);
    auto ratio = analysis::shift_ratio(days);
    std::printf("in-family shift ratio: v4=%.1f%% v6=%.1f%%\n\n", 100 * ratio.v4,
                100 * ratio.v6);
  }
  std::printf("[paper: before — old subnets 76.1-88.9%% v4 + 10-21%% v6, new\n"
              " 0.8%%; after — v4new 76.2%%, v4old 11.3%%, v6new 12.0%%;\n"
              " shift ratios 87.1%% (v4) vs 96.3%% (v6)]\n");
  return 0;
}
