// Table 1: worldwide coverage of root sites — per root, global/local/total
// site counts and the fraction our VPs' catchments observe.
#include "analysis/coverage.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Table 1 — Coverage of root sites (worldwide)",
                      "The Roots Go Deep, Table 1");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_coverage(campaign);

  util::TextTable table({"Root", "G#Sites", "G#Cov", "G%Cov", "L#Sites",
                         "L#Cov", "L%Cov", "T#Sites", "T#Cov", "T%Cov"});
  for (const auto& root : report.worldwide) {
    auto total = root.total();
    auto pct = [](const analysis::CoverageCell& cell) {
      return cell.sites > 0 ? util::TextTable::num(cell.percent(), 1) : "-";
    };
    table.add_row({std::string(1, root.letter),
                   std::to_string(root.global.sites),
                   std::to_string(root.global.covered), pct(root.global),
                   std::to_string(root.local.sites),
                   std::to_string(root.local.covered), pct(root.local),
                   std::to_string(total.sites), std::to_string(total.covered),
                   pct(total)});
  }
  std::printf("%s\n", table.render().c_str());

  // Aggregate comparison points from the paper.
  int global_sites = 0, global_covered = 0, local_sites = 0, local_covered = 0;
  for (const auto& root : report.worldwide) {
    global_sites += root.global.sites;
    global_covered += root.global.covered;
    local_sites += root.local.sites;
    local_covered += root.local.covered;
  }
  std::printf("global coverage: %d/%d (%.1f%%)   [paper: high, e.g. f 74.4%%]\n",
              global_covered, global_sites,
              100.0 * global_covered / global_sites);
  std::printf("local  coverage: %d/%d (%.1f%%)   [paper: low,  e.g. f 27.8%%]\n",
              local_covered, local_sites, 100.0 * local_covered / local_sites);

  // §4.2's identifier matching step.
  auto mapping = analysis::compute_identity_mapping(campaign, report);
  std::printf("\nidentifier matching: %zu observed, %zu mapped, %zu unmapped "
              "(%zu from j.root), %zu metro-ambiguous\n",
              mapping.observed_identifiers, mapping.mapped, mapping.unmapped,
              mapping.unmapped_per_root[9], mapping.metro_ambiguous);
  std::printf("[paper: 1,469 of 1,604 mapped; 135 unmapped, 75 from j.root;\n"
              " {a,c,e,j}.root report only IATA metro codes]\n");
  return 0;
}
