// Fig. 13: IXP traffic shares across all 13 roots — dominated by k.root and
// d.root at the 14 European/North American IXPs.
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/collectors.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 13 — IXP: traffic to all roots",
                      "The Roots Go Deep, Fig. 13 (appendix D)");
  util::UnixTime change = bench::paper_change();
  traffic::PopulationConfig population = traffic::ixp_population_config_eu();
  population.clients = 15000;
  traffic::PassiveCollector ixp(traffic::generate_population(population),
                                traffic::ixp_collector_config_eu(), change);
  auto nov_dec = analysis::root_shares(
      ixp.collect(bench::change_day(-26), bench::change_day(25)));
  auto april = analysis::root_shares(
      ixp.collect(bench::change_day(147), bench::change_day(154)));

  util::TextTable table({"Root", "2023-11..12", "2024-04"});
  for (int root = 0; root < 13; ++root)
    table.add_row({std::string(1, 'a' + root),
                   util::TextTable::pct(nov_dec.share[root]),
                   util::TextTable::pct(april.share[root])});
  std::printf("%s\n", table.render().c_str());
  std::printf("k.root + d.root combined: %.1f%%  [paper: traffic dominated by\n"
              " few root servers, especially k.root and d.root]\n",
              100 * (nov_dec.share[10] + nov_dec.share[3]));
  return 0;
}
