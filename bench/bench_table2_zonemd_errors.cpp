// Table 2: ZONEMD/RRSIG validation errors for zones obtained via AXFR —
// the full audit over the fault plan plus sampled clean transfers.
#include "analysis/zonemd_report.h"
#include "bench_common.h"
#include "exec/engine.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Table 2 — ZONEMD validation errors for zones from AXFRs",
                      "The Roots Go Deep, Table 2 + Section 7");
  const measure::Campaign& campaign = bench::paper_campaign();
  // Fan the audit out over ROOTSIM_WORKERS threads (default 1); the table
  // below is identical for every worker count.
  size_t workers = exec::resolve_workers();
  auto observations = campaign.run_zone_audit(/*clean_samples=*/400, workers);
  auto report = analysis::summarize_zone_audit(observations);

  util::TextTable table({"Reason", "#SOA", "First Obs.", "Last Obs.", "#Obs.",
                         "Server", "VPid"});
  for (const auto& row : report.rows) {
    table.add_row({row.reason, std::to_string(row.distinct_soas),
                   util::format_datetime(row.first_observed),
                   util::format_datetime(row.last_observed),
                   std::to_string(row.observations), row.servers, row.vp_ids});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total transfers audited : %zu\n", report.total_observations);
  std::printf("clean                   : %zu\n", report.clean_observations);
  std::printf("failing                 : %zu\n", report.failing_observations);
  std::printf("catchable by ZONEMD     : %zu\n", report.catchable_by_zonemd);
  std::printf("\n[paper: 6 time-related errors on 2 VPs; 8 bitflipped transfers\n"
              " on 3 VPs over 5 servers; stale zones at 2 d.root sites (Tokyo\n"
              " 3 VPs/12 obs, Leeds 7 VPs/40 obs); 15 distinct bad zone files\n"
              " from 66 observations out of 75.7M transfers]\n");
  bench::write_bench_json("table2_zonemd_errors", workers);
  // Per-instance daily telemetry from every server the audit touched.
  bench::write_rssac002();
  return 0;
}
