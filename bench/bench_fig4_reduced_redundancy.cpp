// Fig. 4: reduced redundancy due to shared last-hop infrastructure, per
// continent and address family, plus the §5 headline numbers.
#include "analysis/colocation.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 4 — Reduced redundancy due to shared last hop",
                      "The Roots Go Deep, Fig. 4 + Section 5");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_colocation(campaign);

  for (util::Region region : util::all_regions()) {
    size_t r = static_cast<size_t>(region);
    std::printf("--- %s   avg(v4)=%.2f, avg(v6)=%.2f ---\n",
                std::string(util::region_name(region)).c_str(),
                report.histogram_v4[r].mean(), report.histogram_v6[r].mean());
    std::printf("IPv4 (#VPs per reduced-redundancy value)\n%s",
                util::render_histogram(report.histogram_v4[r], 30).c_str());
    std::printf("IPv6\n%s\n",
                util::render_histogram(report.histogram_v6[r], 30).c_str());
  }

  std::printf("fraction of VPs observing co-location of >=2 roots: %.1f%% "
              "[paper: ~70%%]\n",
              100.0 * report.fraction_vps_with_colocation);
  std::printf("largest co-located cluster observed by one VP: %d roots "
              "[paper: up to 12]\n",
              report.max_colocated_roots);
  std::printf("[paper averages: NA 1.00/0.82, EU 1.05/0.68, Asia 0.81/0.83,\n"
              " SA 1.15/1.31 (v6 > v4 from out-of-continent routing),\n"
              " Oceania 0.75/0.84, Africa 1.10/1.00]\n");
  return 0;
}
