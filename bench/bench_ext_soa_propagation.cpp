// Extension experiment (paper Appendix E future work): per-second SOA
// polling around a zone edit to measure root-instance synchronization.
#include "analysis/propagation.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header(
      "Extension — SOA propagation after a zone edit (per-second resolution)",
      "The Roots Go Deep, Appendix E ('Limited Temporal Resolution')");
  const measure::Campaign& campaign = bench::paper_campaign();
  // A mid-campaign zone edit snapped to a 12 h serial boundary — the same
  // derivation the RSSAC replay uses (2023-09-28 for the paper schedule).
  const measure::ScheduleConfig& schedule =
      bench::paper_campaign_config().schedule;
  util::UnixTime bump = schedule.start + (schedule.end - schedule.start) / 2;
  bump -= bump % (12 * 3600);
  auto report = analysis::measure_soa_propagation(campaign, bump);

  std::printf("zone edit: serial %u -> %u at %s\n\n", report.old_serial,
              report.new_serial, util::format_datetime(bump).c_str());
  util::TextTable table({"Root", "instances", "median s", "p90 s", "max s",
                         "SOA queries"});
  for (const auto& row : report.per_root) {
    table.add_row({std::string(1, row.letter),
                   std::to_string(row.delays_s.size()),
                   util::TextTable::num(row.summary.median, 0),
                   util::TextTable::num(row.summary.p90, 0),
                   util::TextTable::num(row.summary.max, 0),
                   std::to_string(row.soa_queries_sent)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total SOA queries: %zu (adaptive bisection; exhaustive\n"
              "per-second polling would need %zu instances x 3600)\n",
              report.total_queries,
              campaign.topology().sites.size());
  std::printf("\n[the paper could not observe this with 15/30-minute rounds\n"
              " and names per-second SOA polling as the way to do it — this\n"
              " harness runs that proposed experiment against the simulated\n"
              " RSS: most instances sync within a minute, a long tail takes\n"
              " tens of minutes]\n");
  return 0;
}
