// Transport throughput under loss: full-fidelity probes (46 queries + AXFR
// each) pushed through the simulated transport at 0%, 1% and 10% datagram
// loss. Loss costs twice — retransmitted exchanges do more work, and the
// retry/backoff bookkeeping rides the hot path — so this harness watches
// both the exchange rate and how the retry/timeout mix shifts.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "measure/prober.h"

namespace rootsim {
namespace {

struct LossPoint {
  double loss;
  uint64_t exchanges = 0;
  uint64_t udp_attempts = 0;
  uint64_t timeouts = 0;
  uint64_t tcp_fallbacks = 0;
  uint64_t wire_bytes = 0;
  double wall_ms = 0;
};

LossPoint run_point(const measure::Campaign& campaign, double loss,
                    size_t probes) {
  netsim::TransportConfig config;
  config.seed = campaign.config().seed;
  config.defaults.loss = loss;
  measure::Prober prober(campaign.authority(), campaign.catalog(),
                         campaign.router(), config,
                         bench::paper_recorder().obs());

  LossPoint point;
  point.loss = loss;
  const auto& vps = campaign.vantage_points();
  util::UnixTime now = campaign.schedule().config().start + 86400;
  uint64_t round = campaign.schedule().round_at(now);
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < probes; ++i) {
    const auto& vp = vps[i % vps.size()];
    const auto& server = campaign.catalog().server(i % 13);
    measure::ProbeRecord record =
        prober.probe(vp, i % 2 ? server.ipv6 : server.ipv4, now, round);
    point.exchanges += record.queries.size() + 1;  // + the AXFR
    point.udp_attempts += record.transport.udp_attempts;
    point.timeouts += record.transport.timeouts;
    point.tcp_fallbacks += record.transport.tcp_fallbacks;
    point.wire_bytes +=
        record.transport.bytes_sent + record.transport.bytes_received;
  }
  point.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return point;
}

}  // namespace
}  // namespace rootsim

int main() {
  using namespace rootsim;
  bench::print_header(
      "transport throughput under datagram loss",
      "transport substrate for the paper's measurement campaign (§B)");

  const measure::Campaign& campaign = bench::paper_campaign();
  constexpr size_t kProbes = 120;  // ~5.6k exchanges per loss point

  std::printf("%-8s %12s %14s %12s %10s %10s %12s\n", "loss", "exchanges",
              "exchanges/s", "udp sends", "timeouts", "tcp-fb", "MB on wire");
  double total_wall_ms = 0;
  for (double loss : {0.0, 0.01, 0.10}) {
    LossPoint point = run_point(campaign, loss, kProbes);
    total_wall_ms += point.wall_ms;
    double rate = point.wall_ms > 0
                      ? static_cast<double>(point.exchanges) * 1000.0 /
                            point.wall_ms
                      : 0.0;
    std::printf("%-8.2f %12llu %14.0f %12llu %10llu %10llu %12.2f\n",
                point.loss,
                static_cast<unsigned long long>(point.exchanges), rate,
                static_cast<unsigned long long>(point.udp_attempts),
                static_cast<unsigned long long>(point.timeouts),
                static_cast<unsigned long long>(point.tcp_fallbacks),
                static_cast<double>(point.wire_bytes) / (1024.0 * 1024.0));
  }

  bench::write_bench_json("transport", 1, total_wall_ms);
  return 0;
}
