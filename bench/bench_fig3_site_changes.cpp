// Fig. 3: complementary eCDF of site-change events for {b,g}.root, per
// address family, plus the §4.2 medians for all roots.
#include "analysis/stability.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header(
      "Figure 3 — Complementary eCDF of change events for {b,g}.root",
      "The Roots Go Deep, Fig. 3 + Section 4.2");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_stability(campaign);

  std::vector<double> thresholds = {0, 1, 3, 10, 30, 100, 300, 1000};
  for (int root : {1, 6}) {
    std::printf("%c.root-servers.net.  (1 - prop. VPs with more than x changes)\n",
                'a' + root);
    util::TextTable table({"x changes", "IPv4 P[X>x]", "IPv6 P[X>x]"});
    for (const auto& point : report.cecdf(root, thresholds))
      table.add_row({util::TextTable::num(point.threshold, 0),
                     util::TextTable::num(point.fraction_v4, 3),
                     util::TextTable::num(point.fraction_v6, 3)});
    std::printf("%s\n", table.render().c_str());
  }

  util::TextTable medians({"Root", "median changes v4", "median changes v6"});
  for (const auto& root : report.per_root)
    medians.add_row({std::string(1, root.letter),
                     util::TextTable::num(root.median_v4, 0),
                     util::TextTable::num(root.median_v6, 0)});
  std::printf("%s\n", medians.render().c_str());
  std::printf("[paper: b.root median 8 changes for BOTH families; g.root 36\n"
              " (v4) vs 64 (v6) despite both deploying only 6 sites; c and h\n"
              " also show elevated IPv6 churn]\n");
  return 0;
}
