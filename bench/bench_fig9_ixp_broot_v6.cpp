// Fig. 9: IXP IPv6 traffic to b.root around the change — the 14-IXP
// vantage set (9 Europe, 5 North America), per-IXP detail plus the regional
// aggregates with the 16.5% vs 60.8% eagerness split.
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/ixp_set.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 9 — IXP: IPv6 traffic to b.root (NA vs EU)",
                      "The Roots Go Deep, Fig. 9 + Section 6 (IXP-DNS-1)");
  util::UnixTime change = bench::paper_change();
  traffic::IxpSetConfig config;
  config.clients_per_peer = 25;
  auto ixps = traffic::build_ixp_set(change, config);

  std::printf("per-IXP IPv6 shift over 2023-12-08..28:\n");
  util::TextTable table({"IXP", "Region", "peers", "v6 shift"});
  for (const auto& ixp : ixps) {
    auto days = ixp.collector->collect(bench::change_day(11),
                                       bench::change_day(31));
    table.add_row({ixp.name, std::string(util::region_short_name(ixp.region)),
                   std::to_string(ixp.peer_count),
                   util::TextTable::pct(analysis::shift_ratio(days).v6)});
  }
  std::printf("%s\n", table.render().c_str());

  struct RegionView {
    const char* label;
    util::Region region;
    double paper_shift;
  };
  for (const RegionView& view :
       {RegionView{"North America", util::Region::NorthAmerica, 0.165},
        RegionView{"Europe", util::Region::Europe, 0.608}}) {
    auto days = traffic::aggregate_ixps(ixps, view.region,
                                        bench::change_day(-32),
                                        bench::change_day(31));
    auto shares = analysis::broot_shares(days);
    std::printf("--- %s (aggregate) ---\n%s", view.label,
                analysis::render_share_series(shares).c_str());
    auto post = traffic::aggregate_ixps(ixps, view.region,
                                        bench::change_day(11),
                                        bench::change_day(31));
    auto ratio = analysis::shift_ratio(post);
    std::printf("IPv6 traffic shifted to new subnet: %.1f%%  [paper: %.1f%%]\n\n",
                100 * ratio.v6, 100 * view.paper_shift);
  }
  std::printf("[paper: unlike the ISP, much IXP IPv6 traffic stays on the old\n"
              " subnet; Europe is far more eager than North America]\n");
  return 0;
}
