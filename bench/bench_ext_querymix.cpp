// Extension experiment: a "day at the root" query-mix replay (the paper's
// §3 lineage — Brownlee/Castro/Gao root-side client studies) quantifying how
// much root traffic a local root copy (RFC 7706/8806) would absorb.
#include "bench_common.h"
#include "traffic/querymix.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Extension — day-at-the-root query mix replay",
                      "The Roots Go Deep §3 (Studies of Clients) + §7 context");
  const measure::Campaign& campaign = bench::paper_campaign();
  const auto& site = campaign.topology().sites[0];
  rss::RootServerInstance instance(campaign.authority(), campaign.catalog(),
                                   site.root_index, site.identity);
  traffic::QueryMixConfig config;
  config.queries = 100000;
  auto workload =
      traffic::generate_query_workload(campaign.authority().tlds(), config);
  auto report =
      traffic::replay_workload(instance, workload, bench::mid_campaign());

  util::TextTable table({"Query class", "count", "share", "NXDOMAIN"});
  for (size_t cls = 0; cls < 5; ++cls) {
    table.add_row(
        {traffic::to_string(static_cast<traffic::QueryClass>(cls)),
         std::to_string(report.per_class_count[cls]),
         util::TextTable::pct(static_cast<double>(report.per_class_count[cls]) /
                              report.total),
         std::to_string(report.per_class_nxdomain[cls])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("replayed %zu queries against %s\n", report.total,
              instance.identity().c_str());
  std::printf("NXDOMAIN fraction : %.1f%%  [Gao et al.: >50%% of root queries\n"
              "                    fail on non-existent TLDs]\n",
              100 * report.nxdomain_fraction());
  std::printf("referrals         : %zu (the only answers a resolver actually "
              "needs)\n", report.referrals);
  std::printf("\n[every one of these queries is answerable from a local root\n"
              " copy — Allman's argument for eliminating root round-trips,\n"
              " which requires exactly the ZONEMD verification of §7]\n");
  return 0;
}
