// Fig. 2: measurement timeline and root zone events — the schedule the
// campaign actually executes, with per-phase round counts.
#include "bench_common.h"
#include "util/strings.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 2 — Measurement timeline and root zone events",
                      "The Roots Go Deep, Fig. 2");
  const measure::Campaign& campaign = bench::paper_campaign();
  const measure::Schedule& schedule = campaign.schedule();
  const auto& zone_config = campaign.authority().config();

  struct Event {
    util::UnixTime when;
    const char* label;
  };
  std::vector<Event> events = {
      {schedule.config().start, "measurement starts"},
      {schedule.config().start + 28 * util::kSecondsPerDay,
       "query ZONEMD and AXFR (already active here)"},
      {schedule.config().dense_windows[0].start, "period decreased to 15 min"},
      {zone_config.zonemd_private_start, "ZONEMD added to root zone (private alg)"},
      {schedule.config().dense_windows[0].end, "period increased to 30 min"},
      {schedule.config().dense_windows[1].start, "period decreased to 15 min"},
      {zone_config.broot_change, "b.root IP change in the zone"},
      {schedule.config().dense_windows[1].end, "period increased to 30 min"},
      {zone_config.zonemd_sha384_start, "ZONEMD validates (SHA-384)"},
      {schedule.config().end, "measurement ends"},
  };
  for (const auto& event : events) {
    std::printf("%s  %-45s interval=%s  round#%zu  serial=%u\n",
                util::format_date(event.when).c_str(), event.label,
                schedule.in_dense_window(event.when) ? "15m" : "30m",
                schedule.round_at(event.when),
                campaign.authority().serial_at(event.when));
  }
  std::printf("\ntotal rounds: %zu (134 days x 48 + 40 days x 96 = 10272)\n",
              schedule.round_count());
  size_t addresses = campaign.catalog().service_addresses(
      schedule.config().end).size();
  std::printf("queries/round/VP: %zu addresses x 47 = %zu\n", addresses,
              addresses * 47);
  std::printf("campaign query volume (675 VPs): %.1fB DNS queries, %.0fM AXFRs "
              "[paper: 7.7B / 78M]\n",
              675.0 * schedule.round_count() * addresses * 47 / 1e9,
              675.0 * schedule.round_count() * addresses / 1e6);
  return 0;
}
