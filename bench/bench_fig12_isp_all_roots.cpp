// Fig. 12: ISP traffic shares across all 13 roots over the observation
// windows — b.root's total share is barely affected by the renumbering.
#include "analysis/traffic_report.h"
#include "bench_common.h"
#include "traffic/collectors.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 12 — ISP: traffic to all roots",
                      "The Roots Go Deep, Fig. 12 (appendix D)");
  util::UnixTime change = bench::paper_change();
  traffic::PopulationConfig population = traffic::isp_population_config();
  population.clients = 20000;
  traffic::PassiveCollector isp(traffic::generate_population(population),
                                traffic::isp_collector_config(), change);

  struct Window {
    const char* label;
    util::UnixTime start, end;
  };
  Window windows[] = {
      {"2023-10-07 (before)", bench::change_day(-51), bench::change_day(-49)},
      {"2024-02 (after)", bench::change_day(74), bench::change_day(95)},
      {"2024-04 (later)", bench::change_day(147), bench::change_day(154)},
  };
  util::TextTable table({"Root", windows[0].label, windows[1].label,
                         windows[2].label});
  std::array<analysis::RootShares, 3> shares;
  for (size_t w = 0; w < 3; ++w)
    shares[w] = analysis::root_shares(isp.collect(windows[w].start, windows[w].end));
  for (int root = 0; root < 13; ++root) {
    table.add_row({std::string(1, 'a' + root),
                   util::TextTable::pct(shares[0].share[root]),
                   util::TextTable::pct(shares[1].share[root]),
                   util::TextTable::pct(shares[2].share[root])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("b.root share before=%.2f%% after=%.2f%%  [paper: 4.90%% -> 4.46%%,\n"
              " hardly changed despite the renumbering]\n",
              100 * shares[0].share[1], 100 * shares[1].share[1]);
  return 0;
}
