// Fig. 10: a bitflip in an RRSIG observed in a zone transfer — one corrupted
// AXFR rendered in presentation format, intact vs received, plus the
// validator's verdicts on it.
#include "analysis/zonemd_report.h"
#include "bench_common.h"
#include "dnssec/validator.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 10 — Bitflip in RRSIG in zone from AXFR",
                      "The Roots Go Deep, Fig. 10 + Section 7");
  const measure::Campaign& campaign = bench::paper_campaign();
  std::printf("%s\n", analysis::render_bitflip_example(campaign).c_str());

  // Validate the corrupted transfer the way the audit would.
  util::UnixTime when = bench::late_campaign(7 * 3600 + 30 * 60);
  measure::Prober::FaultKnobs knobs;
  knobs.inject_bitflip = true;
  knobs.bitflip_seed = 7;
  measure::ProbeRecord probe = campaign.prober().probe(
      campaign.vantage_points()[0], campaign.catalog().server(6).ipv6, when,
      campaign.schedule().round_at(when), knobs);
  auto zone = dns::Zone::from_axfr(probe.axfr->records, dns::Name());
  if (zone) {
    auto result = dnssec::validate_zone(*zone, campaign.authority().trust_anchors(),
                                        when);
    std::printf("validator verdict : %s\n",
                to_string(result.dominant_failure()).c_str());
    std::printf("ZONEMD verdict    : %s\n", to_string(result.zonemd).c_str());
  } else {
    std::printf("transfer framing broken by the flip (also detectable)\n");
  }
  std::printf("\n[paper: a flipped bit turned one RRSIG's base64 signature\n"
              " material, and in one case .ruhr into a different TLD label;\n"
              " DNSSEC flags the RRSIG case, ZONEMD catches all of them,\n"
              " including glue not covered by DNSSEC]\n");
  return 0;
}
