// Extension experiment (paper Appendix E, "Missing Evaluation of Control
// Plane Data (BGP)"): collect the control-plane route table per VP alongside
// the data-plane (traceroute) selections and quantify how often they agree —
// the sharpening the paper recommends for future work.
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Extension — control-plane (BGP) vs data-plane selection",
                      "The Roots Go Deep, Appendix E ('Missing ... BGP')");
  const measure::Campaign& campaign = bench::paper_campaign();
  const netsim::AnycastRouter& router = campaign.router();

  util::TextTable table({"Root", "CP best = DP site", "DP in CP top-3",
                         "detour overrides", "mean CP routes/VP"});
  size_t overall_agree = 0, overall_total = 0;
  for (uint32_t root = 0; root < rss::kRootCount; ++root) {
    size_t agree = 0, top3 = 0, detoured = 0, total = 0, route_count = 0;
    for (const auto& vp : campaign.vantage_points()) {
      for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
        auto routes = router.announced_routes(vp.view, root, family);
        if (routes.empty()) continue;
        netsim::RouteResult selected = router.route(vp.view, root, family);
        ++total;
        route_count += routes.size();
        if (selected.via_detour) {
          // Address-family-specific transit overriding the generic best path
          // — exactly the effect the paper attributes to AS6939/AS12956.
          ++detoured;
        }
        if (routes[0].site_id == selected.site_id) ++agree;
        for (size_t i = 0; i < routes.size() && i < 3; ++i)
          if (routes[i].site_id == selected.site_id) {
            ++top3;
            break;
          }
      }
    }
    overall_agree += agree;
    overall_total += total;
    table.add_row({std::string(1, 'a' + root),
                   util::TextTable::pct(static_cast<double>(agree) / total),
                   util::TextTable::pct(static_cast<double>(top3) / total),
                   util::TextTable::pct(static_cast<double>(detoured) / total),
                   util::TextTable::num(static_cast<double>(route_count) / total, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("overall control-plane/data-plane agreement: %.1f%%\n",
              100.0 * overall_agree / overall_total);
  std::printf("\n[disagreements are precisely the cases the paper wanted BGP\n"
              " data for: per-family detours move traffic off the generic\n"
              " best path; a route collector at each VP would expose the AS\n"
              " paths behind the RTT anomalies of §6]\n");

  // Sample AS-path view for one VP, i.root, both families (the §6 case).
  const auto& vp = campaign.vantage_points()[500];  // a North American VP
  std::printf("sample control-plane table (%s, i.root):\n",
              vp.node_name.c_str());
  for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
    auto routes = router.announced_routes(vp.view, 8, family, 3);
    netsim::RouteResult selected = router.route(vp.view, 8, family);
    std::printf("  %s (selected site %u%s):\n",
                family == util::IpFamily::V4 ? "IPv4" : "IPv6",
                selected.site_id, selected.via_detour ? ", via detour AS" : "");
    for (const auto& route : routes) {
      std::printf("    site %4u cost %7.0f  path:", route.site_id,
                  route.path_cost);
      for (auto asn : route.as_path) std::printf(" %u", asn);
      std::printf("%s\n", route.site_id == selected.site_id ? "  <= best" : "");
    }
  }
  return 0;
}
