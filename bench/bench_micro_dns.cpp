// Microbenchmarks of the DNS layer: name handling, canonical ordering, zone
// parsing/printing, AXFR stream framing, zone diffing.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "dns/axfr.h"
#include "dns/zone_diff.h"
#include "dnssec/canonical.h"

using namespace rootsim;

namespace {

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::Name::parse("b.root-servers.net."));
}
BENCHMARK(BM_NameParse);

void BM_NameCanonicalCompare(benchmark::State& state) {
  dns::Name a = *dns::Name::parse("yljkjljk.a.example.");
  dns::Name b = *dns::Name::parse("Z.a.example.");
  for (auto _ : state) benchmark::DoNotOptimize(a.canonical_compare(b));
}
BENCHMARK(BM_NameCanonicalCompare);

const dns::Zone& bench_zone() {
  static const dns::Zone& zone =
      bench::paper_campaign().authority().zone_at(bench::late_campaign());
  return zone;
}

void BM_ZoneToMasterFile(benchmark::State& state) {
  const dns::Zone& zone = bench_zone();
  for (auto _ : state) benchmark::DoNotOptimize(zone.to_master_file());
  state.counters["records"] = static_cast<double>(zone.record_count());
}
BENCHMARK(BM_ZoneToMasterFile);

void BM_ZoneParseMasterFile(benchmark::State& state) {
  std::string text = bench_zone().to_master_file();
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::Zone::parse_master_file(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ZoneParseMasterFile);

void BM_AxfrEncodeStream(benchmark::State& state) {
  auto records = bench_zone().axfr_records();
  dns::Question question{dns::Name(), dns::RRType::AXFR, dns::RRClass::IN};
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode_axfr_stream(records, question));
}
BENCHMARK(BM_AxfrEncodeStream);

void BM_AxfrDecodeStream(benchmark::State& state) {
  auto stream = dns::encode_axfr_stream(
      bench_zone().axfr_records(),
      dns::Question{dns::Name(), dns::RRType::AXFR, dns::RRClass::IN});
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::decode_axfr_stream(stream));
  state.SetBytesProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_AxfrDecodeStream);

void BM_ZoneDiffIdentical(benchmark::State& state) {
  const dns::Zone& zone = bench_zone();
  for (auto _ : state) benchmark::DoNotOptimize(dns::diff_zones(zone, zone));
}
BENCHMARK(BM_ZoneDiffIdentical);

void BM_SigningPayload(benchmark::State& state) {
  const dns::Zone& zone = bench_zone();
  const dns::RRset* ns = zone.find(dns::Name(), dns::RRType::NS);
  dns::RrsigData sig;
  sig.type_covered = dns::RRType::NS;
  sig.algorithm = 8;
  sig.original_ttl = ns->ttl;
  sig.signer = dns::Name();
  for (auto _ : state)
    benchmark::DoNotOptimize(dnssec::signing_payload(sig, *ns));
}
BENCHMARK(BM_SigningPayload);

}  // namespace

BENCHMARK_MAIN();
