// Exec-engine scaling harness: the Table 2 zone audit at 1, 2, 4 and 8
// workers on one campaign. Reports wall time, speedup and the probe /
// signature-check throughput behind each run, and writes one
// BENCH_exec_scaling_w<N>.json per worker count.
//
// Output equivalence across worker counts is enforced here (the audit is a
// pure function of seed; a mismatch means the engine broke determinism), so
// this harness doubles as a large-input determinism check. Wall-clock
// speedup tracks the host's core count — on a single-core container the
// engine can only show overhead, never scaling; the committed JSON records
// whatever the hardware gave.
#include <algorithm>
#include <thread>

#include "bench_common.h"
#include "exec/engine.h"

using namespace rootsim;

int main() {
  bench::print_header("Exec engine — zone-audit scaling by worker count",
                      "The Roots Go Deep, Section 7 corpus (75.7M transfers)");
  const measure::Campaign& campaign = bench::paper_campaign();
  constexpr size_t kCleanSamples = 400;

  // Warm the zone/AXFR caches so every worker count pays the same (zero)
  // build cost and the timings isolate the fan-out itself.
  auto reference = campaign.run_zone_audit(kCleanSamples, 1);

  const unsigned hw =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("host hardware threads: %u, scheduler: %.*s\n\n", hw,
              static_cast<int>(to_string(exec::resolve_scheduler()).size()),
              to_string(exec::resolve_scheduler()).data());
  std::printf("%8s %12s %10s %12s %14s %16s\n", "workers", "wall ms",
              "speedup", "efficiency", "probes/s", "sig-checks/s");

  double serial_ms = 0;
  for (size_t workers : {1, 2, 4, 8}) {
    const auto& metrics = bench::paper_recorder().metrics();
    uint64_t probes_before = metrics.counter_total("netsim.route_selections");
    uint64_t sigs_before = metrics.counter_total("dnssec.signatures_checked");
    auto start = std::chrono::steady_clock::now();
    auto observations = campaign.run_zone_audit(kCleanSamples, workers);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (workers == 1) serial_ms = wall_ms;

    if (observations.size() != reference.size()) {
      std::printf("DETERMINISM VIOLATION at %zu workers: %zu vs %zu rows\n",
                  workers, observations.size(), reference.size());
      return 1;
    }
    for (size_t i = 0; i < observations.size(); ++i) {
      if (observations[i].when != reference[i].when ||
          observations[i].verdict != reference[i].verdict ||
          observations[i].note != reference[i].note) {
        std::printf("DETERMINISM VIOLATION at %zu workers, row %zu\n", workers,
                    i);
        return 1;
      }
    }

    double seconds = wall_ms / 1000.0;
    uint64_t probes =
        metrics.counter_total("netsim.route_selections") - probes_before;
    uint64_t sigs =
        metrics.counter_total("dnssec.signatures_checked") - sigs_before;
    // Parallel efficiency vs the same-host serial run, normalized by the
    // parallelism the host can actually deliver: on a 1-core container 8
    // workers can only tie the serial run (efficiency ~1.0 = no scheduler
    // overhead), never beat it.
    const double effective_workers =
        static_cast<double>(std::min<size_t>(workers, hw));
    const double efficiency = serial_ms / (wall_ms * effective_workers);
    std::printf("%8zu %12.1f %9.2fx %11.2f %14.0f %16.0f\n", workers, wall_ms,
                serial_ms / wall_ms, efficiency, probes / seconds,
                sigs / seconds);
    bench::write_bench_json("exec_scaling_w" + std::to_string(workers),
                            workers, wall_ms);
  }
  std::printf("\nall worker counts produced identical audit rows\n");
  return 0;
}
