// Section 7's three-source validation study: ICANN CZDS daily files, IANA
// website downloads every 15 minutes, and AXFRs (Table 2 has the AXFR rows;
// this bench covers the two download channels' timelines).
#include "bench_common.h"
#include "dnssec/validator.h"
#include "rss/distribution.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Section 7 — zone file validation by distribution channel",
                      "The Roots Go Deep, §7 (CZDS + IANA download findings)");
  const measure::Campaign& campaign = bench::paper_campaign();
  const auto& authority = campaign.authority();
  auto anchors = authority.trust_anchors();

  struct ChannelStats {
    size_t files = 0;
    size_t no_zonemd = 0;
    size_t unverifiable = 0;
    size_t verified = 0;
    size_t dnssec_failures = 0;
    util::UnixTime first_zonemd = 0;
    util::UnixTime first_verified = 0;
  };
  auto audit = [&](rss::DistributionSource source, util::UnixTime start,
                   util::UnixTime end, int64_t stride_s) {
    rss::DistributionChannel channel(authority, source);
    ChannelStats stats;
    for (util::UnixTime t = start; t < end; t += stride_s) {
      auto file = channel.fetch(t);
      auto zone = dns::Zone::parse_master_file(file.master_file);
      if (!zone) continue;
      ++stats.files;
      auto result = dnssec::validate_zone(*zone, anchors, t);
      if (!result.signature_failures.empty()) ++stats.dnssec_failures;
      switch (result.zonemd) {
        case dnssec::ZonemdStatus::NoZonemd:
          ++stats.no_zonemd;
          break;
        case dnssec::ZonemdStatus::UnsupportedScheme:
          ++stats.unverifiable;
          if (stats.first_zonemd == 0) stats.first_zonemd = file.published_at;
          break;
        case dnssec::ZonemdStatus::Verified:
          ++stats.verified;
          if (stats.first_zonemd == 0) stats.first_zonemd = file.published_at;
          if (stats.first_verified == 0)
            stats.first_verified = file.published_at;
          break;
        default:
          break;
      }
    }
    return stats;
  };

  // CZDS: daily files over the paper's window 2023-09-15 .. 2024-03-27 —
  // from just before ZONEMD first appears in the exports to well past the
  // campaign. IANA: 15-minute cadence is too many files to validate
  // exhaustively here; stride 6h preserves the timeline (the paper
  // validated all 23,823) over its window 2023-07-11 .. 2024-02-14.
  const scenario::ScenarioSpec& spec = bench::paper_spec();
  auto czds = audit(
      rss::DistributionSource::Czds,
      spec.zone.czds_broken_zonemd.start - 6 * util::kSecondsPerDay,
      spec.zone.czds_broken_zonemd.end + 110 * util::kSecondsPerDay,
      util::kSecondsPerDay);
  auto iana = audit(rss::DistributionSource::IanaWebsite,
                    spec.horizon.start + 8 * util::kSecondsPerDay,
                    spec.horizon.end + 52 * util::kSecondsPerDay, 6 * 3600);

  util::TextTable table({"Channel", "files", "no ZONEMD", "unverifiable",
                         "verified", "DNSSEC fail", "first ZONEMD",
                         "verifies from"});
  auto row = [&](const char* name, const ChannelStats& s) {
    table.add_row({name, std::to_string(s.files), std::to_string(s.no_zonemd),
                   std::to_string(s.unverifiable), std::to_string(s.verified),
                   std::to_string(s.dnssec_failures),
                   s.first_zonemd ? util::format_date(s.first_zonemd) : "-",
                   s.first_verified ? util::format_date(s.first_verified) : "-"});
  };
  row("ICANN CZDS (daily)", czds);
  row("IANA website (6h stride)", iana);
  std::printf("%s\n", table.render().c_str());
  std::printf("[paper: 194 CZDS files, ZONEMD from 2023-09-21, validating from\n"
              " 2023-12-07 on; 23,823 IANA files, first ZONEMD record\n"
              " 2023-09-21T13:30, validating from 2023-12-06T20:30; *no*\n"
              " issues found in either download channel — unlike AXFR]\n");
  return 0;
}
