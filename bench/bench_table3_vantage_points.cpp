// Table 3: distribution of vantage points per region.
#include "bench_common.h"
#include "measure/vantage.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Table 3 — Distribution of vantage points per region",
                      "The Roots Go Deep, Table 3");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto summary = measure::summarize_regions(campaign.vantage_points());

  util::TextTable table(
      {"", "Africa", "Asia", "Europe", "N. America", "S. America", "Oceania"});
  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells = {label};
    for (util::Region region : util::all_regions())
      cells.push_back(std::to_string(getter(summary[static_cast<size_t>(region)])));
    table.add_row(cells);
  };
  row("#Vantage Points",
      [](const measure::RegionSummary& s) { return s.vantage_points; });
  row("Unique Countries",
      [](const measure::RegionSummary& s) { return s.unique_countries; });
  row("Unique Networks",
      [](const measure::RegionSummary& s) { return s.unique_networks; });
  std::printf("%s\n", table.render().c_str());
  std::printf("[paper: 10/52/435/133/13/32 VPs, 4/19/29/3/3/4 countries,\n"
              " 9/31/386/94/12/22 networks — reproduced exactly by design]\n");
  return 0;
}
