// Figs. 1 & 11: coverage maps — ASCII world maps of each root's sites with
// observed/unobserved markers (Fig. 1b is the f.root panel).
#include "analysis/coverage.h"
#include "bench_common.h"

using namespace rootsim;

int main() {
  bench::print_header("Figures 1 & 11 — Root server instance coverage maps",
                      "The Roots Go Deep, Figs. 1 and 11");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_coverage(campaign);

  std::printf("legend: G covered global, g unobserved global, L covered local, "
              "l unobserved local\n\n");
  for (int root = 0; root < static_cast<int>(rss::kRootCount); ++root) {
    const auto& coverage = report.worldwide[static_cast<size_t>(root)];
    std::printf("%c.root-servers.net.  global %d/%d  local %d/%d\n",
                'a' + root, coverage.global.covered, coverage.global.sites,
                coverage.local.covered, coverage.local.sites);
    std::printf("%s\n",
                analysis::render_coverage_map(campaign, report, root).c_str());
  }
  return 0;
}
