// Table 4: coverage of root sites per region (global/local/total per root).
#include "analysis/coverage.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Table 4 — Coverage of root sites per region",
                      "The Roots Go Deep, Table 4 (appendix C)");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_coverage(campaign);

  for (util::Region region : util::all_regions()) {
    std::printf("--- %s ---\n", std::string(util::region_name(region)).c_str());
    util::TextTable table({"Root", "G#", "GCov", "G%", "L#", "LCov", "L%", "T#",
                           "TCov", "T%"});
    for (const auto& root : report.per_region[static_cast<size_t>(region)]) {
      if (root.total().sites == 0) continue;
      auto pct = [](const analysis::CoverageCell& cell) {
        return cell.sites > 0 ? util::TextTable::num(cell.percent(), 1) : "-";
      };
      auto total = root.total();
      table.add_row({std::string(1, root.letter ? root.letter : '?'),
                     std::to_string(root.global.sites),
                     std::to_string(root.global.covered), pct(root.global),
                     std::to_string(root.local.sites),
                     std::to_string(root.local.covered), pct(root.local),
                     std::to_string(total.sites), std::to_string(total.covered),
                     pct(total)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("[paper: Europe best covered (j 88.5%%, l 93.9%% global);\n"
              " Africa/South America local coverage low (f 4-18%%)]\n");
  return 0;
}
