// Extension experiment (paper Appendix E, "Absence of a Control Group"):
// run the measurement methodology against an anycast deployment whose ground
// truth we fully control, and check what it recovers.
//
// The control deployment is b.root-shaped (6 global sites: 3 NA, 1 EU,
// 1 Asia, 1 SA) but lives in its own topology, so every site location,
// every facility and every routing decision is known. The methodology's
// claims can then be scored exactly:
//   * coverage: does the VP set observe all sites?
//   * catchment: how often does the measured site equal the lowest-cost one?
//   * RTT sanity: measured RTT must respect the fiber-distance lower bound.
#include <set>

#include "bench_common.h"
#include "measure/vantage.h"
#include "util/stats.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header("Extension — control-group anycast deployment",
                      "The Roots Go Deep, Appendix E ('Absence of a Control Group')");

  // Ground truth: one deployment, fully specified.
  netsim::DeploymentSpec control;
  control.letter = 'x';
  control.global_sites = {0, 1, 1, 3, 1, 0};  // AF,AS,EU,NA,SA,OC
  control.local_sites = {0, 0, 0, 0, 0, 0};

  netsim::TopologyConfig topo_config;
  topo_config.seed = 4242;
  netsim::Topology topology = netsim::build_topology(topo_config, {control}, {});
  netsim::RouterConfig router_config;
  router_config.seed = 4242;
  router_config.churn[0] = {8, 8};
  netsim::AnycastRouter router(topology, router_config);
  measure::VantageSetConfig vantage_config;
  vantage_config.seed = 4242;
  auto vps = measure::generate_vantage_points(topology, vantage_config);

  std::printf("control deployment 'x.root': %zu sites, known ground truth\n\n",
              topology.sites_by_root[0].size());

  // 1. Coverage.
  std::set<uint32_t> observed;
  size_t catchment_matches = 0, total = 0;
  size_t rtt_bound_violations = 0;
  std::array<std::vector<double>, util::kRegionCount> rtt_by_region;
  for (const auto& vp : vps) {
    for (util::IpFamily family : {util::IpFamily::V4, util::IpFamily::V6}) {
      netsim::RouteResult route = router.route(vp.view, 0, family);
      observed.insert(route.site_id);
      ++total;
      // Ground truth "optimal": the geographically closest site.
      const netsim::AnycastSite& closest = router.closest_global_site(vp.view, 0);
      if (route.site_id == closest.id) ++catchment_matches;
      // RTT can never beat speed-of-light in fiber to the *closest* site.
      double fiber_floor = util::fiber_rtt_ms(
          util::haversine_km(vp.view.location, closest.location));
      if (route.rtt_ms + 1e-9 < fiber_floor) ++rtt_bound_violations;
      rtt_by_region[static_cast<size_t>(vp.view.region)].push_back(route.rtt_ms);
    }
  }
  std::printf("1. coverage: %zu/%zu sites observed by the 675 VPs\n",
              observed.size(), topology.sites_by_root[0].size());
  std::printf("2. catchment: %.1f%% of requests at the geographically closest "
              "site\n   (BGP-proxy policy noise accounts for the rest — the\n"
              "   route-inflation phenomenon of Fig. 5 on a known deployment)\n",
              100.0 * catchment_matches / total);
  std::printf("3. physics: %zu RTT measurements below the fiber-distance floor "
              "(must be 0)\n\n", rtt_bound_violations);

  util::TextTable table({"Region", "median RTT ms", "p90 ms", "n"});
  for (util::Region region : util::all_regions()) {
    auto& samples = rtt_by_region[static_cast<size_t>(region)];
    if (samples.empty()) continue;
    auto s = util::summarize(samples);
    table.add_row({std::string(util::region_name(region)),
                   util::TextTable::num(s.median, 1),
                   util::TextTable::num(s.p90, 1), std::to_string(s.count)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("[with 3 of 6 sites in North America and none in Africa/Oceania,\n"
              " the control group shows exactly the regional RTT asymmetry the\n"
              " methodology should detect — and the same methodology applied to\n"
              " the RSS can therefore be trusted on deployments we do NOT\n"
              " control. This is the study design the paper recommends.]\n");
  return 0;
}
