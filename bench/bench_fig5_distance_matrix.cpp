// Fig. 5: distance per request from VPs to root sites — closest global site
// vs actually selected site, for b.root and m.root, both families.
#include "analysis/distance.h"
#include "bench_common.h"

using namespace rootsim;

int main() {
  bench::print_header("Figure 5 — Distance per request from VPs to root sites",
                      "The Roots Go Deep, Fig. 5 + Section 6");
  const measure::Campaign& campaign = bench::paper_campaign();

  struct Panel {
    int root;
    util::IpFamily family;
    const char* label;
  };
  Panel panels[] = {
      {1, util::IpFamily::V4, "b.root (new IPv4)"},
      {1, util::IpFamily::V6, "b.root (new IPv6)"},
      {12, util::IpFamily::V4, "m.root (IPv4)"},
      {12, util::IpFamily::V6, "m.root (IPv6)"},
  };
  for (const Panel& panel : panels) {
    auto report = analysis::compute_distance(campaign, panel.root, panel.family);
    std::printf("--- %s ---\n", panel.label);
    std::printf("%s", report.render_heatmap().c_str());
    std::printf("requests at closest global site or closer local: %.1f%%\n",
                100.0 * report.fraction_optimal());
    std::printf("clients with extra distance < 1,000 km: %.1f%%\n\n",
                100.0 * report.fraction_clients_below(1000));
  }
  std::printf("[paper: 78.2%%/82.2%% optimal for b.root v4/v6, 79.5%%/81.0%%\n"
              " for m.root; 79.5%% of b.root clients < 1,000 km extra, 21.5%%\n"
              " face up to 15,000 km (~10 ms per 1,000 km)]\n");
  return 0;
}
