// Extension experiment: RSSAC047-style service metrics, now measured two
// ways that cannot disagree — the streaming SLO monitor watches thresholds
// online over the paper timeline (detecting the b.root renumbering and the
// ZONEMD rollout as attributed incidents), and the batch report is a replay
// over the same collector (analysis/rssac_metrics.h). Plus the §5
// clustered-site failure what-if, grounding the paper's RSSAC037 framing.
//
// Artifacts: slo.jsonl + incidents.jsonl (render with tools/slo_report.py)
// and BENCH_rssac047.json, whose "deterministic" counter object is diffed
// exactly by tools/bench_compare.py against the committed baseline.
#include <cmath>
#include <map>

#include "analysis/rssac_metrics.h"
#include "bench_common.h"
#include "netsim/flight_recorder.h"
#include "obs/incident.h"
#include "util/strings.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header(
      "Extension — streaming RSSAC047 SLO monitor + cluster-failure what-if",
      "The Roots Go Deep §1 (RSSAC037 framing) + §4 (b.root, ZONEMD) + §5");
  const measure::Campaign& campaign = bench::paper_campaign();

  // --- The streaming monitor over the full paper timeline. ---
  netsim::FlightRecorder flight(1024);
  measure::SloTimelineOptions options;
  options.flight_recorder = &flight;
  auto timeline = campaign.run_slo_timeline(options);

  std::printf("--- streaming SLO monitor (windows of %lld h simulated time) ---\n",
              static_cast<long long>(obs::SloCollector::kBucketSeconds / 3600));
  std::printf("probes: %llu (%llu failed)  latency samples: %llu  "
              "publication: %llu  integrity: %llu (%llu failed)\n",
              static_cast<unsigned long long>(timeline.probes),
              static_cast<unsigned long long>(timeline.failed_probes),
              static_cast<unsigned long long>(timeline.latency_samples),
              static_cast<unsigned long long>(timeline.publication_count),
              static_cast<unsigned long long>(timeline.integrity_checks),
              static_cast<unsigned long long>(timeline.integrity_failures));
  std::printf("evaluated windows: %zu  incidents: %zu\n\n",
              timeline.windows.size(), timeline.incidents.size());

  util::TextTable incident_table(
      {"id", "letter", "family", "metric", "opened", "closed", "cause"});
  std::map<std::string, size_t> incidents_by_metric;
  for (const auto& incident : timeline.incidents) {
    ++incidents_by_metric[std::string(obs::to_string(incident.metric))];
    incident_table.add_row(
        {util::format("%u", incident.id),
         std::string(1, static_cast<char>('a' + incident.root)),
         incident.v6 ? "v6" : "v4", std::string(obs::to_string(incident.metric)),
         util::format_datetime(incident.opened),
         incident.open() ? "OPEN" : util::format_datetime(incident.closed),
         incident.cause});
  }
  std::printf("%s\n", incident_table.render().c_str());
  std::printf("[both §4 events surface here: letter b availability blamed on\n"
              " b.root-renumbering, and the ZONEMD private-algorithm phase as\n"
              " integrity incidents that heal at the sha384 switch]\n\n");

  std::FILE* out = std::fopen("slo.jsonl", "w");
  if (out) {
    std::fwrite(timeline.slo_jsonl.data(), 1, timeline.slo_jsonl.size(), out);
    std::fclose(out);
    std::printf("wrote slo.jsonl (%zu windows)\n", timeline.windows.size());
  }
  out = std::fopen("incidents.jsonl", "w");
  if (out) {
    std::fwrite(timeline.incidents_jsonl.data(), 1,
                timeline.incidents_jsonl.size(), out);
    std::fclose(out);
    std::printf("wrote incidents.jsonl (%zu incidents)\n\n",
                timeline.incidents.size());
  }

  // --- The batch report: a replay over the same collector implementation. ---
  auto report = analysis::compute_rssac_metrics(campaign);
  util::TextTable table({"Root", "avail v4", "avail v6", "med RTT v4",
                         "med RTT v6", "p95 v4", "p95 v6", "pub lat s"});
  for (const auto& metrics : report.per_root) {
    table.add_row({std::string(1, metrics.letter),
                   util::TextTable::pct(metrics.availability_v4, 2),
                   util::TextTable::pct(metrics.availability_v6, 2),
                   util::TextTable::num(metrics.median_rtt_v4, 1),
                   util::TextTable::num(metrics.median_rtt_v6, 1),
                   util::TextTable::num(metrics.p95_rtt_v4, 1),
                   util::TextTable::num(metrics.p95_rtt_v6, 1),
                   util::TextTable::num(metrics.median_publication_latency_s, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("worst per-root availability: %.3f%%  [RSSAC047 target: 99.96%%\n"
              " for the whole service — anycast redundancy absorbs per-site\n"
              " outages; a probe only fails while its *selected* site is dark]\n\n",
              100 * report.worst_availability);

  auto impact = analysis::simulate_cluster_failure(campaign);
  std::printf("--- §5 what-if: most-clustered facility goes dark ---\n");
  std::printf("facility %u hosts sites of %zu roots\n", impact.facility,
              impact.roots_hosted);
  std::printf("selections moved: %zu of %zu (%.2f%%)\n", impact.selections_moved,
              impact.selections_total,
              100.0 * impact.selections_moved / impact.selections_total);
  std::printf("RTT delta for moved clients: median %+.1f ms, p90 %+.1f ms, "
              "max %+.1f ms\n",
              impact.rtt_delta_ms.median, impact.rtt_delta_ms.p90,
              impact.rtt_delta_ms.max);
  std::printf("\n[the paper: such a failure 'can, instantaneously, shift\n"
              " traffic to other locations' and may push resolvers to other\n"
              " root deployments — here is the size of that shift]\n");

  // Seed-pure counters: identical on every machine, worker count, and steal
  // schedule, so bench_compare.py diffs them exactly.
  std::string deterministic = util::format(
      "\"deterministic\": {\n"
      "    \"slo_probes\": %llu,\n"
      "    \"slo_failed_probes\": %llu,\n"
      "    \"slo_latency_samples\": %llu,\n"
      "    \"slo_publication_samples\": %llu,\n"
      "    \"slo_staleness_samples\": %llu,\n"
      "    \"slo_integrity_checks\": %llu,\n"
      "    \"slo_integrity_failures\": %llu,\n"
      "    \"slo_windows\": %zu,\n"
      "    \"incidents\": %zu,\n"
      "    \"incidents_availability\": %zu,\n"
      "    \"incidents_integrity\": %zu,\n"
      "    \"worst_availability_bp\": %.0f\n"
      "  }",
      static_cast<unsigned long long>(timeline.probes),
      static_cast<unsigned long long>(timeline.failed_probes),
      static_cast<unsigned long long>(timeline.latency_samples),
      static_cast<unsigned long long>(timeline.publication_count),
      static_cast<unsigned long long>(timeline.staleness_samples),
      static_cast<unsigned long long>(timeline.integrity_checks),
      static_cast<unsigned long long>(timeline.integrity_failures),
      timeline.windows.size(), timeline.incidents.size(),
      incidents_by_metric["availability"], incidents_by_metric["integrity"],
      std::floor(10000.0 * report.worst_availability));
  bench::write_bench_json("rssac047", exec::resolve_workers(0), -1,
                          deterministic);
  return 0;
}
