// Extension experiment: RSSAC047-style service metrics + the §5 clustered-
// site failure what-if, grounding the paper's RSSAC037 framing in numbers.
#include "analysis/rssac_metrics.h"
#include "bench_common.h"
#include "util/table.h"

using namespace rootsim;

int main() {
  bench::print_header(
      "Extension — RSSAC047-style service metrics + cluster-failure what-if",
      "The Roots Go Deep §1 (RSSAC037 framing) + §5 (clustered sites)");
  const measure::Campaign& campaign = bench::paper_campaign();
  auto report = analysis::compute_rssac_metrics(campaign);

  util::TextTable table({"Root", "avail v4", "avail v6", "med RTT v4",
                         "med RTT v6", "p95 v4", "p95 v6", "pub lat s"});
  for (const auto& metrics : report.per_root) {
    table.add_row({std::string(1, metrics.letter),
                   util::TextTable::pct(metrics.availability_v4, 2),
                   util::TextTable::pct(metrics.availability_v6, 2),
                   util::TextTable::num(metrics.median_rtt_v4, 1),
                   util::TextTable::num(metrics.median_rtt_v6, 1),
                   util::TextTable::num(metrics.p95_rtt_v4, 1),
                   util::TextTable::num(metrics.p95_rtt_v6, 1),
                   util::TextTable::num(metrics.median_publication_latency_s, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("worst per-root availability: %.3f%%  [RSSAC047 target: 99.96%%\n"
              " for the whole service — anycast redundancy absorbs per-site\n"
              " outages; a probe only fails while its *selected* site is dark]\n\n",
              100 * report.worst_availability);

  auto impact = analysis::simulate_cluster_failure(campaign);
  std::printf("--- §5 what-if: most-clustered facility goes dark ---\n");
  std::printf("facility %u hosts sites of %zu roots\n", impact.facility,
              impact.roots_hosted);
  std::printf("selections moved: %zu of %zu (%.2f%%)\n", impact.selections_moved,
              impact.selections_total,
              100.0 * impact.selections_moved / impact.selections_total);
  std::printf("RTT delta for moved clients: median %+.1f ms, p90 %+.1f ms, "
              "max %+.1f ms\n",
              impact.rtt_delta_ms.median, impact.rtt_delta_ms.p90,
              impact.rtt_delta_ms.max);
  std::printf("\n[the paper: such a failure 'can, instantaneously, shift\n"
              " traffic to other locations' and may push resolvers to other\n"
              " root deployments — here is the size of that shift]\n");
  return 0;
}
