// Binary-to-text encodings used by DNS presentation formats: hex for ZONEMD
// digests and DS records (RFC 8976 / RFC 4034), base64 for DNSKEY public keys
// and RRSIG signatures, base32hex (RFC 4648 §7) for NSEC3 owner names.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rootsim::crypto {

std::string to_hex(std::span<const uint8_t> data);
std::optional<std::vector<uint8_t>> from_hex(std::string_view text);

std::string to_base64(std::span<const uint8_t> data);
std::optional<std::vector<uint8_t>> from_base64(std::string_view text);

std::string to_base32hex(std::span<const uint8_t> data);
std::optional<std::vector<uint8_t>> from_base32hex(std::string_view text);

}  // namespace rootsim::crypto
