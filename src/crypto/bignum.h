// Arbitrary-precision unsigned integers, sized for RSA (512–2048 bit moduli).
//
// The root zone's DNSSEC chain uses RSA (algorithm 8, RSASHA256, for the KSK
// and ZSK), so signing and validating our simulated root zone needs modular
// arithmetic on big integers. This is a deliberately small, well-tested
// implementation: 64-bit limbs (little-endian), schoolbook multiplication,
// Knuth Algorithm D division, binary extended GCD, and two modexp paths —
// the square-and-multiply reference (`mod_pow_basic`) and a Montgomery-form
// CIOS kernel with 4-bit fixed windows (`MontgomeryContext`) that `mod_pow`
// selects for odd moduli. Signing and verification dominate the audit's
// 78M-AXFR-scale hot path, so the Montgomery kernel matters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rootsim::crypto {

/// Unsigned big integer. Value semantics, normalized (no high zero limbs).
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t value);

  /// Big-endian byte import/export (the DNS wire convention for key material).
  static BigNum from_bytes(std::span<const uint8_t> big_endian);
  std::vector<uint8_t> to_bytes() const;
  /// Fixed-width export, left-padded with zeros; used to emit signatures of
  /// exactly modulus size. Returns empty vector if the value does not fit.
  std::vector<uint8_t> to_bytes_padded(size_t width) const;

  static BigNum from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t bit_length() const;
  bool bit(size_t index) const;
  uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  int compare(const BigNum& other) const;
  bool operator==(const BigNum& other) const { return compare(other) == 0; }
  bool operator<(const BigNum& other) const { return compare(other) < 0; }
  bool operator<=(const BigNum& other) const { return compare(other) <= 0; }
  bool operator>(const BigNum& other) const { return compare(other) > 0; }
  bool operator>=(const BigNum& other) const { return compare(other) >= 0; }

  BigNum operator+(const BigNum& other) const;
  /// Subtraction requires *this >= other (unsigned type).
  BigNum operator-(const BigNum& other) const;
  BigNum operator*(const BigNum& other) const;
  BigNum operator<<(size_t bits) const;
  BigNum operator>>(size_t bits) const;

  /// Quotient and remainder in one pass (Knuth Algorithm D).
  struct DivMod;
  DivMod divmod(const BigNum& divisor) const;
  BigNum operator/(const BigNum& d) const;
  BigNum operator%(const BigNum& d) const;

  /// (this ^ exponent) mod modulus; modulus must be nonzero. Dispatches to
  /// the Montgomery kernel for odd moduli (every RSA modulus and Miller–Rabin
  /// candidate), else falls back to mod_pow_basic.
  BigNum mod_pow(const BigNum& exponent, const BigNum& modulus) const;

  /// Reference square-and-multiply modexp (one full multiply + Knuth division
  /// per exponent bit). Kept as the property-test oracle for the Montgomery
  /// kernel and as the fallback for even moduli.
  BigNum mod_pow_basic(const BigNum& exponent, const BigNum& modulus) const;

  /// Modular inverse; returns zero BigNum if gcd(this, modulus) != 1.
  BigNum mod_inverse(const BigNum& modulus) const;

  static BigNum gcd(BigNum a, BigNum b);

 private:
  friend class MontgomeryContext;
  void normalize();
  std::vector<uint64_t> limbs_;  // little-endian
};

struct BigNum::DivMod {
  BigNum quotient;
  BigNum remainder;
};

/// Precomputed left-to-right 4-bit window decomposition of an exponent.
/// Modulus-independent: compute once per fixed exponent (an RSA key's d,
/// dp, dq) and reuse it across every exponentiation with that exponent —
/// the per-call bit scans disappear from the signing hot loop.
struct FixedWindowSchedule {
  /// Window digits, most significant first. digits.front() is nonzero for
  /// any nonzero exponent.
  std::vector<uint8_t> digits;
  size_t bit_length = 0;

  bool empty() const { return digits.empty(); }
  static FixedWindowSchedule from_exponent(const BigNum& exponent);
};

/// Montgomery-form modular exponentiation for a fixed odd modulus.
///
/// Precomputes -n^{-1} mod 2^64 and R^2 mod n (R = 2^(64k)) once, then every
/// multiply is one CIOS pass — no division anywhere on the exponentiation
/// path. exp() uses a 4-bit fixed window (16-entry table, 4 squarings + one
/// table multiply per window); squarings go through a dedicated half-product
/// kernel (~25% fewer limb multiplies than the general CIOS pass). Small
/// exponents (RSA's e = 65537) skip the window table entirely — plain
/// square-and-multiply is cheaper than building 16 table entries. Reusing
/// one context across many operations with the same modulus (RSA
/// sign/verify) amortizes the setup divmod; that reuse is what
/// crypto::RsaSignContext / RsaVerifyContext package for the DNSSEC paths.
class MontgomeryContext {
 public:
  /// `modulus` must be odd and > 1; valid() is false otherwise and exp()
  /// falls back to the schoolbook path.
  explicit MontgomeryContext(const BigNum& modulus);

  bool valid() const { return !n_.empty(); }
  const BigNum& modulus() const { return modulus_; }

  /// (base ^ exponent) mod modulus.
  BigNum exp(const BigNum& base, const BigNum& exponent) const;

  /// Same, driven by a precomputed window schedule of the exponent (must be
  /// the schedule of a nonzero exponent; pairs with a per-key cache).
  BigNum exp(const BigNum& base, const FixedWindowSchedule& schedule) const;

  /// (a * b) mod modulus through the Montgomery domain — one conversion
  /// round-trip, no Knuth division. Used by the CRT recombination.
  BigNum mul_mod(const BigNum& a, const BigNum& b) const;

 private:
  using Limbs = std::vector<uint64_t>;
  /// out = (a * b * R^-1) mod n; a, b, out are k-limb Montgomery residues.
  void mul(Limbs& out, const Limbs& a, const Limbs& b, Limbs& scratch) const;
  /// out = (a * a * R^-1) mod n; exploits product symmetry (half the
  /// cross-limb multiplies of mul).
  void sqr(Limbs& out, const Limbs& a, Limbs& scratch) const;
  /// Montgomery-reduces the 2k-limb product in `wide` into `out`.
  void reduce(Limbs& out, Limbs& wide) const;
  /// Shared driver behind both exp() overloads.
  BigNum exp_windows(const BigNum& base, const uint8_t* digits,
                     size_t digit_count) const;

  BigNum modulus_;
  Limbs n_;          // modulus limbs, k entries
  Limbs r2_;         // R^2 mod n
  uint64_t n0_inv_ = 0;  // -n^{-1} mod 2^64
};

}  // namespace rootsim::crypto
