// Arbitrary-precision unsigned integers, sized for RSA (512–2048 bit moduli).
//
// The root zone's DNSSEC chain uses RSA (algorithm 8, RSASHA256, for the KSK
// and ZSK), so signing and validating our simulated root zone needs modular
// arithmetic on big integers. This is a deliberately small, well-tested
// implementation: 64-bit limbs (little-endian), schoolbook multiplication,
// Knuth Algorithm D division, binary extended GCD, and left-to-right square
// and multiply for modexp. Performance is adequate: signing the root zone
// twice per serial is microseconds-to-milliseconds, far from the bottleneck.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rootsim::crypto {

/// Unsigned big integer. Value semantics, normalized (no high zero limbs).
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t value);

  /// Big-endian byte import/export (the DNS wire convention for key material).
  static BigNum from_bytes(std::span<const uint8_t> big_endian);
  std::vector<uint8_t> to_bytes() const;
  /// Fixed-width export, left-padded with zeros; used to emit signatures of
  /// exactly modulus size. Returns empty vector if the value does not fit.
  std::vector<uint8_t> to_bytes_padded(size_t width) const;

  static BigNum from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t bit_length() const;
  bool bit(size_t index) const;
  uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  int compare(const BigNum& other) const;
  bool operator==(const BigNum& other) const { return compare(other) == 0; }
  bool operator<(const BigNum& other) const { return compare(other) < 0; }
  bool operator<=(const BigNum& other) const { return compare(other) <= 0; }
  bool operator>(const BigNum& other) const { return compare(other) > 0; }
  bool operator>=(const BigNum& other) const { return compare(other) >= 0; }

  BigNum operator+(const BigNum& other) const;
  /// Subtraction requires *this >= other (unsigned type).
  BigNum operator-(const BigNum& other) const;
  BigNum operator*(const BigNum& other) const;
  BigNum operator<<(size_t bits) const;
  BigNum operator>>(size_t bits) const;

  /// Quotient and remainder in one pass (Knuth Algorithm D).
  struct DivMod;
  DivMod divmod(const BigNum& divisor) const;
  BigNum operator/(const BigNum& d) const;
  BigNum operator%(const BigNum& d) const;

  /// (this ^ exponent) mod modulus; modulus must be nonzero.
  BigNum mod_pow(const BigNum& exponent, const BigNum& modulus) const;

  /// Modular inverse; returns zero BigNum if gcd(this, modulus) != 1.
  BigNum mod_inverse(const BigNum& modulus) const;

  static BigNum gcd(BigNum a, BigNum b);

 private:
  void normalize();
  std::vector<uint64_t> limbs_;  // little-endian
};

struct BigNum::DivMod {
  BigNum quotient;
  BigNum remainder;
};

}  // namespace rootsim::crypto
