#include "crypto/bignum.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace rootsim::crypto {

namespace {
using U128 = unsigned __int128;
}

BigNum::BigNum(uint64_t value) {
  if (value) limbs_.push_back(value);
}

void BigNum::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(std::span<const uint8_t> big_endian) {
  BigNum n;
  size_t nbytes = big_endian.size();
  size_t nlimbs = (nbytes + 7) / 8;
  n.limbs_.assign(nlimbs, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    // big_endian[0] is the most significant byte.
    size_t bit_pos = (nbytes - 1 - i);
    n.limbs_[bit_pos / 8] |= static_cast<uint64_t>(big_endian[i]) << (8 * (bit_pos % 8));
  }
  n.normalize();
  return n;
}

std::vector<uint8_t> BigNum::to_bytes() const {
  if (limbs_.empty()) return {0};
  size_t bits = bit_length();
  size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> out(nbytes);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t pos = nbytes - 1 - i;  // position from least significant
    out[i] = static_cast<uint8_t>(limbs_[pos / 8] >> (8 * (pos % 8)));
  }
  return out;
}

std::vector<uint8_t> BigNum::to_bytes_padded(size_t width) const {
  std::vector<uint8_t> raw = to_bytes();
  if (raw.size() == 1 && raw[0] == 0) raw.clear();
  if (raw.size() > width) return {};
  std::vector<uint8_t> out(width, 0);
  std::copy(raw.begin(), raw.end(), out.begin() + static_cast<long>(width - raw.size()));
  return out;
}

BigNum BigNum::from_hex(std::string_view hex) {
  BigNum n;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else continue;
    n = (n << 4) + BigNum(static_cast<uint64_t>(v));
  }
  return n;
}

std::string BigNum::to_hex() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (size_t i = limbs_.size(); i > 0; --i) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      unsigned nibble = static_cast<unsigned>(limbs_[i - 1] >> shift) & 0xF;
      if (leading && nibble == 0) continue;
      leading = false;
      out += digits[nibble];
    }
  }
  return out.empty() ? "0" : out;
}

size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(size_t index) const {
  size_t limb = index / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 64)) & 1;
}

int BigNum::compare(const BigNum& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1])
      return limbs_[i - 1] < other.limbs_[i - 1] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::operator+(const BigNum& other) const {
  BigNum out;
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    U128 sum = static_cast<U128>(i < limbs_.size() ? limbs_[i] : 0) +
               (i < other.limbs_.size() ? other.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.normalize();
  return out;
}

BigNum BigNum::operator-(const BigNum& other) const {
  assert(*this >= other && "BigNum subtraction underflow");
  BigNum out;
  out.limbs_.assign(limbs_.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    U128 lhs = limbs_[i];
    U128 sub = static_cast<U128>(rhs) + borrow;
    if (lhs >= sub) {
      out.limbs_[i] = static_cast<uint64_t>(lhs - sub);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<uint64_t>((static_cast<U128>(1) << 64) + lhs - sub);
      borrow = 1;
    }
  }
  out.normalize();
  return out;
}

BigNum BigNum::operator*(const BigNum& other) const {
  if (limbs_.empty() || other.limbs_.empty()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      U128 cur = static_cast<U128>(limbs_[i]) * other.limbs_[j] +
                 out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t k = i + other.limbs_.size();
    while (carry) {
      U128 cur = static_cast<U128>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigNum BigNum::operator<<(size_t bits) const {
  if (limbs_.empty()) return BigNum();
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigNum BigNum::operator>>(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift)
                              : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigNum::DivMod BigNum::divmod(const BigNum& divisor) const {
  assert(!divisor.is_zero() && "BigNum division by zero");
  DivMod result;
  if (*this < divisor) {
    result.remainder = *this;
    return result;
  }
  const size_t n = divisor.limbs_.size();
  // Single-limb divisor: one pass with 128-bit division.
  if (n == 1) {
    uint64_t d = divisor.limbs_[0];
    BigNum quot;
    quot.limbs_.assign(limbs_.size(), 0);
    U128 rem = 0;
    for (size_t i = limbs_.size(); i > 0; --i) {
      U128 cur = (rem << 64) | limbs_[i - 1];
      quot.limbs_[i - 1] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    quot.normalize();
    result.quotient = std::move(quot);
    result.remainder = BigNum(static_cast<uint64_t>(rem));
    return result;
  }
  // Knuth TAOCP vol. 2, Algorithm D, base 2^64.
  const size_t m = limbs_.size() - n;
  int shift = 63;
  {
    uint64_t top = divisor.limbs_.back();
    shift = 0;
    while (!(top & (1ULL << 63))) {
      top <<= 1;
      ++shift;
    }
  }
  // D1: normalize so the divisor's top limb has its high bit set.
  std::vector<uint64_t> u(limbs_.size() + 1, 0);
  std::vector<uint64_t> v(n, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    u[i] |= shift ? (limbs_[i] << shift) : limbs_[i];
    if (shift && i + 1 <= limbs_.size()) u[i + 1] = limbs_[i] >> (64 - shift);
  }
  for (size_t i = 0; i < n; ++i) {
    v[i] = shift ? (divisor.limbs_[i] << shift) : divisor.limbs_[i];
    if (shift && i > 0) v[i] |= divisor.limbs_[i - 1] >> (64 - shift);
  }
  std::vector<uint64_t> q(m + 1, 0);
  // D2..D7: main loop.
  for (size_t j = m + 1; j > 0; --j) {
    size_t jj = j - 1;
    // D3: estimate qhat from the top two limbs of the current window.
    U128 numerator = (static_cast<U128>(u[jj + n]) << 64) | u[jj + n - 1];
    U128 qhat = numerator / v[n - 1];
    U128 rhat = numerator % v[n - 1];
    while (qhat >= (static_cast<U128>(1) << 64) ||
           qhat * v[n - 2] > ((rhat << 64) | u[jj + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= (static_cast<U128>(1) << 64)) break;
    }
    // D4: multiply and subtract qhat * v from the window.
    U128 borrow = 0;
    U128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      U128 product = qhat * v[i] + carry;
      carry = product >> 64;
      uint64_t plo = static_cast<uint64_t>(product);
      U128 sub = static_cast<U128>(u[jj + i]) - plo - borrow;
      u[jj + i] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    U128 sub = static_cast<U128>(u[jj + n]) - carry - borrow;
    u[jj + n] = static_cast<uint64_t>(sub);
    bool negative = (sub >> 64) != 0;
    // D5/D6: if we overshot, add the divisor back and decrement qhat.
    if (negative) {
      --qhat;
      U128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        U128 sum = static_cast<U128>(u[jj + i]) + v[i] + c;
        u[jj + i] = static_cast<uint64_t>(sum);
        c = sum >> 64;
      }
      u[jj + n] = static_cast<uint64_t>(u[jj + n] + static_cast<uint64_t>(c));
    }
    q[jj] = static_cast<uint64_t>(qhat);
  }
  BigNum quot;
  quot.limbs_ = std::move(q);
  quot.normalize();
  // D8: denormalize the remainder.
  BigNum rem;
  rem.limbs_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    rem.limbs_[i] = shift ? (u[i] >> shift) : u[i];
    if (shift && i + 1 < n + 1) rem.limbs_[i] |= u[i + 1] << (64 - shift);
  }
  rem.normalize();
  result.quotient = std::move(quot);
  result.remainder = std::move(rem);
  return result;
}

BigNum BigNum::operator/(const BigNum& d) const { return divmod(d).quotient; }
BigNum BigNum::operator%(const BigNum& d) const { return divmod(d).remainder; }

BigNum BigNum::mod_pow_basic(const BigNum& exponent, const BigNum& modulus) const {
  assert(!modulus.is_zero());
  BigNum base = *this % modulus;
  BigNum result(1);
  if (modulus == BigNum(1)) return BigNum();
  size_t bits = exponent.bit_length();
  // Left-to-right square and multiply.
  for (size_t i = bits; i > 0; --i) {
    result = (result * result) % modulus;
    if (exponent.bit(i - 1)) result = (result * base) % modulus;
  }
  return result;
}

BigNum BigNum::mod_pow(const BigNum& exponent, const BigNum& modulus) const {
  assert(!modulus.is_zero());
  if (modulus.is_odd() && !(modulus == BigNum(1))) {
    MontgomeryContext ctx(modulus);
    if (ctx.valid()) return ctx.exp(*this, exponent);
  }
  return mod_pow_basic(exponent, modulus);
}

MontgomeryContext::MontgomeryContext(const BigNum& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus <= BigNum(1)) return;
  n_ = modulus.limbs_;
  // -n^{-1} mod 2^64 via Newton iteration: x_{k+1} = x_k * (2 - n * x_k)
  // doubles the number of correct low bits each step (n odd).
  uint64_t n0 = n_[0];
  uint64_t inv = n0;  // correct to 5 bits for odd n0 (classic seed: 3 bits,
                      // n0 itself gives >= 3; five iterations reach 64)
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n0_inv_ = ~inv + 1;  // negate mod 2^64
  const size_t k = n_.size();
  // R^2 mod n with one division at setup.
  BigNum r2 = (BigNum(1) << (2 * 64 * k)) % modulus;
  r2_ = r2.limbs_;
  r2_.resize(k, 0);
}

void MontgomeryContext::mul(Limbs& out, const Limbs& a, const Limbs& b,
                            Limbs& scratch) const {
  // CIOS (coarsely integrated operand scanning), base 2^64.
  const size_t k = n_.size();
  Limbs& t = scratch;
  t.assign(k + 2, 0);
  for (size_t i = 0; i < k; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < k; ++j) {
      U128 cur = static_cast<U128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    U128 top = static_cast<U128>(t[k]) + carry;
    t[k] = static_cast<uint64_t>(top);
    t[k + 1] = static_cast<uint64_t>(top >> 64);
    // t = (t + m * n) / 2^64 with m chosen so the low limb cancels.
    const uint64_t m = t[0] * n0_inv_;
    U128 cur = static_cast<U128>(m) * n_[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < k; ++j) {
      cur = static_cast<U128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    top = static_cast<U128>(t[k]) + carry;
    t[k - 1] = static_cast<uint64_t>(top);
    t[k] = t[k + 1] + static_cast<uint64_t>(top >> 64);
    t[k + 1] = 0;
  }
  // Conditional final subtraction: t (k+1 limbs) is < 2n.
  bool ge = t[k] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k; i > 0; --i) {
      if (t[i - 1] != n_[i - 1]) {
        ge = t[i - 1] > n_[i - 1];
        break;
      }
    }
  }
  out.assign(k, 0);
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      U128 sub = static_cast<U128>(n_[i]) + borrow;
      U128 lhs = t[i];
      if (lhs >= sub) {
        out[i] = static_cast<uint64_t>(lhs - sub);
        borrow = 0;
      } else {
        out[i] = static_cast<uint64_t>((static_cast<U128>(1) << 64) + lhs - sub);
        borrow = 1;
      }
    }
  } else {
    std::copy(t.begin(), t.begin() + static_cast<long>(k), out.begin());
  }
}

void MontgomeryContext::sqr(Limbs& out, const Limbs& a, Limbs& scratch) const {
  // Schoolbook squaring into a 2k-limb product — the cross terms a[i]*a[j]
  // (i < j) are computed once and doubled, so a squaring costs roughly half
  // the limb multiplies of the general CIOS pass — then one Montgomery
  // reduction. Squarings are ~80% of the multiplies in an exponentiation.
  const size_t k = n_.size();
  Limbs& wide = scratch;
  wide.assign(2 * k + 1, 0);
  for (size_t i = 0; i < k; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = i + 1; j < k; ++j) {
      U128 cur = static_cast<U128>(ai) * a[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + k;
    while (carry) {
      U128 cur = static_cast<U128>(wide[idx]) + carry;
      wide[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Double the cross terms, then add the diagonal a[i]^2 contributions.
  uint64_t prev = 0;
  for (size_t i = 0; i < 2 * k; ++i) {
    uint64_t cur = wide[i];
    wide[i] = (cur << 1) | (prev >> 63);
    prev = cur;
  }
  uint64_t carry = 0;
  for (size_t i = 0; i < k; ++i) {
    U128 sq = static_cast<U128>(a[i]) * a[i];
    U128 lo = static_cast<U128>(wide[2 * i]) + static_cast<uint64_t>(sq) + carry;
    wide[2 * i] = static_cast<uint64_t>(lo);
    U128 hi = static_cast<U128>(wide[2 * i + 1]) +
              static_cast<uint64_t>(sq >> 64) + static_cast<uint64_t>(lo >> 64);
    wide[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }
  reduce(out, wide);
}

void MontgomeryContext::reduce(Limbs& out, Limbs& wide) const {
  // Separated-operand Montgomery reduction of a 2k-limb product. `wide`
  // needs a spare top limb for carry propagation (callers allocate 2k+1).
  const size_t k = n_.size();
  for (size_t i = 0; i < k; ++i) {
    const uint64_t m = wide[i] * n0_inv_;
    uint64_t carry = 0;
    for (size_t j = 0; j < k; ++j) {
      U128 cur = static_cast<U128>(m) * n_[j] + wide[i + j] + carry;
      wide[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t idx = i + k;
    while (carry) {
      U128 cur = static_cast<U128>(wide[idx]) + carry;
      wide[idx] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++idx;
    }
  }
  // Result sits in wide[k .. 2k] and is < 2n; one conditional subtraction.
  bool ge = wide[2 * k] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k; i > 0; --i) {
      if (wide[k + i - 1] != n_[i - 1]) {
        ge = wide[k + i - 1] > n_[i - 1];
        break;
      }
    }
  }
  out.assign(k, 0);
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k; ++i) {
      U128 sub = static_cast<U128>(n_[i]) + borrow;
      U128 lhs = wide[k + i];
      if (lhs >= sub) {
        out[i] = static_cast<uint64_t>(lhs - sub);
        borrow = 0;
      } else {
        out[i] = static_cast<uint64_t>((static_cast<U128>(1) << 64) + lhs - sub);
        borrow = 1;
      }
    }
  } else {
    std::copy(wide.begin() + static_cast<long>(k),
              wide.begin() + static_cast<long>(2 * k), out.begin());
  }
}

FixedWindowSchedule FixedWindowSchedule::from_exponent(const BigNum& exponent) {
  FixedWindowSchedule s;
  s.bit_length = exponent.bit_length();
  if (s.bit_length == 0) return s;
  const size_t windows = (s.bit_length + 3) / 4;
  s.digits.resize(windows);
  for (size_t w = 0; w < windows; ++w) {
    unsigned digit = 0;
    for (size_t b = 0; b < 4; ++b) {
      size_t bit_index = (windows - 1 - w) * 4 + (3 - b);
      digit = (digit << 1) | (exponent.bit(bit_index) ? 1u : 0u);
    }
    s.digits[w] = static_cast<uint8_t>(digit);
  }
  return s;
}

BigNum MontgomeryContext::exp(const BigNum& base, const BigNum& exponent) const {
  assert(valid());
  const size_t bits = exponent.bit_length();
  if (bits == 0) return BigNum(1) % modulus_;
  // Small exponents (RSA's public e = 65537 on the verify path) do at most
  // ~2 multiplies beyond the squarings — building the 16-entry window table
  // (15 multiplies) would dominate. Plain left-to-right square-and-multiply.
  if (bits <= 24) {
    const size_t k = n_.size();
    BigNum reduced = base % modulus_;
    Limbs base_n = reduced.limbs_;
    base_n.resize(k, 0);
    Limbs scratch, mont_base, tmp;
    mul(mont_base, base_n, r2_, scratch);
    Limbs acc = mont_base;  // top exponent bit is 1
    for (size_t i = bits - 1; i > 0; --i) {
      sqr(tmp, acc, scratch);
      acc.swap(tmp);
      if (exponent.bit(i - 1)) {
        mul(tmp, acc, mont_base, scratch);
        acc.swap(tmp);
      }
    }
    Limbs one(k, 0);
    one[0] = 1;
    mul(tmp, acc, one, scratch);  // from_mont
    BigNum out;
    out.limbs_ = std::move(tmp);
    out.normalize();
    return out;
  }
  FixedWindowSchedule schedule = FixedWindowSchedule::from_exponent(exponent);
  return exp_windows(base, schedule.digits.data(), schedule.digits.size());
}

BigNum MontgomeryContext::exp(const BigNum& base,
                              const FixedWindowSchedule& schedule) const {
  assert(valid());
  if (schedule.empty()) return BigNum(1) % modulus_;
  return exp_windows(base, schedule.digits.data(), schedule.digits.size());
}

BigNum MontgomeryContext::exp_windows(const BigNum& base, const uint8_t* digits,
                                      size_t digit_count) const {
  const size_t k = n_.size();
  BigNum reduced = base % modulus_;
  Limbs base_n = reduced.limbs_;
  base_n.resize(k, 0);
  Limbs scratch;
  // Precompute the window table in Montgomery form: table[0] = R mod n
  // (Montgomery one), table[i] = base^i.
  Limbs one(k, 0);
  one[0] = 1;
  std::array<Limbs, 16> table;
  mul(table[0], one, r2_, scratch);      // to_mont(1)
  mul(table[1], base_n, r2_, scratch);   // to_mont(base)
  for (size_t i = 2; i < 16; ++i) mul(table[i], table[i - 1], table[1], scratch);

  Limbs acc = table[digits[0]];  // top window is nonzero by construction
  Limbs tmp;
  for (size_t d = 1; d < digit_count; ++d) {
    for (int s = 0; s < 4; ++s) {
      sqr(tmp, acc, scratch);
      acc.swap(tmp);
    }
    if (digits[d]) {
      mul(tmp, acc, table[digits[d]], scratch);
      acc.swap(tmp);
    }
  }
  mul(tmp, acc, one, scratch);  // from_mont
  BigNum out;
  out.limbs_ = std::move(tmp);
  out.normalize();
  return out;
}

BigNum MontgomeryContext::mul_mod(const BigNum& a, const BigNum& b) const {
  assert(valid());
  const size_t k = n_.size();
  BigNum ra = a % modulus_;
  BigNum rb = b % modulus_;
  Limbs la = ra.limbs_;
  la.resize(k, 0);
  Limbs lb = rb.limbs_;
  lb.resize(k, 0);
  Limbs scratch, mont_a, prod;
  mul(mont_a, la, r2_, scratch);   // a*R
  mul(prod, mont_a, lb, scratch);  // (a*R)*b*R^-1 = a*b mod n
  BigNum out;
  out.limbs_ = std::move(prod);
  out.normalize();
  return out;
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigNum BigNum::mod_inverse(const BigNum& modulus) const {
  // Extended Euclid on non-negative values, tracking coefficients with an
  // explicit sign since BigNum is unsigned.
  if (modulus.is_zero()) return BigNum();
  BigNum r0 = modulus, r1 = *this % modulus;
  BigNum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    DivMod qr = r0.divmod(r1);
    // t2 = t0 - q * t1, with sign handling.
    BigNum q_t1 = qr.quotient * t1;
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: t0 - q*t1 flips sign if q*t1 > t0 in magnitude.
      if (t0 >= q_t1) {
        t2 = t0 - q_t1;
        t2_neg = t0_neg;
      } else {
        t2 = q_t1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + q_t1;
      t2_neg = t0_neg;
    }
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
    r0 = std::move(r1);
    r1 = std::move(qr.remainder);
  }
  if (!(r0 == BigNum(1))) return BigNum();  // not invertible
  if (t0_neg) return modulus - (t0 % modulus);
  return t0 % modulus;
}

}  // namespace rootsim::crypto
