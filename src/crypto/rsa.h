// RSA with PKCS#1 v1.5 signatures, as used by the root zone's DNSSEC chain
// (RRSIG algorithm 8 = RSASHA256, algorithm 10 = RSASHA512, RFC 5702).
//
// Key generation uses our own Miller–Rabin over deterministic randomness, so
// a simulated root zone's keys — and therefore every signature and every
// validation failure in the Table 2 reproduction — are reproducible from the
// experiment seed. Default modulus is 1024 bits: cryptographically obsolete
// but structurally identical to the real root's 2048-bit keys, and an order
// of magnitude faster for the 75M-zone-transfer-scale simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.h"
#include "util/rng.h"

namespace rootsim::crypto {

/// Hash algorithm selector for PKCS#1 v1.5 DigestInfo.
enum class RsaHash : uint8_t { Sha256, Sha512 };

struct RsaPublicKey {
  BigNum n;  ///< modulus
  BigNum e;  ///< public exponent (65537)

  size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// DNSKEY RDATA public-key field per RFC 3110: exponent length, exponent,
  /// modulus.
  std::vector<uint8_t> to_dnskey_wire() const;
  static RsaPublicKey from_dnskey_wire(std::span<const uint8_t> wire);
};

struct RsaPrivateKey {
  RsaPublicKey public_key;
  BigNum d;  ///< private exponent
  BigNum p;
  BigNum q;
  /// CRT precomputation (RFC 8017 §3.2): d mod (p-1), d mod (q-1), q^-1 mod p.
  /// Filled by generate_rsa_key; rsa_sign derives them on the fly when a
  /// hand-built key leaves them zero. Signing via two half-size Montgomery
  /// exponentiations is ~4x the full-size path.
  BigNum dp;
  BigNum dq;
  BigNum qinv;
};

/// Generates a keypair with the given modulus size. Deterministic in `rng`.
RsaPrivateKey generate_rsa_key(util::Rng& rng, size_t modulus_bits = 1024);

/// Miller–Rabin primality test with `rounds` random bases.
bool is_probable_prime(const BigNum& candidate, util::Rng& rng, int rounds = 24);

/// Per-key precomputation for the CRT signing path: Montgomery contexts for
/// p, q (and n as fallback) plus fixed-window schedules for dp/dq. Everything
/// a signature needs except the message is derived once here, so a key that
/// signs a whole zone (the ZSK signs ~1500 RRsets per serial) pays the
/// R^2-mod-n divisions and exponent window scans exactly once. Immutable
/// after construction — safe to share across threads.
class RsaSignContext {
 public:
  explicit RsaSignContext(const RsaPrivateKey& key);

  const RsaPrivateKey& key() const { return key_; }

  /// PKCS#1 v1.5 signature over `message`; same bytes as rsa_sign().
  std::vector<uint8_t> sign(RsaHash hash,
                            std::span<const uint8_t> message) const;

 private:
  BigNum private_op(const BigNum& m) const;

  RsaPrivateKey key_;
  bool crt_ok_ = false;
  BigNum dp_, dq_, qinv_;
  MontgomeryContext ctx_p_, ctx_q_, ctx_n_;
  FixedWindowSchedule dp_schedule_, dq_schedule_, d_schedule_;
};

/// Per-key precomputation for the verify path. DNSSEC validation re-verifies
/// against the same two zone keys hundreds of times per probe; caching the
/// modulus Montgomery context (and letting the small public exponent take the
/// tableless square-and-multiply path) removes the per-call setup division.
/// Immutable after construction — safe to share across threads.
class RsaVerifyContext {
 public:
  explicit RsaVerifyContext(const RsaPublicKey& key);

  const RsaPublicKey& key() const { return key_; }

  /// Same result as rsa_verify(); false on any mismatch or malformed input.
  bool verify(RsaHash hash, std::span<const uint8_t> message,
              std::span<const uint8_t> signature) const;

 private:
  RsaPublicKey key_;
  size_t modulus_bytes_ = 0;
  MontgomeryContext ctx_;
};

/// PKCS#1 v1.5 signature over `message` (hashes internally). One-shot
/// convenience over RsaSignContext — hold a context to amortize the per-key
/// precomputation across many signatures.
std::vector<uint8_t> rsa_sign(const RsaPrivateKey& key, RsaHash hash,
                              std::span<const uint8_t> message);

/// Verifies a PKCS#1 v1.5 signature; false on any mismatch or malformed input.
/// One-shot convenience over RsaVerifyContext.
bool rsa_verify(const RsaPublicKey& key, RsaHash hash,
                std::span<const uint8_t> message,
                std::span<const uint8_t> signature);

}  // namespace rootsim::crypto
