// RSA with PKCS#1 v1.5 signatures, as used by the root zone's DNSSEC chain
// (RRSIG algorithm 8 = RSASHA256, algorithm 10 = RSASHA512, RFC 5702).
//
// Key generation uses our own Miller–Rabin over deterministic randomness, so
// a simulated root zone's keys — and therefore every signature and every
// validation failure in the Table 2 reproduction — are reproducible from the
// experiment seed. Default modulus is 1024 bits: cryptographically obsolete
// but structurally identical to the real root's 2048-bit keys, and an order
// of magnitude faster for the 75M-zone-transfer-scale simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.h"
#include "util/rng.h"

namespace rootsim::crypto {

/// Hash algorithm selector for PKCS#1 v1.5 DigestInfo.
enum class RsaHash : uint8_t { Sha256, Sha512 };

struct RsaPublicKey {
  BigNum n;  ///< modulus
  BigNum e;  ///< public exponent (65537)

  size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// DNSKEY RDATA public-key field per RFC 3110: exponent length, exponent,
  /// modulus.
  std::vector<uint8_t> to_dnskey_wire() const;
  static RsaPublicKey from_dnskey_wire(std::span<const uint8_t> wire);
};

struct RsaPrivateKey {
  RsaPublicKey public_key;
  BigNum d;  ///< private exponent
  BigNum p;
  BigNum q;
  /// CRT precomputation (RFC 8017 §3.2): d mod (p-1), d mod (q-1), q^-1 mod p.
  /// Filled by generate_rsa_key; rsa_sign derives them on the fly when a
  /// hand-built key leaves them zero. Signing via two half-size Montgomery
  /// exponentiations is ~4x the full-size path.
  BigNum dp;
  BigNum dq;
  BigNum qinv;
};

/// Generates a keypair with the given modulus size. Deterministic in `rng`.
RsaPrivateKey generate_rsa_key(util::Rng& rng, size_t modulus_bits = 1024);

/// Miller–Rabin primality test with `rounds` random bases.
bool is_probable_prime(const BigNum& candidate, util::Rng& rng, int rounds = 24);

/// PKCS#1 v1.5 signature over `message` (hashes internally).
std::vector<uint8_t> rsa_sign(const RsaPrivateKey& key, RsaHash hash,
                              std::span<const uint8_t> message);

/// Verifies a PKCS#1 v1.5 signature; false on any mismatch or malformed input.
bool rsa_verify(const RsaPublicKey& key, RsaHash hash,
                std::span<const uint8_t> message,
                std::span<const uint8_t> signature);

}  // namespace rootsim::crypto
