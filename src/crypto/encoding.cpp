#include "crypto/encoding.h"

namespace rootsim::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
constexpr char kBase32HexAlphabet[] = "0123456789ABCDEFGHIJKLMNOPQRSTUV";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

int base32hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'V') return c - 'A' + 10;
  if (c >= 'a' && c <= 'v') return c - 'a' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out += kHexDigits[b >> 4];
    out += kHexDigits[b & 0xF];
  }
  return out;
}

std::optional<std::vector<uint8_t>> from_hex(std::string_view text) {
  if (text.size() % 2 != 0) return std::nullopt;
  std::vector<uint8_t> out;
  out.reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    int hi = hex_value(text[i]);
    int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string to_base64(std::span<const uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    uint32_t triple = static_cast<uint32_t>(data[i]) << 16 |
                      static_cast<uint32_t>(data[i + 1]) << 8 | data[i + 2];
    out += kBase64Alphabet[triple >> 18 & 0x3F];
    out += kBase64Alphabet[triple >> 12 & 0x3F];
    out += kBase64Alphabet[triple >> 6 & 0x3F];
    out += kBase64Alphabet[triple & 0x3F];
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16;
    out += kBase64Alphabet[v >> 18 & 0x3F];
    out += kBase64Alphabet[v >> 12 & 0x3F];
    out += "==";
  } else if (rem == 2) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16 |
                 static_cast<uint32_t>(data[i + 1]) << 8;
    out += kBase64Alphabet[v >> 18 & 0x3F];
    out += kBase64Alphabet[v >> 12 & 0x3F];
    out += kBase64Alphabet[v >> 6 & 0x3F];
    out += '=';
  }
  return out;
}

std::optional<std::vector<uint8_t>> from_base64(std::string_view text) {
  std::vector<uint8_t> out;
  uint32_t acc = 0;
  int bits = 0;
  size_t pad = 0;
  for (char c : text) {
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) return std::nullopt;  // data after padding
    int v = base64_value(c);
    if (v < 0) return std::nullopt;
    acc = acc << 6 | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>(acc >> bits));
    }
  }
  if (pad > 2) return std::nullopt;
  return out;
}

std::string to_base32hex(std::span<const uint8_t> data) {
  std::string out;
  uint64_t acc = 0;
  int bits = 0;
  for (uint8_t b : data) {
    acc = acc << 8 | b;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out += kBase32HexAlphabet[acc >> bits & 0x1F];
    }
  }
  if (bits > 0) out += kBase32HexAlphabet[(acc << (5 - bits)) & 0x1F];
  return out;
}

std::optional<std::vector<uint8_t>> from_base32hex(std::string_view text) {
  std::vector<uint8_t> out;
  uint64_t acc = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=') continue;
    int v = base32hex_value(c);
    if (v < 0) return std::nullopt;
    acc = acc << 5 | static_cast<uint64_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>(acc >> bits));
    }
  }
  return out;
}

}  // namespace rootsim::crypto
