#include "crypto/rsa.h"

#include <algorithm>

#include "crypto/sha2.h"

namespace rootsim::crypto {

namespace {

// Small primes for fast trial division before Miller–Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283};

BigNum random_bits(util::Rng& rng, size_t bits) {
  size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> bytes(nbytes);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
  // Clear excess high bits, then force the top bit so the value has exactly
  // `bits` bits.
  size_t excess = nbytes * 8 - bits;
  bytes[0] &= static_cast<uint8_t>(0xFF >> excess);
  bytes[0] |= static_cast<uint8_t>(0x80 >> excess);
  return BigNum::from_bytes(bytes);
}

BigNum random_below(util::Rng& rng, const BigNum& bound) {
  size_t bits = bound.bit_length();
  while (true) {
    size_t nbytes = (bits + 7) / 8;
    std::vector<uint8_t> bytes(nbytes);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next());
    size_t excess = nbytes * 8 - bits;
    bytes[0] &= static_cast<uint8_t>(0xFF >> excess);
    BigNum v = BigNum::from_bytes(bytes);
    if (v < bound) return v;
  }
}

BigNum generate_prime(util::Rng& rng, size_t bits) {
  while (true) {
    BigNum candidate = random_bits(rng, bits);
    // Force odd.
    if (!candidate.is_odd()) candidate = candidate + BigNum(1);
    bool divisible = false;
    for (uint32_t p : kSmallPrimes) {
      if ((candidate % BigNum(p)).is_zero()) {
        divisible = true;
        break;
      }
    }
    if (divisible) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

// DER-encoded DigestInfo prefixes for PKCS#1 v1.5 (RFC 8017 §9.2 notes).
const std::vector<uint8_t>& digest_info_prefix(RsaHash hash) {
  static const std::vector<uint8_t> sha256_prefix = {
      0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
      0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};
  static const std::vector<uint8_t> sha512_prefix = {
      0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
      0x65, 0x03, 0x04, 0x02, 0x03, 0x05, 0x00, 0x04, 0x40};
  return hash == RsaHash::Sha256 ? sha256_prefix : sha512_prefix;
}

std::vector<uint8_t> hash_message(RsaHash hash, std::span<const uint8_t> message) {
  return hash == RsaHash::Sha256 ? sha256(message) : sha512(message);
}

// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo.
std::vector<uint8_t> emsa_encode(RsaHash hash, std::span<const uint8_t> message,
                                 size_t em_len) {
  std::vector<uint8_t> digest = hash_message(hash, message);
  const auto& prefix = digest_info_prefix(hash);
  size_t t_len = prefix.size() + digest.size();
  if (em_len < t_len + 11) return {};
  std::vector<uint8_t> em(em_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(prefix.begin(), prefix.end(), em.end() - static_cast<long>(t_len));
  std::copy(digest.begin(), digest.end(), em.end() - static_cast<long>(digest.size()));
  return em;
}

}  // namespace

bool is_probable_prime(const BigNum& candidate, util::Rng& rng, int rounds) {
  if (candidate < BigNum(2)) return false;
  if (candidate == BigNum(2) || candidate == BigNum(3)) return true;
  if (!candidate.is_odd()) return false;
  // candidate - 1 = d * 2^r with d odd.
  BigNum n_minus_1 = candidate - BigNum(1);
  BigNum d = n_minus_1;
  size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    BigNum a = random_below(rng, candidate - BigNum(3)) + BigNum(2);
    BigNum x = a.mod_pow(d, candidate);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (size_t i = 1; i < r; ++i) {
      x = (x * x) % candidate;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

RsaPrivateKey generate_rsa_key(util::Rng& rng, size_t modulus_bits) {
  const BigNum e(65537);
  while (true) {
    BigNum p = generate_prime(rng, modulus_bits / 2);
    BigNum q = generate_prime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    BigNum n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    if (!(BigNum::gcd(e, phi) == BigNum(1))) continue;
    BigNum d = e.mod_inverse(phi);
    if (d.is_zero()) continue;
    RsaPrivateKey key;
    key.public_key.n = std::move(n);
    key.public_key.e = e;
    key.dp = d % (p - BigNum(1));
    key.dq = d % (q - BigNum(1));
    key.qinv = q.mod_inverse(p);
    key.d = std::move(d);
    key.p = std::move(p);
    key.q = std::move(q);
    return key;
  }
}

std::vector<uint8_t> RsaPublicKey::to_dnskey_wire() const {
  // RFC 3110: one-byte exponent length (exponents < 256 bytes), exponent,
  // modulus.
  std::vector<uint8_t> exp_bytes = e.to_bytes();
  std::vector<uint8_t> mod_bytes = n.to_bytes();
  std::vector<uint8_t> out;
  out.reserve(1 + exp_bytes.size() + mod_bytes.size());
  out.push_back(static_cast<uint8_t>(exp_bytes.size()));
  out.insert(out.end(), exp_bytes.begin(), exp_bytes.end());
  out.insert(out.end(), mod_bytes.begin(), mod_bytes.end());
  return out;
}

RsaPublicKey RsaPublicKey::from_dnskey_wire(std::span<const uint8_t> wire) {
  RsaPublicKey key;
  if (wire.empty()) return key;
  size_t exp_len = wire[0];
  size_t offset = 1;
  if (exp_len == 0 && wire.size() >= 3) {
    // RFC 3110 long form: 0 followed by a two-byte length.
    exp_len = static_cast<size_t>(wire[1]) << 8 | wire[2];
    offset = 3;
  }
  if (offset + exp_len > wire.size()) return key;
  key.e = BigNum::from_bytes(wire.subspan(offset, exp_len));
  key.n = BigNum::from_bytes(wire.subspan(offset + exp_len));
  return key;
}

RsaSignContext::RsaSignContext(const RsaPrivateKey& key)
    : key_(key),
      ctx_p_(key.p),
      ctx_q_(key.q),
      ctx_n_(key.public_key.n) {
  // RSADP via CRT (RFC 8017 §5.1.2): two half-size exponentiations plus the
  // Garner recombination. A hand-built key may omit the factorization or the
  // CRT coefficients; derive what's missing, and fall back to the full-size
  // exponent if the pieces don't cohere.
  if (!key_.p.is_zero() && !key_.q.is_zero() &&
      key_.p * key_.q == key_.public_key.n && ctx_p_.valid() &&
      ctx_q_.valid()) {
    dp_ = key_.dp.is_zero() ? key_.d % (key_.p - BigNum(1)) : key_.dp;
    dq_ = key_.dq.is_zero() ? key_.d % (key_.q - BigNum(1)) : key_.dq;
    qinv_ = key_.qinv.is_zero() ? key_.q.mod_inverse(key_.p) : key_.qinv;
    if (!qinv_.is_zero()) {
      dp_schedule_ = FixedWindowSchedule::from_exponent(dp_);
      dq_schedule_ = FixedWindowSchedule::from_exponent(dq_);
      crt_ok_ = true;
    }
  }
  if (!crt_ok_ && ctx_n_.valid())
    d_schedule_ = FixedWindowSchedule::from_exponent(key_.d);
}

BigNum RsaSignContext::private_op(const BigNum& m) const {
  if (crt_ok_) {
    BigNum m1 = ctx_p_.exp(m, dp_schedule_);
    BigNum m2 = ctx_q_.exp(m, dq_schedule_);
    // h = qinv * (m1 - m2) mod p, keeping the subtraction non-negative.
    BigNum m2_mod_p = m2 % key_.p;
    BigNum diff = m1 >= m2_mod_p ? m1 - m2_mod_p : m1 + key_.p - m2_mod_p;
    BigNum h = ctx_p_.mul_mod(qinv_, diff);
    return m2 + h * key_.q;
  }
  if (ctx_n_.valid()) return ctx_n_.exp(m, d_schedule_);
  return m.mod_pow(key_.d, key_.public_key.n);
}

std::vector<uint8_t> RsaSignContext::sign(
    RsaHash hash, std::span<const uint8_t> message) const {
  size_t k = key_.public_key.modulus_bytes();
  std::vector<uint8_t> em = emsa_encode(hash, message, k);
  if (em.empty()) return {};
  BigNum m = BigNum::from_bytes(em);
  BigNum s = private_op(m);
  return s.to_bytes_padded(k);
}

RsaVerifyContext::RsaVerifyContext(const RsaPublicKey& key)
    : key_(key), modulus_bytes_(key.modulus_bytes()), ctx_(key.n) {}

bool RsaVerifyContext::verify(RsaHash hash, std::span<const uint8_t> message,
                              std::span<const uint8_t> signature) const {
  if (signature.size() != modulus_bytes_ || key_.n.is_zero()) return false;
  BigNum s = BigNum::from_bytes(signature);
  if (s >= key_.n) return false;
  BigNum m = ctx_.valid() ? ctx_.exp(s, key_.e) : s.mod_pow(key_.e, key_.n);
  std::vector<uint8_t> em = m.to_bytes_padded(modulus_bytes_);
  std::vector<uint8_t> expected = emsa_encode(hash, message, modulus_bytes_);
  return !expected.empty() && em == expected;
}

std::vector<uint8_t> rsa_sign(const RsaPrivateKey& key, RsaHash hash,
                              std::span<const uint8_t> message) {
  return RsaSignContext(key).sign(hash, message);
}

bool rsa_verify(const RsaPublicKey& key, RsaHash hash,
                std::span<const uint8_t> message,
                std::span<const uint8_t> signature) {
  return RsaVerifyContext(key).verify(hash, message, signature);
}

}  // namespace rootsim::crypto
