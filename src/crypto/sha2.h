// SHA-2 family (FIPS 180-4): SHA-256 for RRSIG algorithm 8 (RSASHA256) and
// DS digests, SHA-384 for ZONEMD scheme 1/hash 1 (RFC 8976) and the ZONEMD
// roll-out the paper studies, SHA-512 as the internal engine for SHA-384 and
// for RSASHA512 (algorithm 10). Implemented from the FIPS specification; test
// vectors from the NIST examples are in tests/crypto/sha2_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rootsim::crypto {

/// Incremental SHA-256. Also usable as a one-shot via the free functions below.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();
  void update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> finish();

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
};

/// Incremental SHA-512; SHA-384 below reuses this engine with different IVs.
class Sha512 {
 public:
  static constexpr size_t kDigestSize = 64;

  Sha512();
  void update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> finish();

 protected:
  explicit Sha512(const std::array<uint64_t, 8>& iv);

 private:
  void process_block(const uint8_t* block);

  std::array<uint64_t, 8> state_;
  std::array<uint8_t, 128> buffer_;
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
};

/// Incremental SHA-384 (SHA-512 truncated to 48 bytes with distinct IV).
class Sha384 : private Sha512 {
 public:
  static constexpr size_t kDigestSize = 48;

  Sha384();
  void update(std::span<const uint8_t> data) { Sha512::update(data); }
  std::array<uint8_t, kDigestSize> finish();
};

std::vector<uint8_t> sha256(std::span<const uint8_t> data);
std::vector<uint8_t> sha384(std::span<const uint8_t> data);
std::vector<uint8_t> sha512(std::span<const uint8_t> data);

/// Convenience overloads for string payloads (used by tests).
std::vector<uint8_t> sha256_str(const std::string& s);
std::vector<uint8_t> sha384_str(const std::string& s);
std::vector<uint8_t> sha512_str(const std::string& s);

}  // namespace rootsim::crypto
