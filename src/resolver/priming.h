// A recursive resolver's root-priming machinery (RFC 8109).
//
// This is the protocol-level mechanism behind the paper's adoption findings
// (§6): a resolver starts from a compiled-in hints file (possibly years out
// of date), sends a priming query (". NS") to one of the hinted addresses,
// and replaces its working root address list with the response. A resolver
// that primes learns b.root's new address within one cache lifetime; one
// that does not keeps hammering the hints-file address — for 13 years, in
// the j.root case (Wessels et al.).
//
// The model runs against the simulated root server system: real queries,
// real NS/A/AAAA parsing, real TTL-driven re-priming.
#pragma once

#include <optional>
#include <vector>

#include "measure/campaign.h"

namespace rootsim::resolver {

/// One root server entry in the hints file / priming cache.
struct RootHint {
  dns::Name name;
  std::optional<util::IpAddress> ipv4;
  std::optional<util::IpAddress> ipv6;
};

/// The compiled-in hints (RFC 8109 §2: resolvers ship a root hints file).
/// `as_of` controls whether the file predates the b.root renumbering.
std::vector<RootHint> builtin_hints(const rss::RootCatalog& catalog,
                                    util::UnixTime as_of);

struct PrimingConfig {
  /// Does this implementation prime at startup/expiry at all? (RFC 1035-era
  /// software often did not — the paper's "reluctant" clients.)
  bool primes = true;
  /// Re-prime when the cached NS set ages beyond this (the root NS TTL is
  /// 518400 s = 6 days; conservative implementations re-prime daily).
  int64_t refresh_interval_s = 518400;
  util::IpFamily preferred_family = util::IpFamily::V4;
};

/// The resolver-side priming cache.
class PrimingResolver {
 public:
  PrimingResolver(const measure::Campaign& campaign,
                  const measure::VantagePoint& vp,
                  std::vector<RootHint> hints, PrimingConfig config = {});

  /// Ensures the cache is fresh at `now` (sends a priming exchange if due).
  /// Returns true if a priming query was actually sent.
  bool ensure_primed(util::UnixTime now);

  /// The address this resolver would contact for `letter`.root right now.
  /// Falls back to hints when never primed.
  std::optional<util::IpAddress> address_of(char letter,
                                            util::IpFamily family) const;

  /// Where the *next* root query goes (round-robins over known addresses of
  /// the preferred family) — the traffic the passive collectors see.
  std::optional<util::IpAddress> next_target(util::UnixTime now);

  size_t priming_queries_sent() const { return priming_queries_sent_; }
  util::UnixTime last_primed() const { return last_primed_; }
  bool ever_primed() const { return last_primed_ != 0; }

 private:
  const measure::Campaign* campaign_;
  measure::VantagePoint vp_;
  std::vector<RootHint> working_set_;
  PrimingConfig config_;
  util::UnixTime last_primed_ = 0;
  size_t priming_queries_sent_ = 0;
  size_t round_robin_ = 0;
};

}  // namespace rootsim::resolver
