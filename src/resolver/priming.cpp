#include "resolver/priming.h"

#include "rss/endpoint.h"
#include "rss/server.h"

namespace rootsim::resolver {

std::vector<RootHint> builtin_hints(const rss::RootCatalog& catalog,
                                    util::UnixTime as_of) {
  std::vector<RootHint> hints;
  const bool pre_change = as_of < catalog.renumbering().zone_change_time;
  for (const auto& server : catalog.servers()) {
    RootHint hint;
    hint.name = *dns::Name::parse(server.name);
    if (server.letter == 'b' && pre_change) {
      hint.ipv4 = catalog.renumbering().old_ipv4;
      hint.ipv6 = catalog.renumbering().old_ipv6;
    } else {
      hint.ipv4 = server.ipv4;
      hint.ipv6 = server.ipv6;
    }
    hints.push_back(std::move(hint));
  }
  return hints;
}

PrimingResolver::PrimingResolver(const measure::Campaign& campaign,
                                 const measure::VantagePoint& vp,
                                 std::vector<RootHint> hints,
                                 PrimingConfig config)
    : campaign_(&campaign),
      vp_(vp),
      working_set_(std::move(hints)),
      config_(config) {}

bool PrimingResolver::ensure_primed(util::UnixTime now) {
  if (!config_.primes) return false;
  if (last_primed_ != 0 && now - last_primed_ < config_.refresh_interval_s)
    return false;
  // RFC 8109 §3: send ". NS" with RD=0 to one of the known addresses; we use
  // the first hint of the preferred family (real resolvers randomize).
  std::optional<util::IpAddress> target;
  for (const auto& hint : working_set_) {
    target = config_.preferred_family == util::IpFamily::V4 ? hint.ipv4
                                                            : hint.ipv6;
    if (target) break;
  }
  if (!target) return false;

  // Full wire exchange against the selected anycast instance: one transport
  // path serves the whole priming conversation (NS + follow-up lookups),
  // exactly one route selection like any other client conversation.
  int root_index = campaign_->catalog().index_of_address(*target);
  if (root_index < 0) return false;
  const netsim::Transport& transport = campaign_->transport();
  netsim::Transport::Path path = transport.open_path(
      vp_.view, static_cast<uint32_t>(root_index), target->family(),
      campaign_->schedule().round_at(now));
  const netsim::AnycastSite& site =
      campaign_->topology().sites[path.site_id()];
  rss::RootServerInstance instance(campaign_->authority(), campaign_->catalog(),
                                   static_cast<uint32_t>(root_index),
                                   site.identity);
  rss::InstanceEndpoint endpoint(instance);
  dns::Message query = dns::make_query(static_cast<uint16_t>(now & 0xFFFF),
                                       dns::Name(), dns::RRType::NS);
  netsim::ExchangeOutcome ns_outcome =
      transport.exchange(path, endpoint, query, now);
  ++priming_queries_sent_;
  if (!ns_outcome.delivered || ns_outcome.response.rcode != dns::Rcode::NoError)
    return false;

  // Rebuild the working set from the NS answer + follow-up A/AAAA lookups
  // (RFC 8109 §3.3: address records may come in additional or via queries).
  std::vector<RootHint> fresh;
  for (const auto& rr : ns_outcome.response.answers) {
    const auto* ns = std::get_if<dns::NsData>(&rr.rdata);
    if (!ns) continue;
    RootHint hint;
    hint.name = ns->nsdname;
    for (dns::RRType qtype : {dns::RRType::A, dns::RRType::AAAA}) {
      dns::Message addr_query = dns::make_query(1, ns->nsdname, qtype);
      netsim::ExchangeOutcome addr_outcome =
          transport.exchange(path, endpoint, addr_query, now);
      if (!addr_outcome.delivered) continue;
      for (const auto& answer : addr_outcome.response.answers) {
        if (const auto* a = std::get_if<dns::AData>(&answer.rdata))
          hint.ipv4 = a->address;
        if (const auto* aaaa = std::get_if<dns::AaaaData>(&answer.rdata))
          hint.ipv6 = aaaa->address;
      }
    }
    fresh.push_back(std::move(hint));
  }
  if (fresh.size() < 13) return false;  // incomplete priming: keep old set
  working_set_ = std::move(fresh);
  last_primed_ = now;
  return true;
}

std::optional<util::IpAddress> PrimingResolver::address_of(
    char letter, util::IpFamily family) const {
  dns::Name name =
      *dns::Name::parse(std::string(1, letter) + ".root-servers.net.");
  for (const auto& hint : working_set_)
    if (hint.name == name)
      return family == util::IpFamily::V4 ? hint.ipv4 : hint.ipv6;
  return std::nullopt;
}

std::optional<util::IpAddress> PrimingResolver::next_target(util::UnixTime now) {
  ensure_primed(now);
  if (working_set_.empty()) return std::nullopt;
  for (size_t i = 0; i < working_set_.size(); ++i) {
    const RootHint& hint = working_set_[round_robin_++ % working_set_.size()];
    auto address = config_.preferred_family == util::IpFamily::V4 ? hint.ipv4
                                                                  : hint.ipv6;
    if (address) return address;
  }
  return std::nullopt;
}

}  // namespace rootsim::resolver
