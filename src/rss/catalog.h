// The root server system catalog: the 13 deployments, their service
// addresses, deployment strategies (per-region global/local site counts from
// the paper's Table 4), and the b.root renumbering event.
//
// All numbers here are ground truth published by the operators via
// root-servers.org and transcribed by the paper; they parameterize the
// simulated topology. Where the paper's Table 1 (worldwide) and Table 4
// (per-region sums) disagree by a site or two (a: 33 vs 31, d-local: 186 vs
// 185, e-local: 147 vs 146), we add the remainder to a plausible region so
// worldwide totals match Table 1 exactly.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "netsim/topology.h"
#include "util/ip.h"
#include "util/timeutil.h"

namespace rootsim::rss {

inline constexpr size_t kRootCount = 13;

/// Static description of one root deployment.
struct RootServer {
  char letter = 'a';
  std::string name;          // "a.root-servers.net."
  util::IpAddress ipv4;
  util::IpAddress ipv6;
  netsim::DeploymentSpec deployment;
  /// True for operators that also run local (NO_EXPORT) sites.
  bool has_local_sites() const { return deployment.total_local() > 0; }
};

/// b.root changed its service addresses on 2023-11-27 (paper Fig. 2); both
/// old and new addresses stayed operational throughout the campaign.
struct BRootRenumbering {
  util::IpAddress old_ipv4;  // 199.9.14.201
  util::IpAddress old_ipv6;  // 2001:500:200::b
  util::IpAddress new_ipv4;  // 170.247.170.2
  util::IpAddress new_ipv6;  // 2801:1b8:10::b
  util::UnixTime zone_change_time;  // when the root zone switched the records
};

/// The full catalog.
class RootCatalog {
 public:
  RootCatalog();

  const std::array<RootServer, kRootCount>& servers() const { return servers_; }
  const RootServer& server(size_t index) const { return servers_[index]; }
  const RootServer& by_letter(char letter) const;
  const BRootRenumbering& renumbering() const { return renumbering_; }
  /// Sets when the zone flips b's records — scenario data (0 = no
  /// renumbering: the new addresses are authoritative for the whole run).
  /// The campaign forwards its zone config's broot_change here so the
  /// catalog's priming-visibility logic and the zone content agree.
  void set_renumbering_time(util::UnixTime t) {
    renumbering_.zone_change_time = t;
  }

  /// Index (0..12) of the deployment answering at `address`, considering both
  /// old and new b.root addresses; -1 if not a root service address.
  int index_of_address(const util::IpAddress& address) const;

  /// All 28 service addresses during the campaign (13 v4 + 13 v6 + old b pair
  /// once the new one is active; before the change, 26).
  std::vector<util::IpAddress> service_addresses(util::UnixTime at) const;

  netsim::DeploymentSpec deployment_spec(size_t index) const {
    return servers_[index].deployment;
  }
  std::vector<netsim::DeploymentSpec> all_deployment_specs() const;

 private:
  std::array<RootServer, kRootCount> servers_;
  BRootRenumbering renumbering_;
};

/// The paper's §6 routing quirks as detour rules (AS6939 for IPv6 in
/// NA/SA/Africa, AS12956 for IPv4 in SA, ...), calibrated to the reported
/// RTT shifts.
std::vector<netsim::DetourRule> paper_detour_rules();

}  // namespace rootsim::rss
