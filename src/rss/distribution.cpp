#include "rss/distribution.h"

namespace rootsim::rss {

std::string to_string(DistributionSource source) {
  switch (source) {
    case DistributionSource::Czds: return "ICANN CZDS";
    case DistributionSource::IanaWebsite: return "IANA website";
  }
  return "?";
}

DistributionChannel::DistributionChannel(const ZoneAuthority& authority,
                                         DistributionSource source,
                                         DistributionConfig config)
    : authority_(&authority), source_(source), config_(config) {}

PublishedZoneFile DistributionChannel::fetch(util::UnixTime t) const {
  PublishedZoneFile file;
  file.source = source_;
  util::UnixTime snapshot = t;
  if (source_ == DistributionSource::Czds) {
    // Last daily export at or before t.
    util::UnixTime today_export =
        util::day_start(t) + config_.czds_export_hour * 3600;
    snapshot = t >= today_export ? today_export
                                 : today_export - util::kSecondsPerDay;
    file.published_at = snapshot;
  } else {
    // IANA: last 15-minute refresh boundary.
    file.published_at = t - (t % config_.iana_interval_s);
    snapshot = file.published_at;
  }
  const dns::Zone& zone = authority_->zone_at(snapshot);
  file.serial = zone.serial();

  // Note on the paper's CZDS window (2023-09-21 .. 2023-12-07, "ZONEMD
  // records but do not validate"): with the roll-out staged as in Fig. 2 the
  // window needs no special corruption — those files carry the private-use
  // hash algorithm (not verifiable by any consumer), and the one-day export
  // lag explains validation starting 12-07 rather than 12-06. The config's
  // window bounds are retained for reporting.
  file.master_file = zone.to_master_file();
  return file;
}

std::vector<PublishedZoneFile> DistributionChannel::fetch_window(
    util::UnixTime start, util::UnixTime end, size_t max_files) const {
  std::vector<PublishedZoneFile> files;
  int64_t step = source_ == DistributionSource::Czds ? util::kSecondsPerDay
                                                     : config_.iana_interval_s;
  uint32_t last_serial = 0;
  bool first = true;
  for (util::UnixTime t = start; t < end && files.size() < max_files; t += step) {
    PublishedZoneFile file = fetch(t);
    // Skip duplicate snapshots (the IANA cadence outpaces zone edits).
    if (!first && file.serial == last_serial &&
        source_ == DistributionSource::Czds)
      continue;
    first = false;
    last_serial = file.serial;
    files.push_back(std::move(file));
  }
  return files;
}

}  // namespace rootsim::rss
