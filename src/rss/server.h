// A root server instance: the process answering DNS at one anycast site.
//
// Serves the root zone authoritatively (RFC 2870: root servers MUST answer
// root-zone queries), answers the CHAOS-class identity queries the
// measurement script uses to fingerprint instances (hostname.bind /
// id.server), and serves AXFR. A per-instance `staleness` override models
// the out-of-date zone copies the paper found at two d.root sites.
#pragma once

#include <optional>
#include <string>

#include "dns/message.h"
#include "obs/obs.h"
#include "rss/zone_authority.h"

namespace rootsim::rss {

/// Per-instance serving state.
struct InstanceBehavior {
  /// If set, the instance serves the zone as of this (past) time instead of
  /// now — a stale local zone file (paper Table 2: expired signatures at
  /// d.root Tokyo and Leeds).
  std::optional<util::UnixTime> frozen_at;
  /// Zone distribution delay: a new serial published at T reaches this
  /// instance at T + lag. Real root instances sync within seconds to
  /// minutes; the paper's Appendix E names per-second SOA polling of this
  /// exact behaviour as future work.
  int64_t propagation_lag_s = 0;
  /// If false, AXFR is refused (most real root instances do allow it; the
  /// measurement relies on that).
  bool allow_axfr = true;
};

/// Deterministic per-site propagation lag: most instances sync in under a
/// minute, a long tail takes many minutes (log-normal, seeded by site id).
int64_t site_propagation_lag_s(uint32_t site_id, uint64_t seed = 42);

/// Synthesizes the answer to one standard-class query from a zone snapshot:
/// authoritative data, referrals at delegation points, NODATA/NXDOMAIN with
/// SOA (+NSEC proofs when DO is set, RFC 4035 §3.1.3), RRSIGs attached when
/// the query set DO. Shared by the root server instances and by
/// localroot::LocalRootService (which answers from its own validated copy).
dns::Message answer_from_zone(const dns::Zone& zone, const dns::Message& query,
                              const dns::Question& question);

/// Applies RFC 1035 §4.2.1 / RFC 6891 size limits to a response bound for
/// UDP: if the encoded message exceeds `max_size`, returns a truncated
/// response (empty sections, TC=1) that tells the client to retry over TCP.
dns::Message apply_udp_truncation(const dns::Message& response, size_t max_size);

/// The requestor's advertised UDP payload size, read from the query's OPT
/// record (RFC 6891 §6.2.3): the first OPT in the additional section wins,
/// values below the classic 512-octet limit are raised to it, and a query
/// without EDNS gets exactly 512.
size_t advertised_udp_payload(const dns::Message& query);

/// Query-aware truncation: sizes the response to what *this* query's OPT
/// record advertised rather than a caller-chosen constant, further clamped
/// by `path_mtu_clamp` when nonzero (a path MTU below what EDNS0 negotiated
/// — but never below 512, which every path must carry).
dns::Message apply_udp_truncation(const dns::Message& response,
                                  const dns::Message& query,
                                  size_t path_mtu_clamp = 0);

/// Answers queries exactly as the instance at `site` would.
class RootServerInstance {
 public:
  /// `obs` (optional) counts queries served (by class), UDP truncations and
  /// AXFR outcomes under `rss.*`; the default null sink costs one branch.
  RootServerInstance(const ZoneAuthority& authority, const RootCatalog& catalog,
                     uint32_t root_index, std::string identity,
                     InstanceBehavior behavior = {}, obs::Obs obs = {});

  /// Handles one DNS query message at wall-clock time `now` (TCP semantics:
  /// no size limit).
  dns::Message handle_query(const dns::Message& query, util::UnixTime now) const;

  /// Same, over UDP: the response is truncated (TC=1) when it exceeds the
  /// client's advertised EDNS buffer (512 octets without EDNS), optionally
  /// clamped by a simulated path MTU (0 = no clamp).
  dns::Message handle_udp_query(const dns::Message& query, util::UnixTime now,
                                size_t path_mtu_clamp = 0) const;

  /// Serves a zone transfer: the AXFR record stream (RFC 5936). Empty if
  /// AXFR is disabled.
  std::vector<dns::ResourceRecord> handle_axfr(util::UnixTime now) const;

  /// Serves a zone transfer as the framed TCP byte stream, straight from the
  /// authority's per-serial cached wire image — the hot path the prober
  /// uses (no per-transfer record copy or re-encode). Empty span if AXFR is
  /// disabled.
  std::span<const uint8_t> handle_axfr_stream(util::UnixTime now) const;

  const std::string& identity() const { return identity_; }
  uint32_t root_index() const { return root_index_; }
  InstanceBehavior& behavior() { return behavior_; }

  /// The RSSAC002 collector this instance reports into (from the obs sink it
  /// was constructed with); nullptr when telemetry is disabled. The
  /// transport-side endpoint adapter feeds it per-exchange samples.
  obs::Rssac002Collector* telemetry_collector() const { return telemetry_; }

 private:
  util::UnixTime effective_time(util::UnixTime now) const;
  dns::Message answer_chaos(const dns::Message& query,
                            const dns::Question& question) const;
  dns::Message answer_standard(const dns::Message& query,
                               const dns::Question& question,
                               util::UnixTime now) const;

  const ZoneAuthority* authority_;
  const RootCatalog* catalog_;
  uint32_t root_index_;
  std::string identity_;
  InstanceBehavior behavior_;
  obs::Rssac002Collector* telemetry_ = nullptr;
  // Pre-resolved metric handles; null when no sink is attached.
  obs::Counter* served_in_ = nullptr;
  obs::Counter* served_ch_ = nullptr;
  obs::Counter* truncations_ = nullptr;
  obs::Counter* axfr_served_ = nullptr;
  obs::Counter* axfr_refused_ = nullptr;
};

}  // namespace rootsim::rss
