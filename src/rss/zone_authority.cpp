#include "rss/zone_authority.h"

#include <algorithm>

#include "dns/axfr.h"
#include "util/strings.h"

namespace rootsim::rss {

namespace {

// A deterministic synthetic TLD list: a handful of real, structurally
// important labels (including "ruhr", the TLD whose bitflipped RRSIG the
// paper shows), padded with generated ccTLD/gTLD-like labels.
std::vector<std::string> make_tlds(size_t count, util::Rng& rng) {
  std::vector<std::string> tlds = {
      "com",  "net",  "org",  "de",   "jp",   "br",   "uk",  "fr",  "nl",
      "ruhr", "info", "biz",  "io",   "dev",  "app",  "xyz", "za",  "au",
      "nz",   "cn",   "in",   "mx",   "ar",   "cl",   "ke",  "ng",  "se",
      "no",   "fi",   "pl",   "it",   "es",   "pt",   "ch",  "at",  "be",
  };
  const char* consonants = "bcdfghjklmnpqrstvwz";
  const char* vowels = "aeiou";
  while (tlds.size() < count) {
    // Generated labels: CVCVC / CVC patterns, 3-5 chars, no collisions.
    std::string label;
    size_t len = 3 + rng.uniform(3);
    for (size_t i = 0; i < len; ++i)
      label += (i % 2 == 0) ? consonants[rng.uniform(19)] : vowels[rng.uniform(5)];
    if (std::find(tlds.begin(), tlds.end(), label) == tlds.end())
      tlds.push_back(label);
  }
  tlds.resize(count);
  std::sort(tlds.begin(), tlds.end());
  return tlds;
}

}  // namespace

ZoneAuthority::ZoneAuthority(const RootCatalog& catalog, ZoneAuthorityConfig config,
                             obs::Obs obs)
    : catalog_(&catalog), config_(config) {
  if (obs.metrics) {
    zones_built_ = obs.counter_handle("rss.zones_built");
    sig_cache_hits_ = obs.counter_handle("rss.sig_cache.hits");
    sig_cache_misses_ = obs.counter_handle("rss.sig_cache.misses");
    zone_serial_ = &obs.metrics->gauge("rss.zone_serial");
  }
  if (config_.signature_cache_entries > 0)
    signature_cache_ = std::make_unique<dnssec::SignatureCache>(
        config_.signature_cache_entries);
  util::Rng rng(config_.seed);
  util::Rng tld_rng = rng.fork("tlds");
  tlds_ = make_tlds(config_.tld_count, tld_rng);
  util::Rng ksk_rng = rng.fork("ksk");
  util::Rng zsk_rng = rng.fork("zsk");
  ksk_ = dnssec::make_ksk(ksk_rng, config_.rsa_modulus_bits);
  zsk_ = dnssec::make_zsk(zsk_rng, config_.rsa_modulus_bits);
  if (config_.ksk_roll_at > 0) {
    util::Rng next_rng = rng.fork("ksk-next");
    ksk_next_ = dnssec::make_ksk(next_rng, config_.rsa_modulus_bits);
    has_ksk_next_ = true;
  }
}

uint32_t ZoneAuthority::serial_at(util::UnixTime t) const {
  util::CivilTime c = util::civil_from_unix(t);
  // Real root zone serials are YYYYMMDDNN with NN incrementing per edit;
  // we model two edits per day (NN = 00 before 12:00 UTC, 01 after).
  uint32_t date_part = static_cast<uint32_t>(c.year) * 10000u +
                       static_cast<uint32_t>(c.month) * 100u +
                       static_cast<uint32_t>(c.day);
  uint32_t edit = c.hour >= 12 ? 1 : 0;
  return date_part * 100u + edit;
}

dnssec::SigningPolicy::ZonemdMode ZoneAuthority::zonemd_mode_at(
    util::UnixTime t) const {
  if (config_.zonemd_sha384_start > 0 && t >= config_.zonemd_sha384_start)
    return dnssec::SigningPolicy::ZonemdMode::Sha384;
  if (config_.zonemd_private_start > 0 && t >= config_.zonemd_private_start)
    return dnssec::SigningPolicy::ZonemdMode::PrivateAlgorithm;
  return dnssec::SigningPolicy::ZonemdMode::None;
}

dns::Zone ZoneAuthority::build_unsigned_zone(util::UnixTime t) const {
  dns::Zone zone{dns::Name{}};
  const dns::Name root;

  dns::SoaData soa;
  soa.mname = *dns::Name::parse("a.root-servers.net.");
  soa.rname = *dns::Name::parse("nstld.verisign-grs.com.");
  soa.serial = serial_at(t);
  soa.refresh = 1800;
  soa.retry = 900;
  soa.expire = 604800;
  soa.minimum = 86400;
  zone.add({root, dns::RRType::SOA, dns::RRClass::IN, 86400, soa});

  const bool after_change =
      config_.broot_change == 0 || t >= config_.broot_change;
  const auto& renumbering = catalog_->renumbering();
  for (const auto& server : catalog_->servers()) {
    dns::Name name = *dns::Name::parse(server.name);
    zone.add({root, dns::RRType::NS, dns::RRClass::IN, 518400, dns::NsData{name}});
    util::IpAddress v4 = server.ipv4;
    util::IpAddress v6 = server.ipv6;
    if (server.letter == 'b' && !after_change) {
      v4 = renumbering.old_ipv4;
      v6 = renumbering.old_ipv6;
    }
    zone.add({name, dns::RRType::A, dns::RRClass::IN, 518400, dns::AData{v4}});
    zone.add({name, dns::RRType::AAAA, dns::RRClass::IN, 518400, dns::AaaaData{v6}});
  }

  // TLD delegations: 2 NS + DS + glue each.
  util::Rng zone_rng = util::Rng(config_.seed).fork("delegations");
  for (size_t i = 0; i < tlds_.size(); ++i) {
    const std::string& tld = tlds_[i];
    dns::Name owner = *dns::Name::parse(tld + ".");
    for (int ns = 1; ns <= 2; ++ns) {
      dns::Name ns_name =
          *dns::Name::parse(util::format("ns%d.%s.", ns, tld.c_str()));
      zone.add({owner, dns::RRType::NS, dns::RRClass::IN, 172800,
                dns::NsData{ns_name}});
      // Glue (deterministic per TLD, stable across serials).
      uint32_t v4_host = 0x0A000000u + static_cast<uint32_t>(i) * 256u +
                         static_cast<uint32_t>(ns);
      zone.add({ns_name, dns::RRType::A, dns::RRClass::IN, 172800,
                dns::AData{util::IpAddress::v4(v4_host)}});
      std::array<uint16_t, 8> hextets = {
          0x2001, 0x0db8, static_cast<uint16_t>(i), static_cast<uint16_t>(ns),
          0,      0,      0,                        0x0001};
      zone.add({ns_name, dns::RRType::AAAA, dns::RRClass::IN, 172800,
                dns::AaaaData{util::IpAddress::v6(hextets)}});
    }
    dns::DsData ds;
    ds.key_tag = static_cast<uint16_t>(zone_rng.uniform(65536));
    ds.algorithm = 8;
    ds.digest_type = 2;
    ds.digest.resize(32);
    for (auto& byte : ds.digest) byte = static_cast<uint8_t>(zone_rng.next());
    zone.add({owner, dns::RRType::DS, dns::RRClass::IN, 86400, ds});
  }
  return zone;
}

const dns::Zone& ZoneAuthority::zone_at(util::UnixTime t) const {
  uint32_t serial = serial_at(t);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(serial);
  if (it != cache_.end()) return *it->second;

  dns::Zone zone = build_unsigned_zone(t);
  dnssec::SigningPolicy policy;
  // Inception at the zone edit, expiration ~2 weeks later — like the root.
  policy.inception = util::day_start(t);
  policy.expiration =
      policy.inception + config_.rrsig_validity_days * util::kSecondsPerDay;
  policy.zonemd = zonemd_mode_at(t);

  // KSK rollover: keyed on the *serial edit* instant (00:00/12:00 UTC), not
  // the raw query time — the zone cache is keyed by serial, so two probes of
  // the same serial must always see the same signer no matter which probe
  // builds the cache entry first.
  const dnssec::SigningKey* active_ksk = &ksk_;
  if (has_ksk_next_) {
    const util::UnixTime edit_t = t - (t % (12 * 3600));
    const int64_t publish_overlap = 30 * util::kSecondsPerDay;
    if (edit_t >= config_.ksk_roll_at) {
      active_ksk = &ksk_next_;
      if (edit_t < config_.ksk_roll_at + publish_overlap)
        policy.extra_dnskeys.push_back(ksk_.to_dnskey());
    } else if (edit_t + publish_overlap >= config_.ksk_roll_at) {
      policy.extra_dnskeys.push_back(ksk_next_.to_dnskey());
    }
  }

  const uint64_t hits_before =
      signature_cache_ ? signature_cache_->hits() : 0;
  const uint64_t misses_before =
      signature_cache_ ? signature_cache_->misses() : 0;
  dnssec::sign_zone(zone, *active_ksk, zsk_, policy, signature_cache_.get());
  if (signature_cache_) {
    obs::inc(sig_cache_hits_, signature_cache_->hits() - hits_before);
    obs::inc(sig_cache_misses_, signature_cache_->misses() - misses_before);
  }

  auto [inserted, ok] = cache_.emplace(serial, std::make_unique<dns::Zone>(std::move(zone)));
  obs::inc(zones_built_);
  if (zone_serial_) zone_serial_->set_max(serial);
  return *inserted->second;
}

const std::vector<uint8_t>& ZoneAuthority::axfr_stream_at(util::UnixTime t) const {
  const dns::Zone& zone = zone_at(t);
  uint32_t serial = serial_at(t);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = axfr_cache_.find(serial);
  if (it != axfr_cache_.end()) return *it->second;
  dns::Question question{dns::Name(), dns::RRType::AXFR, dns::RRClass::IN};
  auto stream = std::make_unique<std::vector<uint8_t>>(
      dns::encode_axfr_stream(zone.axfr_records(), question));
  return *axfr_cache_.emplace(serial, std::move(stream)).first->second;
}

dnssec::TrustAnchors ZoneAuthority::trust_anchors() const {
  dnssec::TrustAnchors anchors;
  anchors.keys = {ksk_.to_dnskey(), zsk_.to_dnskey()};
  if (has_ksk_next_) anchors.keys.push_back(ksk_next_.to_dnskey());
  return anchors;
}

}  // namespace rootsim::rss
