// Adapter binding a RootServerInstance to netsim::Transport::Endpoint.
//
// The transport layer owns loss, retries and time; the instance owns DNS
// semantics. This shim is the only place client-side code meets the
// instance's handle_* methods — the prober, the local-root service and the
// priming resolver all talk wire bytes to a Transport and never see a
// server object.
#pragma once

#include "netsim/transport.h"
#include "rss/server.h"

namespace rootsim::rss {

class InstanceEndpoint final : public netsim::Transport::Endpoint {
 public:
  explicit InstanceEndpoint(const RootServerInstance& instance)
      : instance_(&instance) {}

  dns::Message udp_response(const dns::Message& query, util::UnixTime now,
                            size_t path_mtu_clamp) const override {
    return instance_->handle_udp_query(query, now, path_mtu_clamp);
  }
  dns::Message tcp_response(const dns::Message& query,
                            util::UnixTime now) const override {
    return instance_->handle_query(query, now);
  }
  std::span<const uint8_t> axfr_stream(util::UnixTime now) const override {
    return instance_->handle_axfr_stream(now);
  }

 private:
  const RootServerInstance* instance_;
};

}  // namespace rootsim::rss
