// Adapter binding a RootServerInstance to netsim::Transport::Endpoint.
//
// The transport layer owns loss, retries and time; the instance owns DNS
// semantics. This shim is the only place client-side code meets the
// instance's handle_* methods — the prober, the local-root service and the
// priming resolver all talk wire bytes to a Transport and never see a
// server object.
#pragma once

#include "netsim/transport.h"
#include "rss/server.h"

namespace rootsim::rss {

class InstanceEndpoint final : public netsim::Transport::Endpoint {
 public:
  explicit InstanceEndpoint(const RootServerInstance& instance)
      : instance_(&instance) {}

  dns::Message udp_response(const dns::Message& query, util::UnixTime now,
                            size_t path_mtu_clamp) const override {
    return instance_->handle_udp_query(query, now, path_mtu_clamp);
  }
  dns::Message tcp_response(const dns::Message& query,
                            util::UnixTime now) const override {
    return instance_->handle_query(query, now);
  }
  std::span<const uint8_t> axfr_stream(util::UnixTime now) const override {
    return instance_->handle_axfr_stream(now);
  }
  /// Translates the transport's exchange summary into an RSSAC002 sample
  /// under this instance's identity. Called by the transport only when an
  /// RSSAC002 collector rides the sink; the null-collector check covers a
  /// transport and instance built from different sinks.
  void note_exchange(const netsim::ExchangeTelemetry& telemetry) const override {
    obs::Rssac002Collector* collector = instance_->telemetry_collector();
    if (!collector) return;
    obs::Rssac002Sample sample;
    sample.instance = instance_->identity();
    sample.when = telemetry.when;
    sample.v6 = telemetry.v6;
    sample.udp_queries = telemetry.udp_queries;
    sample.tcp_queries = telemetry.tcp_queries;
    sample.delivered = telemetry.delivered;
    sample.final_tcp = telemetry.final_tcp;
    sample.rcode = telemetry.rcode;
    sample.truncated = telemetry.truncated;
    sample.axfr = telemetry.axfr;
    sample.query_bytes = telemetry.query_bytes;
    sample.response_bytes = telemetry.response_bytes;
    sample.source_id = telemetry.source_id;
    collector->record(sample);
  }

 private:
  const RootServerInstance* instance_;
};

}  // namespace rootsim::rss
