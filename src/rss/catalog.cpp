#include "rss/catalog.h"

#include <cassert>

namespace rootsim::rss {

namespace {

using util::Region;

netsim::DeploymentSpec spec(char letter,
                            std::array<int, util::kRegionCount> global_sites,
                            std::array<int, util::kRegionCount> local_sites) {
  netsim::DeploymentSpec s;
  s.letter = letter;
  s.global_sites = global_sites;
  s.local_sites = local_sites;
  // AS-local share per operator, set so that Table 4's per-root local
  // coverage emerges: j.root/a.root/m.root locals sit mostly at IXPs
  // (covered well), e/f/k locals mostly inside ISPs (covered poorly).
  switch (letter) {
    case 'a': s.as_local_fraction = 0.08; break;
    case 'd': s.as_local_fraction = 0.55; break;
    case 'e': s.as_local_fraction = 0.68; break;
    case 'f': s.as_local_fraction = 0.70; break;
    case 'j': s.as_local_fraction = 0.20; break;
    case 'k': s.as_local_fraction = 0.60; break;
    case 'm': s.as_local_fraction = 0.18; break;
    default: s.as_local_fraction = 0.5; break;
  }
  return s;
}

util::IpAddress ip(const char* text) {
  auto parsed = util::IpAddress::parse(text);
  assert(parsed.has_value());
  return *parsed;
}

}  // namespace

RootCatalog::RootCatalog() {
  // Region order: Africa, Asia, Europe, NorthAmerica, SouthAmerica, Oceania.
  // Site counts are the paper's Table 4 per-region values; the two a.root
  // sites missing from the regional breakdown are placed in North America and
  // the single missing d/e local site in Africa/Europe so worldwide totals
  // match Table 1 (a: 33/23, d: 23/186, e: 97/147, ...).
  servers_[0] = {'a', "a.root-servers.net.", ip("198.41.0.4"),
                 ip("2001:503:ba3e::2:30"),
                 spec('a', {0, 6, 12, 15, 0, 0}, {0, 2, 7, 14, 0, 0})};
  servers_[1] = {'b', "b.root-servers.net.", ip("170.247.170.2"),
                 ip("2801:1b8:10::b"),
                 spec('b', {0, 1, 1, 3, 1, 0}, {0, 0, 0, 0, 0, 0})};
  servers_[2] = {'c', "c.root-servers.net.", ip("192.33.4.12"),
                 ip("2001:500:2::c"),
                 spec('c', {0, 2, 4, 5, 1, 0}, {0, 0, 0, 0, 0, 0})};
  servers_[3] = {'d', "d.root-servers.net.", ip("199.7.91.13"),
                 ip("2001:500:2d::d"),
                 spec('d', {0, 2, 9, 12, 0, 0}, {43, 39, 39, 49, 12, 4})};
  servers_[4] = {'e', "e.root-servers.net.", ip("192.203.230.10"),
                 ip("2001:500:a8::e"),
                 spec('e', {0, 8, 33, 45, 5, 6}, {43, 34, 23, 30, 13, 4})};
  servers_[5] = {'f', "f.root-servers.net.", ip("192.5.5.241"),
                 ip("2001:500:2f::f"),
                 spec('f', {3, 13, 46, 54, 4, 9}, {25, 84, 26, 34, 40, 7})};
  servers_[6] = {'g', "g.root-servers.net.", ip("192.112.36.4"),
                 ip("2001:500:12::d0d"),
                 spec('g', {0, 1, 2, 3, 0, 0}, {0, 0, 0, 0, 0, 0})};
  servers_[7] = {'h', "h.root-servers.net.", ip("198.97.190.53"),
                 ip("2001:500:1::53"),
                 spec('h', {1, 3, 2, 4, 1, 1}, {0, 0, 0, 0, 0, 0})};
  servers_[8] = {'i', "i.root-servers.net.", ip("192.36.148.17"),
                 ip("2001:7fe::53"),
                 spec('i', {3, 24, 25, 16, 10, 3}, {0, 0, 0, 0, 0, 0})};
  servers_[9] = {'j', "j.root-servers.net.", ip("192.58.128.30"),
                 ip("2001:503:c27::2:30"),
                 spec('j', {0, 16, 18, 20, 4, 3}, {8, 11, 34, 24, 6, 2})};
  servers_[10] = {'k', "k.root-servers.net.", ip("193.0.14.129"),
                  ip("2001:7fd::1"),
                  spec('k', {2, 34, 44, 17, 6, 2}, {0, 9, 2, 0, 0, 0})};
  servers_[11] = {'l', "l.root-servers.net.", ip("199.7.83.42"),
                  ip("2001:500:9f::42"),
                  spec('l', {11, 25, 33, 22, 23, 18}, {0, 0, 0, 0, 0, 0})};
  servers_[12] = {'m', "m.root-servers.net.", ip("202.12.27.33"),
                  ip("2001:dc3::35"),
                  spec('m', {0, 5, 1, 1, 0, 0}, {0, 7, 0, 0, 0, 2})};

  renumbering_.old_ipv4 = ip("199.9.14.201");
  renumbering_.old_ipv6 = ip("2001:500:200::b");
  renumbering_.new_ipv4 = ip("170.247.170.2");
  renumbering_.new_ipv6 = ip("2801:1b8:10::b");
  // 0 = no renumbering event; a scenario with one sets the instant via
  // set_renumbering_time (the paper's 2023-11-27 lives in scenario/library).
  renumbering_.zone_change_time = 0;
}

const RootServer& RootCatalog::by_letter(char letter) const {
  assert(letter >= 'a' && letter <= 'm');
  return servers_[static_cast<size_t>(letter - 'a')];
}

int RootCatalog::index_of_address(const util::IpAddress& address) const {
  for (size_t i = 0; i < kRootCount; ++i)
    if (servers_[i].ipv4 == address || servers_[i].ipv6 == address)
      return static_cast<int>(i);
  if (address == renumbering_.old_ipv4 || address == renumbering_.old_ipv6)
    return 1;  // b.root
  return -1;
}

std::vector<util::IpAddress> RootCatalog::service_addresses(
    util::UnixTime at) const {
  std::vector<util::IpAddress> out;
  for (size_t i = 0; i < kRootCount; ++i) {
    if (i == 1) {
      // b.root: old addresses always answer during the campaign; the new
      // ones are operational (and probed) from well before the zone change.
      out.push_back(renumbering_.old_ipv4);
      out.push_back(renumbering_.old_ipv6);
      out.push_back(renumbering_.new_ipv4);
      out.push_back(renumbering_.new_ipv6);
      continue;
    }
    out.push_back(servers_[i].ipv4);
    out.push_back(servers_[i].ipv6);
  }
  (void)at;
  return out;
}

std::vector<netsim::DeploymentSpec> RootCatalog::all_deployment_specs() const {
  std::vector<netsim::DeploymentSpec> specs;
  specs.reserve(kRootCount);
  for (const auto& server : servers_) specs.push_back(server.deployment);
  return specs;
}

std::vector<netsim::DetourRule> paper_detour_rules() {
  using util::IpFamily;
  using util::Region;
  std::vector<netsim::DetourRule> rules;
  // §6: a.root in South America, IPv4: paths via AS10834/AS27651 + AS12956
  // give a 168.3ms mean (vs 140.0ms IPv6); a large VP share is affected.
  rules.push_back({0, Region::SouthAmerica, IpFamily::V4, 12956, 0.55, 185.0, 0.45, true});
  rules.push_back({0, Region::SouthAmerica, IpFamily::V6, 12956, 0.25, 150.0, 0.40, true});
  // §6: i.root South America IPv6 latency more than 100% above IPv4
  // (23.8ms vs 50.9ms) — AS6939 carries v6 out of continent.
  rules.push_back({8, Region::SouthAmerica, IpFamily::V6, 6939, 0.70, 55.0, 0.35, true});
  // §6: h.root South America 43.7ms v4 vs 53.7ms v6.
  rules.push_back({7, Region::SouthAmerica, IpFamily::V6, 6939, 0.60, 60.0, 0.35, true});
  // §6: i.root North America: AS6939 v6 paths are *fast* (23.4ms mean) and
  // frequent; v4 paths via the same AS are rare and slow (221.4ms).
  rules.push_back({8, Region::NorthAmerica, IpFamily::V6, 6939, 0.55, 23.4, 0.30, false});
  rules.push_back({8, Region::NorthAmerica, IpFamily::V4, 6939, 0.06, 221.4, 0.30, true});
  // §6: l.root Africa: most v6 paths traverse AS6939 to a remote replica
  // (mean 62.5ms) while v4 stays local.
  rules.push_back({11, Region::Africa, IpFamily::V6, 6939, 0.65, 62.5, 0.35, true});
  // §5: l.root South America IPv6 carried by AS6939 despite <10ms replicas;
  // paper reports 39% *lower* v6 than v4 RTT for l.root clients there.
  rules.push_back({11, Region::SouthAmerica, IpFamily::V4, 12956, 0.40, 45.0, 0.40, true});
  rules.push_back({11, Region::SouthAmerica, IpFamily::V6, 6939, 0.50, 25.0, 0.35, false});
  return rules;
}

}  // namespace rootsim::rss
