// Root zone distribution channels beyond AXFR (paper §7).
//
// The paper validates zone copies from three sources and finds them to
// behave differently during the ZONEMD roll-out:
//   * ICANN CZDS — daily zone files; files from 2023-09-21 to 2023-12-07
//     carried ZONEMD records that did NOT validate, later files do;
//   * IANA website — downloads every 15 minutes; first ZONEMD record on
//     2023-09-21T13:30Z, validating from 2023-12-06T20:30Z;
//   * AXFR from the servers themselves (see rss::RootServerInstance).
//
// The CZDS oddity is modelled explicitly: the channel re-exports the zone
// through a pipeline that re-orders/reformats records, and during the
// transition window it published files whose ZONEMD digest was computed
// before the final edit — so the digest mismatches even though DNSSEC
// validates. That is precisely what a consumer observed.
#pragma once

#include <string>

#include "rss/zone_authority.h"

namespace rootsim::rss {

enum class DistributionSource { Czds, IanaWebsite };

std::string to_string(DistributionSource source);

/// One published zone file from a channel.
struct PublishedZoneFile {
  DistributionSource source = DistributionSource::Czds;
  util::UnixTime published_at = 0;
  uint32_t serial = 0;
  /// Master-file content, exactly as a downloader would store it.
  std::string master_file;
};

struct DistributionConfig {
  /// CZDS exports once per day at 03:00 UTC.
  int czds_export_hour = 3;
  /// The CZDS transition window in which published ZONEMD digests do not
  /// validate (scenario data; the paper's window — files 2023-09-21 ..
  /// 2023-12-07 — is the `paper-2023` spec's). 0/0 = no broken window.
  util::UnixTime czds_broken_zonemd_start = 0;
  util::UnixTime czds_broken_zonemd_end = 0;
  /// IANA website refresh interval (the paper downloaded every 15 minutes).
  int64_t iana_interval_s = 15 * 60;
};

/// Produces the zone files a channel would publish.
class DistributionChannel {
 public:
  DistributionChannel(const ZoneAuthority& authority, DistributionSource source,
                      DistributionConfig config = {});

  /// The file available for download at time `t`.
  PublishedZoneFile fetch(util::UnixTime t) const;

  /// All files published in [start, end) at the channel's cadence.
  std::vector<PublishedZoneFile> fetch_window(util::UnixTime start,
                                              util::UnixTime end,
                                              size_t max_files = 100000) const;

  DistributionSource source() const { return source_; }

 private:
  const ZoneAuthority* authority_;
  DistributionSource source_;
  DistributionConfig config_;
};

}  // namespace rootsim::rss
