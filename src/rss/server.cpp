#include "rss/server.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace rootsim::rss {

RootServerInstance::RootServerInstance(const ZoneAuthority& authority,
                                       const RootCatalog& catalog,
                                       uint32_t root_index, std::string identity,
                                       InstanceBehavior behavior, obs::Obs obs)
    : authority_(&authority),
      catalog_(&catalog),
      root_index_(root_index),
      identity_(std::move(identity)),
      behavior_(behavior),
      telemetry_(obs.rssac002) {
  if (obs.metrics) {
    served_in_ = obs.counter_handle("rss.queries_served", {{"class", "in"}});
    served_ch_ = obs.counter_handle("rss.queries_served", {{"class", "ch"}});
    truncations_ = obs.counter_handle("rss.truncations");
    axfr_served_ = obs.counter_handle("rss.axfr", {{"result", "served"}});
    axfr_refused_ = obs.counter_handle("rss.axfr", {{"result", "refused"}});
  }
}

int64_t site_propagation_lag_s(uint32_t site_id, uint64_t seed) {
  util::Rng rng(seed ^ (static_cast<uint64_t>(site_id) * 0x9e3779b97f4a7c15ULL));
  // Log-normal around ~20 s with a tail into the tens of minutes.
  double lag = rng.lognormal(3.0, 1.2);
  return static_cast<int64_t>(std::min(lag, 3600.0));
}

util::UnixTime RootServerInstance::effective_time(util::UnixTime now) const {
  // A frozen instance keeps serving the zone from its freeze point: the
  // local copy never refreshes, so signatures eventually expire.
  if (behavior_.frozen_at) return *behavior_.frozen_at;
  // Otherwise the instance lags zone distribution by its sync delay.
  return now - behavior_.propagation_lag_s;
}

dns::Message RootServerInstance::answer_chaos(const dns::Message& query,
                                              const dns::Question& question) const {
  dns::Message response;
  response.id = query.id;
  response.qr = true;
  response.aa = true;
  response.questions = query.questions;
  std::string qname = util::to_lower(question.qname.to_string());
  std::string text;
  if (qname == "hostname.bind." || qname == "id.server.") {
    text = identity_;
  } else if (qname == "version.bind." || qname == "version.server.") {
    // Operators run different software; model a stable per-operator banner.
    static const char* kBanners[13] = {
        "NSD 4.8.0",    "BIND 9.18.19", "NSD 4.7.0",   "BIND 9.18.11",
        "NSD 4.6.1",    "BIND 9.18.19", "BIND 9.16.8", "NSD 4.8.0",
        "BIND 9.18.14", "Knot 3.3.2",   "NSD 4.8.0",   "Knot 3.2.9",
        "BIND 9.18.19"};
    text = kBanners[root_index_ % 13];
  } else {
    response.rcode = dns::Rcode::Refused;
    return response;
  }
  dns::ResourceRecord rr;
  rr.name = question.qname;
  rr.type = dns::RRType::TXT;
  rr.rclass = dns::RRClass::CH;
  rr.ttl = 0;
  rr.rdata = dns::TxtData{{text}};
  response.answers.push_back(std::move(rr));
  return response;
}

dns::Message RootServerInstance::answer_standard(const dns::Message& query,
                                                 const dns::Question& question,
                                                 util::UnixTime now) const {
  return answer_from_zone(authority_->zone_at(effective_time(now)), query,
                          question);
}

dns::Message answer_from_zone(const dns::Zone& zone, const dns::Message& query,
                              const dns::Question& question) {
  dns::Message response;
  response.id = query.id;
  response.qr = true;
  response.questions = query.questions;
  bool want_dnssec = query.dnssec_ok();
  if (want_dnssec) response.add_edns(1232, true);

  auto attach_rrsigs = [&](std::vector<dns::ResourceRecord>& section,
                           const dns::Name& owner, dns::RRType covered) {
    if (!want_dnssec) return;
    const dns::RRset* sigs = zone.find(owner, dns::RRType::RRSIG);
    if (!sigs) return;
    for (const auto& rdata : sigs->rdatas) {
      const auto* sig = std::get_if<dns::RrsigData>(&rdata);
      if (!sig || sig->type_covered != covered) continue;
      section.push_back({owner, dns::RRType::RRSIG, dns::RRClass::IN, sigs->ttl,
                         rdata});
    }
  };

  const dns::RRset* set = zone.find(question.qname, question.qtype);
  if (set) {
    bool delegation_data =
        !(question.qname == zone.origin()) && question.qtype == dns::RRType::NS;
    response.aa = !delegation_data;
    for (const auto& rr : set->to_records()) response.answers.push_back(rr);
    attach_rrsigs(response.answers, question.qname, question.qtype);
    return response;
  }

  // Name exists with other types, or delegation, or NXDOMAIN.
  if (zone.contains_name(question.qname)) {
    const dns::RRset* delegation = zone.find(question.qname, dns::RRType::NS);
    if (delegation && !(question.qname == zone.origin())) {
      // Referral.
      response.aa = false;
      for (const auto& rr : delegation->to_records())
        response.authority.push_back(rr);
      const dns::RRset* ds = zone.find(question.qname, dns::RRType::DS);
      if (ds)
        for (const auto& rr : ds->to_records()) response.authority.push_back(rr);
      attach_rrsigs(response.authority, question.qname, dns::RRType::DS);
      return response;
    }
    // NODATA: SOA in authority.
    response.aa = true;
    const dns::RRset* soa = zone.find(zone.origin(), dns::RRType::SOA);
    if (soa)
      for (const auto& rr : soa->to_records()) response.authority.push_back(rr);
    attach_rrsigs(response.authority, zone.origin(), dns::RRType::SOA);
    return response;
  }

  // Below a delegation? Refer to the closest enclosing delegation.
  dns::Name cut = question.qname;
  while (!cut.is_root()) {
    const dns::RRset* delegation = zone.find(cut, dns::RRType::NS);
    if (delegation) {
      response.aa = false;
      for (const auto& rr : delegation->to_records())
        response.authority.push_back(rr);
      return response;
    }
    cut = cut.parent();
  }

  response.aa = true;
  response.rcode = dns::Rcode::NxDomain;
  const dns::RRset* soa = zone.find(zone.origin(), dns::RRType::SOA);
  if (soa)
    for (const auto& rr : soa->to_records()) response.authority.push_back(rr);
  attach_rrsigs(response.authority, zone.origin(), dns::RRType::SOA);
  // RFC 4035 §3.1.3.2: prove the name's nonexistence with the NSEC record
  // covering the gap the qname falls into (signed zones only).
  if (want_dnssec) {
    const dns::RRset* covering = nullptr;
    for (const dns::RRset* set : zone.rrsets()) {
      if (set->type != dns::RRType::NSEC) continue;
      const auto* nsec = std::get_if<dns::NsecData>(&set->rdatas.front());
      if (!nsec) continue;
      // Covers qname iff owner < qname < next (with the last NSEC wrapping
      // around to the apex).
      bool after_owner = set->name.canonical_compare(question.qname) < 0;
      bool before_next = question.qname.canonical_compare(nsec->next) < 0 ||
                         nsec->next.is_root();
      if (after_owner && before_next) {
        covering = set;
        break;
      }
    }
    if (covering) {
      for (const auto& rr : covering->to_records())
        response.authority.push_back(rr);
      attach_rrsigs(response.authority, covering->name, dns::RRType::NSEC);
    }
  }
  return response;
}

dns::Message apply_udp_truncation(const dns::Message& response, size_t max_size) {
  // Size check via a reusable scratch writer: the common (fits-in-UDP) case
  // allocates nothing. thread_local keeps parallel audit workers apart.
  thread_local dns::WireWriter scratch;
  response.encode_into(scratch);
  if (scratch.size() <= max_size) return response;
  dns::Message truncated;
  truncated.id = response.id;
  truncated.qr = true;
  truncated.aa = response.aa;
  truncated.tc = true;
  truncated.rcode = response.rcode;
  truncated.questions = response.questions;
  // Keep the OPT record so the client sees our EDNS support.
  for (const auto& rr : response.additional)
    if (rr.type == dns::RRType::OPT) truncated.additional.push_back(rr);
  return truncated;
}

dns::Message RootServerInstance::handle_query(const dns::Message& query,
                                              util::UnixTime now) const {
  if (query.questions.empty()) {
    dns::Message response;
    response.id = query.id;
    response.qr = true;
    response.rcode = dns::Rcode::FormErr;
    obs::inc(served_in_);
    return response;
  }
  const dns::Question& question = query.questions.front();
  if (question.qclass == dns::RRClass::CH) {
    obs::inc(served_ch_);
    return answer_chaos(query, question);
  }
  obs::inc(served_in_);
  return answer_standard(query, question, now);
}

size_t advertised_udp_payload(const dns::Message& query) {
  // RFC 6891 §6.2.3: the OPT TTL-class field carries the requestor's buffer
  // size. A compliant query has exactly one OPT; on a malformed query with
  // several, the first one read off the wire governs (deterministic, and
  // what lenient real-world responders do). Sub-512 advertisements are
  // raised to the RFC 1035 baseline every implementation must accept.
  for (const auto& rr : query.additional)
    if (const auto* opt = std::get_if<dns::OptData>(&rr.rdata))
      return std::max<size_t>(512, opt->udp_payload_size);
  return 512;
}

dns::Message apply_udp_truncation(const dns::Message& response,
                                  const dns::Message& query,
                                  size_t path_mtu_clamp) {
  size_t max_size = advertised_udp_payload(query);
  // A path MTU below the negotiated buffer clamps it — but no lower than
  // the 512-octet floor every path is required to carry.
  if (path_mtu_clamp != 0)
    max_size = std::max<size_t>(512, std::min(max_size, path_mtu_clamp));
  return apply_udp_truncation(response, max_size);
}

dns::Message RootServerInstance::handle_udp_query(const dns::Message& query,
                                                  util::UnixTime now,
                                                  size_t path_mtu_clamp) const {
  dns::Message response = handle_query(query, now);
  // RFC 6891 §6.2.5: the responder honours the requestor's advertised
  // buffer; without EDNS the classic 512-octet limit applies.
  dns::Message udp_response =
      apply_udp_truncation(response, query, path_mtu_clamp);
  if (udp_response.tc && !response.tc) obs::inc(truncations_);
  return udp_response;
}

std::vector<dns::ResourceRecord> RootServerInstance::handle_axfr(
    util::UnixTime now) const {
  if (!behavior_.allow_axfr) {
    obs::inc(axfr_refused_);
    return {};
  }
  obs::inc(axfr_served_);
  return authority_->zone_at(effective_time(now)).axfr_records();
}

std::span<const uint8_t> RootServerInstance::handle_axfr_stream(
    util::UnixTime now) const {
  if (!behavior_.allow_axfr) {
    obs::inc(axfr_refused_);
    return {};
  }
  obs::inc(axfr_served_);
  return authority_->axfr_stream_at(effective_time(now));
}

}  // namespace rootsim::rss
