// Per-site outage model.
//
// The paper's intro frames the RSS through RSSAC037's stability/reliability
// goals; RSSAC047 operationalizes them as measurable service metrics
// (availability, response latency, publication latency). Real instances do
// go dark occasionally — maintenance, upstream failures — and §5 discusses
// what a clustered-site failure would do. This model gives every site a
// deterministic schedule of rare outage windows so those metrics (and the
// §5 what-if) can be computed rather than asserted.
#pragma once

#include <vector>

#include "util/timeutil.h"

namespace rootsim::rss {

struct OutageWindow {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
};

struct OutageModelConfig {
  uint64_t seed = 42;
  /// Expected outages per site over the campaign (rate of a Poisson count).
  double outages_per_site = 1.5;
  /// Log-normal outage duration parameters (median ~20 minutes).
  double duration_mu = 7.1;   // exp(7.1) ~ 1200 s
  double duration_sigma = 1.0;
};

/// Deterministic outage schedule for one site over [start, end).
std::vector<OutageWindow> site_outages(uint32_t site_id, util::UnixTime start,
                                       util::UnixTime end,
                                       const OutageModelConfig& config = {});

/// True if the site is serving at `t`.
bool site_available(uint32_t site_id, util::UnixTime t, util::UnixTime start,
                    util::UnixTime end, const OutageModelConfig& config = {});

}  // namespace rootsim::rss
