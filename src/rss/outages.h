// Per-site outage model.
//
// The paper's intro frames the RSS through RSSAC037's stability/reliability
// goals; RSSAC047 operationalizes them as measurable service metrics
// (availability, response latency, publication latency). Real instances do
// go dark occasionally — maintenance, upstream failures — and §5 discusses
// what a clustered-site failure would do. This model gives every site a
// deterministic schedule of rare outage windows so those metrics (and the
// §5 what-if) can be computed rather than asserted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/timeutil.h"

namespace rootsim::rss {

struct OutageWindow {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
};

/// A known, labelled outage window scripted onto one letter's deployment —
/// the vehicle for injecting paper-timeline events (and scenario-engine
/// events later) so the SLO monitor has something real to detect and the
/// label gives attribution something true to say. During [start, end) a
/// deterministic `site_fraction` of the letter's sites go dark.
struct ScriptedOutage {
  int root_index = -1;  ///< letter index 0..12, -1 = every letter
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  /// Fraction of sites dark during the window. Which sites is a pure hash
  /// of (site_id, label) so the set is stable across runs, disjoint events
  /// pick independent subsets, and the same label with a declining fraction
  /// darkens nested subsets (how scenario site-growth stages activate).
  double site_fraction = 1.0;
  /// Restrict the event to one util::Region (-1 = everywhere) — a regional
  /// buildout or a regionally clustered failure.
  int region = -1;
  /// Restrict the event to one netsim::SiteType (-1 = any): the §5 what-if
  /// of a DDoS that takes down a letter's *global* sites is site_type =
  /// Global, leaving locals answering their catchments.
  int site_type = -1;
  std::string label;
};

/// True if some scripted outage keeps `site_id` (serving letter
/// `root_index`) dark at time `t`. `site_region` / `site_type` are the
/// site's util::Region and netsim::SiteType as ints when the caller knows
/// them; -1 makes region/type-scoped outages skip the site (scoped events
/// need the topology to say what they hit).
bool scripted_site_dark(uint32_t site_id, int root_index, util::UnixTime t,
                        const std::vector<ScriptedOutage>& outages,
                        int site_region = -1, int site_type = -1);

struct OutageModelConfig {
  uint64_t seed = 42;
  /// Expected outages per site over the campaign (rate of a Poisson count).
  double outages_per_site = 1.5;
  /// Log-normal outage duration parameters (median ~20 minutes).
  double duration_mu = 7.1;   // exp(7.1) ~ 1200 s
  double duration_sigma = 1.0;
};

/// Deterministic outage schedule for one site over [start, end).
std::vector<OutageWindow> site_outages(uint32_t site_id, util::UnixTime start,
                                       util::UnixTime end,
                                       const OutageModelConfig& config = {});

/// True if the site is serving at `t`.
bool site_available(uint32_t site_id, util::UnixTime t, util::UnixTime start,
                    util::UnixTime end, const OutageModelConfig& config = {});

/// site_available() with scripted outages layered on top: the site serves at
/// `t` only if neither the Poisson model nor any scripted window darkens it.
bool site_available_at(uint32_t site_id, int root_index, util::UnixTime t,
                       util::UnixTime start, util::UnixTime end,
                       const OutageModelConfig& config,
                       const std::vector<ScriptedOutage>& scripted,
                       int site_region = -1, int site_type = -1);

}  // namespace rootsim::rss
