// Per-site outage model.
//
// The paper's intro frames the RSS through RSSAC037's stability/reliability
// goals; RSSAC047 operationalizes them as measurable service metrics
// (availability, response latency, publication latency). Real instances do
// go dark occasionally — maintenance, upstream failures — and §5 discusses
// what a clustered-site failure would do. This model gives every site a
// deterministic schedule of rare outage windows so those metrics (and the
// §5 what-if) can be computed rather than asserted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/timeutil.h"

namespace rootsim::rss {

struct OutageWindow {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
};

/// A known, labelled outage window scripted onto one letter's deployment —
/// the vehicle for injecting paper-timeline events (and scenario-engine
/// events later) so the SLO monitor has something real to detect and the
/// label gives attribution something true to say. During [start, end) a
/// deterministic `site_fraction` of the letter's sites go dark.
struct ScriptedOutage {
  int root_index = -1;  ///< letter index 0..12, -1 = every letter
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  /// Fraction of sites dark during the window. Which sites is a pure hash
  /// of (site_id, label) so the set is stable across runs and disjoint
  /// events pick independent subsets.
  double site_fraction = 1.0;
  std::string label;
};

/// True if some scripted outage keeps `site_id` (serving letter
/// `root_index`) dark at time `t`.
bool scripted_site_dark(uint32_t site_id, int root_index, util::UnixTime t,
                        const std::vector<ScriptedOutage>& outages);

/// The paper timeline's service-affecting event, as a scripted outage: the
/// b.root renumbering of 2023-11-27. The catalog keeps both address sets
/// answering (the paper found no probe-visible breakage), but the transition
/// window itself — traffic draining off 199.9.14.201/2001:500:200::b while
/// caches and route announcements converged — is exactly what an operator's
/// SLO monitor would have watched nervously. Modelled as a 36 h window with
/// a majority of b's sites degraded, which drives the letter's availability
/// below the RSSAC047 99.96 % line without silencing it.
std::vector<ScriptedOutage> paper_event_outages();

struct OutageModelConfig {
  uint64_t seed = 42;
  /// Expected outages per site over the campaign (rate of a Poisson count).
  double outages_per_site = 1.5;
  /// Log-normal outage duration parameters (median ~20 minutes).
  double duration_mu = 7.1;   // exp(7.1) ~ 1200 s
  double duration_sigma = 1.0;
};

/// Deterministic outage schedule for one site over [start, end).
std::vector<OutageWindow> site_outages(uint32_t site_id, util::UnixTime start,
                                       util::UnixTime end,
                                       const OutageModelConfig& config = {});

/// True if the site is serving at `t`.
bool site_available(uint32_t site_id, util::UnixTime t, util::UnixTime start,
                    util::UnixTime end, const OutageModelConfig& config = {});

/// site_available() with scripted outages layered on top: the site serves at
/// `t` only if neither the Poisson model nor any scripted window darkens it.
bool site_available_at(uint32_t site_id, int root_index, util::UnixTime t,
                       util::UnixTime start, util::UnixTime end,
                       const OutageModelConfig& config,
                       const std::vector<ScriptedOutage>& scripted);

}  // namespace rootsim::rss
