#include "rss/outages.h"

#include <algorithm>

#include "util/rng.h"

namespace rootsim::rss {

std::vector<OutageWindow> site_outages(uint32_t site_id, util::UnixTime start,
                                       util::UnixTime end,
                                       const OutageModelConfig& config) {
  util::Rng rng(config.seed ^
                (static_cast<uint64_t>(site_id) * 0xbf58476d1ce4e5b9ULL));
  std::vector<OutageWindow> windows;
  if (end <= start) return windows;
  uint64_t count = rng.poisson(config.outages_per_site);
  int64_t span = end - start;
  for (uint64_t i = 0; i < count; ++i) {
    OutageWindow window;
    window.start = start + static_cast<int64_t>(
                               rng.uniform(static_cast<uint64_t>(span)));
    int64_t duration = static_cast<int64_t>(
        std::min(rng.lognormal(config.duration_mu, config.duration_sigma),
                 6.0 * 3600));
    window.end = std::min(end, window.start + duration);
    windows.push_back(window);
  }
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start < b.start;
            });
  return windows;
}

bool site_available(uint32_t site_id, util::UnixTime t, util::UnixTime start,
                    util::UnixTime end, const OutageModelConfig& config) {
  for (const OutageWindow& window : site_outages(site_id, start, end, config))
    if (t >= window.start && t < window.end) return false;
  return true;
}

}  // namespace rootsim::rss
