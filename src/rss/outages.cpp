#include "rss/outages.h"

#include <algorithm>

#include "util/rng.h"

namespace rootsim::rss {

std::vector<OutageWindow> site_outages(uint32_t site_id, util::UnixTime start,
                                       util::UnixTime end,
                                       const OutageModelConfig& config) {
  util::Rng rng(config.seed ^
                (static_cast<uint64_t>(site_id) * 0xbf58476d1ce4e5b9ULL));
  std::vector<OutageWindow> windows;
  if (end <= start) return windows;
  uint64_t count = rng.poisson(config.outages_per_site);
  int64_t span = end - start;
  for (uint64_t i = 0; i < count; ++i) {
    OutageWindow window;
    window.start = start + static_cast<int64_t>(
                               rng.uniform(static_cast<uint64_t>(span)));
    int64_t duration = static_cast<int64_t>(
        std::min(rng.lognormal(config.duration_mu, config.duration_sigma),
                 6.0 * 3600));
    window.end = std::min(end, window.start + duration);
    windows.push_back(window);
  }
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start < b.start;
            });
  return windows;
}

bool site_available(uint32_t site_id, util::UnixTime t, util::UnixTime start,
                    util::UnixTime end, const OutageModelConfig& config) {
  for (const OutageWindow& window : site_outages(site_id, start, end, config))
    if (t >= window.start && t < window.end) return false;
  return true;
}

namespace {

// (site_id, label) -> [0, 1): which sites an event darkens must be a pure
// hash, not an RNG draw, so the subset is identical no matter who asks.
double site_event_fraction(uint32_t site_id, const std::string& label) {
  uint64_t state = 0x5eed5105u ^ site_id;
  for (char c : label) {
    state ^= static_cast<uint8_t>(c);
    util::splitmix64(state);
  }
  uint64_t mixed = state;
  return static_cast<double>(util::splitmix64(mixed) >> 11) * 0x1.0p-53;
}

}  // namespace

bool scripted_site_dark(uint32_t site_id, int root_index, util::UnixTime t,
                        const std::vector<ScriptedOutage>& outages,
                        int site_region, int site_type) {
  for (const ScriptedOutage& outage : outages) {
    if (outage.root_index >= 0 && outage.root_index != root_index) continue;
    if (t < outage.start || t >= outage.end) continue;
    if (outage.region >= 0 && outage.region != site_region) continue;
    if (outage.site_type >= 0 && outage.site_type != site_type) continue;
    if (site_event_fraction(site_id, outage.label) < outage.site_fraction)
      return true;
  }
  return false;
}

bool site_available_at(uint32_t site_id, int root_index, util::UnixTime t,
                       util::UnixTime start, util::UnixTime end,
                       const OutageModelConfig& config,
                       const std::vector<ScriptedOutage>& scripted,
                       int site_region, int site_type) {
  if (scripted_site_dark(site_id, root_index, t, scripted, site_region,
                         site_type))
    return false;
  return site_available(site_id, t, start, end, config);
}

}  // namespace rootsim::rss
