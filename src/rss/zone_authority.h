// The simulated root zone maintainer.
//
// Produces the root zone as it evolves over a campaign: serials advance
// twice per day (real root zone practice) and the config's phase instants
// drive the content changes — ZONEMD appearing with a private-use algorithm
// then switching to SHA-384, b.root's A/AAAA renumbering, a KSK rollover.
// The paper's Fig. 2 timeline (2023-09-13 / 2023-11-27 / 2023-12-06) is the
// `paper-2023` scenario's ZoneTimeline, not code in this module.
//
// The zone content is synthetic but structurally faithful: apex
// SOA/NS/DNSKEY/NSEC/ZONEMD + RRSIGs, per-TLD delegations with DS and glue,
// signed with our own RSA keys. The TLD set is a deterministic sample (a few
// hundred entries including the .ruhr TLD whose bitflip the paper shows in
// Fig. 10).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dns/zone.h"
#include "dnssec/signer.h"
#include "dnssec/validator.h"
#include "obs/obs.h"
#include "rss/catalog.h"
#include "util/timeutil.h"

namespace rootsim::rss {

struct ZoneAuthorityConfig {
  uint64_t seed = 42;
  size_t tld_count = 120;       // delegations in the synthetic root zone
  size_t rsa_modulus_bits = 768;  // small-but-real keys keep signing fast
  /// Phase instants are scenario data (0 = the phase never happens). The
  /// paper's 2023 dates — ZONEMD private algorithm 09-13, SHA-384 12-06,
  /// b.root renumbering 11-27 — come from the `paper-2023` spec in
  /// scenario/library.cpp via scenario::apply().
  util::UnixTime zonemd_private_start = 0;
  util::UnixTime zonemd_sha384_start = 0;
  /// When b.root's A/AAAA flip to the new addresses; 0 = the zone carries
  /// the new addresses for the whole campaign (no renumbering event).
  util::UnixTime broot_change = 0;
  /// KSK rollover instant (0 = no roll). The successor key is pre-published
  /// in the DNSKEY RRset for 30 days before the roll, signs the zone from
  /// the first serial edit at/after it, and the old key stays published for
  /// 30 days after — the RFC 5011-ish dance of the 2018 roll.
  util::UnixTime ksk_roll_at = 0;
  /// RRSIG validity window length (the root uses ~2 weeks).
  int64_t rrsig_validity_days = 14;
  /// Signature memo bound (entries). The audit workloads sign a few thousand
  /// distinct payloads; keep the bound far above that so hit/miss totals stay
  /// scheduling-independent (the cache never resets mid-campaign). 0 disables
  /// the cache entirely.
  size_t signature_cache_entries = 1 << 16;
};

/// Builds signed root zones for any instant of the campaign.
class ZoneAuthority {
 public:
  /// `obs` (optional) counts zones built (`rss.zones_built`) and tracks the
  /// highest serial published (`rss.zone_serial` gauge).
  explicit ZoneAuthority(const RootCatalog& catalog,
                         ZoneAuthorityConfig config = {}, obs::Obs obs = {});

  /// The serial in force at time `t` (YYYYMMDDNN, two increments per day).
  uint32_t serial_at(util::UnixTime t) const;

  /// The signed zone as published at time `t`. Zones are generated lazily
  /// and cached per serial; the cache is thread-safe (the parallel audit
  /// hits it from every worker).
  const dns::Zone& zone_at(util::UnixTime t) const;

  /// The framed AXFR TCP stream (RFC 5936) of the zone at `t`, built once
  /// per serial and cached. A transfer is then a read of this buffer instead
  /// of a fresh ~450-record encode; fault injection decodes and mutates its
  /// own copy, never the cached image.
  const std::vector<uint8_t>& axfr_stream_at(util::UnixTime t) const;

  /// Trust anchors (the KSK+ZSK DNSKEYs, plus the successor KSK when a
  /// rollover is configured) valid for every serial.
  dnssec::TrustAnchors trust_anchors() const;

  const ZoneAuthorityConfig& config() const { return config_; }
  const std::vector<std::string>& tlds() const { return tlds_; }

  /// The cross-serial signature memo (null when disabled by config).
  /// Counters `rss.sig_cache.hits` / `rss.sig_cache.misses` mirror it.
  const dnssec::SignatureCache* signature_cache() const {
    return signature_cache_.get();
  }

  /// The ZONEMD mode in force at `t` (None / PrivateAlgorithm / Sha384).
  dnssec::SigningPolicy::ZonemdMode zonemd_mode_at(util::UnixTime t) const;

 private:
  dns::Zone build_unsigned_zone(util::UnixTime t) const;

  const RootCatalog* catalog_;
  ZoneAuthorityConfig config_;
  std::vector<std::string> tlds_;
  dnssec::SigningKey ksk_;
  dnssec::SigningKey zsk_;
  /// Successor KSK; generated (and its RNG stream forked) only when
  /// config.ksk_roll_at > 0 so roll-free configs keep the seed's streams.
  dnssec::SigningKey ksk_next_;
  bool has_ksk_next_ = false;
  obs::Counter* zones_built_ = nullptr;
  obs::Counter* sig_cache_hits_ = nullptr;
  obs::Counter* sig_cache_misses_ = nullptr;
  obs::Gauge* zone_serial_ = nullptr;
  std::unique_ptr<dnssec::SignatureCache> signature_cache_;
  // Zone build + insert happens under the lock: std::map nodes are stable,
  // so returned references stay valid, and `rss.zones_built` counts exactly
  // one build per serial regardless of worker count.
  mutable std::mutex cache_mu_;
  mutable std::map<uint32_t, std::unique_ptr<dns::Zone>> cache_;
  mutable std::map<uint32_t, std::unique_ptr<std::vector<uint8_t>>> axfr_cache_;
};

}  // namespace rootsim::rss
