#include "scenario/apply.h"

#include <algorithm>

#include "scenario/library.h"

namespace rootsim::scenario {

namespace {

measure::FaultEvent to_fault_event(const FaultSpec& fault) {
  measure::FaultEvent event;
  switch (fault.kind) {
    case FaultSpec::Kind::ClockSkew:
      event.kind = measure::FaultEvent::Kind::ClockSkew;
      break;
    case FaultSpec::Kind::Bitflip:
      event.kind = measure::FaultEvent::Kind::Bitflip;
      break;
    case FaultSpec::Kind::StaleServer:
      event.kind = measure::FaultEvent::Kind::StaleServer;
      break;
  }
  event.vp_id = fault.vp_id;
  event.root_index = fault.root;
  event.family = fault.family == 1 ? util::IpFamily::V6 : util::IpFamily::V4;
  event.old_b_address = fault.old_b_address;
  event.when = fault.when;
  event.clock_offset_s = fault.clock_offset_s;
  if (fault.server_frozen_at > 0)
    event.server_frozen_at = fault.server_frozen_at;
  event.table2_vp_id = fault.table2_vp_id;
  return event;
}

rss::ScriptedOutage make_outage(const Event& event, util::UnixTime start,
                                util::UnixTime end, double fraction) {
  rss::ScriptedOutage outage;
  outage.root_index = event.letter;
  outage.start = start;
  outage.end = end;
  outage.site_fraction = fraction;
  outage.region = event.region;
  outage.label = event.label;
  return outage;
}

netsim::ConditionWindow make_condition_window(const Event& event) {
  netsim::ConditionWindow window;
  window.start = event.window.start;
  window.end = event.window.end;
  window.root_index = event.letter;
  window.add.loss = event.loss;
  window.add.extra_rtt_ms = event.extra_rtt_ms;
  window.add.jitter_ms = event.jitter_ms;
  return window;
}

obs::CauseHint make_hint(const Event& event) {
  obs::CauseHint hint;
  hint.start = event.window.start;
  hint.end = event.window.end;
  hint.root = event.letter;
  hint.label = event.label;
  hint.weight = 2.0;
  return hint;
}

}  // namespace

Applied apply(const ScenarioSpec& spec) {
  Applied applied;
  measure::CampaignConfig& campaign = applied.campaign;
  campaign.seed = spec.seed;
  campaign.scenario_name = spec.name;

  campaign.schedule.start = spec.horizon.start;
  campaign.schedule.end = spec.horizon.end;
  campaign.schedule.base_interval_s = spec.horizon.base_interval_s;
  campaign.schedule.dense_interval_s = spec.horizon.dense_interval_s;
  for (const TimeWindow& window : spec.horizon.dense_windows)
    campaign.schedule.dense_windows.push_back({window.start, window.end});

  campaign.zone.zonemd_private_start = spec.zone.zonemd_private_start;
  campaign.zone.zonemd_sha384_start = spec.zone.zonemd_sha384_start;
  campaign.zone.ksk_roll_at = spec.zone.ksk_roll_at;
  campaign.zone.broot_change = renumbering_time(spec);

  applied.distribution.czds_broken_zonemd_start =
      spec.zone.czds_broken_zonemd.start;
  applied.distribution.czds_broken_zonemd_end =
      spec.zone.czds_broken_zonemd.end;

  for (const FaultSpec& fault : spec.faults)
    campaign.fault_plan.push_back(to_fault_event(fault));

  for (const DeploymentOverride& deployment : spec.deployments) {
    measure::CampaignConfig::DeploymentOverride override_spec;
    override_spec.root_index = deployment.letter;
    override_spec.global_sites = deployment.global_sites;
    override_spec.local_sites = deployment.local_sites;
    campaign.deployment_overrides.push_back(override_spec);
  }

  for (const Event& event : spec.events) {
    switch (event.kind) {
      case EventKind::SiteOutage:
      case EventKind::Renumbering:
        // Renumbering's zone-record flip is the broot_change above; the
        // outage is the convergence window the monitor watches.
        campaign.scripted_outages.push_back(
            make_outage(event, event.window.start, event.window.end,
                        event.site_fraction));
        break;
      case EventKind::Ddos: {
        // The overwhelmed fraction of *global* sites stops answering...
        rss::ScriptedOutage outage =
            make_outage(event, event.window.start, event.window.end,
                        event.site_fraction);
        outage.site_type = static_cast<int>(netsim::SiteType::Global);
        campaign.scripted_outages.push_back(outage);
        // ...and everything that still answers does so through congestion.
        if (event.loss > 0 || event.extra_rtt_ms > 0 || event.jitter_ms > 0)
          campaign.transport.condition_windows.push_back(
              make_condition_window(event));
        break;
      }
      case EventKind::RouteLeak:
      case EventKind::TransportDegradation:
        // No sites dark — the path itself degrades; attribution needs an
        // explicit hint since there is no outage to derive one from.
        campaign.transport.condition_windows.push_back(
            make_condition_window(event));
        if (!event.label.empty())
          campaign.extra_hints.push_back(make_hint(event));
        break;
      case EventKind::LetterAdded:
        // Dark from the dawn of the campaign until service begins.
        campaign.scripted_outages.push_back(make_outage(
            event, spec.horizon.start, event.window.start, 1.0));
        break;
      case EventKind::LetterRemoved:
        campaign.scripted_outages.push_back(
            make_outage(event, event.window.start, spec.horizon.end, 1.0));
        break;
      case EventKind::SiteGrowth: {
        // The not-yet-built fraction decays to zero in `stages` batches.
        // Same label across stages: the pure (site_id, label) hash with a
        // declining fraction yields nested dark subsets, so a site that
        // comes online stays online.
        const int stages = std::max(1, event.stages);
        const int64_t span = event.window.end - event.window.start;
        for (int stage = 0; stage < stages; ++stage) {
          const util::UnixTime from =
              event.window.start + span * stage / stages;
          const util::UnixTime to =
              event.window.start + span * (stage + 1) / stages;
          campaign.scripted_outages.push_back(make_outage(
              event, from, to,
              event.site_fraction * static_cast<double>(stages - stage) /
                  static_cast<double>(stages)));
        }
        break;
      }
    }
  }

  if (spec.route_fallback) applied.slo.route_fallback_candidates = 8;
  return applied;
}

measure::CampaignConfig paper_campaign_config() {
  return apply(paper_2023()).campaign;
}

rss::DistributionConfig paper_distribution_config() {
  return apply(paper_2023()).distribution;
}

}  // namespace rootsim::scenario

namespace rootsim::measure {

// Scenario-taking Campaign entry points live here so the measure library
// never links (or even sees) the scenario layer.

std::vector<ZoneAuditObservation> Campaign::run_zone_audit(
    const scenario::ScenarioSpec& spec, size_t clean_samples,
    size_t workers) const {
  std::vector<FaultEvent> faults;
  for (const scenario::FaultSpec& fault : spec.faults)
    faults.push_back(scenario::to_fault_event(fault));
  return run_zone_audit_with(faults, clean_samples, workers);
}

SloTimelineResult Campaign::run_slo_timeline(
    const scenario::ScenarioSpec& spec, SloTimelineOptions options) const {
  // The campaign config (built from the same spec) already carries the
  // spec's outages and hints; only the monitor-side knobs are spec-derived
  // here. Re-injecting the outages would double the scripted list.
  if (spec.route_fallback && options.route_fallback_candidates == 0)
    options.route_fallback_candidates = 8;
  return run_slo_timeline(options);
}

}  // namespace rootsim::measure
