#include "scenario/parser.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace rootsim::scenario {

namespace {

bool parse_time(const std::string& token, util::UnixTime* out) {
  int year, month, day, hour, minute, second;
  if (std::sscanf(token.c_str(), "%d-%d-%dT%d:%d:%dZ", &year, &month, &day,
                  &hour, &minute, &second) != 6)
    return false;
  *out = util::make_time(year, month, day, hour, minute, second);
  return true;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

bool parse_letter(const std::string& token, int* out) {
  if (token == "-") {
    *out = -1;
    return true;
  }
  if (token.size() != 1 || token[0] < 'a' || token[0] > 'm') return false;
  *out = token[0] - 'a';
  return true;
}

std::string letter_name(int letter) {
  return letter < 0 ? "-" : std::string(1, static_cast<char>('a' + letter));
}

bool parse_region(const std::string& token, int* out) {
  if (token == "-") {
    *out = -1;
    return true;
  }
  for (util::Region r : util::all_regions()) {
    if (token == util::region_short_name(r)) {
      *out = static_cast<int>(r);
      return true;
    }
  }
  return false;
}

std::string region_name(int region) {
  return region < 0
             ? "-"
             : std::string(util::region_short_name(
                   static_cast<util::Region>(region)));
}

bool parse_event_kind(const std::string& token, EventKind* out) {
  for (EventKind kind :
       {EventKind::SiteOutage, EventKind::Ddos, EventKind::RouteLeak,
        EventKind::TransportDegradation, EventKind::LetterAdded,
        EventKind::LetterRemoved, EventKind::Renumbering,
        EventKind::SiteGrowth}) {
    if (token == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_fault_kind(const std::string& token, FaultSpec::Kind* out) {
  for (FaultSpec::Kind kind :
       {FaultSpec::Kind::ClockSkew, FaultSpec::Kind::Bitflip,
        FaultSpec::Kind::StaleServer}) {
    if (token == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// key=value fields of an event/fault line; "label=" swallows the rest of
/// the line so labels may contain spaces.
struct FieldReader {
  const std::string& line;
  size_t pos;
  std::string error;

  bool next(std::string* key, std::string* value) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return false;
    size_t eq = line.find('=', pos);
    if (eq == std::string::npos) {
      error = "expected key=value, got '" + line.substr(pos) + "'";
      return false;
    }
    *key = line.substr(pos, eq - pos);
    if (*key == "label") {
      *value = line.substr(eq + 1);
      pos = line.size();
      return true;
    }
    size_t end = line.find(' ', eq + 1);
    if (end == std::string::npos) end = line.size();
    *value = line.substr(eq + 1, end - eq - 1);
    pos = end;
    return true;
  }
};

bool parse_counts(const std::string& token,
                  std::array<int, util::kRegionCount>* out) {
  std::istringstream in(token);
  std::string part;
  size_t i = 0;
  while (std::getline(in, part, ',')) {
    if (i >= out->size()) return false;
    (*out)[i++] = std::atoi(part.c_str());
  }
  return i == out->size();
}

std::string counts_to_string(const std::array<int, util::kRegionCount>& counts) {
  std::string out;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i) out += ',';
    out += util::format("%d", counts[i]);
  }
  return out;
}

}  // namespace

bool parse_scenario(std::string_view text, ScenarioSpec* out,
                    std::string* error) {
  ScenarioSpec spec;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    if (error) *error = util::format("line %zu: %s", line_no, what.c_str());
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "scenario") {
      if (tokens.size() != 2) return fail("scenario wants one name");
      spec.name = tokens[1];
    } else if (directive == "description") {
      size_t at = line.find("description");
      spec.description = std::string(util::trim(line.substr(at + 11)));
    } else if (directive == "seed") {
      if (tokens.size() != 2) return fail("seed wants one number");
      spec.seed = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (directive == "horizon") {
      if (tokens.size() != 3 || !parse_time(tokens[1], &spec.horizon.start) ||
          !parse_time(tokens[2], &spec.horizon.end))
        return fail("horizon wants <start> <end>");
    } else if (directive == "intervals") {
      if (tokens.size() != 3) return fail("intervals wants <base_s> <dense_s>");
      spec.horizon.base_interval_s = std::atoll(tokens[1].c_str());
      spec.horizon.dense_interval_s = std::atoll(tokens[2].c_str());
    } else if (directive == "dense-window") {
      TimeWindow window;
      if (tokens.size() != 3 || !parse_time(tokens[1], &window.start) ||
          !parse_time(tokens[2], &window.end))
        return fail("dense-window wants <start> <end>");
      spec.horizon.dense_windows.push_back(window);
    } else if (directive == "zonemd-private") {
      if (tokens.size() != 2 ||
          !parse_time(tokens[1], &spec.zone.zonemd_private_start))
        return fail("zonemd-private wants one time");
    } else if (directive == "zonemd-sha384") {
      if (tokens.size() != 2 ||
          !parse_time(tokens[1], &spec.zone.zonemd_sha384_start))
        return fail("zonemd-sha384 wants one time");
    } else if (directive == "ksk-roll") {
      if (tokens.size() != 2 || !parse_time(tokens[1], &spec.zone.ksk_roll_at))
        return fail("ksk-roll wants one time");
    } else if (directive == "czds-broken") {
      if (tokens.size() != 3 ||
          !parse_time(tokens[1], &spec.zone.czds_broken_zonemd.start) ||
          !parse_time(tokens[2], &spec.zone.czds_broken_zonemd.end))
        return fail("czds-broken wants <start> <end>");
    } else if (directive == "route-fallback") {
      if (tokens.size() != 2 || (tokens[1] != "on" && tokens[1] != "off"))
        return fail("route-fallback wants on|off");
      spec.route_fallback = tokens[1] == "on";
    } else if (directive == "deployment") {
      DeploymentOverride dep;
      if (tokens.size() != 6 || !parse_letter(tokens[1], &dep.letter) ||
          dep.letter < 0 || tokens[2] != "global" ||
          !parse_counts(tokens[3], &dep.global_sites) || tokens[4] != "local" ||
          !parse_counts(tokens[5], &dep.local_sites))
        return fail("deployment wants <letter> global <6 counts> local <6 counts>");
      spec.deployments.push_back(dep);
    } else if (directive == "event") {
      if (tokens.size() < 2) return fail("event wants a kind");
      Event event;
      if (!parse_event_kind(tokens[1], &event.kind))
        return fail("unknown event kind '" + tokens[1] + "'");
      size_t fields_at = line.find(tokens[1]) + tokens[1].size();
      FieldReader reader{line, fields_at, {}};
      std::string key, value;
      while (reader.next(&key, &value)) {
        bool ok = true;
        if (key == "letter") ok = parse_letter(value, &event.letter);
        else if (key == "region") ok = parse_region(value, &event.region);
        else if (key == "start") ok = parse_time(value, &event.window.start);
        else if (key == "end") ok = parse_time(value, &event.window.end);
        else if (key == "fraction") event.site_fraction = std::atof(value.c_str());
        else if (key == "loss") event.loss = std::atof(value.c_str());
        else if (key == "extra-rtt") event.extra_rtt_ms = std::atof(value.c_str());
        else if (key == "jitter") event.jitter_ms = std::atof(value.c_str());
        else if (key == "stages") event.stages = std::atoi(value.c_str());
        else if (key == "label") event.label = value;
        else ok = false;
        if (!ok) return fail("bad event field " + key + "=" + value);
      }
      if (!reader.error.empty()) return fail(reader.error);
      spec.events.push_back(std::move(event));
    } else if (directive == "fault") {
      if (tokens.size() < 2) return fail("fault wants a kind");
      FaultSpec fault;
      if (!parse_fault_kind(tokens[1], &fault.kind))
        return fail("unknown fault kind '" + tokens[1] + "'");
      size_t fields_at = line.find(tokens[1]) + tokens[1].size();
      FieldReader reader{line, fields_at, {}};
      std::string key, value;
      while (reader.next(&key, &value)) {
        bool ok = true;
        if (key == "vp")
          fault.vp_id = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
        else if (key == "root") ok = parse_letter(value, &fault.root);
        else if (key == "family") {
          if (value == "v4") fault.family = 0;
          else if (value == "v6") fault.family = 1;
          else ok = false;
        } else if (key == "old-b") fault.old_b_address = value == "1";
        else if (key == "when") ok = parse_time(value, &fault.when);
        else if (key == "offset") fault.clock_offset_s = std::atoll(value.c_str());
        else if (key == "frozen") {
          if (value == "-") fault.server_frozen_at = 0;
          else ok = parse_time(value, &fault.server_frozen_at);
        } else if (key == "table2") fault.table2_vp_id = std::atoi(value.c_str());
        else ok = false;
        if (!ok) return fail("bad fault field " + key + "=" + value);
      }
      if (!reader.error.empty()) return fail(reader.error);
      spec.faults.push_back(fault);
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  if (spec.name.empty()) {
    line_no = 0;
    return fail("missing 'scenario <name>'");
  }
  if (spec.horizon.end <= spec.horizon.start) {
    line_no = 0;
    return fail("missing or empty 'horizon'");
  }
  *out = std::move(spec);
  return true;
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::string out;
  out += "scenario " + spec.name + "\n";
  if (!spec.description.empty()) out += "description " + spec.description + "\n";
  out += util::format("seed %llu\n",
                      static_cast<unsigned long long>(spec.seed));
  out += "horizon " + util::format_datetime(spec.horizon.start) + " " +
         util::format_datetime(spec.horizon.end) + "\n";
  out += util::format("intervals %lld %lld\n",
                      static_cast<long long>(spec.horizon.base_interval_s),
                      static_cast<long long>(spec.horizon.dense_interval_s));
  for (const TimeWindow& w : spec.horizon.dense_windows)
    out += "dense-window " + util::format_datetime(w.start) + " " +
           util::format_datetime(w.end) + "\n";
  if (spec.zone.zonemd_private_start)
    out += "zonemd-private " +
           util::format_datetime(spec.zone.zonemd_private_start) + "\n";
  if (spec.zone.zonemd_sha384_start)
    out += "zonemd-sha384 " +
           util::format_datetime(spec.zone.zonemd_sha384_start) + "\n";
  if (spec.zone.ksk_roll_at)
    out += "ksk-roll " + util::format_datetime(spec.zone.ksk_roll_at) + "\n";
  if (spec.zone.czds_broken_zonemd.start < spec.zone.czds_broken_zonemd.end)
    out += "czds-broken " +
           util::format_datetime(spec.zone.czds_broken_zonemd.start) + " " +
           util::format_datetime(spec.zone.czds_broken_zonemd.end) + "\n";
  if (spec.route_fallback) out += "route-fallback on\n";
  for (const DeploymentOverride& dep : spec.deployments)
    out += "deployment " + letter_name(dep.letter) + " global " +
           counts_to_string(dep.global_sites) + " local " +
           counts_to_string(dep.local_sites) + "\n";
  for (const Event& e : spec.events) {
    out += util::format(
        "event %s letter=%s region=%s start=%s end=%s fraction=%g loss=%g "
        "extra-rtt=%g jitter=%g stages=%d label=%s\n",
        to_string(e.kind), letter_name(e.letter).c_str(),
        region_name(e.region).c_str(),
        util::format_datetime(e.window.start).c_str(),
        util::format_datetime(e.window.end).c_str(), e.site_fraction, e.loss,
        e.extra_rtt_ms, e.jitter_ms, e.stages, e.label.c_str());
  }
  for (const FaultSpec& f : spec.faults) {
    out += util::format(
        "fault %s vp=%u root=%s family=%s old-b=%d when=%s offset=%lld "
        "frozen=%s table2=%d\n",
        to_string(f.kind), f.vp_id, letter_name(f.root).c_str(),
        f.family == 1 ? "v6" : "v4", f.old_b_address ? 1 : 0,
        util::format_datetime(f.when).c_str(),
        static_cast<long long>(f.clock_offset_s),
        f.server_frozen_at
            ? util::format_datetime(f.server_frozen_at).c_str()
            : "-",
        f.table2_vp_id);
  }
  return out;
}

}  // namespace rootsim::scenario
