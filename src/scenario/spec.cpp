#include "scenario/spec.h"

namespace rootsim::scenario {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SiteOutage: return "site-outage";
    case EventKind::Ddos: return "ddos";
    case EventKind::RouteLeak: return "route-leak";
    case EventKind::TransportDegradation: return "transport-degradation";
    case EventKind::LetterAdded: return "letter-added";
    case EventKind::LetterRemoved: return "letter-removed";
    case EventKind::Renumbering: return "renumbering";
    case EventKind::SiteGrowth: return "site-growth";
  }
  return "?";
}

const char* to_string(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::ClockSkew: return "clock-skew";
    case FaultSpec::Kind::Bitflip: return "bitflip";
    case FaultSpec::Kind::StaleServer: return "stale-server";
  }
  return "?";
}

util::UnixTime renumbering_time(const ScenarioSpec& spec) {
  for (const Event& event : spec.events)
    if (event.kind == EventKind::Renumbering) return event.window.start;
  return 0;
}

}  // namespace rootsim::scenario
