// The applier: maps a declarative ScenarioSpec onto the existing layers.
//
//   spec field                 -> configured layer
//   ------------------------------------------------------------------
//   horizon + dense windows    -> measure::ScheduleConfig
//   zone.zonemd_*/ksk_roll     -> rss::ZoneAuthorityConfig phase times
//   zone.czds_broken_zonemd    -> rss::DistributionConfig CZDS window
//   first Renumbering event    -> rss::ZoneAuthorityConfig::broot_change
//                                 (+ catalog renumbering time, via Campaign)
//   faults                     -> measure::CampaignConfig::fault_plan
//   deployments                -> measure::CampaignConfig overrides
//   outage-like events         -> rss::ScriptedOutage windows (which the
//                                 SLO monitor turns into CauseHints itself)
//   path-degrading events      -> netsim::TransportConfig condition windows
//                                 + obs::CauseHint extras
//   route_fallback             -> measure::SloTimelineOptions candidates
//
// Everything produced is plain config — the monitor plane (SloCollector /
// IncidentTracker) detects and attributes scenario events with zero new
// monitor code.
#pragma once

#include "measure/campaign.h"
#include "rss/distribution.h"
#include "scenario/spec.h"

namespace rootsim::scenario {

struct Applied {
  measure::CampaignConfig campaign;
  measure::SloTimelineOptions slo;
  rss::DistributionConfig distribution;
};

/// Pure function of the spec.
Applied apply(const ScenarioSpec& spec);

/// The paper scenario applied — the campaign config every pre-scenario
/// caller used to get from `measure::CampaignConfig{}`.
measure::CampaignConfig paper_campaign_config();

/// The paper scenario's distribution-channel config (CZDS broken window).
rss::DistributionConfig paper_distribution_config();

}  // namespace rootsim::scenario
