// The declarative scenario layer: everything the campaign used to hard-code
// about *when things happen* — the measurement horizon, the dense-probing
// windows, the zone-pipeline phase times, the fault plan, and every
// service-affecting event — expressed as one plain-data ScenarioSpec.
//
// A spec depends only on util:: vocabulary (times, regions, families); the
// applier (scenario/apply.h) maps it onto the existing layers:
//   * Horizon / dense windows      -> measure::ScheduleConfig
//   * ZoneTimeline                 -> rss::ZoneAuthorityConfig phase times +
//                                     rss::DistributionConfig CZDS window
//   * FaultSpec rows               -> measure::FaultEvent plan (Table 2)
//   * service Events               -> rss::ScriptedOutage + obs::CauseHint +
//                                     netsim::TransportConfig windows
//   * DeploymentOverride           -> netsim::DeploymentSpec what-ifs
//
// The paper's 2023 timeline is just one spec in the library
// (scenario/library.h, `paper_2023()`); the serialized form lives in
// examples/scenarios/*.scn (scenario/parser.h) so scenarios are data.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/geo.h"
#include "util/timeutil.h"

namespace rootsim::scenario {

struct TimeWindow {
  util::UnixTime start = 0;
  util::UnixTime end = 0;

  bool operator==(const TimeWindow&) const = default;
};

/// The measurement horizon: probe cadence over [start, end), tightened
/// inside the dense windows (the paper ran 30 min baseline, 15 min around
/// the two watched events).
struct Horizon {
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  int64_t base_interval_s = 30 * 60;
  int64_t dense_interval_s = 15 * 60;
  std::vector<TimeWindow> dense_windows;

  bool operator==(const Horizon&) const = default;
};

/// Zone-pipeline phase transitions. A zero instant means the phase never
/// happens — the neutral spec publishes a plain signed zone forever.
struct ZoneTimeline {
  /// ZONEMD appears with a private-use hash algorithm (unverifiable).
  util::UnixTime zonemd_private_start = 0;
  /// ZONEMD switches to SHA-384 and validates.
  util::UnixTime zonemd_sha384_start = 0;
  /// KSK rollover instant: the successor KSK signs from here on; both keys
  /// are published (and trusted) around the roll. 0 = no roll.
  util::UnixTime ksk_roll_at = 0;
  /// CZDS exports carry a stale (non-validating) ZONEMD digest during this
  /// window (the paper's 2023-09-21..12-07 observation). Empty = never.
  TimeWindow czds_broken_zonemd;

  bool operator==(const ZoneTimeline&) const = default;
};

/// One service-affecting event on the timeline. Each kind maps to the
/// smallest set of existing-layer knobs that makes the SLO plane see it.
enum class EventKind : uint8_t {
  /// A fraction of a letter's sites goes dark for the window.
  SiteOutage,
  /// Clustered DDoS on one letter: `site_fraction` of its global sites are
  /// overwhelmed (dark), and surviving paths to the letter degrade by
  /// `loss` / `extra_rtt_ms` for the window.
  Ddos,
  /// A route leak detours the letter's traffic: extra path latency (and
  /// optionally loss) for every client during the window, no sites dark.
  RouteLeak,
  /// Plain transport degradation window (loss / jitter / latency) without
  /// an availability story — the knob the paper's §6 detours motivate.
  TransportDegradation,
  /// The letter only begins answering at window.start (dark before).
  LetterAdded,
  /// The operator withdraws at window.start (dark after).
  LetterRemoved,
  /// The letter's service addresses change in the zone at window.start;
  /// until window.end a `site_fraction` of sites is degraded while routes
  /// and caches converge (the b.root 2023 event).
  Renumbering,
  /// Multi-year site-deployment growth: over the window the letter's dark
  /// fraction (sites not yet built) decays from `site_fraction` to zero in
  /// `stages` deterministic batches, optionally confined to one region.
  SiteGrowth,
};

const char* to_string(EventKind kind);

struct Event {
  EventKind kind = EventKind::SiteOutage;
  /// Root letter index 0..12 ('a'..'m'); -1 = every letter.
  int letter = -1;
  /// util::Region index the event is confined to; -1 = everywhere.
  int region = -1;
  /// [start, end); instant-style events key off start.
  TimeWindow window;
  /// Fraction of the letter's sites affected (outage-like kinds).
  double site_fraction = 1.0;
  /// Transport knobs (Ddos / RouteLeak / TransportDegradation).
  double loss = 0.0;
  double extra_rtt_ms = 0.0;
  double jitter_ms = 0.0;
  /// SiteGrowth: number of activation batches across the window.
  int stages = 8;
  /// Attribution label — what incidents caused by this event get blamed on.
  std::string label;

  bool operator==(const Event&) const = default;
};

/// One scheduled validation fault (the vocabulary of the paper's Table 2):
/// a VP with a skewed clock, a VP with faulty RAM flipping transfer bits,
/// or a probe landing on a stale (frozen-zone) instance.
struct FaultSpec {
  enum class Kind : uint8_t { ClockSkew, Bitflip, StaleServer };
  Kind kind = Kind::Bitflip;
  uint32_t vp_id = 0;
  /// Affected root; -1 = all roots probed this round (clock skew).
  int root = -1;
  /// 0 = v4, 1 = v6.
  int family = 0;
  bool old_b_address = false;
  util::UnixTime when = 0;
  int64_t clock_offset_s = 0;
  /// StaleServer: when the instance's zone copy froze. 0 = unset.
  util::UnixTime server_frozen_at = 0;
  /// Table 2 VPid bucket for reporting.
  int table2_vp_id = 0;

  bool operator==(const FaultSpec&) const = default;
};

const char* to_string(FaultSpec::Kind kind);

/// Replaces one letter's per-region site counts (the catalog's Table 4
/// ground truth) — the what-if vehicle for buildouts and unicast twins.
struct DeploymentOverride {
  int letter = 0;  ///< root index 0..12
  std::array<int, util::kRegionCount> global_sites{};
  std::array<int, util::kRegionCount> local_sites{};

  bool operator==(const DeploymentOverride&) const = default;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  uint64_t seed = 42;
  Horizon horizon;
  ZoneTimeline zone;
  std::vector<DeploymentOverride> deployments;
  std::vector<Event> events;
  std::vector<FaultSpec> faults;
  /// Availability probes fail over to the next announced-and-alive site
  /// instead of timing out — the catchment view (buildout/catchment
  /// scenarios) rather than the per-selection view the paper measured.
  bool route_fallback = false;

  bool operator==(const ScenarioSpec&) const = default;
};

/// First Renumbering event's zone-flip instant, 0 if the spec has none
/// (feeds the zone's address switch and the catalog's renumbering time).
util::UnixTime renumbering_time(const ScenarioSpec& spec);

}  // namespace rootsim::scenario
