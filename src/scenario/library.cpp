#include "scenario/library.h"

#include <algorithm>

namespace rootsim::scenario {

using util::make_time;

ScenarioSpec paper_2023() {
  ScenarioSpec spec;
  spec.name = "paper-2023";
  spec.description =
      "The paper's 174-day campaign (Fig. 2): ZONEMD roll-out, b.root "
      "renumbering, and the Table 2 validation-fault plan.";
  spec.seed = 42;

  // Fig. 2: rounds every 30 minutes 2023-07-03..12-24, tightened to 15
  // minutes around the ZONEMD introduction and the b.root renumbering.
  spec.horizon.start = make_time(2023, 7, 3);
  spec.horizon.end = make_time(2023, 12, 24);
  spec.horizon.base_interval_s = 30 * 60;
  spec.horizon.dense_interval_s = 15 * 60;
  spec.horizon.dense_windows = {
      {make_time(2023, 9, 8), make_time(2023, 10, 2)},
      {make_time(2023, 11, 20), make_time(2023, 12, 6)},
  };

  // Zone pipeline: ZONEMD appears with a private-use algorithm 2023-09-13,
  // validates from 2023-12-06T20:30Z; CZDS exports carried a stale digest
  // 2023-09-21..12-07.
  spec.zone.zonemd_private_start = make_time(2023, 9, 13);
  spec.zone.zonemd_sha384_start = make_time(2023, 12, 6, 20, 30);
  spec.zone.czds_broken_zonemd = {make_time(2023, 9, 21),
                                  make_time(2023, 12, 8)};

  // b.root renumbering: the zone flips 2023-11-27; the 36 h convergence
  // window degrades a majority of b's sites — the availability story the
  // SLO monitor detects and attributes.
  Event renumbering;
  renumbering.kind = EventKind::Renumbering;
  renumbering.letter = 1;  // b
  renumbering.window = {make_time(2023, 11, 27), make_time(2023, 11, 28, 12, 0)};
  renumbering.site_fraction = 0.7;
  renumbering.label = "b.root-renumbering";
  spec.events.push_back(renumbering);

  // The Table 2 fault plan, row by row (order matters: the audit seeds each
  // unit's RNG by its index in this plan).
  // Row 1: "Sig. not incepted", 5 SOAs, 23-12-21 10:35 .. 23-12-23 10:35,
  // all servers, VPid 1 — a clock running 3 days slow.
  for (int i = 0; i < 5; ++i) {
    FaultSpec f;
    f.kind = FaultSpec::Kind::ClockSkew;
    f.vp_id = 101;
    f.root = -1;
    f.when = make_time(2023, 12, 21, 10, 35) + i * 12 * 3600;
    f.clock_offset_s = -3 * util::kSecondsPerDay;
    f.table2_vp_id = 1;
    spec.faults.push_back(f);
  }
  // Row 2: one observation, 23-10-02 22:00, all servers, VPid 2.
  {
    FaultSpec f;
    f.kind = FaultSpec::Kind::ClockSkew;
    f.vp_id = 202;
    f.root = -1;
    f.when = make_time(2023, 10, 2, 22, 0);
    f.clock_offset_s = -2 * util::kSecondsPerDay;
    f.table2_vp_id = 2;
    spec.faults.push_back(f);
  }
  // Row 3: bitflips on d.root (v6), 3 observations, VPid 3.
  for (util::UnixTime t : {make_time(2023, 9, 26, 21, 46),
                           make_time(2023, 10, 11, 8, 0),
                           make_time(2023, 10, 24, 10, 0)}) {
    FaultSpec f;
    f.kind = FaultSpec::Kind::Bitflip;
    f.vp_id = 303;
    f.root = 3;  // d
    f.family = 1;
    f.when = t;
    f.table2_vp_id = 3;
    spec.faults.push_back(f);
  }
  // Row 4: g.root (v6) and b.root (old v4), VPid 4.
  {
    FaultSpec f;
    f.kind = FaultSpec::Kind::Bitflip;
    f.vp_id = 404;
    f.root = 6;  // g
    f.family = 1;
    f.when = make_time(2023, 11, 18, 7, 30);
    f.table2_vp_id = 4;
    spec.faults.push_back(f);
    f.root = 1;  // b
    f.family = 0;
    f.old_b_address = true;
    f.when = make_time(2023, 11, 21, 6, 16);
    spec.faults.push_back(f);
  }
  // Row 5: c.root (v6) and g.root (v4) twice, VPid 5.
  {
    FaultSpec f;
    f.kind = FaultSpec::Kind::Bitflip;
    f.vp_id = 505;
    f.table2_vp_id = 5;
    f.root = 2;  // c
    f.family = 1;
    f.when = make_time(2023, 9, 26, 10, 15);
    spec.faults.push_back(f);
    f.root = 6;  // g
    f.family = 0;
    f.when = make_time(2023, 10, 3, 9, 0);
    spec.faults.push_back(f);
    f.when = make_time(2023, 10, 9, 7, 0);
    spec.faults.push_back(f);
  }
  // Stale d.root, Tokyo: 12 observations, 3 VPs (Table 2 ids 6-8), zone
  // frozen since 23-07-28.
  {
    int table2_id = 6;
    for (uint32_t vp : {606u, 607u, 608u}) {
      for (int i = 0; i < 4; ++i) {
        FaultSpec f;
        f.kind = FaultSpec::Kind::StaleServer;
        f.vp_id = vp;
        f.root = 3;  // d
        f.family = 1;
        f.when = make_time(2023, 8, 16, 10, 0) + i * 1800;
        f.server_frozen_at = make_time(2023, 7, 28);
        f.table2_vp_id = table2_id;
        spec.faults.push_back(f);
      }
      ++table2_id;
    }
  }
  // Stale d.root, Leeds: 40 observations, 8 VPs (ids 9-16), both families.
  {
    int table2_id = 9;
    for (uint32_t vp = 609; vp <= 616; ++vp) {
      for (int i = 0; i < 5; ++i) {
        FaultSpec f;
        f.kind = FaultSpec::Kind::StaleServer;
        f.vp_id = vp;
        f.root = 3;  // d
        f.family = i % 2 == 0 ? 0 : 1;
        f.when = make_time(2023, 10, 6, 10, 0) + i * 1800;
        f.server_frozen_at = make_time(2023, 9, 18);
        f.table2_vp_id = table2_id;
        spec.faults.push_back(f);
      }
      ++table2_id;
    }
  }
  return spec;
}

ScenarioSpec froot_buildout() {
  ScenarioSpec spec;
  spec.name = "froot-buildout";
  spec.description =
      "F-ROOT-style regional buildout replay: f's Asia sites activate in "
      "deterministic batches over three years; the per-bucket RTT trend of "
      "the letter is the figure. Includes the 2018 KSK rollover.";
  spec.seed = 42;
  // Multi-year horizon at an hourly cadence (26k rounds) — the scenario
  // engine's 'beyond 174 days' case.
  spec.horizon.start = make_time(2016, 1, 1);
  spec.horizon.end = make_time(2018, 12, 31);
  spec.horizon.base_interval_s = 3600;
  spec.horizon.dense_interval_s = 3600;
  // The real-world root KSK rolled 2018-10-11; replaying it here exercises
  // the dual-DNSKEY publication phase on a long horizon.
  spec.zone.ksk_roll_at = make_time(2018, 10, 11, 16, 0);

  Event growth;
  growth.kind = EventKind::SiteGrowth;
  growth.letter = 5;  // f
  growth.region = static_cast<int>(util::Region::Asia);
  growth.window = {spec.horizon.start, make_time(2018, 7, 1)};
  growth.site_fraction = 0.85;  // most Asia sites not yet built at start
  growth.stages = 10;
  growth.label = "froot-asia-buildout";
  spec.events.push_back(growth);

  // The catchment view: a probe whose selected site is not yet built lands
  // on the next announced site (usually remote) instead of timing out.
  spec.route_fallback = true;
  return spec;
}

ScenarioSpec anycast_catchment() {
  ScenarioSpec spec;
  spec.name = "anycast-catchment";
  spec.description =
      "Anycast-vs-unicast catchment comparison: c.root is collapsed to a "
      "single North-America global site while l.root keeps its 132-site "
      "anycast deployment; same topology seed, same probing.";
  spec.seed = 42;
  spec.horizon.start = make_time(2025, 3, 1);
  spec.horizon.end = make_time(2025, 4, 1);
  spec.horizon.base_interval_s = 30 * 60;
  spec.horizon.dense_interval_s = 15 * 60;

  DeploymentOverride unicast_c;
  unicast_c.letter = 2;  // c
  unicast_c.global_sites = {0, 0, 0, 1, 0, 0};  // one site, North America
  spec.deployments.push_back(unicast_c);
  return spec;
}

ScenarioSpec ddos_c_globals() {
  ScenarioSpec spec;
  spec.name = "ddos-c-globals";
  spec.description =
      "Clustered DDoS on c.root's global sites: 90% of the letter's sites "
      "overwhelmed for four days, surviving paths degraded; the SLO plane "
      "must open, attribute, and close the availability incident.";
  spec.seed = 42;
  spec.horizon.start = make_time(2026, 3, 1);
  spec.horizon.end = make_time(2026, 4, 15);
  spec.horizon.base_interval_s = 30 * 60;
  spec.horizon.dense_interval_s = 15 * 60;
  spec.horizon.dense_windows = {
      {make_time(2026, 3, 18), make_time(2026, 3, 28)},
  };

  Event ddos;
  ddos.kind = EventKind::Ddos;
  ddos.letter = 2;  // c — a global-sites-only deployment
  ddos.window = {make_time(2026, 3, 20), make_time(2026, 3, 24)};
  ddos.site_fraction = 0.9;
  ddos.loss = 0.3;
  ddos.extra_rtt_ms = 120.0;
  ddos.label = "ddos-c-globals";
  spec.events.push_back(ddos);
  return spec;
}

std::vector<ScenarioSpec> library() {
  return {paper_2023(), froot_buildout(), anycast_catchment(),
          ddos_c_globals()};
}

bool find_scenario(const std::string& name, ScenarioSpec* out) {
  for (ScenarioSpec& spec : library()) {
    if (spec.name == name) {
      if (out) *out = std::move(spec);
      return true;
    }
  }
  return false;
}

ScenarioSpec smoke_variant(const ScenarioSpec& spec) {
  constexpr int64_t kLeadSeconds = 4 * util::kSecondsPerDay;
  constexpr int64_t kSpanSeconds = 16 * util::kSecondsPerDay;
  ScenarioSpec smoke = spec;
  smoke.name = spec.name + "-smoke";

  util::UnixTime focus = spec.horizon.start;
  if (!spec.events.empty()) focus = spec.events.front().window.start;
  util::UnixTime start = std::max(spec.horizon.start, focus - kLeadSeconds);
  util::UnixTime end = std::min(spec.horizon.end, start + kSpanSeconds);
  smoke.horizon.start = start;
  smoke.horizon.end = end;

  auto clip = [&](TimeWindow w) {
    return TimeWindow{std::clamp(w.start, start, end),
                      std::clamp(w.end, start, end)};
  };
  smoke.horizon.dense_windows.clear();
  for (const TimeWindow& w : spec.horizon.dense_windows) {
    TimeWindow c = clip(w);
    if (c.start < c.end) smoke.horizon.dense_windows.push_back(c);
  }
  smoke.events.clear();
  for (Event event : spec.events) {
    if (event.window.end <= start || event.window.start >= end) continue;
    event.window = clip(event.window);
    smoke.events.push_back(event);
  }
  smoke.faults.clear();
  for (const FaultSpec& fault : spec.faults)
    if (fault.when >= start && fault.when < end) smoke.faults.push_back(fault);
  return smoke;
}

}  // namespace rootsim::scenario
