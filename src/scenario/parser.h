// The .scn text format: scenarios as data (examples/scenarios/*.scn).
//
// Line-oriented, one directive per line, '#' starts a comment. Times are
// ISO-8601 UTC ("2023-07-03T00:00:00Z" — util::format_datetime's form).
//
//   scenario <name>
//   description <free text>
//   seed <n>
//   horizon <start> <end>
//   intervals <base_s> <dense_s>
//   dense-window <start> <end>
//   zonemd-private <t>
//   zonemd-sha384 <t>
//   ksk-roll <t>
//   czds-broken <start> <end>
//   route-fallback on|off
//   deployment <letter> global <n,n,n,n,n,n> local <n,n,n,n,n,n>
//   event <kind> letter=<a..m|-> region=<AF|AS|EU|NA|SA|OC|-> start=<t>
//         end=<t> fraction=<f> loss=<f> extra-rtt=<f> jitter=<f>
//         stages=<n> label=<free text>
//   fault <kind> vp=<n> root=<a..m|-> family=<v4|v6> old-b=<0|1> when=<t>
//         offset=<s> frozen=<t|-> table2=<n>
//
// serialize_scenario() emits the canonical form; parse_scenario() accepts
// it back (parse ∘ serialize is the identity — the round-trip test).
#pragma once

#include <string>
#include <string_view>

#include "scenario/spec.h"

namespace rootsim::scenario {

/// Parses the text form into `out`. On failure returns false and, when
/// `error` is non-null, stores a "line N: what" message.
bool parse_scenario(std::string_view text, ScenarioSpec* out,
                    std::string* error = nullptr);

/// Canonical text form of a spec.
std::string serialize_scenario(const ScenarioSpec& spec);

}  // namespace rootsim::scenario
