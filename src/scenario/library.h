// The built-in scenario library. Every hard-coded timeline instant the repo
// ever had lives here, as data in a spec:
//
//   * paper-2023        — the paper's full 174-day campaign (Fig. 2): the
//                         ZONEMD roll, the b.root renumbering, the Table 2
//                         fault plan. Applying it reproduces the seed
//                         pipeline byte-for-byte (the refactor's proof).
//   * froot-buildout    — a multi-year F-ROOT-style regional buildout
//                         replay: the letter's Asia sites activate in
//                         deterministic batches and the catchment RTT trend
//                         falls out of the standard SLO pipeline.
//   * anycast-catchment — anycast-vs-unicast comparison: one letter is
//                         collapsed to a single global site and measured
//                         against the wide anycast deployments on the same
//                         topology seed.
//   * ddos-c-globals    — clustered DDoS on one letter's global sites; the
//                         SLO plane must open, attribute, and close the
//                         incident at any worker count.
#pragma once

#include "scenario/spec.h"

namespace rootsim::scenario {

ScenarioSpec paper_2023();
ScenarioSpec froot_buildout();
ScenarioSpec anycast_catchment();
ScenarioSpec ddos_c_globals();

/// Every built-in spec, in the order above.
std::vector<ScenarioSpec> library();

/// Library spec by name; nullopt-like empty name when unknown.
/// (Returns a value: specs are plain data.)
bool find_scenario(const std::string& name, ScenarioSpec* out);

/// A shortened variant for smoke tests: clamps the horizon to ~16 days
/// around the first event (or the horizon start), clips windows, and drops
/// faults/dense windows that fall outside. Deterministic; `-smoke` suffix.
ScenarioSpec smoke_variant(const ScenarioSpec& spec);

}  // namespace rootsim::scenario
