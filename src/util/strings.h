// String helpers shared across modules: tokenization for the zone-file parser,
// case folding for DNS name comparison (RFC 1035 4.3.3: case-insensitive), and
// printf-style formatting into std::string.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace rootsim::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lower-case copy (DNS case folding never touches non-ASCII).
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// printf into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace rootsim::util
