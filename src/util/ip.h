// IPv4/IPv6 address and prefix types.
//
// The measurement pipeline handles both address families uniformly (the paper's
// central question RQ2 is precisely the v4/v6 contrast), so addresses are stored
// in a single 16-byte canonical form with an explicit family tag. Parsing and
// formatting follow RFC 4291 / RFC 5952 (zero-compression on output).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rootsim::util {

enum class IpFamily : uint8_t { V4 = 4, V6 = 6 };

/// Returns "IPv4" / "IPv6".
std::string_view to_string(IpFamily f);

/// An IP address of either family. IPv4 addresses occupy the first 4 bytes of
/// `bytes_`; comparison orders by family first, then lexicographically by bytes.
class IpAddress {
 public:
  IpAddress() = default;

  /// Builds an IPv4 address from 4 octets.
  static IpAddress v4(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
  /// Builds an IPv4 address from a host-order 32-bit value.
  static IpAddress v4(uint32_t host_order);
  /// Builds an IPv6 address from 8 host-order hextets.
  static IpAddress v6(const std::array<uint16_t, 8>& hextets);
  /// Builds an IPv6 address from raw 16 bytes (network order).
  static IpAddress v6(const std::array<uint8_t, 16>& bytes);

  /// Parses dotted-quad or RFC 4291 textual IPv6 (including "::" compression).
  /// Returns nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  IpFamily family() const { return family_; }
  bool is_v4() const { return family_ == IpFamily::V4; }
  bool is_v6() const { return family_ == IpFamily::V6; }

  /// Raw bytes in network order; 4 significant bytes for IPv4, 16 for IPv6.
  const std::array<uint8_t, 16>& bytes() const { return bytes_; }
  size_t byte_length() const { return is_v4() ? 4 : 16; }

  /// Host-order 32-bit value; only valid for IPv4.
  uint32_t v4_value() const;

  /// RFC 5952 canonical text (lower-case hex, longest zero run compressed).
  std::string to_string() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  IpFamily family_ = IpFamily::V4;
  std::array<uint8_t, 16> bytes_{};
};

/// A CIDR prefix. The paper aggregates client identities to /24 (IPv4) and
/// /48 (IPv6) for privacy; `Prefix::privacy_prefix_of` applies exactly that.
class Prefix {
 public:
  Prefix() = default;
  /// Masks `addr` down to `length` bits. `length` is clamped to the family width.
  Prefix(const IpAddress& addr, uint8_t length);

  /// Parses "a.b.c.d/len" or "v6addr/len".
  static std::optional<Prefix> parse(std::string_view text);

  /// The paper's privacy aggregation: /24 for IPv4, /48 for IPv6.
  static Prefix privacy_prefix_of(const IpAddress& addr);

  const IpAddress& network() const { return network_; }
  uint8_t length() const { return length_; }
  IpFamily family() const { return network_.family(); }

  /// True if `addr` is of the same family and falls inside this prefix.
  bool contains(const IpAddress& addr) const;

  std::string to_string() const;

  auto operator<=>(const Prefix&) const = default;

 private:
  IpAddress network_;
  uint8_t length_ = 0;
};

}  // namespace rootsim::util
