#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rootsim::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  double m = mean(values);
  double acc = 0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

namespace {
double sorted_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  double idx = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}
}  // namespace

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, q);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = values.front();
  s.max = values.back();
  s.p25 = sorted_percentile(values, 0.25);
  s.median = sorted_percentile(values, 0.5);
  s.p75 = sorted_percentile(values, 0.75);
  s.p90 = sorted_percentile(values, 0.90);
  s.p99 = sorted_percentile(values, 0.99);
  return s;
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const { return sorted_percentile(sorted_, q); }

void IntHistogram::add(int64_t value, uint64_t weight) {
  bins_[value] += weight;
  total_ += weight;
}

uint64_t IntHistogram::count(int64_t value) const {
  auto it = bins_.find(value);
  return it == bins_.end() ? 0 : it->second;
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0;
  double acc = 0;
  for (const auto& [value, count] : bins_)
    acc += static_cast<double>(value) * static_cast<double>(count);
  return acc / static_cast<double>(total_);
}

int64_t IntHistogram::min_value() const {
  return bins_.empty() ? 0 : bins_.begin()->first;
}

int64_t IntHistogram::max_value() const {
  return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::string render_histogram(const IntHistogram& h, size_t bar_width) {
  std::string out;
  if (h.total() == 0) return out;
  uint64_t peak = 0;
  for (const auto& [value, count] : h.bins()) peak = std::max(peak, count);
  char line[160];
  for (const auto& [value, count] : h.bins()) {
    size_t bar = peak ? static_cast<size_t>(count * bar_width / peak) : 0;
    std::snprintf(line, sizeof line, "%6lld %8llu |", static_cast<long long>(value),
                  static_cast<unsigned long long>(count));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace rootsim::util
