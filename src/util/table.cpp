#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace rootsim::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto align_of = [&](size_t c) {
    if (c < alignment_.size()) return alignment_[c];
    return c == 0 ? Align::Left : Align::Right;
  };
  auto emit_cell = [&](std::string& out, const std::string& cell, size_t c) {
    size_t pad = widths[c] - cell.size();
    if (align_of(c) == Align::Right) out.append(pad, ' ');
    out += cell;
    if (align_of(c) == Align::Left) out.append(pad, ' ');
  };

  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) out += "  ";
    emit_cell(out, header_[c], c);
  }
  out += '\n';
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      emit_cell(out, row[c], c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace rootsim::util
