#include "util/timeutil.h"

#include <cstdio>

namespace rootsim::util {

namespace {

// Days from the civil date to 1970-01-01 (Howard Hinnant's algorithm).
int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void civil_from_days(int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

UnixTime make_time(int year, int month, int day, int hour, int minute, int second) {
  return days_from_civil(year, month, day) * kSecondsPerDay + hour * 3600 +
         minute * 60 + second;
}

CivilTime civil_from_unix(UnixTime t) {
  int64_t days = t / kSecondsPerDay;
  int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime c{};
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem % 3600) / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::string format_date(UnixTime t) {
  CivilTime c = civil_from_unix(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_datetime(UnixTime t) {
  CivilTime c = civil_from_unix(t);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", c.year, c.month,
                c.day, c.hour, c.minute, c.second);
  return buf;
}

UnixTime day_start(UnixTime t) {
  int64_t days = t / kSecondsPerDay;
  if (t % kSecondsPerDay < 0) --days;
  return days * kSecondsPerDay;
}

int64_t days_between(UnixTime a, UnixTime b) {
  return (day_start(b) - day_start(a)) / kSecondsPerDay;
}

}  // namespace rootsim::util
