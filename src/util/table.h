// Fixed-width text table renderer. Every bench binary prints its paper table
// or figure series through this, so output formats are uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace rootsim::util {

/// Column alignment.
enum class Align { Left, Right };

/// A simple monospace table: set a header, append rows of strings, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Sets per-column alignment; default is Left for the first column, Right
  /// for the rest (numeric tables).
  void set_alignment(std::vector<Align> alignment);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 1);
  static std::string pct(double fraction, int precision = 1);

  std::string render() const;
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignment_;
};

}  // namespace rootsim::util
