// Geographic primitives: coordinates, great-circle distance, regions.
//
// The paper reasons about anycast quality through geography — distance from a
// vantage point to the selected replica vs. the closest global replica
// (Fig. 5) and ~10ms of delay per 1,000 km of fiber (§6). Regions follow the
// paper's six continents (Table 3 / Table 4).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rootsim::util {

/// The six regions the paper partitions the world into.
enum class Region : uint8_t {
  Africa = 0,
  Asia,
  Europe,
  NorthAmerica,
  SouthAmerica,
  Oceania,
};

inline constexpr size_t kRegionCount = 6;

/// All regions in the paper's Table 3 column order.
const std::vector<Region>& all_regions();

std::string_view region_name(Region r);
std::string_view region_short_name(Region r);

/// Latitude/longitude in degrees.
struct GeoPoint {
  double lat_deg = 0;
  double lon_deg = 0;
};

/// Great-circle (haversine) distance in kilometres, Earth radius 6371 km.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// The paper's rule of thumb: every 1,000 km induces ~10 ms of delay
/// (speed of light in fiber, round trip).
double fiber_rtt_ms(double distance_km);

/// A representative bounding box per region, used to synthesize plausible
/// coordinates for ASes, vantage points and root sites.
struct RegionBox {
  Region region;
  double lat_min, lat_max;
  double lon_min, lon_max;
};

const RegionBox& region_box(Region r);

/// Rough centroid of a region (for inter-region distance heuristics).
GeoPoint region_centroid(Region r);

}  // namespace rootsim::util
