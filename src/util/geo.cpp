#include "util/geo.h"

#include <cmath>

namespace rootsim::util {

const std::vector<Region>& all_regions() {
  static const std::vector<Region> regions = {
      Region::Africa,       Region::Asia,         Region::Europe,
      Region::NorthAmerica, Region::SouthAmerica, Region::Oceania,
  };
  return regions;
}

std::string_view region_name(Region r) {
  switch (r) {
    case Region::Africa: return "Africa";
    case Region::Asia: return "Asia";
    case Region::Europe: return "Europe";
    case Region::NorthAmerica: return "North America";
    case Region::SouthAmerica: return "South America";
    case Region::Oceania: return "Oceania";
  }
  return "?";
}

std::string_view region_short_name(Region r) {
  switch (r) {
    case Region::Africa: return "AF";
    case Region::Asia: return "AS";
    case Region::Europe: return "EU";
    case Region::NorthAmerica: return "NA";
    case Region::SouthAmerica: return "SA";
    case Region::Oceania: return "OC";
  }
  return "?";
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  double lat1 = a.lat_deg * kDegToRad;
  double lat2 = b.lat_deg * kDegToRad;
  double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double fiber_rtt_ms(double distance_km) {
  // ~10 ms RTT per 1,000 km (paper §6): 2/3 c one way, doubled for round trip.
  return distance_km / 100.0;
}

const RegionBox& region_box(Region r) {
  // Boxes chosen to cover the populated core of each continent so that
  // synthesized coordinates are plausible (no VPs in the open ocean).
  static const RegionBox boxes[kRegionCount] = {
      {Region::Africa, -30.0, 32.0, -15.0, 45.0},
      {Region::Asia, 5.0, 50.0, 60.0, 140.0},
      {Region::Europe, 37.0, 62.0, -9.0, 32.0},
      {Region::NorthAmerica, 26.0, 52.0, -123.0, -70.0},
      {Region::SouthAmerica, -38.0, 8.0, -72.0, -38.0},
      {Region::Oceania, -42.0, -12.0, 114.0, 178.0},
  };
  return boxes[static_cast<size_t>(r)];
}

GeoPoint region_centroid(Region r) {
  const RegionBox& box = region_box(r);
  return {(box.lat_min + box.lat_max) / 2, (box.lon_min + box.lon_max) / 2};
}

}  // namespace rootsim::util
