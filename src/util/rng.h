// Deterministic random number generation.
//
// Every experiment in this repository is a pure function of (seed, config):
// the whole 174-day measurement campaign, the topology, the fault plan and the
// traffic traces are derived from one root seed so that EXPERIMENTS.md numbers
// reproduce bit-for-bit. We use xoshiro256** seeded via splitmix64 (public
// domain algorithms by Blackman & Vigna) instead of std::mt19937 because the
// standard distributions are not portable across standard libraries.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace rootsim::util {

/// splitmix64 step; used for seeding and cheap hash mixing.
constexpr uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit hash of a string (FNV-1a), for deriving substream seeds from
/// names ("b.root/ipv6/churn") so adding a stream never perturbs the others.
constexpr uint64_t fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 42) {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent substream keyed by a name; see fnv1a above.
  Rng fork(std::string_view stream_name) const {
    uint64_t mix = state_[0] ^ fnv1a(stream_name);
    return Rng(mix);
  }

  uint64_t next() {
    auto rotl = [](uint64_t x, int k) { return (x << k) | (x >> (64 - k)); };
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  uint64_t uniform(uint64_t bound) {
    if (bound == 0) return 0;
    while (true) {
      uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= static_cast<uint64_t>(-bound) % bound)
        return static_cast<uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and stateless).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) {
    double u = uniform01();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return -std::log(1.0 - u) / rate;
  }

  /// Log-normal: exp(Normal(mu, sigma)). Used for long-tailed RTT and flow counts.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Poisson (Knuth for small lambda, normal approximation above 64).
  uint64_t poisson(double lambda) {
    if (lambda <= 0) return 0;
    if (lambda > 64) {
      double v = normal(lambda, std::sqrt(lambda));
      return v < 0 ? 0 : static_cast<uint64_t>(v + 0.5);
    }
    double l = std::exp(-lambda);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > l);
    return k - 1;
  }

  /// Geometric: number of failures before first success, p in (0,1].
  uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    double u = uniform01();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return static_cast<uint64_t>(std::log(1.0 - u) / std::log(1.0 - p));
  }

  /// Pareto (type I) with scale xm and shape alpha; heavy-tailed traffic volumes.
  double pareto(double xm, double alpha) {
    double u = uniform01();
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  template <typename Container>
  size_t weighted_index(const Container& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double target = uniform01() * total;
    double acc = 0;
    size_t i = 0;
    for (double w : weights) {
      acc += w;
      if (target < acc) return i;
      ++i;
    }
    return weights.size() ? weights.size() - 1 : 0;
  }

  /// Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<uint64_t, 4> state_{};
};

}  // namespace rootsim::util
