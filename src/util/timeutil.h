// Simulation time.
//
// The campaign runs on real calendar time (2023-07-03 .. 2023-12-24 for the
// active measurement, plus the passive windows in 2023-10/2024-02/2024-04), so
// we carry Unix timestamps and provide the small set of calendar operations the
// pipeline needs: date construction, ISO-8601 rendering and day arithmetic.
// All times are UTC; the simulated VP clock skew of Table 2 is modelled as an
// explicit per-VP offset, not as a timezone.
#pragma once

#include <cstdint>
#include <string>

namespace rootsim::util {

/// Seconds since the Unix epoch (UTC).
using UnixTime = int64_t;

inline constexpr int64_t kSecondsPerDay = 86400;

/// Builds a UTC timestamp from calendar fields (proleptic Gregorian).
UnixTime make_time(int year, int month, int day, int hour = 0, int minute = 0,
                   int second = 0);

/// Calendar fields of a UTC timestamp.
struct CivilTime {
  int year;
  int month;
  int day;
  int hour;
  int minute;
  int second;
};

CivilTime civil_from_unix(UnixTime t);

/// "2023-09-13" (ISO date).
std::string format_date(UnixTime t);

/// "2023-09-13T10:35:00Z".
std::string format_datetime(UnixTime t);

/// Midnight (UTC) of the day containing t.
UnixTime day_start(UnixTime t);

/// Number of whole days between two timestamps' days (b_day - a_day).
int64_t days_between(UnixTime a, UnixTime b);

}  // namespace rootsim::util
