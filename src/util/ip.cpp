#include "util/ip.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace rootsim::util {

std::string_view to_string(IpFamily f) {
  return f == IpFamily::V4 ? "IPv4" : "IPv6";
}

IpAddress IpAddress::v4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  IpAddress ip;
  ip.family_ = IpFamily::V4;
  ip.bytes_ = {a, b, c, d};
  return ip;
}

IpAddress IpAddress::v4(uint32_t host_order) {
  return v4(static_cast<uint8_t>(host_order >> 24),
            static_cast<uint8_t>(host_order >> 16),
            static_cast<uint8_t>(host_order >> 8),
            static_cast<uint8_t>(host_order));
}

IpAddress IpAddress::v6(const std::array<uint16_t, 8>& hextets) {
  IpAddress ip;
  ip.family_ = IpFamily::V6;
  for (size_t i = 0; i < 8; ++i) {
    ip.bytes_[2 * i] = static_cast<uint8_t>(hextets[i] >> 8);
    ip.bytes_[2 * i + 1] = static_cast<uint8_t>(hextets[i]);
  }
  return ip;
}

IpAddress IpAddress::v6(const std::array<uint8_t, 16>& bytes) {
  IpAddress ip;
  ip.family_ = IpFamily::V6;
  ip.bytes_ = bytes;
  return ip;
}

uint32_t IpAddress::v4_value() const {
  return (static_cast<uint32_t>(bytes_[0]) << 24) |
         (static_cast<uint32_t>(bytes_[1]) << 16) |
         (static_cast<uint32_t>(bytes_[2]) << 8) | bytes_[3];
}

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::array<uint8_t, 4> octets{};
  size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    unsigned value = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
    octets[static_cast<size_t>(i)] = static_cast<uint8_t>(value);
    pos = static_cast<size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return IpAddress::v4(octets[0], octets[1], octets[2], octets[3]);
}

std::optional<uint16_t> parse_hextet(std::string_view group) {
  if (group.empty() || group.size() > 4) return std::nullopt;
  uint16_t value = 0;
  for (char c : group) {
    uint16_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint16_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint16_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint16_t>(c - 'A' + 10);
    else return std::nullopt;
    value = static_cast<uint16_t>(value << 4 | digit);
  }
  return value;
}

std::optional<IpAddress> parse_v6(std::string_view text) {
  // Split on "::" (at most one), then parse colon-separated hextets on both
  // sides and pad the middle with zeros.
  size_t dc = text.find("::");
  std::string_view left = text, right;
  bool has_dc = dc != std::string_view::npos;
  if (has_dc) {
    left = text.substr(0, dc);
    right = text.substr(dc + 2);
    if (right.find("::") != std::string_view::npos) return std::nullopt;
  }
  auto split_groups = [](std::string_view s, std::optional<std::array<uint16_t, 8>>& out,
                         size_t& count) -> bool {
    count = 0;
    out.emplace();
    if (s.empty()) return true;
    size_t start = 0;
    while (true) {
      size_t colon = s.find(':', start);
      std::string_view group =
          colon == std::string_view::npos ? s.substr(start) : s.substr(start, colon - start);
      auto hextet = parse_hextet(group);
      if (!hextet || count >= 8) return false;
      (*out)[count++] = *hextet;
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return true;
  };
  std::optional<std::array<uint16_t, 8>> lhs, rhs;
  size_t nl = 0, nr = 0;
  if (!split_groups(left, lhs, nl)) return std::nullopt;
  if (!split_groups(right, rhs, nr)) return std::nullopt;
  std::array<uint16_t, 8> hextets{};
  if (has_dc) {
    if (nl + nr > 7) return std::nullopt;  // "::" must stand for >= 1 group
    for (size_t i = 0; i < nl; ++i) hextets[i] = (*lhs)[i];
    for (size_t i = 0; i < nr; ++i) hextets[8 - nr + i] = (*rhs)[i];
  } else {
    if (nl != 8) return std::nullopt;
    hextets = *lhs;
  }
  return IpAddress::v6(hextets);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::string IpAddress::to_string() const {
  char buf[64];
  if (is_v4()) {
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", bytes_[0], bytes_[1], bytes_[2], bytes_[3]);
    return buf;
  }
  // RFC 5952: compress the longest run of >= 2 zero hextets, leftmost on tie.
  std::array<uint16_t, 8> h{};
  for (size_t i = 0; i < 8; ++i)
    h[i] = static_cast<uint16_t>(bytes_[2 * i] << 8 | bytes_[2 * i + 1]);
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (h[static_cast<size_t>(i)] != 0) { ++i; continue; }
    int j = i;
    while (j < 8 && h[static_cast<size_t>(j)] == 0) ++j;
    if (j - i > best_len) { best_start = i; best_len = j - i; }
    i = j;
  }
  if (best_len < 2) best_start = -1;
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", h[static_cast<size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Prefix::Prefix(const IpAddress& addr, uint8_t length) {
  uint8_t max_len = addr.is_v4() ? 32 : 128;
  length_ = std::min(length, max_len);
  std::array<uint8_t, 16> masked = addr.bytes();
  size_t full_bytes = length_ / 8;
  size_t rem_bits = length_ % 8;
  for (size_t i = full_bytes + (rem_bits ? 1 : 0); i < 16; ++i) masked[i] = 0;
  if (rem_bits) {
    uint8_t mask = static_cast<uint8_t>(0xFF << (8 - rem_bits));
    masked[full_bytes] &= mask;
  }
  network_ = addr.is_v4()
                 ? IpAddress::v4(masked[0], masked[1], masked[2], masked[3])
                 : IpAddress::v6(masked);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IpAddress::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  auto tail = text.substr(slash + 1);
  auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || ptr != tail.data() + tail.size()) return std::nullopt;
  if (len > (addr->is_v4() ? 32u : 128u)) return std::nullopt;
  return Prefix(*addr, static_cast<uint8_t>(len));
}

Prefix Prefix::privacy_prefix_of(const IpAddress& addr) {
  return Prefix(addr, addr.is_v4() ? 24 : 48);
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.family() != network_.family()) return false;
  return Prefix(addr, length_).network() == network_;
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace rootsim::util
