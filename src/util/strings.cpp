#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace rootsim::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace rootsim::util
