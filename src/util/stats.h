// Small statistics toolkit used by the analysis pipeline: summary statistics,
// percentiles, empirical CDFs (the paper plots complementary eCDFs in Fig. 3)
// and fixed-bin histograms (Fig. 4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rootsim::util {

/// Five-number-style summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Computes a Summary; returns a zeroed Summary for an empty sample.
Summary summarize(std::vector<double> values);

/// Linear-interpolated percentile of a sample, q in [0,1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean (0 for empty).
double mean(const std::vector<double>& values);

/// Sample standard deviation (0 for n < 2).
double stddev(const std::vector<double>& values);

/// An empirical CDF over double samples.
class Ecdf {
 public:
  explicit Ecdf(std::vector<double> samples);

  /// P[X <= x].
  double at(double x) const;
  /// Complementary eCDF, P[X > x] — the paper's Fig. 3 y-axis is 1 - prop(VPs).
  double complementary(double x) const { return 1.0 - at(x); }
  /// Inverse CDF (quantile), q in [0,1].
  double quantile(double q) const;
  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Histogram over integer-valued observations (e.g. reduced-redundancy counts
/// 0..12 in Fig. 4).
class IntHistogram {
 public:
  void add(int64_t value, uint64_t weight = 1);
  uint64_t count(int64_t value) const;
  uint64_t total() const { return total_; }
  double mean() const;
  int64_t min_value() const;
  int64_t max_value() const;
  const std::map<int64_t, uint64_t>& bins() const { return bins_; }

 private:
  std::map<int64_t, uint64_t> bins_;
  uint64_t total_ = 0;
};

/// Renders a histogram as rows of "value count bar" for terminal figures.
std::string render_histogram(const IntHistogram& h, size_t bar_width = 40);

}  // namespace rootsim::util
