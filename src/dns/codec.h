// Encoding/decoding of full resource records (owner, type, class, TTL,
// RDLENGTH, RDATA) to and from wire format (RFC 1035 §4.1.3).
//
// `canonical` mode implements RFC 4034 §6.2/6.3: owner and embedded names
// lower-cased and uncompressed — the form DNSSEC signatures and ZONEMD
// digests are computed over.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dns/rdata.h"
#include "dns/wire.h"

namespace rootsim::dns {

/// Appends one record. `compress` enables name compression in owner and
/// compressible RDATA names (NS/SOA/CNAME/MX/PTR per RFC 3597 §4).
void encode_record(WireWriter& writer, const ResourceRecord& rr,
                   bool compress = true);

/// Appends a record in DNSSEC canonical form (lower-case, no compression).
void encode_record_canonical(WireWriter& writer, const ResourceRecord& rr);

/// Encodes only the RDATA (no owner/type/class/ttl/rdlength); used for key
/// tags and digest computations. Canonical form when `canonical` is set.
std::vector<uint8_t> encode_rdata(const Rdata& rdata, bool canonical);

/// Reads one record at the reader's position. Returns nullopt on malformed
/// data (reader will be !ok()).
std::optional<ResourceRecord> decode_record(WireReader& reader);

/// Decodes RDATA of the given type from a span (no compression context, so
/// compressed pointers inside are rejected). Used for detached RDATA blobs.
std::optional<Rdata> decode_rdata(RRType type, std::span<const uint8_t> data);

}  // namespace rootsim::dns
