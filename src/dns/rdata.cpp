#include "dns/rdata.h"

#include "crypto/encoding.h"
#include "util/strings.h"

namespace rootsim::dns {

std::string rrtype_to_string(RRType type) {
  switch (type) {
    case RRType::A: return "A";
    case RRType::NS: return "NS";
    case RRType::CNAME: return "CNAME";
    case RRType::SOA: return "SOA";
    case RRType::PTR: return "PTR";
    case RRType::MX: return "MX";
    case RRType::TXT: return "TXT";
    case RRType::AAAA: return "AAAA";
    case RRType::OPT: return "OPT";
    case RRType::DS: return "DS";
    case RRType::RRSIG: return "RRSIG";
    case RRType::NSEC: return "NSEC";
    case RRType::DNSKEY: return "DNSKEY";
    case RRType::ZONEMD: return "ZONEMD";
    case RRType::AXFR: return "AXFR";
    case RRType::ANY: return "ANY";
  }
  return util::format("TYPE%u", static_cast<unsigned>(type));
}

RRType rrtype_from_string(std::string_view text) {
  std::string upper;
  for (char c : text)
    upper += (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  if (upper == "A") return RRType::A;
  if (upper == "NS") return RRType::NS;
  if (upper == "CNAME") return RRType::CNAME;
  if (upper == "SOA") return RRType::SOA;
  if (upper == "PTR") return RRType::PTR;
  if (upper == "MX") return RRType::MX;
  if (upper == "TXT") return RRType::TXT;
  if (upper == "AAAA") return RRType::AAAA;
  if (upper == "OPT") return RRType::OPT;
  if (upper == "DS") return RRType::DS;
  if (upper == "RRSIG") return RRType::RRSIG;
  if (upper == "NSEC") return RRType::NSEC;
  if (upper == "DNSKEY") return RRType::DNSKEY;
  if (upper == "ZONEMD") return RRType::ZONEMD;
  if (upper == "AXFR") return RRType::AXFR;
  return RRType::ANY;
}

std::string rrclass_to_string(RRClass rclass) {
  switch (rclass) {
    case RRClass::IN: return "IN";
    case RRClass::CH: return "CH";
    case RRClass::ANY: return "ANY";
  }
  return util::format("CLASS%u", static_cast<unsigned>(rclass));
}

uint16_t DnskeyData::key_tag() const {
  // RFC 4034 Appendix B: ones-complement-style sum over the RDATA.
  std::vector<uint8_t> rdata;
  rdata.push_back(static_cast<uint8_t>(flags >> 8));
  rdata.push_back(static_cast<uint8_t>(flags));
  rdata.push_back(protocol);
  rdata.push_back(algorithm);
  rdata.insert(rdata.end(), public_key.begin(), public_key.end());
  uint32_t acc = 0;
  for (size_t i = 0; i < rdata.size(); ++i)
    acc += (i & 1) ? rdata[i] : static_cast<uint32_t>(rdata[i]) << 8;
  acc += (acc >> 16) & 0xFFFF;
  return static_cast<uint16_t>(acc & 0xFFFF);
}

RRType rdata_type(const Rdata& rdata) {
  struct Visitor {
    RRType operator()(const SoaData&) const { return RRType::SOA; }
    RRType operator()(const NsData&) const { return RRType::NS; }
    RRType operator()(const CnameData&) const { return RRType::CNAME; }
    RRType operator()(const AData&) const { return RRType::A; }
    RRType operator()(const AaaaData&) const { return RRType::AAAA; }
    RRType operator()(const TxtData&) const { return RRType::TXT; }
    RRType operator()(const MxData&) const { return RRType::MX; }
    RRType operator()(const DsData&) const { return RRType::DS; }
    RRType operator()(const DnskeyData&) const { return RRType::DNSKEY; }
    RRType operator()(const RrsigData&) const { return RRType::RRSIG; }
    RRType operator()(const NsecData&) const { return RRType::NSEC; }
    RRType operator()(const ZonemdData&) const { return RRType::ZONEMD; }
    RRType operator()(const OptData&) const { return RRType::OPT; }
    RRType operator()(const GenericData& g) const {
      return static_cast<RRType>(g.type_code);
    }
  };
  return std::visit(Visitor{}, rdata);
}

namespace {

std::string quote_txt(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string rdata_to_string(const Rdata& rdata) {
  struct Visitor {
    std::string operator()(const SoaData& soa) const {
      return util::format("%s %s %u %u %u %u %u", soa.mname.to_string().c_str(),
                          soa.rname.to_string().c_str(), soa.serial, soa.refresh,
                          soa.retry, soa.expire, soa.minimum);
    }
    std::string operator()(const NsData& ns) const { return ns.nsdname.to_string(); }
    std::string operator()(const CnameData& c) const { return c.target.to_string(); }
    std::string operator()(const AData& a) const { return a.address.to_string(); }
    std::string operator()(const AaaaData& a) const { return a.address.to_string(); }
    std::string operator()(const TxtData& txt) const {
      std::vector<std::string> parts;
      parts.reserve(txt.strings.size());
      for (const auto& s : txt.strings) parts.push_back(quote_txt(s));
      return util::join(parts, " ");
    }
    std::string operator()(const MxData& mx) const {
      return util::format("%u %s", mx.preference, mx.exchange.to_string().c_str());
    }
    std::string operator()(const DsData& ds) const {
      return util::format("%u %u %u %s", ds.key_tag, ds.algorithm, ds.digest_type,
                          crypto::to_hex(ds.digest).c_str());
    }
    std::string operator()(const DnskeyData& key) const {
      return util::format("%u %u %u %s", key.flags, key.protocol, key.algorithm,
                          crypto::to_base64(key.public_key).c_str());
    }
    std::string operator()(const RrsigData& sig) const {
      return util::format("%s %u %u %u %u %u %u %s %s",
                          rrtype_to_string(sig.type_covered).c_str(), sig.algorithm,
                          sig.labels, sig.original_ttl, sig.expiration,
                          sig.inception, sig.key_tag,
                          sig.signer.to_string().c_str(),
                          crypto::to_base64(sig.signature).c_str());
    }
    std::string operator()(const NsecData& nsec) const {
      std::string out = nsec.next.to_string();
      for (RRType t : nsec.types) {
        out += ' ';
        out += rrtype_to_string(t);
      }
      return out;
    }
    std::string operator()(const ZonemdData& z) const {
      return util::format("%u %u %u %s", z.serial, z.scheme, z.hash_algorithm,
                          crypto::to_hex(z.digest).c_str());
    }
    std::string operator()(const OptData& opt) const {
      return util::format("; udp=%u do=%d", opt.udp_payload_size, opt.dnssec_ok);
    }
    std::string operator()(const GenericData& g) const {
      return util::format("\\# %zu %s", g.bytes.size(),
                          crypto::to_hex(g.bytes).c_str());
    }
  };
  return std::visit(Visitor{}, rdata);
}

std::string record_to_string(const ResourceRecord& rr) {
  return util::format("%s %u %s %s %s", rr.name.to_string().c_str(), rr.ttl,
                      rrclass_to_string(rr.rclass).c_str(),
                      rrtype_to_string(rr.type).c_str(),
                      rdata_to_string(rr.rdata).c_str());
}

}  // namespace rootsim::dns
