// DNS domain names (RFC 1035 §3.1).
//
// A name is a sequence of labels, each 1..63 octets, total wire length <= 255.
// Comparison is case-insensitive (RFC 1035 §2.3.3) and the canonical ordering
// of RFC 4034 §6.1 — right-to-left by label, case-folded — is what DNSSEC
// signing, NSEC chains and ZONEMD all sort by, so it lives here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rootsim::dns {

/// An absolute DNS name. The root is the empty label sequence.
class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Parses presentation format ("b.root-servers.net.", trailing dot
  /// optional, "." is the root). Supports \DDD and \X escapes. Returns
  /// nullopt for malformed input (label > 63 octets, name > 255 octets, ...).
  static std::optional<Name> parse(std::string_view text);

  /// Builds from raw labels (already unescaped octet strings).
  static std::optional<Name> from_labels(std::vector<std::string> labels);

  bool is_root() const { return labels_.empty(); }
  size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

  /// Octets on the wire: sum of (1 + label length) + 1 for the root octet.
  size_t wire_length() const;

  /// Presentation format with a trailing dot; "." for the root. Special
  /// characters are escaped as \DDD.
  std::string to_string() const;

  /// The name minus its leftmost label; the root if already root.
  Name parent() const;

  /// Prepends a label; returns nullopt if limits would be exceeded.
  std::optional<Name> child(std::string_view label) const;

  /// True if this name equals `ancestor` or is underneath it.
  bool is_subdomain_of(const Name& ancestor) const;

  /// Case-insensitive equality.
  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }

  /// RFC 4034 §6.1 canonical ordering: compare label sequences right to left,
  /// each label as case-folded octets. Returns <0, 0, >0.
  int canonical_compare(const Name& other) const;
  bool operator<(const Name& other) const { return canonical_compare(other) < 0; }

  /// Lower-cased copy (canonical form for signing).
  Name to_lower() const;

  /// Stable hash of the case-folded name (for unordered containers).
  uint64_t hash() const;

 private:
  std::vector<std::string> labels_;  // leftmost label first
};

struct NameHash {
  size_t operator()(const Name& name) const { return name.hash(); }
};

}  // namespace rootsim::dns
