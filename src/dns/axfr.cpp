#include "dns/axfr.h"

#include "util/strings.h"

namespace rootsim::dns {

std::vector<uint8_t> encode_axfr_stream(const std::vector<ResourceRecord>& records,
                                        const Question& question,
                                        const AxfrStreamOptions& options) {
  std::vector<uint8_t> stream;
  uint16_t message_id = options.first_message_id;
  size_t index = 0;
  bool first_message = true;
  while (index < records.size()) {
    Message msg;
    msg.id = message_id++;
    msg.qr = true;
    msg.aa = true;
    // Only the first message carries the question (RFC 5936 §2.2.1).
    if (first_message) msg.questions.push_back(question);
    first_message = false;
    // Greedily pack answers until the size budget is reached. Encoding is
    // re-done per candidate count; fine for simulation-scale zones.
    size_t count = 0;
    std::vector<uint8_t> wire;
    while (index + count < records.size()) {
      msg.answers.push_back(records[index + count]);
      std::vector<uint8_t> candidate = msg.encode();
      if (candidate.size() > options.max_message_bytes && count > 0) {
        msg.answers.pop_back();
        break;
      }
      wire = std::move(candidate);
      ++count;
      if (wire.size() > options.max_message_bytes) break;  // single huge RR
    }
    index += count;
    stream.push_back(static_cast<uint8_t>(wire.size() >> 8));
    stream.push_back(static_cast<uint8_t>(wire.size()));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  return stream;
}

AxfrParseResult decode_axfr_stream(std::span<const uint8_t> stream) {
  AxfrParseResult result;
  size_t offset = 0;
  while (offset < stream.size()) {
    if (offset + 2 > stream.size()) {
      result.error = "truncated length prefix";
      return result;
    }
    size_t length = static_cast<size_t>(stream[offset]) << 8 | stream[offset + 1];
    offset += 2;
    if (offset + length > stream.size()) {
      result.error = util::format("message %zu truncated (want %zu bytes)",
                                  result.message_count, length);
      return result;
    }
    auto message = Message::decode(stream.subspan(offset, length));
    offset += length;
    if (!message) {
      result.error = util::format("message %zu failed to parse",
                                  result.message_count);
      return result;
    }
    if (message->rcode != Rcode::NoError) {
      result.error = util::format("server returned %s",
                                  rcode_to_string(message->rcode).c_str());
      return result;
    }
    ++result.message_count;
    for (auto& rr : message->answers) result.records.push_back(std::move(rr));
  }
  if (result.records.size() < 2 ||
      result.records.front().type != RRType::SOA ||
      result.records.back().type != RRType::SOA) {
    result.error = "stream not SOA-delimited";
    return result;
  }
  return result;
}

}  // namespace rootsim::dns
