#include "dns/axfr.h"

#include <algorithm>

#include "util/strings.h"

namespace rootsim::dns {

std::vector<uint8_t> encode_axfr_stream(const std::vector<ResourceRecord>& records,
                                        const Question& question,
                                        const AxfrStreamOptions& options) {
  std::vector<uint8_t> stream;
  WireWriter writer;
  uint16_t message_id = options.first_message_id;
  size_t index = 0;
  bool first_message = true;
  // The 2-octet frame prefix caps a message at 65535 bytes no matter what
  // budget the caller asked for; exceeding it would silently truncate the
  // length and desynchronize the stream.
  const size_t budget = std::min<size_t>(options.max_message_bytes, 0xFFFF);
  while (index < records.size()) {
    writer.clear();
    writer.put_u16(message_id++);
    writer.put_u16(0x8400);  // QR + AA, opcode Query, rcode NoError
    writer.put_u16(first_message ? 1 : 0);
    size_t ancount_offset = writer.size();
    writer.put_u16(0);  // ANCOUNT, patched below
    writer.put_u16(0);  // NSCOUNT
    writer.put_u16(0);  // ARCOUNT
    // Only the first message carries the question (RFC 5936 §2.2.1).
    if (first_message) {
      writer.put_name(question.qname);
      writer.put_u16(static_cast<uint16_t>(question.qtype));
      writer.put_u16(static_cast<uint16_t>(question.qclass));
    }
    first_message = false;
    // Greedily pack answers until the size budget is reached, rolling back
    // the record that overflowed — one incremental encode per record instead
    // of a full message re-encode per candidate count.
    size_t count = 0;
    while (index + count < records.size()) {
      size_t checkpoint = writer.size();
      encode_record(writer, records[index + count]);
      if (writer.size() > budget && count > 0) {
        writer.truncate(checkpoint);
        break;
      }
      ++count;
      if (writer.size() > budget) break;  // single huge RR
    }
    // A single record can exceed even the 64 KiB frame limit (a ~64 KiB RDATA
    // plus owner/shell overhead). There is no valid framing for it, so fail
    // the whole encode rather than emit a stream that desynchronizes at the
    // wrapped length prefix; an empty stream never decodes as a valid
    // transfer (no SOA delimiters).
    if (writer.size() > 0xFFFF) return {};
    writer.patch_u16(ancount_offset, static_cast<uint16_t>(count));
    index += count;
    stream.push_back(static_cast<uint8_t>(writer.size() >> 8));
    stream.push_back(static_cast<uint8_t>(writer.size()));
    stream.insert(stream.end(), writer.data().begin(), writer.data().end());
  }
  return stream;
}

AxfrParseResult decode_axfr_stream(std::span<const uint8_t> stream) {
  AxfrParseResult result;
  size_t offset = 0;
  while (offset < stream.size()) {
    if (offset + 2 > stream.size()) {
      result.error = "truncated length prefix";
      return result;
    }
    size_t length = static_cast<size_t>(stream[offset]) << 8 | stream[offset + 1];
    offset += 2;
    if (offset + length > stream.size()) {
      result.error = util::format("message %zu truncated (want %zu bytes)",
                                  result.message_count, length);
      return result;
    }
    auto message = Message::decode(stream.subspan(offset, length));
    offset += length;
    if (!message) {
      result.error = util::format("message %zu failed to parse",
                                  result.message_count);
      return result;
    }
    if (message->rcode != Rcode::NoError) {
      result.error = util::format("server returned %s",
                                  rcode_to_string(message->rcode).c_str());
      return result;
    }
    ++result.message_count;
    for (auto& rr : message->answers) result.records.push_back(std::move(rr));
  }
  if (result.records.size() < 2 ||
      result.records.front().type != RRType::SOA ||
      result.records.back().type != RRType::SOA) {
    result.error = "stream not SOA-delimited";
    return result;
  }
  return result;
}

}  // namespace rootsim::dns
