// AXFR on the wire (RFC 5936) over a simulated TCP stream.
//
// A zone transfer is a TCP byte stream of 2-byte-length-prefixed DNS
// messages; the server packs as many answer RRs per message as fit a
// configurable size budget. This module provides both directions:
// serializing a record stream into the framed byte stream, and parsing a
// received stream back into records — the path on which a single flipped
// byte becomes a hard parse error or a bad signature, depending on where it
// lands.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.h"

namespace rootsim::dns {

struct AxfrStreamOptions {
  /// Maximum wire size per DNS message (RFC 5936 recommends filling
  /// messages; real servers use ~16-64 KiB over TCP). Clamped to 65535, the
  /// most a 2-octet frame prefix can describe.
  size_t max_message_bytes = 16 * 1024;
  uint16_t first_message_id = 1;
};

/// Serializes an AXFR record stream (SOA ... SOA) into a framed TCP stream:
/// each message is prefixed by its 2-octet length (RFC 1035 §4.2.2).
/// Returns an empty stream if any single record cannot fit a 64 KiB frame —
/// there is no valid framing for it, and an empty stream always fails
/// decode_axfr_stream, so the error cannot be mistaken for a transfer.
std::vector<uint8_t> encode_axfr_stream(const std::vector<ResourceRecord>& records,
                                        const Question& question,
                                        const AxfrStreamOptions& options = {});

/// Result of parsing a framed stream.
struct AxfrParseResult {
  std::vector<ResourceRecord> records;
  size_t message_count = 0;
  /// Set when the stream is malformed (bad framing, bad message, rcode != 0,
  /// missing terminal SOA). `records` holds what was salvaged.
  std::optional<std::string> error;

  bool ok() const { return !error.has_value(); }
};

/// Parses a framed AXFR stream back into records. Validates framing, message
/// syntax, and SOA-first/SOA-last structure.
AxfrParseResult decode_axfr_stream(std::span<const uint8_t> stream);

}  // namespace rootsim::dns
