#include "dns/name.h"

#include "util/rng.h"

namespace rootsim::dns {

namespace {

constexpr size_t kMaxLabelLength = 63;
constexpr size_t kMaxNameWireLength = 255;

char fold(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool needs_escape(char c) {
  return c == '.' || c == '\\' || static_cast<uint8_t>(c) < 0x21 ||
         static_cast<uint8_t>(c) > 0x7e;
}

}  // namespace

std::optional<Name> Name::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name();
  std::vector<std::string> labels;
  std::string current;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) return std::nullopt;
      char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size()) return std::nullopt;
        int value = 0;
        for (int k = 1; k <= 3; ++k) {
          char d = text[i + static_cast<size_t>(k)];
          if (d < '0' || d > '9') return std::nullopt;
          value = value * 10 + (d - '0');
        }
        if (value > 255) return std::nullopt;
        current += static_cast<char>(value);
        i += 4;
      } else {
        current += next;
        i += 2;
      }
      continue;
    }
    if (c == '.') {
      if (current.empty()) return std::nullopt;  // empty label ("a..b")
      labels.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (!current.empty()) labels.push_back(std::move(current));
  return from_labels(std::move(labels));
}

std::optional<Name> Name::from_labels(std::vector<std::string> labels) {
  size_t wire = 1;
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    wire += 1 + label.size();
  }
  if (wire > kMaxNameWireLength) return std::nullopt;
  Name name;
  name.labels_ = std::move(labels);
  return name;
}

size_t Name::wire_length() const {
  size_t length = 1;
  for (const auto& label : labels_) length += 1 + label.size();
  return length;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    for (char c : label) {
      if (needs_escape(c)) {
        if (c == '.' || c == '\\') {
          out += '\\';
          out += c;
        } else {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\%03u", static_cast<uint8_t>(c));
          out += buf;
        }
      } else {
        out += c;
      }
    }
    out += '.';
  }
  return out;
}

Name Name::parent() const {
  Name out;
  if (labels_.size() > 1)
    out.labels_.assign(labels_.begin() + 1, labels_.end());
  return out;
}

std::optional<Name> Name::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  size_t offset = labels_.size() - ancestor.labels_.size();
  for (size_t i = 0; i < ancestor.labels_.size(); ++i) {
    const std::string& mine = labels_[offset + i];
    const std::string& theirs = ancestor.labels_[i];
    if (mine.size() != theirs.size()) return false;
    for (size_t k = 0; k < mine.size(); ++k)
      if (fold(mine[k]) != fold(theirs[k])) return false;
  }
  return true;
}

bool Name::operator==(const Name& other) const {
  return labels_.size() == other.labels_.size() && is_subdomain_of(other);
}

int Name::canonical_compare(const Name& other) const {
  size_t n = std::min(labels_.size(), other.labels_.size());
  for (size_t i = 1; i <= n; ++i) {
    const std::string& a = labels_[labels_.size() - i];
    const std::string& b = other.labels_[other.labels_.size() - i];
    size_t m = std::min(a.size(), b.size());
    for (size_t k = 0; k < m; ++k) {
      uint8_t ca = static_cast<uint8_t>(fold(a[k]));
      uint8_t cb = static_cast<uint8_t>(fold(b[k]));
      if (ca != cb) return ca < cb ? -1 : 1;
    }
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  }
  if (labels_.size() != other.labels_.size())
    return labels_.size() < other.labels_.size() ? -1 : 1;
  return 0;
}

Name Name::to_lower() const {
  Name out = *this;
  for (auto& label : out.labels_)
    for (auto& c : label) c = fold(c);
  return out;
}

uint64_t Name::hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& label : labels_) {
    for (char c : label) {
      h ^= static_cast<uint8_t>(fold(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // label separator, distinguishes {"ab","c"} from {"a","bc"}
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rootsim::dns
