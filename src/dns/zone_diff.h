// Zone diffing: which records were added/removed between two zone copies.
//
// Used for (a) rendering the Fig. 10 intact-vs-received bitflip comparison,
// (b) watching what a zone edit actually changed (the b.root renumbering
// flips exactly the two address records and the affected DNSSEC material),
// and (c) debugging transfer corruption in general.
#pragma once

#include <string>
#include <vector>

#include "dns/zone.h"

namespace rootsim::dns {

struct ZoneDiff {
  std::vector<ResourceRecord> added;    // in `after`, not in `before`
  std::vector<ResourceRecord> removed;  // in `before`, not in `after`

  bool empty() const { return added.empty() && removed.empty(); }
  size_t size() const { return added.size() + removed.size(); }

  /// The diff that undoes this one (added and removed swapped). Applying a
  /// diff and then its inverse returns a zone to its starting state.
  ZoneDiff inverse() const;

  /// Unified-diff-style rendering ("+ rr", "- rr"), canonical order.
  std::string to_string(size_t max_lines = 50) const;
};

/// Computes the record-level difference between two zones.
ZoneDiff diff_zones(const Zone& before, const Zone& after);

/// Applies a diff in place: removes `removed`, adds `added`. Returns false
/// (leaving the zone partially updated) if any removed record was absent —
/// the diff was computed against a different zone state. `diff_zones(a, b)`
/// applied to `a` always succeeds and yields `b`.
bool apply_diff(Zone& zone, const ZoneDiff& diff);

/// Same, over raw record vectors (e.g. two AXFR payloads).
ZoneDiff diff_records(const std::vector<ResourceRecord>& before,
                      const std::vector<ResourceRecord>& after);

}  // namespace rootsim::dns
