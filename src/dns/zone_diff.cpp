#include "dns/zone_diff.h"

#include <algorithm>

#include "dns/codec.h"
#include "dns/wire.h"

namespace rootsim::dns {

namespace {

// Canonical wire form as a sortable/comparable key.
std::vector<uint8_t> record_key(const ResourceRecord& rr) {
  WireWriter writer;
  encode_record_canonical(writer, rr);
  return writer.take();
}

std::vector<std::pair<std::vector<uint8_t>, const ResourceRecord*>> keyed(
    const std::vector<ResourceRecord>& records) {
  std::vector<std::pair<std::vector<uint8_t>, const ResourceRecord*>> out;
  out.reserve(records.size());
  for (const auto& rr : records) out.emplace_back(record_key(rr), &rr);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace

ZoneDiff diff_records(const std::vector<ResourceRecord>& before,
                      const std::vector<ResourceRecord>& after) {
  ZoneDiff diff;
  auto b = keyed(before);
  auto a = keyed(after);
  size_t i = 0, j = 0;
  while (i < b.size() || j < a.size()) {
    if (i >= b.size()) {
      diff.added.push_back(*a[j++].second);
    } else if (j >= a.size()) {
      diff.removed.push_back(*b[i++].second);
    } else if (b[i].first == a[j].first) {
      ++i;
      ++j;
    } else if (b[i].first < a[j].first) {
      diff.removed.push_back(*b[i++].second);
    } else {
      diff.added.push_back(*a[j++].second);
    }
  }
  return diff;
}

ZoneDiff diff_zones(const Zone& before, const Zone& after) {
  auto flatten = [](const Zone& zone) {
    std::vector<ResourceRecord> records;
    for (const RRset* set : zone.rrsets())
      for (const auto& rr : set->to_records()) records.push_back(rr);
    return records;
  };
  return diff_records(flatten(before), flatten(after));
}

ZoneDiff ZoneDiff::inverse() const {
  ZoneDiff out;
  out.added = removed;
  out.removed = added;
  return out;
}

bool apply_diff(Zone& zone, const ZoneDiff& diff) {
  bool complete = true;
  for (const auto& rr : diff.removed) complete &= zone.remove(rr);
  for (const auto& rr : diff.added) zone.add(rr);
  return complete;
}

std::string ZoneDiff::to_string(size_t max_lines) const {
  std::string out;
  size_t lines = 0;
  for (const auto& rr : removed) {
    if (lines++ >= max_lines) break;
    out += "- " + record_to_string(rr) + "\n";
  }
  for (const auto& rr : added) {
    if (lines++ >= max_lines) break;
    out += "+ " + record_to_string(rr) + "\n";
  }
  if (lines >= max_lines && size() > max_lines)
    out += "... (" + std::to_string(size() - max_lines) + " more)\n";
  return out;
}

}  // namespace rootsim::dns
