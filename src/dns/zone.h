// A DNS zone: RRsets keyed by (owner, type), plus master-file I/O and AXFR
// framing (RFC 1035 §5, RFC 5936).
//
// The root zone we simulate carries the same structural elements as the real
// one: the apex SOA/NS/DNSKEY/NSEC/ZONEMD set, per-TLD NS delegations with
// glue, DS records, and RRSIGs over every authoritative RRset.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/rdata.h"

namespace rootsim::dns {

/// An RRset: all records sharing owner, type and class.
struct RRset {
  Name name;
  RRType type = RRType::A;
  RRClass rclass = RRClass::IN;
  uint32_t ttl = 0;
  std::vector<Rdata> rdatas;

  bool empty() const { return rdatas.empty(); }
  std::vector<ResourceRecord> to_records() const;
  // Rdata order within an RRset carries no meaning (RFC 2181 §5), so two
  // RRsets are equal iff they hold the same rdatas as a multiset. A defaulted
  // (ordered) comparison would call zones rebuilt from a sorted diff unequal
  // to their originals.
  bool operator==(const RRset& other) const;
};

/// Zone container. Records are stored grouped into RRsets and iterated in
/// canonical (RFC 4034 §6.1) owner order, which is the order ZONEMD hashing
/// and NSEC chain construction require.
class Zone {
 public:
  explicit Zone(Name origin = Name()) : origin_(std::move(origin)) {}

  const Name& origin() const { return origin_; }

  /// Adds one record, merging into the existing RRset (TTL of the first
  /// record wins, duplicate rdata is dropped — RFC 2181 §5).
  void add(const ResourceRecord& rr);

  /// Removes the RRset with this owner and type. Returns true if removed.
  bool remove_rrset(const Name& name, RRType type);

  /// Removes one record (matching rdata) from its RRset, erasing the RRset
  /// when its last record goes. Returns false if the record was not present.
  bool remove(const ResourceRecord& rr);

  /// Looks up an RRset; nullptr if absent.
  const RRset* find(const Name& name, RRType type) const;

  /// All RRsets in canonical order.
  std::vector<const RRset*> rrsets() const;
  /// All RRsets with the given owner.
  std::vector<const RRset*> rrsets_at(const Name& name) const;

  /// The apex SOA, if present.
  std::optional<SoaData> soa() const;
  uint32_t serial() const;

  size_t rrset_count() const { return sets_.size(); }
  size_t record_count() const;

  /// True if the name exists in the zone or is a delegation owner.
  bool contains_name(const Name& name) const;

  /// Names that have authoritative data, in canonical order (for NSEC).
  std::vector<Name> authoritative_names() const;

  /// AXFR stream framing: SOA first, then all other records, SOA again.
  std::vector<ResourceRecord> axfr_records() const;

  /// Parses an AXFR stream back into a zone: first and last record must be
  /// the same SOA. Returns nullopt if framing is broken.
  static std::optional<Zone> from_axfr(const std::vector<ResourceRecord>& records,
                                       const Name& origin);

  /// Master-file rendering (one canonical-order record per line).
  std::string to_master_file() const;

  /// Master-file parsing. Supports $ORIGIN/$TTL, relative names, comments,
  /// and the record types in rdata.h. Returns nullopt with a diagnostic in
  /// `error` (if non-null) on malformed input.
  static std::optional<Zone> parse_master_file(std::string_view text,
                                               std::string* error = nullptr);

  bool operator==(const Zone& other) const { return sets_ == other.sets_; }

 private:
  struct Key {
    Name name;
    RRType type;
    bool operator<(const Key& other) const {
      int c = name.canonical_compare(other.name);
      if (c != 0) return c < 0;
      return static_cast<uint16_t>(type) < static_cast<uint16_t>(other.type);
    }
    bool operator==(const Key& other) const {
      return name == other.name && type == other.type;
    }
  };
  Name origin_;
  std::map<Key, RRset> sets_;
};

}  // namespace rootsim::dns
