// Resource record types and typed RDATA (RFC 1035, 4034, 8976).
//
// Covers exactly the types the root zone and the paper's measurement use:
// SOA/NS/A/AAAA/TXT for queries and delegations, DS/DNSKEY/RRSIG/NSEC for
// DNSSEC, ZONEMD (type 63) for the RFC 8976 roll-out under study, OPT for
// EDNS, plus a raw fallback so unknown types round-trip unharmed (RFC 3597).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "util/ip.h"

namespace rootsim::dns {

/// Record type (subset + RFC 3597 fallback for the rest).
enum class RRType : uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  OPT = 41,
  DS = 43,
  RRSIG = 46,
  NSEC = 47,
  DNSKEY = 48,
  ZONEMD = 63,
  AXFR = 252,
  ANY = 255,
};

/// Class: IN for everything except the CHAOS-class identity queries
/// (hostname.bind / id.server / version.bind / version.server) the
/// measurement script sends to identify anycast instances.
enum class RRClass : uint16_t {
  IN = 1,
  CH = 3,
  ANY = 255,
};

std::string rrtype_to_string(RRType type);
RRType rrtype_from_string(std::string_view text);  // returns ANY on unknown
std::string rrclass_to_string(RRClass rclass);

struct SoaData {
  Name mname;
  Name rname;
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;
  bool operator==(const SoaData&) const = default;
};

struct NsData {
  Name nsdname;
  bool operator==(const NsData&) const = default;
};

struct CnameData {
  Name target;
  bool operator==(const CnameData&) const = default;
};

struct AData {
  util::IpAddress address;  // must be IPv4
  bool operator==(const AData&) const = default;
};

struct AaaaData {
  util::IpAddress address;  // must be IPv6
  bool operator==(const AaaaData&) const = default;
};

struct TxtData {
  std::vector<std::string> strings;  // each <= 255 octets
  bool operator==(const TxtData&) const = default;
};

struct MxData {
  uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxData&) const = default;
};

struct DsData {
  uint16_t key_tag = 0;
  uint8_t algorithm = 0;
  uint8_t digest_type = 0;
  std::vector<uint8_t> digest;
  bool operator==(const DsData&) const = default;
};

struct DnskeyData {
  uint16_t flags = 0;  // 256 = ZSK, 257 = KSK (SEP bit)
  uint8_t protocol = 3;
  uint8_t algorithm = 0;  // 8 = RSASHA256, 10 = RSASHA512
  std::vector<uint8_t> public_key;

  /// RFC 4034 Appendix B key tag over the wire-format RDATA.
  uint16_t key_tag() const;
  bool is_ksk() const { return flags & 0x0001; }  // SEP bit
  bool operator==(const DnskeyData&) const = default;
};

struct RrsigData {
  RRType type_covered = RRType::A;
  uint8_t algorithm = 0;
  uint8_t labels = 0;
  uint32_t original_ttl = 0;
  uint32_t expiration = 0;  // 32-bit POSIX time (RFC 4034 §3.1.5)
  uint32_t inception = 0;
  uint16_t key_tag = 0;
  Name signer;
  std::vector<uint8_t> signature;
  bool operator==(const RrsigData&) const = default;
};

struct NsecData {
  Name next;
  std::vector<RRType> types;  // sorted ascending, deduplicated
  bool operator==(const NsecData&) const = default;
};

/// RFC 8976. scheme 1 = SIMPLE; hash 1 = SHA-384, 2 = SHA-512. The paper also
/// observes the roll-out's first phase using a private-use hash algorithm
/// (240..255 range), which we model as `kPrivateHashAlgorithm`.
struct ZonemdData {
  uint32_t serial = 0;
  uint8_t scheme = 1;
  uint8_t hash_algorithm = 1;
  std::vector<uint8_t> digest;

  static constexpr uint8_t kSchemeSimple = 1;
  static constexpr uint8_t kHashSha384 = 1;
  static constexpr uint8_t kHashSha512 = 2;
  static constexpr uint8_t kPrivateHashAlgorithm = 240;
  bool operator==(const ZonemdData&) const = default;
};

struct OptData {
  uint16_t udp_payload_size = 1232;
  uint8_t extended_rcode = 0;
  uint8_t version = 0;
  bool dnssec_ok = false;
  bool operator==(const OptData&) const = default;
};

/// RFC 3597 opaque RDATA for types we do not model.
struct GenericData {
  uint16_t type_code = 0;
  std::vector<uint8_t> bytes;
  bool operator==(const GenericData&) const = default;
};

using Rdata = std::variant<SoaData, NsData, CnameData, AData, AaaaData, TxtData,
                           MxData, DsData, DnskeyData, RrsigData, NsecData,
                           ZonemdData, OptData, GenericData>;

/// The RRType a given Rdata value encodes as.
RRType rdata_type(const Rdata& rdata);

/// A full resource record.
struct ResourceRecord {
  Name name;
  RRType type = RRType::A;
  RRClass rclass = RRClass::IN;
  uint32_t ttl = 0;
  Rdata rdata;

  bool operator==(const ResourceRecord&) const = default;
};

/// Presentation format of the RDATA portion (zone-file right-hand side).
std::string rdata_to_string(const Rdata& rdata);

/// Full presentation line: "name ttl class type rdata".
std::string record_to_string(const ResourceRecord& rr);

}  // namespace rootsim::dns
