#include "dns/wire.h"

#include "util/strings.h"

namespace rootsim::dns {

void WireWriter::put_u8(uint8_t value) { buffer_.push_back(value); }

void WireWriter::put_u16(uint16_t value) {
  buffer_.push_back(static_cast<uint8_t>(value >> 8));
  buffer_.push_back(static_cast<uint8_t>(value));
}

void WireWriter::put_u32(uint32_t value) {
  put_u16(static_cast<uint16_t>(value >> 16));
  put_u16(static_cast<uint16_t>(value));
}

void WireWriter::put_bytes(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

namespace {

inline char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32) : c;
}

// FNV-1a over the case-folded suffix labels[first..], with the label length
// as a separator so ("ab","c") and ("a","bc") hash apart.
uint64_t suffix_hash(const std::vector<std::string>& labels, size_t first) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = first; i < labels.size(); ++i) {
    h = (h ^ labels[i].size()) * 0x100000001b3ULL;
    for (char c : labels[i])
      h = (h ^ static_cast<uint8_t>(ascii_lower(c))) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool WireWriter::name_at_equals(size_t offset,
                                const std::vector<std::string>& labels,
                                size_t first) const {
  size_t pos = offset;
  size_t jumps = 0;
  for (size_t i = first;; ++i) {
    // Chase pointers (always backwards in data we wrote ourselves).
    while (pos < buffer_.size() && (buffer_[pos] & 0xC0) == 0xC0) {
      if (pos + 1 >= buffer_.size() || ++jumps > 64) return false;
      pos = static_cast<size_t>(buffer_[pos] & 0x3F) << 8 | buffer_[pos + 1];
    }
    if (pos >= buffer_.size()) return false;
    uint8_t len = buffer_[pos];
    if (i == labels.size()) return len == 0;
    if (len != labels[i].size() || pos + 1 + len > buffer_.size()) return false;
    for (size_t k = 0; k < len; ++k)
      if (ascii_lower(static_cast<char>(buffer_[pos + 1 + k])) !=
          ascii_lower(labels[i][k]))
        return false;
    pos += 1 + static_cast<size_t>(len);
  }
}

void WireWriter::put_name(const Name& name, bool compress) {
  // Try to compress each suffix in turn: "f.root-servers.net." checks
  // "f.root-servers.net.", then "root-servers.net.", then "net.".
  const auto& labels = name.labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    if (compress) {
      uint64_t h = suffix_hash(labels, i);
      size_t slot = h & (kTableSize - 1);
      bool compressed = false;
      while (offset_plus_1_[slot] != 0) {
        if (hashes_[slot] == h) {
          size_t offset = static_cast<size_t>(offset_plus_1_[slot]) - 1;
          if (name_at_equals(offset, labels, i)) {
            put_u16(static_cast<uint16_t>(0xC000 | offset));
            compressed = true;
            break;
          }
        }
        slot = (slot + 1) & (kTableSize - 1);
      }
      if (compressed) return;
      if (buffer_.size() < 0x4000 && entries_ < kMaxEntries &&
          offset_plus_1_[slot] == 0) {
        hashes_[slot] = h;
        offset_plus_1_[slot] = static_cast<uint16_t>(buffer_.size() + 1);
        ++entries_;
      }
    }
    put_u8(static_cast<uint8_t>(labels[i].size()));
    put_bytes({reinterpret_cast<const uint8_t*>(labels[i].data()), labels[i].size()});
  }
  put_u8(0);
}

void WireWriter::clear() {
  buffer_.clear();
  if (entries_ != 0) {
    offset_plus_1_.fill(0);
    entries_ = 0;
  }
}

void WireWriter::truncate(size_t size) {
  if (size < buffer_.size()) buffer_.resize(size);
}

void WireWriter::put_name_canonical(const Name& name) {
  put_name(name.to_lower(), /*compress=*/false);
}

void WireWriter::patch_u16(size_t offset, uint16_t value) {
  buffer_[offset] = static_cast<uint8_t>(value >> 8);
  buffer_[offset + 1] = static_cast<uint8_t>(value);
}

uint8_t WireReader::get_u8() {
  if (!ok_ || offset_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[offset_++];
}

uint16_t WireReader::get_u16() {
  uint16_t hi = get_u8();
  uint16_t lo = get_u8();
  return static_cast<uint16_t>(hi << 8 | lo);
}

uint32_t WireReader::get_u32() {
  uint32_t hi = get_u16();
  uint32_t lo = get_u16();
  return hi << 16 | lo;
}

std::vector<uint8_t> WireReader::get_bytes(size_t count) {
  // `count > size - offset` rather than `offset + count > size`: the latter
  // wraps when a caller derives `count` from untrusted arithmetic (e.g. an
  // RDATA length smaller than the fields already consumed) and would accept
  // a huge count whose sum happens to land back inside the buffer.
  if (!ok_ || count > data_.size() - offset_) {
    ok_ = false;
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<long>(offset_),
                           data_.begin() + static_cast<long>(offset_ + count));
  offset_ += count;
  return out;
}

Name WireReader::get_name() {
  std::vector<std::string> labels;
  size_t cursor = offset_;
  bool jumped = false;
  size_t jumps = 0;
  size_t wire_length = 1;  // terminal root octet
  size_t after_first_pointer = 0;
  while (true) {
    if (!ok_ || cursor >= data_.size()) {
      ok_ = false;
      return Name();
    }
    uint8_t len = data_[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= data_.size() || ++jumps > kMaxPointerHops) {
        ok_ = false;
        return Name();
      }
      size_t target = static_cast<size_t>(len & 0x3F) << 8 | data_[cursor + 1];
      if (target >= cursor) {  // forward/self pointers are malformed
        ok_ = false;
        return Name();
      }
      if (!jumped) after_first_pointer = cursor + 2;
      jumped = true;
      cursor = target;
      continue;
    }
    if ((len & 0xC0) != 0) {  // reserved label types
      ok_ = false;
      return Name();
    }
    if (len == 0) {
      ++cursor;
      break;
    }
    if (cursor + 1 + len > data_.size()) {
      ok_ = false;
      return Name();
    }
    // Enforce the 255-octet name limit as labels accumulate rather than after
    // the fact: a pointer-dense message can otherwise make us collect tens of
    // kilobytes of labels that Name::from_labels would reject anyway.
    wire_length += 1 + static_cast<size_t>(len);
    if (wire_length > 255) {
      ok_ = false;
      return Name();
    }
    labels.emplace_back(reinterpret_cast<const char*>(data_.data() + cursor + 1), len);
    cursor += 1 + static_cast<size_t>(len);
  }
  offset_ = jumped ? after_first_pointer : cursor;
  auto name = Name::from_labels(std::move(labels));
  if (!name) {
    ok_ = false;
    return Name();
  }
  return *name;
}

void WireReader::seek(size_t offset) {
  if (offset > data_.size()) {
    ok_ = false;
    return;
  }
  offset_ = offset;
}

void WireReader::skip(size_t count) {
  if (!ok_ || count > data_.size() - offset_) {  // overflow-safe, see get_bytes
    ok_ = false;
    return;
  }
  offset_ += count;
}

}  // namespace rootsim::dns
