#include "dns/wire.h"

#include "util/strings.h"

namespace rootsim::dns {

void WireWriter::put_u8(uint8_t value) { buffer_.push_back(value); }

void WireWriter::put_u16(uint16_t value) {
  buffer_.push_back(static_cast<uint8_t>(value >> 8));
  buffer_.push_back(static_cast<uint8_t>(value));
}

void WireWriter::put_u32(uint32_t value) {
  put_u16(static_cast<uint16_t>(value >> 16));
  put_u16(static_cast<uint16_t>(value));
}

void WireWriter::put_bytes(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void WireWriter::put_name(const Name& name, bool compress) {
  // Try to compress each suffix in turn: "f.root-servers.net." checks
  // "f.root-servers.net.", then "root-servers.net.", then "net.".
  const auto& labels = name.labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    if (compress) {
      // Key suffixes case-folded: compression must be case-insensitive.
      std::string key;
      for (size_t k = i; k < labels.size(); ++k) {
        key += util::to_lower(labels[k]);
        key += '.';
      }
      auto it = compression_offsets_.find(key);
      if (it != compression_offsets_.end()) {
        put_u16(static_cast<uint16_t>(0xC000 | it->second));
        return;
      }
      if (buffer_.size() < 0x4000)
        compression_offsets_.emplace(std::move(key),
                                     static_cast<uint16_t>(buffer_.size()));
    }
    put_u8(static_cast<uint8_t>(labels[i].size()));
    put_bytes({reinterpret_cast<const uint8_t*>(labels[i].data()), labels[i].size()});
  }
  put_u8(0);
}

void WireWriter::put_name_canonical(const Name& name) {
  put_name(name.to_lower(), /*compress=*/false);
}

void WireWriter::patch_u16(size_t offset, uint16_t value) {
  buffer_[offset] = static_cast<uint8_t>(value >> 8);
  buffer_[offset + 1] = static_cast<uint8_t>(value);
}

uint8_t WireReader::get_u8() {
  if (!ok_ || offset_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[offset_++];
}

uint16_t WireReader::get_u16() {
  uint16_t hi = get_u8();
  uint16_t lo = get_u8();
  return static_cast<uint16_t>(hi << 8 | lo);
}

uint32_t WireReader::get_u32() {
  uint32_t hi = get_u16();
  uint32_t lo = get_u16();
  return hi << 16 | lo;
}

std::vector<uint8_t> WireReader::get_bytes(size_t count) {
  if (!ok_ || offset_ + count > data_.size()) {
    ok_ = false;
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<long>(offset_),
                           data_.begin() + static_cast<long>(offset_ + count));
  offset_ += count;
  return out;
}

Name WireReader::get_name() {
  std::vector<std::string> labels;
  size_t cursor = offset_;
  bool jumped = false;
  size_t jumps = 0;
  size_t after_first_pointer = 0;
  while (true) {
    if (!ok_ || cursor >= data_.size()) {
      ok_ = false;
      return Name();
    }
    uint8_t len = data_[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= data_.size() || ++jumps > 64) {
        ok_ = false;
        return Name();
      }
      size_t target = static_cast<size_t>(len & 0x3F) << 8 | data_[cursor + 1];
      if (target >= cursor) {  // forward/self pointers are malformed
        ok_ = false;
        return Name();
      }
      if (!jumped) after_first_pointer = cursor + 2;
      jumped = true;
      cursor = target;
      continue;
    }
    if ((len & 0xC0) != 0) {  // reserved label types
      ok_ = false;
      return Name();
    }
    if (len == 0) {
      ++cursor;
      break;
    }
    if (cursor + 1 + len > data_.size()) {
      ok_ = false;
      return Name();
    }
    labels.emplace_back(reinterpret_cast<const char*>(data_.data() + cursor + 1), len);
    cursor += 1 + static_cast<size_t>(len);
  }
  offset_ = jumped ? after_first_pointer : cursor;
  auto name = Name::from_labels(std::move(labels));
  if (!name) {
    ok_ = false;
    return Name();
  }
  return *name;
}

void WireReader::seek(size_t offset) {
  if (offset > data_.size()) {
    ok_ = false;
    return;
  }
  offset_ = offset;
}

void WireReader::skip(size_t count) {
  if (!ok_ || offset_ + count > data_.size()) {
    ok_ = false;
    return;
  }
  offset_ += count;
}

}  // namespace rootsim::dns
