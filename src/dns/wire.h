// DNS wire-format primitives (RFC 1035 §4.1): big-endian integer fields, name
// encoding with message compression, and bounds-checked reading.
//
// WireReader is deliberately forgiving in what it reports (an `ok()` flag
// rather than exceptions) because the measurement pipeline must parse the
// corrupted AXFR payloads our fault injector produces — a parse failure is a
// *result*, not an error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"

namespace rootsim::dns {

/// Serializes DNS wire data. Compression is opt-in per name so the same
/// writer serves messages (compression allowed) and DNSSEC canonical form
/// (compression and case folding forbidden).
class WireWriter {
 public:
  void put_u8(uint8_t value);
  void put_u16(uint16_t value);
  void put_u32(uint32_t value);
  void put_bytes(std::span<const uint8_t> bytes);

  /// Writes a name, compressing against earlier names if `compress` is true
  /// and a suffix match exists at an offset < 0x4000.
  void put_name(const Name& name, bool compress = true);

  /// Writes a name in DNSSEC canonical form: uncompressed, lower-cased.
  void put_name_canonical(const Name& name);

  /// Patches a previously written u16 (used for RDLENGTH back-filling).
  void patch_u16(size_t offset, uint16_t value);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& data() const { return buffer_; }
  std::vector<uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
  std::unordered_map<std::string, uint16_t> compression_offsets_;
};

/// Bounds-checked reader with compression-pointer chasing.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t get_u8();
  uint16_t get_u16();
  uint32_t get_u32();
  std::vector<uint8_t> get_bytes(size_t count);

  /// Reads a possibly-compressed name. Guards against pointer loops and
  /// forward pointers (compression targets must point backwards).
  Name get_name();

  /// True while no read has overrun or hit malformed data.
  bool ok() const { return ok_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }
  void seek(size_t offset);
  void skip(size_t count);

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace rootsim::dns
