// DNS wire-format primitives (RFC 1035 §4.1): big-endian integer fields, name
// encoding with message compression, and bounds-checked reading.
//
// WireReader is deliberately forgiving in what it reports (an `ok()` flag
// rather than exceptions) because the measurement pipeline must parse the
// corrupted AXFR payloads our fault injector produces — a parse failure is a
// *result*, not an error.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"

namespace rootsim::dns {

/// Serializes DNS wire data. Compression is opt-in per name so the same
/// writer serves messages (compression allowed) and DNSSEC canonical form
/// (compression and case folding forbidden).
///
/// The compression dictionary is an open-addressed (hash, offset) table over
/// the bytes already written — no per-suffix string keys, so a cleared
/// writer re-encodes messages without allocating. Candidate offsets are
/// verified by walking the buffer (case-insensitively, chasing pointers), so
/// a hash collision can at worst skip a compression opportunity, never emit
/// a wrong pointer.
class WireWriter {
 public:
  void put_u8(uint8_t value);
  void put_u16(uint16_t value);
  void put_u32(uint32_t value);
  void put_bytes(std::span<const uint8_t> bytes);

  /// Writes a name, compressing against earlier names if `compress` is true
  /// and a suffix match exists at an offset < 0x4000.
  void put_name(const Name& name, bool compress = true);

  /// Writes a name in DNSSEC canonical form: uncompressed, lower-cased.
  void put_name_canonical(const Name& name);

  /// Patches a previously written u16 (used for RDLENGTH back-filling).
  void patch_u16(size_t offset, uint16_t value);

  /// Resets to an empty message, keeping the buffer's capacity — the reuse
  /// hook that removes per-query allocations from the probe loop.
  void clear();

  /// Rolls the buffer back to `size` (used by the AXFR packer to drop the
  /// record that overflowed the message budget). Compression entries made
  /// past the truncation point become stale, but every candidate offset is
  /// re-verified against the buffer before use, so they can never produce a
  /// wrong pointer.
  void truncate(size_t size);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& data() const { return buffer_; }
  std::vector<uint8_t> take() { return std::move(buffer_); }

 private:
  /// True when the name at wire `offset` equals labels[first..] (chasing
  /// compression pointers, comparing case-insensitively).
  bool name_at_equals(size_t offset, const std::vector<std::string>& labels,
                      size_t first) const;

  // Slot 0 in `offset_plus_1` means empty; table size must be a power of 2.
  // 1024 slots comfortably covers the distinct suffixes of a 16 KiB AXFR
  // message; when nearly full we stop inserting (output stays valid and
  // deterministic, compression just degrades).
  static constexpr size_t kTableSize = 1024;
  static constexpr size_t kMaxEntries = kTableSize - kTableSize / 4;

  std::vector<uint8_t> buffer_;
  std::array<uint64_t, kTableSize> hashes_{};
  std::array<uint16_t, kTableSize> offset_plus_1_{};
  size_t entries_ = 0;
};

/// Bounds-checked reader with compression-pointer chasing.
class WireReader {
 public:
  /// Hop budget for compression-pointer chains in get_name(). Forward and
  /// self pointers are rejected outright, so every hop strictly decreases the
  /// cursor and chains terminate; the budget additionally caps the *work* a
  /// hostile message can demand (a 64 KiB message can chain thousands of
  /// strictly-backward pointers). 63 hops covers any legitimate message —
  /// real encoders emit at most one pointer per name.
  static constexpr size_t kMaxPointerHops = 63;

  explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t get_u8();
  uint16_t get_u16();
  uint32_t get_u32();
  std::vector<uint8_t> get_bytes(size_t count);

  /// Reads a possibly-compressed name. Guards against pointer loops (hop
  /// budget above), forward pointers (compression targets must point
  /// backwards), pointers past the end of the message, and names whose
  /// accumulated wire length exceeds the 255-octet limit — all of these
  /// clear ok() immediately instead of returning partially-parsed garbage.
  Name get_name();

  /// True while no read has overrun or hit malformed data.
  bool ok() const { return ok_; }
  /// Marks the reader failed; callers use this when a semantic check (not a
  /// bounds check) proves the data malformed, so all later reads also fail.
  void fail() { ok_ = false; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }
  void seek(size_t offset);
  void skip(size_t count);

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace rootsim::dns
