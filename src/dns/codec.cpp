#include "dns/codec.h"

#include <algorithm>

namespace rootsim::dns {

namespace {

// Writes a name inside RDATA. Only the types grandfathered by RFC 3597 §4 may
// be compressed in messages; canonical form never compresses and lower-cases.
void put_rdata_name(WireWriter& writer, const Name& name, bool compress,
                    bool canonical) {
  if (canonical)
    writer.put_name_canonical(name);
  else
    writer.put_name(name, compress);
}

void encode_rdata_into(WireWriter& writer, const Rdata& rdata, bool compress,
                       bool canonical) {
  struct Visitor {
    WireWriter& w;
    bool compress;
    bool canonical;

    void operator()(const SoaData& soa) const {
      put_rdata_name(w, soa.mname, compress, canonical);
      put_rdata_name(w, soa.rname, compress, canonical);
      w.put_u32(soa.serial);
      w.put_u32(soa.refresh);
      w.put_u32(soa.retry);
      w.put_u32(soa.expire);
      w.put_u32(soa.minimum);
    }
    void operator()(const NsData& ns) const {
      put_rdata_name(w, ns.nsdname, compress, canonical);
    }
    void operator()(const CnameData& c) const {
      put_rdata_name(w, c.target, compress, canonical);
    }
    void operator()(const AData& a) const {
      w.put_bytes({a.address.bytes().data(), 4});
    }
    void operator()(const AaaaData& a) const {
      w.put_bytes({a.address.bytes().data(), 16});
    }
    void operator()(const TxtData& txt) const {
      for (const auto& s : txt.strings) {
        w.put_u8(static_cast<uint8_t>(std::min<size_t>(s.size(), 255)));
        w.put_bytes({reinterpret_cast<const uint8_t*>(s.data()),
                     std::min<size_t>(s.size(), 255)});
      }
    }
    void operator()(const MxData& mx) const {
      w.put_u16(mx.preference);
      put_rdata_name(w, mx.exchange, compress, canonical);
    }
    void operator()(const DsData& ds) const {
      w.put_u16(ds.key_tag);
      w.put_u8(ds.algorithm);
      w.put_u8(ds.digest_type);
      w.put_bytes(ds.digest);
    }
    void operator()(const DnskeyData& key) const {
      w.put_u16(key.flags);
      w.put_u8(key.protocol);
      w.put_u8(key.algorithm);
      w.put_bytes(key.public_key);
    }
    void operator()(const RrsigData& sig) const {
      w.put_u16(static_cast<uint16_t>(sig.type_covered));
      w.put_u8(sig.algorithm);
      w.put_u8(sig.labels);
      w.put_u32(sig.original_ttl);
      w.put_u32(sig.expiration);
      w.put_u32(sig.inception);
      w.put_u16(sig.key_tag);
      // RFC 4034 §3.1.7: the signer name is never compressed; §6.2 also
      // lower-cases it in canonical form.
      if (canonical)
        w.put_name_canonical(sig.signer);
      else
        w.put_name(sig.signer, /*compress=*/false);
      w.put_bytes(sig.signature);
    }
    void operator()(const NsecData& nsec) const {
      if (canonical)
        w.put_name_canonical(nsec.next);
      else
        w.put_name(nsec.next, /*compress=*/false);
      // Type bitmap (RFC 4034 §4.1.2): window blocks of up to 32 octets.
      std::vector<RRType> types = nsec.types;
      std::sort(types.begin(), types.end());
      types.erase(std::unique(types.begin(), types.end()), types.end());
      size_t i = 0;
      while (i < types.size()) {
        uint8_t window = static_cast<uint8_t>(static_cast<uint16_t>(types[i]) >> 8);
        uint8_t bitmap[32] = {};
        size_t max_octet = 0;
        while (i < types.size() &&
               (static_cast<uint16_t>(types[i]) >> 8) == window) {
          uint8_t low = static_cast<uint8_t>(static_cast<uint16_t>(types[i]));
          bitmap[low / 8] |= static_cast<uint8_t>(0x80 >> (low % 8));
          max_octet = std::max<size_t>(max_octet, low / 8 + 1);
          ++i;
        }
        w.put_u8(window);
        w.put_u8(static_cast<uint8_t>(max_octet));
        w.put_bytes({bitmap, max_octet});
      }
    }
    void operator()(const ZonemdData& z) const {
      w.put_u32(z.serial);
      w.put_u8(z.scheme);
      w.put_u8(z.hash_algorithm);
      w.put_bytes(z.digest);
    }
    void operator()(const OptData&) const {
      // OPT RDATA: we carry no options; flags live in the record shell.
    }
    void operator()(const GenericData& g) const { w.put_bytes(g.bytes); }
  };
  std::visit(Visitor{writer, compress, canonical}, rdata);
}

// For OPT pseudo-records the class field carries the UDP payload size and the
// TTL carries extended rcode/version/DO flag (RFC 6891 §6.1.2).
void encode_shell(WireWriter& writer, const ResourceRecord& rr, bool compress,
                  bool canonical) {
  if (canonical)
    writer.put_name_canonical(rr.name);
  else
    writer.put_name(rr.name, compress);
  writer.put_u16(static_cast<uint16_t>(rr.type));
  if (rr.type == RRType::OPT) {
    const auto* opt = std::get_if<OptData>(&rr.rdata);
    uint16_t payload = opt ? opt->udp_payload_size : 512;
    uint32_t ttl = opt ? (static_cast<uint32_t>(opt->extended_rcode) << 24 |
                          static_cast<uint32_t>(opt->version) << 16 |
                          (opt->dnssec_ok ? 0x8000u : 0u))
                       : 0;
    writer.put_u16(payload);
    writer.put_u32(ttl);
  } else {
    writer.put_u16(static_cast<uint16_t>(rr.rclass));
    writer.put_u32(rr.ttl);
  }
}

}  // namespace

void encode_record(WireWriter& writer, const ResourceRecord& rr, bool compress) {
  encode_shell(writer, rr, compress, /*canonical=*/false);
  size_t rdlength_at = writer.size();
  writer.put_u16(0);
  size_t rdata_start = writer.size();
  encode_rdata_into(writer, rr.rdata, compress, /*canonical=*/false);
  writer.patch_u16(rdlength_at, static_cast<uint16_t>(writer.size() - rdata_start));
}

void encode_record_canonical(WireWriter& writer, const ResourceRecord& rr) {
  encode_shell(writer, rr, /*compress=*/false, /*canonical=*/true);
  size_t rdlength_at = writer.size();
  writer.put_u16(0);
  size_t rdata_start = writer.size();
  encode_rdata_into(writer, rr.rdata, /*compress=*/false, /*canonical=*/true);
  writer.patch_u16(rdlength_at, static_cast<uint16_t>(writer.size() - rdata_start));
}

std::vector<uint8_t> encode_rdata(const Rdata& rdata, bool canonical) {
  WireWriter writer;
  encode_rdata_into(writer, rdata, /*compress=*/false, canonical);
  return writer.take();
}

namespace {

std::optional<Rdata> decode_rdata_at(WireReader& reader, RRType type,
                                     size_t rdlength) {
  size_t end = reader.offset() + rdlength;
  auto take_rest = [&]() -> std::vector<uint8_t> {
    // Fixed-width fields read above may already have consumed past `end` when
    // RDLENGTH lies (e.g. a DS record claiming 2 octets): `end - offset`
    // would then wrap to a near-2^64 count whose overflow-prone bounds check
    // could pass. Treat overrun as the malformed-RDATA failure it is.
    if (reader.offset() > end) {
      reader.fail();
      return {};
    }
    return reader.get_bytes(end - reader.offset());
  };
  switch (type) {
    case RRType::SOA: {
      SoaData soa;
      soa.mname = reader.get_name();
      soa.rname = reader.get_name();
      soa.serial = reader.get_u32();
      soa.refresh = reader.get_u32();
      soa.retry = reader.get_u32();
      soa.expire = reader.get_u32();
      soa.minimum = reader.get_u32();
      if (!reader.ok()) return std::nullopt;
      return Rdata(soa);
    }
    case RRType::NS: {
      NsData ns;
      ns.nsdname = reader.get_name();
      if (!reader.ok()) return std::nullopt;
      return Rdata(ns);
    }
    case RRType::CNAME: {
      CnameData c;
      c.target = reader.get_name();
      if (!reader.ok()) return std::nullopt;
      return Rdata(c);
    }
    case RRType::A: {
      if (rdlength != 4) return std::nullopt;
      auto b = reader.get_bytes(4);
      if (!reader.ok()) return std::nullopt;
      return Rdata(AData{util::IpAddress::v4(b[0], b[1], b[2], b[3])});
    }
    case RRType::AAAA: {
      if (rdlength != 16) return std::nullopt;
      auto b = reader.get_bytes(16);
      if (!reader.ok()) return std::nullopt;
      std::array<uint8_t, 16> bytes;
      std::copy(b.begin(), b.end(), bytes.begin());
      return Rdata(AaaaData{util::IpAddress::v6(bytes)});
    }
    case RRType::TXT: {
      TxtData txt;
      while (reader.ok() && reader.offset() < end) {
        uint8_t len = reader.get_u8();
        auto bytes = reader.get_bytes(len);
        if (!reader.ok()) return std::nullopt;
        txt.strings.emplace_back(bytes.begin(), bytes.end());
      }
      if (!reader.ok() || reader.offset() != end) return std::nullopt;
      return Rdata(txt);
    }
    case RRType::MX: {
      MxData mx;
      mx.preference = reader.get_u16();
      mx.exchange = reader.get_name();
      if (!reader.ok()) return std::nullopt;
      return Rdata(mx);
    }
    case RRType::DS: {
      DsData ds;
      ds.key_tag = reader.get_u16();
      ds.algorithm = reader.get_u8();
      ds.digest_type = reader.get_u8();
      ds.digest = take_rest();
      if (!reader.ok()) return std::nullopt;
      return Rdata(ds);
    }
    case RRType::DNSKEY: {
      DnskeyData key;
      key.flags = reader.get_u16();
      key.protocol = reader.get_u8();
      key.algorithm = reader.get_u8();
      key.public_key = take_rest();
      if (!reader.ok()) return std::nullopt;
      return Rdata(key);
    }
    case RRType::RRSIG: {
      RrsigData sig;
      sig.type_covered = static_cast<RRType>(reader.get_u16());
      sig.algorithm = reader.get_u8();
      sig.labels = reader.get_u8();
      sig.original_ttl = reader.get_u32();
      sig.expiration = reader.get_u32();
      sig.inception = reader.get_u32();
      sig.key_tag = reader.get_u16();
      sig.signer = reader.get_name();
      if (!reader.ok() || reader.offset() > end) return std::nullopt;
      sig.signature = take_rest();
      if (!reader.ok()) return std::nullopt;
      return Rdata(sig);
    }
    case RRType::NSEC: {
      NsecData nsec;
      nsec.next = reader.get_name();
      while (reader.ok() && reader.offset() < end) {
        uint8_t window = reader.get_u8();
        uint8_t len = reader.get_u8();
        if (len == 0 || len > 32) return std::nullopt;
        auto bitmap = reader.get_bytes(len);
        if (!reader.ok()) return std::nullopt;
        for (size_t octet = 0; octet < bitmap.size(); ++octet)
          for (int bit = 0; bit < 8; ++bit)
            if (bitmap[octet] & (0x80 >> bit))
              nsec.types.push_back(static_cast<RRType>(
                  static_cast<uint16_t>(window) << 8 | (octet * 8 + bit)));
      }
      if (!reader.ok() || reader.offset() != end) return std::nullopt;
      return Rdata(nsec);
    }
    case RRType::ZONEMD: {
      ZonemdData z;
      z.serial = reader.get_u32();
      z.scheme = reader.get_u8();
      z.hash_algorithm = reader.get_u8();
      z.digest = take_rest();
      if (!reader.ok()) return std::nullopt;
      return Rdata(z);
    }
    default: {
      GenericData g;
      g.type_code = static_cast<uint16_t>(type);
      g.bytes = take_rest();
      if (!reader.ok()) return std::nullopt;
      return Rdata(g);
    }
  }
}

}  // namespace

std::optional<ResourceRecord> decode_record(WireReader& reader) {
  ResourceRecord rr;
  rr.name = reader.get_name();
  rr.type = static_cast<RRType>(reader.get_u16());
  uint16_t class_field = reader.get_u16();
  uint32_t ttl_field = reader.get_u32();
  uint16_t rdlength = reader.get_u16();
  if (!reader.ok()) return std::nullopt;
  if (rr.type == RRType::OPT) {
    OptData opt;
    opt.udp_payload_size = class_field;
    opt.extended_rcode = static_cast<uint8_t>(ttl_field >> 24);
    opt.version = static_cast<uint8_t>(ttl_field >> 16);
    opt.dnssec_ok = (ttl_field & 0x8000) != 0;
    reader.skip(rdlength);
    if (!reader.ok()) return std::nullopt;
    rr.rclass = RRClass::IN;
    rr.ttl = 0;
    rr.rdata = opt;
    return rr;
  }
  rr.rclass = static_cast<RRClass>(class_field);
  rr.ttl = ttl_field;
  if (reader.remaining() < rdlength) return std::nullopt;
  size_t end = reader.offset() + rdlength;
  auto rdata = decode_rdata_at(reader, rr.type, rdlength);
  if (!rdata || reader.offset() != end) return std::nullopt;
  rr.rdata = std::move(*rdata);
  return rr;
}

std::optional<Rdata> decode_rdata(RRType type, std::span<const uint8_t> data) {
  WireReader reader(data);
  auto rdata = decode_rdata_at(reader, type, data.size());
  if (!rdata || !reader.ok() || reader.remaining() != 0) return std::nullopt;
  return rdata;
}

}  // namespace rootsim::dns
