// DNS messages (RFC 1035 §4): header, question, answer/authority/additional
// sections, with EDNS(0) OPT handling (RFC 6891).
//
// This is the unit the simulated prober exchanges with simulated root server
// instances — the same wire bytes a real `dig @198.41.0.4 . NS +dnssec`
// exchange would carry.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/codec.h"
#include "dns/rdata.h"

namespace rootsim::dns {

enum class Opcode : uint8_t { Query = 0, Notify = 4, Update = 5 };

enum class Rcode : uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

std::string rcode_to_string(Rcode rcode);

struct Question {
  Name qname;
  RRType qtype = RRType::A;
  RRClass qclass = RRClass::IN;
  bool operator==(const Question&) const = default;
};

/// A full DNS message. Flags are individual booleans rather than a packed
/// word; packing happens only at the wire boundary.
struct Message {
  uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::Query;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  bool ad = false;  // authentic data
  bool cd = false;  // checking disabled
  Rcode rcode = Rcode::NoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  /// True if the additional section carries an OPT record with DO set.
  bool dnssec_ok() const;
  /// Appends an EDNS OPT record (idempotent layout; call once).
  void add_edns(uint16_t udp_payload_size = 1232, bool dnssec_ok = false);

  /// Serializes to wire format with name compression.
  std::vector<uint8_t> encode() const;

  /// Same, into a caller-owned writer (cleared first). Reusing one writer
  /// across a query loop keeps the encode path allocation-free.
  void encode_into(WireWriter& writer) const;

  /// Parses from wire format; nullopt on malformed input.
  static std::optional<Message> decode(std::span<const uint8_t> data);
};

/// Builds a query message in the shape the measurement script's
/// `dig @server <qname> <qtype>` would produce.
Message make_query(uint16_t id, const Name& qname, RRType qtype,
                   RRClass qclass = RRClass::IN, bool dnssec_ok = false);

}  // namespace rootsim::dns
