#include "dns/zone.h"

#include <algorithm>

#include "crypto/encoding.h"
#include "util/strings.h"

namespace rootsim::dns {

bool RRset::operator==(const RRset& other) const {
  if (!(name == other.name) || type != other.type || rclass != other.rclass ||
      ttl != other.ttl || rdatas.size() != other.rdatas.size())
    return false;
  auto multiplicity = [](const std::vector<Rdata>& haystack, const Rdata& x) {
    return std::count(haystack.begin(), haystack.end(), x);
  };
  for (const auto& rdata : rdatas)
    if (multiplicity(rdatas, rdata) != multiplicity(other.rdatas, rdata))
      return false;
  return true;
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rdata : rdatas)
    out.push_back(ResourceRecord{name, type, rclass, ttl, rdata});
  return out;
}

void Zone::add(const ResourceRecord& rr) {
  Key key{rr.name, rr.type};
  auto [it, inserted] = sets_.try_emplace(key);
  RRset& set = it->second;
  if (inserted) {
    set.name = rr.name;
    set.type = rr.type;
    set.rclass = rr.rclass;
    set.ttl = rr.ttl;
  }
  if (std::find(set.rdatas.begin(), set.rdatas.end(), rr.rdata) ==
      set.rdatas.end())
    set.rdatas.push_back(rr.rdata);
}

bool Zone::remove_rrset(const Name& name, RRType type) {
  return sets_.erase(Key{name, type}) > 0;
}

bool Zone::remove(const ResourceRecord& rr) {
  auto it = sets_.find(Key{rr.name, rr.type});
  if (it == sets_.end()) return false;
  auto& rdatas = it->second.rdatas;
  auto pos = std::find(rdatas.begin(), rdatas.end(), rr.rdata);
  if (pos == rdatas.end()) return false;
  rdatas.erase(pos);
  if (rdatas.empty()) sets_.erase(it);
  return true;
}

const RRset* Zone::find(const Name& name, RRType type) const {
  auto it = sets_.find(Key{name, type});
  return it == sets_.end() ? nullptr : &it->second;
}

std::vector<const RRset*> Zone::rrsets() const {
  std::vector<const RRset*> out;
  out.reserve(sets_.size());
  for (const auto& [key, set] : sets_) out.push_back(&set);
  return out;
}

std::vector<const RRset*> Zone::rrsets_at(const Name& name) const {
  std::vector<const RRset*> out;
  for (const auto& [key, set] : sets_)
    if (key.name == name) out.push_back(&set);
  return out;
}

std::optional<SoaData> Zone::soa() const {
  const RRset* set = find(origin_, RRType::SOA);
  if (!set || set->rdatas.empty()) return std::nullopt;
  if (const auto* soa = std::get_if<SoaData>(&set->rdatas.front())) return *soa;
  return std::nullopt;
}

uint32_t Zone::serial() const {
  auto s = soa();
  return s ? s->serial : 0;
}

size_t Zone::record_count() const {
  size_t count = 0;
  for (const auto& [key, set] : sets_) count += set.rdatas.size();
  return count;
}

bool Zone::contains_name(const Name& name) const {
  for (const auto& [key, set] : sets_)
    if (key.name == name) return true;
  return false;
}

std::vector<Name> Zone::authoritative_names() const {
  std::vector<Name> out;
  for (const auto& [key, set] : sets_) {
    if (out.empty() || !(out.back() == key.name)) out.push_back(key.name);
  }
  return out;
}

std::vector<ResourceRecord> Zone::axfr_records() const {
  std::vector<ResourceRecord> out;
  const RRset* soa_set = find(origin_, RRType::SOA);
  if (!soa_set || soa_set->rdatas.empty()) return out;
  ResourceRecord soa_rr{soa_set->name, RRType::SOA, soa_set->rclass, soa_set->ttl,
                        soa_set->rdatas.front()};
  out.push_back(soa_rr);
  for (const auto& [key, set] : sets_) {
    if (key.name == origin_ && key.type == RRType::SOA) continue;
    for (const auto& record : set.to_records()) out.push_back(record);
  }
  out.push_back(soa_rr);
  return out;
}

std::optional<Zone> Zone::from_axfr(const std::vector<ResourceRecord>& records,
                                    const Name& origin) {
  if (records.size() < 2) return std::nullopt;
  const ResourceRecord& first = records.front();
  const ResourceRecord& last = records.back();
  if (first.type != RRType::SOA || last.type != RRType::SOA) return std::nullopt;
  if (!(first.name == origin) || !(first == last)) return std::nullopt;
  Zone zone(origin);
  for (size_t i = 0; i + 1 < records.size(); ++i) zone.add(records[i]);
  return zone;
}

std::string Zone::to_master_file() const {
  std::string out;
  out += util::format("$ORIGIN %s\n", origin_.to_string().c_str());
  for (const auto& [key, set] : sets_)
    for (const auto& record : set.to_records()) {
      out += record_to_string(record);
      out += '\n';
    }
  return out;
}

namespace {

// Splits a zone-file line into tokens, honoring "quoted strings" and ;comments.
std::vector<std::string> tokenize_zone_line(std::string_view line, bool* bad) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ';') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    std::string token;
    if (c == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          token += line[i + 1];
          i += 2;
          continue;
        }
        if (line[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        token += line[i++];
      }
      if (!closed && bad) *bad = true;
      tokens.push_back("\"" + token);  // marker so TXT keeps empty strings
    } else {
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
             line[i] != ';')
        token += line[i++];
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

std::optional<uint32_t> parse_u32(const std::string& s) {
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xFFFFFFFFULL) return std::nullopt;
  }
  return static_cast<uint32_t>(value);
}

std::optional<Name> parse_relative_name(const std::string& token, const Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') return Name::parse(token);
  // Relative: append origin.
  auto partial = Name::parse(token + ".");
  if (!partial) return std::nullopt;
  std::vector<std::string> labels = partial->labels();
  labels.insert(labels.end(), origin.labels().begin(), origin.labels().end());
  return Name::from_labels(std::move(labels));
}

}  // namespace

std::optional<Zone> Zone::parse_master_file(std::string_view text,
                                            std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Zone> {
    if (error) *error = msg;
    return std::nullopt;
  };
  Name origin;  // default: root
  uint32_t default_ttl = 86400;
  std::vector<ResourceRecord> records;
  std::optional<Name> last_owner;

  size_t line_number = 0;
  for (const auto& raw_line : util::split(text, '\n')) {
    ++line_number;
    bool bad = false;
    bool line_indented =
        !raw_line.empty() && std::isspace(static_cast<unsigned char>(raw_line[0]));
    auto tokens = tokenize_zone_line(raw_line, &bad);
    if (bad) return fail(util::format("line %zu: unterminated string", line_number));
    if (tokens.empty()) continue;
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() < 2) return fail("$ORIGIN missing argument");
      auto parsed = Name::parse(tokens[1]);
      if (!parsed) return fail("$ORIGIN bad name");
      origin = *parsed;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() < 2) return fail("$TTL missing argument");
      auto ttl = parse_u32(tokens[1]);
      if (!ttl) return fail("$TTL bad value");
      default_ttl = *ttl;
      continue;
    }

    size_t cursor = 0;
    Name owner;
    if (line_indented) {
      if (!last_owner) return fail(util::format("line %zu: no previous owner", line_number));
      owner = *last_owner;
    } else {
      auto parsed = parse_relative_name(tokens[cursor], origin);
      if (!parsed) return fail(util::format("line %zu: bad owner name", line_number));
      owner = *parsed;
      ++cursor;
    }
    last_owner = owner;

    // [TTL] [class] type — TTL and class may appear in either order.
    uint32_t ttl = default_ttl;
    RRClass rclass = RRClass::IN;
    for (int pass = 0; pass < 2 && cursor < tokens.size(); ++pass) {
      if (auto maybe_ttl = parse_u32(tokens[cursor])) {
        ttl = *maybe_ttl;
        ++cursor;
      } else if (tokens[cursor] == "IN" || tokens[cursor] == "CH") {
        rclass = tokens[cursor] == "IN" ? RRClass::IN : RRClass::CH;
        ++cursor;
      }
    }
    if (cursor >= tokens.size())
      return fail(util::format("line %zu: missing type", line_number));
    RRType type = rrtype_from_string(tokens[cursor]);
    if (type == RRType::ANY)
      return fail(util::format("line %zu: unsupported type '%s'", line_number,
                               tokens[cursor].c_str()));
    ++cursor;
    std::vector<std::string> args(tokens.begin() + static_cast<long>(cursor),
                                  tokens.end());
    auto need = [&](size_t count) { return args.size() >= count; };
    Rdata rdata;
    switch (type) {
      case RRType::SOA: {
        if (!need(7)) return fail(util::format("line %zu: SOA needs 7 fields", line_number));
        SoaData soa;
        auto mname = parse_relative_name(args[0], origin);
        auto rname = parse_relative_name(args[1], origin);
        auto serial = parse_u32(args[2]);
        auto refresh = parse_u32(args[3]);
        auto retry = parse_u32(args[4]);
        auto expire = parse_u32(args[5]);
        auto minimum = parse_u32(args[6]);
        if (!mname || !rname || !serial || !refresh || !retry || !expire || !minimum)
          return fail(util::format("line %zu: bad SOA", line_number));
        soa.mname = *mname;
        soa.rname = *rname;
        soa.serial = *serial;
        soa.refresh = *refresh;
        soa.retry = *retry;
        soa.expire = *expire;
        soa.minimum = *minimum;
        rdata = soa;
        break;
      }
      case RRType::NS: {
        if (!need(1)) return fail(util::format("line %zu: NS needs a name", line_number));
        auto target = parse_relative_name(args[0], origin);
        if (!target) return fail(util::format("line %zu: bad NS target", line_number));
        rdata = NsData{*target};
        break;
      }
      case RRType::CNAME: {
        if (!need(1)) return fail(util::format("line %zu: CNAME needs a name", line_number));
        auto target = parse_relative_name(args[0], origin);
        if (!target) return fail(util::format("line %zu: bad CNAME target", line_number));
        rdata = CnameData{*target};
        break;
      }
      case RRType::A: {
        if (!need(1)) return fail(util::format("line %zu: A needs an address", line_number));
        auto addr = util::IpAddress::parse(args[0]);
        if (!addr || !addr->is_v4())
          return fail(util::format("line %zu: bad A address", line_number));
        rdata = AData{*addr};
        break;
      }
      case RRType::AAAA: {
        if (!need(1)) return fail(util::format("line %zu: AAAA needs an address", line_number));
        auto addr = util::IpAddress::parse(args[0]);
        if (!addr || !addr->is_v6())
          return fail(util::format("line %zu: bad AAAA address", line_number));
        rdata = AaaaData{*addr};
        break;
      }
      case RRType::TXT: {
        TxtData txt;
        for (const auto& arg : args)
          txt.strings.push_back(arg.empty() || arg[0] != '"' ? arg : arg.substr(1));
        rdata = txt;
        break;
      }
      case RRType::MX: {
        if (!need(2)) return fail(util::format("line %zu: MX needs 2 fields", line_number));
        auto pref = parse_u32(args[0]);
        auto target = parse_relative_name(args[1], origin);
        if (!pref || *pref > 0xFFFF || !target)
          return fail(util::format("line %zu: bad MX", line_number));
        rdata = MxData{static_cast<uint16_t>(*pref), *target};
        break;
      }
      case RRType::DS: {
        if (!need(4)) return fail(util::format("line %zu: DS needs 4 fields", line_number));
        auto tag = parse_u32(args[0]);
        auto alg = parse_u32(args[1]);
        auto dt = parse_u32(args[2]);
        auto digest = crypto::from_hex(args[3]);
        if (!tag || *tag > 0xFFFF || !alg || *alg > 255 || !dt || *dt > 255 || !digest)
          return fail(util::format("line %zu: bad DS", line_number));
        rdata = DsData{static_cast<uint16_t>(*tag), static_cast<uint8_t>(*alg),
                       static_cast<uint8_t>(*dt), *digest};
        break;
      }
      case RRType::DNSKEY: {
        if (!need(4)) return fail(util::format("line %zu: DNSKEY needs 4 fields", line_number));
        auto flags = parse_u32(args[0]);
        auto proto = parse_u32(args[1]);
        auto alg = parse_u32(args[2]);
        std::string b64;
        for (size_t i = 3; i < args.size(); ++i) b64 += args[i];
        auto key_bytes = crypto::from_base64(b64);
        if (!flags || *flags > 0xFFFF || !proto || *proto > 255 || !alg ||
            *alg > 255 || !key_bytes)
          return fail(util::format("line %zu: bad DNSKEY", line_number));
        DnskeyData key;
        key.flags = static_cast<uint16_t>(*flags);
        key.protocol = static_cast<uint8_t>(*proto);
        key.algorithm = static_cast<uint8_t>(*alg);
        key.public_key = *key_bytes;
        rdata = key;
        break;
      }
      case RRType::RRSIG: {
        if (!need(9)) return fail(util::format("line %zu: RRSIG needs 9 fields", line_number));
        RrsigData sig;
        sig.type_covered = rrtype_from_string(args[0]);
        auto alg = parse_u32(args[1]);
        auto labels = parse_u32(args[2]);
        auto ottl = parse_u32(args[3]);
        auto exp = parse_u32(args[4]);
        auto inc = parse_u32(args[5]);
        auto tag = parse_u32(args[6]);
        auto signer = parse_relative_name(args[7], origin);
        std::string b64;
        for (size_t i = 8; i < args.size(); ++i) b64 += args[i];
        auto sig_bytes = crypto::from_base64(b64);
        if (!alg || !labels || !ottl || !exp || !inc || !tag || *tag > 0xFFFF ||
            !signer || !sig_bytes)
          return fail(util::format("line %zu: bad RRSIG", line_number));
        sig.algorithm = static_cast<uint8_t>(*alg);
        sig.labels = static_cast<uint8_t>(*labels);
        sig.original_ttl = *ottl;
        sig.expiration = *exp;
        sig.inception = *inc;
        sig.key_tag = static_cast<uint16_t>(*tag);
        sig.signer = *signer;
        sig.signature = *sig_bytes;
        rdata = sig;
        break;
      }
      case RRType::NSEC: {
        if (!need(1)) return fail(util::format("line %zu: NSEC needs a next name", line_number));
        NsecData nsec;
        auto next = parse_relative_name(args[0], origin);
        if (!next) return fail(util::format("line %zu: bad NSEC next", line_number));
        nsec.next = *next;
        for (size_t i = 1; i < args.size(); ++i) {
          RRType t = rrtype_from_string(args[i]);
          if (t == RRType::ANY)
            return fail(util::format("line %zu: bad NSEC type '%s'", line_number,
                                     args[i].c_str()));
          nsec.types.push_back(t);
        }
        rdata = nsec;
        break;
      }
      case RRType::ZONEMD: {
        if (!need(4)) return fail(util::format("line %zu: ZONEMD needs 4 fields", line_number));
        auto serial = parse_u32(args[0]);
        auto scheme = parse_u32(args[1]);
        auto alg = parse_u32(args[2]);
        auto digest = crypto::from_hex(args[3]);
        if (!serial || !scheme || *scheme > 255 || !alg || *alg > 255 || !digest)
          return fail(util::format("line %zu: bad ZONEMD", line_number));
        rdata = ZonemdData{*serial, static_cast<uint8_t>(*scheme),
                           static_cast<uint8_t>(*alg), *digest};
        break;
      }
      default:
        return fail(util::format("line %zu: type %s not supported in zone files",
                                 line_number, rrtype_to_string(type).c_str()));
    }
    records.push_back(ResourceRecord{owner, type, rclass, ttl, std::move(rdata)});
  }

  // The zone origin is the SOA owner.
  Name zone_origin = origin;
  for (const auto& rr : records)
    if (rr.type == RRType::SOA) {
      zone_origin = rr.name;
      break;
    }
  Zone zone(zone_origin);
  for (const auto& rr : records) zone.add(rr);
  if (!zone.soa()) return fail("zone has no SOA");
  return zone;
}

}  // namespace rootsim::dns
