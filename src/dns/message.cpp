#include "dns/message.h"

#include "dns/wire.h"

namespace rootsim::dns {

std::string rcode_to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NxDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

bool Message::dnssec_ok() const {
  for (const auto& rr : additional)
    if (const auto* opt = std::get_if<OptData>(&rr.rdata))
      return opt->dnssec_ok;
  return false;
}

void Message::add_edns(uint16_t udp_payload_size, bool dnssec_ok) {
  ResourceRecord opt;
  opt.name = Name();  // root
  opt.type = RRType::OPT;
  opt.rdata = OptData{udp_payload_size, 0, 0, dnssec_ok};
  additional.push_back(std::move(opt));
}

std::vector<uint8_t> Message::encode() const {
  WireWriter writer;
  encode_into(writer);
  return writer.take();
}

void Message::encode_into(WireWriter& writer) const {
  writer.clear();
  writer.put_u16(id);
  uint16_t flags = 0;
  if (qr) flags |= 0x8000;
  flags |= static_cast<uint16_t>(static_cast<uint16_t>(opcode) << 11);
  if (aa) flags |= 0x0400;
  if (tc) flags |= 0x0200;
  if (rd) flags |= 0x0100;
  if (ra) flags |= 0x0080;
  if (ad) flags |= 0x0020;
  if (cd) flags |= 0x0010;
  flags |= static_cast<uint16_t>(rcode) & 0x000F;
  writer.put_u16(flags);
  writer.put_u16(static_cast<uint16_t>(questions.size()));
  writer.put_u16(static_cast<uint16_t>(answers.size()));
  writer.put_u16(static_cast<uint16_t>(authority.size()));
  writer.put_u16(static_cast<uint16_t>(additional.size()));
  for (const auto& q : questions) {
    writer.put_name(q.qname);
    writer.put_u16(static_cast<uint16_t>(q.qtype));
    writer.put_u16(static_cast<uint16_t>(q.qclass));
  }
  for (const auto& rr : answers) encode_record(writer, rr);
  for (const auto& rr : authority) encode_record(writer, rr);
  for (const auto& rr : additional) encode_record(writer, rr);
}

std::optional<Message> Message::decode(std::span<const uint8_t> data) {
  WireReader reader(data);
  Message msg;
  msg.id = reader.get_u16();
  uint16_t flags = reader.get_u16();
  msg.qr = flags & 0x8000;
  msg.opcode = static_cast<Opcode>((flags >> 11) & 0x0F);
  msg.aa = flags & 0x0400;
  msg.tc = flags & 0x0200;
  msg.rd = flags & 0x0100;
  msg.ra = flags & 0x0080;
  msg.ad = flags & 0x0020;
  msg.cd = flags & 0x0010;
  msg.rcode = static_cast<Rcode>(flags & 0x000F);
  uint16_t qdcount = reader.get_u16();
  uint16_t ancount = reader.get_u16();
  uint16_t nscount = reader.get_u16();
  uint16_t arcount = reader.get_u16();
  if (!reader.ok()) return std::nullopt;
  for (int i = 0; i < qdcount; ++i) {
    Question q;
    q.qname = reader.get_name();
    q.qtype = static_cast<RRType>(reader.get_u16());
    q.qclass = static_cast<RRClass>(reader.get_u16());
    if (!reader.ok()) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::vector<ResourceRecord>& section, uint16_t count) {
    for (int i = 0; i < count; ++i) {
      auto rr = decode_record(reader);
      if (!rr) return false;
      section.push_back(std::move(*rr));
    }
    return true;
  };
  if (!read_section(msg.answers, ancount)) return std::nullopt;
  if (!read_section(msg.authority, nscount)) return std::nullopt;
  if (!read_section(msg.additional, arcount)) return std::nullopt;
  return msg;
}

Message make_query(uint16_t id, const Name& qname, RRType qtype, RRClass qclass,
                   bool dnssec_ok) {
  Message msg;
  msg.id = id;
  msg.rd = false;  // dig to authoritatives: +norecurse semantics
  msg.questions.push_back({qname, qtype, qclass});
  if (dnssec_ok || qclass == RRClass::IN) msg.add_edns(1232, dnssec_ok);
  return msg;
}

}  // namespace rootsim::dns
