// Full-zone validation from a consumer's perspective, mirroring the paper's
// §7 methodology ("we use ldnsutils to fully validate obtained zones, i.e.,
// checking ZONEMD and all RRSIG records against the root DNSKEYs").
//
// The validator reports the same failure taxonomy as the paper's Table 2:
// signature-not-yet-incepted (bad VP clocks), bogus signature (bitflips),
// signature expired (stale zone files) — plus the ZONEMD-specific verdicts
// that classify the roll-out stages.
#pragma once

#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "dnssec/signer.h"
#include "obs/obs.h"
#include "util/timeutil.h"

namespace rootsim::dnssec {

enum class ValidationStatus {
  Valid,
  SignatureNotIncepted,  ///< validation time before RRSIG inception
  SignatureExpired,      ///< validation time after RRSIG expiration
  BogusSignature,        ///< cryptographic mismatch (e.g. a bitflip)
  MissingSignature,      ///< an authoritative RRset lacks an RRSIG
  UnknownKey,            ///< RRSIG key tag matches no trust-anchor DNSKEY
};

std::string to_string(ValidationStatus status);

enum class ZonemdStatus {
  Verified,           ///< digest present and matches
  Mismatch,           ///< digest present but wrong (corruption!)
  NoZonemd,           ///< record absent (pre-2023-09-13 stage)
  UnsupportedScheme,  ///< unknown scheme or hash algorithm (private-use stage)
  SerialMismatch,     ///< ZONEMD serial != SOA serial
};

std::string to_string(ZonemdStatus status);

/// One RRSIG failure, attributable to an RRset.
struct SignatureFinding {
  ValidationStatus status = ValidationStatus::Valid;
  dns::Name owner;
  dns::RRType type_covered = dns::RRType::A;
  std::string detail;
};

/// Combined verdict for one obtained zone copy.
struct ZoneValidationResult {
  ZonemdStatus zonemd = ZonemdStatus::NoZonemd;
  std::vector<SignatureFinding> signature_failures;
  size_t rrsets_checked = 0;
  size_t signatures_checked = 0;

  bool fully_valid() const {
    return signature_failures.empty() &&
           (zonemd == ZonemdStatus::Verified || zonemd == ZonemdStatus::NoZonemd ||
            zonemd == ZonemdStatus::UnsupportedScheme);
  }
  /// The dominant failure for Table 2 bucketing; Valid if none.
  ValidationStatus dominant_failure() const;
};

/// Trust anchor set: the DNSKEYs (or just the KSK) the validator trusts.
struct TrustAnchors {
  std::vector<dns::DnskeyData> keys;

  static TrustAnchors from_zone_apex(const dns::Zone& zone);

  /// The real-world bootstrap path: the operator configures the published
  /// DS digest of the root KSK (IANA's trust anchor file), then accepts the
  /// apex DNSKEY RRset iff (a) some KSK matches the DS and (b) that KSK's
  /// RRSIG over the DNSKEY RRset verifies. Returns an empty anchor set when
  /// either check fails.
  static TrustAnchors from_ds_anchor(const dns::DsData& anchor,
                                     const dns::Zone& zone, util::UnixTime now);
};

/// Computes the DS record for a DNSKEY (RFC 4034 §5.1.4 / RFC 4509):
/// digest over canonical(owner) | DNSKEY RDATA. digest_type 2 = SHA-256,
/// 4 = SHA-384 (SHA-1 is obsolete and unsupported here).
dns::DsData make_ds(const dns::Name& owner, const dns::DnskeyData& key,
                    uint8_t digest_type = 2);

/// True if `ds` is the digest of `key` at `owner`.
bool ds_matches(const dns::Name& owner, const dns::DsData& ds,
                const dns::DnskeyData& key);

/// Validates all RRSIGs in `zone` against `anchors` at time `now`, plus the
/// ZONEMD digest. `now` is the *validator's* clock — the paper found six
/// time-related errors caused purely by skewed VP clocks. `obs` (optional)
/// counts outcomes: `dnssec.validations{status=...}` by the Table-2 dominant
/// verdict, `dnssec.zonemd{status=...}`, and rrset/signature work counters.
ZoneValidationResult validate_zone(const dns::Zone& zone,
                                   const TrustAnchors& anchors,
                                   util::UnixTime now, obs::Obs obs = {});

/// Verifies one RRSIG over one RRset against a specific key.
ValidationStatus verify_rrsig(const dns::RRset& rrset, const dns::RrsigData& sig,
                              const dns::DnskeyData& key, util::UnixTime now);

/// Resolver-side validation of a negative answer (RFC 4035 §5.4): checks
/// that an NXDOMAIN response carries an NSEC record that (a) covers the
/// queried name in canonical order and (b) verifies against the trust
/// anchors. This is what a validating resolver runs on the responses our
/// simulated roots produce.
enum class DenialStatus {
  Proven,          ///< covering NSEC present and cryptographically valid
  NoProof,         ///< no NSEC covers the name (unsigned or stripped)
  DoesNotCover,    ///< NSEC present but the name is outside its span
  BadSignature,    ///< covering NSEC's RRSIG fails
};

std::string to_string(DenialStatus status);

DenialStatus verify_nxdomain_proof(const dns::Message& response,
                                   const dns::Name& qname,
                                   const TrustAnchors& anchors,
                                   util::UnixTime now);

}  // namespace rootsim::dnssec
