// DNSSEC canonical form and ordering (RFC 4034 §6).
//
// Signatures (RFC 4034 §3.1.8.1) and ZONEMD digests (RFC 8976 §3.3) are both
// computed over RRsets serialized in canonical form: owner names lower-cased
// and uncompressed, RDATA in canonical form, and the RRs of an RRset sorted
// by their canonical RDATA byte strings.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/rdata.h"
#include "dns/zone.h"

namespace rootsim::dnssec {

/// Canonical RDATA encoding of one record (lower-cased embedded names, no
/// compression).
std::vector<uint8_t> canonical_rdata(const dns::Rdata& rdata);

/// Sorts an RRset's rdatas by canonical RDATA byte order (RFC 4034 §6.3) and
/// returns the sorted copies.
std::vector<dns::Rdata> sort_rdatas_canonically(const std::vector<dns::Rdata>& rdatas);

/// The exact byte string RRSIG(RRset) signatures cover:
///   RRSIG_RDATA (minus signature) || canonical RRs, sorted.
/// The caller provides the RRSIG fields already filled in (except signature).
std::vector<uint8_t> signing_payload(const dns::RrsigData& rrsig_template,
                                     const dns::RRset& rrset);

/// Full canonical wire form of one RR (owner/type/class/ttl/rdlength/rdata),
/// used by ZONEMD hashing. `ttl_override` substitutes the TTL (RRSIG RRs in
/// signing use the original TTL).
std::vector<uint8_t> canonical_record(const dns::ResourceRecord& rr);

}  // namespace rootsim::dnssec
