#include "dnssec/validator.h"

#include "crypto/rsa.h"
#include "crypto/sha2.h"
#include "dnssec/canonical.h"
#include "util/strings.h"

namespace rootsim::dnssec {

std::string to_string(ValidationStatus status) {
  switch (status) {
    case ValidationStatus::Valid: return "valid";
    case ValidationStatus::SignatureNotIncepted: return "sig-not-incepted";
    case ValidationStatus::SignatureExpired: return "sig-expired";
    case ValidationStatus::BogusSignature: return "bogus-signature";
    case ValidationStatus::MissingSignature: return "missing-signature";
    case ValidationStatus::UnknownKey: return "unknown-key";
  }
  return "?";
}

std::string to_string(ZonemdStatus status) {
  switch (status) {
    case ZonemdStatus::Verified: return "zonemd-verified";
    case ZonemdStatus::Mismatch: return "zonemd-mismatch";
    case ZonemdStatus::NoZonemd: return "no-zonemd";
    case ZonemdStatus::UnsupportedScheme: return "zonemd-unsupported";
    case ZonemdStatus::SerialMismatch: return "zonemd-serial-mismatch";
  }
  return "?";
}

ValidationStatus ZoneValidationResult::dominant_failure() const {
  // Bucket priority mirrors the paper's Table 2 categories: a cryptographic
  // mismatch outranks timing issues (it implies corruption, not clock skew).
  bool not_incepted = false, expired = false, missing = false, unknown = false;
  for (const auto& finding : signature_failures) {
    switch (finding.status) {
      case ValidationStatus::BogusSignature: return ValidationStatus::BogusSignature;
      case ValidationStatus::SignatureNotIncepted: not_incepted = true; break;
      case ValidationStatus::SignatureExpired: expired = true; break;
      case ValidationStatus::MissingSignature: missing = true; break;
      case ValidationStatus::UnknownKey: unknown = true; break;
      case ValidationStatus::Valid: break;
    }
  }
  if (expired) return ValidationStatus::SignatureExpired;
  if (not_incepted) return ValidationStatus::SignatureNotIncepted;
  if (unknown) return ValidationStatus::UnknownKey;
  if (missing) return ValidationStatus::MissingSignature;
  return ValidationStatus::Valid;
}

TrustAnchors TrustAnchors::from_zone_apex(const dns::Zone& zone) {
  TrustAnchors anchors;
  const dns::RRset* set = zone.find(zone.origin(), dns::RRType::DNSKEY);
  if (set)
    for (const auto& rdata : set->rdatas)
      if (const auto* key = std::get_if<dns::DnskeyData>(&rdata))
        anchors.keys.push_back(*key);
  return anchors;
}

dns::DsData make_ds(const dns::Name& owner, const dns::DnskeyData& key,
                    uint8_t digest_type) {
  // RFC 4034 §5.1.4: digest(canonical owner name | DNSKEY RDATA).
  dns::WireWriter writer;
  writer.put_name_canonical(owner);
  writer.put_u16(key.flags);
  writer.put_u8(key.protocol);
  writer.put_u8(key.algorithm);
  writer.put_bytes(key.public_key);
  dns::DsData ds;
  ds.key_tag = key.key_tag();
  ds.algorithm = key.algorithm;
  ds.digest_type = digest_type;
  ds.digest = digest_type == 4 ? crypto::sha384(writer.data())
                               : crypto::sha256(writer.data());
  return ds;
}

bool ds_matches(const dns::Name& owner, const dns::DsData& ds,
                const dns::DnskeyData& key) {
  if (ds.digest_type != 2 && ds.digest_type != 4) return false;
  if (ds.key_tag != key.key_tag() || ds.algorithm != key.algorithm)
    return false;
  return make_ds(owner, key, ds.digest_type).digest == ds.digest;
}

TrustAnchors TrustAnchors::from_ds_anchor(const dns::DsData& anchor,
                                          const dns::Zone& zone,
                                          util::UnixTime now) {
  TrustAnchors anchors;
  const dns::RRset* dnskey_set = zone.find(zone.origin(), dns::RRType::DNSKEY);
  if (!dnskey_set) return anchors;
  // Find the KSK matching the configured DS.
  const dns::DnskeyData* ksk = nullptr;
  for (const auto& rdata : dnskey_set->rdatas) {
    const auto* key = std::get_if<dns::DnskeyData>(&rdata);
    if (key && ds_matches(zone.origin(), anchor, *key)) {
      ksk = key;
      break;
    }
  }
  if (!ksk) return anchors;
  // The matched KSK must have a valid RRSIG over the DNSKEY RRset.
  const dns::RRset* sigs = zone.find(zone.origin(), dns::RRType::RRSIG);
  bool dnskey_rrset_verified = false;
  if (sigs) {
    for (const auto& rdata : sigs->rdatas) {
      const auto* sig = std::get_if<dns::RrsigData>(&rdata);
      if (!sig || sig->type_covered != dns::RRType::DNSKEY) continue;
      if (sig->key_tag != ksk->key_tag()) continue;
      if (verify_rrsig(*dnskey_set, *sig, *ksk, now) ==
          ValidationStatus::Valid) {
        dnskey_rrset_verified = true;
        break;
      }
    }
  }
  if (!dnskey_rrset_verified) return anchors;
  // The whole apex key set is now trusted (KSK vouches for the ZSKs).
  for (const auto& rdata : dnskey_set->rdatas)
    if (const auto* key = std::get_if<dns::DnskeyData>(&rdata))
      anchors.keys.push_back(*key);
  return anchors;
}

namespace {

// Shared verify core; callers that check many signatures against the same
// key pass a prebuilt RsaVerifyContext so the per-key Montgomery setup is
// paid once, not per RRSIG.
ValidationStatus verify_with_context(const dns::RRset& rrset,
                                     const dns::RrsigData& sig,
                                     const crypto::RsaVerifyContext& ctx,
                                     util::UnixTime now) {
  // RFC 4034 §3.1.5: serial-number-style comparison is unnecessary here; the
  // campaign lives comfortably inside 32-bit time.
  if (now < static_cast<util::UnixTime>(sig.inception))
    return ValidationStatus::SignatureNotIncepted;
  if (now > static_cast<util::UnixTime>(sig.expiration))
    return ValidationStatus::SignatureExpired;
  crypto::RsaHash hash =
      sig.algorithm == 10 ? crypto::RsaHash::Sha512 : crypto::RsaHash::Sha256;
  auto payload = signing_payload(sig, rrset);
  if (!ctx.verify(hash, payload, sig.signature))
    return ValidationStatus::BogusSignature;
  return ValidationStatus::Valid;
}

}  // namespace

ValidationStatus verify_rrsig(const dns::RRset& rrset, const dns::RrsigData& sig,
                              const dns::DnskeyData& key, util::UnixTime now) {
  crypto::RsaVerifyContext ctx(
      crypto::RsaPublicKey::from_dnskey_wire(key.public_key));
  return verify_with_context(rrset, sig, ctx, now);
}

std::string to_string(DenialStatus status) {
  switch (status) {
    case DenialStatus::Proven: return "denial-proven";
    case DenialStatus::NoProof: return "no-proof";
    case DenialStatus::DoesNotCover: return "nsec-does-not-cover";
    case DenialStatus::BadSignature: return "nsec-bad-signature";
  }
  return "?";
}

DenialStatus verify_nxdomain_proof(const dns::Message& response,
                                   const dns::Name& qname,
                                   const TrustAnchors& anchors,
                                   util::UnixTime now) {
  // Collect NSEC records and their covering RRSIGs from the authority
  // section.
  struct Candidate {
    dns::RRset nsec_set;
    std::vector<dns::RrsigData> sigs;
  };
  std::vector<Candidate> candidates;
  for (const auto& rr : response.authority) {
    if (rr.type != dns::RRType::NSEC) continue;
    Candidate c;
    c.nsec_set.name = rr.name;
    c.nsec_set.type = dns::RRType::NSEC;
    c.nsec_set.rclass = rr.rclass;
    c.nsec_set.ttl = rr.ttl;
    c.nsec_set.rdatas.push_back(rr.rdata);
    for (const auto& other : response.authority) {
      const auto* sig = std::get_if<dns::RrsigData>(&other.rdata);
      if (sig && sig->type_covered == dns::RRType::NSEC && other.name == rr.name)
        c.sigs.push_back(*sig);
    }
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) return DenialStatus::NoProof;

  for (const Candidate& candidate : candidates) {
    const auto* nsec =
        std::get_if<dns::NsecData>(&candidate.nsec_set.rdatas.front());
    if (!nsec) continue;
    bool after_owner = candidate.nsec_set.name.canonical_compare(qname) < 0;
    bool before_next =
        qname.canonical_compare(nsec->next) < 0 || nsec->next.is_root();
    if (!(after_owner && before_next)) continue;  // try another NSEC
    // Covering NSEC found: it must verify.
    for (const dns::RrsigData& sig : candidate.sigs) {
      for (const auto& key : anchors.keys) {
        if (key.key_tag() != sig.key_tag || key.algorithm != sig.algorithm)
          continue;
        if (verify_rrsig(candidate.nsec_set, sig, key, now) ==
            ValidationStatus::Valid)
          return DenialStatus::Proven;
      }
    }
    return DenialStatus::BadSignature;
  }
  return DenialStatus::DoesNotCover;
}

namespace {

ZonemdStatus check_zonemd(const dns::Zone& zone) {
  const dns::RRset* set = zone.find(zone.origin(), dns::RRType::ZONEMD);
  if (!set || set->rdatas.empty()) return ZonemdStatus::NoZonemd;
  // Per RFC 8976 §4: a verifier succeeds if any supported ZONEMD record
  // verifies; unsupported schemes/algorithms alone mean "cannot verify".
  bool any_supported = false;
  for (const auto& rdata : set->rdatas) {
    const auto* zonemd = std::get_if<dns::ZonemdData>(&rdata);
    if (!zonemd) continue;
    if (zonemd->scheme != dns::ZonemdData::kSchemeSimple) continue;
    if (zonemd->hash_algorithm != dns::ZonemdData::kHashSha384 &&
        zonemd->hash_algorithm != dns::ZonemdData::kHashSha512)
      continue;
    any_supported = true;
    if (zonemd->serial != zone.serial()) return ZonemdStatus::SerialMismatch;
    auto digest = compute_zonemd_digest(zone, zonemd->hash_algorithm);
    if (digest == zonemd->digest) return ZonemdStatus::Verified;
  }
  return any_supported ? ZonemdStatus::Mismatch : ZonemdStatus::UnsupportedScheme;
}

}  // namespace

ZoneValidationResult validate_zone(const dns::Zone& zone,
                                   const TrustAnchors& anchors,
                                   util::UnixTime now, obs::Obs obs) {
  ZoneValidationResult result;
  result.zonemd = check_zonemd(zone);

  // Per-anchor precomputation: the key tag (a wire-form checksum) and the
  // RSA Montgomery context are resolved once per key, not per signature —
  // a full-zone pass verifies hundreds of RRSIGs against the same two keys.
  struct AnchorKey {
    const dns::DnskeyData* key;
    uint16_t tag;
    crypto::RsaVerifyContext ctx;
  };
  std::vector<AnchorKey> anchor_keys;
  anchor_keys.reserve(anchors.keys.size());
  for (const auto& key : anchors.keys)
    anchor_keys.push_back(AnchorKey{
        &key, key.key_tag(),
        crypto::RsaVerifyContext(
            crypto::RsaPublicKey::from_dnskey_wire(key.public_key))});

  const dns::Name& apex = zone.origin();
  for (const dns::RRset* set : zone.rrsets()) {
    if (set->type == dns::RRType::RRSIG) continue;
    bool at_apex = set->name == apex;
    bool signable =
        at_apex || set->type == dns::RRType::DS || set->type == dns::RRType::NSEC;
    if (!signable) continue;  // delegations and glue are unsigned by design
    ++result.rrsets_checked;

    // Find RRSIG(s) covering this set.
    const dns::RRset* sig_set = zone.find(set->name, dns::RRType::RRSIG);
    std::vector<const dns::RrsigData*> covering;
    if (sig_set)
      for (const auto& rdata : sig_set->rdatas)
        if (const auto* sig = std::get_if<dns::RrsigData>(&rdata))
          if (sig->type_covered == set->type) covering.push_back(sig);
    if (covering.empty()) {
      result.signature_failures.push_back(
          {ValidationStatus::MissingSignature, set->name, set->type, "no RRSIG"});
      continue;
    }

    for (const dns::RrsigData* sig : covering) {
      ++result.signatures_checked;
      // Match the key by tag and algorithm among the trust anchors.
      const AnchorKey* matching_key = nullptr;
      for (const auto& anchor_key : anchor_keys)
        if (anchor_key.tag == sig->key_tag &&
            anchor_key.key->algorithm == sig->algorithm) {
          matching_key = &anchor_key;
          break;
        }
      if (!matching_key) {
        result.signature_failures.push_back(
            {ValidationStatus::UnknownKey, set->name, set->type,
             util::format("key tag %u not in trust anchors", sig->key_tag)});
        continue;
      }
      ValidationStatus status =
          verify_with_context(*set, *sig, matching_key->ctx, now);
      if (status != ValidationStatus::Valid) {
        result.signature_failures.push_back(
            {status, set->name, set->type,
             util::format("RRSIG(%s) over %s",
                          rrtype_to_string(set->type).c_str(),
                          set->name.to_string().c_str())});
      }
    }
  }
  if (obs.metrics) {
    obs.count("dnssec.validations",
              {{"status", to_string(result.dominant_failure())}});
    obs.count("dnssec.zonemd", {{"status", to_string(result.zonemd)}});
    obs.count("dnssec.rrsets_checked", result.rrsets_checked);
    obs.count("dnssec.signatures_checked", result.signatures_checked);
  }
  return result;
}

}  // namespace rootsim::dnssec
