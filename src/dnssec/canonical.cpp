#include "dnssec/canonical.h"

#include <algorithm>

#include "dns/codec.h"
#include "dns/wire.h"

namespace rootsim::dnssec {

std::vector<uint8_t> canonical_rdata(const dns::Rdata& rdata) {
  return dns::encode_rdata(rdata, /*canonical=*/true);
}

std::vector<dns::Rdata> sort_rdatas_canonically(
    const std::vector<dns::Rdata>& rdatas) {
  std::vector<std::pair<std::vector<uint8_t>, const dns::Rdata*>> keyed;
  keyed.reserve(rdatas.size());
  for (const auto& rdata : rdatas) keyed.emplace_back(canonical_rdata(rdata), &rdata);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<dns::Rdata> out;
  out.reserve(rdatas.size());
  for (const auto& [key, ptr] : keyed) out.push_back(*ptr);
  return out;
}

std::vector<uint8_t> signing_payload(const dns::RrsigData& rrsig_template,
                                     const dns::RRset& rrset) {
  dns::WireWriter writer;
  // RRSIG RDATA with the Signature field omitted (RFC 4034 §3.1.8.1).
  writer.put_u16(static_cast<uint16_t>(rrsig_template.type_covered));
  writer.put_u8(rrsig_template.algorithm);
  writer.put_u8(rrsig_template.labels);
  writer.put_u32(rrsig_template.original_ttl);
  writer.put_u32(rrsig_template.expiration);
  writer.put_u32(rrsig_template.inception);
  writer.put_u16(rrsig_template.key_tag);
  writer.put_name_canonical(rrsig_template.signer);
  // Each RR of the set: name | type | class | OrigTTL | RDATA length | RDATA,
  // in canonical RDATA order.
  for (const auto& rdata : sort_rdatas_canonically(rrset.rdatas)) {
    writer.put_name_canonical(rrset.name);
    writer.put_u16(static_cast<uint16_t>(rrset.type));
    writer.put_u16(static_cast<uint16_t>(rrset.rclass));
    writer.put_u32(rrsig_template.original_ttl);
    auto rdata_bytes = canonical_rdata(rdata);
    writer.put_u16(static_cast<uint16_t>(rdata_bytes.size()));
    writer.put_bytes(rdata_bytes);
  }
  return writer.take();
}

std::vector<uint8_t> canonical_record(const dns::ResourceRecord& rr) {
  dns::WireWriter writer;
  dns::encode_record_canonical(writer, rr);
  return writer.take();
}

}  // namespace rootsim::dnssec
