// Zone signing (RFC 4035 §2): builds NSEC chains, signs every authoritative
// RRset with the ZSK, signs the DNSKEY RRset with the KSK, and computes
// ZONEMD placement per RFC 8976 §3 (digest computed over the zone with the
// ZONEMD digest field zeroed/placeholder, then patched in, then signed).
//
// This is the machinery the simulated root zone maintainer runs on each new
// serial; it mirrors what Verisign does for '.' twice a day.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/rsa.h"
#include "dns/zone.h"
#include "util/timeutil.h"

namespace rootsim::dnssec {

/// A DNSSEC signing key: RSA pair + its DNSKEY record fields.
struct SigningKey {
  crypto::RsaPrivateKey rsa;
  uint16_t flags = 256;    // 256 = ZSK, 257 = KSK
  uint8_t algorithm = 8;   // RSASHA256

  dns::DnskeyData to_dnskey() const;
  uint16_t key_tag() const { return to_dnskey().key_tag(); }
};

/// Generates a ZSK/KSK pair deterministically from `rng`.
SigningKey make_zsk(util::Rng& rng, size_t modulus_bits = 1024);
SigningKey make_ksk(util::Rng& rng, size_t modulus_bits = 1024);

struct SigningPolicy {
  util::UnixTime inception;    // signature inception
  util::UnixTime expiration;   // signature expiration (~2 weeks for the root)
  bool add_nsec = true;
  /// ZONEMD behaviour, mirroring the roll-out stages of Fig. 2:
  /// None — pre-2023-09-13; Private — placeholder with private hash algorithm
  /// (not verifiable); Sha384 — verifiable, post-2023-12-06.
  enum class ZonemdMode { None, PrivateAlgorithm, Sha384 } zonemd = ZonemdMode::Sha384;
  /// Extra DNSKEYs published in the apex RRset without signing anything —
  /// pre-published (or not-yet-withdrawn) keys during a KSK rollover.
  std::vector<dns::DnskeyData> extra_dnskeys;
};

/// Memoizes RRSIG signature bytes across sign_zone calls.
///
/// The root zone re-signs ~every 12 hours, but most RRsets (delegations,
/// glue, NSEC chain) are unchanged between serials and — because inception
/// is pinned to the day edit — so are their RRSIG timestamps within a day.
/// The cache is content-addressed: the lookup key is SHA-256 over the
/// signing key's DNSKEY RDATA wire followed by the RRSIG signing payload,
/// which embeds the full RRSIG template (type covered, key tag, signer,
/// inception/expiration) and the canonical RRset wire form. Any change to
/// the RRset, the validity window, or the key therefore produces a
/// different lookup key: serial bumps (SOA/ZONEMD RRsets) and key rolls
/// invalidate by construction, and a hit can only ever return bytes a
/// cold sign of the identical payload would produce.
///
/// Thread-safe. Hit/miss totals are scheduling-independent as long as the
/// entry bound is not reached (the set of distinct payloads signed is a
/// property of the workload, not of signing order), which keeps the
/// `rss.sig_cache.*` counters byte-identical across worker counts.
class SignatureCache {
 public:
  explicit SignatureCache(size_t max_entries = 1 << 16);

  /// Returns the cached signature for (key identity, payload), or signs via
  /// `ctx` and caches. `key_id` must uniquely identify the signing key (the
  /// DNSKEY RDATA wire form).
  std::vector<uint8_t> sign(const crypto::RsaSignContext& ctx,
                            std::span<const uint8_t> key_id,
                            crypto::RsaHash hash,
                            std::span<const uint8_t> payload);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  size_t max_entries() const { return max_entries_; }
  void clear();

 private:
  mutable std::mutex mu_;
  size_t max_entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::unordered_map<std::string, std::vector<uint8_t>> entries_;
};

/// Signs `zone` in place: strips old NSEC/RRSIG/ZONEMD/DNSKEY, installs the
/// DNSKEY RRset, NSEC chain and ZONEMD, and signs all authoritative RRsets.
/// Delegation NS RRsets and glue are not signed (RFC 4035 §2.2) — exactly the
/// gap ZONEMD closes and the reason the paper calls it valuable.
/// With `cache` non-null, unchanged RRsets reuse previously computed
/// signature bytes instead of re-running the RSA kernel.
void sign_zone(dns::Zone& zone, const SigningKey& ksk, const SigningKey& zsk,
               const SigningPolicy& policy, SignatureCache* cache = nullptr);

/// Computes the RFC 8976 SIMPLE/SHA-384 digest over the zone (ignoring the
/// apex ZONEMD RRset's RRSIG and zeroing nothing: the caller must pass a zone
/// whose ZONEMD digest field is already a placeholder, per §3.3.1).
std::vector<uint8_t> compute_zonemd_digest(const dns::Zone& zone,
                                           uint8_t hash_algorithm);

/// True if `name` is a delegation point in `zone` (has NS but no SOA at it).
bool is_delegation(const dns::Zone& zone, const dns::Name& name);

}  // namespace rootsim::dnssec
