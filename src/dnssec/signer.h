// Zone signing (RFC 4035 §2): builds NSEC chains, signs every authoritative
// RRset with the ZSK, signs the DNSKEY RRset with the KSK, and computes
// ZONEMD placement per RFC 8976 §3 (digest computed over the zone with the
// ZONEMD digest field zeroed/placeholder, then patched in, then signed).
//
// This is the machinery the simulated root zone maintainer runs on each new
// serial; it mirrors what Verisign does for '.' twice a day.
#pragma once

#include <cstdint>

#include "crypto/rsa.h"
#include "dns/zone.h"
#include "util/timeutil.h"

namespace rootsim::dnssec {

/// A DNSSEC signing key: RSA pair + its DNSKEY record fields.
struct SigningKey {
  crypto::RsaPrivateKey rsa;
  uint16_t flags = 256;    // 256 = ZSK, 257 = KSK
  uint8_t algorithm = 8;   // RSASHA256

  dns::DnskeyData to_dnskey() const;
  uint16_t key_tag() const { return to_dnskey().key_tag(); }
};

/// Generates a ZSK/KSK pair deterministically from `rng`.
SigningKey make_zsk(util::Rng& rng, size_t modulus_bits = 1024);
SigningKey make_ksk(util::Rng& rng, size_t modulus_bits = 1024);

struct SigningPolicy {
  util::UnixTime inception;    // signature inception
  util::UnixTime expiration;   // signature expiration (~2 weeks for the root)
  bool add_nsec = true;
  /// ZONEMD behaviour, mirroring the roll-out stages of Fig. 2:
  /// None — pre-2023-09-13; Private — placeholder with private hash algorithm
  /// (not verifiable); Sha384 — verifiable, post-2023-12-06.
  enum class ZonemdMode { None, PrivateAlgorithm, Sha384 } zonemd = ZonemdMode::Sha384;
};

/// Signs `zone` in place: strips old NSEC/RRSIG/ZONEMD/DNSKEY, installs the
/// DNSKEY RRset, NSEC chain and ZONEMD, and signs all authoritative RRsets.
/// Delegation NS RRsets and glue are not signed (RFC 4035 §2.2) — exactly the
/// gap ZONEMD closes and the reason the paper calls it valuable.
void sign_zone(dns::Zone& zone, const SigningKey& ksk, const SigningKey& zsk,
               const SigningPolicy& policy);

/// Computes the RFC 8976 SIMPLE/SHA-384 digest over the zone (ignoring the
/// apex ZONEMD RRset's RRSIG and zeroing nothing: the caller must pass a zone
/// whose ZONEMD digest field is already a placeholder, per §3.3.1).
std::vector<uint8_t> compute_zonemd_digest(const dns::Zone& zone,
                                           uint8_t hash_algorithm);

/// True if `name` is a delegation point in `zone` (has NS but no SOA at it).
bool is_delegation(const dns::Zone& zone, const dns::Name& name);

}  // namespace rootsim::dnssec
