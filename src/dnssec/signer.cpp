#include "dnssec/signer.h"

#include <algorithm>

#include "crypto/sha2.h"
#include "dnssec/canonical.h"

namespace rootsim::dnssec {

namespace {

crypto::RsaHash hash_for_algorithm(uint8_t algorithm) {
  return algorithm == 10 ? crypto::RsaHash::Sha512 : crypto::RsaHash::Sha256;
}

// Clamps a UnixTime into the 32-bit RRSIG timestamp space.
uint32_t rrsig_time(util::UnixTime t) {
  if (t < 0) return 0;
  if (t > 0xFFFFFFFFLL) return 0xFFFFFFFFu;
  return static_cast<uint32_t>(t);
}

}  // namespace

dns::DnskeyData SigningKey::to_dnskey() const {
  dns::DnskeyData key;
  key.flags = flags;
  key.protocol = 3;
  key.algorithm = algorithm;
  key.public_key = rsa.public_key.to_dnskey_wire();
  return key;
}

SigningKey make_zsk(util::Rng& rng, size_t modulus_bits) {
  SigningKey key;
  key.rsa = crypto::generate_rsa_key(rng, modulus_bits);
  key.flags = 256;
  return key;
}

SigningKey make_ksk(util::Rng& rng, size_t modulus_bits) {
  SigningKey key;
  key.rsa = crypto::generate_rsa_key(rng, modulus_bits);
  key.flags = 257;
  return key;
}

bool is_delegation(const dns::Zone& zone, const dns::Name& name) {
  if (name == zone.origin()) return false;
  return zone.find(name, dns::RRType::NS) != nullptr;
}

SignatureCache::SignatureCache(size_t max_entries)
    : max_entries_(max_entries ? max_entries : 1) {}

std::vector<uint8_t> SignatureCache::sign(const crypto::RsaSignContext& ctx,
                                          std::span<const uint8_t> key_id,
                                          crypto::RsaHash hash,
                                          std::span<const uint8_t> payload) {
  crypto::Sha256 h;
  h.update(key_id);
  h.update(payload);
  auto digest = h.finish();
  std::string lookup(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(lookup);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Sign outside the lock; a concurrent miss on the same payload computes
  // the same bytes, so whichever insert wins is correct.
  std::vector<uint8_t> signature = ctx.sign(hash, payload);
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  if (entries_.size() >= max_entries_) entries_.clear();
  entries_.emplace(std::move(lookup), signature);
  return signature;
}

uint64_t SignatureCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SignatureCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t SignatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SignatureCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

namespace {

// Everything sign_zone needs per key, derived once per call: the RSA CRT
// precomputation, the key tag (otherwise re-derived from the DNSKEY wire on
// every RRset), and the cache identity bytes (DNSKEY RDATA wire form).
struct ZoneSigner {
  explicit ZoneSigner(const SigningKey& k)
      : key(&k),
        ctx(k.rsa),
        tag(k.key_tag()),
        hash(hash_for_algorithm(k.algorithm)) {
    identity.push_back(static_cast<uint8_t>(k.flags >> 8));
    identity.push_back(static_cast<uint8_t>(k.flags));
    identity.push_back(3);  // protocol
    identity.push_back(k.algorithm);
    auto pk = k.rsa.public_key.to_dnskey_wire();
    identity.insert(identity.end(), pk.begin(), pk.end());
  }

  const SigningKey* key;
  crypto::RsaSignContext ctx;
  uint16_t tag;
  crypto::RsaHash hash;
  std::vector<uint8_t> identity;
};

dns::RrsigData sign_rrset(const dns::RRset& rrset, const ZoneSigner& signer,
                          const SigningPolicy& policy, const dns::Name& apex,
                          SignatureCache* cache) {
  dns::RrsigData sig;
  sig.type_covered = rrset.type;
  sig.algorithm = signer.key->algorithm;
  sig.labels = static_cast<uint8_t>(rrset.name.label_count());
  sig.original_ttl = rrset.ttl;
  sig.expiration = rrsig_time(policy.expiration);
  sig.inception = rrsig_time(policy.inception);
  sig.key_tag = signer.tag;
  sig.signer = apex;
  auto payload = signing_payload(sig, rrset);
  sig.signature = cache ? cache->sign(signer.ctx, signer.identity, signer.hash,
                                      payload)
                        : signer.ctx.sign(signer.hash, payload);
  return sig;
}

}  // namespace

std::vector<uint8_t> compute_zonemd_digest(const dns::Zone& zone,
                                           uint8_t hash_algorithm) {
  // RFC 8976 §3.3.1 SIMPLE scheme inclusion rules: hash the canonical wire
  // form of all records in canonical order, excluding (rule 4) the apex
  // ZONEMD RRset itself and (rule 6) the RRSIG covering the apex ZONEMD.
  crypto::Sha384 h384;
  crypto::Sha512 h512;
  for (const dns::RRset* set : zone.rrsets()) {
    if (set->type == dns::RRType::ZONEMD && set->name == zone.origin())
      continue;
    if (set->type == dns::RRType::RRSIG) {
      // RRSIG covering ZONEMD at the apex is excluded.
      std::vector<dns::Rdata> kept;
      for (const auto& rdata : set->rdatas) {
        const auto* sig = std::get_if<dns::RrsigData>(&rdata);
        if (sig && sig->type_covered == dns::RRType::ZONEMD &&
            set->name == zone.origin())
          continue;
        kept.push_back(rdata);
      }
      if (kept.empty()) continue;
      for (const auto& rdata : sort_rdatas_canonically(kept)) {
        dns::ResourceRecord rr{set->name, set->type, set->rclass, set->ttl, rdata};
        auto bytes = canonical_record(rr);
        if (hash_algorithm == dns::ZonemdData::kHashSha512)
          h512.update(bytes);
        else
          h384.update(bytes);
      }
      continue;
    }
    for (const auto& rdata : sort_rdatas_canonically(set->rdatas)) {
      dns::ResourceRecord rr{set->name, set->type, set->rclass, set->ttl, rdata};
      auto bytes = canonical_record(rr);
      if (hash_algorithm == dns::ZonemdData::kHashSha512)
        h512.update(bytes);
      else
        h384.update(bytes);
    }
  }
  if (hash_algorithm == dns::ZonemdData::kHashSha512) {
    auto digest = h512.finish();
    return {digest.begin(), digest.end()};
  }
  auto digest = h384.finish();
  return {digest.begin(), digest.end()};
}

void sign_zone(dns::Zone& zone, const SigningKey& ksk, const SigningKey& zsk,
               const SigningPolicy& policy, SignatureCache* cache) {
  const dns::Name& apex = zone.origin();
  const ZoneSigner ksk_signer(ksk);
  const ZoneSigner zsk_signer(zsk);

  // Strip any previous DNSSEC material and ZONEMD.
  std::vector<std::pair<dns::Name, dns::RRType>> to_remove;
  for (const dns::RRset* set : zone.rrsets()) {
    if (set->type == dns::RRType::RRSIG || set->type == dns::RRType::NSEC ||
        set->type == dns::RRType::ZONEMD || set->type == dns::RRType::DNSKEY)
      to_remove.emplace_back(set->name, set->type);
  }
  for (const auto& [name, type] : to_remove) zone.remove_rrset(name, type);

  auto soa = zone.soa();
  const uint32_t soa_minimum = soa ? soa->minimum : 86400;
  const uint32_t serial = soa ? soa->serial : 0;

  // Install the DNSKEY RRset at the apex.
  for (const auto& key : {ksk, zsk}) {
    dns::ResourceRecord rr;
    rr.name = apex;
    rr.type = dns::RRType::DNSKEY;
    rr.ttl = 172800;
    rr.rdata = key.to_dnskey();
    zone.add(rr);
  }
  for (const auto& dnskey : policy.extra_dnskeys) {
    dns::ResourceRecord rr;
    rr.name = apex;
    rr.type = dns::RRType::DNSKEY;
    rr.ttl = 172800;
    rr.rdata = dnskey;
    zone.add(rr);
  }

  // Install the ZONEMD placeholder (RFC 8976 §3.3.1: digest field must be
  // present with placeholder content while hashing).
  if (policy.zonemd != SigningPolicy::ZonemdMode::None) {
    dns::ZonemdData zonemd;
    zonemd.serial = serial;
    zonemd.scheme = dns::ZonemdData::kSchemeSimple;
    zonemd.hash_algorithm = policy.zonemd == SigningPolicy::ZonemdMode::Sha384
                                ? dns::ZonemdData::kHashSha384
                                : dns::ZonemdData::kPrivateHashAlgorithm;
    zonemd.digest.assign(48, 0);  // placeholder
    dns::ResourceRecord rr;
    rr.name = apex;
    rr.type = dns::RRType::ZONEMD;
    rr.ttl = 86400;
    rr.rdata = zonemd;
    zone.add(rr);
  }

  // Build the NSEC chain over authoritative names (delegation points appear
  // as owners but their NS bit set comes from the delegation NS RRset).
  if (policy.add_nsec) {
    std::vector<dns::Name> names = zone.authoritative_names();
    for (size_t i = 0; i < names.size(); ++i) {
      const dns::Name& owner = names[i];
      const dns::Name& next = names[(i + 1) % names.size()];
      dns::NsecData nsec;
      nsec.next = next;
      for (const dns::RRset* set : zone.rrsets_at(owner))
        nsec.types.push_back(set->type);
      nsec.types.push_back(dns::RRType::NSEC);
      nsec.types.push_back(dns::RRType::RRSIG);
      std::sort(nsec.types.begin(), nsec.types.end());
      nsec.types.erase(std::unique(nsec.types.begin(), nsec.types.end()),
                       nsec.types.end());
      dns::ResourceRecord rr;
      rr.name = owner;
      rr.type = dns::RRType::NSEC;
      rr.ttl = soa_minimum;
      rr.rdata = nsec;
      zone.add(rr);
    }
  }

  // Sign every authoritative RRset (including the ZONEMD placeholder, whose
  // signature is recalculated below once the digest is patched in).
  // Delegation NS and glue are not signed.
  std::vector<const dns::RRset*> sets = zone.rrsets();
  for (const dns::RRset* set : sets) {
    if (set->type == dns::RRType::RRSIG) continue;
    bool at_apex = set->name == apex;
    if (!at_apex) {
      // Below the apex: delegation NS RRsets and glue A/AAAA are not
      // authoritative; only DS and NSEC RRsets are signed there.
      if (set->type != dns::RRType::DS && set->type != dns::RRType::NSEC)
        continue;
    }
    const ZoneSigner& signer =  // KSK signs DNSKEY only
        (set->type == dns::RRType::DNSKEY) ? ksk_signer : zsk_signer;
    dns::RrsigData sig = sign_rrset(*set, signer, policy, apex, cache);
    dns::ResourceRecord rr;
    rr.name = set->name;
    rr.type = dns::RRType::RRSIG;
    rr.ttl = set->ttl;
    rr.rdata = sig;
    zone.add(rr);
  }

  // RFC 8976 §4.1: with the zone now signed, compute the digest (the apex
  // ZONEMD RRset and its covering RRSIG are excluded by the inclusion rules),
  // patch the real digest in, and recalculate only the ZONEMD RRSIG.
  if (policy.zonemd == SigningPolicy::ZonemdMode::Sha384) {
    auto digest = compute_zonemd_digest(zone, dns::ZonemdData::kHashSha384);
    zone.remove_rrset(apex, dns::RRType::ZONEMD);
    dns::ZonemdData zonemd;
    zonemd.serial = serial;
    zonemd.scheme = dns::ZonemdData::kSchemeSimple;
    zonemd.hash_algorithm = dns::ZonemdData::kHashSha384;
    zonemd.digest = std::move(digest);
    dns::ResourceRecord zonemd_rr;
    zonemd_rr.name = apex;
    zonemd_rr.type = dns::RRType::ZONEMD;
    zonemd_rr.ttl = 86400;
    zonemd_rr.rdata = zonemd;
    zone.add(zonemd_rr);

    const dns::RRset* apex_sigs = zone.find(apex, dns::RRType::RRSIG);
    if (apex_sigs) {
      std::vector<dns::Rdata> kept;
      uint32_t sig_ttl = apex_sigs->ttl;
      for (const auto& rdata : apex_sigs->rdatas) {
        const auto* sig = std::get_if<dns::RrsigData>(&rdata);
        if (sig && sig->type_covered == dns::RRType::ZONEMD) continue;
        kept.push_back(rdata);
      }
      zone.remove_rrset(apex, dns::RRType::RRSIG);
      for (const auto& rdata : kept)
        zone.add(dns::ResourceRecord{apex, dns::RRType::RRSIG, dns::RRClass::IN,
                                     sig_ttl, rdata});
      const dns::RRset* zonemd_set = zone.find(apex, dns::RRType::ZONEMD);
      dns::RrsigData sig = sign_rrset(*zonemd_set, zsk_signer, policy, apex, cache);
      zone.add(dns::ResourceRecord{apex, dns::RRType::RRSIG, dns::RRClass::IN,
                                   zonemd_set->ttl, sig});
    }
  }
}

}  // namespace rootsim::dnssec
