// Exec-pool profiler: per-unit wall/sim spans and per-worker utilization.
//
// The scaling benches show the 8-worker audit reaching ~2.2x; before touching
// the scheduler we need to know *why* — long-pole units, shard skew, or
// merge-time serialization. The profiler answers that with a per-unit span
// timeline and an imbalance report (critical path vs total work), emitted as
// PROF_exec_audit.json.
//
// Profiling is wall-clock by nature, so its output is *not* deterministic and
// never mixes into the metric/trace exports: the profiler writes its own
// artifact and nothing else. With the knob off (no ROOTSIM_PROFILE in the
// environment) the engine takes the exact pre-existing code path — callers
// pass nullptr and pay one branch.
//
// Recording is slot-addressed like the engine's result vectors: unit i writes
// units_[i], distinct units never share a slot, and the region's thread join
// provides the happens-before edge for the final read — no locks on the hot
// path.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rootsim::exec {

class Profiler {
 public:
  Profiler() : origin_(Clock::now()) {}

  /// True when the ROOTSIM_PROFILE environment variable is set to anything
  /// but "" or "0".
  static bool enabled_by_env();
  /// Output path from the knob: ROOTSIM_PROFILE=1 means the conventional
  /// "PROF_exec_audit.json"; any other value is used as the path itself.
  static std::string env_output_path();

  /// Milliseconds of wall clock since construction.
  double now_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - origin_)
        .count();
  }

  /// Opens a profiled region of `unit_count` slot-addressed units running on
  /// `workers` workers. Clears any previous region.
  void begin_region(size_t unit_count, size_t workers);
  /// Names the scheduler that ran the region ("steal" / "static"); lands in
  /// the summary so a profile is interpretable without the environment that
  /// produced it.
  void set_scheduler(std::string_view sched);
  /// Records how many times worker `worker` stole from a victim's range.
  /// Zero under the static scheduler by construction.
  void note_steals(size_t worker, uint64_t count);
  /// Records unit `unit`'s wall span on worker `shard`. Slot-addressed:
  /// callers pass distinct units, so no synchronization is needed.
  void unit_done(size_t unit, size_t shard, double begin_ms, double end_ms);
  /// Attributes simulated transport time to a unit (how much *simulated*
  /// work the unit represented, vs the wall time it cost).
  void add_unit_sim_ms(size_t unit, double sim_ms);
  /// Closes the region (stamps the region's wall span).
  void end_region();

  size_t unit_count() const { return units_.size(); }
  size_t workers() const { return workers_; }
  double wall_ms() const { return region_end_ms_ - region_begin_ms_; }

  /// Per-worker rollup derived from the unit spans.
  struct WorkerReport {
    size_t worker = 0;
    size_t units = 0;
    double busy_ms = 0;       ///< sum of unit wall spans
    double first_begin_ms = 0;
    double last_end_ms = 0;
    double utilization = 0;   ///< busy_ms / region wall_ms
    double idle_ms = 0;       ///< region wall_ms - busy_ms (the idle tail
                              ///< the static scheduler used to hide)
    double sim_ms = 0;        ///< simulated time attributed to its units
    uint64_t steal_count = 0; ///< steals this worker performed
  };
  std::vector<WorkerReport> worker_reports() const;

  /// The whole audit as one JSON object:
  ///   {"schema":"rootsim-exec-profile/2","summary":{...},
  ///    "per_worker":[...],"units":[[unit,worker,begin,end,sim],...]}
  /// summary carries workers/units/wall_ms/total_busy_ms/critical_path_ms/
  /// parallel_efficiency/imbalance/tail_ms/sched/hardware_concurrency —
  /// critical path is the busiest worker's span sum; imbalance is critical
  /// path over mean worker busy time (1.0 = perfectly balanced); tail_ms is
  /// the post-last-unit span (region end minus the last unit's end: join +
  /// shard-merge time no unit span accounts for).
  std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct UnitSpan {
    uint32_t shard = 0;
    bool recorded = false;
    double begin_ms = 0;
    double end_ms = 0;
    double sim_ms = 0;
  };

  Clock::time_point origin_;
  size_t workers_ = 0;
  double region_begin_ms_ = 0;
  double region_end_ms_ = 0;
  std::string sched_ = "static";
  std::vector<uint64_t> steals_;
  std::vector<UnitSpan> units_;
};

}  // namespace rootsim::exec
